/**
 * @file
 * Fault-tolerant datapath tests: FaultSpec parsing, injector
 * determinism, the FaultyMemory decorator (pass-through at rate 0,
 * exactly-once retirement under delay/refuse), per-bucket HMAC
 * detection and bounded-retry recovery on the PathOram read path,
 * serialization primitives, the crash-consistent checkpoint file
 * format (truncation/corruption rejection), and RecoveryRun
 * checkpoint/restart bit-identity on timing, functional and sharded
 * devices — including the golden-pinned observable stream.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/serial.hh"
#include "dram/backend_registry.hh"
#include "dram/differential.hh"
#include "dram/dram_model.hh"
#include "dram/faulty_memory.hh"
#include "oram/integrity.hh"
#include "oram/oram_controller.hh"
#include "oram/oram_device.hh"
#include "oram/path_oram.hh"
#include "oram/position_map.hh"
#include "sim/checkpoint.hh"
#include "sim/recovery_run.hh"
#include "sim/system_config.hh"

using namespace tcoram;

namespace {

oram::OramConfig
tinyConfig(std::uint64_t blocks = 256)
{
    oram::OramConfig c;
    c.numBlocks = blocks;
    c.recursionLevels = 0;
    c.stashCapacity = 400;
    return c;
}

std::vector<std::uint8_t>
pattern(std::uint64_t tag, std::size_t n = 64)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(tag * 131 + i);
    return v;
}

/** Temp path helper (tests run from the build dir). */
std::string
tmpPath(const std::string &name)
{
    return "test_fault_recovery_" + name;
}

} // namespace

// ---------------------------------------------------------------------
// FaultSpec
// ---------------------------------------------------------------------

TEST(FaultSpec, ParsesKindsRateAndSeed)
{
    const auto s = dram::FaultSpec::parse("flip+stuck@1e-3#7");
    EXPECT_DOUBLE_EQ(s.rate, 1e-3);
    EXPECT_EQ(s.kinds, dram::kFaultFlip | dram::kFaultStuck);
    EXPECT_EQ(s.seed, 7u);
    EXPECT_TRUE(s.enabled());
    EXPECT_TRUE(s.has(dram::kFaultDataMask));
    EXPECT_FALSE(s.has(dram::kFaultTimingMask));

    const auto all = dram::FaultSpec::parse("all@0.25");
    EXPECT_EQ(all.kinds, dram::kFaultAll);
    EXPECT_DOUBLE_EQ(all.rate, 0.25);

    const auto none = dram::FaultSpec::parse("none");
    EXPECT_FALSE(none.enabled());
    EXPECT_FALSE(dram::FaultSpec{}.enabled());
}

TEST(FaultSpec, ToStringRoundTrips)
{
    for (const char *text :
         {"flip@0.001#7", "delay+refuse@0.05#3", "all@0.25#1",
          "stuck@1e-06#42"}) {
        const auto spec = dram::FaultSpec::parse(text);
        const auto again = dram::FaultSpec::parse(spec.toString());
        EXPECT_DOUBLE_EQ(spec.rate, again.rate) << text;
        EXPECT_EQ(spec.kinds, again.kinds) << text;
        EXPECT_EQ(spec.seed, again.seed) << text;
    }
}

TEST(FaultSpec, SystemConfigParsesAndWrapsMemory)
{
    sim::SystemConfig cfg = sim::SystemConfig::dynamicScheme(4, 4);
    EXPECT_FALSE(cfg.faultSpecParsed().enabled());
    // Data-only kinds: the memory spec is untouched.
    cfg.faultSpec = "flip@1e-4";
    EXPECT_TRUE(cfg.faultSpecParsed().enabled());
    EXPECT_EQ(cfg.memorySpec().kind, "banked");
    // Timing kinds wrap the resolved backend in the decorator, with
    // the data kinds masked out of the decorator's share.
    cfg.faultSpec = "all@1e-4#3";
    const auto spec = cfg.memorySpec();
    EXPECT_EQ(spec.kind, "faulty");
    EXPECT_EQ(spec.faultInner, "banked");
    EXPECT_EQ(spec.fault.kinds, dram::kFaultTimingMask);
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjector, DeterministicPerSpecAndStream)
{
    const auto spec = dram::FaultSpec::parse("all@0.2#11");
    dram::FaultInjector a(spec, 0), b(spec, 0), c(spec, 1);
    bool stream_differs = false;
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.drawIssuePenalty(), b.drawIssuePenalty());
        EXPECT_EQ(a.drawRetireDelay(), b.drawRetireDelay());
        if (c.drawIssuePenalty() != 0 || c.drawRetireDelay() != 0)
            stream_differs = true;
    }
    EXPECT_EQ(a.refusals(), b.refusals());
    EXPECT_EQ(a.delays(), b.delays());
    EXPECT_GT(a.refusals() + a.delays(), 0u);
    EXPECT_TRUE(stream_differs); // stream 1 faults independently
}

TEST(FaultInjector, CorruptsAtTheConfiguredRateAndRoundTripsState)
{
    const auto spec = dram::FaultSpec::parse("flip+stuck@0.5#5");
    dram::FaultInjector inj(spec, 2);
    std::vector<std::uint8_t> bytes(64, 0x11);
    std::uint64_t corrupted = 0;
    for (std::uint64_t bucket = 0; bucket < 100; ++bucket) {
        std::fill(bytes.begin(), bytes.end(), 0x11);
        if (inj.maybeCorrupt(bucket, bytes)) {
            ++corrupted;
            EXPECT_NE(bytes, std::vector<std::uint8_t>(64, 0x11));
        }
    }
    EXPECT_EQ(corrupted, inj.faultsInjected());
    EXPECT_GT(corrupted, 20u); // rate 0.5 over 100 draws
    EXPECT_LT(corrupted, 80u);

    // A restored injector continues the exact stream of the saved one.
    ByteWriter w;
    inj.saveState(w);
    dram::FaultInjector twin(spec, 2);
    ByteReader r(w.data());
    twin.restoreState(r);
    EXPECT_TRUE(r.atEnd());
    for (std::uint64_t bucket = 100; bucket < 140; ++bucket) {
        std::vector<std::uint8_t> x(64, 0x22), y(64, 0x22);
        EXPECT_EQ(inj.maybeCorrupt(bucket, x),
                  twin.maybeCorrupt(bucket, y));
        EXPECT_EQ(x, y);
    }
}

// ---------------------------------------------------------------------
// FaultyMemory decorator
// ---------------------------------------------------------------------

TEST(FaultyMemory, RegisteredAndRateZeroIsPassThroughOnEveryBackend)
{
    auto &reg = dram::BackendRegistry::instance();
    EXPECT_TRUE(reg.contains("faulty"));
    EXPECT_TRUE(reg.contains("faulty:flat"));

    std::vector<dram::MemRequest> reqs;
    for (std::uint64_t i = 0; i < 64; ++i)
        reqs.push_back({i * 4096 + (i % 5) * 64, 64, i % 2 == 0});

    for (const std::string kind : {"flat", "banked"}) {
        dram::BackendSpec spec;
        spec.kind = kind;
        const auto mem = reg.make(spec);
        const auto div =
            dram::compareDecoratedToBare(*mem, 0, reqs, dram::FaultSpec{});
        EXPECT_FALSE(div.diverged) << kind << " at " << div.index;
        // A data-only kind mask must also be a pass-through here.
        const auto div2 = dram::compareDecoratedToBare(
            *mem, 0, reqs, dram::FaultSpec::parse("flip+stuck@0.9#1"));
        EXPECT_FALSE(div2.diverged) << kind << " at " << div2.index;
    }
}

TEST(FaultyMemory, DelayAndRefuseRetireExactlyOnceAndLate)
{
    dram::BackendSpec spec;
    spec.kind = "faulty";
    spec.faultInner = "banked";
    spec.fault = dram::FaultSpec::parse("delay+refuse@0.2#3");
    const auto mem = dram::BackendRegistry::instance().make(spec);

    std::vector<dram::TxnToken> tokens;
    Cycles now = 0;
    for (std::uint64_t i = 0; i < 128; ++i) {
        tokens.push_back(mem->issue(now, {i * 4096, 64, i % 2 == 0}));
        now += 5;
    }
    std::vector<int> seen(tokens.size(), 0);
    Cycles last = 0;
    while (mem->nextEventAt() != dram::kNoPendingEvent) {
        const Cycles at = mem->nextEventAt();
        for (const auto &ret : mem->drainRetired(at)) {
            ASSERT_GE(ret.token, tokens.front());
            const auto idx =
                static_cast<std::size_t>(ret.token - tokens.front());
            ASSERT_LT(idx, seen.size());
            ++seen[idx];
            EXPECT_GE(ret.completed, ret.issued);
            last = std::max(last, ret.completed);
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], 1) << "transaction " << i;

    const auto &inj =
        dynamic_cast<dram::FaultyMemory &>(*mem).injector();
    EXPECT_GT(inj.delays() + inj.refusals(), 0u);
}

// ---------------------------------------------------------------------
// Detection + bounded-retry recovery
// ---------------------------------------------------------------------

TEST(BucketAuthenticator, DetectsTamperedCiphertext)
{
    oram::OramConfig c = tinyConfig();
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram oram(c, map, 1);
    oram.access(5, oram::Op::Write, pattern(5));

    oram::BucketAuthenticator auth(0x3a9, c.numBuckets());
    const std::uint64_t idx = 0; // root is on every path
    auth.commit(idx, oram.bucketCiphertext(idx));
    EXPECT_TRUE(auth.verify(idx, oram.bucketCiphertext(idx)));

    oram.tamperCiphertext(idx, 3);
    EXPECT_FALSE(auth.verify(idx, oram.bucketCiphertext(idx)));
}

TEST(RecoveryEngine, BackoffSlotsAreExponential)
{
    EXPECT_EQ(oram::RecoveryEngine::backoffSlots(0), 0u);
    EXPECT_EQ(oram::RecoveryEngine::backoffSlots(1), 1u);
    EXPECT_EQ(oram::RecoveryEngine::backoffSlots(2), 3u);
    EXPECT_EQ(oram::RecoveryEngine::backoffSlots(4), 15u);
}

TEST(PathOramRecovery, InjectedFaultsAreDetectedAndRecovered)
{
    oram::OramConfig c = tinyConfig();
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram oram(c, map, 3);
    // Each retry re-reads the whole path, so fresh faults compound at
    // path-length x rate per pass — keep the rate low enough that the
    // (seeded, deterministic) run never exhausts the budget.
    oram.enableIntegrity(0x77, /*retry_budget=*/6);

    const auto spec = dram::FaultSpec::parse("flip+stuck@0.01#5");
    dram::FaultInjector inj(spec, 0);
    oram.attachFaultInjector(&inj);

    for (std::uint64_t id = 0; id < 64; ++id)
        oram.access(id, oram::Op::Write, pattern(id));
    for (std::uint64_t id = 0; id < 64; ++id)
        EXPECT_EQ(oram.access(id, oram::Op::Read), pattern(id)) << id;

    // At 5% per bucket read over 128 path accesses faults certainly
    // fired — and every one of them was recovered (reads were clean).
    EXPECT_GT(inj.faultsInjected(), 0u);
    EXPECT_GT(oram.faultsDetected(), 0u);
    EXPECT_GT(oram.faultsRecovered(), 0u);
    EXPECT_GT(oram.retriesIssued(), 0u);
    EXPECT_LE(oram.faultsRecovered(), oram.faultsDetected());
}

TEST(PathOramRecovery, FaultFreeRunsKeepZeroCounters)
{
    oram::OramConfig c = tinyConfig();
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram oram(c, map, 3);
    oram.enableIntegrity(0x77);
    for (std::uint64_t id = 0; id < 32; ++id)
        oram.access(id, oram::Op::Write, pattern(id));
    EXPECT_EQ(oram.faultsDetected(), 0u);
    EXPECT_EQ(oram.retriesIssued(), 0u);
}

// ---------------------------------------------------------------------
// Serialization + checkpoint files
// ---------------------------------------------------------------------

TEST(Serial, RoundTripsEveryFieldKind)
{
    ByteWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.b(true);
    w.f64(-2.5);
    const std::vector<std::uint8_t> raw = {1, 2, 3};
    w.bytes(raw);
    w.blob(raw);
    w.str("hello");

    ByteReader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(r.b());
    EXPECT_DOUBLE_EQ(r.f64(), -2.5);
    std::vector<std::uint8_t> back(3);
    r.bytes(back);
    EXPECT_EQ(back, raw);
    EXPECT_EQ(r.blob(), raw);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.atEnd());
}

TEST(Serial, OverrunLatchesNotOk)
{
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.data());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.u64(), 0u); // overrun
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u32(), 0u); // stays latched
    EXPECT_FALSE(r.atEnd());
}

TEST(Checkpoint, SaveLoadRoundTrips)
{
    const std::string path = tmpPath("roundtrip.ckpt");
    std::vector<std::uint8_t> payload(1000);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i * 31);
    EXPECT_EQ(sim::saveCheckpoint(path, payload), "");
    std::vector<std::uint8_t> back;
    EXPECT_EQ(sim::loadCheckpoint(path, back), "");
    EXPECT_EQ(back, payload);
    std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingTruncatedAndCorrupted)
{
    std::vector<std::uint8_t> back;
    EXPECT_NE(sim::loadCheckpoint(tmpPath("nonexistent.ckpt"), back), "");

    const std::string path = tmpPath("broken.ckpt");
    std::vector<std::uint8_t> payload(512, 0x5a);
    ASSERT_EQ(sim::saveCheckpoint(path, payload), "");

    // Read the frame back so we can damage it in controlled ways.
    std::ifstream in(path, std::ios::binary);
    std::vector<char> frame((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    in.close();

    const auto write_frame = [&](const std::vector<char> &bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };

    // Truncated payload.
    std::vector<char> cut(frame.begin(), frame.end() - 100);
    write_frame(cut);
    back.assign(1, 0xff);
    EXPECT_NE(sim::loadCheckpoint(path, back), "");
    EXPECT_EQ(back, std::vector<std::uint8_t>{0xff}); // untouched

    // Truncated header.
    write_frame({frame.begin(), frame.begin() + 10});
    EXPECT_NE(sim::loadCheckpoint(path, back), "");

    // Corrupted payload byte (digest mismatch).
    std::vector<char> corrupt = frame;
    corrupt[corrupt.size() - 7] ^= 0x01;
    write_frame(corrupt);
    EXPECT_NE(sim::loadCheckpoint(path, back), "");

    // Bad magic.
    std::vector<char> bad_magic = frame;
    bad_magic[0] ^= 0x01;
    write_frame(bad_magic);
    EXPECT_NE(sim::loadCheckpoint(path, back), "");

    // Version skew.
    std::vector<char> bad_version = frame;
    bad_version[8] = 99;
    write_frame(bad_version);
    const std::string err = sim::loadCheckpoint(path, back);
    EXPECT_NE(err.find("version"), std::string::npos) << err;

    // The pristine frame still loads.
    write_frame(frame);
    EXPECT_EQ(sim::loadCheckpoint(path, back), "");
    EXPECT_EQ(back, payload);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// RecoveryRun checkpoint/restart determinism
// ---------------------------------------------------------------------

namespace {

sim::RecoveryRunConfig
runConfig(const std::string &kind, std::uint32_t shards,
          const std::string &fault = "")
{
    sim::RecoveryRunConfig cfg;
    cfg.deviceKind = kind;
    cfg.shards = shards;
    cfg.sessions = 2;
    cfg.txnsPerSession = 16;
    cfg.seed = 42;
    if (!fault.empty())
        cfg.fault = dram::FaultSpec::parse(fault);
    return cfg;
}

/** Uninterrupted golden: streams per shard + summary row. */
struct GoldenRun
{
    std::vector<std::vector<sim::RecoveryRun::Event>> streams;
    std::string row;
};

GoldenRun
golden(const sim::RecoveryRunConfig &cfg)
{
    sim::RecoveryRun run(cfg);
    run.start();
    run.finish();
    run.verifyPayloads(4);
    GoldenRun g;
    for (std::uint32_t i = 0; i < run.shardCount(); ++i)
        g.streams.push_back(run.shardStream(i));
    g.row = run.csvRow();
    return g;
}

void
expectRestoredMatchesGolden(const sim::RecoveryRunConfig &cfg,
                            std::uint64_t kill_at)
{
    const GoldenRun g = golden(cfg);
    const std::string path = tmpPath("restart.ckpt");
    {
        sim::RecoveryRun victim(cfg);
        victim.start();
        for (std::uint64_t k = 0; k < kill_at; ++k)
            victim.serveOne();
        ASSERT_EQ(victim.saveTo(path), "");
    }
    sim::RecoveryRun resumed(cfg);
    ASSERT_EQ(resumed.restoreFrom(path), "");
    EXPECT_EQ(resumed.servedTotal(), kill_at);
    resumed.finish();
    resumed.verifyPayloads(4);
    EXPECT_EQ(resumed.csvRow(), g.row);
    for (std::uint32_t i = 0; i < resumed.shardCount(); ++i)
        EXPECT_TRUE(resumed.shardStream(i) == g.streams[i])
            << "shard " << i;
    std::remove(path.c_str());
}

} // namespace

TEST(RecoveryRun, RestoredTimingRunReplaysGoldenStream)
{
    expectRestoredMatchesGolden(runConfig("timing", 1), 9);
}

TEST(RecoveryRun, RestoredFunctionalRunReplaysGoldenStream)
{
    expectRestoredMatchesGolden(runConfig("functional", 1), 13);
}

TEST(RecoveryRun, RestoredShardedFaultyRunReplaysGoldenStream)
{
    expectRestoredMatchesGolden(
        runConfig("functional", 4, "flip+stuck@2e-3#9"), 21);
}

TEST(RecoveryRun, RestoredEvictingRunReplaysGoldenStream)
{
    // Wide-rate pipelined run with the background eviction engine on:
    // evictions fire inside every enforced gap, and a mid-run kill/
    // restore must replay the uninterrupted eviction schedule bit for
    // bit (debt and the schedule counter ride the checkpoint).
    auto cfg = runConfig("timing", 1);
    cfg.pathMode = oram::PathMode::Pipelined;
    cfg.evictionPolicy = oram::EvictionPolicy::Gap;
    cfg.evictionBudget = 16;
    cfg.rate = 2500;

    GoldenRun g;
    std::uint64_t golden_evictions = 0;
    {
        sim::RecoveryRun run(cfg);
        run.start();
        run.finish();
        for (std::uint32_t i = 0; i < run.shardCount(); ++i)
            g.streams.push_back(run.shardStream(i));
        g.row = run.csvRow();
        golden_evictions = run.evictionsIssued();
        ASSERT_GT(golden_evictions, 0u)
            << "the case must actually exercise the engine";
    }

    const std::string path = tmpPath("evict_restart.ckpt");
    {
        sim::RecoveryRun victim(cfg);
        victim.start();
        for (std::uint64_t k = 0; k < 11; ++k)
            victim.serveOne();
        ASSERT_EQ(victim.saveTo(path), "");
    }
    sim::RecoveryRun resumed(cfg);
    ASSERT_EQ(resumed.restoreFrom(path), "");
    resumed.finish();
    EXPECT_EQ(resumed.csvRow(), g.row);
    EXPECT_EQ(resumed.evictionsIssued(), golden_evictions);
    for (std::uint32_t i = 0; i < resumed.shardCount(); ++i)
        EXPECT_TRUE(resumed.shardStream(i) == g.streams[i])
            << "shard " << i;
    std::remove(path.c_str());
}

TEST(RecoveryRun, RestoredEvictingBurstReplaysGoldenStream)
{
    // Saturating burst (rate far below occupancy): no eviction fits
    // mid-burst, so the checkpoint carries peak deferral debt — the
    // restored run must still land on the golden stream.
    auto cfg = runConfig("timing", 1);
    cfg.pathMode = oram::PathMode::Pipelined;
    cfg.evictionPolicy = oram::EvictionPolicy::Gap;
    cfg.evictionBudget = 1u << 12;
    cfg.rate = 64;
    expectRestoredMatchesGolden(cfg, 11);
}

TEST(RecoveryRun, RestoreRejectsMismatchedEvictionConfig)
{
    auto cfg = runConfig("timing", 1);
    cfg.pathMode = oram::PathMode::Pipelined;
    cfg.evictionPolicy = oram::EvictionPolicy::Gap;
    cfg.evictionBudget = 16;
    const std::string path = tmpPath("evict_mismatch.ckpt");
    {
        sim::RecoveryRun run(cfg);
        run.start();
        run.serveOne();
        ASSERT_EQ(run.saveTo(path), "");
    }
    // Restoring under a different eviction budget would silently shift
    // the deferral pattern mid-stream: the chain must fail loudly.
    auto other = cfg;
    other.evictionBudget = 8;
    sim::RecoveryRun victim(other);
    EXPECT_DEATH(
        {
            auto r = victim.restoreFrom(path);
            (void)r;
        },
        "budget");
    std::remove(path.c_str());
}

TEST(OramControllerSnapshot, RejectsPatchedGeometryBytes)
{
    // The controller snapshot now carries the calibrated per-access
    // geometry (bytes, chunks, crypto calls); a payload whose geometry
    // words were altered must be rejected, not silently adopted.
    const auto cfg = tinyConfig(1 << 10);
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(7);
    oram::OramController ctrl(cfg, mem, rng);
    ctrl.access(0);
    ByteWriter w;
    ctrl.saveState(w);

    // The pristine snapshot restores into an identically built twin.
    {
        dram::DramModel m2{dram::DramConfig{}};
        Rng r2(7);
        oram::OramController twin(cfg, m2, r2);
        ByteReader r(w.data());
        twin.restoreState(r);
        EXPECT_TRUE(r.atEnd());
        EXPECT_EQ(twin.realAccesses(), ctrl.realAccesses());
    }

    // Field order: latency, occupancy, bytes/access, ... as fixed
    // 8-byte words — byte 16 is the low byte of bytesPerAccess.
    std::vector<std::uint8_t> patched = w.data();
    ASSERT_GT(patched.size(), 17u);
    patched[16] ^= 1;
    EXPECT_DEATH(
        {
            dram::DramModel m3{dram::DramConfig{}};
            Rng r3(7);
            oram::OramController victim(cfg, m3, r3);
            ByteReader r(patched);
            victim.restoreState(r);
        },
        "bucket geometry");
}

TEST(RecoveryRun, SnapshotBytesAreDeterministic)
{
    const auto cfg = runConfig("functional", 2, "flip@1e-3#9");
    const std::string p1 = tmpPath("det1.ckpt");
    const std::string p2 = tmpPath("det2.ckpt");
    for (const auto &p : {p1, p2}) {
        sim::RecoveryRun run(cfg);
        run.start();
        for (int k = 0; k < 11; ++k)
            run.serveOne();
        ASSERT_EQ(run.saveTo(p), "");
    }
    std::vector<std::uint8_t> a, b;
    ASSERT_EQ(sim::loadCheckpoint(p1, a), "");
    ASSERT_EQ(sim::loadCheckpoint(p2, b), "");
    EXPECT_EQ(a, b);
    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(RecoveryRun, RestoreRejectsMismatchedConfiguration)
{
    const std::string path = tmpPath("mismatch.ckpt");
    {
        sim::RecoveryRun run(runConfig("timing", 2));
        run.start();
        run.serveOne();
        ASSERT_EQ(run.saveTo(path), "");
    }
    // Same checkpoint, different shard count: the restore chain must
    // fail loudly rather than silently resume a different topology.
    sim::RecoveryRun other(runConfig("timing", 1));
    EXPECT_DEATH(
        {
            auto r = other.restoreFrom(path);
            (void)r;
        },
        "");
    std::remove(path.c_str());
}

TEST(RecoveryRun, GoldenPinnedObservableStream)
{
    // Cross-run, cross-platform pinned stream for the M = 1 timing run
    // at seed 42: AES-keyed calibration and fixed-point timing, so
    // these values never drift. If they change, checkpoint/restart
    // golden comparisons silently lose their meaning — that is a bug,
    // not a fixture to regenerate.
    sim::RecoveryRun run(runConfig("timing", 1));
    run.start();
    run.finish();
    const auto s = run.shardStream(0);
    ASSERT_EQ(s.size(), 40u);
    EXPECT_EQ(s[0].start, 1000u);
    EXPECT_EQ(s[1].start, 2690u);
    EXPECT_EQ(s[2].start, 4380u);
    EXPECT_EQ(s[3].start, 6070u);
    EXPECT_TRUE(s[0].real);
    EXPECT_EQ(run.lastRealCompletion(), 54080u);
    EXPECT_EQ(run.servedTotal(), 32u);
}

TEST(RecoveryRun, FaultChargingKeepsStreamOnFaultFreeGrid)
{
    // The leak-free claim at test scale: the faulty run's access-start
    // sequence equals the fault-free run's over the common prefix.
    const auto clean_cfg = runConfig("functional", 1);
    const auto faulty_cfg = runConfig("functional", 1, "flip@5e-3#9");
    const GoldenRun clean = golden(clean_cfg);

    sim::RecoveryRun faulty(faulty_cfg);
    faulty.start();
    faulty.finish();
    EXPECT_EQ(faulty.verifyPayloads(4), 0u);
    EXPECT_GT(faulty.faultsDetected(), 0u);
    const auto stream = faulty.shardStream(0);
    const std::size_t n = std::min(stream.size(), clean.streams[0].size());
    ASSERT_GT(n, 0u);
    for (std::size_t j = 0; j < n; ++j)
        EXPECT_EQ(stream[j].start, clean.streams[0][j].start) << j;
}
