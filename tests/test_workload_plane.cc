/**
 * @file
 * Workload plane tests: the WorkloadSource registry and spec parser,
 * per-rank generator determinism under interleaving, the versioned
 * binary op-trace format (round-trip + rejection), KV-over-ORAM block
 * packing (inline/spill round trips, probing, updates, misses, failed
 * puts), the KV-serving harness's worker-count bit-identity, the
 * synthetic-vs-recorded-trace replay identity, the Daly checkpoint
 * method driving RecoveryRun's snapshot chain, and the SystemConfig /
 * stat-dump plumbing around all of it.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/dram_model.hh"
#include "oram/oram_device.hh"
#include "sim/kv_backend.hh"
#include "sim/kv_serving.hh"
#include "sim/recovery_run.hh"
#include "sim/stat_dump.hh"
#include "sim/system_config.hh"
#include "sim/workload_driver.hh"
#include "workload/op_trace.hh"
#include "workload/workload_source.hh"

using namespace tcoram;
using workload::WorkloadOp;
using workload::WorkloadOpKind;
using workload::WorkloadParams;

namespace {

std::string
tmpPath(const std::string &name)
{
    return "test_workload_plane_" + name;
}

/** Pull rank @p rank of a fresh source to End (capped). */
std::vector<WorkloadOp>
pullRank(workload::WorkloadSource &src, std::uint32_t rank,
         std::size_t cap = 100'000)
{
    std::vector<WorkloadOp> out;
    while (out.size() < cap) {
        const WorkloadOp op = src.getNext(rank);
        out.push_back(op);
        if (op.kind == WorkloadOpKind::End)
            break;
    }
    return out;
}

WorkloadParams
kvParams()
{
    WorkloadParams p;
    p.method = "kv";
    p.ranks = 3;
    p.opsPerRank = 40;
    p.keySpace = 64;
    p.zipfTheta = 0.9;
    p.getFraction = 0.6;
    p.scanFraction = 0.2;
    p.scanLen = 4;
    p.thinkCycles = 50;
    return p;
}

} // namespace

// ---------------------------------------------------------------------
// Registry + spec parsing

TEST(WorkloadRegistry, ListsBuiltinsSorted)
{
    const auto methods = workload::WorkloadRegistry::instance().methods();
    EXPECT_TRUE(std::is_sorted(methods.begin(), methods.end()));
    for (const char *m : {"daly", "kv", "synthetic", "trace"}) {
        EXPECT_TRUE(workload::WorkloadRegistry::instance().contains(m))
            << m;
        EXPECT_NE(std::find(methods.begin(), methods.end(), m),
                  methods.end());
    }
    EXPECT_FALSE(
        workload::WorkloadRegistry::instance().contains("nope"));
}

TEST(WorkloadRegistryDeath, UnknownMethodIsFatal)
{
    WorkloadParams p;
    p.method = "definitely-not-registered";
    EXPECT_DEATH({ auto s = workload::loadWorkload(p); }, "unknown");
}

TEST(WorkloadSpec, ParsesMethodAndKeys)
{
    const WorkloadParams p = workload::parseWorkloadSpec(
        "kv:seed=7,ranks=3,ops=10,keys=100,theta=0.5,get=0.7,scan=0.1,"
        "scanlen=5,value=32,think=100");
    EXPECT_EQ(p.method, "kv");
    EXPECT_EQ(p.seed, 7u);
    EXPECT_EQ(p.ranks, 3u);
    EXPECT_EQ(p.opsPerRank, 10u);
    EXPECT_EQ(p.keySpace, 100u);
    EXPECT_DOUBLE_EQ(p.zipfTheta, 0.5);
    EXPECT_DOUBLE_EQ(p.getFraction, 0.7);
    EXPECT_DOUBLE_EQ(p.scanFraction, 0.1);
    EXPECT_EQ(p.scanLen, 5u);
    EXPECT_EQ(p.valueBytes, 32u);
    EXPECT_EQ(p.thinkCycles, 100u);
}

TEST(WorkloadSpec, BareMethodAndDalyKeys)
{
    EXPECT_EQ(workload::parseWorkloadSpec("synthetic").method,
              "synthetic");
    const WorkloadParams d = workload::parseWorkloadSpec(
        "daly:mtti=1e6,delta=5000,opcycles=100");
    EXPECT_DOUBLE_EQ(d.mttiCycles, 1e6);
    EXPECT_EQ(d.checkpointCycles, 5000u);
    EXPECT_EQ(d.opCycles, 100u);
}

TEST(WorkloadSpecDeath, RejectsBadSpecs)
{
    EXPECT_DEATH(
        { auto p = workload::parseWorkloadSpec("kv:bogus=1"); },
        "bogus");
    EXPECT_DEATH(
        { auto p = workload::parseWorkloadSpec("kv:seed=abc"); },
        "unsigned integer");
    EXPECT_DEATH(
        { auto p = workload::parseWorkloadSpec("kv:ranks=0"); },
        "ranks");
    EXPECT_DEATH({ auto p = workload::parseWorkloadSpec(""); },
                 "method");
}

// ---------------------------------------------------------------------
// Generator contracts

TEST(WorkloadDeterminism, RankStreamsSurviveInterleaving)
{
    for (const char *method : {"synthetic", "kv", "daly"}) {
        WorkloadParams p = kvParams();
        p.method = method;
        // Reference: pull each rank to End, one rank at a time.
        auto ref_src = workload::loadWorkload(p);
        std::vector<std::vector<WorkloadOp>> ref;
        for (std::uint32_t r = 0; r < p.ranks; ++r)
            ref.push_back(pullRank(*ref_src, r));
        // Adversarial interleaving: round-robin ranks 2,0,1,2,0,1,...
        auto mixed_src = workload::loadWorkload(p);
        std::vector<std::vector<WorkloadOp>> mixed(p.ranks);
        std::vector<bool> ended(p.ranks, false);
        while (!std::all_of(ended.begin(), ended.end(),
                            [](bool b) { return b; })) {
            for (const std::uint32_t r : {2u, 0u, 1u}) {
                if (ended[r])
                    continue;
                const WorkloadOp op = mixed_src->getNext(r);
                mixed[r].push_back(op);
                if (op.kind == WorkloadOpKind::End)
                    ended[r] = true;
            }
        }
        for (std::uint32_t r = 0; r < p.ranks; ++r)
            EXPECT_EQ(ref[r], mixed[r]) << method << " rank " << r;
    }
}

TEST(WorkloadDeterminism, EndIsTerminalAndIdempotent)
{
    WorkloadParams p = kvParams();
    p.opsPerRank = 3;
    auto src = workload::loadWorkload(p);
    auto ops = pullRank(*src, 0);
    ASSERT_FALSE(ops.empty());
    EXPECT_EQ(ops.back().kind, WorkloadOpKind::End);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(src->getNext(0).kind, WorkloadOpKind::End);
}

TEST(WorkloadDeterminism, SeedsSeparateRanks)
{
    WorkloadParams p = kvParams();
    auto src = workload::loadWorkload(p);
    const auto r0 = pullRank(*src, 0);
    const auto r1 = pullRank(*src, 1);
    EXPECT_NE(r0, r1); // astronomically unlikely to collide
}

TEST(WorkloadBurstDepth, ThinkTimeBoundsTheBurst)
{
    WorkloadParams p = kvParams();
    p.thinkCycles = 50; // think ops interleave: short bursts
    const std::uint32_t with_think =
        workload::observedBurstDepth(p, 1u << 20);
    p.thinkCycles = 0; // open loop: the whole rank is one burst
    const std::uint32_t open = workload::observedBurstDepth(p, 1u << 20);
    EXPECT_GE(with_think, 1u);
    EXPECT_GT(open, with_think);
    // The cap clamps.
    EXPECT_EQ(workload::observedBurstDepth(p, 2), 2u);
}

// ---------------------------------------------------------------------
// Op-trace format

TEST(OpTrace, RoundTripsThroughBytesAndFiles)
{
    WorkloadParams p = kvParams();
    auto src = workload::loadWorkload(p);
    const workload::OpTrace trace = workload::recordOpTrace(*src);
    EXPECT_EQ(trace.rankCount(), p.ranks);

    const auto bytes = workload::encodeOpTrace(trace);
    workload::OpTrace back;
    EXPECT_EQ(workload::decodeOpTrace(bytes, back), "");
    EXPECT_EQ(trace, back);

    const std::string path = tmpPath("roundtrip.trace");
    EXPECT_EQ(workload::writeOpTrace(path, trace), "");
    workload::OpTrace from_file;
    EXPECT_EQ(workload::readOpTrace(path, from_file), "");
    EXPECT_EQ(trace, from_file);
    std::remove(path.c_str());
}

TEST(OpTrace, ReplaysRecordedStream)
{
    WorkloadParams p = kvParams();
    auto src = workload::loadWorkload(p);
    const workload::OpTrace trace = workload::recordOpTrace(*src);
    const std::string path = tmpPath("replay.trace");
    ASSERT_EQ(workload::writeOpTrace(path, trace), "");

    WorkloadParams rp;
    rp.method = "trace";
    rp.path = path;
    auto replay = workload::loadWorkload(rp);
    EXPECT_EQ(replay->ranks(), p.ranks);
    auto fresh = workload::loadWorkload(p);
    for (std::uint32_t r = 0; r < p.ranks; ++r)
        EXPECT_EQ(pullRank(*replay, r), pullRank(*fresh, r))
            << "rank " << r;
    std::remove(path.c_str());
}

TEST(OpTrace, RejectsCorruptInputs)
{
    WorkloadParams p = kvParams();
    p.ranks = 2;
    p.opsPerRank = 5;
    auto src = workload::loadWorkload(p);
    const auto bytes =
        workload::encodeOpTrace(workload::recordOpTrace(*src));
    workload::OpTrace out;

    // Truncation at every interesting boundary fails, never crashes.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, std::size_t{11},
          bytes.size() / 2, bytes.size() - 1}) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() +
                                                static_cast<long>(keep));
        EXPECT_NE(workload::decodeOpTrace(cut, out), "") << keep;
    }

    auto bad_magic = bytes;
    bad_magic[0] ^= 0xff;
    EXPECT_NE(workload::decodeOpTrace(bad_magic, out).find("magic"),
              std::string::npos);

    auto bad_version = bytes;
    bad_version[4] = 99;
    EXPECT_NE(workload::decodeOpTrace(bad_version, out).find("version"),
              std::string::npos);

    auto trailing = bytes;
    trailing.push_back(0);
    EXPECT_NE(workload::decodeOpTrace(trailing, out).find("trailing"),
              std::string::npos);

    auto bad_kind = bytes;
    bad_kind[20] = 0x7f; // first record's kind byte (12-byte header
                         // + 8-byte rank-0 op count before it)
    EXPECT_NE(workload::decodeOpTrace(bad_kind, out).find("kind"),
              std::string::npos);

    EXPECT_NE(workload::readOpTrace(tmpPath("missing.trace"), out), "");
}

// ---------------------------------------------------------------------
// KV block packing

TEST(KvBackend, GeometryAndCodec)
{
    sim::KvConfig cfg;
    cfg.blockBytes = 64;
    cfg.homeSlots = 32;
    cfg.spillPerSlot = 2;
    EXPECT_EQ(cfg.inlineCapacity(), 51u);
    EXPECT_EQ(cfg.maxValueBytes(), 51u + 128u);
    EXPECT_EQ(cfg.totalBlocks(), 32u * 3u);

    sim::KVBackend be(cfg);
    EXPECT_EQ(be.spillBlocksFor(0), 0u);
    EXPECT_EQ(be.spillBlocksFor(51), 0u);
    EXPECT_EQ(be.spillBlocksFor(52), 1u);
    EXPECT_EQ(be.spillBlocksFor(51 + 64), 1u);
    EXPECT_EQ(be.spillBlocksFor(51 + 65), 2u);

    // Home and spill ids never collide across the table.
    std::vector<std::uint64_t> ids;
    for (std::uint64_t s = 0; s < cfg.homeSlots; ++s) {
        ids.push_back(be.homeBlockId(s));
        for (std::uint32_t j = 0; j < cfg.spillPerSlot; ++j)
            ids.push_back(be.spillBlockId(s, j));
    }
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

    std::vector<std::uint8_t> value(40);
    for (std::size_t i = 0; i < value.size(); ++i)
        value[i] = static_cast<std::uint8_t>(i * 3);
    std::vector<std::uint8_t> block(cfg.blockBytes);
    be.encodeRecord(block, 0xdeadbeefull, value);
    const auto h = be.decodeHeader(block);
    EXPECT_TRUE(h.used);
    EXPECT_EQ(h.key, 0xdeadbeefull);
    EXPECT_EQ(h.len, 40u);
}

TEST(KvBackend, PutGetRoundTripsAcrossSpills)
{
    oram::OramConfig ocfg;
    ocfg.numBlocks = 1 << 10;
    ocfg.recursionLevels = 2;
    ocfg.stashCapacity = 400;
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::FunctionalOramDevice dev(ocfg, mem, rng, /*key_seed=*/3);

    sim::KvConfig kcfg;
    kcfg.homeSlots = 64;
    kcfg.spillPerSlot = 2;
    sim::KVBackend be(kcfg);
    sim::KvOpCursor cur(be);
    Cycles now = 0;

    // Sizes straddling the inline boundary and both spill blocks.
    const std::vector<std::uint32_t> sizes{1,  50, 51, 52,
                                           64, 115, 116, 179};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const std::uint64_t key = 1000 + i;
        std::vector<std::uint8_t> value(sizes[i]);
        for (std::size_t j = 0; j < value.size(); ++j)
            value[j] = static_cast<std::uint8_t>(
                mixSeed(key, j));
        cur.beginPut(key, value);
        sim::kvRunSync(cur, dev, 0, now);
        EXPECT_FALSE(cur.failed());

        cur.beginGet(key);
        sim::kvRunSync(cur, dev, 0, now);
        EXPECT_TRUE(cur.hit()) << sizes[i];
        EXPECT_EQ(cur.value(), value) << sizes[i];
    }

    // Update in place with a different length; the new len wins.
    std::vector<std::uint8_t> shorter(20, 0x5a);
    cur.beginPut(1007, shorter);
    sim::kvRunSync(cur, dev, 0, now);
    cur.beginGet(1007);
    sim::kvRunSync(cur, dev, 0, now);
    EXPECT_TRUE(cur.hit());
    EXPECT_EQ(cur.value(), shorter);
    EXPECT_GE(cur.stats().updates, 1u);

    // Absent key misses.
    cur.beginGet(99'999);
    sim::kvRunSync(cur, dev, 0, now);
    EXPECT_FALSE(cur.hit());
    EXPECT_GE(cur.stats().misses, 1u);
}

TEST(KvBackend, ProbesThroughCollisionsAndFailsPastTheLimit)
{
    oram::OramConfig ocfg;
    ocfg.numBlocks = 1 << 10;
    ocfg.recursionLevels = 2;
    ocfg.stashCapacity = 400;
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(13);
    oram::FunctionalOramDevice dev(ocfg, mem, rng, 5);

    sim::KvConfig kcfg;
    kcfg.homeSlots = 8; // tiny: collisions guaranteed
    kcfg.probeLimit = 8;
    sim::KVBackend be(kcfg);
    sim::KvOpCursor cur(be);
    Cycles now = 0;

    const std::vector<std::uint8_t> v(10, 0xab);
    for (std::uint64_t key = 0; key < 8; ++key) {
        cur.beginPut(key, v);
        sim::kvRunSync(cur, dev, 0, now);
        EXPECT_FALSE(cur.failed()) << key;
    }
    EXPECT_GT(cur.stats().probes, cur.stats().puts); // probing happened
    // Every key still readable through its probe chain.
    for (std::uint64_t key = 0; key < 8; ++key) {
        cur.beginGet(key);
        sim::kvRunSync(cur, dev, 0, now);
        EXPECT_TRUE(cur.hit()) << key;
    }
    // The table is full: a ninth distinct key exhausts the probe limit.
    cur.beginPut(100, v);
    sim::kvRunSync(cur, dev, 0, now);
    EXPECT_TRUE(cur.failed());
    EXPECT_EQ(cur.stats().failedPuts, 1u);
    cur.beginGet(100);
    sim::kvRunSync(cur, dev, 0, now);
    EXPECT_FALSE(cur.hit());
}

TEST(KvServing, SelfVerifyingValueCodec)
{
    std::vector<std::uint8_t> value;
    sim::KvServingRun::buildValue(value, 0x1234'5678'9abcull, 7, 64);
    EXPECT_EQ(value.size(), 64u);
    EXPECT_TRUE(
        sim::KvServingRun::checkValue(value, 0x1234'5678'9abcull));
    EXPECT_FALSE(sim::KvServingRun::checkValue(value, 0x999ull));
    value[40] ^= 1;
    EXPECT_FALSE(
        sim::KvServingRun::checkValue(value, 0x1234'5678'9abcull));
}

// ---------------------------------------------------------------------
// Serving harness determinism

namespace {

sim::KvServingConfig
smallServing()
{
    sim::KvServingConfig cfg;
    cfg.shards = 2;
    cfg.workload.method = "kv";
    cfg.workload.ranks = 64;
    cfg.workload.opsPerRank = 4;
    cfg.workload.keySpace = 128;
    cfg.workload.scanFraction = 0.1;
    cfg.workload.scanLen = 2;
    cfg.kv.homeSlots = 512;
    return cfg;
}

} // namespace

TEST(KvServing, WorkerCountsAreBitIdentical)
{
    sim::KvServingRun one(smallServing());
    one.run();
    EXPECT_TRUE(one.allTokensRetired());
    EXPECT_EQ(one.payloadMismatches(), 0u);
    EXPECT_GT(one.opsCompleted(), 0u);

    auto cfg4 = smallServing();
    cfg4.threads = 4;
    sim::KvServingRun four(cfg4);
    four.run();
    EXPECT_EQ(four.streamCsv(), one.streamCsv());
    EXPECT_EQ(four.opsCompleted(), one.opsCompleted());
    EXPECT_EQ(four.stats().hits, one.stats().hits);
}

TEST(KvServing, MultiProducerServesEverythingCleanly)
{
    auto cfg = smallServing();
    cfg.lanes = 4;
    cfg.threads = 2;
    sim::KvServingRun mp(cfg);
    mp.runMultiProducer();
    EXPECT_TRUE(mp.allTokensRetired());
    EXPECT_EQ(mp.payloadMismatches(), 0u);
    EXPECT_EQ(mp.stats().failedPuts, 0u);
    // Same op population as the single-producer run (the submission
    // interleaving may differ; the work served must not).
    sim::KvServingRun sp(smallServing());
    sp.run();
    EXPECT_EQ(mp.opsCompleted(), sp.opsCompleted());
}

TEST(KvServingDeath, RejectsAliasingFunctionalCap)
{
    auto cfg = smallServing();
    cfg.functionalBlockCap = 16; // would fold the KV table
    EXPECT_DEATH({ sim::KvServingRun run(cfg); }, "fold");
}

// ---------------------------------------------------------------------
// Replay driver: one API, bit-identical trace replay

TEST(WorkloadReplay, RecordedTraceIsBitIdentical)
{
    sim::WorkloadReplayConfig cfg;
    cfg.shards = 2;
    cfg.workload.method = "synthetic";
    cfg.workload.ranks = 4;
    cfg.workload.opsPerRank = 32;
    sim::WorkloadReplayRun synth(cfg);
    synth.run();
    EXPECT_TRUE(synth.allTokensRetired());

    const std::string path = tmpPath("replay_identity.trace");
    {
        auto src = workload::loadWorkload(cfg.workload);
        ASSERT_EQ(workload::writeOpTrace(path,
                                         workload::recordOpTrace(*src)),
                  "");
    }
    auto tcfg = cfg;
    tcfg.workload.method = "trace";
    tcfg.workload.path = path;
    sim::WorkloadReplayRun replay(tcfg);
    replay.run();
    EXPECT_EQ(replay.streamCsv(), synth.streamCsv());
    EXPECT_EQ(replay.opsCompleted(), synth.opsCompleted());
    std::remove(path.c_str());
}

TEST(WorkloadReplay, KvMethodRunsThroughTheSameApi)
{
    sim::WorkloadReplayConfig cfg;
    cfg.shards = 2;
    cfg.workload = kvParams();
    sim::WorkloadReplayRun run(cfg);
    run.run();
    EXPECT_TRUE(run.allTokensRetired());
    EXPECT_GT(run.opsCompleted(), 0u);
}

// ---------------------------------------------------------------------
// Daly checkpoint chain

TEST(DalyWorkload, ComputesTheOptimumInterval)
{
    WorkloadParams p;
    p.method = "daly";
    p.ranks = 1;
    p.opsPerRank = 100;
    p.mttiCycles = 1e6;
    p.checkpointCycles = 5000;
    p.opCycles = 100;
    auto src = workload::loadWorkload(p);
    // t_opt = sqrt(2*5000*1e6) - 5000 = 95000 cycles -> 950 ops.
    EXPECT_EQ(src->checkpointIntervalOps(), 950u);

    // delta >= M/2 degenerates to t_opt = M.
    p.checkpointCycles = 600'000;
    auto degenerate = workload::loadWorkload(p);
    EXPECT_EQ(degenerate->checkpointIntervalOps(), 10'000u);

    // Markers land exactly every interval.
    p.checkpointCycles = 450; // t_opt = 30000 - 450 -> 295 ops... use small
    p.mttiCycles = 1e5;
    p.opCycles = 1000;
    auto marked = workload::loadWorkload(p);
    const std::uint64_t interval = marked->checkpointIntervalOps();
    ASSERT_GE(interval, 1u);
    std::uint64_t since = 0;
    for (const WorkloadOp &op : pullRank(*marked, 0)) {
        if (op.kind == WorkloadOpKind::End)
            break;
        ++since;
        if (op.checkpointAfter) {
            EXPECT_EQ(since, interval);
            since = 0;
        }
    }
}

TEST(DalyRecovery, SnapshotChainRestoresBitIdentically)
{
    sim::RecoveryRunConfig cfg;
    cfg.shards = 2;
    cfg.rate = 500;
    cfg.workloadSpec = "daly:ranks=2,ops=40,mtti=1e5,delta=4500,"
                       "opcycles=1000";
    sim::RecoveryRun probe(cfg);
    EXPECT_TRUE(probe.workloadDriven());
    EXPECT_EQ(probe.backlogTotal(), 80u);
    EXPECT_GT(probe.checkpointIntervalOps(), 0u);
    ASSERT_FALSE(probe.checkpointMarks().empty());
    const std::uint64_t mark = probe.checkpointMarks().front();
    ASSERT_GT(mark, 0u);
    ASSERT_LT(mark, probe.backlogTotal());

    // Uninterrupted reference run.
    sim::RecoveryRun ref(cfg);
    ref.start();
    ref.finish();

    // Chained run: serve to the first Daly mark, snapshot, finish in a
    // fresh harness restored from the snapshot.
    const std::string path = tmpPath("daly.ckpt");
    {
        sim::RecoveryRun first(cfg);
        first.start();
        while (first.servedTotal() < mark)
            ASSERT_TRUE(first.serveOne());
        ASSERT_EQ(first.saveTo(path), "");
    }
    sim::RecoveryRun resumed(cfg);
    ASSERT_EQ(resumed.restoreFrom(path), "");
    EXPECT_EQ(resumed.servedTotal(), mark);
    resumed.finish();
    EXPECT_EQ(resumed.servedTotal(), ref.servedTotal());
    for (std::uint32_t i = 0; i < ref.shardCount(); ++i) {
        const auto a = ref.shardStream(i);
        const auto b = resumed.shardStream(i);
        // The resumed run's recorder only saw the post-snapshot tail;
        // it must equal the reference stream's tail exactly.
        ASSERT_LE(b.size(), a.size());
        EXPECT_TRUE(std::equal(b.begin(), b.end(),
                               a.end() - static_cast<long>(b.size())))
            << "shard " << i;
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// SystemConfig plumbing + stat dump

TEST(SystemConfigWorkload, ParsesAndValidates)
{
    sim::SystemConfig cfg = sim::SystemConfig::dynamicScheme(4, 4);
    cfg.workload = "kv:ranks=5,keys=64";
    const WorkloadParams p = cfg.workloadSpec();
    EXPECT_EQ(p.method, "kv");
    EXPECT_EQ(p.ranks, 5u);
    EXPECT_EQ(p.keySpace, 64u);
}

TEST(SystemConfigWorkloadDeath, NamesTheConfigKey)
{
    sim::SystemConfig cfg = sim::SystemConfig::dynamicScheme(4, 4);
    EXPECT_DEATH({ auto p = cfg.workloadSpec(); }, "workload spec");
    cfg.workload = "kv:bogus=1";
    EXPECT_DEATH({ auto p = cfg.workloadSpec(); }, "bogus");
}

TEST(SystemConfigWorkload, EvictionAutoTune)
{
    sim::SystemConfig cfg = sim::SystemConfig::dynamicScheme(4, 4);
    // Off: falls back to the fixed budget.
    EXPECT_EQ(cfg.evictionAutoBudget(), cfg.evictionBudget);
    // On, valid: highwater + async + a workload to observe.
    cfg.evictionAutoTune = true;
    cfg.dramMode = "async";
    cfg.evictionPolicy = "highwater";
    cfg.workload = "kv:ranks=4,ops=16,think=100";
    const std::uint32_t budget = cfg.evictionAutoBudget();
    EXPECT_GE(budget, 1u);
    EXPECT_LE(budget, sim::SystemConfig::kMaxEvictionBudget);
}

TEST(SystemConfigWorkloadDeath, AutoTuneNeedsHighwater)
{
    sim::SystemConfig cfg = sim::SystemConfig::dynamicScheme(4, 4);
    cfg.evictionAutoTune = true;
    cfg.workload = "kv";
    EXPECT_DEATH({ auto b = cfg.evictionAutoBudget(); }, "highwater");
}

TEST(StatDumpKv, ExportsKvKeysThroughTheColumnPlane)
{
    sim::KVStats s;
    s.gets = 10;
    s.hits = 6;
    s.misses = 4;
    s.puts = 3;
    s.probes = 14;
    s.spillBlocksRead = 5;
    const StatDump d = sim::toStatDump(s, 1234, 5678);
    EXPECT_EQ(d.get("kv.gets"), 10.0);
    EXPECT_DOUBLE_EQ(d.get("kv.hit_rate"), 0.6);
    EXPECT_EQ(d.get("kv.get_p99_cycles"), 1234.0);
    EXPECT_EQ(d.get("kv.put_p99_cycles"), 5678.0);
    EXPECT_TRUE(d.has("kv.spill_blocks_read"));

    const std::string csv = sim::kvStatsCsv(s, 1234, 5678);
    EXPECT_EQ(csv.rfind("stat,value\n", 0), 0u);
    EXPECT_NE(csv.find("kv.gets,10"), std::string::npos);
    EXPECT_NE(csv.find("kv.hit_rate,0.6"), std::string::npos);
    // Byte-stable: rendering twice is identical.
    EXPECT_EQ(csv, sim::kvStatsCsv(s, 1234, 5678));
}
