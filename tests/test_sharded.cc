/**
 * @file
 * Sharded ORAM device array: deterministic PRF routing (cross-run,
 * cross-platform pinned values — the reason the router is AES-based
 * and not std::hash), near-uniform shard histograms, the M = 1
 * transparency claim (bit-identical to the bare device), per-shard
 * observable-stream periodicity and session-count independence under
 * the shard-aware scheduler, composed admission/monitoring across M
 * streams, config validation, and the full-system sharded run.
 */

#include <gtest/gtest.h>

#include <vector>

#include "dram/dram_model.hh"
#include "oram/oram_device.hh"
#include "oram/sharded_device.hh"
#include "sim/experiment.hh"
#include "sim/oram_scheduler.hh"
#include "sim/report.hh"
#include "sim/secure_processor.hh"
#include "timing/leakage.hh"
#include "workload/spec_suite.hh"

using namespace tcoram;

namespace {

oram::OramConfig
tinyConfig()
{
    oram::OramConfig c;
    c.numBlocks = 1 << 10;
    c.recursionLevels = 2;
    c.stashCapacity = 400;
    return c;
}

} // namespace

TEST(ShardRouter, PinnedAssignmentsAreCrossRunDeterministic)
{
    // Golden shard assignments: AES under a seed-derived key, so the
    // same on every platform, compiler and crypto backend (the engine
    // KATs pin cross-backend equality). If these change, reproducible
    // sharded runs break — that is a bug, not a fixture to regenerate.
    const oram::ShardRouter r8(0x7e57, 8);
    const std::vector<std::uint32_t> expect8 = {4, 1, 2, 1, 1, 7, 4, 7,
                                                4, 4, 3, 2, 7, 2, 4, 7};
    for (std::uint64_t i = 0; i < expect8.size(); ++i)
        EXPECT_EQ(r8.shardOf(i), expect8[i]) << "block " << i;

    const oram::ShardRouter r4(1, 4);
    const std::vector<std::uint32_t> expect4 = {1, 3, 1, 1, 2, 0, 3, 1};
    for (std::uint64_t i = 0; i < expect4.size(); ++i)
        EXPECT_EQ(r4.shardOf(i), expect4[i]) << "block " << i;

    // A second instance under the same seed is the same function.
    const oram::ShardRouter again(0x7e57, 8);
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_EQ(again.shardOf(i), r8.shardOf(i));
}

TEST(ShardRouter, EveryBlockMapsToExactlyOneShardNearUniformly)
{
    const std::uint32_t shards = 8;
    const std::uint64_t n = 1 << 15;
    const oram::ShardRouter router(99, shards);
    std::vector<std::uint64_t> histogram(shards, 0);
    for (std::uint64_t id = 0; id < n; ++id) {
        const std::uint32_t s = router.shardOf(id);
        ASSERT_LT(s, shards);
        // Stable: the id maps to the same shard every time it is asked.
        ASSERT_EQ(router.shardOf(id), s);
        ++histogram[s];
    }
    const double expect = static_cast<double>(n) / shards;
    for (std::uint32_t s = 0; s < shards; ++s) {
        EXPECT_GT(static_cast<double>(histogram[s]), 0.90 * expect)
            << "shard " << s << " underloaded";
        EXPECT_LT(static_cast<double>(histogram[s]), 1.10 * expect)
            << "shard " << s << " overloaded";
    }
}

TEST(ShardedOramDevice, OneShardIsBitIdenticalToTheBareDevice)
{
    const auto cfg = tinyConfig();
    dram::DramModel mem_bare{dram::DramConfig{}};
    dram::DramModel mem_arr{dram::DramConfig{}};
    Rng rng_bare(9), rng_arr(9);
    oram::TimingOramDevice bare(cfg, mem_bare, rng_bare);
    oram::OramDeviceSpec inner; // timing
    oram::ShardedOramDevice arr(inner, cfg, 1, /*route_seed=*/5, mem_arr,
                                rng_arr);

    EXPECT_EQ(arr.shardCount(), 1u);
    EXPECT_EQ(arr.accessLatency(), bare.accessLatency());
    EXPECT_EQ(arr.bytesPerAccess(), bare.bytesPerAccess());
    EXPECT_EQ(arr.shardConfig().numBlocks, cfg.numBlocks);

    Cycles t = 0;
    for (int k = 0; k < 40; ++k) {
        const auto txn = (k % 3 == 0)
                             ? timing::OramTransaction::dummy()
                             : timing::OramTransaction::real(k * 17, k % 2);
        const auto ca = arr.submit(t, txn);
        const auto cb = bare.submit(t, txn);
        ASSERT_EQ(ca.start, cb.start) << "txn " << k;
        ASSERT_EQ(ca.done, cb.done) << "txn " << k;
        ASSERT_EQ(ca.bytesMoved, cb.bytesMoved) << "txn " << k;
        ASSERT_EQ(ca.cryptoBytes, cb.cryptoBytes) << "txn " << k;
        ASSERT_EQ(ca.cryptoCalls, cb.cryptoCalls) << "txn " << k;
        t = ca.done / 2; // mid-flight resubmission exercises busy-wait
    }
    EXPECT_EQ(arr.realAccesses(), bare.realAccesses());
    EXPECT_EQ(arr.dummyAccesses(), bare.dummyAccesses());
}

TEST(ShardedOramDevice, RealsLandExactlyOnTheRoutedShard)
{
    const auto cfg = tinyConfig();
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(3);
    oram::OramDeviceSpec inner;
    oram::ShardedOramDevice arr(inner, cfg, 4, /*route_seed=*/11, mem, rng,
                                /*record=*/true);

    std::vector<std::uint64_t> expect(4, 0);
    Cycles t = 0;
    for (std::uint64_t id = 0; id < 64; ++id) {
        ++expect[arr.shardOf(id)];
        t = arr.submit(t, timing::OramTransaction::real(id)).done;
    }
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_EQ(arr.shard(s).realAccesses(), expect[s]) << "shard " << s;
        total += arr.shard(s).realAccesses();
        // Every recorded real on this shard is one the router sent here.
        for (const auto &rec : arr.recorder(s)->records())
            EXPECT_EQ(rec.kind, timing::OramTransaction::Kind::Real);
    }
    EXPECT_EQ(total, 64u) << "each block served by exactly one shard";
    EXPECT_EQ(arr.realAccesses(), 64u);
}

TEST(ShardedOramDevice, FunctionalShardsRoundTripData)
{
    auto cfg = tinyConfig();
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(21);
    oram::OramDeviceSpec inner;
    inner.kind = "functional";
    inner.keySeed = 77;
    oram::ShardedOramDevice arr(inner, cfg, 2, /*route_seed=*/13, mem, rng);

    std::vector<std::uint8_t> out(cfg.blockBytes, 0);
    Cycles t = 0;
    // Blocks spread over both shards; shard-local id compaction keeps
    // distinct globals distinct inside each subtree.
    for (std::uint64_t id = 100; id < 116; ++id) {
        std::vector<std::uint8_t> payload(cfg.blockBytes);
        for (std::size_t i = 0; i < payload.size(); ++i)
            payload[i] = static_cast<std::uint8_t>(id + 3 * i);
        auto wr = timing::OramTransaction::real(id, /*is_write=*/true);
        wr.data = payload;
        t = arr.submit(t, wr).done;

        auto rd = timing::OramTransaction::real(id, /*is_write=*/false);
        rd.out = out;
        t = arr.submit(t, rd).done;
        EXPECT_EQ(out, payload) << "block " << id;
    }
    EXPECT_EQ(arr.shard(0).realAccesses() + arr.shard(1).realAccesses(),
              32u);
}

namespace {

constexpr Cycles kShardRate = 500;

/** Sharded scheduler harness over recorded timing subtrees. */
struct ShardedHarness
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng{42};
    oram::OramDeviceSpec inner;
    oram::ShardedOramDevice device;
    timing::RateSet rates{std::vector<Cycles>{kShardRate}};
    timing::EpochSchedule sched{Cycles{1} << 30, 2, Cycles{1} << 40};
    timing::RateLearner learner{rates};
    protocol::LeakageParams params;
    sim::OramScheduler scheduler;

    explicit ShardedHarness(std::uint32_t shards,
                            oram::PathMode mode = oram::PathMode::Sync,
                            Cycles rate = kShardRate,
                            oram::EvictionConfig evict = {})
        : inner(specWithMode(mode, evict)),
          device(inner, tinyConfig(), shards, /*route_seed=*/17, mem, rng,
                 /*record=*/true),
          rates(std::vector<Cycles>{rate}),
          params(singleRateParams()),
          scheduler(device, rates, sched, learner, rate, params)
    {
    }

    static oram::OramDeviceSpec
    specWithMode(oram::PathMode mode, oram::EvictionConfig evict = {})
    {
        oram::OramDeviceSpec s;
        s.pathMode = mode;
        s.evictionPolicy = evict.policy;
        s.evictionBudget = evict.budget;
        return s;
    }

    static protocol::LeakageParams
    singleRateParams()
    {
        protocol::LeakageParams p;
        p.rateCount = 1; // static rate: 0 bits per stream
        return p;
    }
};

/** Per-shard observable start streams after a session-dependent load. */
std::vector<std::vector<Cycles>>
shardStreams(std::uint32_t shards, std::size_t n_sessions, Cycles horizon,
             oram::PathMode mode = oram::PathMode::Sync)
{
    ShardedHarness h(shards, mode);
    for (std::size_t s = 0; s < n_sessions; ++s)
        h.scheduler.openSession(100 + s);
    // Deliberately different per-session arrival patterns: bursty,
    // sparse, phase-shifted — no shard's stream may care.
    for (std::size_t s = 0; s < n_sessions; ++s) {
        const Cycles stride = 700 + 400 * s;
        std::uint64_t k = 0;
        for (Cycles t = 50 * s; t < horizon / 4; t += stride)
            h.scheduler.submit(static_cast<std::uint32_t>(s), t,
                               timing::OramTransaction::real(
                                   s * 1000 + 31 * k++));
    }
    h.scheduler.run();
    h.scheduler.drainUntil(horizon);
    std::vector<std::vector<Cycles>> streams;
    for (std::uint32_t i = 0; i < shards; ++i)
        streams.push_back(h.device.recorder(i)->startCycles());
    return streams;
}

} // namespace

TEST(ShardedScheduler, PerShardStreamsArePeriodicAndSessionCountBlind)
{
    const std::uint32_t shards = 3;
    const Cycles horizon = 300'000;
    const auto one = shardStreams(shards, 1, horizon);
    const auto four = shardStreams(shards, 4, horizon);

    ShardedHarness probe(shards); // per-shard OLATs for the periods
    for (std::uint32_t i = 0; i < shards; ++i) {
        const Cycles period =
            kShardRate + probe.device.shard(i).accessLatency();
        ASSERT_GE(one[i].size(), 10u) << "shard " << i;
        for (std::size_t j = 1; j < one[i].size(); ++j)
            ASSERT_EQ(one[i][j] - one[i][j - 1], period)
                << "shard " << i << " gap " << j;
        // An adversary watching any shard cannot tell 1 client from 4.
        EXPECT_EQ(one[i], four[i]) << "shard " << i;
    }
}

TEST(ShardedScheduler, AsyncShardStreamsStayExactlyPeriodic)
{
    // Under the split-transaction DRAM mode every shard's enforced
    // stream must remain exactly periodic: the OLAT shrinks to the
    // read phase, and the service gap becomes
    // max(rate + OLAT, occupancy) — constant, whatever the sessions
    // do. An adversary still cannot distinguish 1 client from 4.
    const std::uint32_t shards = 3;
    const Cycles horizon = 300'000;
    const auto one =
        shardStreams(shards, 1, horizon, oram::PathMode::Pipelined);
    const auto four =
        shardStreams(shards, 4, horizon, oram::PathMode::Pipelined);

    ShardedHarness probe(shards, oram::PathMode::Pipelined);
    for (std::uint32_t i = 0; i < shards; ++i) {
        const auto &dev = probe.device.shard(i);
        ASSERT_LT(dev.accessLatency(), dev.occupancyPerAccess())
            << "shard " << i << " should calibrate a write-back tail";
        const Cycles period =
            std::max(kShardRate + dev.accessLatency(),
                     dev.occupancyPerAccess());
        ASSERT_GE(one[i].size(), 10u) << "shard " << i;
        for (std::size_t j = 1; j < one[i].size(); ++j)
            ASSERT_EQ(one[i][j] - one[i][j - 1], period)
                << "shard " << i << " gap " << j;
        EXPECT_EQ(one[i], four[i]) << "shard " << i;
    }
}

TEST(ShardedScheduler, EvictionKeepsShardStreamsPeriodicAndSessionBlind)
{
    // Background eviction engine on, wide-rate regime: every shard
    // must keep the exact rate + OLAT cadence while evictions drain
    // through the enforced gaps, and no shard's stream may reveal the
    // session count. The rate is the deepest shard's occupancy so one
    // eviction fits every gap on every shard.
    const std::uint32_t shards = 3;
    const Cycles horizon = 300'000;
    ShardedHarness probe(shards, oram::PathMode::Pipelined);
    Cycles rate = 0;
    for (std::uint32_t i = 0; i < shards; ++i)
        rate = std::max(rate, probe.device.shard(i).occupancyPerAccess());
    ASSERT_GT(rate, 0u);

    const oram::EvictionConfig evict{oram::EvictionPolicy::Gap, 16};
    struct Run
    {
        std::vector<std::vector<Cycles>> streams;
        std::uint64_t evictions = 0;
    };
    auto run = [&](std::size_t n_sessions) {
        ShardedHarness h(shards, oram::PathMode::Pipelined, rate, evict);
        for (std::size_t s = 0; s < n_sessions; ++s)
            h.scheduler.openSession(100 + s);
        for (std::size_t s = 0; s < n_sessions; ++s) {
            const Cycles stride = 700 + 400 * s;
            std::uint64_t k = 0;
            for (Cycles t = 50 * s; t < horizon / 4; t += stride)
                h.scheduler.submit(static_cast<std::uint32_t>(s), t,
                                   timing::OramTransaction::real(
                                       s * 1000 + 31 * k++));
        }
        h.scheduler.run();
        h.scheduler.drainUntil(horizon);
        Run out;
        for (std::uint32_t i = 0; i < shards; ++i)
            out.streams.push_back(h.device.recorder(i)->startCycles());
        out.evictions = h.device.evictionsIssued();
        return out;
    };
    const auto one = run(1);
    const auto four = run(4);
    EXPECT_GT(one.evictions, 0u) << "gaps this wide must drain debt";

    for (std::uint32_t i = 0; i < shards; ++i) {
        const Cycles period =
            rate + probe.device.shard(i).accessLatency();
        ASSERT_GE(one.streams[i].size(), 10u) << "shard " << i;
        for (std::size_t j = 1; j < one.streams[i].size(); ++j)
            ASSERT_EQ(one.streams[i][j] - one.streams[i][j - 1], period)
                << "shard " << i << " gap " << j;
        EXPECT_EQ(one.streams[i], four.streams[i]) << "shard " << i;
    }
}

TEST(ShardedScheduler, BacklogDrainsFasterWithMoreShards)
{
    auto span_of = [](std::uint32_t shards) {
        ShardedHarness h(shards);
        h.scheduler.openSession(7);
        for (std::uint64_t k = 0; k < 256; ++k)
            h.scheduler.submit(0, k, timing::OramTransaction::real(k * 13));
        return h.scheduler.run();
    };
    const Cycles one = span_of(1);
    const Cycles four = span_of(4);
    // Strictly better than 3x: four subtree streams serve the backlog
    // concurrently (and shallower subtrees have smaller OLAT).
    EXPECT_LT(four, one / 3);
}

TEST(ShardedScheduler, AdmissionUsesTheComposedLeakageBound)
{
    ShardedHarness h(4);
    // Override the harness's single-rate params: rebuild a scheduler
    // whose configuration leaks 32 bits per stream (paper R4/E4), so
    // the 4-shard composed bound is 128 bits.
    protocol::LeakageParams params; // paper defaults
    ASSERT_DOUBLE_EQ(params.oramTimingBits(), 32.0);
    params.shards = 4;
    ASSERT_DOUBLE_EQ(params.oramTimingBits(), 128.0);

    sim::OramScheduler sched(h.device, h.rates, h.sched, h.learner,
                             kShardRate, params);
    const auto single_ok = sched.openSession(1, 33.0);  // < composed
    const auto composed_ok = sched.openSession(2, 129.0);
    const auto open = sched.openSession(3);
    EXPECT_FALSE(sched.sessionAdmitted(single_ok))
        << "a budget that only covers ONE stream must be rejected";
    EXPECT_TRUE(sched.sessionAdmitted(composed_ok));
    EXPECT_TRUE(sched.sessionAdmitted(open));
    ASSERT_NE(sched.monitor(), nullptr);
    EXPECT_DOUBLE_EQ(sched.monitor()->limit(), 129.0);
}

TEST(ShardedScheduler, SharedMonitorBoundsTheSumAcrossShards)
{
    // 4 shards, |R| = 4 (2 bits per free decision), tiny epochs: the
    // composed budget must bound the SUM of free decisions over all
    // shard enforcers, wherever they land.
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(42);
    oram::OramDeviceSpec inner;
    oram::ShardedOramDevice device(inner, tinyConfig(), 4, 17, mem, rng);
    timing::RateSet rates(4);
    timing::EpochSchedule schedule(2048, 2, Cycles{1} << 40);
    timing::RateLearner learner(rates);

    protocol::LeakageParams params;
    params.rateCount = 4;
    params.epochGrowth = 2;
    params.epoch0 = Cycles{1} << 20;
    params.tmax = Cycles{1} << 30;
    const double budget = params.oramTimingBits() * 4 + 1.0; // composed + 1

    sim::OramScheduler sched(device, rates, schedule, learner, 256, params);
    sched.openSession(1, budget);
    for (int k = 0; k < 400; ++k)
        sched.submit(0, k * 300, timing::OramTransaction::real(k * 7));
    sched.run();
    sched.drainUntil(Cycles{40'000'000});

    ASSERT_NE(sched.monitor(), nullptr);
    EXPECT_LE(sched.monitor()->bitsConsumed(), budget + 1e-9);
    unsigned pinned = 0;
    double realized = 0.0;
    for (std::size_t i = 0; i < sched.shardCount(); ++i) {
        const auto &enf = sched.shard(i).enforcer();
        pinned += enf.pinnedDecisions();
        realized += timing::LeakageAccountant::oramTimingBits(
            rates.size(), enf.currentEpoch());
    }
    EXPECT_GT(pinned, 0u)
        << "the scaled schedule must exhaust the composed budget";
    // Bits actually consumed = realized decisions minus the pinned
    // (free-decision-free) ones; the monitor's ledger is their sum.
    EXPECT_DOUBLE_EQ(sched.monitor()->bitsConsumed(),
                     realized - 2.0 * pinned);
}

TEST(SystemConfigSharding, ShardCountIsValidated)
{
    auto ok = sim::SystemConfig::dynamicScheme(4, 4);
    ok.oramShards = sim::SystemConfig::kMaxOramShards;
    EXPECT_EQ(ok.shardCount(), sim::SystemConfig::kMaxOramShards);
    EXPECT_EXIT(
        {
            auto bad = sim::SystemConfig::dynamicScheme(4, 4);
            bad.oramShards = 0;
            bad.shardCount();
        },
        ::testing::ExitedWithCode(1), "oramShards");
    EXPECT_EXIT(
        {
            auto bad = sim::SystemConfig::dynamicScheme(4, 4);
            bad.oramShards = sim::SystemConfig::kMaxOramShards + 1;
            bad.shardCount();
        },
        ::testing::ExitedWithCode(1), "oramShards");
}

/** Full-system sharded run: per-shard enforcers drive the subtree
 *  devices, and the reported leakage composes over the shards. */
TEST(SecureProcessorSharded, RunsWithComposedLeakageAccounting)
{
    auto cfg = sim::SystemConfig::dynamicScheme(4, 4);
    cfg.oram = oram::OramConfig::benchConfig();
    cfg.epoch0 = Cycles{1} << 16;
    cfg.ipcWindow = 50'000;
    cfg.oramShards = 4;

    const auto prof = workload::specProfile("mcf");
    sim::SecureProcessor proc(cfg, prof);
    ASSERT_EQ(proc.shardEnforcers().size(), 4u);
    ASSERT_EQ(proc.enforcer(), nullptr);
    ASSERT_STREQ(proc.oramDevice()->kind(), "sharded");

    const auto r = proc.run(60'000, 120'000);
    EXPECT_GT(r.oramReal, 0u);
    EXPECT_GT(r.oramDummy, 0u);

    double expect_bits = 0.0;
    for (const auto &enf : proc.shardEnforcers())
        expect_bits += timing::LeakageAccountant::oramTimingBits(
            4, enf->currentEpoch());
    EXPECT_DOUBLE_EQ(r.simLeakageBits, expect_bits);
    EXPECT_DOUBLE_EQ(r.paperLeakageBits,
                     4.0 * timing::LeakageAccountant::paperConfigBits(4, 4));
}

/**
 * The wrapper-transparency claim at system scale: a whole run through
 * the M = 1 sharded array charges bit-identical stats to the bare
 * timing device (the golden-stats test pins the same claim against
 * the checked-in fig6 fixtures).
 */
TEST(SecureProcessorSharded, OneShardRunMatchesTheBareDeviceRun)
{
    for (const char *scheme : {"base_oram", "dynamic"}) {
        auto cfg = std::string(scheme) == "base_oram"
                       ? sim::SystemConfig::baseOram()
                       : sim::SystemConfig::dynamicScheme(4, 4);
        cfg.oram = oram::OramConfig::benchConfig();
        cfg.epoch0 = Cycles{1} << 16;
        cfg.ipcWindow = 50'000;

        sim::SystemConfig bare = cfg;
        bare.oramDevice = "timing";
        sim::SystemConfig arr = cfg;
        arr.oramDevice = "sharded"; // engages the wrapper at M = 1
        arr.oramShards = 1;

        const auto prof = workload::specProfile("h264");
        const auto rb = sim::runOne(bare, prof, 60'000, 120'000);
        const auto ra = sim::runOne(arr, prof, 60'000, 120'000);
        EXPECT_EQ(sim::csvRow(rb), sim::csvRow(ra))
            << scheme << ": 1-shard array drifted from the bare device";
    }
}
