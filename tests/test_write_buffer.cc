/**
 * @file
 * Write-buffer concurrent-outstanding-request coverage (paper Req 3,
 * Figure 4). A deterministic scripted trace drives the in-order core
 * with more outstanding stores than the 8-entry buffer holds, against
 * a rate-enforced ORAM device — pinning:
 *
 *  - the buffer's FIFO drain order (device sees program order);
 *  - the structural stall count (stores beyond capacity block the
 *    core until the OLDEST write completes);
 *  - the enforcer interaction: every concurrently outstanding request
 *    charges one rate period of Waste (Req 3), and the enforced slot
 *    chain stays exactly periodic through the burst.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_enforcer.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"
#include "workload/generators.hh"

using namespace tcoram;

namespace {

constexpr Cycles kRate = 500;
constexpr Cycles kLat = 100;

/** Replays a fixed op list, then idles on harmless filler. */
class ScriptedTrace : public workload::TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<workload::TraceOp> ops)
        : ops_(std::move(ops))
    {
    }

    workload::TraceOp
    next() override
    {
        if (pos_ < ops_.size())
            return ops_[pos_++];
        return {1'000'000, 0, 0, workload::OpKind::Load};
    }

    const std::string &name() const override { return name_; }

  private:
    std::vector<workload::TraceOp> ops_;
    std::size_t pos_ = 0;
    std::string name_ = "scripted";
};

/** Recording fixed-latency device (the enforcer's backend). */
class RecordingDevice : public timing::OramDeviceIf
{
  public:
    timing::OramCompletion
    submit(Cycles now, const timing::OramTransaction &txn) override
    {
        starts_.push_back(now);
        writes_.push_back(txn.isWrite);
        blocks_.push_back(txn.blockId);
        return {now, now + kLat, 0, 0, 0};
    }
    Cycles accessLatency() const override { return kLat; }
    std::vector<Cycles> starts_;
    std::vector<bool> writes_;
    std::vector<std::uint64_t> blocks_;
};

/** Miss handler routing the core through the rate enforcer. */
class EnforcedMemory : public cpu::MemorySystemIf
{
  public:
    explicit EnforcedMemory(timing::RateEnforcer &enf) : enf_(enf) {}
    Cycles
    serveMiss(Cycles now, Addr line_addr) override
    {
        return enf_
            .serve(now, timing::OramTransaction::real(line_addr / 64, false))
            .done;
    }
    Cycles
    serveAsync(Cycles now, Addr line_addr) override
    {
        return enf_
            .serve(now, timing::OramTransaction::real(line_addr / 64, true))
            .done;
    }

  private:
    timing::RateEnforcer &enf_;
};

} // namespace

TEST(WriteBuffer, FifoPushPopAndStallCounters)
{
    cache::WriteBuffer wb(8);
    for (Addr a = 0; a < 8; ++a) {
        ASSERT_TRUE(wb.canAccept());
        wb.push(a * 64);
    }
    EXPECT_FALSE(wb.canAccept());
    wb.noteFullStall();
    EXPECT_EQ(wb.fullStalls(), 1u);
    // Strict FIFO: pops come back in push order.
    for (Addr a = 0; a < 8; ++a) {
        EXPECT_EQ(wb.front(), a * 64);
        wb.pop();
    }
    EXPECT_TRUE(wb.empty());
    EXPECT_EQ(wb.totalPushed(), 8u);
}

TEST(WriteBuffer, Req3BurstDrainsInOrderThroughTheEnforcer)
{
    RecordingDevice dev;
    timing::RateSet rates(std::vector<Cycles>{kRate});
    timing::EpochSchedule schedule(Cycles{1} << 30, 2, Cycles{1} << 40);
    timing::RateLearner learner(rates);
    timing::RateEnforcer enf(dev, rates, schedule, learner, kRate);
    EnforcedMemory mem(enf);
    cache::Hierarchy hierarchy(1 << 20);

    // 12 back-to-back stores to distinct lines (4 more than the
    // 8-entry buffer holds), then one demand load.
    std::vector<workload::TraceOp> ops;
    for (Addr i = 0; i < 12; ++i)
        ops.push_back({0, 0, i * 64, workload::OpKind::Store});
    ops.push_back({0, 0, 100 * 64, workload::OpKind::Load});
    ScriptedTrace trace(std::move(ops));

    cpu::Core core(hierarchy, mem, trace, 1'000'000);
    const cpu::CoreStats stats = core.run(13);

    // Every store write-allocates through the buffer; the load blocks.
    EXPECT_EQ(stats.asyncMisses, 12u);
    EXPECT_EQ(stats.demandMisses, 1u);

    // Capacity 8: stores 9-12 each stall until the oldest completes.
    EXPECT_EQ(stats.writeBufferStalls, 4u);
    EXPECT_EQ(hierarchy.writeBuffer().fullStalls(), 4u);
    EXPECT_TRUE(hierarchy.writeBuffer().empty()) << "run drains the buffer";

    // The device saw program order: 12 writes then the read, blocks
    // in submission order — the FIFO drain never reorders.
    ASSERT_EQ(dev.starts_.size(), 13u);
    for (std::size_t i = 0; i < 12; ++i) {
        EXPECT_TRUE(dev.writes_[i]) << "txn " << i;
        EXPECT_EQ(dev.blocks_[i], i) << "txn " << i;
    }
    EXPECT_FALSE(dev.writes_[12]);
    EXPECT_EQ(dev.blocks_[12], 100u);

    // The enforced slot chain stays exactly periodic through the
    // burst: starts at 500, 1100, ..., 500 + 600 i.
    for (std::size_t i = 0; i < dev.starts_.size(); ++i)
        EXPECT_EQ(dev.starts_[i], kRate + i * (kRate + kLat))
            << "slot " << i;

    // Req 3: each of the 12 follow-on requests arrived while the
    // previous real access was outstanding — one rate period of Waste
    // apiece on top of the physical slot wait.
    EXPECT_GE(enf.counters().waste(), 12 * kRate);
    EXPECT_EQ(enf.counters().accessCount(), 13u);
    EXPECT_EQ(enf.counters().oramCycles(), 13 * kLat);

    // The core ends when the blocking load returns: slot 13's
    // completion, after all 12 buffered writes have landed.
    EXPECT_EQ(stats.cycles, kRate + 12 * (kRate + kLat) + kLat);
}
