/**
 * @file
 * Fused-datapath tests: bit-identity of the deferred cross-stage
 * crypto batch against the per-tree immediate reference (saveState
 * images and served payloads), the H+2 crypto-call budget across
 * recursion depths, functional equivalence of the Legacy get/set
 * cascade, the phase-split label helpers (load64le/store64le), the
 * fused FlatPositionMap::update, out-of-band self-healing of pending
 * deferred write-backs, and the allocation-free steady state of the
 * deferred segment list (counting global new/delete).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/bitutils.hh"
#include "common/rng.hh"
#include "common/serial.hh"
#include "oram/path_oram.hh"
#include "oram/position_map.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/secure_processor.hh"
#include "workload/spec_suite.hh"

// ---------------------------------------------------------------------
// Counting allocator hook (same pattern as test_pipeline.cc): every
// global new/delete in this binary is counted so a test can assert a
// code region performs zero heap allocations.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocCount{0};
} // namespace

static std::uint64_t
allocationCount()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

void *
operator new(std::size_t n)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace tcoram {
namespace {

oram::OramConfig
recursiveConfig(unsigned levels, std::uint64_t blocks = 128)
{
    oram::OramConfig c;
    c.numBlocks = blocks;
    c.recursionLevels = levels;
    c.stashCapacity = 400;
    return c;
}

/** Drive @p o through a deterministic mixed workload (writes, reads,
 *  dummies) and return every served payload concatenated. */
std::vector<std::uint8_t>
driveMixed(oram::RecursivePathOram &o, const oram::OramConfig &c,
           BlockId blocks, int rounds)
{
    std::vector<std::uint8_t> out(c.blockBytes);
    std::vector<std::uint8_t> data(c.blockBytes);
    std::vector<std::uint8_t> served;
    auto fill = [&](std::uint8_t tag) {
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(tag * 131 + i);
    };
    for (BlockId id = 0; id < blocks; ++id) {
        fill(static_cast<std::uint8_t>(id));
        o.accessInto(id, oram::Op::Write, data, out);
    }
    Rng rng(2026);
    for (int round = 0; round < rounds; ++round) {
        const BlockId id = rng.nextBounded(blocks);
        if (rng.nextBool(0.4)) {
            fill(static_cast<std::uint8_t>(rng.next()));
            o.accessInto(id, oram::Op::Write, data, out);
        } else if (rng.nextBool(0.1)) {
            o.dummyAccess();
        } else {
            o.accessInto(id, oram::Op::Read, {}, out);
        }
        served.insert(served.end(), out.begin(), out.end());
    }
    return served;
}

std::vector<std::uint8_t>
imageOf(const oram::RecursivePathOram &o)
{
    ByteWriter w;
    o.saveState(w);
    return w.data();
}

// ---------------------------------------------------------------------
// Differential: deferred batched write-back vs immediate per-tree
// encrypt. Same seed, same access sequence, same datapath structure —
// the ONLY difference is when the CTR engine runs. CTR keystream is a
// pure function of (key, nonce), so the serialized state (every
// tree's DRAM ciphertexts, nonces, PRF counters, stash, maps) must be
// byte-identical, as must every served payload.
// ---------------------------------------------------------------------

TEST(FusedDatapath, DeferredMatchesImmediateBitForBit)
{
    for (unsigned levels : {0u, 2u}) {
        const oram::OramConfig c = recursiveConfig(levels);
        oram::RecursivePathOram fused(c, 909, crypto::CryptoBackend::Auto,
                                      oram::Datapath::Fused);
        oram::RecursivePathOram imm(c, 909, crypto::CryptoBackend::Auto,
                                    oram::Datapath::FusedImmediate);
        const auto served_fused = driveMixed(fused, c, 48, 1500);
        const auto served_imm = driveMixed(imm, c, 48, 1500);
        EXPECT_EQ(served_fused, served_imm) << "levels=" << levels;
        EXPECT_EQ(imageOf(fused), imageOf(imm)) << "levels=" << levels;
    }
}

TEST(FusedDatapath, LegacyCascadeServesIdenticalPayloads)
{
    // Legacy re-creates the pre-fusion get/set recursion: three path
    // accesses per stage instead of one. Per-tree PRF streams differ
    // (more draws), so DRAM images legitimately diverge — but the
    // logical content must not.
    const oram::OramConfig c = recursiveConfig(2);
    oram::RecursivePathOram fused(c, 4242, crypto::CryptoBackend::Auto,
                                  oram::Datapath::Fused);
    oram::RecursivePathOram legacy(c, 4242, crypto::CryptoBackend::Auto,
                                   oram::Datapath::Legacy);
    EXPECT_EQ(driveMixed(fused, c, 48, 800), driveMixed(legacy, c, 48, 800));
}

// ---------------------------------------------------------------------
// The H+2 crypto budget, pinned across recursion depths: every
// logical access (real or dummy, first-touch or steady-state) costs
// exactly treeCount() + 1 batched engine calls — H+1 whole-path read
// decrypts plus ONE cross-stage write-back flush.
// ---------------------------------------------------------------------

TEST(FusedDatapath, CryptoCallsPerAccessIsTreesPlusOne)
{
    for (unsigned levels : {0u, 1u, 2u, 3u}) {
        const oram::OramConfig c = recursiveConfig(levels, 256);
        oram::RecursivePathOram o(c, 31 + levels);
        const std::uint64_t per_access = o.treeCount() + 1;

        std::vector<std::uint8_t> out(c.blockBytes);
        std::vector<std::uint8_t> data(c.blockBytes, 0x5a);
        std::uint64_t before = o.cryptoCalls();
        for (int i = 0; i < 64; ++i)
            o.accessInto(static_cast<BlockId>(i % 96),
                         i % 2 == 0 ? oram::Op::Write : oram::Op::Read,
                         i % 2 == 0 ? std::span<const std::uint8_t>(data)
                                    : std::span<const std::uint8_t>{},
                         out);
        EXPECT_EQ(o.cryptoCalls() - before, 64u * per_access)
            << "levels=" << levels;

        before = o.cryptoCalls();
        for (int i = 0; i < 32; ++i)
            o.dummyAccess();
        EXPECT_EQ(o.cryptoCalls() - before, 32u * per_access)
            << "levels=" << levels << " (dummy)";
    }
}

// ---------------------------------------------------------------------
// Out-of-band consultations self-heal pending deferred write-backs:
// a direct position-map read between logical accesses (what
// checkInvariant does) must not decode stale ciphertext.
// ---------------------------------------------------------------------

TEST(FusedDatapath, InvariantHoldsAfterMixedLoad)
{
    const oram::OramConfig c = recursiveConfig(2);
    oram::RecursivePathOram o(c, 77);
    driveMixed(o, c, 48, 2000);
    std::vector<BlockId> ids(48);
    for (BlockId i = 0; i < 48; ++i)
        ids[i] = i;
    // checkInvariant consults the recursive position map (Stage::get,
    // which defers ITS write-back) between direct bucket unseals —
    // the epoch self-heal in readPath keeps every decode consistent.
    EXPECT_TRUE(o.dataOram().checkInvariant(ids));
    EXPECT_TRUE(o.dataOram().checkInvariant(ids)) << "re-entrant";
}

// ---------------------------------------------------------------------
// End-to-end plumbing: config string -> datapath kind -> identical
// simulation results (the observable timing/stat plane is datapath-
// independent by construction).
// ---------------------------------------------------------------------

TEST(FusedDatapath, ConfigSelectsDatapathAndResultsMatch)
{
    auto base = sim::SystemConfig::baseOram();
    base.oram.numBlocks = 1 << 12;
    base.epoch0 = 1 << 16;
    base.ipcWindow = 50'000;

    auto fused = base;
    fused.functionalDatapath = "fused";
    auto unfused = base;
    unfused.functionalDatapath = "unfused";
    EXPECT_EQ(fused.functionalDatapathKind(), oram::Datapath::Fused);
    EXPECT_EQ(unfused.functionalDatapathKind(),
              oram::Datapath::FusedImmediate);
    EXPECT_EQ(base.functionalDatapathKind(), oram::Datapath::Fused)
        << "empty string = default";

    const auto prof = workload::specProfile("mcf");
    const sim::SimResult a = sim::runOne(fused, prof, 150'000);
    const sim::SimResult b = sim::runOne(unfused, prof, 150'000);
    EXPECT_EQ(sim::csvRow(a), sim::csvRow(b));
}

// ---------------------------------------------------------------------
// Satellite units: the fused position-map update and the label
// (de)serialization helpers.
// ---------------------------------------------------------------------

TEST(FlatPositionMap, UpdateSwapsInOneTouch)
{
    oram::FlatPositionMap m(8);
    m.set(3, 41);
    EXPECT_EQ(m.update(3, 99), 41u);
    EXPECT_EQ(m.get(3), 99u);
    // Must agree with the interface-default get+set decomposition.
    oram::FlatPositionMap ref(8);
    ref.set(3, 41);
    const Leaf old = ref.get(3);
    ref.set(3, 99);
    EXPECT_EQ(old, 41u);
    EXPECT_EQ(ref.get(3), m.get(3));
}

TEST(BitUtils, Load64Store64RoundTrip)
{
    std::uint8_t buf[16] = {};
    const std::uint64_t v = 0x0123456789abcdefULL;
    store64le(buf + 3, v);
    EXPECT_EQ(load64le(buf + 3), v);
    // Little-endian byte layout is part of the on-disk/in-tree label
    // format (Stage blocks), not just a round-trip property.
    EXPECT_EQ(buf[3], 0xefu);
    EXPECT_EQ(buf[10], 0x01u);
    EXPECT_EQ(buf[0], 0x00u);
    EXPECT_EQ(buf[11], 0x00u);
}

// ---------------------------------------------------------------------
// Allocation-free steady state: once warm, the fused recursive access
// (including the deferred segment list and its flush) performs zero
// heap allocations per access.
// ---------------------------------------------------------------------

TEST(AllocationFree, FusedRecursiveSteadyStateAccess)
{
    const oram::OramConfig c = recursiveConfig(2, 256);
    oram::RecursivePathOram o(c, 55);

    std::vector<std::uint8_t> out(c.blockBytes);
    std::vector<std::uint8_t> data(c.blockBytes, 0xa5);
    Rng rng(9);
    for (int i = 0; i < 400; ++i) {
        const BlockId id = rng.nextBounded(96);
        if (i % 2 == 0)
            o.accessInto(id, oram::Op::Write, data, out);
        else
            o.accessInto(id, oram::Op::Read, {}, out);
        if (i % 7 == 0)
            o.dummyAccess();
    }

    const std::uint64_t before = allocationCount();
    for (int i = 0; i < 500; ++i) {
        const BlockId id = rng.nextBounded(96);
        if (i % 3 == 0)
            o.accessInto(id, oram::Op::Write, data, out);
        else
            o.accessInto(id, oram::Op::Read, {}, out);
        if (i % 11 == 0)
            o.dummyAccess();
    }
    EXPECT_EQ(allocationCount() - before, 0u)
        << "fused recursive access allocated in steady state";
}

} // namespace
} // namespace tcoram
