/**
 * @file
 * Tests for the analysis extensions: exact trace counting vs the §6.1
 * bound, the adversarial rate estimator's exact recovery of the rate
 * sequence (and nothing more), Pareto frontier extraction, and the
 * threshold learner driven end-to-end through SecureProcessor.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "attack/rate_estimator.hh"
#include "sim/pareto.hh"
#include "sim/secure_processor.hh"
#include "timing/rate_enforcer.hh"
#include "timing/trace_count.hh"
#include "workload/spec_suite.hh"

namespace tcoram {
namespace {

// ---------------------------------------------------------------------
// Exact trace counting (footnote 3).
// ---------------------------------------------------------------------

TEST(TraceCount, ExactNeverExceedsBound)
{
    for (unsigned growth : {2u, 4u, 8u, 16u}) {
        const timing::EpochSchedule e(1000, growth, Cycles{1} << 40);
        for (Cycles t : {Cycles{500}, Cycles{5'000}, Cycles{500'000},
                         Cycles{50'000'000}}) {
            const double exact = timing::exactTraceBits(e, 4, t);
            const double bound = timing::boundTraceBits(e, 4, t);
            EXPECT_LE(exact, bound + 1e-9)
                << "growth " << growth << " t " << t;
        }
    }
}

TEST(TraceCount, NoDecisionsMeansTerminationOnly)
{
    // Terminating inside epoch 0: the only information is *when*.
    const timing::EpochSchedule e(1'000'000, 2, Cycles{1} << 40);
    const double bits = timing::exactTraceBits(e, 4, 1000);
    EXPECT_NEAR(bits, std::log2(1000.0), 1e-9);
}

TEST(TraceCount, GrowsWithRates)
{
    const timing::EpochSchedule e(1000, 2, Cycles{1} << 40);
    const Cycles t = 1'000'000;
    double prev = 0;
    for (std::size_t r : {1u, 2u, 4u, 16u}) {
        const double bits = timing::exactTraceBits(e, r, t);
        EXPECT_GE(bits, prev);
        prev = bits;
    }
}

TEST(TraceCount, SingleRateReducesToTermination)
{
    // |R| = 1: the only traces are termination times.
    const timing::EpochSchedule e(1000, 2, Cycles{1} << 40);
    const Cycles t = 123'456;
    EXPECT_NEAR(timing::exactTraceBits(e, 1, t),
                std::log2(static_cast<double>(t)), 1e-9);
}

TEST(TraceCount, BoundSlackIsModest)
{
    // The bound's slack comes from charging every termination time
    // the full |R|^|E|; the exact value stays within a few bits for
    // long-running programs (most mass sits in the last epoch).
    const timing::EpochSchedule e(1000, 2, Cycles{1} << 40);
    const Cycles t = 100'000'000;
    const double exact = timing::exactTraceBits(e, 4, t);
    const double bound = timing::boundTraceBits(e, 4, t);
    EXPECT_LT(bound - exact, 8.0);
}

// ---------------------------------------------------------------------
// Rate estimator: the adversary recovers the rate sequence exactly.
// ---------------------------------------------------------------------

class ScheduleDevice : public timing::OramDeviceIf
{
  public:
    explicit ScheduleDevice(Cycles lat) : lat_(lat) {}
    timing::OramCompletion
    submit(Cycles now, const timing::OramTransaction &) override
    {
        starts_.push_back(now);
        return {now, now + lat_, 0, 0, 0};
    }
    Cycles accessLatency() const override { return lat_; }
    std::vector<Cycles> starts_;

  private:
    Cycles lat_;
};

TEST(RateEstimator, RecoversStaticRate)
{
    ScheduleDevice dev(1488);
    timing::RateSet r(std::vector<Cycles>{1300});
    timing::EpochSchedule e(Cycles{1} << 30, 2, Cycles{1} << 40);
    timing::RateLearner learner(r);
    timing::RateEnforcer enf(dev, r, e, learner, 1300);
    enf.drainUntil(200'000);

    attack::RateEstimator est(1488);
    const auto segments = est.segment(dev.starts_);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_EQ(segments[0].rate, 1300u);
}

TEST(RateEstimator, RecoversEpochRateSequenceExactly)
{
    // Drive a dynamic enforcer through several epochs with shifting
    // demand, then let the adversary decode. The recovered segments
    // must match the enforcer's decision log one for one — no more,
    // no less: exactly the budgeted bits.
    ScheduleDevice dev(1488);
    timing::RateSet r(4);
    timing::EpochSchedule e(50'000, 2, Cycles{1} << 40);
    timing::RateLearner learner(r);
    timing::RateEnforcer enf(dev, r, e, learner, 10000);

    Rng rng(5);
    Cycles t = 0;
    for (int i = 0; i < 120; ++i) {
        // Alternate memory-bound and idle stretches across epochs.
        const bool busy = (enf.currentEpoch() % 2) == 0;
        t = enf.serveReal(t + (busy ? 100 : 60'000) + rng.nextBounded(50));
    }

    attack::RateEstimator est(1488);
    const auto segments = est.segment(dev.starts_);

    // Each decision (including epoch 0's initial rate) appears as one
    // or more constant-period segments whose recovered rate is the
    // decided rate; collapse consecutive equal rates before comparing.
    std::vector<Cycles> recovered;
    for (const auto &s : segments)
        if (recovered.empty() || recovered.back() != s.rate)
            recovered.push_back(s.rate);

    std::vector<Cycles> decided;
    for (const auto &d : enf.decisions())
        if (decided.empty() || decided.back() != d.rate)
            decided.push_back(d.rate);

    // Every recovered rate must be one the enforcer actually decided.
    for (Cycles rate : recovered) {
        bool known = rate == 10000;
        for (const auto &d : enf.decisions())
            known = known || d.rate == rate;
        EXPECT_TRUE(known) << "phantom rate " << rate;
    }
    // And the adversary cannot see more segments than decisions.
    EXPECT_LE(recovered.size(), enf.decisions().size());
}

TEST(RateEstimator, DecodesIndicesAgainstPublicR)
{
    attack::RateEstimator est(1488);
    timing::RateSet r(4);
    std::vector<attack::RateSegment> segs(3);
    segs[0].rate = 256;
    segs[1].rate = r.at(2);
    segs[2].rate = 32768;
    const auto idx = est.decodeRateIndices(segs, r);
    ASSERT_EQ(idx.size(), 3u);
    EXPECT_EQ(idx[0], 0u);
    EXPECT_EQ(idx[1], 2u);
    EXPECT_EQ(idx[2], 3u);
}

TEST(RateEstimator, EmptyAndSingletonTraces)
{
    attack::RateEstimator est(100);
    EXPECT_TRUE(est.segment({}).empty());
    EXPECT_TRUE(est.segment({42}).empty());
}

// ---------------------------------------------------------------------
// Pareto analysis.
// ---------------------------------------------------------------------

TEST(Pareto, DominanceSemantics)
{
    sim::OperatingPoint a{"a", 2.0, 0.5, 32.0};
    sim::OperatingPoint b{"b", 3.0, 0.6, 32.0};
    sim::OperatingPoint c{"c", 2.0, 0.5, 32.0};
    sim::OperatingPoint d{"d", 1.0, 0.9, 0.0};
    EXPECT_TRUE(a.dominates(b));
    EXPECT_FALSE(b.dominates(a));
    EXPECT_FALSE(a.dominates(c)); // equal: no strict improvement
    EXPECT_FALSE(a.dominates(d)); // trade-off: incomparable
    EXPECT_FALSE(d.dominates(a));
}

TEST(Pareto, FrontierFiltersDominated)
{
    std::vector<sim::OperatingPoint> pts = {
        {"fast_hot", 2.0, 0.8, 0.0},
        {"slow_cool", 4.0, 0.4, 0.0},
        {"balanced", 2.5, 0.55, 32.0},
        {"strictly_worse", 4.5, 0.9, 64.0},
    };
    const auto frontier = sim::paretoFrontier(pts);
    ASSERT_EQ(frontier.size(), 3u);
    for (const auto &p : frontier)
        EXPECT_NE(p.name, "strictly_worse");
}

TEST(Pareto, OperatingPointsFromGrid)
{
    auto base = sim::SystemConfig::baseDram();
    auto stat = sim::SystemConfig::staticScheme(1300);
    stat.oram.numBlocks = 1 << 12;
    stat.epoch0 = 1 << 15;
    const std::vector<workload::Profile> profs = {
        workload::specProfile("hmmer")};
    const auto grid = sim::runGrid({base, stat}, profs, 100'000, 100'000);
    const auto pts = sim::operatingPoints(grid);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_EQ(pts[0].name, "static_1300");
    EXPECT_GT(pts[0].perfOverheadX, 1.0);
    EXPECT_DOUBLE_EQ(pts[0].leakageBits, 0.0);
}

// ---------------------------------------------------------------------
// Threshold learner end to end.
// ---------------------------------------------------------------------

TEST(ThresholdEndToEnd, RunsThroughSecureProcessor)
{
    auto cfg = sim::SystemConfig::dynamicScheme(4, 2);
    cfg.oram.numBlocks = 1 << 12;
    cfg.epoch0 = 1 << 15;
    cfg.learnerKind = sim::SystemConfig::Learner::Threshold;
    const auto prof = workload::specProfile("mcf");
    const auto r = sim::runOne(cfg, prof, 300'000, 300'000);
    EXPECT_GT(r.rateDecisions.size(), 2u);
    // Memory-bound: the threshold learner must also land on a fast
    // rate after the initial epoch.
    EXPECT_LE(r.rateDecisions.back().rate, 1290u);
}

TEST(ThresholdEndToEnd, SharperThresholdNeverSlower)
{
    const auto prof = workload::specProfile("gcc");
    auto tight = sim::SystemConfig::dynamicScheme(4, 2);
    tight.oram.numBlocks = 1 << 12;
    tight.epoch0 = 1 << 15;
    tight.learnerKind = sim::SystemConfig::Learner::Threshold;
    tight.thresholdSharpness = 0.0;
    auto loose = tight;
    loose.thresholdSharpness = 5.0;
    const auto r_tight = sim::runOne(tight, prof, 300'000, 300'000);
    const auto r_loose = sim::runOne(loose, prof, 300'000, 300'000);
    // sharpness 0 chooses the predicted-fastest rate each epoch; a
    // huge sharpness tolerates the slowest. Runtime must not invert.
    EXPECT_LE(r_tight.cycles, r_loose.cycles);
}

} // namespace
} // namespace tcoram
