/**
 * @file
 * Tests for the extension features: Merkle integrity verification,
 * the §7.3 threshold learner, leakage-budget enforcement inside the
 * rate enforcer and SecureProcessor, the §10 protected-DRAM scheme,
 * trace file I/O, and CSV reporting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>

#include "crypto/hmac.hh"
#include "oram/integrity.hh"
#include "sim/report.hh"
#include "sim/secure_processor.hh"
#include "timing/threshold_learner.hh"
#include "workload/spec_suite.hh"
#include "workload/trace_io.hh"

namespace tcoram {
namespace {

oram::OramConfig
tinyOram()
{
    oram::OramConfig c;
    c.numBlocks = 128;
    c.recursionLevels = 0;
    c.stashCapacity = 400;
    return c;
}

// ---------------------------------------------------------------------
// Integrity verification.
// ---------------------------------------------------------------------

TEST(Integrity, FreshTreeVerifies)
{
    oram::FlatPositionMap map(128);
    oram::PathOram o(tinyOram(), map, 1);
    oram::IntegrityVerifier iv(o);
    for (Leaf leaf = 0; leaf < o.config().numLeaves(); leaf += 7)
        EXPECT_TRUE(iv.verifyPath(leaf)) << "leaf " << leaf;
}

TEST(Integrity, CommitTracksLegitimateAccesses)
{
    oram::FlatPositionMap map(128);
    oram::PathOram o(tinyOram(), map, 2);
    oram::IntegrityVerifier iv(o);
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        const BlockId id = rng.nextBounded(128);
        EXPECT_TRUE(iv.verifyPath(map.get(id)));
        o.access(id, oram::Op::Read);
        // Commit the path the access actually rewrote (first touches
        // substitute a uniform leaf for the unmaterialized label).
        const Leaf accessed = o.lastAccessedLeaf();
        iv.commitPath(accessed);
        EXPECT_TRUE(iv.verifyPath(accessed));
    }
}

TEST(Integrity, DetectsTamperedBucketOnPath)
{
    oram::FlatPositionMap map(128);
    oram::PathOram o(tinyOram(), map, 4);
    oram::IntegrityVerifier iv(o);
    // Tamper with the root: every path must now fail.
    o.tamperCiphertext(0, 5);
    for (Leaf leaf = 0; leaf < o.config().numLeaves(); leaf += 13)
        EXPECT_FALSE(iv.verifyPath(leaf));
}

TEST(Integrity, DetectsTamperedLeafBucket)
{
    oram::FlatPositionMap map(128);
    oram::PathOram o(tinyOram(), map, 5);
    oram::IntegrityVerifier iv(o);
    // Tamper a leaf-level bucket; its own path fails, a path through
    // the opposite subtree still verifies.
    const Leaf victim = 0;
    const std::uint64_t idx =
        o.bucketIndexOnPath(victim, o.config().treeDepth());
    o.tamperCiphertext(idx, 0);
    EXPECT_FALSE(iv.verifyPath(victim));
    EXPECT_TRUE(iv.verifyPath(o.config().numLeaves() - 1));
}

TEST(Integrity, OffPathSiblingTamperSurvivesUntilVisited)
{
    // Tampering is detected exactly when a path covering the node is
    // verified — matching the lazy-verification model of [25].
    oram::FlatPositionMap map(128);
    oram::PathOram o(tinyOram(), map, 6);
    oram::IntegrityVerifier iv(o);
    const Leaf left_most = 0;
    const Leaf right_most = o.config().numLeaves() - 1;
    const std::uint64_t right_child = 2; // root's right child
    o.tamperCiphertext(right_child, 1);
    // Both paths include the root, but only the right path hashes the
    // tampered bucket's ciphertext directly; the left path uses the
    // *stored* digest of node 2 and thus still matches the old root.
    EXPECT_TRUE(iv.verifyPath(left_most));
    EXPECT_FALSE(iv.verifyPath(right_most));
}

TEST(Integrity, RootChangesOnCommit)
{
    oram::FlatPositionMap map(128);
    oram::PathOram o(tinyOram(), map, 7);
    oram::IntegrityVerifier iv(o);
    const auto before = iv.root();
    o.access(3, oram::Op::Read);
    iv.commitPath(map.get(3)); // remapped leaf; commit the read path too
    iv.commitPath(o.lastAccessedLeaf());
    EXPECT_FALSE(crypto::digestEqual(before, iv.root()));
}

// ---------------------------------------------------------------------
// Threshold learner (§7.3).
// ---------------------------------------------------------------------

TEST(ThresholdLearner, IdlePicksSlowest)
{
    timing::RateSet r(4);
    timing::ThresholdLearner learner(r, 1488);
    timing::PerfCounters pc;
    EXPECT_EQ(learner.nextRate(1'000'000, pc), r.slowest());
}

TEST(ThresholdLearner, SaturatedDemandPicksFastest)
{
    timing::RateSet r(4);
    timing::ThresholdLearner learner(r, 1488, 0.05);
    timing::PerfCounters pc;
    // Demand interval ~ 0: every candidate saturates; only the
    // fastest minimizes the period.
    for (int i = 0; i < 600; ++i)
        pc.noteRealAccess(1488);
    EXPECT_EQ(learner.nextRate(1'000'000, pc), r.fastest());
}

TEST(ThresholdLearner, SparseDemandToleratesSlowRates)
{
    timing::RateSet r(4);
    timing::ThresholdLearner learner(r, 1488, 0.5);
    timing::PerfCounters pc;
    // 10 accesses in a million cycles: demand interval ~100k; even
    // 32768 stays unsaturated and within the threshold.
    for (int i = 0; i < 10; ++i)
        pc.noteRealAccess(1488);
    EXPECT_EQ(learner.nextRate(1'000'000, pc), r.slowest());
}

TEST(ThresholdLearner, AgreesWithSimplePredictorOnSmallR)
{
    // The paper's §7.3 claim: with |R| = 4 the simple averaging
    // predictor and the sophisticated one choose similar rates.
    timing::RateSet r(4);
    timing::RateLearner simple(r, timing::RateLearner::Divider::Exact);
    timing::ThresholdLearner fancy(r, 1488, 0.3);
    Rng rng(42);
    int agree = 0, trials = 200;
    for (int t = 0; t < trials; ++t) {
        timing::PerfCounters pc;
        const auto accesses = 1 + rng.nextBounded(400);
        for (std::uint64_t i = 0; i < accesses; ++i)
            pc.noteRealAccess(1488);
        pc.noteWaste(rng.nextBounded(100'000));
        const Cycles a = simple.nextRate(1'000'000, pc);
        const Cycles b = fancy.nextRate(1'000'000, pc);
        // "Similar" = same candidate or an adjacent one.
        const auto ia = static_cast<long>(r.indexOf(a));
        const auto ib = static_cast<long>(r.indexOf(b));
        if (std::labs(ia - ib) <= 1)
            ++agree;
    }
    EXPECT_GT(agree, trials * 8 / 10);
}

TEST(ThresholdLearner, SharpnessTradesPowerForPerf)
{
    // Larger sharpness must never pick a faster rate.
    timing::RateSet r(8);
    timing::PerfCounters pc;
    for (int i = 0; i < 120; ++i)
        pc.noteRealAccess(1488);
    Cycles prev = 0;
    for (double s : {0.0, 0.1, 0.3, 1.0, 3.0}) {
        timing::ThresholdLearner learner(r, 1488, s);
        const Cycles rate = learner.nextRate(1'000'000, pc);
        EXPECT_GE(rate, prev) << "sharpness " << s;
        prev = rate;
    }
}

// ---------------------------------------------------------------------
// Leakage-budget enforcement.
// ---------------------------------------------------------------------

class BudgetDevice : public timing::OramDeviceIf
{
  public:
    timing::OramCompletion
    submit(Cycles now, const timing::OramTransaction &) override
    {
        return {now, now + 100, 0, 0, 0};
    }
    Cycles accessLatency() const override { return 100; }
};

TEST(LeakageBudget, EnforcerPinsRateAtLimit)
{
    BudgetDevice dev;
    timing::RateSet r(4); // 2 bits per decision
    timing::EpochSchedule e(5'000, 2, Cycles{1} << 40);
    timing::RateLearner learner(r);
    timing::RateEnforcer enf(dev, r, e, learner, 256);
    timing::LeakageMonitor mon(4.0, 4); // 2 free decisions
    enf.attachMonitor(&mon);

    // Drive demand through many epochs.
    Cycles t = 0;
    for (int i = 0; i < 600; ++i)
        t = enf.serveReal(t + 200);
    ASSERT_GT(enf.currentEpoch(), 4u);
    EXPECT_GT(enf.pinnedDecisions(), 0u);
    EXPECT_LE(mon.bitsConsumed(), 4.0 + 1e-9);
    // After the budget, the rate never changes again.
    const auto &d = enf.decisions();
    for (std::size_t i = 3; i < d.size(); ++i)
        EXPECT_EQ(d[i].rate, d[2].rate);
}

TEST(LeakageBudget, SecureProcessorHonorsLimit)
{
    auto cfg = sim::SystemConfig::dynamicScheme(4, 2);
    cfg.oram.numBlocks = 1 << 12;
    cfg.epoch0 = 1 << 15;
    cfg.leakageLimitBits = 4.0; // two free decisions of lg4 = 2 bits
    const auto prof = workload::specProfile("mcf");
    sim::SecureProcessor proc(cfg, prof);
    const auto r = proc.run(400'000);
    ASSERT_GT(r.epochsUsed, 2u);
    EXPECT_GT(proc.enforcer()->pinnedDecisions(), 0u);
    // All decisions after the second are pinned to the second's rate.
    const auto &d = r.rateDecisions;
    ASSERT_GE(d.size(), 4u);
    for (std::size_t i = 3; i < d.size(); ++i)
        EXPECT_EQ(d[i].rate, d[2].rate);
}

TEST(LeakageBudget, UnlimitedByDefault)
{
    auto cfg = sim::SystemConfig::dynamicScheme(4, 2);
    cfg.oram.numBlocks = 1 << 12;
    cfg.epoch0 = 1 << 15;
    const auto prof = workload::specProfile("mcf");
    sim::SecureProcessor proc(cfg, prof);
    proc.run(200'000);
    EXPECT_EQ(proc.enforcer()->pinnedDecisions(), 0u);
}

// ---------------------------------------------------------------------
// Protected DRAM (§10).
// ---------------------------------------------------------------------

TEST(ProtectedDram, RunsAndMakesDummies)
{
    auto cfg = sim::SystemConfig::protectedDram(4, 2);
    cfg.epoch0 = 1 << 15;
    const auto prof = workload::specProfile("astar");
    const auto r = sim::runOne(cfg, prof, 300'000, 300'000);
    EXPECT_GT(r.oramReal, 0u);
    EXPECT_GT(r.oramDummy, 0u);
    EXPECT_GT(r.oramLatency, 0u);
    EXPECT_LT(r.oramLatency, 200u); // line transfer, not a path
    EXPECT_DOUBLE_EQ(r.paperLeakageBits, 64.0); // same accounting
}

TEST(ProtectedDram, FarCheaperThanOram)
{
    // Timing protection without address protection costs a fraction
    // of the ORAM schemes — the point of the §10 discussion.
    const auto prof = workload::specProfile("mcf");
    auto pd = sim::SystemConfig::protectedDram(4, 2);
    pd.epoch0 = 1 << 15;
    auto dyn = sim::SystemConfig::dynamicScheme(4, 2);
    dyn.epoch0 = 1 << 15;
    dyn.oram.numBlocks = 1 << 12;
    const auto r_pd = sim::runOne(pd, prof, 300'000, 300'000);
    const auto r_dyn = sim::runOne(dyn, prof, 300'000, 300'000);
    EXPECT_LT(2 * r_pd.cycles, r_dyn.cycles);
}

// ---------------------------------------------------------------------
// Trace I/O.
// ---------------------------------------------------------------------

TEST(TraceIo, RoundTripsExactly)
{
    const std::string path = "/tmp/tcoram_trace_test.bin";
    workload::SyntheticTrace src(workload::specProfile("gcc"), 5);
    workload::recordTrace(src, 1000, path);

    workload::SyntheticTrace again(workload::specProfile("gcc"), 5);
    workload::FileTrace file(path);
    ASSERT_EQ(file.size(), 1000u);
    for (int i = 0; i < 1000; ++i) {
        const auto a = again.next();
        const auto b = file.next();
        ASSERT_EQ(a.addr, b.addr) << i;
        ASSERT_EQ(a.gapInsts, b.gapInsts) << i;
        ASSERT_EQ(a.extraGapCycles, b.extraGapCycles) << i;
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind)) << i;
    }
    std::remove(path.c_str());
}

TEST(TraceIo, LoopsWhenExhausted)
{
    const std::string path = "/tmp/tcoram_trace_loop.bin";
    std::vector<workload::TraceOp> ops(3);
    ops[0].addr = 0x100;
    ops[1].addr = 0x200;
    ops[2].addr = 0x300;
    workload::writeTrace(ops, path);

    workload::FileTrace file(path);
    EXPECT_EQ(file.next().addr, 0x100u);
    EXPECT_EQ(file.next().addr, 0x200u);
    EXPECT_EQ(file.next().addr, 0x300u);
    EXPECT_EQ(file.next().addr, 0x100u); // wrapped
    EXPECT_EQ(file.loops(), 1u);
    std::remove(path.c_str());
}

TEST(TraceIo, RejectsGarbage)
{
    const std::string path = "/tmp/tcoram_trace_bad.bin";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_EXIT(workload::readTrace(path),
                ::testing::ExitedWithCode(1), "not a tcoram trace");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// CSV reporting.
// ---------------------------------------------------------------------

TEST(Report, CsvShapeMatchesGrid)
{
    auto cfg = sim::SystemConfig::baseDram();
    const std::vector<sim::SystemConfig> configs = {cfg};
    const std::vector<workload::Profile> profs = {
        workload::specProfile("hmmer"), workload::specProfile("sjeng")};
    const auto grid = sim::runGrid(configs, profs, 50'000);
    const std::string csv = sim::toCsv(grid);

    // Header + 2 rows.
    std::size_t lines = 0;
    for (char c : csv)
        lines += (c == '\n');
    EXPECT_EQ(lines, 3u);
    EXPECT_NE(csv.find("base_dram,hmmer"), std::string::npos);
    EXPECT_NE(csv.find("base_dram,sjeng"), std::string::npos);

    // Column count is stable between header and rows.
    const auto count_commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    const auto header_end = csv.find('\n');
    const auto row_end = csv.find('\n', header_end + 1);
    EXPECT_EQ(count_commas(csv.substr(0, header_end)),
              count_commas(csv.substr(header_end + 1,
                                      row_end - header_end - 1)));
}

TEST(Report, WriteCsvCreatesFile)
{
    const std::string path = "/tmp/tcoram_report_test.csv";
    const std::vector<sim::SystemConfig> configs = {
        sim::SystemConfig::baseDram()};
    const std::vector<workload::Profile> profs = {
        workload::specProfile("hmmer")};
    const auto grid = sim::runGrid(configs, profs, 20'000);
    sim::writeCsv(grid, path);
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

} // namespace
} // namespace tcoram
