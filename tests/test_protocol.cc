/**
 * @file
 * Protocol tests: session key lifecycle (run-once), HMAC binding of
 * leakage limits, and the admission check for proposed (R, E).
 */

#include <gtest/gtest.h>

#include "protocol/session.hh"

namespace tcoram::protocol {
namespace {

TEST(LeakageParams, PaperConfigurations)
{
    LeakageParams p;
    p.rateCount = 4;
    p.epochGrowth = 4;
    EXPECT_DOUBLE_EQ(p.oramTimingBits(), 32.0);
    p.epochGrowth = 16;
    EXPECT_DOUBLE_EQ(p.oramTimingBits(), 16.0);
    p.epochGrowth = 2;
    EXPECT_DOUBLE_EQ(p.oramTimingBits(), 64.0);
}

TEST(LeakageParams, SerializeIsStable)
{
    LeakageParams a, b;
    EXPECT_EQ(a.serialize(), b.serialize());
    b.rateCount = 8;
    EXPECT_NE(a.serialize(), b.serialize());
}

TEST(Session, DataRoundTrip)
{
    UserSession user(123);
    ProcessorSession proc(user);
    const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
    const auto ct = user.encryptData(data);
    const auto pt = proc.decryptData(ct);
    ASSERT_TRUE(pt.has_value());
    EXPECT_EQ(*pt, data);
}

TEST(Session, TerminationForgetsKey)
{
    UserSession user(124);
    ProcessorSession proc(user);
    const auto ct = user.encryptData({9, 9, 9});
    proc.terminate();
    EXPECT_FALSE(proc.active());
    // Replay: the ciphertext can no longer be decrypted (§8).
    EXPECT_FALSE(proc.decryptData(ct).has_value());
}

TEST(Session, AdmissionRespectsLimit)
{
    UserSession user(125);
    ProcessorSession proc(user);
    LeakageParams p;
    p.rateCount = 4;
    p.epochGrowth = 4; // 32 bits
    EXPECT_TRUE(proc.admit(p, 32.0));
    EXPECT_TRUE(proc.admit(p, 64.0));
    EXPECT_FALSE(proc.admit(p, 16.0));
    p.epochGrowth = 16; // 16 bits
    EXPECT_TRUE(proc.admit(p, 16.0));
}

TEST(Session, BindingVerifies)
{
    UserSession user(126);
    ProcessorSession proc(user);
    const auto mac = user.bindLeakageLimit("sha:prog", 32.0);
    EXPECT_TRUE(proc.verifyBinding("sha:prog", 32.0, mac, user));
    // Any tampering breaks the MAC.
    EXPECT_FALSE(proc.verifyBinding("sha:prog", 64.0, mac, user));
    EXPECT_FALSE(proc.verifyBinding("sha:evil", 32.0, mac, user));
}

TEST(Session, DistinctUsersDistinctKeys)
{
    UserSession a(1), b(2);
    EXPECT_NE(a.key(), b.key());
    const auto mac_a = a.bindLeakageLimit("p", 32.0);
    const auto mac_b = b.bindLeakageLimit("p", 32.0);
    EXPECT_FALSE(crypto::digestEqual(mac_a, mac_b));
}

} // namespace
} // namespace tcoram::protocol
