/**
 * @file
 * Unit tests for the common substrate: bit utilities, RNG, statistics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bitutils.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace tcoram {
namespace {

TEST(BitUtils, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 62));
    EXPECT_FALSE(isPow2((1ull << 62) + 1));
}

TEST(BitUtils, FloorCeilLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtils, RoundUpPow2)
{
    EXPECT_EQ(roundUpPow2(1), 1u);
    EXPECT_EQ(roundUpPow2(3), 4u);
    EXPECT_EQ(roundUpPow2(4), 4u);
    EXPECT_EQ(roundUpPow2(5), 8u);
    // Paper Algorithm 1 semantics: exact powers are doubled.
    EXPECT_EQ(roundUpPow2(4, true), 8u);
    EXPECT_EQ(roundUpPow2(1, true), 2u);
    EXPECT_EQ(roundUpPow2(5, true), 8u);
}

TEST(BitUtils, BitsExtraction)
{
    EXPECT_EQ(bits(0xff00, 15, 8), 0xffull);
    EXPECT_EQ(bits(0xff00, 7, 0), 0x00ull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(BitUtils, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng r(11);
    std::array<int, 8> counts{};
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        counts[r.nextBounded(8)]++;
    for (int c : counts) {
        EXPECT_GT(c, n / 8 - n / 80);
        EXPECT_LT(c, n / 8 + n / 80);
    }
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GeometricMeanClose)
{
    Rng r(5);
    const double mean = 20.0;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextGeometric(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(RunningStat, Basics)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.add(1.0);
    s.add(2.0);
    s.add(3.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
    EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10.0, 4); // [0,40)
    h.add(0);
    h.add(9.99);
    h.add(10);
    h.add(39.9);
    h.add(40); // overflow
    h.add(-1); // negative -> overflow
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(Histogram, Quantile)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(WindowSeries, UniformDistribution)
{
    WindowSeries w(10);
    w.add(20, 40.0); // 2 windows at density 2.0
    ASSERT_EQ(w.values().size(), 2u);
    EXPECT_NEAR(w.values()[0], 2.0, 1e-9);
    EXPECT_NEAR(w.values()[1], 2.0, 1e-9);
}

TEST(WindowSeries, PartialWindowFinish)
{
    WindowSeries w(10);
    w.add(5, 5.0);
    EXPECT_TRUE(w.values().empty());
    w.finish();
    ASSERT_EQ(w.values().size(), 1u);
    EXPECT_NEAR(w.values()[0], 1.0, 1e-9);
}

TEST(StatDump, SetGetHas)
{
    StatDump d;
    d.set("ipc", 0.25);
    EXPECT_TRUE(d.has("ipc"));
    EXPECT_FALSE(d.has("watts"));
    EXPECT_DOUBLE_EQ(d.get("ipc"), 0.25);
    EXPECT_NE(d.toString().find("ipc"), std::string::npos);
}

} // namespace
} // namespace tcoram
