/**
 * @file
 * Workload tests: trace generation determinism, profile semantics
 * (working set bounds, store fractions, phase cycling), and the
 * suite's ORAM pressure classes.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "workload/generators.hh"
#include "workload/spec_suite.hh"

namespace tcoram::workload {
namespace {

Profile
simpleProfile()
{
    Profile p;
    p.name = "simple";
    Phase ph;
    ph.workingSetBytes = 1 << 20;
    ph.instsPerMemOp = 5.0;
    ph.storeFraction = 0.25;
    ph.mix = {1.0, 0.0, 0.0, 0.0};
    p.phases = {ph};
    return p;
}

TEST(SyntheticTrace, Deterministic)
{
    SyntheticTrace a(simpleProfile(), 42), b(simpleProfile(), 42);
    for (int i = 0; i < 1000; ++i) {
        const TraceOp x = a.next(), y = b.next();
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.gapInsts, y.gapInsts);
        EXPECT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
    }
}

TEST(SyntheticTrace, SeedsDiffer)
{
    // Pure streaming addresses are seed-independent by design; use a
    // random mix so the seed shows through.
    Profile p = simpleProfile();
    p.phases[0].mix = {0.0, 0.0, 1.0, 0.0};
    SyntheticTrace a(p, 1), b(p, 2);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        if (a.next().addr == b.next().addr)
            ++same;
    EXPECT_LT(same, 100);
}

TEST(SyntheticTrace, DataAddressesWithinWorkingSet)
{
    const Profile p = simpleProfile();
    SyntheticTrace t(p, 7);
    for (int i = 0; i < 5000; ++i) {
        const TraceOp op = t.next();
        if (op.kind == OpKind::InstFetch) {
            EXPECT_LT(op.addr, p.phases[0].codeBytes);
        } else {
            EXPECT_GE(op.addr, p.dataBase);
            EXPECT_LT(op.addr,
                      p.dataBase + p.phases[0].workingSetBytes);
        }
    }
}

TEST(SyntheticTrace, StoreFractionApproximatelyHonored)
{
    SyntheticTrace t(simpleProfile(), 11);
    int stores = 0, data_ops = 0;
    for (int i = 0; i < 20000; ++i) {
        const TraceOp op = t.next();
        if (op.kind == OpKind::InstFetch)
            continue;
        ++data_ops;
        if (op.kind == OpKind::Store)
            ++stores;
    }
    const double frac = static_cast<double>(stores) / data_ops;
    EXPECT_NEAR(frac, 0.25, 0.03);
}

TEST(SyntheticTrace, MeanGapTracksInstsPerMemOp)
{
    Profile p = simpleProfile();
    p.phases[0].instsPerMemOp = 20.0;
    p.phases[0].instsPerFetchJump = 1e12; // suppress fetch records
    SyntheticTrace t(p, 13);
    double total_gap = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total_gap += t.next().gapInsts;
    EXPECT_NEAR(total_gap / n, 20.0, 2.0);
}

TEST(SyntheticTrace, PhasesCycle)
{
    Profile p;
    p.name = "phased";
    Phase a;
    a.instructions = 1000;
    a.workingSetBytes = 1 << 16;
    a.mix = {1.0, 0.0, 0.0, 0.0};
    Phase b = a;
    b.instructions = 1000;
    p.phases = {a, b};
    SyntheticTrace t(p, 3);
    std::set<std::size_t> seen;
    InstCount insts = 0;
    while (insts < 5000) {
        const TraceOp op = t.next();
        insts += op.gapInsts + 1;
        seen.insert(t.phaseIndex());
    }
    EXPECT_EQ(seen.size(), 2u);
}

TEST(SyntheticTrace, StreamPatternIsSequential)
{
    Profile p = simpleProfile();
    p.phases[0].instsPerFetchJump = 1e12;
    p.phases[0].stackWeight = 0.0; // isolate the stream walk
    SyntheticTrace t(p, 5);
    // A hot stream walks word by word (8 B), crossing to the next
    // line every wordsPerLine accesses — so consecutive addresses
    // advance by exactly one word (modulo region wrap).
    Addr prev = t.next().addr;
    int sequential = 0, total = 0;
    for (int i = 0; i < 1000; ++i) {
        const Addr cur = t.next().addr;
        if (cur == prev + 8)
            ++sequential;
        ++total;
        prev = cur;
    }
    EXPECT_GT(sequential, total * 9 / 10);
}

TEST(SpecSuite, HasElevenBenchmarks)
{
    const auto names = specSuiteNames();
    ASSERT_EQ(names.size(), 11u);
    EXPECT_EQ(names.front(), "mcf");
    EXPECT_EQ(names.back(), "perl");
    for (const auto &n : names) {
        const Profile p = specProfile(n);
        EXPECT_FALSE(p.phases.empty()) << n;
    }
}

TEST(SpecSuite, MemoryBoundHaveLargeSets)
{
    // mcf and libquantum must exceed the 1 MB LLC by a wide margin.
    EXPECT_GT(specProfile("mcf").phases[0].workingSetBytes, 16ull << 20);
    EXPECT_GT(specProfile("libq").phases[0].workingSetBytes, 16ull << 20);
}

TEST(SpecSuite, ComputeBoundFitFirstPhase)
{
    // h264's first (encode) phase fits in the LLC; hmmer fits overall.
    EXPECT_LE(specProfile("h264").phases[0].workingSetBytes, 1ull << 20);
    EXPECT_LE(specProfile("hmmer").phases[0].workingSetBytes, 1ull << 20);
}

TEST(SpecSuite, H264HasPhaseChange)
{
    const Profile p = specProfile("h264");
    ASSERT_GE(p.phases.size(), 2u);
    EXPECT_GT(p.phases[1].workingSetBytes, p.phases[0].workingSetBytes);
}

TEST(SpecSuite, AlternateInputsDiffer)
{
    const Profile diff = perlbenchDiffmail();
    const Profile split = perlbenchSplitmail();
    EXPECT_GT(diff.phases[0].workingSetBytes,
              split.phases[0].workingSetBytes);

    const Profile rivers = astarRivers();
    const Profile lakes = astarBigLakes();
    EXPECT_EQ(rivers.phases.size(), 1u);
    EXPECT_GT(lakes.phases.size(), 1u);
}

} // namespace
} // namespace tcoram::workload
