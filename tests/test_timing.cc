/**
 * @file
 * Timing-channel protection tests: rate sets, epoch schedules, the
 * performance counters, the rate learner (both dividers), the
 * enforcer's scheduling discipline, and leakage arithmetic against
 * the paper's published numbers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "timing/epoch_schedule.hh"
#include "timing/leakage.hh"
#include "timing/perf_counters.hh"
#include "timing/rate_enforcer.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"

namespace tcoram::timing {
namespace {

TEST(RateSet, PaperR4Values)
{
    // §9.2: |R| = 4 over [256, 32768] on a lg scale gives
    // {256, 1290, 6501, 32768}.
    RateSet r(4);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(r.at(0), 256u);
    EXPECT_NEAR(static_cast<double>(r.at(1)), 1290.0, 15.0);
    EXPECT_NEAR(static_cast<double>(r.at(2)), 6501.0, 65.0);
    EXPECT_EQ(r.at(3), 32768u);
}

TEST(RateSet, R2IsExtremesOnly)
{
    RateSet r(2);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r.at(0), 256u);
    EXPECT_EQ(r.at(1), 32768u);
}

TEST(RateSet, LinearSpacingDiffers)
{
    RateSet log4(4), lin4(4, 256, 32768, RateSet::Spacing::Linear);
    EXPECT_NE(log4.at(1), lin4.at(1));
    EXPECT_NEAR(static_cast<double>(lin4.at(1)),
                256.0 + (32768.0 - 256.0) / 3.0, 2.0);
}

TEST(RateSet, DiscretizePicksClosest)
{
    RateSet r(4); // ~{256, 1290, 6501, 32768}
    EXPECT_EQ(r.discretize(0), r.at(0));
    EXPECT_EQ(r.discretize(300), r.at(0));
    EXPECT_EQ(r.discretize(1000), r.at(1));
    EXPECT_EQ(r.discretize(4000), r.at(2));
    EXPECT_EQ(r.discretize(20000), r.at(3));
    EXPECT_EQ(r.discretize(1u << 30), r.at(3));
    // Exact members map to themselves.
    for (std::size_t i = 0; i < r.size(); ++i)
        EXPECT_EQ(r.discretize(r.at(i)), r.at(i));
}

TEST(RateSet, ExplicitSetSortsAndDedups)
{
    RateSet r(std::vector<Cycles>{500, 100, 500, 300});
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r.fastest(), 100u);
    EXPECT_EQ(r.slowest(), 500u);
    EXPECT_EQ(r.indexOf(300), 1u);
}

TEST(EpochSchedule, DoublingLengths)
{
    EpochSchedule e(1024, 2, 1ull << 40);
    EXPECT_EQ(e.epochLength(0), 1024u);
    EXPECT_EQ(e.epochLength(1), 2048u);
    EXPECT_EQ(e.epochLength(10), 1024u << 10);
}

TEST(EpochSchedule, EpochAtBoundaries)
{
    EpochSchedule e(1000, 2, 1ull << 40);
    EXPECT_EQ(e.epochAt(0), 0u);
    EXPECT_EQ(e.epochAt(999), 0u);
    EXPECT_EQ(e.epochAt(1000), 1u);
    EXPECT_EQ(e.epochAt(2999), 1u);
    EXPECT_EQ(e.epochAt(3000), 2u);
}

TEST(EpochSchedule, StartsAreCumulative)
{
    EpochSchedule e(1000, 4, 1ull << 40);
    EXPECT_EQ(e.epochStart(0), 0u);
    EXPECT_EQ(e.epochStart(1), 1000u);
    EXPECT_EQ(e.epochStart(2), 5000u);
    EXPECT_EQ(e.epochStart(3), 21000u);
}

TEST(EpochSchedule, PaperEpochCounts)
{
    // §2.2.1 / Example 6.1: epoch0 = 2^30, Tmax = 2^62.
    // Doubling: 32 epochs; x4 growth: 16 epochs (dynamic_R4_E4).
    EpochSchedule doubling(EpochSchedule::kPaperEpoch0, 2);
    EXPECT_EQ(doubling.epochsToTmax(), 32u);
    EpochSchedule quad(EpochSchedule::kPaperEpoch0, 4);
    EXPECT_EQ(quad.epochsToTmax(), 16u);
    EpochSchedule oct(EpochSchedule::kPaperEpoch0, 8);
    EXPECT_EQ(oct.epochsToTmax(), 11u);
    EpochSchedule hex(EpochSchedule::kPaperEpoch0, 16);
    EXPECT_EQ(hex.epochsToTmax(), 8u);
}

TEST(EpochSchedule, EpochsUsedCountsTransitions)
{
    EpochSchedule e(1000, 2, 1ull << 40);
    EXPECT_EQ(e.epochsUsed(0), 0u);
    EXPECT_EQ(e.epochsUsed(999), 0u);
    EXPECT_EQ(e.epochsUsed(1000), 1u); // first boundary crossed
    EXPECT_EQ(e.epochsUsed(2999), 1u);
    EXPECT_EQ(e.epochsUsed(3000), 2u);
}

TEST(PerfCounters, TrackAndReset)
{
    PerfCounters pc;
    pc.noteRealAccess(1488);
    pc.noteRealAccess(1488);
    pc.noteWaste(100);
    EXPECT_EQ(pc.accessCount(), 2u);
    EXPECT_EQ(pc.oramCycles(), 2976u);
    EXPECT_EQ(pc.waste(), 100u);
    pc.reset();
    EXPECT_EQ(pc.accessCount(), 0u);
    EXPECT_EQ(pc.oramCycles(), 0u);
    EXPECT_EQ(pc.waste(), 0u);
}

TEST(RateLearner, ExactDividerEquationOne)
{
    RateSet r(4);
    RateLearner learner(r, RateLearner::Divider::Exact);
    PerfCounters pc;
    // Epoch of 1,000,000 cycles; 100 accesses of 1488 cycles; 10,000
    // cycles of waste. NewIntRaw = (1e6 - 1e4 - 148800)/100 = 8412.
    for (int i = 0; i < 100; ++i)
        pc.noteRealAccess(1488);
    pc.noteWaste(10000);
    EXPECT_EQ(learner.predictRaw(1'000'000, pc), 8412u);
    EXPECT_EQ(learner.nextRate(1'000'000, pc), r.at(2)); // ~6501
}

TEST(RateLearner, ShifterUndersetsUpToTwox)
{
    RateSet r(4);
    RateLearner shifter(r, RateLearner::Divider::Shifter);
    RateLearner exact(r, RateLearner::Divider::Exact);
    PerfCounters pc;
    for (int i = 0; i < 100; ++i) // rounds to 256 then doubles? no:
        pc.noteRealAccess(1488);  // 100 -> 128 (strictly: 128, since
                                  // 100 is not a power of 2)
    const Cycles raw_exact = exact.predictRaw(1'000'000, pc);
    const Cycles raw_shift = shifter.predictRaw(1'000'000, pc);
    EXPECT_LE(raw_shift, raw_exact);
    EXPECT_GE(raw_shift * 2 + 2, raw_exact);
}

TEST(RateLearner, ShifterDoublesExactPowers)
{
    // §7.2: AccessCount already a power of two is still rounded up.
    RateSet r(std::vector<Cycles>{1, 1u << 20});
    RateLearner shifter(r, RateLearner::Divider::Shifter);
    PerfCounters pc;
    for (int i = 0; i < 64; ++i)
        pc.noteRealAccess(0);
    // numerator 128000; exact divide by 64 = 2000, shifter divides by
    // 128 -> 1000.
    EXPECT_EQ(shifter.predictRaw(128000, pc), 1000u);
}

TEST(RateLearner, NoAccessesPicksSlowest)
{
    RateSet r(4);
    RateLearner learner(r);
    PerfCounters pc;
    EXPECT_EQ(learner.nextRate(1'000'000, pc), r.slowest());
}

TEST(RateLearner, SaturatedEpochClampsToZero)
{
    RateSet r(4);
    RateLearner learner(r, RateLearner::Divider::Exact);
    PerfCounters pc;
    for (int i = 0; i < 1000; ++i)
        pc.noteRealAccess(1488); // ORAMCycles > epoch
    EXPECT_EQ(learner.predictRaw(1000, pc), 0u);
    EXPECT_EQ(learner.nextRate(1000, pc), r.fastest());
}

/** Fixed-latency fake ORAM device for enforcer tests. */
class FakeDevice : public OramDeviceIf
{
  public:
    explicit FakeDevice(Cycles lat) : lat_(lat) {}

    OramCompletion
    submit(Cycles now, const OramTransaction &txn) override
    {
        if (txn.kind == OramTransaction::Kind::Real)
            ++real_;
        else
            ++dummy_;
        starts_.push_back(now);
        return {now, now + lat_, 0, 0, 0};
    }

    Cycles accessLatency() const override { return lat_; }

    std::uint64_t real_ = 0;
    std::uint64_t dummy_ = 0;
    std::vector<Cycles> starts_;

  private:
    Cycles lat_;
};

TEST(RateEnforcer, PeriodicScheduleIsExact)
{
    // All accesses (real or dummy) must start exactly rate cycles
    // after the previous completion — the indistinguishability
    // property the leakage bound rests on.
    FakeDevice dev(100);
    RateSet r(std::vector<Cycles>{500});
    EpochSchedule e(1ull << 30, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 500);

    enf.serveReal(0);     // slot at 500
    enf.serveReal(700);   // prev done 600; slot at 1100
    enf.drainUntil(5000); // dummies at 1700, 2300, ...
    ASSERT_GE(dev.starts_.size(), 4u);
    for (std::size_t i = 1; i < dev.starts_.size(); ++i)
        EXPECT_EQ(dev.starts_[i] - dev.starts_[i - 1], 600u)
            << "slot " << i;
}

TEST(RateEnforcer, DummiesFillIdleGaps)
{
    FakeDevice dev(100);
    RateSet r(std::vector<Cycles>{500});
    EpochSchedule e(1ull << 30, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 500);
    enf.drainUntil(6000);
    // Slots at 500, 1100, 1700, ... -> floor((6000-500)/600)+1 = 10.
    EXPECT_EQ(dev.dummy_, 10u);
    EXPECT_EQ(dev.real_, 0u);
}

TEST(RateEnforcer, WasteChargedWhenOverset)
{
    FakeDevice dev(100);
    RateSet r(std::vector<Cycles>{1000});
    EpochSchedule e(1ull << 30, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 1000);
    // Request at cycle 0 waits for the slot at 1000.
    enf.serveReal(0);
    EXPECT_EQ(enf.counters().waste(), 1000u);
}

TEST(RateEnforcer, WasteIncludesDummyInFlight)
{
    FakeDevice dev(100);
    RateSet r(std::vector<Cycles>{500});
    EpochSchedule e(1ull << 30, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 500);
    // Let the dummy at 500 fire, then request at 550 (mid-dummy).
    enf.drainUntil(601);
    ASSERT_EQ(dev.dummy_, 1u);
    const Cycles done = enf.serveReal(550);
    // Dummy completes at 600; next slot 1100; served 1100-1200.
    EXPECT_EQ(done, 1200u);
    EXPECT_EQ(enf.counters().waste(), 550u);
}

TEST(RateEnforcer, EpochTransitionChangesRate)
{
    FakeDevice dev(100);
    RateSet r(4); // {256, 1290, 6501, 32768}
    EpochSchedule e(100'000, 2, 1ull << 40);
    RateLearner learner(r, RateLearner::Divider::Exact);
    RateEnforcer enf(dev, r, e, learner, 10000);

    // Memory-bound epoch 0: requests back-to-back.
    Cycles t = 0;
    for (int i = 0; i < 30; ++i)
        t = enf.serveReal(t);
    enf.drainUntil(100'001); // cross the boundary
    ASSERT_GE(enf.decisions().size(), 2u);
    EXPECT_EQ(enf.decisions()[0].rate, 10000u);
    // Heavy demand should have selected a fast rate.
    EXPECT_LE(enf.decisions()[1].rate, 1290u);
    EXPECT_EQ(enf.currentEpoch(), 1u);
}

TEST(RateEnforcer, IdleEpochPicksSlowestRate)
{
    FakeDevice dev(100);
    RateSet r(4);
    EpochSchedule e(100'000, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 256);
    enf.drainUntil(100'001);
    ASSERT_GE(enf.decisions().size(), 2u);
    EXPECT_EQ(enf.decisions()[1].rate, 32768u);
}

TEST(RateEnforcer, StaticSetNeverChangesRate)
{
    FakeDevice dev(100);
    RateSet r(std::vector<Cycles>{300});
    EpochSchedule e(10'000, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 300);
    Cycles t = 0;
    for (int i = 0; i < 50; ++i)
        t = enf.serveReal(t + 1000);
    for (const auto &d : enf.decisions())
        EXPECT_EQ(d.rate, 300u);
}

TEST(RateEnforcer, Req1WastePerAccessBoundedByRate)
{
    // Figure 4 Req 1: with an overset rate and no queueing, the waste
    // charged per access is at most r (the wait for the next slot).
    FakeDevice dev(100);
    RateSet r(std::vector<Cycles>{5000});
    EpochSchedule e(1ull << 30, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 5000);
    Cycles t = 0;
    Cycles prev_waste = 0;
    for (int i = 0; i < 20; ++i) {
        // Arrive just after the previous completion: pure rate wait.
        t = enf.serveReal(t + 1);
        const Cycles delta = enf.counters().waste() - prev_waste;
        prev_waste = enf.counters().waste();
        EXPECT_LE(delta, 5000u);
    }
}

TEST(RateEnforcer, OramCyclesSumsLatencies)
{
    FakeDevice dev(321);
    RateSet r(std::vector<Cycles>{1000});
    EpochSchedule e(1ull << 30, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 1000);
    Cycles t = 0;
    for (int i = 0; i < 7; ++i)
        t = enf.serveReal(t + 2000);
    EXPECT_EQ(enf.counters().oramCycles(), 7u * 321u);
    EXPECT_EQ(enf.counters().accessCount(), 7u);
}

TEST(RateSet, PaperSpacingForLargerSets)
{
    // lg spacing: the candidate ratios are constant.
    for (std::size_t n : {8u, 16u}) {
        RateSet r(n);
        EXPECT_EQ(r.fastest(), 256u);
        EXPECT_EQ(r.slowest(), 32768u);
        const double expect_ratio =
            std::exp2(7.0 / static_cast<double>(n - 1)); // lg span = 7
        for (std::size_t i = 1; i < r.size(); ++i) {
            const double ratio = static_cast<double>(r.at(i)) /
                                 static_cast<double>(r.at(i - 1));
            EXPECT_NEAR(ratio, expect_ratio, expect_ratio * 0.02);
        }
    }
}

TEST(RateEnforcer, Req3ConcurrentMissChargesRate)
{
    FakeDevice dev(100);
    RateSet r(std::vector<Cycles>{500});
    EpochSchedule e(1ull << 30, 2, 1ull << 40);
    RateLearner learner(r);
    RateEnforcer enf(dev, r, e, learner, 500);
    const Cycles done1 = enf.serveReal(0); // completes 600
    const Cycles waste_before = enf.counters().waste();
    enf.serveReal(done1 - 50); // arrived while the first was in flight
    // Req 3: one extra rate charge beyond the physical wait.
    EXPECT_GE(enf.counters().waste() - waste_before, 500u);
}

TEST(Leakage, PaperHeadlineNumbers)
{
    // §2.2.1: |R|=4, |E|=16 -> 32 bits. §9.5: R4_E16 -> 16 bits.
    EXPECT_DOUBLE_EQ(LeakageAccountant::oramTimingBits(4, 16), 32.0);
    EXPECT_DOUBLE_EQ(LeakageAccountant::paperConfigBits(4, 4), 32.0);
    EXPECT_DOUBLE_EQ(LeakageAccountant::paperConfigBits(4, 16), 16.0);
    // Example 6.1: doubling with |R|=4 -> 64 bits ORAM timing.
    EXPECT_DOUBLE_EQ(LeakageAccountant::paperConfigBits(4, 2), 64.0);
}

TEST(Leakage, TerminationChannel)
{
    // §9.1.5: Tmax = 2^62 -> 62 bits.
    EXPECT_DOUBLE_EQ(LeakageAccountant::terminationBits(Cycles{1} << 62),
                     62.0);
    // §6: rounding to 2^30 leaves lg 2^(62-30) = 32 bits.
    EXPECT_DOUBLE_EQ(LeakageAccountant::terminationBitsDiscretized(
                         Cycles{1} << 62, Cycles{1} << 30),
                     32.0);
}

TEST(Leakage, TotalBitsComposesAdditively)
{
    RateSet r(4);
    EpochSchedule e(EpochSchedule::kPaperEpoch0, 4);
    // 32 (ORAM) + 62 (termination) = 94 bits — the §9.3 total.
    EXPECT_DOUBLE_EQ(LeakageAccountant::totalBits(r, e), 94.0);
}

TEST(Leakage, StaticSchemeLeaksZeroOramBits)
{
    EXPECT_DOUBLE_EQ(LeakageAccountant::oramTimingBits(1, 1000), 0.0);
}

TEST(Leakage, UnprotectedIsAstronomical)
{
    // Even a modest run dwarfs any protected configuration.
    const double bits = LeakageAccountant::unprotectedBits(1'000'000, 1488);
    EXPECT_GT(bits, 1000.0);
    // And it grows with time.
    EXPECT_GT(LeakageAccountant::unprotectedBits(2'000'000, 1488), bits);
}

TEST(Leakage, UnprotectedDegenerateCase)
{
    // With OLAT ~ t, only a handful of traces exist.
    const double bits = LeakageAccountant::unprotectedBits(10, 10);
    EXPECT_LT(bits, 8.0);
    EXPECT_GE(bits, 0.0);
}

TEST(LeakageMonitor, EnforcesBudget)
{
    LeakageMonitor mon(4.0, 4); // 4 bits, 2 bits/decision
    EXPECT_TRUE(mon.canDecide());
    EXPECT_TRUE(mon.recordDecision(true));
    EXPECT_TRUE(mon.canDecide());
    EXPECT_TRUE(mon.recordDecision(true));
    EXPECT_FALSE(mon.canDecide());
    // Forced (pinned) decisions remain free.
    EXPECT_TRUE(mon.recordDecision(false));
    EXPECT_DOUBLE_EQ(mon.bitsConsumed(), 4.0);
    // An out-of-budget free decision is flagged.
    EXPECT_FALSE(mon.recordDecision(true));
}

} // namespace
} // namespace tcoram::timing
