/**
 * @file
 * Attack-model tests: the root-bucket probe's detection accuracy, the
 * malicious program P1's full leak when unprotected and its collapse
 * under enforcement, and replay-attack accounting.
 */

#include <gtest/gtest.h>

#include "attack/malicious.hh"
#include "attack/observer.hh"
#include "attack/replay.hh"
#include "common/rng.hh"
#include "oram/path_oram.hh"

namespace tcoram::attack {
namespace {

oram::OramConfig
tinyConfig()
{
    oram::OramConfig c;
    c.numBlocks = 128;
    c.recursionLevels = 0;
    c.stashCapacity = 400;
    return c;
}

std::vector<bool>
randomSecret(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<bool> s(n);
    for (std::size_t i = 0; i < n; ++i)
        s[i] = rng.nextBool(0.5);
    return s;
}

TEST(TimingTraceRecorder, GapsComputed)
{
    TimingTraceRecorder rec;
    rec.noteAccess(100);
    rec.noteAccess(350);
    rec.noteAccess(400);
    const auto gaps = rec.gaps();
    ASSERT_EQ(gaps.size(), 2u);
    EXPECT_EQ(gaps[0], 250u);
    EXPECT_EQ(gaps[1], 50u);
}

TEST(RootBucketProbe, DetectsSingleAccess)
{
    oram::FlatPositionMap map(128);
    oram::PathOram oram(tinyConfig(), map, 1);
    RootBucketProbe probe(oram);
    EXPECT_FALSE(probe.probe()); // nothing happened yet
    oram.access(0, oram::Op::Read);
    EXPECT_TRUE(probe.probe());
    EXPECT_FALSE(probe.probe()); // no access since
}

TEST(RootBucketProbe, DetectsDummies)
{
    // The probe cannot distinguish dummy from real — both rewrite the
    // root. This is exactly why enforcement hides demand.
    oram::FlatPositionMap map(128);
    oram::PathOram oram(tinyConfig(), map, 2);
    RootBucketProbe probe(oram);
    oram.dummyAccess();
    EXPECT_TRUE(probe.probe());
}

TEST(RootBucketProbe, PerfectOverManyTrials)
{
    oram::FlatPositionMap map(128);
    oram::PathOram oram(tinyConfig(), map, 3);
    RootBucketProbe probe(oram);
    Rng rng(9);
    int correct = 0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) {
        const bool do_access = rng.nextBool(0.5);
        if (do_access)
            oram.access(rng.nextBounded(128), oram::Op::Read);
        if (probe.probe() == do_access)
            ++correct;
    }
    // CTR ciphertext collision probability is negligible: perfect.
    EXPECT_EQ(correct, trials);
}

TEST(MaliciousProgram, UnprotectedLeaksEverything)
{
    // Figure 1(a): T bits leak in T steps.
    oram::FlatPositionMap map(128);
    oram::PathOram oram(tinyConfig(), map, 4);
    const auto secret = randomSecret(64, 42);
    const LeakExperimentResult res = runUnprotectedLeak(oram, secret);
    EXPECT_TRUE(res.fullyLeaked());
    EXPECT_EQ(res.correctBits(), 64u);
}

TEST(MaliciousProgram, ProtectedLeaksNothing)
{
    // Under a periodic enforced schedule every window contains exactly
    // one access (real or dummy), so the adversary's per-window
    // observation is constant and carries zero information.
    oram::FlatPositionMap map(128);
    oram::PathOram oram(tinyConfig(), map, 5);
    const auto secret = randomSecret(64, 43);
    const LeakExperimentResult res =
        runProtectedLeak(oram, secret, 500, 100);
    // The adversary sees "access" every slot...
    for (bool bit : res.recovered)
        EXPECT_TRUE(bit);
    // ...so decoding accuracy equals the density of 1s in the secret —
    // chance level, not leakage.
    std::size_t ones = 0;
    for (bool b : secret)
        ones += b;
    EXPECT_EQ(res.correctBits(), ones);
    EXPECT_FALSE(res.fullyLeaked());
}

TEST(MaliciousProgram, ProtectedTraceIndependentOfSecret)
{
    // Two different secrets must produce identical observable traces.
    oram::FlatPositionMap map1(128), map2(128);
    oram::PathOram o1(tinyConfig(), map1, 6), o2(tinyConfig(), map2, 6);
    const auto s1 = randomSecret(48, 1);
    const auto s2 = randomSecret(48, 2);
    ASSERT_NE(s1, s2);
    const auto r1 = runProtectedLeak(o1, s1, 500, 100);
    const auto r2 = runProtectedLeak(o2, s2, 500, 100);
    EXPECT_EQ(r1.recovered, r2.recovered);
}

TEST(Replay, UnprotectedLeakageMultiplies)
{
    const ReplayResult r = replayWithoutProtection(32.0, 10);
    EXPECT_EQ(r.runsExecuted, 10u);
    EXPECT_DOUBLE_EQ(r.totalBits, 320.0);
}

TEST(Replay, RunOnceKeysCapAtOneRun)
{
    const ReplayResult r = replayWithRunOnceKeys(32.0, 10);
    EXPECT_EQ(r.runsExecuted, 1u);
    EXPECT_DOUBLE_EQ(r.totalBits, 32.0);
}

TEST(Replay, NoAttemptsNoLeakage)
{
    EXPECT_DOUBLE_EQ(replayWithRunOnceKeys(32.0, 0).totalBits, 0.0);
    EXPECT_DOUBLE_EQ(replayWithoutProtection(32.0, 0).totalBits, 0.0);
}

} // namespace
} // namespace tcoram::attack
