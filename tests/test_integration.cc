/**
 * @file
 * Cross-module integration tests: end-to-end shape checks that mirror
 * the paper's qualitative claims at reduced scale — overhead
 * orderings between schemes, dummy-access economics, rate learning
 * across phase changes, and enforcement observability.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/secure_processor.hh"
#include "timing/leakage.hh"
#include "workload/spec_suite.hh"

namespace tcoram::sim {
namespace {

constexpr InstCount kRun = 600'000;

SystemConfig
fast(SystemConfig c)
{
    c.oram.numBlocks = 1 << 12;
    c.epoch0 = 1 << 17;
    c.ipcWindow = 50'000;
    return c;
}

TEST(Integration, SchemeOrderingOnMemoryBound)
{
    // base_dram < base_oram <= dynamic (in cycles) on a memory-bound
    // workload; dynamic should stay within a modest factor of
    // base_oram (the paper reports ~20%; we accept <2x at test scale).
    const auto prof = workload::specProfile("mcf");
    const SimResult dram = runOne(fast(SystemConfig::baseDram()), prof, kRun);
    const SimResult oram = runOne(fast(SystemConfig::baseOram()), prof, kRun);
    const SimResult dyn =
        runOne(fast(SystemConfig::dynamicScheme(4, 4)), prof, kRun);

    EXPECT_LT(dram.cycles, oram.cycles);
    EXPECT_LE(oram.cycles, dyn.cycles);
    EXPECT_LT(static_cast<double>(dyn.cycles),
              2.0 * static_cast<double>(oram.cycles));
}

TEST(Integration, ComputeBoundBarelyAffected)
{
    // For a compute-bound workload the ORAM overhead must be small
    // once the caches are warm (fast-forward methodology, §9.1.1).
    const auto prof = workload::specProfile("hmmer");
    const SimResult dram =
        runOne(fast(SystemConfig::baseDram()), prof, kRun, kRun);
    const SimResult oram =
        runOne(fast(SystemConfig::baseOram()), prof, kRun, kRun);
    EXPECT_LT(perfOverheadX(oram, dram), 1.6);
}

TEST(Integration, StaticFastRateBurnsPower)
{
    // static_300 on a compute-bound workload: most accesses are
    // dummies and power exceeds the dynamic scheme's (Fig. 6 claim).
    const auto prof = workload::specProfile("hmmer");
    const SimResult stat =
        runOne(fast(SystemConfig::staticScheme(300)), prof, kRun, kRun);
    const SimResult dyn =
        runOne(fast(SystemConfig::dynamicScheme(4, 4)), prof, kRun, kRun);
    EXPECT_GT(stat.dummyFraction(), 0.5);
    EXPECT_GT(stat.watts, dyn.watts);
}

TEST(Integration, DynamicConvergesToSlowRateWhenIdle)
{
    // On a compute-bound workload the learner should settle on a slow
    // candidate after epoch 0.
    const auto prof = workload::specProfile("hmmer");
    SecureProcessor proc(fast(SystemConfig::dynamicScheme(4, 2)), prof);
    // Warm long enough for the word-granular walk to cover the hot
    // set; cold misses would otherwise masquerade as demand.
    proc.run(kRun, 4 * kRun);
    const auto &decisions = proc.enforcer()->decisions();
    ASSERT_GE(decisions.size(), 2u);
    EXPECT_GE(decisions.back().rate, 6000u);
}

TEST(Integration, DynamicConvergesToFastRateWhenMemoryBound)
{
    const auto prof = workload::specProfile("libq");
    SecureProcessor proc(fast(SystemConfig::dynamicScheme(4, 2)), prof);
    proc.run(kRun);
    const auto &decisions = proc.enforcer()->decisions();
    ASSERT_GE(decisions.size(), 2u);
    EXPECT_LE(decisions.back().rate, 1290u);
}

TEST(Integration, EnforcedTraceIsPeriodicWithinEpoch)
{
    // The observable invariant: between epoch boundaries, gaps between
    // access starts are exactly (rate + OLAT). We verify via the
    // controller's bookkeeping: total accesses * (rate + OLAT) spans
    // the run to within one period per epoch.
    const auto prof = workload::specProfile("hmmer");
    SecureProcessor proc(fast(SystemConfig::staticScheme(1000)), prof);
    const SimResult r = proc.run(kRun);
    const Cycles olat = proc.oramDevice()->accessLatency();
    const std::uint64_t total = r.oramReal + r.oramDummy;
    const Cycles expected_span = total * (1000 + olat);
    // First access starts at rate offset; allow one period of slack.
    EXPECT_NEAR(static_cast<double>(expected_span),
                static_cast<double>(r.cycles),
                static_cast<double>(1000 + olat) * 2.0);
}

TEST(Integration, LeakageBitsMatchDecisionCount)
{
    const auto prof = workload::specProfile("gcc");
    SecureProcessor proc(fast(SystemConfig::dynamicScheme(4, 2)), prof);
    const SimResult r = proc.run(kRun);
    EXPECT_DOUBLE_EQ(r.simLeakageBits,
                     static_cast<double>(r.epochsUsed) * 2.0);
}

TEST(Integration, SmallerRMeansLessLeakage)
{
    const auto prof = workload::specProfile("astar");
    const SimResult r4 =
        runOne(fast(SystemConfig::dynamicScheme(4, 2)), prof, kRun);
    const SimResult r2 =
        runOne(fast(SystemConfig::dynamicScheme(2, 2)), prof, kRun);
    EXPECT_LT(r2.paperLeakageBits, r4.paperLeakageBits);
}

TEST(Integration, SparserEpochsMeanLessLeakage)
{
    const auto prof = workload::specProfile("astar");
    const SimResult e2 =
        runOne(fast(SystemConfig::dynamicScheme(4, 2)), prof, kRun);
    const SimResult e16 =
        runOne(fast(SystemConfig::dynamicScheme(4, 16)), prof, kRun);
    EXPECT_LT(e16.paperLeakageBits, e2.paperLeakageBits);
}

TEST(Integration, IpcSeriesReflectsPhaseChange)
{
    // h264's encode->reference transition should visibly change IPC.
    const auto prof = workload::specProfile("h264");
    const SimResult r =
        runOne(fast(SystemConfig::baseOram()), prof, 2'000'000);
    ASSERT_GE(r.ipcSeries.size(), 10u);
    double lo = 1e9, hi = 0;
    for (double v : r.ipcSeries) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi, 2.0 * lo);
}

TEST(Integration, AllBenchmarksRunAllSchemes)
{
    // Smoke grid: every (scheme, benchmark) pair completes and yields
    // sane numbers.
    const std::vector<SystemConfig> configs = {
        fast(SystemConfig::baseDram()), fast(SystemConfig::baseOram()),
        fast(SystemConfig::staticScheme(1300)),
        fast(SystemConfig::dynamicScheme(4, 4))};
    for (const auto &name : workload::specSuiteNames()) {
        const auto prof = workload::specProfile(name);
        for (const auto &cfg : configs) {
            const SimResult r = runOne(cfg, prof, 100'000);
            EXPECT_EQ(r.instructions, 100'000u) << name << " " << cfg.name;
            EXPECT_GT(r.cycles, 0u) << name << " " << cfg.name;
            EXPECT_GT(r.watts, 0.0) << name << " " << cfg.name;
            EXPECT_LE(r.ipc, 1.0) << name << " " << cfg.name;
        }
    }
}

} // namespace
} // namespace tcoram::sim
