/**
 * @file
 * Crypto substrate tests: AES-128 against FIPS-197 vectors, SHA-256
 * against FIPS-180 vectors, HMAC against RFC 4231, CTR round trips
 * and the probabilistic-encryption property the ORAM relies on.
 */

#include <gtest/gtest.h>

#include "crypto/aes128.hh"
#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "crypto/prf.hh"
#include "crypto/sha256.hh"

namespace tcoram::crypto {
namespace {

Key128
hexKey(std::initializer_list<std::uint8_t> bytes)
{
    Key128 k{};
    std::size_t i = 0;
    for (auto b : bytes)
        k[i++] = b;
    return k;
}

TEST(Aes128, Fips197Vector)
{
    // FIPS-197 Appendix B.
    const Key128 key = hexKey({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                               0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                               0x4f, 0x3c});
    const Block128 plain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                            0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
    const Block128 expect = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
                             0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32};
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(plain), expect);
    EXPECT_EQ(aes.decryptBlock(expect), plain);
}

TEST(Aes128, AppendixCVector)
{
    // FIPS-197 Appendix C.1.
    Key128 key{};
    Block128 plain{};
    for (int i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        plain[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    const Block128 expect = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                             0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(plain), expect);
    EXPECT_EQ(aes.decryptBlock(expect), plain);
}

TEST(Aes128, RoundTripRandomBlocks)
{
    Aes128 aes(keyFromSeed(99));
    Block128 b{};
    for (int trial = 0; trial < 100; ++trial) {
        for (auto &x : b)
            x = static_cast<std::uint8_t>(trial * 31 + &x - b.data());
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(b)), b);
    }
}

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(toHex(Sha256::hash(std::string{})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(toHex(Sha256::hash(std::string{"abc"})),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(toHex(Sha256::hash(std::string{
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"})),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    const std::string msg(1000, 'x');
    Sha256 inc;
    for (std::size_t i = 0; i < msg.size(); i += 7)
        inc.update(msg.substr(i, 7));
    EXPECT_EQ(inc.finish(), Sha256::hash(msg));
}

TEST(Sha256, MillionAs)
{
    // FIPS-180 long-message vector.
    Sha256 ctx;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        ctx.update(chunk);
    EXPECT_EQ(toHex(ctx.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Hmac, Rfc4231Case1)
{
    const std::vector<std::uint8_t> key(20, 0x0b);
    EXPECT_EQ(toHex(hmacSha256(key, std::string{"Hi There"})),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c"
              "2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    const std::string key_s = "Jefe";
    const std::vector<std::uint8_t> key(key_s.begin(), key_s.end());
    EXPECT_EQ(toHex(hmacSha256(key,
                               std::string{"what do ya want for nothing?"})),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
              "64ec3843");
}

TEST(Hmac, LongKeyIsHashed)
{
    const std::vector<std::uint8_t> key(131, 0xaa);
    // RFC 4231 case 6.
    EXPECT_EQ(toHex(hmacSha256(
                  key, std::string{"Test Using Larger Than Block-Size Key - "
                                   "Hash Key First"})),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
              "0ee37f54");
}

TEST(Hmac, DigestEqualConstantTime)
{
    Digest256 a{}, b{};
    EXPECT_TRUE(digestEqual(a, b));
    b[31] = 1;
    EXPECT_FALSE(digestEqual(a, b));
}

TEST(Ctr, RoundTrip)
{
    CtrCipher c(keyFromSeed(1));
    std::vector<std::uint8_t> msg(100);
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i);
    const Ciphertext ct = c.encrypt(msg, 77);
    EXPECT_EQ(c.decrypt(ct), msg);
}

TEST(Ctr, RoundTripOddSizes)
{
    CtrCipher c(keyFromSeed(2));
    for (std::size_t n : {1u, 15u, 16u, 17u, 31u, 33u, 240u}) {
        std::vector<std::uint8_t> msg(n, 0x5a);
        EXPECT_EQ(c.decrypt(c.encrypt(msg, n)), msg) << "size " << n;
    }
}

TEST(Ctr, ProbabilisticEncryption)
{
    // Same plaintext, different nonces -> different ciphertexts. This
    // is the property the paper's §3.2 probe attack keys on.
    CtrCipher c(keyFromSeed(3));
    const std::vector<std::uint8_t> msg(64, 0);
    const Ciphertext a = c.encrypt(msg, 1);
    const Ciphertext b = c.encrypt(msg, 2);
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.data, b.data);
}

TEST(Ctr, SameNonceSameCiphertext)
{
    CtrCipher c(keyFromSeed(4));
    const std::vector<std::uint8_t> msg(64, 7);
    EXPECT_TRUE(c.encrypt(msg, 9) == c.encrypt(msg, 9));
}

TEST(Ctr, DifferentKeysDiffer)
{
    CtrCipher a(keyFromSeed(5)), b(keyFromSeed(6));
    const std::vector<std::uint8_t> msg(32, 1);
    EXPECT_NE(a.encrypt(msg, 1).data, b.encrypt(msg, 1).data);
}

TEST(Ctr, ChunksFor)
{
    EXPECT_EQ(CtrCipher::chunksFor(0), 0u);
    EXPECT_EQ(CtrCipher::chunksFor(1), 1u);
    EXPECT_EQ(CtrCipher::chunksFor(16), 1u);
    EXPECT_EQ(CtrCipher::chunksFor(17), 2u);
    EXPECT_EQ(CtrCipher::chunksFor(24 * 1024), 1536u);
}

TEST(Prf, DeterministicStream)
{
    Prf a(keyFromSeed(10)), b(keyFromSeed(10));
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Prf, StatelessEval)
{
    Prf p(keyFromSeed(11));
    const std::uint64_t v = p.eval(1234);
    p.next64();
    EXPECT_EQ(p.eval(1234), v);
}

TEST(Prf, BoundedUniformish)
{
    Prf p(keyFromSeed(12));
    std::array<int, 4> counts{};
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        counts[p.nextBounded(4)]++;
    for (int c : counts) {
        EXPECT_GT(c, n / 4 - n / 40);
        EXPECT_LT(c, n / 4 + n / 40);
    }
}

TEST(Prf, KeyFromSeedDistinct)
{
    EXPECT_NE(keyFromSeed(1), keyFromSeed(2));
    EXPECT_NE(keyFromSeed(0), Key128{});
}

} // namespace
} // namespace tcoram::crypto
