/**
 * @file
 * System-level tests: config presets, the SecureProcessor wiring for
 * every scheme, and the experiment helpers.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/secure_processor.hh"
#include "workload/spec_suite.hh"

namespace tcoram::sim {
namespace {

constexpr InstCount kShortRun = 300'000;

SystemConfig
fastConfig(SystemConfig c)
{
    // Shrink the tree and epochs so unit tests run in milliseconds.
    c.oram.numBlocks = 1 << 12;
    c.epoch0 = 1 << 16;
    c.ipcWindow = 50'000;
    return c;
}

TEST(SystemConfig, PresetNames)
{
    EXPECT_EQ(SystemConfig::baseDram().name, "base_dram");
    EXPECT_EQ(SystemConfig::baseOram().name, "base_oram");
    EXPECT_EQ(SystemConfig::staticScheme(300).name, "static_300");
    EXPECT_EQ(SystemConfig::dynamicScheme(4, 4).name, "dynamic_R4_E4");
}

TEST(SystemConfig, StaticInitialRateMatches)
{
    const SystemConfig c = SystemConfig::staticScheme(1300);
    EXPECT_EQ(c.staticRate, 1300u);
    EXPECT_EQ(c.initialRate, 1300u);
}

TEST(SecureProcessor, BaseDramRuns)
{
    const SimResult r =
        runOne(fastConfig(SystemConfig::baseDram()),
               workload::specProfile("hmmer"), kShortRun);
    EXPECT_EQ(r.instructions, kShortRun);
    EXPECT_GT(r.cycles, kShortRun); // IPC < 1
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.watts, 0.0);
    EXPECT_EQ(r.oramReal + r.oramDummy, 0u);
}

TEST(SecureProcessor, BaseOramSlowerThanDram)
{
    const auto prof = workload::specProfile("mcf");
    const SimResult dram =
        runOne(fastConfig(SystemConfig::baseDram()), prof, kShortRun);
    const SimResult oram =
        runOne(fastConfig(SystemConfig::baseOram()), prof, kShortRun);
    EXPECT_GT(perfOverheadX(oram, dram), 1.5);
    EXPECT_GT(oram.oramReal, 0u);
    EXPECT_EQ(oram.oramDummy, 0u); // no enforcement, no dummies
}

TEST(SecureProcessor, StaticSchemeMakesDummies)
{
    const SimResult r =
        runOne(fastConfig(SystemConfig::staticScheme(300)),
               workload::specProfile("hmmer"), kShortRun);
    EXPECT_GT(r.oramDummy, 0u);
    EXPECT_DOUBLE_EQ(r.simLeakageBits, 0.0); // |R| = 1
}

TEST(SecureProcessor, DynamicSchemeDecidesRates)
{
    const SimResult r =
        runOne(fastConfig(SystemConfig::dynamicScheme(4, 2)),
               workload::specProfile("mcf"), kShortRun);
    EXPECT_GE(r.rateDecisions.size(), 2u);
    EXPECT_GT(r.epochsUsed, 1u);
    EXPECT_GT(r.simLeakageBits, 0.0);
    EXPECT_DOUBLE_EQ(r.paperLeakageBits, 64.0); // R4, doubling
}

TEST(SecureProcessor, DynamicFasterThanBadStatic)
{
    // A dynamic scheme should beat a grossly overset static rate on a
    // memory-bound workload.
    const auto prof = workload::specProfile("mcf");
    const SimResult dyn = runOne(
        fastConfig(SystemConfig::dynamicScheme(4, 2)), prof, kShortRun);
    const SimResult stat = runOne(
        fastConfig(SystemConfig::staticScheme(32768)), prof, kShortRun);
    EXPECT_LT(dyn.cycles, stat.cycles);
}

TEST(SecureProcessor, SeedReproducibility)
{
    const auto cfg = fastConfig(SystemConfig::dynamicScheme(4, 2));
    const auto prof = workload::specProfile("gobmk");
    const SimResult a = runOne(cfg, prof, kShortRun);
    const SimResult b = runOne(cfg, prof, kShortRun);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.oramReal, b.oramReal);
    EXPECT_EQ(a.oramDummy, b.oramDummy);
}

TEST(SecureProcessor, OramLatencyReported)
{
    const SimResult r =
        runOne(fastConfig(SystemConfig::baseOram()),
               workload::specProfile("mcf"), kShortRun);
    EXPECT_GT(r.oramLatency, 100u);
    EXPECT_GT(r.oramBytesPerAccess, 1000u);
}

TEST(SecureProcessor, CryptoWorkAttributed)
{
    // Fused-datapath budget: every (real or dummy) ORAM access costs
    // one whole-path decrypt per tree plus ONE cross-stage batched
    // write-back encrypt — bytes = accesses x bytes-per-access, calls
    // = accesses x (trees + 1), i.e. H+2 for H recursion stages. Both
    // the enforcer-counter path (dynamic) and the analytic path
    // (base_oram, no enforcer) must agree with that identity;
    // base_dram does no bucket crypto at all.
    for (auto cfg : {fastConfig(SystemConfig::baseOram()),
                     fastConfig(SystemConfig::dynamicScheme(4, 2))}) {
        const SimResult r =
            runOne(cfg, workload::specProfile("mcf"), kShortRun);
        const std::uint64_t accesses = r.oramReal + r.oramDummy;
        ASSERT_GT(accesses, 0u) << cfg.name;
        EXPECT_EQ(r.cryptoBytes, accesses * r.oramBytesPerAccess)
            << cfg.name;
        const std::uint64_t trees = 1 + cfg.oram.recursionChain().size();
        EXPECT_EQ(r.cryptoCalls, accesses * (trees + 1)) << cfg.name;
    }
    const SimResult dram = runOne(fastConfig(SystemConfig::baseDram()),
                                  workload::specProfile("mcf"), kShortRun);
    EXPECT_EQ(dram.cryptoBytes, 0u);
    EXPECT_EQ(dram.cryptoCalls, 0u);
}

TEST(SecureProcessor, AsyncDramModeShrinksOlatAndSpeedsTheRun)
{
    // dramMode = "async" calibrates the split-transaction controller:
    // the requested line returns after the path read, so the reported
    // OLAT drops well below sync and a miss-bound run finishes in
    // fewer cycles. Everything else about the run stays well-formed
    // (dummies fire, leakage accounting unchanged in structure).
    const auto prof = workload::specProfile("mcf");
    auto sync_cfg = fastConfig(SystemConfig::dynamicScheme(4, 2));
    auto async_cfg = sync_cfg;
    async_cfg.dramMode = "async";

    const SimResult s = runOne(sync_cfg, prof, kShortRun);
    const SimResult a = runOne(async_cfg, prof, kShortRun);
    ASSERT_GT(s.oramLatency, 0u);
    EXPECT_LT(a.oramLatency, s.oramLatency);
    EXPECT_LT(a.oramLatency, (s.oramLatency * 70) / 100)
        << "pipelined OLAT should be roughly the read phase";
    EXPECT_LT(a.cycles, s.cycles);
    EXPECT_GT(a.oramDummy, 0u);
    EXPECT_EQ(a.oramBytesPerAccess, s.oramBytesPerAccess)
        << "the pipeline reschedules transfers, it does not remove them";
}

TEST(SecureProcessor, AsyncModeIsSeedReproducible)
{
    auto cfg = fastConfig(SystemConfig::dynamicScheme(4, 2));
    cfg.dramMode = "async";
    const auto prof = workload::specProfile("gobmk");
    const SimResult a = runOne(cfg, prof, kShortRun);
    const SimResult b = runOne(cfg, prof, kShortRun);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.oramReal, b.oramReal);
    EXPECT_EQ(a.oramDummy, b.oramDummy);
}

TEST(Experiment, GridShape)
{
    const std::vector<SystemConfig> configs = {
        fastConfig(SystemConfig::baseDram()),
        fastConfig(SystemConfig::baseOram())};
    const std::vector<workload::Profile> profs = {
        workload::specProfile("hmmer"), workload::specProfile("sjeng")};
    const Grid g = runGrid(configs, profs, 100'000);
    ASSERT_EQ(g.results.size(), 2u);
    ASSERT_EQ(g.results[0].size(), 2u);
    EXPECT_EQ(g.at(0, 0).configName, "base_dram");
    EXPECT_EQ(g.at(1, 1).workloadName, "sjeng");
}

TEST(Experiment, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geoMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Experiment, TableFormatting)
{
    Table t({"a", "b"});
    t.addRow({"x", Table::fmt(3.14159, 2)});
    // Just exercise print (no crash) and fmt.
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

} // namespace
} // namespace tcoram::sim
