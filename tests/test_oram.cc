/**
 * @file
 * Path ORAM tests: geometry arithmetic, bucket serialization and
 * sealing, stash behaviour, functional read/write correctness, the
 * tree-path invariant, recursion, ciphertext freshness, and the
 * timing controller's calibration.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "dram/dram_model.hh"
#include "oram/oram_config.hh"
#include "oram/oram_controller.hh"
#include "oram/path_oram.hh"

namespace tcoram::oram {
namespace {

OramConfig
tinyConfig(std::uint64_t blocks = 256)
{
    OramConfig c;
    c.numBlocks = blocks;
    c.recursionLevels = 0;
    c.stashCapacity = 400;
    return c;
}

std::vector<std::uint8_t>
pattern(std::uint64_t tag, std::size_t n = 64)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(tag * 131 + i);
    return v;
}

TEST(OramConfig, GeometryArithmetic)
{
    OramConfig c = tinyConfig(256);
    // 256 blocks / Z=3 -> 86 leaves -> round to 128 -> depth 7.
    EXPECT_EQ(c.treeDepth(), 7u);
    EXPECT_EQ(c.numLeaves(), 128u);
    EXPECT_EQ(c.numBuckets(), 255u);
    EXPECT_EQ(c.bucketBytes(), 3u * 80u);
    EXPECT_EQ(c.pathBytes(), 8u * 240u);
}

TEST(OramConfig, PaperScaleTraffic)
{
    // The 4 GB paper configuration should move roughly 24.2 KB per
    // access (path read + write across data + recursive ORAMs).
    const OramConfig c = OramConfig::paperConfig();
    const double kb =
        static_cast<double>(c.totalBytesPerAccess()) / 1024.0;
    EXPECT_GT(kb, 18.0);
    EXPECT_LT(kb, 32.0);
}

TEST(OramConfig, RecursionChainShrinks)
{
    OramConfig c = OramConfig::paperConfig();
    const auto chain = c.recursionChain();
    ASSERT_EQ(chain.size(), 3u);
    EXPECT_LT(chain[0].numBlocks, c.numBlocks);
    EXPECT_LT(chain[1].numBlocks, chain[0].numBlocks);
    EXPECT_LT(chain[2].numBlocks, chain[1].numBlocks);
    for (const auto &r : chain)
        EXPECT_EQ(r.blockBytes, 32u);
}

TEST(Bucket, InsertAndOccupancy)
{
    Bucket b(3, 64);
    EXPECT_EQ(b.occupancy(), 0u);
    BlockSlot s;
    s.id = 7;
    s.leaf = 3;
    s.payload = pattern(7);
    EXPECT_TRUE(b.insert(s));
    EXPECT_EQ(b.occupancy(), 1u);
    s.id = 8;
    EXPECT_TRUE(b.insert(s));
    s.id = 9;
    EXPECT_TRUE(b.insert(s));
    EXPECT_TRUE(b.full());
    s.id = 10;
    EXPECT_FALSE(b.insert(s));
}

TEST(Bucket, SerializeRoundTrip)
{
    Bucket b(3, 64);
    BlockSlot s;
    s.id = 42;
    s.leaf = 13;
    s.payload = pattern(42);
    b.insert(s);
    const Bucket r = Bucket::deserialize(b.serialize(), 3, 64);
    EXPECT_EQ(r.occupancy(), 1u);
    EXPECT_EQ(r.slots()[0].id, 42u);
    EXPECT_EQ(r.slots()[0].leaf, 13u);
    EXPECT_EQ(r.slots()[0].payload, pattern(42));
}

TEST(Bucket, SealUnsealRoundTrip)
{
    crypto::CtrCipher cipher(crypto::keyFromSeed(5));
    Bucket b(3, 64);
    BlockSlot s;
    s.id = 1;
    s.leaf = 2;
    s.payload = pattern(1);
    b.insert(s);
    const auto ct = b.seal(cipher, 99);
    const Bucket r = Bucket::unseal(ct, cipher, 3, 64);
    EXPECT_EQ(r.slots()[0].id, 1u);
    EXPECT_EQ(r.slots()[0].payload, pattern(1));
}

TEST(Bucket, SealIsProbabilistic)
{
    crypto::CtrCipher cipher(crypto::keyFromSeed(6));
    Bucket b(3, 64);
    EXPECT_FALSE(b.seal(cipher, 1) == b.seal(cipher, 2));
}

TEST(Stash, PutFindTake)
{
    Stash st(10);
    BlockSlot s;
    s.id = 5;
    s.leaf = 1;
    s.payload = pattern(5);
    st.put(s);
    EXPECT_TRUE(st.contains(5));
    EXPECT_NE(st.find(5), nullptr);
    const BlockSlot t = st.take(5);
    EXPECT_EQ(t.payload, pattern(5));
    EXPECT_FALSE(st.contains(5));
}

TEST(Stash, PutReplacesSameId)
{
    Stash st(10);
    BlockSlot s;
    s.id = 5;
    s.leaf = 1;
    s.payload = pattern(5);
    st.put(s);
    s.payload = pattern(6);
    st.put(s);
    EXPECT_EQ(st.size(), 1u);
    EXPECT_EQ(st.find(5)->payload, pattern(6));
}

TEST(Stash, HighWaterTracks)
{
    Stash st(10);
    for (BlockId i = 0; i < 5; ++i) {
        BlockSlot s;
        s.id = i;
        s.leaf = 0;
        s.payload = pattern(i);
        st.put(s);
    }
    st.take(0);
    st.take(1);
    EXPECT_EQ(st.highWater(), 5u);
    EXPECT_EQ(st.size(), 3u);
}

TEST(PathOram, BucketIndexOnPathIsHeapWalk)
{
    OramConfig c = tinyConfig();
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 1);
    // Root is always bucket 0.
    EXPECT_EQ(oram.bucketIndexOnPath(0, 0), 0u);
    EXPECT_EQ(oram.bucketIndexOnPath(c.numLeaves() - 1, 0), 0u);
    // Leaf 0 descends the left spine.
    EXPECT_EQ(oram.bucketIndexOnPath(0, 1), 1u);
    EXPECT_EQ(oram.bucketIndexOnPath(0, 2), 3u);
    // Max leaf descends the right spine.
    EXPECT_EQ(oram.bucketIndexOnPath(c.numLeaves() - 1, 1), 2u);
    EXPECT_EQ(oram.bucketIndexOnPath(c.numLeaves() - 1, 2), 6u);
}

TEST(PathOram, WriteThenReadBack)
{
    OramConfig c = tinyConfig();
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 2);
    oram.access(3, Op::Write, pattern(3));
    EXPECT_EQ(oram.access(3, Op::Read), pattern(3));
}

TEST(PathOram, ManyBlocksSurviveChurn)
{
    OramConfig c = tinyConfig(128);
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 3);
    for (BlockId id = 0; id < 64; ++id)
        oram.access(id, Op::Write, pattern(id));
    // Churn with interleaved reads/writes.
    Rng rng(17);
    for (int round = 0; round < 500; ++round) {
        const BlockId id = rng.nextBounded(64);
        if (rng.nextBool(0.3))
            oram.access(id, Op::Write, pattern(id));
        else
            EXPECT_EQ(oram.access(id, Op::Read), pattern(id))
                << "block " << id << " round " << round;
    }
}

TEST(PathOram, InvariantHoldsAfterChurn)
{
    OramConfig c = tinyConfig(128);
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 4);
    std::vector<BlockId> touched;
    for (BlockId id = 0; id < 40; ++id) {
        oram.access(id, Op::Write, pattern(id));
        touched.push_back(id);
    }
    Rng rng(23);
    for (int i = 0; i < 200; ++i)
        oram.access(rng.nextBounded(40), Op::Read);
    EXPECT_TRUE(oram.checkInvariant(touched));
}

TEST(PathOram, UntouchedBlockReadsZero)
{
    OramConfig c = tinyConfig();
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 5);
    const auto v = oram.access(9, Op::Read);
    EXPECT_EQ(v, std::vector<std::uint8_t>(64, 0));
}

TEST(PathOram, AccessRewritesRootCiphertext)
{
    OramConfig c = tinyConfig();
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 6);
    const auto before = oram.bucketCiphertext(0);
    oram.access(0, Op::Read);
    EXPECT_FALSE(before == oram.bucketCiphertext(0));
}

TEST(PathOram, DummyAccessAlsoRewritesRoot)
{
    OramConfig c = tinyConfig();
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 7);
    const auto before = oram.bucketCiphertext(0);
    oram.dummyAccess();
    EXPECT_FALSE(before == oram.bucketCiphertext(0));
}

TEST(PathOram, TraceTouchesFullPathTwice)
{
    OramConfig c = tinyConfig();
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 8);
    oram.access(0, Op::Read);
    const AccessTrace &t = oram.lastTrace();
    EXPECT_EQ(t.reads.size(), c.treeDepth() + 1);
    EXPECT_EQ(t.writes.size(), c.treeDepth() + 1);
    EXPECT_EQ(t.totalBytes(), 2 * c.pathBytes());
}

TEST(PathOram, RemapChangesLeafDistribution)
{
    OramConfig c = tinyConfig();
    FlatPositionMap map(c.numBlocks);
    PathOram oram(c, map, 9);
    oram.access(0, Op::Write, pattern(0));
    std::set<Leaf> leaves;
    for (int i = 0; i < 50; ++i) {
        oram.access(0, Op::Read);
        leaves.insert(map.get(0));
    }
    // 50 remaps over 128 leaves: expect many distinct values.
    EXPECT_GT(leaves.size(), 20u);
}

TEST(RecursivePathOram, FunctionalRoundTrip)
{
    OramConfig c;
    c.numBlocks = 128;
    c.recursionLevels = 2;
    c.stashCapacity = 400;
    RecursivePathOram oram(c, 11);
    for (BlockId id = 0; id < 32; ++id)
        oram.access(id, Op::Write, pattern(id));
    for (BlockId id = 0; id < 32; ++id)
        EXPECT_EQ(oram.access(id, Op::Read), pattern(id)) << id;
}

TEST(RecursivePathOram, TreeCountMatchesConfig)
{
    OramConfig c;
    c.numBlocks = 4096;
    c.recursionLevels = 3;
    c.stashCapacity = 400;
    RecursivePathOram oram(c, 12);
    EXPECT_EQ(oram.treeCount(), 1 + c.recursionChain().size());
    EXPECT_GE(oram.treeCount(), 2u);
}

TEST(OramController, CalibratedLatencyScalesWithDepth)
{
    Rng rng(1);
    dram::DramModel mem_small(dram::DramConfig{});
    dram::DramModel mem_big(dram::DramConfig{});
    OramConfig small = tinyConfig(1 << 10);
    OramConfig big = tinyConfig(1 << 16);
    OramController c_small(small, mem_small, rng);
    OramController c_big(big, mem_big, rng);
    EXPECT_GT(c_big.accessLatency(), c_small.accessLatency());
}

TEST(OramController, PaperScaleLatencyNearPaperValue)
{
    // The 4 GB configuration should land in the neighbourhood of the
    // paper's 1488 cycles (we accept a generous band; the shape, not
    // the point value, is what downstream results rely on).
    Rng rng(2);
    dram::DramModel mem(dram::DramConfig{});
    OramController ctrl(OramConfig::paperConfig(), mem, rng);
    EXPECT_GT(ctrl.accessLatency(), 700u);
    EXPECT_LT(ctrl.accessLatency(), 3200u);
}

TEST(OramController, SerializesAccesses)
{
    Rng rng(3);
    dram::DramModel mem(dram::DramConfig{});
    OramController ctrl(tinyConfig(1 << 12), mem, rng);
    const Cycles t1 = ctrl.access(0);
    const Cycles t2 = ctrl.access(0);
    EXPECT_EQ(t2 - t1, ctrl.accessLatency());
    EXPECT_EQ(ctrl.realAccesses(), 2u);
}

TEST(OramController, DummySameCostAsReal)
{
    Rng rng(4);
    dram::DramModel mem(dram::DramConfig{});
    OramController ctrl(tinyConfig(1 << 12), mem, rng);
    const Cycles r = ctrl.access(10000) - 10000;
    const Cycles start = ctrl.busyUntil() + 5000;
    const Cycles d = ctrl.dummyAccess(start) - start;
    EXPECT_EQ(r, d);
    EXPECT_EQ(ctrl.dummyAccesses(), 1u);
}

TEST(OramController, SyncModeOccupancyEqualsLatency)
{
    Rng rng(5);
    dram::DramModel mem(dram::DramConfig{});
    OramController ctrl(tinyConfig(1 << 12), mem, rng, PathMode::Sync);
    EXPECT_EQ(ctrl.pathMode(), PathMode::Sync);
    EXPECT_EQ(ctrl.occupancyPerAccess(), ctrl.accessLatency());
}

TEST(OramController, PipelinedShrinksOlatBelowSync)
{
    // Same geometry, same calibration seed: the split-transaction
    // controller returns the requested line once the path read
    // completes, with the write-back tail overlapped — OLAT must drop
    // well below the blocking controller's, while the full path
    // occupancy stays between the read phase and the sync total (the
    // pipeline moves the same bytes; it removes the phase barrier).
    const OramConfig cfg = tinyConfig(1 << 14);
    dram::DramModel mem_s(dram::DramConfig{});
    dram::DramModel mem_p(dram::DramConfig{});
    Rng rng_s(6), rng_p(6);
    OramController sync(cfg, mem_s, rng_s, PathMode::Sync);
    OramController pipe(cfg, mem_p, rng_p, PathMode::Pipelined);

    EXPECT_LT(pipe.accessLatency(), sync.accessLatency());
    EXPECT_GE(pipe.occupancyPerAccess(), pipe.accessLatency());
    EXPECT_LE(pipe.occupancyPerAccess(), sync.accessLatency());
    // Cost attribution is geometry-derived, not schedule-derived.
    EXPECT_EQ(pipe.bytesPerAccess(), sync.bytesPerAccess());
    EXPECT_EQ(pipe.cryptoCallsPerAccess(), sync.cryptoCallsPerAccess());
    // Both calibrations consumed identical RNG draws.
    EXPECT_EQ(rng_s.next(), rng_p.next());
}

TEST(OramController, PipelinedServeGatesOnOccupancy)
{
    Rng rng(7);
    dram::DramModel mem(dram::DramConfig{});
    OramController ctrl(tinyConfig(1 << 12), mem, rng,
                        PathMode::Pipelined);
    const Cycles lat = ctrl.accessLatency();
    const Cycles occ = ctrl.occupancyPerAccess();
    ASSERT_GT(occ, lat) << "pipelined mode must have a write-back tail";

    // First access: line available after OLAT, path busy through occ.
    const Cycles t1 = ctrl.access(0);
    EXPECT_EQ(t1, lat);
    EXPECT_EQ(ctrl.busyUntil(), occ);

    // A back-to-back access waits for the tail, not just the line.
    const Cycles t2 = ctrl.access(t1);
    EXPECT_EQ(t2, occ + lat);
    EXPECT_EQ(ctrl.busyUntil(), 2 * occ);

    // Dummies pay the identical schedule.
    const Cycles t3 = ctrl.dummyAccess(0);
    EXPECT_EQ(t3, 2 * occ + lat);
}

} // namespace
} // namespace tcoram::oram
