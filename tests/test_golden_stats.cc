/**
 * @file
 * Golden-stats regression: pins the summary CSVs of reduced fig5/fig6
 * grids against checked-in fixtures, turning the "verify fig5/fig6 are
 * bit-identical" release ritual into a ctest. The simulator is
 * deterministic by construction (seeded cells, thread-count-
 * independent engine, locale-pinned formatting), so any diff here is a
 * real behaviour change — either a bug, or an intended change that
 * must regenerate the fixtures:
 *
 *   TCORAM_REGEN_GOLDEN=1 ./test_golden_stats
 *
 * The grids are scaled down (2 workloads, 120 K instructions) to keep
 * the test fast; the full benches sweep the same configurations.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/experiment.hh"
#include "sim/report.hh"
#include "workload/spec_suite.hh"

using namespace tcoram;

namespace {

constexpr InstCount kInsts = 120'000;
constexpr InstCount kWarmup = 480'000;

/** The benches' standard scaling (bench_common.hh), replicated. */
sim::SystemConfig
scaled(sim::SystemConfig c)
{
    c.oram = oram::OramConfig::paperConfig();
    c.epoch0 = Cycles{1} << 18;
    c.ipcWindow = 100'000;
    return c;
}

std::vector<workload::Profile>
profiles()
{
    return {workload::specProfile("mcf"), workload::specProfile("h264")};
}

std::string
goldenPath(const std::string &name)
{
    return std::string(TCORAM_SOURCE_DIR) + "/tests/golden/" + name;
}

void
compareOrRegen(const sim::Grid &grid, const std::string &name)
{
    const std::string path = goldenPath(name);
    const std::string csv = sim::toCsv(grid);

    if (std::getenv("TCORAM_REGEN_GOLDEN") != nullptr) {
        std::ofstream f(path);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << csv;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream f(path);
    ASSERT_TRUE(f.good())
        << path << " missing — run with TCORAM_REGEN_GOLDEN=1 once";
    std::stringstream ss;
    ss << f.rdbuf();
    EXPECT_EQ(ss.str(), csv)
        << name << " drifted. If the change is intended, regenerate with "
        << "TCORAM_REGEN_GOLDEN=1";
}

} // namespace

TEST(GoldenStats, Fig5RateSweepSummary)
{
    std::vector<sim::SystemConfig> configs = {
        scaled(sim::SystemConfig::baseDram())};
    for (Cycles rate : {256u, 2048u, 32768u})
        configs.push_back(scaled(sim::SystemConfig::staticScheme(rate)));
    compareOrRegen(sim::runGrid(configs, profiles(), kInsts, kWarmup),
                   "fig5_summary.csv");
}

TEST(GoldenStats, Fig6MainResultSummary)
{
    const std::vector<sim::SystemConfig> configs = {
        scaled(sim::SystemConfig::baseDram()),
        scaled(sim::SystemConfig::baseOram()),
        scaled(sim::SystemConfig::dynamicScheme(4, 4)),
        scaled(sim::SystemConfig::staticScheme(300)),
        scaled(sim::SystemConfig::staticScheme(500)),
        scaled(sim::SystemConfig::staticScheme(1300)),
    };
    compareOrRegen(sim::runGrid(configs, profiles(), kInsts, kWarmup),
                   "fig6_summary.csv");
}

/**
 * The same fig6 grid served by the functional device must reproduce
 * the SAME golden CSV — the device-equality acceptance criterion at
 * bench shape (tree capped via functionalBlockCap, charging from the
 * modeled paper geometry either way).
 */
TEST(GoldenStats, Fig6FunctionalDeviceMatchesTheSameGolden)
{
    std::vector<sim::SystemConfig> configs = {
        scaled(sim::SystemConfig::baseDram()),
        scaled(sim::SystemConfig::baseOram()),
        scaled(sim::SystemConfig::dynamicScheme(4, 4)),
        scaled(sim::SystemConfig::staticScheme(300)),
        scaled(sim::SystemConfig::staticScheme(500)),
        scaled(sim::SystemConfig::staticScheme(1300)),
    };
    for (auto &c : configs) {
        c.oramDevice = "functional";
        // Keep the functional trees tiny: this test pins equality of
        // the charged stats, not datapath throughput.
        c.functionalBlockCap = 1 << 10;
    }
    compareOrRegen(sim::runGrid(configs, profiles(), kInsts, kWarmup),
                   "fig6_summary.csv");
}

/**
 * The sharded-array transparency criterion: a 1-shard
 * ShardedOramDevice (kind "sharded" engages the wrapper even at
 * M = 1) must reproduce the SAME golden CSV as the bare timing
 * device — routing, per-shard calibration and counter aggregation all
 * collapse to the unsharded behaviour, bit for bit.
 */
TEST(GoldenStats, Fig6OneShardArrayMatchesTheSameGolden)
{
    std::vector<sim::SystemConfig> configs = {
        scaled(sim::SystemConfig::baseDram()),
        scaled(sim::SystemConfig::baseOram()),
        scaled(sim::SystemConfig::dynamicScheme(4, 4)),
        scaled(sim::SystemConfig::staticScheme(300)),
        scaled(sim::SystemConfig::staticScheme(500)),
        scaled(sim::SystemConfig::staticScheme(1300)),
    };
    for (auto &c : configs) {
        c.oramDevice = "sharded";
        c.oramShards = 1;
    }
    compareOrRegen(sim::runGrid(configs, profiles(), kInsts, kWarmup),
                   "fig6_summary.csv");
}
