/**
 * @file
 * DRAM model tests: bank row-buffer state machine, address decoding,
 * channel parallelism, closed-page policy, the flat baseline, the
 * split-transaction core (issue / nextEventAt / drainRetired) with its
 * blocking adapters, the batch-vs-loop differential contract, and
 * resetTiming() across every backend.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dram/differential.hh"
#include "dram/dram_model.hh"
#include "dram/flat_memory.hh"
#include "dram/trace_memory.hh"

namespace tcoram::dram {
namespace {

DramConfig
testConfig()
{
    DramConfig c;
    c.channels = 2;
    c.banksPerChannel = 8;
    c.rowBytes = 8192;
    return c;
}

TEST(Bank, RowHitCheaperThanMiss)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    const std::uint64_t burst = 4;

    const std::uint64_t t1 = bank.access(0, 5, burst); // cold miss
    const std::uint64_t start2 = t1 + 10;
    const std::uint64_t t2 = bank.access(start2, 5, burst); // row hit
    const std::uint64_t start3 = t2 + 10;
    const std::uint64_t t3 = bank.access(start3, 6, burst); // row miss

    const std::uint64_t hit_lat = t2 - start2;
    const std::uint64_t miss_lat = t3 - start3;
    EXPECT_LT(hit_lat, miss_lat);
    EXPECT_EQ(hit_lat, cfg.tCAS + burst);
    EXPECT_EQ(bank.rowHits(), 1u);
    EXPECT_EQ(bank.rowMisses(), 2u);
}

TEST(Bank, ColdMissLatency)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    const std::uint64_t burst = 4;
    const std::uint64_t t = bank.access(0, 0, burst);
    EXPECT_EQ(t, cfg.tRCD + cfg.tCAS + burst);
}

TEST(Bank, ConflictRespectsTrasAndTrp)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    bank.access(0, 0, 1);
    // Immediately conflicting access: must wait tRAS from activation,
    // then tRP + tRCD + tCAS.
    const std::uint64_t t = bank.access(0, 1, 1);
    EXPECT_GE(t, cfg.tRAS + cfg.tRP + cfg.tRCD + cfg.tCAS + 1);
}

TEST(Bank, ClosedPageNeverHits)
{
    DramConfig cfg = testConfig();
    cfg.closedPage = true;
    Bank bank(cfg);
    bank.access(0, 3, 1);
    bank.access(200, 3, 1); // same row, but auto-precharged
    EXPECT_EQ(bank.rowHits(), 0u);
    EXPECT_EQ(bank.rowMisses(), 2u);
    EXPECT_EQ(bank.openRow(), kInvalidId);
}

TEST(Bank, CloseRowForcesPublicState)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    bank.access(0, 9, 1);
    EXPECT_EQ(bank.openRow(), 9u);
    bank.closeRow();
    EXPECT_EQ(bank.openRow(), kInvalidId);
}

TEST(DramModel, DecodeChannelInterleaving)
{
    DramModel m(testConfig());
    // Consecutive cache lines alternate channels.
    EXPECT_NE(m.decode(0).channel, m.decode(64).channel);
    EXPECT_EQ(m.decode(0).channel, m.decode(128).channel);
}

TEST(DramModel, DecodeDistinctRows)
{
    DramModel m(testConfig());
    const auto a = m.decode(0);
    // Same channel, 8 KB * 2 channels * 8 banks further on: next row
    // in the same bank.
    const auto b = m.decode(2ull * 8 * 8192);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_NE(a.row, b.row);
}

TEST(DramModel, SequentialAccessesHitRowBuffer)
{
    DramModel m(testConfig());
    Cycles now = 0;
    for (int i = 0; i < 64; ++i)
        now = m.access(now, {static_cast<Addr>(i) * 64, 64, false});
    EXPECT_GT(m.rowHitRate(), 0.8);
}

TEST(DramModel, RandomAccessesMissMore)
{
    DramModel m(testConfig());
    Cycles now = 0;
    Addr a = 12345;
    for (int i = 0; i < 200; ++i) {
        a = a * 6364136223846793005ull + 13;
        now = m.access(now, {(a % (1ull << 30)) & ~63ull, 64, false});
    }
    EXPECT_LT(m.rowHitRate(), 0.5);
}

TEST(DramModel, CountsRequestsAndBytes)
{
    DramModel m(testConfig());
    m.access(0, {0, 64, false});
    m.access(100, {4096, 128, true});
    EXPECT_EQ(m.requestCount(), 2u);
    EXPECT_EQ(m.bytesMoved(), 192u);
}

TEST(DramModel, CompletionMonotonicPerBank)
{
    DramModel m(testConfig());
    Cycles prev = 0;
    for (int i = 0; i < 20; ++i) {
        const Cycles done = m.access(prev, {0, 64, false});
        EXPECT_GT(done, prev);
        prev = done;
    }
}

TEST(FlatMemory, FixedLatency)
{
    FlatMemory m(40);
    EXPECT_EQ(m.access(100, {0, 64, false}), 140u);
    EXPECT_EQ(m.latency(), 40u);
}

TEST(FlatMemory, SerializesBackToBack)
{
    FlatMemory m(40);
    const Cycles t1 = m.access(0, {0, 64, false});
    const Cycles t2 = m.access(0, {64, 64, false});
    EXPECT_EQ(t1, 40u);
    EXPECT_EQ(t2, 80u);
}

TEST(FlatMemory, IdleGapResets)
{
    FlatMemory m(40);
    m.access(0, {0, 64, false});
    EXPECT_EQ(m.access(1000, {0, 64, false}), 1040u);
}

TEST(FlatMemory, Counters)
{
    FlatMemory m(40);
    m.access(0, {0, 64, false});
    m.access(0, {0, 64, true});
    EXPECT_EQ(m.requestCount(), 2u);
    EXPECT_EQ(m.bytesMoved(), 128u);
}

TEST(DramConfig, CycleConversion)
{
    DramConfig c;
    // 1.334 DRAM cycles per CPU cycle: 1334 DRAM cycles ~= 1000 CPU.
    EXPECT_NEAR(static_cast<double>(c.toCpuCycles(1334)), 1000.0, 2.0);
    EXPECT_EQ(c.burstCycles(64), 4u);
    EXPECT_EQ(c.burstCycles(1), 1u);
    EXPECT_EQ(c.burstCycles(240), 15u);
}

// ---------------------------------------------------------------------------
// Split-transaction core.
// ---------------------------------------------------------------------------

namespace {

/** A deterministic pseudo-random request stream (mixed sizes, rw). */
std::vector<MemRequest>
randomStream(std::size_t n, std::uint64_t seed)
{
    std::vector<MemRequest> reqs;
    reqs.reserve(n);
    std::uint64_t x = seed;
    for (std::size_t i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        MemRequest r;
        r.addr = (x % (1ull << 28)) & ~63ull;
        r.bytes = 64 * (1 + (x >> 32) % 4);
        r.isWrite = ((x >> 40) & 1) != 0;
        reqs.push_back(r);
    }
    return reqs;
}

/** The three registered backends, freshly constructed. */
std::vector<std::pair<const char *, std::unique_ptr<MemoryIf>>>
allBackends()
{
    std::vector<std::pair<const char *, std::unique_ptr<MemoryIf>>> out;
    out.emplace_back("flat", std::make_unique<FlatMemory>(40));
    out.emplace_back("banked", std::make_unique<DramModel>(testConfig()));
    out.emplace_back("trace",
                     std::make_unique<TraceMemory>(
                         std::make_unique<DramModel>(testConfig())));
    return out;
}

} // namespace

TEST(SplitTransaction, IssueDrainMatchesBlockingAccess)
{
    // The same stream through a blocking twin and the async core must
    // retire with identical completion cycles, on every backend.
    const auto reqs = randomStream(64, 0xfeed);
    for (auto &[name, mem] : allBackends()) {
        auto twin = [&]() -> std::unique_ptr<MemoryIf> {
            if (std::string(name) == "flat")
                return std::make_unique<FlatMemory>(40);
            if (std::string(name) == "banked")
                return std::make_unique<DramModel>(testConfig());
            return std::make_unique<TraceMemory>(
                std::make_unique<DramModel>(testConfig()));
        }();
        Cycles now = 0;
        for (const auto &r : reqs) {
            const TxnToken tok = mem->issue(now, r);
            const Cycles at = mem->nextEventAt();
            ASSERT_NE(at, kNoPendingEvent) << name;
            Cycles async_done = 0;
            for (const Retired &ret : mem->drainRetired(at))
                if (ret.token == tok)
                    async_done = ret.completed;
            const Cycles sync_done = twin->access(now, r);
            ASSERT_EQ(async_done, sync_done) << name;
            now = sync_done / 2; // overlapping presentation cycles
        }
    }
}

TEST(SplitTransaction, NextEventAtTracksEarliestRetirement)
{
    DramModel m(testConfig());
    // Two transactions to distinct channels issued at the same cycle:
    // nextEventAt is the earlier completion, and draining up to it
    // retires exactly that transaction.
    const TxnToken t0 = m.issue(0, {0, 64, false});
    const TxnToken t1 = m.issue(0, {64, 256, false});
    ASSERT_NE(m.decode(0).channel, m.decode(64).channel);

    const Cycles first = m.nextEventAt();
    ASSERT_NE(first, kNoPendingEvent);
    const auto batch = m.drainRetired(first);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].completed, first);
    EXPECT_TRUE(batch[0].token == t0 || batch[0].token == t1);

    const Cycles second = m.nextEventAt();
    ASSERT_NE(second, kNoPendingEvent);
    EXPECT_GE(second, first);
    ASSERT_EQ(m.drainRetired(second).size(), 1u);
    EXPECT_EQ(m.nextEventAt(), kNoPendingEvent);
}

TEST(SplitTransaction, DrainReturnsCompletionOrderAndCarriesRequests)
{
    FlatMemory m(40);
    const MemRequest a{0, 64, false};
    const MemRequest b{128, 64, true};
    const TxnToken ta = m.issue(0, a);
    const TxnToken tb = m.issue(0, b);
    const auto batch = m.drainRetired(m.nextEventAt() + 1000);
    ASSERT_EQ(batch.size(), 2u);
    // Flat memory serializes: a completes at 40, b at 80.
    EXPECT_EQ(batch[0].token, ta);
    EXPECT_EQ(batch[0].completed, 40u);
    EXPECT_EQ(batch[0].issued, 0u);
    EXPECT_EQ(batch[0].req.addr, a.addr);
    EXPECT_EQ(batch[1].token, tb);
    EXPECT_EQ(batch[1].completed, 80u);
    EXPECT_TRUE(batch[1].req.isWrite);
    EXPECT_GT(tb, ta) << "tokens are monotonic";
}

TEST(SplitTransaction, TraceMemoryRecordsAsyncRetirements)
{
    TraceMemory m(std::make_unique<FlatMemory>(40));
    m.issue(10, {0, 64, false});
    m.issue(10, {64, 64, true});
    EXPECT_TRUE(m.records().empty()) << "recorded only at retirement";
    m.drainRetired(m.nextEventAt() + 1000);
    const auto recs = m.records();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].issued, 10u);
    EXPECT_EQ(recs[0].completed, 50u);
    EXPECT_EQ(recs[1].completed, 90u);
    EXPECT_EQ(m.requestCount(), 2u);
}

TEST(SplitTransaction, BlockingAdapterDiscardsForeignRetirements)
{
    // An async issue left in flight is drained (and dropped) by a
    // later blocking call — the documented mixing semantics.
    FlatMemory m(40);
    m.issue(0, {0, 64, false});
    const Cycles done = m.access(0, {64, 64, false});
    EXPECT_EQ(done, 80u) << "serialized behind the in-flight txn";
    EXPECT_EQ(m.nextEventAt(), kNoPendingEvent);
}

// ---------------------------------------------------------------------------
// Differential contract: accessBatch == per-request loop == async core.
// ---------------------------------------------------------------------------

TEST(Differential, EveryBackendBatchMatchesLoop)
{
    const auto reqs = randomStream(96, 0xbeef);
    for (auto &[name, mem] : allBackends()) {
        const BatchDivergence d = compareBatchToLoop(*mem, 500, reqs);
        EXPECT_FALSE(d.diverged)
            << name << " diverged at request " << d.index;
        ASSERT_EQ(d.loopDone.size(), reqs.size());
        EXPECT_EQ(d.batchDone,
                  *std::max_element(d.loopDone.begin(), d.loopDone.end()));
    }
}

TEST(Differential, CheckedAccessBatchReturnsBatchCompletion)
{
    FlatMemory m(40);
    const auto reqs = randomStream(8, 0x11);
    const Cycles done = checkedAccessBatch(m, 100, reqs);
    EXPECT_EQ(done, 100u + 40u * reqs.size());
}

TEST(Differential, CalibrationPathStreamIsBatchLoopIdentical)
{
    // The sharded per-shard calibration replays whole ORAM paths
    // through accessBatch; pin the contract on exactly that stream
    // shape (many same-cycle bucket reads, then same-cycle writes).
    DramModel m(testConfig());
    std::vector<MemRequest> path;
    for (unsigned l = 0; l < 20; ++l)
        path.push_back({(1ull << l) * 240, 240, false});
    checkedAccessBatch(m, 1000, path); // fatal on divergence
    for (auto &r : path)
        r.isWrite = true;
    checkedAccessBatch(m, 1000, path);
}

// ---------------------------------------------------------------------------
// resetTiming(): calibration-equivalent timing, preserved counters.
// ---------------------------------------------------------------------------

TEST(ResetTiming, FlatMemoryRestoresIdleTimingAndKeepsCounters)
{
    FlatMemory m(40);
    const auto traffic = randomStream(32, 0x3);
    for (const auto &r : traffic)
        m.access(0, r);
    const std::uint64_t reqs_before = m.requestCount();
    const std::uint64_t bytes_before = m.bytesMoved();
    ASSERT_GT(reqs_before, 0u);

    m.resetTiming();
    EXPECT_EQ(m.requestCount(), reqs_before) << "counters preserved";
    EXPECT_EQ(m.bytesMoved(), bytes_before);

    // Replays after the reset must time exactly like a fresh instance.
    FlatMemory fresh(40);
    const auto replay = randomStream(32, 0x7);
    for (const auto &r : replay)
        EXPECT_EQ(m.access(5, r), fresh.access(5, r));
}

TEST(ResetTiming, DramModelRestoresIdleTimingAndKeepsCounters)
{
    DramModel m(testConfig());
    const auto traffic = randomStream(128, 0x5);
    for (const auto &r : traffic)
        m.access(0, r);
    const std::uint64_t reqs_before = m.requestCount();
    const double hit_rate_before = m.rowHitRate();

    m.resetTiming();
    EXPECT_EQ(m.requestCount(), reqs_before) << "counters preserved";
    EXPECT_EQ(m.rowHitRate(), hit_rate_before)
        << "row hit statistics preserved";

    // Per-request completions of a calibration-style replay match a
    // fresh model bit for bit: banks idle, rows closed, buses free.
    DramModel fresh(testConfig());
    const auto replay = randomStream(128, 0x9);
    for (const auto &r : replay)
        ASSERT_EQ(m.access(1000, r), fresh.access(1000, r));
}

TEST(ResetTiming, TraceMemoryForwardsResetAndKeepsRecords)
{
    TraceMemory m(std::make_unique<DramModel>(testConfig()));
    const auto traffic = randomStream(16, 0xc);
    for (const auto &r : traffic)
        m.access(0, r);
    const std::size_t records_before = m.records().size();

    m.resetTiming();
    EXPECT_EQ(m.records().size(), records_before)
        << "the record ring is an observation log, not timing state";

    TraceMemory fresh(std::make_unique<DramModel>(testConfig()));
    const auto replay = randomStream(16, 0xd);
    for (const auto &r : replay)
        EXPECT_EQ(m.access(77, r), fresh.access(77, r));
}

TEST(ResetTiming, AbortsInFlightTransactions)
{
    for (auto &[name, mem] : allBackends()) {
        mem->issue(0, {0, 64, false});
        mem->issue(0, {4096, 64, false});
        ASSERT_NE(mem->nextEventAt(), kNoPendingEvent) << name;
        mem->resetTiming();
        EXPECT_EQ(mem->nextEventAt(), kNoPendingEvent)
            << name << ": resetTiming must abort in-flight transactions";
        EXPECT_TRUE(mem->drainRetired(~Cycles{0} - 1).empty()) << name;
    }
}

} // namespace
} // namespace tcoram::dram
