/**
 * @file
 * DRAM model tests: bank row-buffer state machine, address decoding,
 * channel parallelism, closed-page policy, and the flat baseline.
 */

#include <gtest/gtest.h>

#include "dram/dram_model.hh"
#include "dram/flat_memory.hh"

namespace tcoram::dram {
namespace {

DramConfig
testConfig()
{
    DramConfig c;
    c.channels = 2;
    c.banksPerChannel = 8;
    c.rowBytes = 8192;
    return c;
}

TEST(Bank, RowHitCheaperThanMiss)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    const std::uint64_t burst = 4;

    const std::uint64_t t1 = bank.access(0, 5, burst); // cold miss
    const std::uint64_t start2 = t1 + 10;
    const std::uint64_t t2 = bank.access(start2, 5, burst); // row hit
    const std::uint64_t start3 = t2 + 10;
    const std::uint64_t t3 = bank.access(start3, 6, burst); // row miss

    const std::uint64_t hit_lat = t2 - start2;
    const std::uint64_t miss_lat = t3 - start3;
    EXPECT_LT(hit_lat, miss_lat);
    EXPECT_EQ(hit_lat, cfg.tCAS + burst);
    EXPECT_EQ(bank.rowHits(), 1u);
    EXPECT_EQ(bank.rowMisses(), 2u);
}

TEST(Bank, ColdMissLatency)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    const std::uint64_t burst = 4;
    const std::uint64_t t = bank.access(0, 0, burst);
    EXPECT_EQ(t, cfg.tRCD + cfg.tCAS + burst);
}

TEST(Bank, ConflictRespectsTrasAndTrp)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    bank.access(0, 0, 1);
    // Immediately conflicting access: must wait tRAS from activation,
    // then tRP + tRCD + tCAS.
    const std::uint64_t t = bank.access(0, 1, 1);
    EXPECT_GE(t, cfg.tRAS + cfg.tRP + cfg.tRCD + cfg.tCAS + 1);
}

TEST(Bank, ClosedPageNeverHits)
{
    DramConfig cfg = testConfig();
    cfg.closedPage = true;
    Bank bank(cfg);
    bank.access(0, 3, 1);
    bank.access(200, 3, 1); // same row, but auto-precharged
    EXPECT_EQ(bank.rowHits(), 0u);
    EXPECT_EQ(bank.rowMisses(), 2u);
    EXPECT_EQ(bank.openRow(), kInvalidId);
}

TEST(Bank, CloseRowForcesPublicState)
{
    const DramConfig cfg = testConfig();
    Bank bank(cfg);
    bank.access(0, 9, 1);
    EXPECT_EQ(bank.openRow(), 9u);
    bank.closeRow();
    EXPECT_EQ(bank.openRow(), kInvalidId);
}

TEST(DramModel, DecodeChannelInterleaving)
{
    DramModel m(testConfig());
    // Consecutive cache lines alternate channels.
    EXPECT_NE(m.decode(0).channel, m.decode(64).channel);
    EXPECT_EQ(m.decode(0).channel, m.decode(128).channel);
}

TEST(DramModel, DecodeDistinctRows)
{
    DramModel m(testConfig());
    const auto a = m.decode(0);
    // Same channel, 8 KB * 2 channels * 8 banks further on: next row
    // in the same bank.
    const auto b = m.decode(2ull * 8 * 8192);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_NE(a.row, b.row);
}

TEST(DramModel, SequentialAccessesHitRowBuffer)
{
    DramModel m(testConfig());
    Cycles now = 0;
    for (int i = 0; i < 64; ++i)
        now = m.access(now, {static_cast<Addr>(i) * 64, 64, false});
    EXPECT_GT(m.rowHitRate(), 0.8);
}

TEST(DramModel, RandomAccessesMissMore)
{
    DramModel m(testConfig());
    Cycles now = 0;
    Addr a = 12345;
    for (int i = 0; i < 200; ++i) {
        a = a * 6364136223846793005ull + 13;
        now = m.access(now, {(a % (1ull << 30)) & ~63ull, 64, false});
    }
    EXPECT_LT(m.rowHitRate(), 0.5);
}

TEST(DramModel, CountsRequestsAndBytes)
{
    DramModel m(testConfig());
    m.access(0, {0, 64, false});
    m.access(100, {4096, 128, true});
    EXPECT_EQ(m.requestCount(), 2u);
    EXPECT_EQ(m.bytesMoved(), 192u);
}

TEST(DramModel, CompletionMonotonicPerBank)
{
    DramModel m(testConfig());
    Cycles prev = 0;
    for (int i = 0; i < 20; ++i) {
        const Cycles done = m.access(prev, {0, 64, false});
        EXPECT_GT(done, prev);
        prev = done;
    }
}

TEST(FlatMemory, FixedLatency)
{
    FlatMemory m(40);
    EXPECT_EQ(m.access(100, {0, 64, false}), 140u);
    EXPECT_EQ(m.latency(), 40u);
}

TEST(FlatMemory, SerializesBackToBack)
{
    FlatMemory m(40);
    const Cycles t1 = m.access(0, {0, 64, false});
    const Cycles t2 = m.access(0, {64, 64, false});
    EXPECT_EQ(t1, 40u);
    EXPECT_EQ(t2, 80u);
}

TEST(FlatMemory, IdleGapResets)
{
    FlatMemory m(40);
    m.access(0, {0, 64, false});
    EXPECT_EQ(m.access(1000, {0, 64, false}), 1040u);
}

TEST(FlatMemory, Counters)
{
    FlatMemory m(40);
    m.access(0, {0, 64, false});
    m.access(0, {0, 64, true});
    EXPECT_EQ(m.requestCount(), 2u);
    EXPECT_EQ(m.bytesMoved(), 128u);
}

TEST(DramConfig, CycleConversion)
{
    DramConfig c;
    // 1.334 DRAM cycles per CPU cycle: 1334 DRAM cycles ~= 1000 CPU.
    EXPECT_NEAR(static_cast<double>(c.toCpuCycles(1334)), 1000.0, 2.0);
    EXPECT_EQ(c.burstCycles(64), 4u);
    EXPECT_EQ(c.burstCycles(1), 1u);
    EXPECT_EQ(c.burstCycles(240), 15u);
}

} // namespace
} // namespace tcoram::dram
