/**
 * @file
 * Million-session scheduler scale-out: SPSC ring wrap-around and
 * backpressure, lane-monotonic token/fence retirement, the
 * N-thread == 1-thread bit-identity contract of the phased-round
 * RingScheduler (per-shard observable streams, session stats, CSV
 * rows), stream equality against the legacy OramScheduler, QoS
 * dispatch-policy semantics and their stream-invariance, and the
 * nearest-rank latency percentile against a fully-sorted reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "dram/dram_model.hh"
#include "oram/oram_device.hh"
#include "oram/sharded_device.hh"
#include "sim/oram_scheduler.hh"
#include "sim/session_ring.hh"
#include "sim/shard_worker.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"

using namespace tcoram;

namespace {

oram::OramConfig
tinyConfig()
{
    oram::OramConfig c;
    c.numBlocks = 1 << 10;
    c.recursionLevels = 2;
    c.stashCapacity = 400;
    return c;
}

protocol::LeakageParams
leakParams(std::size_t rate_count)
{
    protocol::LeakageParams p;
    p.rateCount = rate_count;
    return p;
}

constexpr Cycles kDrainHorizon = Cycles{1} << 18;

/** (sid, arrival, block) programs, interleaved by arrival the way a
 *  real multi-client front end would see them; per-session arrivals
 *  stay non-decreasing (stable sort). */
struct Arrival
{
    std::uint32_t sid;
    Cycles at;
    std::uint64_t block;
};

std::vector<Arrival>
makeWorkload(std::size_t sessions, std::uint64_t seed)
{
    std::vector<Arrival> w;
    for (std::uint32_t sid = 0; sid < sessions; ++sid) {
        const Cycles stride = 500 + 300 * ((sid + seed) % 5);
        for (Cycles t = 40 * sid; t < 30'000; t += stride)
            w.push_back({sid, t, (seed * 7919 + sid * 131 + t) % 1024});
    }
    std::stable_sort(w.begin(), w.end(),
                     [](const Arrival &a, const Arrival &b) {
                         return a.at < b.at;
                     });
    return w;
}

/** Everything the bit-identity contract pins, in one comparable bag. */
using StatsTuple = std::tuple<std::uint64_t, std::uint64_t, Cycles, Cycles,
                              Cycles, Cycles, Cycles>;

StatsTuple
statsOf(const sim::SessionStats &s, bool with_last_completion)
{
    return {s.submitted,
            s.completed,
            s.firstArrival,
            with_last_completion ? s.lastCompletion : Cycles{0},
            s.totalLatency,
            s.totalSlotWait,
            s.maxLatency};
}

struct RingSetup
{
    std::uint32_t shards = 1;
    unsigned threads = 1;
    timing::DispatchPolicyKind policy =
        timing::DispatchPolicyKind::RoundRobin;
    bool dynamic = false;
    std::size_t sessions = 1;
    std::uint64_t seed = 1;
    std::size_t lanes = 1;
    std::size_t capacity = 4096;
    oram::PathMode pathMode = oram::PathMode::Sync;
    oram::EvictionPolicy evictionPolicy = oram::EvictionPolicy::Off;
    std::uint32_t evictionBudget = 0;
};

struct RingResult
{
    std::vector<std::vector<Cycles>> streams; ///< per-shard start cycles
    std::vector<StatsTuple> stats;
    std::string csv;
    Cycles last = 0;
    std::uint64_t served = 0;
    /** Completions in pop order, lane-major. */
    std::vector<sim::SessionRing::Completion> completions;
    std::vector<std::uint64_t> fences;
    std::uint64_t evictions = 0;
};

std::vector<Cycles>
ringRates(bool dynamic)
{
    return dynamic ? std::vector<Cycles>{400, 800, 1600, 3200}
                   : std::vector<Cycles>{500};
}

RingResult
runRing(const RingSetup &setup)
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::OramDeviceSpec inner; // timing
    inner.pathMode = setup.pathMode;
    inner.evictionPolicy = setup.evictionPolicy;
    inner.evictionBudget = setup.evictionBudget;
    oram::ShardedOramDevice dev(inner, tinyConfig(), setup.shards,
                                /*route_seed=*/5, mem, rng,
                                /*record=*/true);
    const timing::RateSet rates{ringRates(setup.dynamic)};
    const timing::EpochSchedule sched{setup.dynamic ? Cycles{1} << 14
                                                    : Cycles{1} << 30,
                                      2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    sim::RingScheduler::Options o;
    o.lanes = setup.lanes;
    o.ringCapacity = setup.capacity;
    o.threads = setup.threads;
    o.policy = setup.policy;
    sim::RingScheduler rs(dev, rates, sched, learner,
                          setup.dynamic ? 3200 : 500,
                          leakParams(rates.size()), o);

    RingResult r;
    for (std::uint32_t sid = 0; sid < setup.sessions; ++sid)
        rs.openSession(100 + sid, -1.0,
                       static_cast<std::uint16_t>(sid % setup.lanes),
                       static_cast<std::uint16_t>(1 + sid % 3),
                       Cycles{100} * sid);

    auto drain = [&] {
        for (std::size_t l = 0; l < setup.lanes; ++l) {
            sim::SessionRing::Completion c;
            while (rs.lane(l).popCompletion(c))
                r.completions.push_back(c);
        }
    };
    for (const auto &a : makeWorkload(setup.sessions, setup.seed)) {
        auto tok =
            rs.trySubmit(a.sid, a.at, timing::OramTransaction::real(a.block));
        while (!tok) {
            // In-flight bound hit: pump the scheduler, drain the
            // completion rings, resubmit — the documented contract.
            rs.runUntilIdle();
            drain();
            tok = rs.trySubmit(a.sid, a.at,
                               timing::OramTransaction::real(a.block));
        }
    }
    rs.runUntilIdle();
    rs.drainUntil(kDrainHorizon);
    drain();

    for (std::uint32_t s = 0; s < setup.shards; ++s)
        r.streams.push_back(dev.recorder(s)->startCycles());
    for (std::uint32_t sid = 0; sid < setup.sessions; ++sid)
        r.stats.push_back(statsOf(rs.stats(sid), true));
    r.csv = rs.csv();
    r.last = rs.lastCompletion();
    r.served = rs.servedTotal();
    for (std::size_t l = 0; l < setup.lanes; ++l)
        r.fences.push_back(rs.lane(l).retiredFence());
    r.evictions = dev.evictionsIssued();
    return r;
}

void
expectSameRun(const RingResult &a, const RingResult &b, const char *what)
{
    EXPECT_EQ(a.streams, b.streams) << what;
    EXPECT_EQ(a.stats, b.stats) << what;
    EXPECT_EQ(a.csv, b.csv) << what;
    EXPECT_EQ(a.last, b.last) << what;
    EXPECT_EQ(a.served, b.served) << what;
    EXPECT_EQ(a.fences, b.fences) << what;
    EXPECT_EQ(a.evictions, b.evictions) << what;
    ASSERT_EQ(a.completions.size(), b.completions.size()) << what;
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
        const auto &ca = a.completions[i];
        const auto &cb = b.completions[i];
        ASSERT_EQ(ca.token, cb.token) << what << " completion " << i;
        ASSERT_EQ(ca.sessionId, cb.sessionId) << what << " completion " << i;
        ASSERT_EQ(ca.arrival, cb.arrival) << what << " completion " << i;
        ASSERT_EQ(ca.completion.start, cb.completion.start)
            << what << " completion " << i;
        ASSERT_EQ(ca.completion.done, cb.completion.done)
            << what << " completion " << i;
    }
}

/** The legacy scheduler run over the same workload and device setup. */
struct LegacyResult
{
    std::vector<std::vector<Cycles>> streams;
    std::vector<StatsTuple> stats;
    std::vector<Cycles> lastPerShard;
    std::vector<std::uint32_t> epochs;
    std::uint64_t real = 0;
    std::uint64_t dummy = 0;
    std::vector<std::vector<Cycles>> latencies; ///< per sid, serve order
};

LegacyResult
runLegacy(std::uint32_t shards, bool dynamic, std::size_t sessions,
          std::uint64_t seed)
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::OramDeviceSpec inner; // timing
    oram::ShardedOramDevice dev(inner, tinyConfig(), shards,
                                /*route_seed=*/5, mem, rng,
                                /*record=*/true);
    const timing::RateSet rates{ringRates(dynamic)};
    const timing::EpochSchedule sched{dynamic ? Cycles{1} << 14
                                              : Cycles{1} << 30,
                                      2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    sim::OramScheduler s(dev, rates, sched, learner, dynamic ? 3200 : 500,
                         leakParams(rates.size()));

    LegacyResult r;
    r.latencies.resize(sessions);
    for (std::uint32_t sid = 0; sid < sessions; ++sid)
        s.openSession(100 + sid);
    for (const auto &a : makeWorkload(sessions, seed))
        s.submit(a.sid, a.at, timing::OramTransaction::real(a.block));
    while (auto served = s.serveNext())
        r.latencies[served->sessionId].push_back(served->completion.done -
                                                 served->arrival);
    s.drainUntil(kDrainHorizon);

    for (std::uint32_t i = 0; i < shards; ++i) {
        r.streams.push_back(dev.recorder(i)->startCycles());
        r.lastPerShard.push_back(s.shard(i).enforcer().lastCompletion());
        r.epochs.push_back(s.shard(i).enforcer().currentEpoch());
    }
    for (std::uint32_t sid = 0; sid < sessions; ++sid)
        r.stats.push_back(statsOf(s.stats(sid), shards == 1));
    r.real = dev.realAccesses();
    r.dummy = dev.dummyAccesses();
    return r;
}

/** Nearest-rank quantile over a fully sorted copy — the reference the
 *  nth_element implementations must reproduce exactly. */
Cycles
sortedReference(std::vector<Cycles> samples, double q)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    return samples[rank == 0 ? 0 : rank - 1];
}

constexpr double kQuantiles[] = {0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0};

} // namespace

// --- rings ---

TEST(SpscRing, WrapAroundKeepsFifoOrderForever)
{
    sim::SpscRing<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);

    int v = -1;
    EXPECT_FALSE(ring.tryPop(v));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.tryPush(i));
    EXPECT_FALSE(ring.tryPush(99)) << "full ring must refuse";

    int next_pop = 0;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, next_pop++);
    }
    EXPECT_FALSE(ring.tryPop(v));

    // Many times around the buffer with a varying backlog: indices are
    // monotonic uint64s, only the masked slot wraps.
    int next_push = 4;
    for (int round = 0; round < 64; ++round) {
        const int burst = 1 + round % 4;
        for (int i = 0; i < burst; ++i)
            ASSERT_TRUE(ring.tryPush(next_push++));
        for (int i = 0; i < burst; ++i) {
            ASSERT_TRUE(ring.tryPop(v));
            ASSERT_EQ(v, next_pop++);
        }
    }
    EXPECT_EQ(ring.size(), 0u);
}

TEST(SessionRing, TokensAreMonotonicAndInFlightBoundBackpressures)
{
    sim::SessionRing ring(4);
    EXPECT_EQ(ring.capacity(), 4u);

    const auto txn = timing::OramTransaction::real(7);
    for (std::uint64_t t = 1; t <= 4; ++t) {
        const auto tok = ring.trySubmit(0, 10 * t, txn);
        ASSERT_TRUE(tok.has_value());
        EXPECT_EQ(*tok, t) << "lane tokens count 1, 2, 3, ...";
    }
    EXPECT_FALSE(ring.trySubmit(0, 50, txn).has_value())
        << "at the in-flight bound the lane must refuse";
    EXPECT_EQ(ring.inFlight(), 4u);

    // The scheduler retiring a transaction is not enough: the bound is
    // producer-observed, so it opens only when the COMPLETION is popped.
    sim::SessionRing::Submission sub;
    ASSERT_TRUE(ring.popSubmission(sub));
    EXPECT_EQ(sub.token, 1u);
    EXPECT_EQ(sub.arrival, 10u);
    ring.pushCompletion({sub.token, sub.sessionId, sub.arrival, {}});
    EXPECT_FALSE(ring.trySubmit(0, 60, txn).has_value());

    sim::SessionRing::Completion c;
    ASSERT_TRUE(ring.popCompletion(c));
    EXPECT_EQ(c.token, 1u);
    EXPECT_TRUE(ring.isRetired(1));
    EXPECT_FALSE(ring.isRetired(2));
    const auto tok = ring.trySubmit(0, 60, txn);
    ASSERT_TRUE(tok.has_value());
    EXPECT_EQ(*tok, 5u);
}

TEST(SessionRing, FenceAdvancesOnlyThroughContiguousRetirement)
{
    sim::SessionRing ring(8);
    const auto txn = timing::OramTransaction::real(3);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(ring.trySubmit(0, 0, txn).has_value());
    sim::SessionRing::Submission subs[3];
    for (auto &sub : subs)
        ASSERT_TRUE(ring.popSubmission(sub));

    // Shards retire out of order: token 2 first. The fence must hold
    // at 0 until token 1 retires, then jump over the marked window.
    ring.pushCompletion({2, 0, 0, {}});
    ring.pushCompletion({1, 0, 0, {}});
    ring.pushCompletion({3, 0, 0, {}});

    sim::SessionRing::Completion c;
    ASSERT_TRUE(ring.popCompletion(c));
    EXPECT_EQ(c.token, 2u);
    EXPECT_EQ(ring.retiredFence(), 0u);
    EXPECT_FALSE(ring.isRetired(1));

    ASSERT_TRUE(ring.popCompletion(c));
    EXPECT_EQ(c.token, 1u);
    EXPECT_EQ(ring.retiredFence(), 2u) << "fence jumps the retired window";
    EXPECT_TRUE(ring.isRetired(2));
    EXPECT_FALSE(ring.isRetired(3));

    ASSERT_TRUE(ring.popCompletion(c));
    EXPECT_EQ(c.token, 3u);
    EXPECT_EQ(ring.retiredFence(), 3u);
    EXPECT_EQ(ring.inFlight(), 0u);
}

TEST(SessionRing, FenceGatesResubmissionAfterOutOfOrderDrain)
{
    // Regression: completions push in shard-fold order, not token
    // order, so a producer that pops out-of-order completions and
    // resubmits (the documented backpressure contract) drives the
    // drain count ahead of the fence. Submission must be gated by the
    // FENCE — an in-flight (drain-count) gate would admit a token that
    // aliases a live token's retirement-window slot (token 5 & 3 ==
    // token 1 & 3 at capacity 4).
    sim::SessionRing ring(4);
    const auto txn = timing::OramTransaction::real(1);
    for (std::uint64_t t = 1; t <= 4; ++t)
        ASSERT_TRUE(ring.trySubmit(0, 10 * t, txn).has_value());
    sim::SessionRing::Submission sub;
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.popSubmission(sub));

    // A fast shard retires tokens 2..4 while a slow shard still owns
    // token 1.
    ring.pushCompletion({2, 0, 20, {}});
    ring.pushCompletion({3, 0, 30, {}});
    ring.pushCompletion({4, 0, 40, {}});
    sim::SessionRing::Completion c;
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(ring.popCompletion(c));
    EXPECT_EQ(ring.retiredFence(), 0u) << "token 1 still outstanding";
    EXPECT_EQ(ring.inFlight(), 1u);

    EXPECT_FALSE(ring.trySubmit(0, 50, txn).has_value())
        << "the fence, not the drain count, must gate submission";

    // Retiring token 1 snaps the fence to 4 and reopens the lane.
    ring.pushCompletion({1, 0, 10, {}});
    ASSERT_TRUE(ring.popCompletion(c));
    EXPECT_EQ(c.token, 1u);
    EXPECT_EQ(ring.retiredFence(), 4u);
    const auto tok = ring.trySubmit(0, 50, txn);
    ASSERT_TRUE(tok.has_value());
    EXPECT_EQ(*tok, 5u);
    EXPECT_TRUE(ring.isRetired(4));
    EXPECT_FALSE(ring.isRetired(5));
}

// --- determinism ---

TEST(RingScheduler, WorkerCountIsBitIdentical)
{
    // The tentpole contract: per-shard observable streams, session
    // stats, CSV rows, completion order and fences are a pure function
    // of the submission sequence — never of the worker count. 3 is a
    // deliberate non-divisor stripe width; shards-many workers is the
    // intended deployment.
    struct Case
    {
        std::uint32_t shards;
        timing::DispatchPolicyKind policy;
        std::uint64_t seed;
    };
    const std::vector<Case> cases = {
        {1, timing::DispatchPolicyKind::RoundRobin, 1},
        {1, timing::DispatchPolicyKind::RoundRobin, 2},
        {4, timing::DispatchPolicyKind::RoundRobin, 1},
        {4, timing::DispatchPolicyKind::RoundRobin, 2},
        {4, timing::DispatchPolicyKind::WeightedRoundRobin, 1},
        {4, timing::DispatchPolicyKind::EarliestDeadline, 1},
        {16, timing::DispatchPolicyKind::RoundRobin, 1},
        {16, timing::DispatchPolicyKind::RoundRobin, 2},
    };
    for (const auto &c : cases) {
        RingSetup s;
        s.shards = c.shards;
        s.policy = c.policy;
        s.dynamic = true; // epoch transitions exercise the serial step
        s.sessions = 6;
        s.seed = c.seed;
        s.lanes = 2;

        s.threads = 1;
        const RingResult ref = runRing(s);
        for (const unsigned threads : {3u, c.shards}) {
            if (threads <= 1)
                continue;
            s.threads = threads;
            const RingResult got = runRing(s);
            const std::string what =
                "shards=" + std::to_string(c.shards) +
                " policy=" + timing::dispatchPolicyName(c.policy) +
                " seed=" + std::to_string(c.seed) +
                " threads=" + std::to_string(threads);
            expectSameRun(ref, got, what.c_str());
        }
    }
}

TEST(RingScheduler, EvictionEngineKeepsWorkerCountBitIdentical)
{
    // The background eviction engine must not break the N == 1 worker
    // contract: evictions fire at identical sequence points on the
    // bounded and unbounded enforcer paths, so the per-shard streams,
    // stats and eviction counts stay a pure function of the submission
    // sequence. Pipelined mode is required (evictions retire deferred
    // write-back tails); the dynamic schedule exercises the
    // transition-capped eviction horizon.
    for (const std::uint32_t shards : {1u, 4u}) {
        RingSetup s;
        s.shards = shards;
        s.dynamic = true;
        s.sessions = 6;
        s.lanes = 2;
        s.pathMode = oram::PathMode::Pipelined;
        s.evictionPolicy = oram::EvictionPolicy::Gap;
        s.evictionBudget = 32;

        s.threads = 1;
        const RingResult ref = runRing(s);
        EXPECT_GT(ref.evictions, 0u)
            << "the case must actually exercise the engine";
        for (const unsigned threads : {3u, shards}) {
            if (threads <= 1)
                continue;
            s.threads = threads;
            const RingResult got = runRing(s);
            const std::string what = "eviction shards=" +
                                     std::to_string(shards) + " threads=" +
                                     std::to_string(threads);
            expectSameRun(ref, got, what.c_str());
        }
    }
}

TEST(RingScheduler, SmallRingBackpressureAndWrapAroundStayDeterministic)
{
    // An 8-deep lane under a 100-transaction workload wraps the rings
    // a dozen times and forces the pump-drain-resubmit path; the run
    // must retire every token and stay worker-count independent.
    RingSetup s;
    s.shards = 4;
    s.dynamic = true;
    s.sessions = 3;
    s.seed = 4;
    s.capacity = 8;

    s.threads = 1;
    const RingResult ref = runRing(s);
    s.threads = 4;
    const RingResult got = runRing(s);
    expectSameRun(ref, got, "capacity=8");

    const std::size_t total = makeWorkload(s.sessions, s.seed).size();
    ASSERT_GT(total, 8u * 4u) << "workload must overflow the ring";
    EXPECT_EQ(ref.completions.size(), total);
    EXPECT_EQ(ref.served, total);
    EXPECT_EQ(ref.fences.at(0), total) << "every token retired";

    // Single lane: completion tokens pop in fold order, which for a
    // fully drained run covers exactly 1..N.
    std::vector<std::uint64_t> tokens;
    for (const auto &c : ref.completions)
        tokens.push_back(c.token);
    std::sort(tokens.begin(), tokens.end());
    for (std::size_t i = 0; i < tokens.size(); ++i)
        ASSERT_EQ(tokens[i], i + 1);
}

TEST(RingScheduler, PopOneResubmitBackpressureStaysInWindow)
{
    // The harsher client: on every backpressure stall, pop a SINGLE
    // completion — in shard-fold order, not token order — and resubmit
    // immediately. The drain count runs ahead of the fence whenever
    // the popped token is not the oldest outstanding one; throughout,
    // the fence must equal EXACTLY the contiguous prefix of tokens the
    // producer has popped (a drain-count submission gate lets a
    // resubmitted token alias a live retirement-window slot, which
    // shows up here as the fence jumping over a token never popped),
    // every token must retire exactly once, and the shard streams must
    // stay worker-count independent.
    for (const std::uint64_t seed : {4ull, 9ull}) {
        std::vector<std::vector<Cycles>> streamsByThreads;
        for (const unsigned threads : {1u, 4u}) {
            dram::DramModel mem{dram::DramConfig{}};
            Rng rng(11);
            oram::OramDeviceSpec inner; // timing
            oram::ShardedOramDevice dev(inner, tinyConfig(), /*shards=*/4,
                                        /*route_seed=*/5, mem, rng,
                                        /*record=*/true);
            const timing::RateSet rates{ringRates(true)};
            const timing::EpochSchedule sched{Cycles{1} << 14, 2,
                                              Cycles{1} << 40};
            const timing::RateLearner learner{rates};
            sim::RingScheduler::Options o;
            o.ringCapacity = 8; // many stalls over ~100 transactions
            o.threads = threads;
            sim::RingScheduler rs(dev, rates, sched, learner, 3200,
                                  leakParams(rates.size()), o);
            const std::size_t sessions = 3;
            for (std::uint32_t sid = 0; sid < sessions; ++sid)
                rs.openSession(100 + sid);

            const auto workload = makeWorkload(sessions, seed);
            ASSERT_GT(workload.size(), 8u * 4u) << "must overflow the lane";
            std::vector<std::uint8_t> popped(workload.size() + 2, 0);
            std::uint64_t expectFence = 0;
            std::size_t nPopped = 0;
            bool sawLag = false;
            sim::SessionRing::Completion c;
            const auto notePop = [&] {
                ASSERT_GE(c.token, 1u);
                ASSERT_LE(c.token, workload.size()) << "unknown token";
                ASSERT_FALSE(popped[c.token]) << "token retired twice";
                popped[c.token] = 1;
                ++nPopped;
                while (popped[expectFence + 1])
                    ++expectFence;
                ASSERT_EQ(rs.lane(0).retiredFence(), expectFence)
                    << "fence must track the popped prefix exactly";
                sawLag = sawLag || expectFence + 1 < c.token;
            };
            for (const auto &a : workload) {
                auto tok = rs.trySubmit(
                    a.sid, a.at, timing::OramTransaction::real(a.block));
                while (!tok) {
                    rs.runUntilIdle();
                    if (rs.lane(0).popCompletion(c))
                        notePop();
                    tok = rs.trySubmit(
                        a.sid, a.at, timing::OramTransaction::real(a.block));
                }
            }
            rs.runUntilIdle();
            while (rs.lane(0).popCompletion(c))
                notePop();

            EXPECT_TRUE(sawLag)
                << "workload never drove the fence behind the drain "
                   "count — the scenario under test did not occur";
            EXPECT_EQ(nPopped, workload.size());
            EXPECT_EQ(expectFence, workload.size());
            EXPECT_EQ(rs.lane(0).retiredFence(), workload.size())
                << "fence must reach the last token, threads=" << threads;

            std::vector<Cycles> flat;
            for (std::uint32_t s = 0; s < 4; ++s) {
                const auto &st = dev.recorder(s)->startCycles();
                flat.insert(flat.end(), st.begin(), st.end());
                flat.push_back(0); // shard separator
            }
            streamsByThreads.push_back(std::move(flat));
        }
        EXPECT_EQ(streamsByThreads[0], streamsByThreads[1])
            << "partial-drain backpressure must stay worker-count blind, "
               "seed=" << seed;
    }
}

// --- equality with the legacy scheduler ---

TEST(RingScheduler, MatchesLegacySchedulerStreamUnderStaticRate)
{
    // |R| = 1 closes the decision channel, so the per-shard observable
    // streams of the two engines must be identical whatever their
    // internal dispatch order. (Session ATTRIBUTION may differ: the
    // legacy core scans session ids, the scaled core scans the
    // activation ring — both round-robin, different tie-breaks.)
    for (const std::uint32_t shards : {1u, 4u}) {
        const LegacyResult legacy = runLegacy(shards, false, 5, 3);
        RingSetup s;
        s.shards = shards;
        s.sessions = 5;
        s.seed = 3;
        const RingResult ring = runRing(s);

        EXPECT_EQ(ring.streams, legacy.streams) << "shards=" << shards;
        std::uint64_t legacy_total = 0, ring_total = 0;
        for (const auto &st : legacy.stats)
            legacy_total += std::get<1>(st);
        for (const auto &st : ring.stats)
            ring_total += std::get<1>(st);
        EXPECT_EQ(ring_total, legacy_total) << "shards=" << shards;
        for (std::uint32_t i = 0; i < shards; ++i)
            EXPECT_EQ(ring.streams[i].size(), legacy.streams[i].size());
    }
}

TEST(RingScheduler, MatchesLegacySchedulerExactlyForOneSessionDynamic)
{
    // With one session, dispatch is FIFO in both engines: the bounded
    // serve must replay the legacy enforcer sequence exactly — streams,
    // epoch counts, stats, and the latency samples themselves.
    for (const std::uint32_t shards : {1u, 4u}) {
        const LegacyResult legacy = runLegacy(shards, true, 1, 9);
        RingSetup s;
        s.shards = shards;
        s.dynamic = true;
        s.sessions = 1;
        s.seed = 9;
        const RingResult ring = runRing(s);

        EXPECT_EQ(ring.streams, legacy.streams) << "shards=" << shards;
        // lastCompletion is excluded for M > 1: the legacy scheduler
        // keeps the LAST-SERVED completion cycle (global dispatch
        // order), the ring scheduler the max — only equal at M = 1.
        ASSERT_EQ(ring.stats.size(), 1u);
        auto got = ring.stats[0];
        if (shards > 1)
            std::get<3>(got) = 0;
        EXPECT_EQ(got, legacy.stats[0]) << "shards=" << shards;

        std::vector<Cycles> ring_samples;
        for (const auto &c : ring.completions)
            ring_samples.push_back(c.completion.done - c.arrival);
        std::vector<Cycles> legacy_samples = legacy.latencies[0];
        std::sort(ring_samples.begin(), ring_samples.end());
        std::sort(legacy_samples.begin(), legacy_samples.end());
        EXPECT_EQ(ring_samples, legacy_samples) << "shards=" << shards;
    }
}

// --- QoS dispatch ---

TEST(RingScheduler, DispatchPolicyCannotShiftTheObservableStream)
{
    // A policy picks WHICH eligible session rides the next enforced
    // slot. Under a pinned rate (|R| = 1 — the decision channel is
    // closed, isolating pure dispatch) the per-shard streams must be
    // bit-identical across policies; only attribution may move.
    RingSetup s;
    s.shards = 4;
    s.sessions = 6;
    s.seed = 5;
    s.policy = timing::DispatchPolicyKind::RoundRobin;
    const RingResult rr = runRing(s);
    s.policy = timing::DispatchPolicyKind::WeightedRoundRobin;
    const RingResult wrr = runRing(s);
    s.policy = timing::DispatchPolicyKind::EarliestDeadline;
    const RingResult edf = runRing(s);

    EXPECT_EQ(rr.streams, wrr.streams);
    EXPECT_EQ(rr.streams, edf.streams);
    EXPECT_EQ(rr.served, wrr.served);
    EXPECT_EQ(rr.served, edf.served);
    EXPECT_EQ(rr.last, wrr.last);
    EXPECT_EQ(rr.last, edf.last);
}

namespace {

/** Serve a fully backlogged single-shard slate and return the session
 *  attribution order the policy produced. */
std::vector<std::uint32_t>
attributionOrder(timing::DispatchPolicyKind policy,
                 const std::vector<std::uint16_t> &weights,
                 const std::vector<Cycles> &deadline_offsets,
                 const std::vector<int> &counts)
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::OramDeviceSpec inner;
    oram::ShardedOramDevice dev(inner, tinyConfig(), 1, 5, mem, rng);
    const timing::RateSet rates{std::vector<Cycles>{500}};
    const timing::EpochSchedule sched{Cycles{1} << 30, 2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    sim::RingScheduler::Options o;
    o.policy = policy;
    sim::RingScheduler rs(dev, rates, sched, learner, 500, leakParams(1), o);

    for (std::size_t sid = 0; sid < counts.size(); ++sid)
        rs.openSession(100 + sid, -1.0, 0, weights[sid],
                       deadline_offsets[sid]);
    // Session-major submission: session 0 activates first, everyone
    // arrives at cycle 0, so every head is eligible from the start.
    for (std::size_t sid = 0; sid < counts.size(); ++sid)
        for (int k = 0; k < counts[sid]; ++k)
            EXPECT_TRUE(rs.trySubmit(static_cast<std::uint32_t>(sid), 0,
                                     timing::OramTransaction::real(sid))
                            .has_value());
    rs.runUntilIdle();

    std::vector<std::uint32_t> order;
    sim::SessionRing::Completion c;
    while (rs.lane(0).popCompletion(c))
        order.push_back(c.sessionId);
    return order;
}

} // namespace

TEST(RingScheduler, WeightedRoundRobinServesBursts)
{
    // Weights 3:1, all heads tied at arrival 0. The scan starts after
    // the activation cursor (session 0 activated first), so session 1
    // opens; thereafter session 0 rides 3-slot bursts.
    const auto order = attributionOrder(
        timing::DispatchPolicyKind::WeightedRoundRobin, {3, 1}, {0, 0},
        {6, 2});
    EXPECT_EQ(order,
              (std::vector<std::uint32_t>{1, 0, 0, 0, 1, 0, 0, 0}));
}

TEST(RingScheduler, EarliestDeadlineServesTightestOffsetFirst)
{
    // Same arrivals, deadline offsets 3000 vs 0: the zero-offset
    // session drains completely first.
    const auto order = attributionOrder(
        timing::DispatchPolicyKind::EarliestDeadline, {1, 1}, {3000, 0},
        {3, 3});
    EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 1, 1, 0, 0, 0}));
}

// --- latency percentiles ---

TEST(LatencyPercentile, MatchesSortedNearestRankReference)
{
    // Legacy scheduler: recompute every session's samples from the
    // serve loop and check nth_element against the fully-sorted
    // reference at every quantile — twice, because the reused scratch
    // must not disturb the samples.
    const std::uint32_t shards = 4;
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::OramDeviceSpec inner;
    oram::ShardedOramDevice dev(inner, tinyConfig(), shards, 5, mem, rng);
    const timing::RateSet rates{ringRates(true)};
    const timing::EpochSchedule sched{Cycles{1} << 14, 2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    sim::OramScheduler s(dev, rates, sched, learner, 3200, leakParams(4));

    const std::size_t sessions = 3;
    std::vector<std::vector<Cycles>> samples(sessions);
    for (std::uint32_t sid = 0; sid < sessions; ++sid)
        s.openSession(100 + sid);
    for (const auto &a : makeWorkload(sessions, 6))
        s.submit(a.sid, a.at, timing::OramTransaction::real(a.block));
    while (auto served = s.serveNext())
        samples[served->sessionId].push_back(served->completion.done -
                                             served->arrival);

    for (std::uint32_t sid = 0; sid < sessions; ++sid) {
        ASSERT_GT(samples[sid].size(), 10u);
        for (const double q : kQuantiles) {
            const Cycles want = sortedReference(samples[sid], q);
            EXPECT_EQ(s.latencyPercentile(sid, q), want)
                << "sid " << sid << " q " << q;
            EXPECT_EQ(s.latencyPercentile(sid, q), want)
                << "repeat must not disturb the samples, sid " << sid;
        }
    }
    EXPECT_EQ(s.latencyPercentile(0, 0.5),
              sortedReference(samples[0], 0.5));
}

TEST(LatencyPercentile, RingSchedulerAgreesWithItsOwnCompletions)
{
    RingSetup setup;
    setup.shards = 4;
    setup.dynamic = true;
    setup.sessions = 3;
    setup.seed = 6;

    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::OramDeviceSpec inner;
    oram::ShardedOramDevice dev(inner, tinyConfig(), setup.shards, 5, mem,
                                rng);
    const timing::RateSet rates{ringRates(true)};
    const timing::EpochSchedule sched{Cycles{1} << 14, 2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    sim::RingScheduler rs(dev, rates, sched, learner, 3200, leakParams(4));
    for (std::uint32_t sid = 0; sid < setup.sessions; ++sid)
        rs.openSession(100 + sid);
    for (const auto &a : makeWorkload(setup.sessions, setup.seed))
        ASSERT_TRUE(rs.trySubmit(a.sid, a.at,
                                 timing::OramTransaction::real(a.block))
                        .has_value());
    rs.runUntilIdle();

    std::vector<std::vector<Cycles>> samples(setup.sessions);
    sim::SessionRing::Completion c;
    while (rs.lane(0).popCompletion(c))
        samples[c.sessionId].push_back(c.completion.done - c.arrival);

    for (std::uint32_t sid = 0; sid < setup.sessions; ++sid) {
        ASSERT_GT(samples[sid].size(), 10u);
        for (const double q : kQuantiles)
            EXPECT_EQ(rs.latencyPercentile(sid, q),
                      sortedReference(samples[sid], q))
                << "sid " << sid << " q " << q;
    }
}
