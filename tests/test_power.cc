/**
 * @file
 * Energy-model tests against the paper's published derivations
 * (Table 2, §9.1.3-9.1.4), most importantly the ~984 nJ per ORAM
 * access and the base_dram power envelope.
 */

#include <gtest/gtest.h>

#include "power/energy_model.hh"

namespace tcoram::power {
namespace {

TEST(EnergyCoefficients, PaperOramAccessEnergy)
{
    // §9.1.4: 2 * 758 chunks * (0.416 + 0.134) + 1984 * 0.076 ≈ 984 nJ.
    EnergyCoefficients c;
    const std::uint64_t chunks = 2 * 758;
    const Cycles latency = 1488; // 1984 DRAM cycles
    const double nj = c.oramAccessNj(chunks, latency);
    EXPECT_NEAR(nj, 984.0, 10.0);
}

TEST(EnergyCoefficients, DramLineEnergyMatchesTable2)
{
    // §9.1.3: 4 DRAM cycles * 0.076 nJ ≈ 0.303 nJ per cache line.
    EnergyCoefficients c;
    EXPECT_NEAR(c.dramLineNj(), 0.304, 0.01);
}

TEST(EnergyModel, ZeroEventsZeroPower)
{
    EnergyModel m;
    EnergyEvents ev;
    EXPECT_DOUBLE_EQ(m.watts(ev, 0, 0), 0.0);
}

TEST(EnergyModel, OramDominatesWhenAccessHeavy)
{
    EnergyModel m;
    EnergyEvents ev;
    ev.cycles = 1'000'000;
    ev.instructions = 500'000;
    ev.fetchBufferAccesses = 500'000;
    ev.l1dHits = 100'000;
    ev.oramAccesses = 500; // one per 2000 cycles
    const double with_oram = m.watts(ev, 1516, 1488);
    ev.oramAccesses = 0;
    const double without = m.watts(ev, 1516, 1488);
    EXPECT_GT(with_oram, 4 * without);
}

TEST(EnergyModel, BaseDramPowerEnvelope)
{
    // §9.1.6: typical base_dram runs land between 0.055 and 0.086 W.
    // Reconstruct a representative event mix: IPC 0.25, miss every
    // ~2000 instructions.
    EnergyModel m;
    EnergyEvents ev;
    ev.cycles = 4'000'000;
    ev.instructions = 1'000'000;
    ev.fetchBufferAccesses = 1'000'000;
    ev.l1iHits = 950'000;
    ev.l1iRefills = 2'000;
    ev.l1dHits = 300'000;
    ev.l1dRefills = 10'000;
    ev.l2HitsRefills = 12'000;
    ev.dramLineTransfers = 500;
    const double w = m.watts(ev, 0, 0);
    EXPECT_GT(w, 0.02);
    EXPECT_LT(w, 0.15);
}

TEST(EnergyModel, OnChipExcludesControllers)
{
    EnergyModel m;
    EnergyEvents ev;
    ev.cycles = 1000;
    ev.instructions = 500;
    ev.oramAccesses = 10;
    ev.dramLineTransfers = 10;
    EXPECT_LT(m.onChipNj(ev), m.totalNj(ev, 1516, 1488));
}

TEST(EnergyModel, LeakageChargedPerCycle)
{
    EnergyModel m;
    EnergyEvents idle;
    idle.cycles = 1'000'000;
    // A fully idle core still pays L1 parasitic leakage.
    EXPECT_NEAR(m.totalNj(idle, 0, 0), 1'000'000 * (0.018 + 0.019), 1.0);
}

TEST(EnergyModel, MoreDummiesMorePower)
{
    // The static-rate schemes' power overhead comes from dummies: the
    // same program with more total ORAM accesses burns more energy.
    EnergyModel m;
    EnergyEvents ev;
    ev.cycles = 10'000'000;
    ev.instructions = 1'000'000;
    ev.oramAccesses = 1000;
    const double few = m.watts(ev, 1516, 1488);
    ev.oramAccesses = 5000; // 4000 extra dummies
    const double many = m.watts(ev, 1516, 1488);
    EXPECT_GT(many, 3 * few);
}

} // namespace
} // namespace tcoram::power
