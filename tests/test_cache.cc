/**
 * @file
 * Cache tests: set-associative lookup/LRU/writeback behaviour, the
 * non-blocking write buffer, and the two-level inclusive hierarchy.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "cache/write_buffer.hh"

namespace tcoram::cache {
namespace {

CacheConfig
tinyCache(unsigned ways = 2, std::uint64_t size = 1024)
{
    CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = size;
    c.ways = ways;
    c.lineBytes = 64;
    return c;
}

TEST(Cache, MissThenHit)
{
    Cache c(tinyCache());
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(63, false).hit); // same line
    EXPECT_FALSE(c.access(64, false).hit); // next line
}

TEST(Cache, LruEviction)
{
    // 2-way, 8 sets: lines 0, 8, 16 map to set 0 (line addr stride 8*64).
    Cache c(tinyCache());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);        // a is MRU
    const auto r = c.access(d, false); // evicts b (LRU)
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c(tinyCache());
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, true); // dirty
    c.access(b, false);
    const auto r = c.access(d, false); // evicts a
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, a);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache c(tinyCache());
    c.access(0, false);
    c.access(8 * 64, false);
    const auto r = c.access(16 * 64, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteMarksDirtyOnHit)
{
    Cache c(tinyCache());
    c.access(0, false);
    c.access(0, true); // now dirty
    c.access(8 * 64, false);
    const auto r = c.access(16 * 64, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, InvalidateReturnsDirtiness)
{
    Cache c(tinyCache());
    c.access(0, true);
    c.access(64, false);
    EXPECT_TRUE(c.invalidate(0));
    EXPECT_FALSE(c.invalidate(64));
    EXPECT_FALSE(c.invalidate(128)); // absent
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, MissRateTracking)
{
    Cache c(tinyCache());
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(64, false);
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, VictimAddressRoundTrips)
{
    Cache c(tinyCache());
    const Addr victim = 3 * 64 + (8 * 64) * 5; // set 3, some tag
    c.access(victim, true);
    c.access(victim + 8 * 64, false);
    const auto r = c.access(victim + 16 * 64, false);
    ASSERT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, victim & ~Addr{63});
}

TEST(WriteBuffer, CapacityAndOrdering)
{
    WriteBuffer wb(3);
    EXPECT_TRUE(wb.canAccept());
    wb.push(1 * 64);
    wb.push(2 * 64);
    wb.push(3 * 64);
    EXPECT_FALSE(wb.canAccept());
    EXPECT_EQ(wb.front(), 64u);
    wb.pop();
    EXPECT_TRUE(wb.canAccept());
    EXPECT_EQ(wb.front(), 128u);
    EXPECT_EQ(wb.totalPushed(), 3u);
}

TEST(WriteBuffer, FullStallCounting)
{
    WriteBuffer wb(1);
    wb.push(0);
    wb.noteFullStall();
    wb.noteFullStall();
    EXPECT_EQ(wb.fullStalls(), 2u);
}

TEST(Hierarchy, L1HitStaysOnChip)
{
    Hierarchy h(1024 * 1024);
    const auto first = h.access(0x1000, AccessKind::Load);
    EXPECT_TRUE(first.llcMiss); // cold
    const auto second = h.access(0x1000, AccessKind::Load);
    EXPECT_FALSE(second.llcMiss);
    EXPECT_EQ(second.latency, h.l1d().config().hitLatency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    Hierarchy h(1024 * 1024);
    // Fill L1D set 0 (4 ways, 128 sets -> stride 128*64 = 8192).
    const Addr stride = 8192;
    for (Addr i = 0; i < 5; ++i)
        h.access(i * stride, AccessKind::Load);
    // First line left L1 but is still in the (1 MB) L2.
    const auto r = h.access(0, AccessKind::Load);
    EXPECT_FALSE(r.llcMiss);
    EXPECT_GT(r.latency, h.l1d().config().hitLatency);
}

TEST(Hierarchy, FetchesUseL1I)
{
    Hierarchy h(1024 * 1024);
    h.access(0, AccessKind::InstFetch);
    h.access(0, AccessKind::InstFetch);
    EXPECT_EQ(h.events().l1iRefills, 1u);
    EXPECT_EQ(h.events().l1iHits, 1u);
    EXPECT_EQ(h.events().l1dHits + h.events().l1dRefills, 0u);
}

TEST(Hierarchy, LlcMissCountMatchesEvents)
{
    Hierarchy h(1024 * 1024);
    for (Addr i = 0; i < 100; ++i)
        h.access(i * 64, AccessKind::Load);
    EXPECT_EQ(h.llcMisses(), 100u);
    EXPECT_EQ(h.events().l2Refills, 100u);
}

TEST(Hierarchy, DirtyL2VictimGoesToMemory)
{
    // Tiny 16 KB LLC so we can overflow it quickly: 16 ways -> 16
    // sets... use default l2Config geometry at 16 KB = 16 sets of 16.
    Hierarchy h(16 * 1024);
    const Addr set_stride = 16 * 64; // 16 sets
    bool saw_mem_writeback = false;
    // Make 17 dirty lines in L2 set 0.
    for (Addr i = 0; i < 17; ++i) {
        const auto r = h.access(i * set_stride * 16, AccessKind::Store);
        for (Addr wb : r.memWritebacks) {
            (void)wb;
            saw_mem_writeback = true;
        }
    }
    EXPECT_TRUE(saw_mem_writeback);
}

TEST(Hierarchy, InclusionMaintained)
{
    // After an L2 victim is written back, the line must not hit in L1.
    Hierarchy h(16 * 1024);
    const Addr conflict_stride = 16 * 1024; // same L2 set each time
    h.access(0, AccessKind::Store);
    Addr evicted_probe = 0;
    for (Addr i = 1; i < 32; ++i) {
        const auto r =
            h.access(i * conflict_stride, AccessKind::Store);
        if (!r.memWritebacks.empty() && r.memWritebacks[0] == 0) {
            evicted_probe = 1;
            break;
        }
    }
    ASSERT_EQ(evicted_probe, 1u) << "line 0 never evicted from L2";
    // Line 0 must now miss in L1 (and L2): inclusion held.
    const auto r = h.access(0, AccessKind::Load);
    EXPECT_TRUE(r.llcMiss);
}

} // namespace
} // namespace tcoram::cache
