/**
 * @file
 * Tests for the substrate-depth extensions: cache replacement
 * policies (LRU/FIFO/Random), DRAM refresh windows, explicit epoch
 * schedules with the §6.2 family constraint, and the stats dump.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "dram/dram_model.hh"
#include "sim/experiment.hh"
#include "sim/stat_dump.hh"
#include "timing/epoch_schedule.hh"
#include "workload/spec_suite.hh"

namespace tcoram {
namespace {

// ---------------------------------------------------------------------
// Replacement policies.
// ---------------------------------------------------------------------

cache::CacheConfig
twoWay(cache::Replacement policy)
{
    cache::CacheConfig c;
    c.name = "tiny";
    c.sizeBytes = 1024; // 2-way, 8 sets
    c.ways = 2;
    c.replacement = policy;
    return c;
}

TEST(Replacement, FifoIgnoresHits)
{
    cache::Cache c(twoWay(cache::Replacement::Fifo));
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, false); // inserted first
    c.access(b, false);
    c.access(a, false); // hit: FIFO does NOT refresh a
    c.access(d, false); // evicts a (oldest insertion)
    EXPECT_FALSE(c.contains(a));
    EXPECT_TRUE(c.contains(b));
}

TEST(Replacement, LruRefreshesOnHit)
{
    cache::Cache c(twoWay(cache::Replacement::Lru));
    const Addr a = 0, b = 8 * 64, d = 16 * 64;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // hit refreshes a
    c.access(d, false); // evicts b
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
}

TEST(Replacement, RandomIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        auto cfg = twoWay(cache::Replacement::Random);
        cfg.seed = seed;
        cache::Cache c(cfg);
        std::vector<bool> hits;
        Rng rng(7);
        for (int i = 0; i < 500; ++i)
            hits.push_back(
                c.access(rng.nextBounded(32) * 8 * 64, false).hit);
        return hits;
    };
    EXPECT_EQ(run(1), run(1));
    EXPECT_NE(run(1), run(2));
}

TEST(Replacement, RandomStillFillsInvalidFirst)
{
    auto cfg = twoWay(cache::Replacement::Random);
    cache::Cache c(cfg);
    c.access(0, false);
    c.access(8 * 64, false); // second way, no eviction while invalid
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(8 * 64));
}

TEST(Replacement, AllPoliciesFunctionallyCorrect)
{
    // Whatever the victim choice, a line just inserted must hit.
    for (auto policy : {cache::Replacement::Lru, cache::Replacement::Fifo,
                        cache::Replacement::Random}) {
        cache::Cache c(twoWay(policy));
        Rng rng(3);
        for (int i = 0; i < 1000; ++i) {
            const Addr a = rng.nextBounded(64) * 64;
            c.access(a, false);
            EXPECT_TRUE(c.access(a, false).hit);
        }
    }
}

// ---------------------------------------------------------------------
// DRAM refresh.
// ---------------------------------------------------------------------

TEST(DramRefresh, BlocksTransfersInWindow)
{
    dram::DramConfig cfg;
    cfg.refreshEnabled = true;
    cfg.tREFI = 1000;
    cfg.tRFC = 100;
    dram::DramModel m(cfg);
    // An access landing at DRAM-cycle ~0 must be pushed past tRFC.
    const Cycles done = m.access(0, {0, 64, false});
    // Completion (CPU cycles) must reflect at least the tRFC push.
    EXPECT_GE(done, cfg.toCpuCycles(cfg.tRFC));
}

TEST(DramRefresh, ReducesThroughput)
{
    dram::DramConfig base;
    dram::DramConfig refreshing = base;
    refreshing.refreshEnabled = true;
    refreshing.tREFI = 500;
    refreshing.tRFC = 100; // 20% duty refresh, exaggerated for test
    dram::DramModel m_base{base}, m_ref{refreshing};

    auto run = [](dram::DramModel &m) {
        Cycles now = 0;
        for (int i = 0; i < 500; ++i)
            now = m.access(now, {static_cast<Addr>(i) * 64, 64, false});
        return now;
    };
    EXPECT_GT(run(m_ref), run(m_base));
}

TEST(DramRefresh, DisabledByDefault)
{
    dram::DramConfig cfg;
    EXPECT_FALSE(cfg.refreshEnabled);
}

// ---------------------------------------------------------------------
// Explicit epoch schedules.
// ---------------------------------------------------------------------

TEST(ExplicitSchedule, UsesGivenLengthsThenGrows)
{
    timing::EpochSchedule e({1000, 2000, 8000}, 2, Cycles{1} << 40);
    EXPECT_EQ(e.epochLength(0), 1000u);
    EXPECT_EQ(e.epochLength(1), 2000u);
    EXPECT_EQ(e.epochLength(2), 8000u);
    EXPECT_EQ(e.epochLength(3), 16000u); // tail growth resumes
    EXPECT_EQ(e.epochLength(4), 32000u);
}

TEST(ExplicitSchedule, StartsAccumulate)
{
    timing::EpochSchedule e({1000, 2000, 8000}, 2, Cycles{1} << 40);
    EXPECT_EQ(e.epochStart(1), 1000u);
    EXPECT_EQ(e.epochStart(2), 3000u);
    EXPECT_EQ(e.epochStart(3), 11000u);
    EXPECT_EQ(e.epochAt(10999), 2u);
    EXPECT_EQ(e.epochAt(11000), 3u);
}

TEST(ExplicitScheduleDeath, RejectsSubDoublingEpochs)
{
    // §6.2: each epoch must be >= 2x the previous.
    EXPECT_DEATH(
        { timing::EpochSchedule e({1000, 1500}, 2, Cycles{1} << 40); },
        "2x the previous");
}

TEST(ExplicitSchedule, LeakageAccountingStillBounded)
{
    // A front-loaded explicit schedule still satisfies O(lg Tmax).
    timing::EpochSchedule expl({Cycles{1} << 30, Cycles{1} << 31}, 2);
    timing::EpochSchedule geom(Cycles{1} << 30, 2);
    EXPECT_LE(expl.epochsToTmax(), geom.epochsToTmax());
}

// ---------------------------------------------------------------------
// Stats dump.
// ---------------------------------------------------------------------

TEST(StatDumpExport, CoversKeyScalars)
{
    auto cfg = sim::SystemConfig::dynamicScheme(4, 2);
    cfg.oram.numBlocks = 1 << 12;
    cfg.epoch0 = 1 << 15;
    const auto r =
        sim::runOne(cfg, workload::specProfile("astar"), 200'000);
    const StatDump d = sim::toStatDump(r);
    EXPECT_TRUE(d.has("sim.ipc"));
    EXPECT_TRUE(d.has("power.watts"));
    EXPECT_TRUE(d.has("leakage.paper_bits"));
    EXPECT_DOUBLE_EQ(d.get("leakage.paper_bits"), 64.0);
    EXPECT_DOUBLE_EQ(d.get("sim.instructions"), 200'000.0);
    EXPECT_GT(d.get("oram.real_accesses"), 0.0);
    // Fused-datapath crypto budget: H+2 batched calls per access for
    // H recursion stages (trees + 1), exported as a per-access rate.
    const double trees = 1.0 + cfg.oram.recursionChain().size();
    EXPECT_DOUBLE_EQ(d.get("oram.crypto_calls_per_access"), trees + 1.0);
    // Background-eviction telemetry rides the same export (zero under
    // the sync default, where the engine is off).
    EXPECT_TRUE(d.has("oram.stash_occupancy"));
    EXPECT_TRUE(d.has("oram.stash_high_water"));
    EXPECT_TRUE(d.has("oram.blocks_evicted"));
    EXPECT_DOUBLE_EQ(d.get("oram.evictions"), 0.0);
    EXPECT_NE(d.toString().find("sim.ipc"), std::string::npos);
}

} // namespace
} // namespace tcoram
