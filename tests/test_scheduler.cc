/**
 * @file
 * Multi-session scheduler: the trace-level security invariant (the
 * enforced device stream is ONE periodic access sequence whose gaps
 * depend only on the rate — never on session count, arrival pattern
 * or payload), FIFO/fairness behaviour, the §5 per-session admission
 * handshake, and the shared tightest-budget leakage monitor.
 */

#include <gtest/gtest.h>

#include "sim/oram_scheduler.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"

using namespace tcoram;

namespace {

/** Fixed-latency device recording the observable stream. */
class StreamDevice : public timing::OramDeviceIf
{
  public:
    explicit StreamDevice(Cycles lat) : lat_(lat) {}
    timing::OramCompletion
    submit(Cycles now, const timing::OramTransaction &txn) override
    {
        starts_.push_back(now);
        sessions_.push_back(txn.sessionId);
        kinds_.push_back(txn.kind);
        return {now, now + lat_, 0, 0, 0};
    }
    Cycles accessLatency() const override { return lat_; }
    std::vector<Cycles> starts_;
    std::vector<std::uint32_t> sessions_;
    std::vector<timing::OramTransaction::Kind> kinds_;

  private:
    Cycles lat_;
};

constexpr Cycles kRate = 500;
constexpr Cycles kLat = 100;

/** A static-rate enforcer + scheduler harness. */
struct Harness
{
    StreamDevice dev{kLat};
    timing::RateSet rates{std::vector<Cycles>{kRate}};
    timing::EpochSchedule sched{Cycles{1} << 30, 2, Cycles{1} << 40};
    timing::RateLearner learner{rates};
    timing::RateEnforcer enf{dev, rates, sched, learner, kRate};
    sim::OramScheduler scheduler;

    Harness() : scheduler(enf, leakParams())
    {
    }

    static protocol::LeakageParams
    leakParams()
    {
        protocol::LeakageParams p;
        p.rateCount = 1; // static rate: 0 ORAM-timing bits
        return p;
    }
};

/**
 * Drive @p n_sessions with session-dependent arrival patterns, then
 * drain well past the heaviest possible backlog so every configuration
 * observes the same number of enforced slots. Returns the observable
 * start-cycle stream.
 */
std::vector<Cycles>
observableStream(std::size_t n_sessions, Cycles horizon)
{
    Harness h;
    for (std::size_t s = 0; s < n_sessions; ++s)
        h.scheduler.openSession(100 + s);
    // Deliberately different per-session arrival patterns: bursty,
    // sparse, phase-shifted — the observable stream must not care.
    for (std::size_t s = 0; s < n_sessions; ++s) {
        const Cycles stride = 700 + 400 * s;
        for (Cycles t = 50 * s; t < horizon / 4; t += stride)
            h.scheduler.submit(static_cast<std::uint32_t>(s), t,
                               timing::OramTransaction::real(s * 1000));
    }
    h.scheduler.run();
    h.scheduler.drainUntil(horizon);
    return h.dev.starts_;
}

} // namespace

TEST(OramScheduler, EnforcedStreamIsPeriodicWhateverTheSessionCount)
{
    // Horizon far beyond the heaviest backlog's last real completion
    // (~200 transactions x 600-cycle slots < 150 K), so every session
    // count drains to the same slot count.
    const Cycles horizon = 400'000;
    const auto one = observableStream(1, horizon);
    const auto three = observableStream(3, horizon);
    const auto eight = observableStream(8, horizon);

    // Gaps depend only on the rate: every access starts exactly
    // (rate + OLAT) after the previous start.
    ASSERT_GE(one.size(), 10u);
    for (std::size_t i = 1; i < one.size(); ++i)
        EXPECT_EQ(one[i] - one[i - 1], kRate + kLat) << "gap " << i;

    // And the stream is identical across session counts: an adversary
    // watching the device cannot tell 1 client from 8.
    EXPECT_EQ(one, three);
    EXPECT_EQ(one, eight);
}

TEST(OramScheduler, PerSessionFifoAndStatsAreKept)
{
    Harness h;
    h.scheduler.openSession(1);
    h.scheduler.openSession(2);
    h.scheduler.submit(0, 0, timing::OramTransaction::real(10));
    h.scheduler.submit(0, 10, timing::OramTransaction::real(11));
    h.scheduler.submit(1, 5, timing::OramTransaction::real(20));

    std::vector<std::uint32_t> order;
    std::vector<Cycles> dones;
    while (auto served = h.scheduler.serveNext()) {
        order.push_back(served->sessionId);
        dones.push_back(served->completion.done);
    }
    // Round-robin from the cursor: s0 (arrival 0), then s1, then s0.
    EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 0}));
    // Completions ride consecutive enforced slots.
    ASSERT_EQ(dones.size(), 3u);
    EXPECT_EQ(dones[1] - dones[0], kRate + kLat);
    EXPECT_EQ(dones[2] - dones[1], kRate + kLat);

    const auto &s0 = h.scheduler.stats(0);
    const auto &s1 = h.scheduler.stats(1);
    EXPECT_EQ(s0.submitted, 2u);
    EXPECT_EQ(s0.completed, 2u);
    EXPECT_EQ(s1.completed, 1u);
    EXPECT_GT(s0.totalLatency, 0u);
    EXPECT_GE(s0.maxLatency, s0.totalLatency / 2);
    EXPECT_EQ(h.scheduler.fairnessRatio(), 2.0);
}

TEST(OramScheduler, BackloggedSessionsShareTheDeviceFairly)
{
    Harness h;
    const std::size_t n = 6;
    for (std::size_t s = 0; s < n; ++s)
        h.scheduler.openSession(s);
    // Everybody arrives at cycle 0 with the same backlog: round-robin
    // must serve them in lockstep.
    for (int k = 0; k < 20; ++k)
        for (std::size_t s = 0; s < n; ++s)
            h.scheduler.submit(static_cast<std::uint32_t>(s), 0,
                               timing::OramTransaction::real(k));
    h.scheduler.run();
    EXPECT_EQ(h.scheduler.fairnessRatio(), 1.0);
    for (std::size_t s = 0; s < n; ++s)
        EXPECT_EQ(h.scheduler.stats(static_cast<std::uint32_t>(s)).completed,
                  20u);
}

TEST(OramScheduler, AdmissionRejectsBudgetsBelowTheConfiguration)
{
    StreamDevice dev(kLat);
    timing::RateSet rates(4);
    timing::EpochSchedule sched(Cycles{1} << 20, 2, Cycles{1} << 40);
    timing::RateLearner learner(rates);
    timing::RateEnforcer enf(dev, rates, sched, learner, 1000);

    protocol::LeakageParams params;
    params.rateCount = 4;
    params.epochGrowth = 2;
    params.epoch0 = Cycles{1} << 20;
    params.tmax = Cycles{1} << 40;
    const double bits = params.oramTimingBits();
    ASSERT_GT(bits, 0.0);

    sim::OramScheduler scheduler(enf, params);
    const auto tight = scheduler.openSession(1, bits / 2.0);
    const auto roomy = scheduler.openSession(2, bits + 8.0);
    const auto open = scheduler.openSession(3); // unlimited
    EXPECT_FALSE(scheduler.sessionAdmitted(tight));
    EXPECT_TRUE(scheduler.sessionAdmitted(roomy));
    EXPECT_TRUE(scheduler.sessionAdmitted(open));

    // The tightest admitted finite budget guards the shared device.
    ASSERT_NE(scheduler.monitor(), nullptr);
    EXPECT_DOUBLE_EQ(scheduler.monitor()->limit(), bits + 8.0);

    EXPECT_EXIT(scheduler.submit(tight, 0, timing::OramTransaction::real(1)),
                ::testing::ExitedWithCode(1), "not admitted");
}

TEST(OramScheduler, SharedMonitorPinsTheRateAtTheTightestBudget)
{
    // Admission happens at the paper-constant schedule (32 bits for
    // R4/E4); the run itself uses a scaled epoch schedule, so the
    // admitted 33-bit session's monitor must pin the shared device
    // once the realized decisions approach its budget (§2.1).
    StreamDevice dev(kLat);
    timing::RateSet rates(4); // 2 bits per free decision
    timing::EpochSchedule sched(64, 2, Cycles{1} << 40);
    timing::RateLearner learner(rates);
    timing::RateEnforcer enf(dev, rates, sched, learner, 256);

    const protocol::LeakageParams params; // paper defaults: 32 bits
    ASSERT_DOUBLE_EQ(params.oramTimingBits(), 32.0);

    sim::OramScheduler scheduler(enf, params);
    scheduler.openSession(1);        // unlimited
    scheduler.openSession(2, 1e6);   // huge
    scheduler.openSession(3, 33.0);  // 16 free decisions — the binding one
    EXPECT_TRUE(scheduler.sessionAdmitted(2));

    // Open-loop demand from every session, then a long drain: the
    // scaled schedule crosses 17+ epoch boundaries.
    for (int k = 0; k < 200; ++k)
        for (std::uint32_t s = 0; s < 3; ++s)
            scheduler.submit(s, k * 700, timing::OramTransaction::real(k));
    scheduler.run();
    scheduler.drainUntil(Cycles{12'000'000});

    ASSERT_GT(enf.currentEpoch(), 16u);
    EXPECT_GT(enf.pinnedDecisions(), 0u)
        << "the 33-bit session must pin the shared device's rate";
    ASSERT_NE(scheduler.monitor(), nullptr);
    EXPECT_DOUBLE_EQ(scheduler.monitor()->limit(), 33.0);
    EXPECT_LE(scheduler.monitor()->bitsConsumed(), 33.0 + 1e-9);
    // After the pin, the rate never changes again.
    const auto &d = enf.decisions();
    ASSERT_GE(d.size(), 18u);
    for (std::size_t i = 17; i < d.size(); ++i)
        EXPECT_EQ(d[i].rate, d[16].rate);
}
