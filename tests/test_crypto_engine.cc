/**
 * @file
 * Batched crypto engine tests: FIPS-197 known answers across every
 * available backend (scalar / T-table / AES-NI), differential fuzz of
 * the batched CTR against a faithful replay of the seed scalar CTR,
 * segment batching, batched PRF evaluation, the bucket wire-format
 * golden vector that pins ciphertext bit-compatibility across
 * backends, path-level encode/decode, and cross-backend equality of
 * whole ORAM DRAM images.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "crypto/crypto_engine.hh"
#include "crypto/ctr.hh"
#include "crypto/prf.hh"
#include "crypto/sha256.hh"
#include "oram/bucket.hh"
#include "oram/bucket_codec.hh"
#include "oram/path_oram.hh"
#include "oram/stash.hh"

namespace tcoram {
namespace {

using crypto::Block128;
using crypto::CryptoBackend;
using crypto::Key128;

std::vector<CryptoBackend>
availableBackends()
{
    std::vector<CryptoBackend> v = {CryptoBackend::Scalar,
                                    CryptoBackend::TTable};
    if (crypto::aesniAvailable())
        v.push_back(CryptoBackend::AesNi);
    return v;
}

/** The seed (pre-PR) CTR loop: per-block scalar AES, per-byte XOR. */
void
seedCtrReference(const crypto::Aes128 &aes, std::uint64_t nonce,
                 std::span<const std::uint8_t> in,
                 std::span<std::uint8_t> out)
{
    Block128 counter{};
    for (int i = 0; i < 8; ++i)
        counter[i] = static_cast<std::uint8_t>(nonce >> (8 * i));
    std::uint64_t block_index = 0;
    std::size_t off = 0;
    while (off < in.size()) {
        for (int i = 0; i < 8; ++i)
            counter[8 + i] =
                static_cast<std::uint8_t>(block_index >> (8 * i));
        const Block128 ks = aes.encryptBlockScalar(counter);
        const std::size_t n = std::min<std::size_t>(16, in.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] = static_cast<std::uint8_t>(in[off + i] ^ ks[i]);
        off += n;
        ++block_index;
    }
}

TEST(CryptoEngine, Fips197AcrossBackends)
{
    // FIPS-197 Appendix C.1 vector, checked through the batched entry
    // point at sizes that exercise the AES-NI 8-block main loop, the
    // remainder loop, and the single-block path.
    Key128 key{};
    Block128 plain{};
    for (int i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        plain[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    const Block128 expect = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                             0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
    for (const auto be : availableBackends()) {
        const auto engine = crypto::makeCryptoEngine(key, be);
        for (const std::size_t n : {1u, 7u, 8u, 9u, 64u}) {
            std::vector<Block128> blocks(n, plain);
            engine->encryptBlocks(blocks);
            for (const auto &b : blocks)
                EXPECT_EQ(b, expect) << engine->name() << " n=" << n;
        }
    }
}

TEST(CryptoEngine, BatchedMatchesSingleBlock)
{
    const Key128 key = crypto::keyFromSeed(11);
    Rng rng(3);
    for (const auto be : availableBackends()) {
        const auto engine = crypto::makeCryptoEngine(key, be);
        std::vector<Block128> blocks(37);
        for (auto &b : blocks)
            for (auto &x : b)
                x = static_cast<std::uint8_t>(rng.next());
        std::vector<Block128> expect;
        for (const auto &b : blocks)
            expect.push_back(engine->encryptBlock(b));
        engine->encryptBlocks(blocks);
        EXPECT_EQ(blocks, expect) << engine->name();
    }
}

TEST(CryptoEngine, TTableMatchesScalarRounds)
{
    // Aes128::encryptBlock (T-tables) must equal the byte-wise
    // reference rounds for arbitrary inputs.
    const crypto::Aes128 aes(crypto::keyFromSeed(123));
    Rng rng(9);
    for (int trial = 0; trial < 200; ++trial) {
        Block128 b;
        for (auto &x : b)
            x = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(aes.encryptBlock(b), aes.encryptBlockScalar(b));
    }
}

TEST(CryptoEngine, BackendKnobRoundTrip)
{
    EXPECT_EQ(crypto::parseCryptoBackend("scalar"), CryptoBackend::Scalar);
    EXPECT_EQ(crypto::parseCryptoBackend("ttable"), CryptoBackend::TTable);
    EXPECT_EQ(crypto::parseCryptoBackend("aesni"), CryptoBackend::AesNi);
    EXPECT_EQ(crypto::parseCryptoBackend("auto"), CryptoBackend::Auto);
    EXPECT_STREQ(crypto::backendName(CryptoBackend::TTable), "ttable");

    const Key128 key = crypto::keyFromSeed(5);
    EXPECT_STREQ(
        crypto::makeCryptoEngine(key, CryptoBackend::Scalar)->name(),
        "scalar");
    EXPECT_STREQ(
        crypto::makeCryptoEngine(key, CryptoBackend::TTable)->name(),
        "ttable");
    // Requesting AES-NI always yields a working engine: hardware when
    // available, the T-table fallback otherwise.
    const auto ni = crypto::makeCryptoEngine(key, CryptoBackend::AesNi);
    if (crypto::aesniAvailable())
        EXPECT_STREQ(ni->name(), "aesni");
    else
        EXPECT_STREQ(ni->name(), "ttable");
}

TEST(CryptoEngine, DefaultBackendPinnable)
{
    crypto::setDefaultCryptoBackend(CryptoBackend::Scalar);
    const crypto::CtrCipher pinned(crypto::keyFromSeed(6));
    EXPECT_STREQ(pinned.backendName(), "scalar");
    crypto::setDefaultCryptoBackend(CryptoBackend::Auto);
}

TEST(CtrBatched, DifferentialFuzzVsSeedScalar)
{
    // Random lengths and nonces: the batched CTR of every backend must
    // produce byte-identical output to the seed per-block scalar loop.
    const Key128 key = crypto::keyFromSeed(77);
    const crypto::Aes128 ref_aes(key);
    Rng rng(1234);
    for (const auto be : availableBackends()) {
        const crypto::CtrCipher cipher(key, be);
        for (int trial = 0; trial < 60; ++trial) {
            const std::size_t len = rng.nextBounded(600);
            const std::uint64_t nonce = rng.next();
            std::vector<std::uint8_t> msg(len);
            for (auto &b : msg)
                b = static_cast<std::uint8_t>(rng.next());
            std::vector<std::uint8_t> expect(len), got(len);
            seedCtrReference(ref_aes, nonce, msg, expect);
            cipher.xcrypt(nonce, msg, got);
            ASSERT_EQ(got, expect)
                << cipher.backendName() << " len=" << len;
        }
    }
}

TEST(CtrBatched, InPlaceMatchesOutOfPlace)
{
    const crypto::CtrCipher cipher(crypto::keyFromSeed(8));
    std::vector<std::uint8_t> msg(213);
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<std::uint8_t>(i * 7);
    std::vector<std::uint8_t> out(msg.size());
    cipher.xcrypt(99, msg, out);
    std::vector<std::uint8_t> inplace = msg;
    cipher.xcrypt(99, inplace, inplace);
    EXPECT_EQ(inplace, out);
}

TEST(CtrBatched, SegmentsMatchPerSegmentCalls)
{
    // One xcryptSegments call over N independently-nonced buffers must
    // equal N separate xcrypt calls — this is the whole-path batching
    // the ORAM read/write paths rely on.
    const Key128 key = crypto::keyFromSeed(21);
    const crypto::CtrCipher cipher(key, CryptoBackend::TTable);
    Rng rng(55);
    std::vector<std::vector<std::uint8_t>> ins(7), sep, batch;
    std::vector<std::uint64_t> nonces;
    for (auto &v : ins) {
        v.resize(17 + rng.nextBounded(300));
        for (auto &b : v)
            b = static_cast<std::uint8_t>(rng.next());
        nonces.push_back(rng.next());
    }
    sep = ins;
    batch = ins;
    for (std::size_t i = 0; i < ins.size(); ++i)
        cipher.xcrypt(nonces[i], sep[i], sep[i]);
    std::vector<crypto::CtrSegment> segs;
    for (std::size_t i = 0; i < ins.size(); ++i)
        segs.push_back({nonces[i], batch[i], batch[i]});
    cipher.xcryptSegments(segs);
    EXPECT_EQ(batch, sep);
}

TEST(CtrBatched, EmptySegmentsAreSafe)
{
    // Zero-length segments anywhere in the batch — including trailing,
    // where the naive keystream index would run past the end — must be
    // no-ops that don't disturb their neighbors.
    const crypto::CtrCipher cipher(crypto::keyFromSeed(22));
    std::vector<std::uint8_t> msg(40, 0xab), expect(40);
    cipher.xcrypt(5, msg, expect);
    std::vector<std::uint8_t> got = msg, empty;
    const std::vector<crypto::CtrSegment> segs = {
        {1, empty, empty}, {5, got, got}, {2, empty, empty}};
    cipher.xcryptSegments(segs);
    EXPECT_EQ(got, expect);
    cipher.xcryptSegments({}); // and a fully empty batch
}

TEST(PrfBatched, EvalManyMatchesEval)
{
    const crypto::Prf prf(crypto::keyFromSeed(31));
    std::vector<std::uint64_t> got(40);
    prf.evalMany(1000, got);
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], prf.eval(1000 + i));
}

TEST(PrfBatched, NextManyMatchesNext64Stream)
{
    crypto::Prf a(crypto::keyFromSeed(32)), b(crypto::keyFromSeed(32));
    std::vector<std::uint64_t> batch(25);
    a.nextMany(batch);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i], b.next64());
    // Streams stay in sync afterwards.
    EXPECT_EQ(a.next64(), b.next64());
}

/** Deterministic test bucket: two real slots + one dummy, Z = 3. */
oram::Bucket
goldenBucket()
{
    oram::Bucket b(3, 64);
    oram::BlockSlot s;
    s.id = 0x0123456789abcdefull;
    s.leaf = 42;
    s.payload.resize(64);
    for (int i = 0; i < 64; ++i)
        s.payload[i] = static_cast<std::uint8_t>(i);
    EXPECT_TRUE(b.insert(s));
    s.id = 7;
    s.leaf = 0xfedcba98ull;
    for (int i = 0; i < 64; ++i)
        s.payload[i] = static_cast<std::uint8_t>(255 - i);
    EXPECT_TRUE(b.insert(s));
    return b;
}

TEST(BucketWireFormat, GoldenVectorAcrossBackends)
{
    // Pins the serialized-bucket CTR ciphertext bit-for-bit: the same
    // bucket, key, and nonce must produce this exact ciphertext under
    // every backend, today and after any future crypto change. (The
    // seed scalar implementation produced exactly these bytes.)
    const oram::Bucket bucket = goldenBucket();
    const auto plain = bucket.serialize();
    const std::uint64_t nonce = 0x0011223344556677ull;
    const char *expect_sha =
        "05c727e60c56f9c858c24d95d010491ed964535090962cde08c889efe4357f7c";
    for (const auto be : availableBackends()) {
        const crypto::CtrCipher cipher(crypto::keyFromSeed(0xdeadbeef), be);
        const auto ct = cipher.encrypt(plain, nonce);
        EXPECT_EQ(crypto::toHex(crypto::Sha256::hash(ct.data)), expect_sha)
            << cipher.backendName();
        // And the inverse direction round-trips.
        EXPECT_EQ(cipher.decrypt(ct), plain) << cipher.backendName();
    }
}

TEST(PathCodec, EncodeDecodePathRoundTrip)
{
    const unsigned levels = 5;
    oram::BucketCodec codec(3, 64);
    std::vector<oram::Bucket> path, decoded;
    Rng rng(17);
    for (unsigned l = 0; l < levels; ++l) {
        oram::Bucket b(3, 64);
        oram::BlockSlot s;
        s.id = l + 1;
        s.leaf = rng.next();
        s.payload.resize(64);
        for (auto &x : s.payload)
            x = static_cast<std::uint8_t>(rng.next());
        EXPECT_TRUE(b.insert(s));
        path.push_back(b);
        decoded.emplace_back(3, 64);
    }

    std::vector<std::uint8_t> arena(codec.pathBytes(levels));
    codec.encodePath(path, arena);

    // Path layout is exactly the per-bucket layout, concatenated.
    for (unsigned l = 0; l < levels; ++l) {
        std::vector<std::uint8_t> one(codec.serializedBytes());
        codec.encode(path[l], one);
        EXPECT_TRUE(std::equal(one.begin(), one.end(),
                               arena.begin() + l * codec.serializedBytes()))
            << "level " << l;
    }

    codec.decodePath(arena, decoded);
    for (unsigned l = 0; l < levels; ++l) {
        for (unsigned i = 0; i < 3; ++i) {
            EXPECT_EQ(decoded[l].slots()[i].id, path[l].slots()[i].id);
            EXPECT_EQ(decoded[l].slots()[i].leaf, path[l].slots()[i].leaf);
            EXPECT_EQ(decoded[l].slots()[i].payload,
                      path[l].slots()[i].payload);
        }
    }
}

TEST(PathOramCrossBackend, IdenticalDramImages)
{
    // The whole functional ORAM must be backend-transparent: identical
    // DRAM images (every bucket ciphertext) after an identical access
    // sequence under pinned scalar vs fastest-available backends.
    oram::OramConfig c;
    c.numBlocks = 256;
    c.recursionLevels = 0;
    c.stashCapacity = 400;

    auto run = [&](CryptoBackend be) {
        auto map = std::make_unique<oram::FlatPositionMap>(c.numBlocks);
        auto o = std::make_unique<oram::PathOram>(c, *map, 4242, 0, be);
        std::vector<std::uint8_t> out(c.blockBytes);
        std::vector<std::uint8_t> data(c.blockBytes);
        Rng rng(99);
        for (int i = 0; i < 120; ++i) {
            const BlockId id = rng.nextBounded(64);
            for (auto &x : data)
                x = static_cast<std::uint8_t>(rng.next());
            if (i % 3 == 0)
                o->accessInto(id, oram::Op::Write, data, out);
            else
                o->accessInto(id, oram::Op::Read, {}, out);
        }
        std::vector<crypto::Ciphertext> image;
        for (std::uint64_t i = 0; i < c.numBuckets(); ++i)
            image.push_back(o->bucketCiphertext(i));
        // Keep the position map alive until the image is captured.
        return image;
    };

    const auto scalar_image = run(CryptoBackend::Scalar);
    for (const auto be : availableBackends()) {
        if (be == CryptoBackend::Scalar)
            continue;
        EXPECT_EQ(run(be), scalar_image)
            << "backend " << crypto::backendName(be);
    }
}

TEST(StashSweep, ReleaseManyCompactsStably)
{
    oram::Stash st(8);
    for (BlockId id = 0; id < 6; ++id) {
        oram::BlockSlot s;
        s.id = id;
        s.leaf = id * 10;
        s.payload = {static_cast<std::uint8_t>(id)};
        st.put(s);
    }
    // Release the pool slots holding ids 1 and 4.
    std::vector<std::uint32_t> victims;
    for (const std::uint32_t idx : st.activeIndices())
        if (st.poolSlot(idx).id == 1 || st.poolSlot(idx).id == 4)
            victims.push_back(idx);
    ASSERT_EQ(victims.size(), 2u);
    st.releaseMany(victims);

    EXPECT_EQ(st.size(), 4u);
    EXPECT_FALSE(st.contains(1));
    EXPECT_FALSE(st.contains(4));
    for (BlockId id : {0u, 2u, 3u, 5u})
        EXPECT_TRUE(st.contains(id));
    // Released slots are reusable.
    oram::BlockSlot s;
    s.id = 100;
    s.leaf = 1;
    s.payload = {9};
    st.put(s);
    EXPECT_EQ(st.size(), 5u);
}

} // namespace
} // namespace tcoram
