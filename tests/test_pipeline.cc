/**
 * @file
 * Transaction-pipeline regression tests: the allocation-free steady
 * state of the ORAM datapath (counting global new/delete), batched
 * vs per-request DRAM equivalence, the recording TraceMemory and the
 * backend registry, recursive-ORAM invariants under sustained mixed
 * load, per-cell seeding of the parallel ExperimentEngine, and
 * locale-independent report formatting.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <locale>
#include <new>

#include "common/rng.hh"
#include "dram/backend_registry.hh"
#include "dram/dram_model.hh"
#include "dram/flat_memory.hh"
#include "dram/trace_memory.hh"
#include "oram/oram_device.hh"
#include "oram/path_oram.hh"
#include "oram/sharded_device.hh"
#include "sim/experiment_engine.hh"
#include "sim/oram_scheduler.hh"
#include "sim/shard_worker.hh"
#include "sim/report.hh"
#include "sim/secure_processor.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"
#include "workload/spec_suite.hh"

// ---------------------------------------------------------------------
// Counting allocator hook: every global new/delete in this binary is
// counted, so a test can assert that a code region performs zero heap
// allocations.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocCount{0};
} // namespace

static std::uint64_t
allocationCount()
{
    return g_allocCount.load(std::memory_order_relaxed);
}

void *
operator new(std::size_t n)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    g_allocCount.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p, static_cast<std::size_t>(al), n ? n : 1) != 0)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t al)
{
    return ::operator new(n, al);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace tcoram {
namespace {

// ---------------------------------------------------------------------
// Allocation-free steady state.
// ---------------------------------------------------------------------

oram::OramConfig
tinyConfig(std::uint64_t blocks = 256)
{
    oram::OramConfig c;
    c.numBlocks = blocks;
    c.recursionLevels = 0;
    c.stashCapacity = 400;
    return c;
}

TEST(AllocationFree, PathOramSteadyStateAccess)
{
    oram::OramConfig c = tinyConfig();
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram o(c, map, 42);

    std::vector<std::uint8_t> out(c.blockBytes);
    std::vector<std::uint8_t> data(c.blockBytes, 0x5a);
    Rng rng(7);

    // Warm up: touch a working set so the stash pool and every scratch
    // buffer reach steady-state capacity.
    for (int i = 0; i < 200; ++i) {
        const BlockId id = rng.nextBounded(64);
        if (i % 2 == 0)
            o.accessInto(id, oram::Op::Write, data, out);
        else
            o.accessInto(id, oram::Op::Read, {}, out);
    }

    const std::uint64_t before = allocationCount();
    for (int i = 0; i < 500; ++i) {
        const BlockId id = rng.nextBounded(64);
        if (i % 3 == 0)
            o.accessInto(id, oram::Op::Write, data, out);
        else
            o.accessInto(id, oram::Op::Read, {}, out);
    }
    EXPECT_EQ(allocationCount() - before, 0u)
        << "PathOram::accessInto allocated in steady state";
}

TEST(AllocationFree, PathOramDummyAccess)
{
    oram::OramConfig c = tinyConfig();
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram o(c, map, 43);

    std::vector<std::uint8_t> out(c.blockBytes);
    for (int i = 0; i < 50; ++i)
        o.accessInto(static_cast<BlockId>(i), oram::Op::Read, {}, out);
    for (int i = 0; i < 20; ++i)
        o.dummyAccess();

    const std::uint64_t before = allocationCount();
    for (int i = 0; i < 200; ++i)
        o.dummyAccess();
    EXPECT_EQ(allocationCount() - before, 0u)
        << "PathOram::dummyAccess allocated in steady state";
}

TEST(AllocationFree, RecursiveSteadyStateAccess)
{
    oram::OramConfig c;
    c.numBlocks = 128;
    c.recursionLevels = 2;
    c.stashCapacity = 400;
    oram::RecursivePathOram o(c, 44);

    std::vector<std::uint8_t> out(c.blockBytes);
    std::vector<std::uint8_t> data(c.blockBytes, 0x17);
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const BlockId id = rng.nextBounded(32);
        if (i % 2 == 0)
            o.accessInto(id, oram::Op::Write, data, out);
        else
            o.accessInto(id, oram::Op::Read, {}, out);
    }

    const std::uint64_t before = allocationCount();
    for (int i = 0; i < 200; ++i) {
        const BlockId id = rng.nextBounded(32);
        o.accessInto(id, oram::Op::Read, {}, out);
    }
    EXPECT_EQ(allocationCount() - before, 0u)
        << "recursive access (incl. position-map stages) allocated";
}

/** Fixed-latency device with no recording — the allocation probe must
 *  see only the scheduler's own dispatch machinery. */
class NullTimingDevice final : public timing::OramDeviceIf
{
  public:
    timing::OramCompletion
    submit(Cycles now, const timing::OramTransaction &) override
    {
        return {now, now + 100, 0, 0, 0};
    }
    Cycles accessLatency() const override { return 100; }
};

TEST(AllocationFree, SchedulerDispatchAndDrainSteadyState)
{
    // The per-session FIFOs are power-of-two rings (common/ring_fifo.hh)
    // precisely so a backlogged submit/serve/drain cycle allocates
    // NOTHING once the rings (and the latency sample vectors) have
    // grown to peak — a deque chunks its storage and would churn the
    // heap on every few pops.
    NullTimingDevice dev;
    const timing::RateSet rates{std::vector<Cycles>{500}};
    const timing::EpochSchedule sched{Cycles{1} << 30, 2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    timing::RateEnforcer enf(dev, rates, sched, learner, 500);
    protocol::LeakageParams params;
    params.rateCount = 1;
    sim::OramScheduler s(enf, params);
    s.openSession(7);
    s.openSession(8);

    // Warm up well past the measured region's peak backlog: ring
    // capacity doubles to 1024 >= 700, and the per-session latency
    // vectors reach a capacity (1024) that covers warmup + measured
    // completions without regrowing.
    Cycles t = 0;
    for (int i = 0; i < 700; ++i, t += 40)
        s.submit(i % 2, t, timing::OramTransaction::real(i % 64));
    s.run();
    s.drainUntil(Cycles{1'000'000});

    const std::uint64_t before = allocationCount();
    for (int i = 0; i < 200; ++i, t += 40)
        s.submit(i % 2, t, timing::OramTransaction::real(i % 64));
    s.run();
    s.drainUntil(Cycles{1'300'000}); // fires real trailing dummies
    EXPECT_EQ(allocationCount() - before, 0u)
        << "scheduler dispatch/drain allocated in steady state";

    // Percentile queries reuse one scratch: after a first call has
    // grown it to the full sample count, repeats are allocation-free.
    (void)s.latencyPercentile(0, 0.99);
    const std::uint64_t before_pct = allocationCount();
    (void)s.latencyPercentile(0, 0.99);
    (void)s.latencyPercentile(0, 0.5);
    EXPECT_EQ(allocationCount() - before_pct, 0u)
        << "latencyPercentile copied the samples afresh";
}

TEST(AllocationFree, RingSchedulerLatencyPercentileReuse)
{
    // Same contract for the ring engine: percentile queries run
    // nth_element over ONE reused scratch, so once a first call per
    // session has grown it, repeated quantile sweeps (the
    // bench_multi_session reporting pattern) are allocation-free.
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(7);
    oram::OramDeviceSpec inner; // timing
    oram::ShardedOramDevice dev(inner, tinyConfig(), /*shards=*/2,
                                /*route_seed=*/5, mem, rng);
    const timing::RateSet rates{std::vector<Cycles>{500}};
    const timing::EpochSchedule sched{Cycles{1} << 30, 2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    protocol::LeakageParams params;
    params.rateCount = 1;
    sim::RingScheduler rs(dev, rates, sched, learner, 500, params);
    rs.openSession(7);
    rs.openSession(8);

    Cycles t = 0;
    for (int i = 0; i < 300; ++i, t += 40)
        ASSERT_TRUE(rs.trySubmit(i % 2, t,
                                 timing::OramTransaction::real(i % 64))
                        .has_value());
    rs.runUntilIdle();

    (void)rs.latencyPercentile(0, 0.99);
    (void)rs.latencyPercentile(1, 0.99);
    const std::uint64_t before = allocationCount();
    for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        (void)rs.latencyPercentile(0, q);
        (void)rs.latencyPercentile(1, q);
    }
    EXPECT_EQ(allocationCount() - before, 0u)
        << "RingScheduler::latencyPercentile copied the samples afresh";
}

// ---------------------------------------------------------------------
// Batched DRAM interface.
// ---------------------------------------------------------------------

std::vector<dram::MemRequest>
pathLikeRequests(std::uint64_t n, std::uint64_t stride, bool writes)
{
    std::vector<dram::MemRequest> reqs;
    for (std::uint64_t i = 0; i < n; ++i)
        reqs.push_back({i * stride, 240, writes});
    return reqs;
}

TEST(AccessBatch, FlatMatchesPerRequest)
{
    dram::FlatMemory serial(40), batched(40);
    const auto reqs = pathLikeRequests(18, 4096, false);

    Cycles done_serial = 500;
    for (const auto &r : reqs) {
        const Cycles t = serial.access(500, r);
        done_serial = std::max(done_serial, t);
    }
    const Cycles done_batch = batched.accessBatch(500, reqs);

    EXPECT_EQ(done_serial, done_batch);
    EXPECT_EQ(serial.requestCount(), batched.requestCount());
    EXPECT_EQ(serial.bytesMoved(), batched.bytesMoved());

    // A second batch must see the controller still busy.
    EXPECT_EQ(serial.access(500, reqs[0]),
              batched.accessBatch(500, std::span(reqs.data(), 1)));
}

TEST(AccessBatch, BankedMatchesPerRequest)
{
    dram::DramModel serial{dram::DramConfig{}};
    dram::DramModel batched{dram::DramConfig{}};
    const auto reads = pathLikeRequests(18, 1 << 14, false);
    const auto writes = pathLikeRequests(18, 1 << 14, true);

    Cycles done_serial = 1000;
    for (const auto &r : reads)
        done_serial = std::max(done_serial, serial.access(1000, r));
    Cycles wr_serial = done_serial;
    for (const auto &r : writes)
        wr_serial = std::max(wr_serial, serial.access(done_serial, r));

    const Cycles done_batch = batched.accessBatch(1000, reads);
    const Cycles wr_batch = batched.accessBatch(done_batch, writes);

    EXPECT_EQ(done_serial, done_batch);
    EXPECT_EQ(wr_serial, wr_batch);
    EXPECT_EQ(serial.requestCount(), batched.requestCount());
    EXPECT_EQ(serial.bytesMoved(), batched.bytesMoved());
    EXPECT_DOUBLE_EQ(serial.rowHitRate(), batched.rowHitRate());
}

// ---------------------------------------------------------------------
// TraceMemory and the backend registry.
// ---------------------------------------------------------------------

TEST(TraceMemory, RecordsTransactions)
{
    dram::TraceMemory mem(std::make_unique<dram::FlatMemory>(40));
    const dram::MemRequest r0{0x1000, 64, false};
    const dram::MemRequest r1{0x2000, 64, true};
    const Cycles t0 = mem.access(100, r0);
    const Cycles t1 = mem.access(t0, r1);

    const auto recs = mem.records();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].req.addr, 0x1000u);
    EXPECT_EQ(recs[0].issued, 100u);
    EXPECT_EQ(recs[0].completed, t0);
    EXPECT_TRUE(recs[1].req.isWrite);
    EXPECT_EQ(recs[1].completed, t1);
    EXPECT_EQ(mem.requestCount(), 2u);
    EXPECT_EQ(mem.droppedRecords(), 0u);

    EXPECT_EQ(mem.issueTimes(), (std::vector<Cycles>{100, t0}));

    mem.clearRecords();
    EXPECT_TRUE(mem.records().empty());
    EXPECT_EQ(mem.requestCount(), 2u) << "clearing records keeps stats";
}

TEST(TraceMemory, RingEvictsOldest)
{
    dram::TraceMemory mem(std::make_unique<dram::FlatMemory>(10), 4);
    Cycles now = 0;
    for (Addr a = 0; a < 6; ++a)
        now = mem.access(now, {a * 64, 64, false});
    const auto recs = mem.records();
    ASSERT_EQ(recs.size(), 4u);
    EXPECT_EQ(mem.droppedRecords(), 2u);
    // Oldest two (addr 0, 64) evicted.
    EXPECT_EQ(recs.front().req.addr, 2u * 64u);
    EXPECT_EQ(recs.back().req.addr, 5u * 64u);
}

TEST(BackendRegistry, BuiltinsAndTraceWrapping)
{
    auto &reg = dram::BackendRegistry::instance();
    EXPECT_TRUE(reg.contains("flat"));
    EXPECT_TRUE(reg.contains("banked"));
    EXPECT_TRUE(reg.contains("trace"));

    dram::BackendSpec spec;
    spec.kind = "flat";
    spec.flatLatency = 17;
    auto flat = dram::makeMemory(spec);
    ASSERT_NE(dynamic_cast<dram::FlatMemory *>(flat.get()), nullptr);
    EXPECT_EQ(flat->access(0, {0, 64, false}), 17u);

    spec.kind = "banked";
    auto banked = dram::makeMemory(spec);
    EXPECT_NE(dynamic_cast<dram::DramModel *>(banked.get()), nullptr);

    spec.kind = "trace";
    spec.traceInner = "flat";
    auto traced = dram::makeMemory(spec);
    auto *tm = dynamic_cast<dram::TraceMemory *>(traced.get());
    ASSERT_NE(tm, nullptr);
    EXPECT_NE(dynamic_cast<dram::FlatMemory *>(&tm->inner()), nullptr);
    traced->access(0, {0, 64, false});
    EXPECT_EQ(tm->records().size(), 1u);
}

TEST(BackendRegistry, SystemConfigSelectsByScheme)
{
    EXPECT_EQ(sim::SystemConfig::baseDram().memorySpec().kind, "flat");
    EXPECT_EQ(sim::SystemConfig::baseOram().memorySpec().kind, "banked");
    EXPECT_TRUE(sim::SystemConfig::protectedDram(4, 2)
                    .memorySpec()
                    .dram.closedPage);

    auto cfg = sim::SystemConfig::baseOram();
    cfg.memoryBackend = "trace";
    const auto spec = cfg.memorySpec();
    EXPECT_EQ(spec.kind, "trace");
    EXPECT_EQ(spec.traceInner, "banked");
}

TEST(TraceMemory, CalibrationTrafficExcludedFromProcessorTrace)
{
    // ORAM controller calibration replays a path against main memory
    // at construction; a recording backend must not leak those phantom
    // transactions into the adversary-visible record stream.
    auto cfg = sim::SystemConfig::baseOram();
    cfg.oram.numBlocks = 1 << 12;
    cfg.memoryBackend = "trace";
    sim::SecureProcessor proc(cfg, workload::specProfile("hmmer"));

    auto *tm = dynamic_cast<dram::TraceMemory *>(&proc.memory());
    ASSERT_NE(tm, nullptr) << "registry must hand out the trace backend";
    ASSERT_GT(proc.oramDevice()->accessLatency(), 0u)
        << "device calibrated through the traced memory";
    EXPECT_GT(tm->requestCount(), 0u)
        << "calibration transactions count toward the stats";
    EXPECT_TRUE(tm->records().empty())
        << "but must not appear in the adversary-visible records";
}

// ---------------------------------------------------------------------
// Recursive ORAM invariants under sustained mixed load.
// ---------------------------------------------------------------------

TEST(RecursiveOram, InvariantsAfter10kMixedAccesses)
{
    oram::OramConfig c;
    c.numBlocks = 128;
    c.recursionLevels = 2;
    c.stashCapacity = 400;
    oram::RecursivePathOram o(c, 77);

    constexpr BlockId kBlocks = 48;
    std::vector<std::uint8_t> expect(kBlocks, 0);
    std::vector<std::uint8_t> out(c.blockBytes);
    std::vector<std::uint8_t> data(c.blockBytes);

    auto fill = [&](std::uint8_t tag) {
        for (std::size_t i = 0; i < data.size(); ++i)
            data[i] = static_cast<std::uint8_t>(tag * 131 + i);
    };

    // Initialize every block so reads always have a defined pattern.
    for (BlockId id = 0; id < kBlocks; ++id) {
        const auto tag = static_cast<std::uint8_t>(id);
        fill(tag);
        o.accessInto(id, oram::Op::Write, data, out);
        expect[id] = tag;
    }

    Rng rng(123);
    for (int round = 0; round < 10'000; ++round) {
        const BlockId id = rng.nextBounded(kBlocks);
        if (rng.nextBool(0.4)) {
            const auto tag = static_cast<std::uint8_t>(rng.next());
            fill(tag);
            o.accessInto(id, oram::Op::Write, data, out);
            expect[id] = tag;
        } else if (rng.nextBool(0.1)) {
            o.dummyAccess();
        } else {
            o.accessInto(id, oram::Op::Read, {}, out);
            fill(expect[id]);
            ASSERT_EQ(out, data) << "block " << id << " round " << round;
        }
    }

    // Every touched block is either stashed or on its mapped path, in
    // every tree; stashes stayed within capacity throughout (overflow
    // would have aborted).
    std::vector<BlockId> ids(kBlocks);
    for (BlockId i = 0; i < kBlocks; ++i)
        ids[i] = i;
    EXPECT_TRUE(o.dataOram().checkInvariant(ids));
    EXPECT_LE(o.dataOram().stash().highWater(),
              o.dataOram().stash().capacity());
}

// ---------------------------------------------------------------------
// ExperimentEngine determinism.
// ---------------------------------------------------------------------

sim::SystemConfig
fastConfig(sim::SystemConfig c)
{
    c.oram.numBlocks = 1 << 12;
    c.epoch0 = 1 << 16;
    c.ipcWindow = 50'000;
    return c;
}

void
expectSameResult(const sim::SimResult &a, const sim::SimResult &b)
{
    EXPECT_EQ(a.configName, b.configName);
    EXPECT_EQ(a.workloadName, b.workloadName);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.oramReal, b.oramReal);
    EXPECT_EQ(a.oramDummy, b.oramDummy);
    EXPECT_EQ(a.epochsUsed, b.epochsUsed);
    EXPECT_EQ(a.watts, b.watts);
    EXPECT_EQ(a.ipcSeries, b.ipcSeries);
}

TEST(ExperimentEngine, ThreadCountDoesNotChangeResults)
{
    const std::vector<sim::SystemConfig> configs = {
        fastConfig(sim::SystemConfig::baseDram()),
        fastConfig(sim::SystemConfig::dynamicScheme(4, 2)),
    };
    const std::vector<workload::Profile> profs = {
        workload::specProfile("hmmer"), workload::specProfile("mcf")};

    const sim::Grid serial =
        sim::ExperimentEngine(1).run(configs, profs, 100'000);
    const sim::Grid parallel =
        sim::ExperimentEngine(4).run(configs, profs, 100'000);

    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (std::size_t c = 0; c < configs.size(); ++c)
        for (std::size_t w = 0; w < profs.size(); ++w)
            expectSameResult(serial.at(c, w), parallel.at(c, w));
}

TEST(ExperimentEngine, RepeatRunsIdentical)
{
    const std::vector<sim::SystemConfig> configs = {
        fastConfig(sim::SystemConfig::dynamicScheme(4, 2))};
    const std::vector<workload::Profile> profs = {
        workload::specProfile("gobmk")};
    const sim::Grid a = sim::ExperimentEngine(2).run(configs, profs, 80'000);
    const sim::Grid b = sim::ExperimentEngine(2).run(configs, profs, 80'000);
    expectSameResult(a.at(0, 0), b.at(0, 0));
}

TEST(ExperimentEngine, ExplicitSeedReproducible)
{
    const auto cfg = fastConfig(sim::SystemConfig::dynamicScheme(4, 2));
    const auto prof = workload::specProfile("astar");
    const auto a = sim::runOne(cfg, prof, 80'000, 0, 987654321);
    const auto b = sim::runOne(cfg, prof, 80'000, 0, 987654321);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.oramReal, b.oramReal);
    EXPECT_EQ(a.oramDummy, b.oramDummy);
}

TEST(ExperimentEngine, CellSeedsPairConfigsPerWorkload)
{
    // Different workload columns get different seeds...
    const auto cfg = sim::SystemConfig::baseDram();
    EXPECT_NE(sim::ExperimentEngine::cellSeed(cfg, 0),
              sim::ExperimentEngine::cellSeed(cfg, 1));
    EXPECT_EQ(sim::ExperimentEngine::cellSeed(cfg, 0),
              sim::ExperimentEngine::cellSeed(cfg, 0));
    // ...but every config in a column shares one seed, so overhead
    // ratios (treatment vs base_dram) compare identical traces.
    const auto dyn = sim::SystemConfig::dynamicScheme(4, 4);
    EXPECT_EQ(sim::ExperimentEngine::cellSeed(cfg, 2),
              sim::ExperimentEngine::cellSeed(dyn, 2));
}

TEST(MixSeed, DeterministicAndSpreading)
{
    EXPECT_EQ(mixSeed(1, 2), mixSeed(1, 2));
    EXPECT_NE(mixSeed(1, 2), mixSeed(1, 3));
    EXPECT_NE(mixSeed(1, 2), mixSeed(2, 2));
}

// ---------------------------------------------------------------------
// Locale-independent report formatting.
// ---------------------------------------------------------------------

struct CommaPunct : std::numpunct<char>
{
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
};

TEST(LocaleStability, FmtAndCsvIgnoreGlobalLocale)
{
    const std::locale hostile(std::locale::classic(), new CommaPunct);
    const std::locale old = std::locale::global(hostile);

    EXPECT_EQ(sim::Table::fmt(1234.5, 2), "1234.50");
    EXPECT_EQ(sim::Table::fmt(0.125, 3), "0.125");

    sim::SimResult r;
    r.configName = "cfg";
    r.workloadName = "wl";
    r.instructions = 1000000;
    r.cycles = 2500000;
    r.ipc = 0.4;
    const std::string row = sim::csvRow(r);
    EXPECT_NE(row.find("0.4"), std::string::npos)
        << "decimal point must stay '.' under a comma-decimal locale: "
        << row;
    EXPECT_NE(row.find("2500000"), std::string::npos)
        << "no digit grouping in CSV integers: " << row;

    std::locale::global(old);
}

} // namespace
} // namespace tcoram
