/**
 * @file
 * Core model tests: instruction/cycle accounting, demand-miss
 * blocking, non-blocking store handling through the write buffer, and
 * IPC window series.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"

namespace tcoram::cpu {
namespace {

/** Scripted trace source. */
class ScriptedTrace : public workload::TraceSource
{
  public:
    explicit ScriptedTrace(std::vector<workload::TraceOp> ops)
        : ops_(std::move(ops))
    {
    }

    workload::TraceOp
    next() override
    {
        if (idx_ < ops_.size())
            return ops_[idx_++];
        // Repeat the last op forever.
        return ops_.back();
    }

    const std::string &name() const override { return name_; }

  private:
    std::vector<workload::TraceOp> ops_;
    std::size_t idx_ = 0;
    std::string name_ = "scripted";
};

/** Fixed-latency memory that records arrivals. */
class FixedMem : public MemorySystemIf
{
  public:
    explicit FixedMem(Cycles lat) : lat_(lat) {}

    Cycles
    serveMiss(Cycles now, Addr addr) override
    {
        missArrivals_.push_back({now, addr});
        return now + lat_;
    }

    Cycles
    serveAsync(Cycles now, Addr addr) override
    {
        asyncArrivals_.push_back({now, addr});
        return now + lat_;
    }

    std::vector<std::pair<Cycles, Addr>> missArrivals_;
    std::vector<std::pair<Cycles, Addr>> asyncArrivals_;

  private:
    Cycles lat_;
};

workload::TraceOp
loadOp(Addr addr, std::uint32_t gap = 10)
{
    workload::TraceOp op;
    op.gapInsts = gap;
    op.addr = addr;
    op.kind = workload::OpKind::Load;
    return op;
}

TEST(Core, HitsDontTouchMemory)
{
    cache::Hierarchy h(1 << 20);
    FixedMem mem(1000);
    // Two ops on the same line: one cold miss then a hit.
    ScriptedTrace trace({loadOp(0x1000), loadOp(0x1000)});
    Core core(h, mem, trace);
    core.run(22);
    EXPECT_EQ(mem.missArrivals_.size(), 1u);
}

TEST(Core, DemandMissBlocksCore)
{
    cache::Hierarchy h(1 << 20);
    FixedMem mem(1000);
    ScriptedTrace trace({loadOp(0x1000, 0), loadOp(0x2000, 0)});
    Core core(h, mem, trace);
    const CoreStats s = core.run(2);
    // Two serialized 1000-cycle misses dominate the runtime.
    EXPECT_GE(s.cycles, 2000u);
    EXPECT_EQ(s.demandMisses, 2u);
}

TEST(Core, StoresDontBlock)
{
    cache::Hierarchy h(1 << 20);
    FixedMem mem(10000);
    std::vector<workload::TraceOp> ops;
    for (int i = 0; i < 4; ++i) {
        workload::TraceOp op;
        op.gapInsts = 1;
        op.addr = 0x10000 + 64 * i;
        op.kind = workload::OpKind::Store;
        ops.push_back(op);
    }
    ScriptedTrace trace(ops);
    Core core(h, mem, trace);
    const CoreStats s = core.run(8);
    // 4 store misses of 10,000 cycles each, but the core never blocks
    // (buffer capacity 8): runtime is one overlapping drain (~10k),
    // far below the 40,000 cycles serialized stores would take.
    EXPECT_LT(s.cycles, 15000u);
    EXPECT_EQ(s.asyncMisses, 4u);
    EXPECT_EQ(s.writeBufferStalls, 0u);
}

TEST(Core, FullWriteBufferStalls)
{
    cache::Hierarchy h(1 << 20);
    FixedMem mem(100000);
    std::vector<workload::TraceOp> ops;
    for (int i = 0; i < 12; ++i) {
        workload::TraceOp op;
        op.gapInsts = 1;
        op.addr = 0x10000 + 64 * i;
        op.kind = workload::OpKind::Store;
        ops.push_back(op);
    }
    ScriptedTrace trace(ops);
    Core core(h, mem, trace);
    const CoreStats s = core.run(24);
    // 12 long-latency stores against an 8-entry buffer must stall.
    EXPECT_GT(s.writeBufferStalls, 0u);
}

TEST(Core, InstructionAccounting)
{
    cache::Hierarchy h(1 << 20);
    FixedMem mem(100);
    ScriptedTrace trace({loadOp(0, 9)});
    Core core(h, mem, trace);
    const CoreStats s = core.run(100);
    // Each record retires gap (9) + 1 instructions.
    EXPECT_EQ(s.instructions % 10, 0u);
    EXPECT_GE(s.instructions, 100u);
}

TEST(Core, ExtraGapCyclesLowerIpc)
{
    cache::Hierarchy h1(1 << 20), h2(1 << 20);
    FixedMem mem1(10), mem2(10);
    workload::TraceOp cheap = loadOp(0, 10);
    workload::TraceOp costly = loadOp(0, 10);
    costly.extraGapCycles = 40;
    ScriptedTrace t1({cheap}), t2({costly});
    Core c1(h1, mem1, t1), c2(h2, mem2, t2);
    const CoreStats s1 = c1.run(1000);
    const CoreStats s2 = c2.run(1000);
    EXPECT_GT(s1.ipc(), s2.ipc());
}

TEST(Core, IpcSeriesProduced)
{
    cache::Hierarchy h(1 << 20);
    FixedMem mem(10);
    ScriptedTrace trace({loadOp(0, 9)});
    Core core(h, mem, trace, 100); // 100-instruction windows
    core.run(1000);
    EXPECT_GE(core.ipcSeries().size(), 9u);
    for (double ipc : core.ipcSeries()) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, 1.0); // in-order single-issue bound
    }
}

TEST(Core, IpcBoundedByOne)
{
    cache::Hierarchy h(1 << 20);
    FixedMem mem(10);
    ScriptedTrace trace({loadOp(0, 50)});
    Core core(h, mem, trace);
    const CoreStats s = core.run(5000);
    EXPECT_LE(s.ipc(), 1.0);
    EXPECT_GT(s.ipc(), 0.5); // mostly 1-cycle instructions
}

} // namespace
} // namespace tcoram::cpu
