/**
 * @file
 * Transactional ORAM device layer: TimingOramDevice/FunctionalOramDevice
 * semantics, the factory's error handling, and the PR's core equality
 * claim — a full-system run charges bit-identical stats whichever
 * device backend serves it, because the functional datapath reuses the
 * timing device's calibration, counters and cost attribution.
 */

#include <gtest/gtest.h>

#include "dram/dram_model.hh"
#include "oram/oram_device.hh"
#include "sim/experiment.hh"
#include "sim/report.hh"
#include "sim/secure_processor.hh"
#include "workload/spec_suite.hh"

using namespace tcoram;

namespace {

oram::OramConfig
tinyConfig()
{
    oram::OramConfig c;
    c.numBlocks = 1 << 10;
    c.recursionLevels = 2;
    c.stashCapacity = 400;
    return c;
}

} // namespace

TEST(TimingOramDevice, SubmitSerializesAndAttributesCosts)
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(1);
    oram::TimingOramDevice dev(tinyConfig(), mem, rng);

    const auto c1 = dev.submit(0, timing::OramTransaction::real(7));
    EXPECT_EQ(c1.start, 0u);
    EXPECT_EQ(c1.done, dev.accessLatency());
    EXPECT_EQ(c1.bytesMoved, dev.bytesPerAccess());
    EXPECT_EQ(c1.cryptoBytes, dev.cryptoBytesPerAccess());
    EXPECT_EQ(c1.cryptoCalls, dev.cryptoCallsPerAccess());

    // A dummy submitted mid-flight serializes behind the real access
    // and costs exactly the same — the indistinguishability invariant.
    const auto c2 = dev.submit(c1.done / 2, timing::OramTransaction::dummy());
    EXPECT_EQ(c2.start, c1.done);
    EXPECT_EQ(c2.done, c1.done + dev.accessLatency());
    EXPECT_EQ(c2.cryptoBytes, c1.cryptoBytes);

    EXPECT_EQ(dev.realAccesses(), 1u);
    EXPECT_EQ(dev.dummyAccesses(), 1u);
    EXPECT_STREQ(dev.kind(), "timing");
}

TEST(FunctionalOramDevice, MovesRealDataWithTimingCharging)
{
    const auto cfg = tinyConfig();
    dram::DramModel mem_t{dram::DramConfig{}};
    dram::DramModel mem_f{dram::DramConfig{}};
    Rng rng_t(9), rng_f(9);
    oram::TimingOramDevice timing_dev(cfg, mem_t, rng_t);
    oram::FunctionalOramDevice func_dev(cfg, mem_f, rng_f, /*key_seed=*/77);

    EXPECT_STREQ(func_dev.kind(), "functional");
    EXPECT_EQ(func_dev.functionalBlocks(), cfg.numBlocks);

    // Write through the transaction API, read back through it.
    std::vector<std::uint8_t> payload(cfg.blockBytes);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(0xA0 + i);
    std::vector<std::uint8_t> out(cfg.blockBytes, 0);

    auto wr = timing::OramTransaction::real(123, /*is_write=*/true);
    wr.data = payload;
    wr.out = out;
    const auto cw = func_dev.submit(0, wr);

    auto rd = timing::OramTransaction::real(123, /*is_write=*/false);
    rd.out = out;
    const auto cr = func_dev.submit(cw.done, rd);
    EXPECT_EQ(out, payload) << "functional datapath must round-trip data";

    // Identical cycle charging to the timing device, access by access.
    const auto t1 = timing_dev.submit(0, timing::OramTransaction::real(123));
    const auto t2 =
        timing_dev.submit(t1.done, timing::OramTransaction::real(123));
    EXPECT_EQ(cw.start, t1.start);
    EXPECT_EQ(cw.done, t1.done);
    EXPECT_EQ(cr.done, t2.done);
    EXPECT_EQ(cw.cryptoBytes, t1.cryptoBytes);
    EXPECT_EQ(cw.cryptoCalls, t1.cryptoCalls);
    EXPECT_EQ(func_dev.accessLatency(), timing_dev.accessLatency());

    // Dummies run the whole datapath too.
    const auto cd = func_dev.submit(cr.done, timing::OramTransaction::dummy());
    EXPECT_EQ(cd.done - cd.start, func_dev.accessLatency());
    EXPECT_EQ(func_dev.realAccesses(), 2u);
    EXPECT_EQ(func_dev.dummyAccesses(), 1u);
    EXPECT_GT(func_dev.dataBytesMoved(), 0u);
}

TEST(FunctionalOramDevice, CapFoldsBlockIdsButKeepsModelCosts)
{
    auto cfg = tinyConfig();
    dram::DramModel mem{dram::DramConfig{}};
    dram::DramModel mem_ref{dram::DramConfig{}};
    Rng rng(3), rng_ref(3);
    oram::FunctionalOramDevice capped(cfg, mem, rng, 5, /*cap=*/256);
    oram::TimingOramDevice reference(cfg, mem_ref, rng_ref);

    EXPECT_EQ(capped.functionalBlocks(), 256u);
    // Charging still reflects the modeled (uncapped) geometry.
    EXPECT_EQ(capped.accessLatency(), reference.accessLatency());
    EXPECT_EQ(capped.bytesPerAccess(), reference.bytesPerAccess());

    // An id beyond the cap folds into the functional tree.
    std::vector<std::uint8_t> out(cfg.blockBytes, 0);
    auto txn = timing::OramTransaction::real(cfg.numBlocks - 1);
    txn.out = out;
    const auto c = capped.submit(0, txn);
    EXPECT_EQ(c.done - c.start, capped.accessLatency());
}

TEST(OramDeviceFactory, UnknownKindDiesWithRegisteredList)
{
    const auto cfg = tinyConfig();
    EXPECT_EXIT(
        {
            dram::DramModel mem{dram::DramConfig{}};
            Rng rng(1);
            oram::OramDeviceSpec spec;
            spec.kind = "quantum";
            oram::makeOramDevice(spec, cfg, mem, rng);
        },
        ::testing::ExitedWithCode(1), "unknown ORAM device kind");
}

TEST(SystemConfigValidation, UnknownDeviceAndMemoryBackendsDie)
{
    EXPECT_EXIT(
        {
            auto cfg = sim::SystemConfig::baseOram();
            cfg.oramDevice = "bogus";
            cfg.oramDeviceKind();
        },
        ::testing::ExitedWithCode(1), "unknown ORAM device");
    EXPECT_EXIT(
        {
            auto cfg = sim::SystemConfig::baseOram();
            cfg.memoryBackend = "mram";
            cfg.memorySpec();
        },
        ::testing::ExitedWithCode(1), "unknown memory backend");
}

TEST(SystemConfigValidation, DramModeIsValidated)
{
    auto cfg = sim::SystemConfig::baseOram();
    EXPECT_EQ(cfg.dramModeKind(), "sync") << "empty selects sync";
    EXPECT_EQ(cfg.pathMode(), oram::PathMode::Sync);
    cfg.dramMode = "async";
    EXPECT_EQ(cfg.dramModeKind(), "async");
    EXPECT_EQ(cfg.pathMode(), oram::PathMode::Pipelined);
    EXPECT_EXIT(
        {
            auto bad = sim::SystemConfig::baseOram();
            bad.dramMode = "ddr5";
            bad.dramModeKind();
        },
        ::testing::ExitedWithCode(1), "unknown dramMode");
}

TEST(AsyncDevice, PipelinedSubmitReportsOlatAndOccupancy)
{
    const auto cfg = tinyConfig();
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::TimingOramDevice dev(cfg, mem, rng, oram::PathMode::Pipelined);

    const Cycles lat = dev.accessLatency();
    const Cycles occ = dev.occupancyPerAccess();
    ASSERT_GT(occ, lat);

    // Completion math through the transaction API: done = start + OLAT;
    // the next submission is gated by the write-back tail, and a dummy
    // pays the identical schedule (indistinguishability).
    const auto c1 = dev.submit(0, timing::OramTransaction::real(3));
    EXPECT_EQ(c1.start, 0u);
    EXPECT_EQ(c1.done, lat);
    const auto c2 = dev.submit(c1.done, timing::OramTransaction::dummy());
    EXPECT_EQ(c2.start, occ);
    EXPECT_EQ(c2.done, occ + lat);
    EXPECT_EQ(c2.bytesMoved, c1.bytesMoved);
}

TEST(AsyncDevice, FunctionalPipelinedChargesLikeTimingPipelined)
{
    // The functional datapath is schedule-independent; only the
    // charging changes with the mode — and it must match the timing
    // device under the same seed, exactly as in sync mode.
    const auto cfg = tinyConfig();
    dram::DramModel mem_t{dram::DramConfig{}};
    dram::DramModel mem_f{dram::DramConfig{}};
    Rng rng_t(13), rng_f(13);
    oram::TimingOramDevice timing_dev(cfg, mem_t, rng_t,
                                      oram::PathMode::Pipelined);
    oram::FunctionalOramDevice func_dev(cfg, mem_f, rng_f, /*key_seed=*/5,
                                        /*cap=*/0,
                                        crypto::CryptoBackend::Auto,
                                        oram::PathMode::Pipelined);
    EXPECT_EQ(func_dev.accessLatency(), timing_dev.accessLatency());
    EXPECT_EQ(func_dev.occupancyPerAccess(),
              timing_dev.occupancyPerAccess());

    std::vector<std::uint8_t> payload(cfg.blockBytes, 0x5a);
    std::vector<std::uint8_t> out(cfg.blockBytes, 0);
    auto wr = timing::OramTransaction::real(9, /*is_write=*/true);
    wr.data = payload;
    const auto cw = func_dev.submit(0, wr);
    auto rd = timing::OramTransaction::real(9, /*is_write=*/false);
    rd.out = out;
    func_dev.submit(cw.done, rd);
    EXPECT_EQ(out, payload)
        << "pipelined charging must not disturb the datapath";
}

TEST(RecordingOramDevice, CapturesTheObservableStream)
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(4);
    oram::TimingOramDevice inner(tinyConfig(), mem, rng);
    timing::RecordingOramDevice dev(inner);

    const auto c1 = dev.submit(0, timing::OramTransaction::real(1));
    dev.submit(c1.done, timing::OramTransaction::dummy());
    ASSERT_EQ(dev.records().size(), 2u);
    EXPECT_EQ(dev.records()[0].kind, timing::OramTransaction::Kind::Real);
    EXPECT_EQ(dev.records()[1].kind, timing::OramTransaction::Kind::Dummy);
    EXPECT_EQ(dev.startCycles(),
              (std::vector<Cycles>{c1.start, c1.done}));
    EXPECT_EQ(dev.realAccesses(), 1u);
    EXPECT_EQ(dev.dummyAccesses(), 1u);
}

/**
 * The PR's headline equality: a whole SecureProcessor run — cycles,
 * IPC, power, leakage, every CSV column — is bit-identical whether the
 * timing model or the real functional datapath serves the accesses.
 */
TEST(DeviceEquality, FullRunStatsAreBitIdenticalAcrossDevices)
{
    std::vector<sim::SystemConfig> configs = {
        sim::SystemConfig::baseOram(),
        sim::SystemConfig::dynamicScheme(4, 4),
        sim::SystemConfig::staticScheme(600),
    };
    const auto prof = workload::specProfile("mcf");
    for (auto &cfg : configs) {
        cfg.oram = oram::OramConfig::benchConfig();
        cfg.epoch0 = Cycles{1} << 16;
        cfg.ipcWindow = 50'000;

        sim::SystemConfig cfg_t = cfg;
        cfg_t.oramDevice = "timing";
        sim::SystemConfig cfg_f = cfg;
        cfg_f.oramDevice = "functional";

        const auto rt = sim::runOne(cfg_t, prof, 60'000, 120'000);
        const auto rf = sim::runOne(cfg_f, prof, 60'000, 120'000);
        EXPECT_EQ(sim::csvRow(rt), sim::csvRow(rf))
            << cfg.name << ": functional device drifted from timing";
        EXPECT_EQ(rt.cryptoBytes, rf.cryptoBytes) << cfg.name;
        EXPECT_EQ(rt.cryptoCalls, rf.cryptoCalls) << cfg.name;
        EXPECT_EQ(rt.rateDecisions.size(), rf.rateDecisions.size())
            << cfg.name;
        for (std::size_t i = 0; i < rt.rateDecisions.size(); ++i)
            EXPECT_EQ(rt.rateDecisions[i].rate, rf.rateDecisions[i].rate)
                << cfg.name << " decision " << i;
    }
}
