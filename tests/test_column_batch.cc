/**
 * @file
 * Columnar stat-plane tests: schema-checked typed appends, the
 * order-key merge that makes serialization independent of chunk
 * (worker) assignment, byte-identity of the engine-built columnar CSV
 * against the historical per-row formatter across thread counts, and
 * the RingScheduler's per-(round, shard) telemetry pinned bit-
 * identical between 1 and N workers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/dram_model.hh"
#include "oram/oram_device.hh"
#include "oram/sharded_device.hh"
#include "sim/column_batch.hh"
#include "sim/experiment.hh"
#include "sim/experiment_engine.hh"
#include "sim/report.hh"
#include "sim/shard_worker.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"
#include "workload/spec_suite.hh"

namespace tcoram {
namespace {

// ---------------------------------------------------------------------
// Core mechanics.
// ---------------------------------------------------------------------

sim::ColumnSchema
toySchema()
{
    using enum sim::ColumnType;
    return {{{"name", Str}, {"count", U64}, {"ratio", F64}}};
}

TEST(ColumnBatch, SchemaHeaderAndTypedRows)
{
    sim::ColumnBatch batch(toySchema(), 1);
    EXPECT_EQ(batch.schema().headerCsv(), "name,count,ratio");

    sim::ColumnChunk &c = batch.chunk(0);
    c.beginRow(0);
    c.str("alpha");
    c.u64(7);
    c.f64(0.5);
    c.endRow();
    c.beginRow(1);
    c.str("beta");
    c.u64(1234567890123ull);
    c.f64(2.25);
    c.endRow();

    EXPECT_EQ(batch.rows(), 2u);
    EXPECT_EQ(batch.csv(), "name,count,ratio\n"
                           "alpha,7,0.5\n"
                           "beta,1234567890123,2.25\n");
}

TEST(ColumnBatch, MergeOrderIsKeyOrderNotChunkOrder)
{
    // Scatter rows 0..11 across 3 chunks in an adversarial pattern;
    // the serialized bytes must equal the single-chunk emission.
    auto append = [](sim::ColumnChunk &c, std::uint64_t key) {
        c.beginRow(key);
        c.str("r" + std::to_string(key));
        c.u64(key * 10);
        c.f64(static_cast<double>(key) / 4.0);
        c.endRow();
    };

    sim::ColumnBatch scattered(toySchema(), 3);
    const std::uint64_t assign[12] = {2, 0, 1, 1, 2, 0, 0, 2, 1, 0, 2, 1};
    // Append in reverse key order for good measure.
    for (std::uint64_t key = 12; key-- > 0;)
        append(scattered.chunk(assign[key]), key);

    sim::ColumnBatch single(toySchema(), 1);
    for (std::uint64_t key = 0; key < 12; ++key)
        append(single.chunk(0), key);

    EXPECT_EQ(scattered.csv(), single.csv());
}

// ---------------------------------------------------------------------
// The engine-built result plane: same bytes as the per-row formatter,
// whatever the thread count.
// ---------------------------------------------------------------------

TEST(ColumnBatch, ResultSchemaMatchesCsvHeader)
{
    EXPECT_EQ(sim::resultSchema().headerCsv(), sim::csvHeader());
}

TEST(ColumnBatch, EngineColumnsMatchPerRowFormatterAcrossThreads)
{
    std::vector<sim::SystemConfig> configs = {sim::SystemConfig::baseDram(),
                                              sim::SystemConfig::baseOram()};
    for (auto &c : configs) {
        c.oram.numBlocks = 1 << 12;
        c.epoch0 = 1 << 16;
        c.ipcWindow = 50'000;
    }
    const std::vector<workload::Profile> loads = {
        workload::specProfile("mcf"), workload::specProfile("hmmer")};

    const sim::Grid g1 = sim::ExperimentEngine(1).run(configs, loads, 60'000);
    const sim::Grid g4 = sim::ExperimentEngine(4).run(configs, loads, 60'000);
    ASSERT_NE(g1.columns, nullptr);
    ASSERT_NE(g4.columns, nullptr);
    EXPECT_EQ(g1.columns->rows(), configs.size() * loads.size());

    const std::string columnar = sim::toCsv(g1);
    EXPECT_EQ(sim::toCsv(g4), columnar) << "thread-count dependent bytes";

    // Legacy per-row path (hand-assembled grids) must agree.
    sim::Grid legacy = g1;
    legacy.columns = nullptr;
    EXPECT_EQ(sim::toCsv(legacy), columnar);
}

// ---------------------------------------------------------------------
// RingScheduler shard telemetry: raw typed appends on the dispatch
// path, merged to (round, shard) order — bit-identical between 1 and
// N workers like every other scheduler observable.
// ---------------------------------------------------------------------

std::string
runTelemetry(unsigned threads)
{
    oram::OramConfig c;
    c.numBlocks = 1 << 10;
    c.recursionLevels = 2;
    c.stashCapacity = 400;

    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(11);
    oram::OramDeviceSpec inner;
    oram::ShardedOramDevice dev(inner, c, /*shards=*/4, /*route_seed=*/5,
                                mem, rng, /*record=*/false);
    const timing::RateSet rates{std::vector<Cycles>{500}};
    const timing::EpochSchedule sched{Cycles{1} << 30, 2, Cycles{1} << 40};
    const timing::RateLearner learner{rates};
    protocol::LeakageParams params;
    params.rateCount = rates.size();

    sim::RingScheduler::Options o;
    o.lanes = 2;
    o.threads = threads;
    o.recordShardTelemetry = true;
    sim::RingScheduler rs(dev, rates, sched, learner, 500, params, o);

    for (std::uint32_t sid = 0; sid < 6; ++sid)
        rs.openSession(100 + sid, -1.0,
                       static_cast<std::uint16_t>(sid % 2));
    for (std::uint32_t sid = 0; sid < 6; ++sid)
        for (Cycles t = 0; t < 20'000; t += 700 + 100 * sid) {
            auto tok = rs.trySubmit(
                sid, t + 40 * sid,
                timing::OramTransaction::real((sid * 131 + t) % 1024));
            while (!tok) { // backpressure: pump, then resubmit
                rs.runUntilIdle();
                tok = rs.trySubmit(
                    sid, t + 40 * sid,
                    timing::OramTransaction::real((sid * 131 + t) % 1024));
            }
        }
    rs.runUntilIdle();
    return rs.telemetryCsv();
}

TEST(ColumnBatch, ShardTelemetryBitIdenticalAcrossWorkerCounts)
{
    const std::string one = runTelemetry(1);
    EXPECT_EQ(one.substr(0, one.find('\n')),
              sim::RingScheduler::shardTelemetrySchema().headerCsv());
    EXPECT_GT(std::count(one.begin(), one.end(), '\n'), 1)
        << "no telemetry rows recorded";
    EXPECT_EQ(runTelemetry(4), one);
}

} // namespace
} // namespace tcoram
