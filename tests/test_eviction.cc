/**
 * @file
 * Background eviction engine: policy parsing, the reverse-
 * lexicographic leaf schedule, debt/budget mechanics and policy
 * triggers, calibration equality with the pipelined controller,
 * deferred write-back charging at the controller, horizon-bounded gap
 * drains, the functional evictPath invariant, engine snapshot
 * round-trip/rejection, and the two observable regimes end-to-end:
 * wide rates keep streams bit-identical to eviction-off while
 * evictions fire, and burst backlogs drain at the read-phase period.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/bitutils.hh"
#include "common/rng.hh"
#include "common/serial.hh"
#include "dram/dram_model.hh"
#include "oram/eviction_engine.hh"
#include "oram/oram_controller.hh"
#include "oram/oram_device.hh"
#include "oram/path_oram.hh"
#include "oram/position_map.hh"
#include "sim/recovery_run.hh"
#include "sim/system_config.hh"

using namespace tcoram;

namespace {

oram::OramConfig
tinyConfig()
{
    oram::OramConfig c;
    c.numBlocks = 1 << 10;
    c.recursionLevels = 2;
    c.stashCapacity = 400;
    return c;
}

/** Calibrate @p e against a fresh DRAM model with a one-bucket read
 *  set — unit tests only exercise the debt/trigger mechanics, so any
 *  nonzero duration will do. */
void
calibrateTiny(oram::EvictionEngine &e)
{
    dram::DramModel mem{dram::DramConfig{}};
    const dram::MemRequest reads[] = {{0, 64, false}};
    e.calibrate(mem, reads);
}

} // namespace

// ---------------------------------------------------------------------
// Policy names and the leaf schedule
// ---------------------------------------------------------------------

TEST(EvictionPolicy, ParsesNamesAndRejectsUnknown)
{
    using oram::EvictionPolicy;
    EXPECT_EQ(oram::parseEvictionPolicy(""), EvictionPolicy::Off);
    EXPECT_EQ(oram::parseEvictionPolicy("off"), EvictionPolicy::Off);
    EXPECT_EQ(oram::parseEvictionPolicy("gap"), EvictionPolicy::Gap);
    EXPECT_EQ(oram::parseEvictionPolicy("highwater"),
              EvictionPolicy::HighWater);
    for (const auto p : {EvictionPolicy::Off, EvictionPolicy::Gap,
                         EvictionPolicy::HighWater})
        EXPECT_EQ(oram::parseEvictionPolicy(oram::evictionPolicyName(p)),
                  p);
    EXPECT_EXIT((void)oram::parseEvictionPolicy("bogus"),
                ::testing::ExitedWithCode(1), "bogus");
}

TEST(SystemConfigEviction, PolicyAndBudgetAreValidated)
{
    auto ok = sim::SystemConfig::dynamicScheme(4, 4);
    ok.dramMode = "async";
    ok.evictionPolicy = "gap";
    EXPECT_EQ(ok.evictionPolicyKind(), oram::EvictionPolicy::Gap);
    EXPECT_EQ(ok.evictionBudgetValue(), 64u);

    // Off (and empty) is valid under the sync default.
    auto off = sim::SystemConfig::dynamicScheme(4, 4);
    EXPECT_EQ(off.evictionPolicyKind(), oram::EvictionPolicy::Off);

    EXPECT_EXIT(
        {
            auto bad = sim::SystemConfig::dynamicScheme(4, 4);
            bad.evictionPolicy = "sideways";
            bad.evictionPolicyKind();
        },
        ::testing::ExitedWithCode(1), "evictionPolicy");
    EXPECT_EXIT(
        {
            auto bad = sim::SystemConfig::dynamicScheme(4, 4);
            bad.evictionPolicy = "gap"; // sync dramMode: no tail to defer
            bad.evictionPolicyKind();
        },
        ::testing::ExitedWithCode(1), "async");
    EXPECT_EXIT(
        {
            auto bad = sim::SystemConfig::dynamicScheme(4, 4);
            bad.dramMode = "async";
            bad.evictionPolicy = "gap";
            bad.evictionBudget = 0;
            bad.evictionBudgetValue();
        },
        ::testing::ExitedWithCode(1), "evictionBudget");
    EXPECT_EXIT(
        {
            auto bad = sim::SystemConfig::dynamicScheme(4, 4);
            bad.evictionBudget = sim::SystemConfig::kMaxEvictionBudget + 1;
            bad.evictionBudgetValue();
        },
        ::testing::ExitedWithCode(1), "evictionBudget");
}

TEST(EvictionEngine, ScheduleLeafIsAPermutationEachPeriod)
{
    // Over one period the bit-reversed counter must hit every leaf
    // exactly once, and consecutive evictions must land in opposite
    // halves of the tree (the reverse-lexicographic spread).
    const unsigned depth = 4;
    const std::uint64_t leaves = 1u << depth;
    std::set<Leaf> seen;
    for (std::uint64_t g = 0; g < leaves; ++g) {
        const Leaf l = oram::EvictionEngine::scheduleLeaf(g, depth, leaves);
        ASSERT_LT(l, leaves);
        seen.insert(l);
    }
    EXPECT_EQ(seen.size(), leaves);
    EXPECT_EQ(oram::EvictionEngine::scheduleLeaf(0, depth, leaves), 0u);
    EXPECT_EQ(oram::EvictionEngine::scheduleLeaf(1, depth, leaves),
              leaves / 2);
    // The schedule is periodic in the counter.
    for (std::uint64_t g = 0; g < 8; ++g)
        EXPECT_EQ(oram::EvictionEngine::scheduleLeaf(g + leaves, depth,
                                                     leaves),
                  oram::EvictionEngine::scheduleLeaf(g, depth, leaves));
}

TEST(BitUtils, BitReverseKnownValues)
{
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b110, 3), 0b011u);
    EXPECT_EQ(bitReverse(0b1011, 4), 0b1101u);
    for (std::uint64_t v = 0; v < 64; ++v)
        EXPECT_EQ(bitReverse(bitReverse(v, 6), 6), v);
}

// ---------------------------------------------------------------------
// Engine mechanics
// ---------------------------------------------------------------------

TEST(EvictionEngine, DebtBudgetAndGapTrigger)
{
    oram::EvictionEngine e({oram::EvictionPolicy::Gap, 3});
    calibrateTiny(e);
    EXPECT_TRUE(e.enabled());
    EXPECT_FALSE(e.wantsEviction()) << "no debt, nothing to drain";
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(e.canDefer());
        e.deferWriteback();
    }
    EXPECT_FALSE(e.canDefer()) << "budget saturated";
    EXPECT_EQ(e.debt(), 3u);
    EXPECT_EQ(e.highWaterDebt(), 3u);
    EXPECT_TRUE(e.wantsEviction());
    EXPECT_EQ(e.issueEviction(), 0u);
    EXPECT_EQ(e.issueEviction(), 1u);
    EXPECT_EQ(e.debt(), 1u);
    EXPECT_EQ(e.evictionsIssued(), 2u);
    EXPECT_TRUE(e.canDefer()) << "issuing evictions frees budget";
    EXPECT_EQ(e.highWaterDebt(), 3u) << "high water never recedes";
}

TEST(EvictionEngine, HighWaterTriggersAtHalfTheBudget)
{
    oram::EvictionEngine e({oram::EvictionPolicy::HighWater, 8});
    for (int i = 0; i < 3; ++i)
        e.deferWriteback();
    EXPECT_FALSE(e.wantsEviction()) << "below budget/2";
    e.deferWriteback();
    EXPECT_TRUE(e.wantsEviction()) << "at budget/2";

    // Budget 1 degenerates to the gap trigger (threshold max(1, 0)).
    oram::EvictionEngine tiny({oram::EvictionPolicy::HighWater, 1});
    EXPECT_FALSE(tiny.wantsEviction());
    tiny.deferWriteback();
    EXPECT_TRUE(tiny.wantsEviction());
}

TEST(EvictionEngine, OffOrZeroBudgetIsDisabled)
{
    EXPECT_FALSE(oram::EvictionEngine{}.enabled());
    EXPECT_FALSE(
        oram::EvictionEngine({oram::EvictionPolicy::Off, 64}).enabled());
    EXPECT_FALSE(
        oram::EvictionEngine({oram::EvictionPolicy::Gap, 0}).enabled());
    oram::EvictionEngine off;
    EXPECT_FALSE(off.canDefer());
    EXPECT_FALSE(off.wantsEviction());
}

TEST(EvictionEngine, SnapshotRoundTripsAndRejectsConfigMismatch)
{
    oram::EvictionEngine e({oram::EvictionPolicy::Gap, 8});
    calibrateTiny(e);
    for (int i = 0; i < 5; ++i)
        e.deferWriteback();
    e.issueEviction();
    e.issueEviction();
    ByteWriter w;
    e.saveState(w);

    oram::EvictionEngine twin({oram::EvictionPolicy::Gap, 8});
    calibrateTiny(twin);
    ByteReader r(w.data());
    twin.restoreState(r);
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(twin.debt(), e.debt());
    EXPECT_EQ(twin.highWaterDebt(), e.highWaterDebt());
    EXPECT_EQ(twin.evictionsIssued(), e.evictionsIssued());

    // A snapshot from one eviction configuration must not restore under
    // another — silently resuming with a different budget would shift
    // the deferral pattern mid-stream.
    EXPECT_DEATH(
        {
            oram::EvictionEngine other({oram::EvictionPolicy::Gap, 4});
            ByteReader rr(w.data());
            other.restoreState(rr);
        },
        "budget");
    EXPECT_DEATH(
        {
            oram::EvictionEngine other(
                {oram::EvictionPolicy::HighWater, 8});
            ByteReader rr(w.data());
            other.restoreState(rr);
        },
        "policy");
}

// ---------------------------------------------------------------------
// Controller integration
// ---------------------------------------------------------------------

TEST(OramControllerEviction, CalibrationMatchesThePipelinedOccupancy)
{
    // An eviction replays the same transaction set as an access, so it
    // must occupy the path for exactly occupancyPerAccess() — the
    // indistinguishability anchor.
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(7);
    oram::OramController ctrl(tinyConfig(), mem, rng,
                              oram::PathMode::Pipelined,
                              {oram::EvictionPolicy::Gap, 8});
    EXPECT_GT(ctrl.occupancyPerAccess(), ctrl.accessLatency());
    EXPECT_EQ(ctrl.evictionEngine().evictionDuration(),
              ctrl.occupancyPerAccess());
}

TEST(OramControllerEviction, EnablingTheEngineDoesNotShiftCalibration)
{
    // The engine calibrates by replaying the SAME read set against
    // reset bank timing: latency/occupancy and all later RNG draws are
    // identical with and without it.
    dram::DramModel mem_off{dram::DramConfig{}};
    dram::DramModel mem_on{dram::DramConfig{}};
    Rng rng_off(7), rng_on(7);
    oram::OramController off(tinyConfig(), mem_off, rng_off,
                             oram::PathMode::Pipelined);
    oram::OramController on(tinyConfig(), mem_on, rng_on,
                            oram::PathMode::Pipelined,
                            {oram::EvictionPolicy::Gap, 8});
    EXPECT_EQ(on.accessLatency(), off.accessLatency());
    EXPECT_EQ(on.occupancyPerAccess(), off.occupancyPerAccess());
    EXPECT_EQ(rng_on.next(), rng_off.next())
        << "engine calibration must not consume RNG draws";
}

TEST(OramControllerEviction, DeferralChargesReadPhaseUntilSaturation)
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(7);
    oram::OramController ctrl(tinyConfig(), mem, rng,
                              oram::PathMode::Pipelined,
                              {oram::EvictionPolicy::Gap, 2});
    const Cycles lat = ctrl.accessLatency();
    const Cycles occ = ctrl.occupancyPerAccess();

    // Two accesses fit the budget: each occupies only its read phase.
    EXPECT_EQ(ctrl.access(0), lat);
    EXPECT_EQ(ctrl.busyUntil(), lat);
    EXPECT_EQ(ctrl.dummyAccess(0), lat + lat)
        << "dummies defer identically to reals";
    EXPECT_EQ(ctrl.busyUntil(), 2 * lat);
    EXPECT_EQ(ctrl.stashOccupancy(), ctrl.stashHighWater());
    EXPECT_GT(ctrl.stashOccupancy(), 0u);

    // Budget saturated: the third access pays full occupancy again.
    ctrl.access(0);
    EXPECT_EQ(ctrl.busyUntil(), 2 * lat + occ);
}

TEST(OramControllerEviction, MaybeEvictDrainsOnlyWhatFitsTheHorizon)
{
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(7);
    oram::OramController ctrl(tinyConfig(), mem, rng,
                              oram::PathMode::Pipelined,
                              {oram::EvictionPolicy::Gap, 8});
    const Cycles d = ctrl.evictionEngine().evictionDuration();
    for (int i = 0; i < 4; ++i)
        ctrl.access(0);
    ASSERT_EQ(ctrl.evictionEngine().debt(), 4u);
    const Cycles busy = ctrl.busyUntil();

    // Room for exactly two evictions; the third would overrun.
    const auto c = ctrl.maybeEvict(busy + 2 * d + d / 2);
    EXPECT_EQ(c.evictions, 2u);
    EXPECT_EQ(c.firstSchedule, 0u);
    EXPECT_EQ(ctrl.busyUntil(), busy + 2 * d)
        << "evictions occupy the path like accesses";
    EXPECT_EQ(ctrl.evictionEngine().debt(), 2u);
    EXPECT_EQ(c.bytesMoved, 2 * ctrl.bytesPerAccess());
    EXPECT_EQ(c.cryptoBytes, 2 * ctrl.bytesPerAccess());
    EXPECT_EQ(c.cryptoCalls, 2 * ctrl.cryptoCallsPerAccess());
    EXPECT_EQ(ctrl.blocksEvicted(),
              2 * ctrl.stashOccupancy() / ctrl.evictionEngine().debt());

    // No room at all: a no-op, not a partial charge.
    const auto none = ctrl.maybeEvict(ctrl.busyUntil() + d - 1);
    EXPECT_EQ(none.evictions, 0u);

    // Second drain continues the schedule counter.
    const auto more = ctrl.maybeEvict(ctrl.busyUntil() + 4 * d);
    EXPECT_EQ(more.evictions, 2u);
    EXPECT_EQ(more.firstSchedule, 2u);
    EXPECT_EQ(ctrl.evictionEngine().debt(), 0u);
}

// ---------------------------------------------------------------------
// Functional realization
// ---------------------------------------------------------------------

TEST(PathOramEviction, EvictPathPreservesEveryBlock)
{
    oram::OramConfig c;
    c.numBlocks = 256;
    c.recursionLevels = 0;
    c.stashCapacity = 400;
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram oram(c, map, 5);

    std::vector<std::vector<std::uint8_t>> payloads;
    for (std::uint64_t id = 0; id < 64; ++id) {
        std::vector<std::uint8_t> p(c.blockBytes);
        for (std::size_t i = 0; i < p.size(); ++i)
            p[i] = static_cast<std::uint8_t>(id * 31 + i);
        oram.access(id, oram::Op::Write, p);
        payloads.push_back(std::move(p));
    }
    // Evict every leaf once on the reverse-lexicographic schedule; the
    // position map is untouched, so every block must still be readable.
    for (std::uint64_t g = 0; g < c.numLeaves(); ++g)
        oram.evictPath(oram::EvictionEngine::scheduleLeaf(
            g, c.treeDepth(), c.numLeaves()));
    EXPECT_EQ(oram.evictionCount(), c.numLeaves());
    for (std::uint64_t id = 0; id < 64; ++id)
        EXPECT_EQ(oram.access(id, oram::Op::Read), payloads[id]) << id;
}

TEST(PathOramEviction, BackgroundEvictDrainsAnOverfullStash)
{
    // Force stash pressure (tiny Z would be ideal; here we just fill),
    // then background-evict and watch the real stash counters move.
    oram::OramConfig c;
    c.numBlocks = 512;
    c.recursionLevels = 1;
    c.stashCapacity = 600;
    dram::DramModel mem{dram::DramConfig{}};
    Rng rng(3);
    oram::FunctionalOramDevice dev(c, mem, rng, /*key_seed=*/9,
                                   /*block_cap=*/0,
                                   crypto::CryptoBackend::Auto,
                                   oram::PathMode::Pipelined,
                                   {oram::EvictionPolicy::Gap, 16});
    Cycles t = 0;
    for (std::uint64_t id = 0; id < 32; ++id)
        t = dev.submit(t, timing::OramTransaction::real(id, id % 2)).done;
    ASSERT_GT(dev.stashOccupancy(), 0u) << "deferrals must accumulate";

    // Hand the device an eviction window big enough for the debt.
    const auto e = dev.maybeEvict(t + 40 * dev.occupancyPerAccess());
    EXPECT_GT(e.evictions, 0u);
    EXPECT_EQ(dev.stashOccupancy(), 0u);
    EXPECT_GT(dev.blocksEvicted(), 0u);
    EXPECT_EQ(dev.evictionsIssued(), e.evictions);

    // The datapath survived: blocks still round-trip.
    std::vector<std::uint8_t> out(c.blockBytes, 0);
    for (std::uint64_t id = 0; id < 32; ++id) {
        auto rd = timing::OramTransaction::real(id, false);
        rd.out = out;
        t = dev.submit(t, rd).done;
    }
    EXPECT_EQ(dev.realAccesses(), 64u);
}

// ---------------------------------------------------------------------
// End-to-end regimes (RecoveryRun, pipelined, recorded streams)
// ---------------------------------------------------------------------

namespace {

sim::RecoveryRunConfig
pipelinedConfig(Cycles rate, oram::EvictionPolicy policy,
                std::uint32_t budget)
{
    sim::RecoveryRunConfig cfg;
    cfg.deviceKind = "timing";
    cfg.shards = 1;
    cfg.sessions = 2;
    cfg.txnsPerSession = 24;
    cfg.seed = 42;
    cfg.rate = rate;
    cfg.pathMode = oram::PathMode::Pipelined;
    cfg.evictionPolicy = policy;
    cfg.evictionBudget = budget;
    return cfg;
}

} // namespace

TEST(EvictionRegimes, WideRateKeepsTheStreamBitIdenticalWhileEvicting)
{
    // When rate + latency >= occupancy the deferral never moves any
    // slot: the engine-on stream must equal the engine-off stream BIT
    // FOR BIT while evictions fire in the gaps. This is the unchanged-
    // observable-rate half of the tentpole claim.
    Cycles occupancy = 0;
    {
        sim::RecoveryRun probe(
            pipelinedConfig(1000, oram::EvictionPolicy::Off, 0));
        occupancy = probe.device().shard(0).occupancyPerAccess();
        ASSERT_GT(occupancy, 0u);
    }
    const Cycles rate = occupancy; // comfortably in the wide regime

    sim::RecoveryRun off(pipelinedConfig(rate, oram::EvictionPolicy::Off,
                                         0));
    off.start();
    off.finish();

    for (const auto policy :
         {oram::EvictionPolicy::Gap, oram::EvictionPolicy::HighWater}) {
        sim::RecoveryRun on(pipelinedConfig(rate, policy, 16));
        on.start();
        on.finish();
        EXPECT_GT(on.evictionsIssued(), 0u)
            << oram::evictionPolicyName(policy);
        EXPECT_TRUE(on.shardStream(0) == off.shardStream(0))
            << oram::evictionPolicyName(policy)
            << ": eviction shifted the observable stream";
        EXPECT_EQ(on.lastRealCompletion(), off.lastRealCompletion());
    }
}

TEST(EvictionRegimes, BurstBacklogDrainsAtTheReadPhasePeriod)
{
    // Saturating regime: the rate is far below the write-back tail, so
    // the eviction-off run is occupancy-bound while the engine-on run
    // serves every slot after just the read phase — strictly faster,
    // still exactly periodic.
    const Cycles rate = 64;
    sim::RecoveryRun off(pipelinedConfig(rate, oram::EvictionPolicy::Off,
                                         0));
    off.start();
    off.finish();

    sim::RecoveryRun on(
        pipelinedConfig(rate, oram::EvictionPolicy::Gap, 1u << 12));
    on.start();
    on.finish();
    EXPECT_LT(on.lastRealCompletion(), off.lastRealCompletion())
        << "deferred write-back must beat the occupancy-bound run";

    const auto &dev = on.device().shard(0);
    ASSERT_LT(rate + dev.accessLatency(), dev.occupancyPerAccess())
        << "the case must actually sit in the saturating regime";
    EXPECT_GT(dev.stashOccupancy(), 0u)
        << "the backlog's tails are parked in the stash";
    EXPECT_EQ(dev.stashHighWater(), dev.stashOccupancy());

    // Exactly periodic at rate + OLAT: every inter-start gap equal.
    const auto stream = on.shardStream(0);
    ASSERT_GE(stream.size(), 10u);
    const Cycles period = rate + dev.accessLatency();
    for (std::size_t j = 1; j < stream.size(); ++j)
        ASSERT_EQ(stream[j].start - stream[j - 1].start, period)
            << "gap " << j;

    // The occupancy-bound reference is slower per slot.
    const auto slow = off.shardStream(0);
    ASSERT_GE(slow.size(), 2u);
    EXPECT_EQ(slow[1].start - slow[0].start,
              dev.occupancyPerAccess());
}
