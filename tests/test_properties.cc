/**
 * @file
 * Property-based tests (parameterized sweeps) over the system's core
 * invariants: Path ORAM data integrity and stash boundedness across
 * geometries, enforcement periodicity across rates, learner
 * discretization closure, and leakage monotonicity.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "dram/dram_model.hh"
#include "oram/integrity.hh"
#include "oram/path_oram.hh"
#include "timing/epoch_schedule.hh"
#include "timing/leakage.hh"
#include "timing/rate_enforcer.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"
#include "timing/trace_count.hh"

namespace tcoram {
namespace {

// ---------------------------------------------------------------------
// Path ORAM invariants across geometry (Z, block count).
// ---------------------------------------------------------------------

struct OramGeom
{
    std::uint64_t blocks;
    unsigned z;
};

class OramProperty : public ::testing::TestWithParam<OramGeom>
{
};

TEST_P(OramProperty, DataIntegrityUnderChurn)
{
    const OramGeom g = GetParam();
    oram::OramConfig c;
    c.numBlocks = g.blocks;
    c.z = g.z;
    c.recursionLevels = 0;
    c.stashCapacity = 600;
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram o(c, map, g.blocks * 31 + g.z);

    const std::uint64_t live = std::min<std::uint64_t>(g.blocks, 48);
    std::vector<std::vector<std::uint8_t>> shadow(live);
    Rng rng(g.blocks ^ g.z);
    for (BlockId id = 0; id < live; ++id) {
        shadow[id].assign(c.blockBytes, static_cast<std::uint8_t>(id));
        o.access(id, oram::Op::Write, shadow[id]);
    }
    for (int round = 0; round < 300; ++round) {
        const BlockId id = rng.nextBounded(live);
        if (rng.nextBool(0.4)) {
            shadow[id][round % c.blockBytes] =
                static_cast<std::uint8_t>(round);
            o.access(id, oram::Op::Write, shadow[id]);
        } else {
            ASSERT_EQ(o.access(id, oram::Op::Read), shadow[id])
                << "geometry blocks=" << g.blocks << " z=" << g.z;
        }
    }
}

TEST_P(OramProperty, StashStaysBounded)
{
    const OramGeom g = GetParam();
    oram::OramConfig c;
    c.numBlocks = g.blocks;
    c.z = g.z;
    c.recursionLevels = 0;
    c.stashCapacity = 600;
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram o(c, map, g.blocks * 7 + g.z);

    const std::uint64_t live = std::min<std::uint64_t>(g.blocks / 2, 64);
    Rng rng(g.z * 1000 + 5);
    for (BlockId id = 0; id < live; ++id)
        o.access(id, oram::Op::Write,
                 std::vector<std::uint8_t>(c.blockBytes, 1));
    for (int round = 0; round < 500; ++round)
        o.access(rng.nextBounded(live), oram::Op::Read);

    // Path ORAM's stash stays small relative to capacity (Z >= 2 at
    // 50% tree load). High-water beyond ~half capacity would signal a
    // broken eviction policy.
    EXPECT_LT(o.stash().highWater(), 300u)
        << "blocks=" << g.blocks << " z=" << g.z;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, OramProperty,
    ::testing::Values(OramGeom{64, 2}, OramGeom{64, 3}, OramGeom{64, 4},
                      OramGeom{256, 2}, OramGeom{256, 3},
                      OramGeom{256, 4}, OramGeom{1024, 3},
                      OramGeom{1024, 5}));

// ---------------------------------------------------------------------
// Enforcement periodicity across rates and latencies.
// ---------------------------------------------------------------------

struct EnforceParams
{
    Cycles rate;
    Cycles olat;
};

class EnforcerProperty : public ::testing::TestWithParam<EnforceParams>
{
  protected:
    class Device : public timing::OramDeviceIf
    {
      public:
        explicit Device(Cycles lat) : lat_(lat) {}
        timing::OramCompletion
        submit(Cycles now, const timing::OramTransaction &) override
        {
            starts_.push_back(now);
            return {now, now + lat_, 0, 0, 0};
        }
        Cycles accessLatency() const override { return lat_; }
        std::vector<Cycles> starts_;

      private:
        Cycles lat_;
    };
};

TEST_P(EnforcerProperty, GapsAreExactlyPeriodic)
{
    const auto [rate, olat] = GetParam();
    Device dev(olat);
    timing::RateSet r(std::vector<Cycles>{rate});
    timing::EpochSchedule e(Cycles{1} << 40, 2, Cycles{1} << 50);
    timing::RateLearner learner(r);
    timing::RateEnforcer enf(dev, r, e, learner, rate);

    // Mixed demand: some immediate, some sparse.
    Rng rng(rate + olat);
    Cycles t = 0;
    for (int i = 0; i < 40; ++i) {
        t = enf.serveReal(t + rng.nextBounded(3 * (rate + olat)));
    }
    enf.drainUntil(t + 10 * (rate + olat));

    ASSERT_GE(dev.starts_.size(), 40u);
    for (std::size_t i = 1; i < dev.starts_.size(); ++i)
        ASSERT_EQ(dev.starts_[i] - dev.starts_[i - 1], rate + olat)
            << "rate=" << rate << " olat=" << olat << " i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Rates, EnforcerProperty,
    ::testing::Values(EnforceParams{256, 1488}, EnforceParams{300, 1488},
                      EnforceParams{500, 1488}, EnforceParams{1300, 1488},
                      EnforceParams{6501, 1488},
                      EnforceParams{32768, 1488}, EnforceParams{100, 10},
                      EnforceParams{1, 1}));

// ---------------------------------------------------------------------
// Learner discretization closure: predictions always land in R.
// ---------------------------------------------------------------------

class LearnerProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LearnerProperty, NextRateAlwaysInSet)
{
    timing::RateSet r(GetParam());
    timing::RateLearner learner(r);
    Rng rng(GetParam() * 77);
    for (int trial = 0; trial < 300; ++trial) {
        timing::PerfCounters pc;
        const int accesses = static_cast<int>(rng.nextBounded(1000));
        for (int i = 0; i < accesses; ++i)
            pc.noteRealAccess(rng.nextBounded(3000));
        pc.noteWaste(rng.nextBounded(1'000'000));
        const Cycles rate =
            learner.nextRate(1 + rng.nextBounded(1u << 30), pc);
        EXPECT_NO_FATAL_FAILURE(r.indexOf(rate));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LearnerProperty,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// ---------------------------------------------------------------------
// Leakage monotonicity sweeps.
// ---------------------------------------------------------------------

class LeakageProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LeakageProperty, MoreRatesNeverLeakLess)
{
    const unsigned growth = GetParam();
    double prev = 0.0;
    for (std::size_t rates : {1u, 2u, 4u, 8u, 16u}) {
        const double bits =
            timing::LeakageAccountant::paperConfigBits(rates, growth);
        EXPECT_GE(bits, prev);
        prev = bits;
    }
}

TEST_P(LeakageProperty, FasterGrowthNeverLeaksMore)
{
    const unsigned growth = GetParam();
    if (growth >= 16)
        return;
    EXPECT_GE(timing::LeakageAccountant::paperConfigBits(4, growth),
              timing::LeakageAccountant::paperConfigBits(4, growth * 2));
}

INSTANTIATE_TEST_SUITE_P(Growths, LeakageProperty,
                         ::testing::Values(2, 4, 8, 16));

// ---------------------------------------------------------------------
// Epoch schedule properties.
// ---------------------------------------------------------------------

class ScheduleProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ScheduleProperty, EpochLengthsGrowGeometrically)
{
    const unsigned g = GetParam();
    timing::EpochSchedule e(1 << 10, g, Cycles{1} << 50);
    for (unsigned i = 0; i + 1 < 8; ++i)
        EXPECT_EQ(e.epochLength(i + 1), e.epochLength(i) * g);
}

TEST_P(ScheduleProperty, EpochAtIsConsistentWithStarts)
{
    const unsigned g = GetParam();
    timing::EpochSchedule e(1000, g, Cycles{1} << 40);
    Rng rng(g);
    for (int trial = 0; trial < 200; ++trial) {
        const Cycles t = rng.nextBounded(1u << 30);
        const unsigned i = e.epochAt(t);
        EXPECT_LE(e.epochStart(i), t);
        EXPECT_LT(t, e.epochStart(i) + e.epochLength(i));
    }
}

INSTANTIATE_TEST_SUITE_P(Growths, ScheduleProperty,
                         ::testing::Values(2, 3, 4, 8, 16));

// ---------------------------------------------------------------------
// Cache invariants across geometry and replacement policy.
// ---------------------------------------------------------------------

struct CacheGeom
{
    std::uint64_t sizeBytes;
    unsigned ways;
    cache::Replacement policy;
};

class CacheProperty : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheProperty, InsertedLinesHitUntilEvicted)
{
    const CacheGeom g = GetParam();
    cache::CacheConfig cfg;
    cfg.sizeBytes = g.sizeBytes;
    cfg.ways = g.ways;
    cfg.replacement = g.policy;
    cache::Cache c(cfg);
    Rng rng(g.sizeBytes + g.ways);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.nextBounded(4096) * 64;
        c.access(a, rng.nextBool(0.3));
        ASSERT_TRUE(c.contains(a));
        ASSERT_TRUE(c.access(a, false).hit);
    }
    // Counter consistency.
    EXPECT_EQ(c.hits() + c.misses(), 4000u);
}

TEST_P(CacheProperty, WritebackOnlyForDirtyLines)
{
    const CacheGeom g = GetParam();
    cache::CacheConfig cfg;
    cfg.sizeBytes = g.sizeBytes;
    cfg.ways = g.ways;
    cfg.replacement = g.policy;
    cache::Cache c(cfg);
    Rng rng(g.ways * 977);
    std::set<Addr> dirtied;
    for (int i = 0; i < 3000; ++i) {
        const Addr a = rng.nextBounded(8192) * 64;
        const bool is_write = rng.nextBool(0.25);
        const auto r = c.access(a, is_write);
        if (r.writeback) {
            // Only lines that were written may come back dirty.
            ASSERT_TRUE(dirtied.count(r.victimAddr))
                << "clean line written back";
            dirtied.erase(r.victimAddr);
        }
        if (is_write)
            dirtied.insert(a & ~Addr{63});
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(
        CacheGeom{1024, 2, cache::Replacement::Lru},
        CacheGeom{1024, 2, cache::Replacement::Fifo},
        CacheGeom{1024, 2, cache::Replacement::Random},
        CacheGeom{8192, 4, cache::Replacement::Lru},
        CacheGeom{8192, 8, cache::Replacement::Random},
        CacheGeom{65536, 16, cache::Replacement::Lru}));

// ---------------------------------------------------------------------
// DRAM timing sanity across configurations.
// ---------------------------------------------------------------------

class DramProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DramProperty, CompletionsNeverBeforeArrival)
{
    dram::DramConfig cfg;
    cfg.channels = GetParam();
    dram::DramModel m(cfg);
    Rng rng(GetParam());
    Cycles now = 0;
    for (int i = 0; i < 2000; ++i) {
        now += rng.nextBounded(50);
        const Cycles done =
            m.access(now, {rng.nextBounded(1u << 28) & ~63ull, 64,
                           rng.nextBool(0.3)});
        ASSERT_GT(done, now);
    }
}

TEST_P(DramProperty, MoreChannelsNeverSlower)
{
    dram::DramConfig narrow;
    narrow.channels = 1;
    dram::DramConfig wide;
    wide.channels = GetParam();
    if (wide.channels < 2)
        return;
    dram::DramModel m1(narrow), mw(wide);
    auto run = [](dram::DramModel &m) {
        Cycles done = 0;
        for (int i = 0; i < 400; ++i)
            done = std::max(done,
                            m.access(0, {static_cast<Addr>(i) * 64, 64,
                                         false}));
        return done;
    };
    EXPECT_LE(run(mw), run(m1));
}

INSTANTIATE_TEST_SUITE_P(Channels, DramProperty,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------
// Integrity holds across tree shapes.
// ---------------------------------------------------------------------

class IntegrityProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IntegrityProperty, CommitVerifyRoundTripsEverywhere)
{
    oram::OramConfig c;
    c.numBlocks = GetParam();
    c.recursionLevels = 0;
    c.stashCapacity = 600;
    oram::FlatPositionMap map(c.numBlocks);
    oram::PathOram o(c, map, GetParam() * 13);
    oram::IntegrityVerifier iv(o);
    Rng rng(GetParam());
    for (int i = 0; i < 60; ++i) {
        const BlockId id = rng.nextBounded(c.numBlocks);
        ASSERT_TRUE(iv.verifyPath(map.get(id)));
        o.access(id, oram::Op::Read);
        // The rewritten path is the accessed leaf's (first touches
        // substitute a uniform leaf for the unmaterialized label).
        const Leaf path = o.lastAccessedLeaf();
        iv.commitPath(path);
        ASSERT_TRUE(iv.verifyPath(path));
    }
    // Any single tamper is caught on its own path.
    const std::uint64_t victim = rng.nextBounded(c.numBuckets());
    o.tamperCiphertext(victim, 3);
    // Find a leaf whose path includes the victim.
    bool caught = false;
    for (Leaf leaf = 0; leaf < c.numLeaves(); ++leaf) {
        for (unsigned l = 0; l <= c.treeDepth(); ++l) {
            if (o.bucketIndexOnPath(leaf, l) == victim) {
                caught = !iv.verifyPath(leaf);
                break;
            }
        }
        if (caught)
            break;
    }
    EXPECT_TRUE(caught);
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, IntegrityProperty,
                         ::testing::Values(32, 64, 256, 1024));

// ---------------------------------------------------------------------
// Exact trace count vs bound, randomized.
// ---------------------------------------------------------------------

class TraceCountProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TraceCountProperty, ExactAtMostBoundAndMonotone)
{
    const std::size_t rates = GetParam();
    Rng rng(rates * 31);
    for (int trial = 0; trial < 30; ++trial) {
        const Cycles epoch0 = 100 + rng.nextBounded(10'000);
        const unsigned growth = 2 + rng.nextBounded(6);
        const timing::EpochSchedule e(epoch0, growth, Cycles{1} << 40);
        const Cycles t1 = 1 + rng.nextBounded(1u << 24);
        const Cycles t2 = t1 + 1 + rng.nextBounded(1u << 24);
        const double b1 = timing::exactTraceBits(e, rates, t1);
        const double b2 = timing::exactTraceBits(e, rates, t2);
        ASSERT_LE(b1, timing::boundTraceBits(e, rates, t1) + 1e-9);
        ASSERT_LE(b1, b2 + 1e-9) << "trace count must grow with time";
    }
}

INSTANTIATE_TEST_SUITE_P(RateCounts, TraceCountProperty,
                         ::testing::Values(1, 2, 4, 16));

} // namespace
} // namespace tcoram
