#include "crypto/aes128.hh"

#include "common/log.hh"

namespace tcoram::crypto {

namespace {

/**
 * S-box and encryption T-tables, generated at startup from the
 * GF(2^8) inverse. Te0[x] packs the MixColumns products of S[x] as a
 * big-endian word {02·S, S, S, 03·S}; Te1..Te3 are byte rotations of
 * Te0, so one AES round over a column is four lookups and four XORs.
 */
struct SboxTables
{
    std::array<std::uint8_t, 256> sbox;
    std::array<std::uint8_t, 256> inv;
    std::array<std::uint32_t, 256> te0;
    std::array<std::uint32_t, 256> te1;
    std::array<std::uint32_t, 256> te2;
    std::array<std::uint32_t, 256> te3;

    SboxTables()
    {
        // Build log/antilog tables over GF(2^8) with generator 3.
        std::array<std::uint8_t, 256> exp{};
        std::array<std::uint8_t, 256> log{};
        std::uint8_t x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = x;
            log[x] = static_cast<std::uint8_t>(i);
            // multiply x by 3 in GF(2^8)
            std::uint8_t hi = static_cast<std::uint8_t>(x & 0x80);
            std::uint8_t x2 = static_cast<std::uint8_t>(x << 1);
            if (hi)
                x2 ^= 0x1b;
            x = static_cast<std::uint8_t>(x2 ^ x);
        }
        exp[255] = exp[0];

        for (int i = 0; i < 256; ++i) {
            std::uint8_t inv_i =
                (i == 0) ? 0 : exp[255 - log[static_cast<std::uint8_t>(i)]];
            // Affine transform.
            std::uint8_t s = inv_i;
            std::uint8_t r = 0x63;
            for (int b = 0; b < 8; ++b) {
                std::uint8_t bit = static_cast<std::uint8_t>(
                    ((s >> b) ^ (s >> ((b + 4) & 7)) ^ (s >> ((b + 5) & 7)) ^
                     (s >> ((b + 6) & 7)) ^ (s >> ((b + 7) & 7))) &
                    1);
                r ^= static_cast<std::uint8_t>(bit << b);
            }
            sbox[i] = r;
        }
        for (int i = 0; i < 256; ++i)
            inv[sbox[i]] = static_cast<std::uint8_t>(i);

        for (int i = 0; i < 256; ++i) {
            const std::uint8_t s = sbox[i];
            const std::uint8_t s2 = static_cast<std::uint8_t>(
                (s << 1) ^ ((s & 0x80) ? 0x1b : 0x00));
            const std::uint8_t s3 = static_cast<std::uint8_t>(s2 ^ s);
            const std::uint32_t w = (static_cast<std::uint32_t>(s2) << 24) |
                                    (static_cast<std::uint32_t>(s) << 16) |
                                    (static_cast<std::uint32_t>(s) << 8) |
                                    static_cast<std::uint32_t>(s3);
            te0[i] = w;
            te1[i] = (w >> 8) | (w << 24);
            te2[i] = (w >> 16) | (w << 16);
            te3[i] = (w >> 24) | (w << 8);
        }
    }
};

const SboxTables &
tables()
{
    static const SboxTables t;
    return t;
}

std::uint8_t
xtime(std::uint8_t a)
{
    return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        a = xtime(a);
        b >>= 1;
    }
    return p;
}

std::uint32_t
subWord(std::uint32_t w)
{
    const auto &t = tables().sbox;
    return (static_cast<std::uint32_t>(t[(w >> 24) & 0xff]) << 24) |
           (static_cast<std::uint32_t>(t[(w >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(t[(w >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(t[w & 0xff]);
}

std::uint32_t
rotWord(std::uint32_t w)
{
    return (w << 8) | (w >> 24);
}

using State = std::array<std::uint8_t, 16>;

void
addRoundKey(State &s, const std::uint32_t *rk)
{
    for (int c = 0; c < 4; ++c) {
        const std::uint32_t w = rk[c];
        s[4 * c + 0] ^= static_cast<std::uint8_t>(w >> 24);
        s[4 * c + 1] ^= static_cast<std::uint8_t>(w >> 16);
        s[4 * c + 2] ^= static_cast<std::uint8_t>(w >> 8);
        s[4 * c + 3] ^= static_cast<std::uint8_t>(w);
    }
}

void
subBytes(State &s)
{
    const auto &t = tables().sbox;
    for (auto &b : s)
        b = t[b];
}

void
invSubBytes(State &s)
{
    const auto &t = tables().inv;
    for (auto &b : s)
        b = t[b];
}

void
shiftRows(State &s)
{
    State o = s;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[4 * c + r] = o[4 * ((c + r) & 3) + r];
}

void
invShiftRows(State &s)
{
    State o = s;
    for (int r = 0; r < 4; ++r)
        for (int c = 0; c < 4; ++c)
            s[4 * ((c + r) & 3) + r] = o[4 * c + r];
}

void
mixColumns(State &s)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = &s[4 * c];
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        col[1] = static_cast<std::uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        col[3] = static_cast<std::uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
    }
}

void
invMixColumns(State &s)
{
    for (int c = 0; c < 4; ++c) {
        std::uint8_t *col = &s[4 * c];
        const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<std::uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                           gmul(a2, 13) ^ gmul(a3, 9));
        col[1] = static_cast<std::uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                           gmul(a2, 11) ^ gmul(a3, 13));
        col[2] = static_cast<std::uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                           gmul(a2, 14) ^ gmul(a3, 11));
        col[3] = static_cast<std::uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                           gmul(a2, 9) ^ gmul(a3, 14));
    }
}

std::uint32_t
loadBe32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

void
storeBe32(std::uint8_t *p, std::uint32_t w)
{
    p[0] = static_cast<std::uint8_t>(w >> 24);
    p[1] = static_cast<std::uint8_t>(w >> 16);
    p[2] = static_cast<std::uint8_t>(w >> 8);
    p[3] = static_cast<std::uint8_t>(w);
}

} // namespace

Aes128::Aes128(const Key128 &key)
{
    static constexpr std::array<std::uint8_t, 10> rcon = {
        0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36};

    for (int i = 0; i < 4; ++i) {
        roundKeys_[i] = (static_cast<std::uint32_t>(key[4 * i]) << 24) |
                        (static_cast<std::uint32_t>(key[4 * i + 1]) << 16) |
                        (static_cast<std::uint32_t>(key[4 * i + 2]) << 8) |
                        static_cast<std::uint32_t>(key[4 * i + 3]);
    }
    for (std::size_t i = 4; i < roundKeys_.size(); ++i) {
        std::uint32_t temp = roundKeys_[i - 1];
        if (i % 4 == 0) {
            temp = subWord(rotWord(temp)) ^
                   (static_cast<std::uint32_t>(rcon[i / 4 - 1]) << 24);
        }
        roundKeys_[i] = roundKeys_[i - 4] ^ temp;
    }
}

Block128
Aes128::encryptBlock(const Block128 &plain) const
{
    const auto &t = tables();
    const std::uint32_t *rk = roundKeys_.data();

    std::uint32_t s0 = loadBe32(&plain[0]) ^ rk[0];
    std::uint32_t s1 = loadBe32(&plain[4]) ^ rk[1];
    std::uint32_t s2 = loadBe32(&plain[8]) ^ rk[2];
    std::uint32_t s3 = loadBe32(&plain[12]) ^ rk[3];

    // Rounds 1-9: ShiftRows is realized by which state word feeds each
    // T-table; MixColumns and SubBytes live inside the tables.
    for (int round = 1; round <= 9; ++round) {
        rk += 4;
        const std::uint32_t t0 = t.te0[s0 >> 24] ^ t.te1[(s1 >> 16) & 0xff] ^
                                 t.te2[(s2 >> 8) & 0xff] ^ t.te3[s3 & 0xff] ^
                                 rk[0];
        const std::uint32_t t1 = t.te0[s1 >> 24] ^ t.te1[(s2 >> 16) & 0xff] ^
                                 t.te2[(s3 >> 8) & 0xff] ^ t.te3[s0 & 0xff] ^
                                 rk[1];
        const std::uint32_t t2 = t.te0[s2 >> 24] ^ t.te1[(s3 >> 16) & 0xff] ^
                                 t.te2[(s0 >> 8) & 0xff] ^ t.te3[s1 & 0xff] ^
                                 rk[2];
        const std::uint32_t t3 = t.te0[s3 >> 24] ^ t.te1[(s0 >> 16) & 0xff] ^
                                 t.te2[(s1 >> 8) & 0xff] ^ t.te3[s2 & 0xff] ^
                                 rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
    rk += 4;
    const auto &sb = t.sbox;
    auto fin = [&sb](std::uint32_t a, std::uint32_t b, std::uint32_t c,
                     std::uint32_t d) {
        return (static_cast<std::uint32_t>(sb[a >> 24]) << 24) |
               (static_cast<std::uint32_t>(sb[(b >> 16) & 0xff]) << 16) |
               (static_cast<std::uint32_t>(sb[(c >> 8) & 0xff]) << 8) |
               static_cast<std::uint32_t>(sb[d & 0xff]);
    };
    const std::uint32_t o0 = fin(s0, s1, s2, s3) ^ rk[0];
    const std::uint32_t o1 = fin(s1, s2, s3, s0) ^ rk[1];
    const std::uint32_t o2 = fin(s2, s3, s0, s1) ^ rk[2];
    const std::uint32_t o3 = fin(s3, s0, s1, s2) ^ rk[3];

    Block128 out;
    storeBe32(&out[0], o0);
    storeBe32(&out[4], o1);
    storeBe32(&out[8], o2);
    storeBe32(&out[12], o3);
    return out;
}

Block128
Aes128::encryptBlockScalar(const Block128 &plain) const
{
    State s = plain;
    addRoundKey(s, &roundKeys_[0]);
    for (int round = 1; round <= 9; ++round) {
        subBytes(s);
        shiftRows(s);
        mixColumns(s);
        addRoundKey(s, &roundKeys_[4 * round]);
    }
    subBytes(s);
    shiftRows(s);
    addRoundKey(s, &roundKeys_[40]);
    return s;
}

Block128
Aes128::decryptBlock(const Block128 &cipher) const
{
    State s = cipher;
    addRoundKey(s, &roundKeys_[40]);
    for (int round = 9; round >= 1; --round) {
        invShiftRows(s);
        invSubBytes(s);
        addRoundKey(s, &roundKeys_[4 * round]);
        invMixColumns(s);
    }
    invShiftRows(s);
    invSubBytes(s);
    addRoundKey(s, &roundKeys_[0]);
    return s;
}

} // namespace tcoram::crypto
