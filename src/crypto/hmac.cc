#include "crypto/hmac.hh"

#include <algorithm>

namespace tcoram::crypto {

Digest256
hmacSha256(const std::vector<std::uint8_t> &key,
           const std::vector<std::uint8_t> &message)
{
    constexpr std::size_t block_size = 64;

    std::vector<std::uint8_t> k(block_size, 0);
    if (key.size() > block_size) {
        const Digest256 kh = Sha256::hash(key);
        std::copy(kh.begin(), kh.end(), k.begin());
    } else {
        std::copy(key.begin(), key.end(), k.begin());
    }

    std::vector<std::uint8_t> ipad(block_size), opad(block_size);
    for (std::size_t i = 0; i < block_size; ++i) {
        ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad);
    inner.update(message);
    const Digest256 inner_digest = inner.finish();

    Sha256 outer;
    outer.update(opad);
    outer.update(inner_digest.data(), inner_digest.size());
    return outer.finish();
}

Digest256
hmacSha256(const std::vector<std::uint8_t> &key, const std::string &message)
{
    return hmacSha256(
        key, std::vector<std::uint8_t>(message.begin(), message.end()));
}

bool
digestEqual(const Digest256 &a, const Digest256 &b)
{
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
    return acc == 0;
}

} // namespace tcoram::crypto
