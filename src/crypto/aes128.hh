/**
 * @file
 * AES-128 block cipher (FIPS-197), implemented from scratch for the
 * ORAM controller's bucket encryption path. The paper's controller
 * performs one AES operation per 16-byte chunk moved on/off chip
 * (§9.1.4); this module supplies both the functional cipher and the
 * chunk-count bookkeeping hooks the power model consumes.
 *
 * encryptBlock runs precomputed 32-bit T-table rounds (four table
 * lookups + XORs per column per round) rather than the byte-wise
 * SubBytes/ShiftRows/MixColumns sequence; the byte-wise rounds remain
 * available as encryptBlockScalar, the portable reference the batched
 * engines (crypto/crypto_engine.hh) are differentially tested against.
 */

#ifndef TCORAM_CRYPTO_AES128_HH
#define TCORAM_CRYPTO_AES128_HH

#include <array>
#include <cstdint>
#include <cstddef>

namespace tcoram::crypto {

/** 128-bit block. */
using Block128 = std::array<std::uint8_t, 16>;

/** 128-bit key. */
using Key128 = std::array<std::uint8_t, 16>;

/**
 * Expanded-key AES-128 context. Construction performs key expansion;
 * encrypt/decrypt operate on single 16-byte blocks.
 */
class Aes128
{
  public:
    explicit Aes128(const Key128 &key);

    /**
     * Encrypt one block (ECB primitive; modes are layered above).
     * T-table implementation — the fast portable path.
     */
    Block128 encryptBlock(const Block128 &plain) const;

    /**
     * Encrypt one block with the byte-wise reference rounds (the seed
     * implementation). Slow; exists as the differential-testing and
     * bit-exactness baseline for every faster backend.
     */
    Block128 encryptBlockScalar(const Block128 &plain) const;

    /** Decrypt one block. */
    Block128 decryptBlock(const Block128 &cipher) const;

    /** Number of round keys (Nr + 1 = 11 for AES-128). */
    static constexpr std::size_t kNumRoundKeys = 11;

    /**
     * Expanded round keys as big-endian 4-byte words, 4 words per
     * round key, for engines that consume the schedule directly
     * (crypto/crypto_engine_aesni.cc).
     */
    const std::array<std::uint32_t, 4 * kNumRoundKeys> &
    roundKeys() const
    {
        return roundKeys_;
    }

  private:
    /** Round keys as 4-byte words, 4 words per round key. */
    std::array<std::uint32_t, 4 * kNumRoundKeys> roundKeys_;
};

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_AES128_HH
