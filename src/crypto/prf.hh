/**
 * @file
 * AES-based pseudo-random function / deterministic random bit
 * generator. The ORAM controller uses this for leaf remapping and
 * encryption nonces: cryptographic-quality randomness whose stream is
 * nevertheless reproducible under a fixed key, which the test suite
 * and the replay experiments require.
 */

#ifndef TCORAM_CRYPTO_PRF_HH
#define TCORAM_CRYPTO_PRF_HH

#include <cstdint>

#include "crypto/aes128.hh"

namespace tcoram::crypto {

/** Counter-mode PRF: output_i = AES_K(i). */
class Prf
{
  public:
    explicit Prf(const Key128 &key) : aes_(key) {}

    /** Next 64 pseudo-random bits. */
    std::uint64_t next64();

    /** Uniform value in [0, bound) via rejection sampling. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Deterministic evaluation at an arbitrary point (stateless PRF). */
    std::uint64_t eval(std::uint64_t point) const;

  private:
    Aes128 aes_;
    std::uint64_t counter_ = 0;
};

/** Derive a Key128 from a 64-bit seed (for tests and simulations). */
Key128 keyFromSeed(std::uint64_t seed);

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_PRF_HH
