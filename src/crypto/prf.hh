/**
 * @file
 * AES-based pseudo-random function / deterministic random bit
 * generator. The ORAM controller uses this for leaf remapping and
 * encryption nonces: cryptographic-quality randomness whose stream is
 * nevertheless reproducible under a fixed key, which the test suite
 * and the replay experiments require.
 *
 * Evaluation is batched: evalMany/nextMany produce a whole span of
 * outputs through one CryptoEngineIf::encryptBlocks call, which is
 * what makes bulk consumers (position-map leaf remapping, per-path
 * write-back nonces, whole-tree initialization) cheap.
 */

#ifndef TCORAM_CRYPTO_PRF_HH
#define TCORAM_CRYPTO_PRF_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/crypto_engine.hh"

namespace tcoram::crypto {

/** Counter-mode PRF: output_i = AES_K(i). */
class Prf
{
  public:
    /**
     * @param key PRF key
     * @param backend crypto engine selection (Auto = process default)
     */
    explicit Prf(const Key128 &key,
                 CryptoBackend backend = CryptoBackend::Auto)
        : engine_(makeCryptoEngine(key, backend))
    {
    }

    /** Next 64 pseudo-random bits. */
    std::uint64_t next64();

    /**
     * Fill @p out with the next out.size() stream values — the same
     * values repeated next64() calls would produce, generated with one
     * batched engine call.
     */
    void nextMany(std::span<std::uint64_t> out);

    /** Uniform value in [0, bound) via rejection sampling. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Deterministic evaluation at an arbitrary point (stateless PRF). */
    std::uint64_t eval(std::uint64_t point) const;

    /**
     * Batched stateless evaluation: out[i] = eval(start + i), one
     * engine call for the whole span.
     */
    void evalMany(std::uint64_t start, std::span<std::uint64_t> out) const;

    /** Stream position — checkpoint/restart support. A PRF restored to
     *  a saved counter continues the exact stream of the saved one. */
    std::uint64_t counter() const { return counter_; }
    void setCounter(std::uint64_t counter) { counter_ = counter; }

  private:
    std::unique_ptr<CryptoEngineIf> engine_;
    std::uint64_t counter_ = 0;
    /** Reusable block scratch for batched evaluation. */
    mutable std::vector<Block128> scratch_;
};

/** Derive a Key128 from a 64-bit seed (for tests and simulations). */
Key128 keyFromSeed(std::uint64_t seed);

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_PRF_HH
