/**
 * @file
 * HMAC-SHA256 (RFC 2104). The user-server protocol uses HMACs to bind
 * (hash(P), D, E, R, L) together so the server cannot swap leakage
 * parameters between runs (paper §8.1, §10).
 */

#ifndef TCORAM_CRYPTO_HMAC_HH
#define TCORAM_CRYPTO_HMAC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/sha256.hh"

namespace tcoram::crypto {

/** Compute HMAC-SHA256 of @p message under @p key. */
Digest256 hmacSha256(const std::vector<std::uint8_t> &key,
                     const std::vector<std::uint8_t> &message);

/** Convenience overload for string message. */
Digest256 hmacSha256(const std::vector<std::uint8_t> &key,
                     const std::string &message);

/** Constant-time digest comparison. */
bool digestEqual(const Digest256 &a, const Digest256 &b);

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_HMAC_HH
