#include "crypto/prf.hh"

#include "common/log.hh"

namespace tcoram::crypto {

namespace {

std::uint64_t
blockToU64(const Block128 &b)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

Block128
u64ToBlock(std::uint64_t v)
{
    Block128 b{};
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return b;
}

} // namespace

std::uint64_t
Prf::next64()
{
    return eval(counter_++);
}

std::uint64_t
Prf::nextBounded(std::uint64_t bound)
{
    tcoram_assert(bound != 0, "nextBounded(0)");
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Prf::eval(std::uint64_t point) const
{
    return blockToU64(aes_.encryptBlock(u64ToBlock(point)));
}

Key128
keyFromSeed(std::uint64_t seed)
{
    Key128 key{};
    for (int i = 0; i < 8; ++i)
        key[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    // Differentiate the upper half so seed 0 is not the all-zero key.
    for (int i = 8; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(0xa5 ^ (seed >> (8 * (i - 8))));
    return key;
}

} // namespace tcoram::crypto
