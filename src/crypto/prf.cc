#include "crypto/prf.hh"

#include "common/log.hh"

namespace tcoram::crypto {

namespace {

std::uint64_t
blockToU64(const Block128 &b)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

Block128
u64ToBlock(std::uint64_t v)
{
    Block128 b{};
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return b;
}

} // namespace

std::uint64_t
Prf::next64()
{
    return eval(counter_++);
}

void
Prf::nextMany(std::span<std::uint64_t> out)
{
    evalMany(counter_, out);
    counter_ += out.size();
}

std::uint64_t
Prf::nextBounded(std::uint64_t bound)
{
    tcoram_assert(bound != 0, "nextBounded(0)");
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next64();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Prf::eval(std::uint64_t point) const
{
    return blockToU64(engine_->encryptBlock(u64ToBlock(point)));
}

void
Prf::evalMany(std::uint64_t start, std::span<std::uint64_t> out) const
{
    if (out.empty())
        return;
    if (scratch_.size() < out.size())
        scratch_.resize(out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        scratch_[i] = u64ToBlock(start + i);
    engine_->encryptBlocks({scratch_.data(), out.size()});
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = blockToU64(scratch_[i]);
}

Key128
keyFromSeed(std::uint64_t seed)
{
    Key128 key{};
    for (int i = 0; i < 8; ++i)
        key[i] = static_cast<std::uint8_t>(seed >> (8 * i));
    // Differentiate the upper half so seed 0 is not the all-zero key.
    for (int i = 8; i < 16; ++i)
        key[i] = static_cast<std::uint8_t>(0xa5 ^ (seed >> (8 * (i - 8))));
    return key;
}

} // namespace tcoram::crypto
