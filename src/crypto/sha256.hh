/**
 * @file
 * SHA-256 (FIPS-180-4) used by the HMAC layer that binds programs,
 * inputs and leakage parameters together in the user-server protocol
 * (§5, §10 of the paper).
 */

#ifndef TCORAM_CRYPTO_SHA256_HH
#define TCORAM_CRYPTO_SHA256_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tcoram::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, std::size_t len);
    void update(const std::vector<std::uint8_t> &data);
    void update(const std::string &data);

    /** Finalize and return the digest; the context must not be reused. */
    Digest256 finish();

    /** One-shot convenience. */
    static Digest256 hash(const std::uint8_t *data, std::size_t len);
    static Digest256 hash(const std::vector<std::uint8_t> &data);
    static Digest256 hash(const std::string &data);

  private:
    void processBlock(const std::uint8_t *block);

    std::array<std::uint32_t, 8> h_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t bufferLen_ = 0;
    std::uint64_t totalBits_ = 0;
    bool finished_ = false;
};

/** Hex-encode a digest (for logs and protocol transcripts). */
std::string toHex(const Digest256 &d);

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_SHA256_HH
