/**
 * @file
 * Batched AES encryption engines. The ORAM controller encrypts and
 * decrypts every bucket on a path for every periodic access, so bucket
 * crypto dominates simulator wall-clock; this layer turns the single
 * scalar AES of crypto/aes128.hh into a throughput-oriented primitive:
 * `encryptBlocks` encrypts a whole span of 16-byte blocks per call, so
 * an implementation can amortize table lookups or keep the AES-NI
 * pipeline full (4-8 independent blocks in flight).
 *
 * Three backends exist:
 *  - Scalar:  the from-scratch byte-wise FIPS-197 rounds (the seed
 *             implementation), kept as the portable reference every
 *             other backend is differentially tested against.
 *  - TTable:  precomputed 32-bit T-table rounds; portable, ~an order
 *             of magnitude faster than Scalar.
 *  - AesNi:   hardware AES (x86 AES-NI), pipelined 8 blocks per
 *             iteration; selected only when the CPU supports it.
 *
 * Selection happens once at engine construction: an explicit backend
 * pins the implementation (tests pin Scalar/TTable for portability);
 * Auto resolves to the best available — CPUID-detected AES-NI unless
 * the TCORAM_NO_AESNI environment variable is set, else TTable. The
 * process-wide default is also settable via TCORAM_CRYPTO_BACKEND or
 * SystemConfig::cryptoBackend / the CLI --crypto-backend flag.
 */

#ifndef TCORAM_CRYPTO_CRYPTO_ENGINE_HH
#define TCORAM_CRYPTO_CRYPTO_ENGINE_HH

#include <memory>
#include <span>
#include <string_view>

#include "crypto/aes128.hh"

namespace tcoram::crypto {

/** Engine selection knob. */
enum class CryptoBackend
{
    Auto,   ///< best available (AES-NI if supported, else TTable)
    Scalar, ///< byte-wise reference rounds (the seed implementation)
    TTable, ///< precomputed T-table rounds (portable fast path)
    AesNi,  ///< x86 AES-NI, 8-block pipelined
};

/**
 * One expanded key, one implementation. Engines are immutable after
 * construction and safe to share across threads for encryption.
 */
class CryptoEngineIf
{
  public:
    virtual ~CryptoEngineIf() = default;

    /** Human-readable backend name ("scalar", "ttable", "aesni"). */
    virtual const char *name() const = 0;

    /**
     * ECB-encrypt every 16-byte block in @p blocks in place. This is
     * the batched primitive the CTR layer builds keystreams with: the
     * caller lays counter blocks contiguously and gets keystream back
     * in one call.
     */
    virtual void encryptBlocks(std::span<Block128> blocks) const = 0;

    /** Single-block convenience (not the hot path). */
    Block128
    encryptBlock(const Block128 &plain) const
    {
        Block128 b = plain;
        encryptBlocks({&b, 1});
        return b;
    }
};

/**
 * Build an engine for @p key. CryptoBackend::Auto resolves through
 * defaultCryptoBackend(). Requesting AesNi on a machine (or build)
 * without AES-NI support falls back to TTable with a log note, so a
 * pinned configuration still runs everywhere.
 */
std::unique_ptr<CryptoEngineIf> makeCryptoEngine(
    const Key128 &key, CryptoBackend backend = CryptoBackend::Auto);

/**
 * @return true when hardware AES is compiled in (TCORAM_ENABLE_AESNI),
 * the CPU reports it (CPUID), and TCORAM_NO_AESNI is not set.
 */
bool aesniAvailable();

/**
 * Process-wide backend that CryptoBackend::Auto resolves to. Priority:
 * setDefaultCryptoBackend() if called, else the TCORAM_CRYPTO_BACKEND
 * environment variable, else AES-NI when available, else TTable.
 */
CryptoBackend defaultCryptoBackend();

/**
 * Pin the process-wide default (SystemConfig / CLI knob). Pass
 * CryptoBackend::Auto to restore detection. Thread-safe; takes effect
 * for engines constructed afterwards.
 */
void setDefaultCryptoBackend(CryptoBackend backend);

/** Parse "auto" / "scalar" / "ttable" / "aesni" (fatal otherwise). */
CryptoBackend parseCryptoBackend(std::string_view name);

/** Inverse of parseCryptoBackend. */
const char *backendName(CryptoBackend backend);

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_CRYPTO_ENGINE_HH
