/**
 * @file
 * AES-128-CTR probabilistic encryption. Path ORAM requires every
 * bucket write-back to produce a fresh-looking ciphertext (paper §3,
 * footnote 2); CTR mode with a per-write random nonce provides that,
 * and is also what makes the root-bucket probe attack of §3.2 work:
 * the adversary detects an ORAM access by observing the root bucket's
 * ciphertext change.
 */

#ifndef TCORAM_CRYPTO_CTR_HH
#define TCORAM_CRYPTO_CTR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/aes128.hh"

namespace tcoram::crypto {

/**
 * A ciphertext: nonce plus the encrypted payload. The nonce is stored
 * in the clear (as in any real CTR-mode layout), so equality of two
 * Ciphertexts is exactly what an off-chip observer can test.
 */
struct Ciphertext
{
    std::uint64_t nonce = 0;
    std::vector<std::uint8_t> data;

    bool operator==(const Ciphertext &other) const = default;
};

/**
 * CTR-mode cipher bound to one AES key. Encryption consumes a caller-
 * supplied nonce; the ORAM controller draws nonces from its PRF so the
 * whole system stays deterministic under a fixed seed.
 */
class CtrCipher
{
  public:
    explicit CtrCipher(const Key128 &key) : aes_(key) {}

    /**
     * XOR the keystream for @p nonce into @p out, reading from @p in.
     * The spans must be the same length; @p out may alias @p in (the
     * in-place form), which is the allocation-free core every other
     * entry point reduces to. CTR is an involution, so the same call
     * both encrypts and decrypts.
     */
    void xcrypt(std::uint64_t nonce, std::span<const std::uint8_t> in,
                std::span<std::uint8_t> out) const;

    /**
     * Encrypt @p plain into caller-owned @p out. Resizes out.data only
     * when its capacity is insufficient, so steady-state reuse of one
     * Ciphertext performs no heap allocation.
     */
    void encryptInto(std::span<const std::uint8_t> plain,
                     std::uint64_t nonce, Ciphertext &out) const;

    /** Decrypt into a caller-owned buffer of exactly the payload size. */
    void decryptInto(const Ciphertext &cipher,
                     std::span<std::uint8_t> out) const;

    /** Encrypt @p plain under @p nonce (allocating convenience form). */
    Ciphertext encrypt(const std::vector<std::uint8_t> &plain,
                       std::uint64_t nonce) const;

    /** Decrypt; inverse of encrypt for the same key. */
    std::vector<std::uint8_t> decrypt(const Ciphertext &cipher) const;

    /**
     * Number of 16-byte AES chunks needed for @p nbytes of payload;
     * feeds the power model's per-chunk AES energy accounting (§9.1.4).
     */
    static std::uint64_t chunksFor(std::uint64_t nbytes);

  private:
    Aes128 aes_;
};

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_CTR_HH
