/**
 * @file
 * AES-128-CTR probabilistic encryption. Path ORAM requires every
 * bucket write-back to produce a fresh-looking ciphertext (paper §3,
 * footnote 2); CTR mode with a per-write random nonce provides that,
 * and is also what makes the root-bucket probe attack of §3.2 work:
 * the adversary detects an ORAM access by observing the root bucket's
 * ciphertext change.
 *
 * The cipher is batched end to end: one call generates the whole
 * keystream for a buffer (or for a list of independently-nonced
 * segments — e.g. every bucket on an ORAM path) through a single
 * CryptoEngineIf::encryptBlocks invocation, then XORs it in 64-bit
 * lanes. The keystream scratch is owned by the cipher and reused, so
 * steady-state operation performs no heap allocation.
 */

#ifndef TCORAM_CRYPTO_CTR_HH
#define TCORAM_CRYPTO_CTR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/crypto_engine.hh"

namespace tcoram::crypto {

/**
 * A ciphertext: nonce plus the encrypted payload. The nonce is stored
 * in the clear (as in any real CTR-mode layout), so equality of two
 * Ciphertexts is exactly what an off-chip observer can test.
 */
struct Ciphertext
{
    std::uint64_t nonce = 0;
    std::vector<std::uint8_t> data;

    bool operator==(const Ciphertext &other) const = default;
};

/**
 * One independently-nonced CTR operation inside a batch: XOR the
 * keystream of (nonce, block 0..) into @p out, reading @p in. The
 * spans must be equal length; @p out may alias @p in.
 */
struct CtrSegment
{
    std::uint64_t nonce = 0;
    std::span<const std::uint8_t> in;
    std::span<std::uint8_t> out;
};

/**
 * CTR-mode cipher bound to one AES key. Encryption consumes a caller-
 * supplied nonce; the ORAM controller draws nonces from its PRF so the
 * whole system stays deterministic under a fixed seed.
 *
 * The keystream layout is unchanged from the original scalar
 * implementation (counter block = 8-byte little-endian nonce || 8-byte
 * little-endian block index), so ciphertexts are bit-identical across
 * every backend — the golden-vector test pins this.
 *
 * Not thread-safe per instance (the keystream scratch is shared
 * between calls); each ORAM instance owns its own cipher.
 */
class CtrCipher
{
  public:
    /**
     * @param key AES-128 key
     * @param backend crypto engine selection; Auto resolves the
     *        process default (crypto/crypto_engine.hh) so tests can
     *        pin the portable backend
     */
    explicit CtrCipher(const Key128 &key,
                       CryptoBackend backend = CryptoBackend::Auto)
        : engine_(makeCryptoEngine(key, backend))
    {
    }

    /**
     * XOR the keystream for @p nonce into @p out, reading from @p in.
     * The spans must be the same length; @p out may alias @p in (the
     * in-place form), which is the allocation-free core every other
     * entry point reduces to. CTR is an involution, so the same call
     * both encrypts and decrypts. The whole keystream is produced by
     * one batched engine call.
     */
    void xcrypt(std::uint64_t nonce, std::span<const std::uint8_t> in,
                std::span<std::uint8_t> out) const;

    /**
     * Process every segment with ONE batched keystream generation:
     * counter blocks for all segments are laid out contiguously,
     * encrypted in a single engine call, and XORed per segment. This
     * is the whole-path primitive — an ORAM path read decrypts every
     * bucket (each with its own nonce) in one call.
     */
    void xcryptSegments(std::span<const CtrSegment> segments) const;

    /**
     * Encrypt @p plain into caller-owned @p out. Resizes out.data only
     * when its capacity is insufficient, so steady-state reuse of one
     * Ciphertext performs no heap allocation.
     */
    void encryptInto(std::span<const std::uint8_t> plain,
                     std::uint64_t nonce, Ciphertext &out) const;

    /** Decrypt into a caller-owned buffer of exactly the payload size. */
    void decryptInto(const Ciphertext &cipher,
                     std::span<std::uint8_t> out) const;

    /** Encrypt @p plain under @p nonce (allocating convenience form). */
    Ciphertext encrypt(const std::vector<std::uint8_t> &plain,
                       std::uint64_t nonce) const;

    /** Decrypt; inverse of encrypt for the same key. */
    std::vector<std::uint8_t> decrypt(const Ciphertext &cipher) const;

    /** Name of the engine actually selected ("scalar"/"ttable"/"aesni"). */
    const char *backendName() const { return engine_->name(); }

    /**
     * Number of 16-byte AES chunks needed for @p nbytes of payload;
     * feeds the power model's per-chunk AES energy accounting (§9.1.4).
     */
    static std::uint64_t chunksFor(std::uint64_t nbytes);

  private:
    std::unique_ptr<CryptoEngineIf> engine_;
    /** Reusable keystream arena (counter blocks in, keystream out). */
    mutable std::vector<Block128> keystream_;
};

} // namespace tcoram::crypto

#endif // TCORAM_CRYPTO_CTR_HH
