#include "crypto/crypto_engine.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/log.hh"

namespace tcoram::crypto {

// Provided by crypto_engine_aesni.cc. Returns nullptr when hardware
// AES is compiled out or the CPU lacks it.
std::unique_ptr<CryptoEngineIf> makeAesNiEngine(const Aes128 &aes);
bool aesniCompiledAndSupported();

namespace {

/** Byte-wise reference rounds — the seed implementation, unchanged. */
class ScalarEngine final : public CryptoEngineIf
{
  public:
    explicit ScalarEngine(const Key128 &key) : aes_(key) {}

    const char *name() const override { return "scalar"; }

    void
    encryptBlocks(std::span<Block128> blocks) const override
    {
        for (auto &b : blocks)
            b = aes_.encryptBlockScalar(b);
    }

  private:
    Aes128 aes_;
};

/** Precomputed T-table rounds — the portable fast path. */
class TTableEngine final : public CryptoEngineIf
{
  public:
    explicit TTableEngine(const Key128 &key) : aes_(key) {}

    const char *name() const override { return "ttable"; }

    void
    encryptBlocks(std::span<Block128> blocks) const override
    {
        for (auto &b : blocks)
            b = aes_.encryptBlock(b);
    }

  private:
    Aes128 aes_;
};

/** Process-wide default override (CryptoBackend::Auto = unset). */
std::atomic<CryptoBackend> g_defaultBackend{CryptoBackend::Auto};

bool
envSet(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

} // namespace

bool
aesniAvailable()
{
    if (envSet("TCORAM_NO_AESNI"))
        return false;
    return aesniCompiledAndSupported();
}

CryptoBackend
defaultCryptoBackend()
{
    const CryptoBackend pinned =
        g_defaultBackend.load(std::memory_order_relaxed);
    if (pinned != CryptoBackend::Auto)
        return pinned;
    if (const char *env = std::getenv("TCORAM_CRYPTO_BACKEND");
        env != nullptr && env[0] != '\0') {
        const CryptoBackend b = parseCryptoBackend(env);
        if (b != CryptoBackend::Auto)
            return b;
    }
    return aesniAvailable() ? CryptoBackend::AesNi : CryptoBackend::TTable;
}

void
setDefaultCryptoBackend(CryptoBackend backend)
{
    g_defaultBackend.store(backend, std::memory_order_relaxed);
}

CryptoBackend
parseCryptoBackend(std::string_view name)
{
    if (name == "auto")
        return CryptoBackend::Auto;
    if (name == "scalar")
        return CryptoBackend::Scalar;
    if (name == "ttable")
        return CryptoBackend::TTable;
    if (name == "aesni")
        return CryptoBackend::AesNi;
    tcoram_fatal("unknown crypto backend '", std::string(name),
                 "' (expected auto|scalar|ttable|aesni)");
}

const char *
backendName(CryptoBackend backend)
{
    switch (backend) {
    case CryptoBackend::Auto:
        return "auto";
    case CryptoBackend::Scalar:
        return "scalar";
    case CryptoBackend::TTable:
        return "ttable";
    case CryptoBackend::AesNi:
        return "aesni";
    }
    return "auto";
}

std::unique_ptr<CryptoEngineIf>
makeCryptoEngine(const Key128 &key, CryptoBackend backend)
{
    if (backend == CryptoBackend::Auto)
        backend = defaultCryptoBackend();

    switch (backend) {
    case CryptoBackend::Scalar:
        return std::make_unique<ScalarEngine>(key);
    case CryptoBackend::TTable:
        return std::make_unique<TTableEngine>(key);
    case CryptoBackend::AesNi: {
        if (aesniAvailable()) {
            if (auto e = makeAesNiEngine(Aes128(key)))
                return e;
        }
        informImpl("crypto: AES-NI unavailable, falling back to ttable");
        return std::make_unique<TTableEngine>(key);
    }
    case CryptoBackend::Auto:
        break;
    }
    return std::make_unique<TTableEngine>(key);
}

} // namespace tcoram::crypto
