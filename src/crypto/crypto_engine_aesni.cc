/**
 * @file
 * Hardware AES backend (x86 AES-NI). One `aesenc` per round per block
 * with 8 independent blocks in flight per loop iteration, so the
 * 4-cycle instruction latency pipelines away and throughput approaches
 * one block per few cycles — ~2 orders of magnitude over the scalar
 * rounds. Compiled whenever the toolchain targets x86-64 and
 * TCORAM_ENABLE_AESNI is on; selected at runtime only when CPUID
 * reports AES support (crypto_engine.cc additionally honors the
 * TCORAM_NO_AESNI environment override).
 *
 * The functions carry `target("aes,sse2")` attributes instead of
 * building the whole file with -maes, so the library never executes an
 * AES instruction on a CPU that lacks it — dispatch is purely runtime.
 */

#include "crypto/crypto_engine.hh"

#if defined(__x86_64__) && defined(TCORAM_ENABLE_AESNI) && \
    (defined(__GNUC__) || defined(__clang__))
#define TCORAM_HAVE_AESNI 1
#include <immintrin.h>
#else
#define TCORAM_HAVE_AESNI 0
#endif

namespace tcoram::crypto {

#if TCORAM_HAVE_AESNI

namespace {

class AesNiEngine final : public CryptoEngineIf
{
  public:
    explicit AesNiEngine(const Aes128 &aes)
    {
        // Serialize the expanded schedule (big-endian words) into the
        // byte order AES-NI consumes: round key r is words 4r..4r+3 in
        // memory order.
        const auto &words = aes.roundKeys();
        for (std::size_t r = 0; r < Aes128::kNumRoundKeys; ++r) {
            for (int c = 0; c < 4; ++c) {
                const std::uint32_t w = words[4 * r + c];
                rk_[r][4 * c + 0] = static_cast<std::uint8_t>(w >> 24);
                rk_[r][4 * c + 1] = static_cast<std::uint8_t>(w >> 16);
                rk_[r][4 * c + 2] = static_cast<std::uint8_t>(w >> 8);
                rk_[r][4 * c + 3] = static_cast<std::uint8_t>(w);
            }
        }
    }

    const char *name() const override { return "aesni"; }

    __attribute__((target("aes,sse2"))) void
    encryptBlocks(std::span<Block128> blocks) const override
    {
        __m128i k[11];
        for (int r = 0; r < 11; ++r)
            k[r] = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rk_[r].data()));

        std::uint8_t *p = blocks.empty() ? nullptr : blocks[0].data();
        std::size_t n = blocks.size();

        // 8-block pipelined main loop.
        while (n >= 8) {
            __m128i b0 = _mm_loadu_si128(reinterpret_cast<__m128i *>(p));
            __m128i b1 =
                _mm_loadu_si128(reinterpret_cast<__m128i *>(p + 16));
            __m128i b2 =
                _mm_loadu_si128(reinterpret_cast<__m128i *>(p + 32));
            __m128i b3 =
                _mm_loadu_si128(reinterpret_cast<__m128i *>(p + 48));
            __m128i b4 =
                _mm_loadu_si128(reinterpret_cast<__m128i *>(p + 64));
            __m128i b5 =
                _mm_loadu_si128(reinterpret_cast<__m128i *>(p + 80));
            __m128i b6 =
                _mm_loadu_si128(reinterpret_cast<__m128i *>(p + 96));
            __m128i b7 =
                _mm_loadu_si128(reinterpret_cast<__m128i *>(p + 112));
            b0 = _mm_xor_si128(b0, k[0]);
            b1 = _mm_xor_si128(b1, k[0]);
            b2 = _mm_xor_si128(b2, k[0]);
            b3 = _mm_xor_si128(b3, k[0]);
            b4 = _mm_xor_si128(b4, k[0]);
            b5 = _mm_xor_si128(b5, k[0]);
            b6 = _mm_xor_si128(b6, k[0]);
            b7 = _mm_xor_si128(b7, k[0]);
            for (int r = 1; r <= 9; ++r) {
                b0 = _mm_aesenc_si128(b0, k[r]);
                b1 = _mm_aesenc_si128(b1, k[r]);
                b2 = _mm_aesenc_si128(b2, k[r]);
                b3 = _mm_aesenc_si128(b3, k[r]);
                b4 = _mm_aesenc_si128(b4, k[r]);
                b5 = _mm_aesenc_si128(b5, k[r]);
                b6 = _mm_aesenc_si128(b6, k[r]);
                b7 = _mm_aesenc_si128(b7, k[r]);
            }
            b0 = _mm_aesenclast_si128(b0, k[10]);
            b1 = _mm_aesenclast_si128(b1, k[10]);
            b2 = _mm_aesenclast_si128(b2, k[10]);
            b3 = _mm_aesenclast_si128(b3, k[10]);
            b4 = _mm_aesenclast_si128(b4, k[10]);
            b5 = _mm_aesenclast_si128(b5, k[10]);
            b6 = _mm_aesenclast_si128(b6, k[10]);
            b7 = _mm_aesenclast_si128(b7, k[10]);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p), b0);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 16), b1);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 32), b2);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 48), b3);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 64), b4);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 80), b5);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 96), b6);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p + 112), b7);
            p += 128;
            n -= 8;
        }

        while (n > 0) {
            __m128i b = _mm_loadu_si128(reinterpret_cast<__m128i *>(p));
            b = _mm_xor_si128(b, k[0]);
            for (int r = 1; r <= 9; ++r)
                b = _mm_aesenc_si128(b, k[r]);
            b = _mm_aesenclast_si128(b, k[10]);
            _mm_storeu_si128(reinterpret_cast<__m128i *>(p), b);
            p += 16;
            n -= 1;
        }
    }

  private:
    alignas(16) std::array<std::array<std::uint8_t, 16>, 11> rk_;
};

} // namespace

bool
aesniCompiledAndSupported()
{
    return __builtin_cpu_supports("aes") != 0;
}

std::unique_ptr<CryptoEngineIf>
makeAesNiEngine(const Aes128 &aes)
{
    if (!aesniCompiledAndSupported())
        return nullptr;
    return std::make_unique<AesNiEngine>(aes);
}

#else // !TCORAM_HAVE_AESNI

bool
aesniCompiledAndSupported()
{
    return false;
}

std::unique_ptr<CryptoEngineIf>
makeAesNiEngine(const Aes128 &)
{
    return nullptr;
}

#endif // TCORAM_HAVE_AESNI

} // namespace tcoram::crypto
