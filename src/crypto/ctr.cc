#include "crypto/ctr.hh"

#include "common/bitutils.hh"

namespace tcoram::crypto {

Ciphertext
CtrCipher::encrypt(const std::vector<std::uint8_t> &plain,
                   std::uint64_t nonce) const
{
    Ciphertext out;
    out.nonce = nonce;
    out.data.resize(plain.size());

    Block128 counter{};
    for (int i = 0; i < 8; ++i)
        counter[i] = static_cast<std::uint8_t>(nonce >> (8 * i));

    std::uint64_t block_index = 0;
    std::size_t off = 0;
    while (off < plain.size()) {
        for (int i = 0; i < 8; ++i)
            counter[8 + i] = static_cast<std::uint8_t>(block_index >> (8 * i));
        const Block128 keystream = aes_.encryptBlock(counter);
        const std::size_t n = std::min<std::size_t>(16, plain.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out.data[off + i] =
                static_cast<std::uint8_t>(plain[off + i] ^ keystream[i]);
        off += n;
        ++block_index;
    }
    return out;
}

std::vector<std::uint8_t>
CtrCipher::decrypt(const Ciphertext &cipher) const
{
    // CTR decryption is encryption with the same nonce.
    const Ciphertext round_trip = encrypt(cipher.data, cipher.nonce);
    return round_trip.data;
}

std::uint64_t
CtrCipher::chunksFor(std::uint64_t nbytes)
{
    return divCeil(nbytes, 16);
}

} // namespace tcoram::crypto
