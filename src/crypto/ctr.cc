#include "crypto/ctr.hh"

#include <bit>
#include <cstring>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::crypto {

namespace {

/** Little-endian 64-bit store (memcpy on LE hosts, no UB shifts). */
inline void
storeLe64(std::uint8_t *p, std::uint64_t v)
{
    if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(p, &v, 8);
    } else {
        for (int i = 0; i < 8; ++i)
            p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
}

/**
 * out = in ^ ks over @p n bytes, XORing in 64-bit lanes with a
 * byte-wise tail. memcpy keeps the lane loads/stores alignment- and
 * aliasing-safe (in/out may be the same buffer).
 */
inline void
xorBytes(const std::uint8_t *ks, const std::uint8_t *in, std::uint8_t *out,
         std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t a, b;
        std::memcpy(&a, in + i, 8);
        std::memcpy(&b, ks + i, 8);
        a ^= b;
        std::memcpy(out + i, &a, 8);
    }
    for (; i < n; ++i)
        out[i] = static_cast<std::uint8_t>(in[i] ^ ks[i]);
}

/** Counter block b of @p nonce: LE nonce || LE block index. */
inline void
fillCounter(Block128 &ctr, std::uint64_t nonce, std::uint64_t block)
{
    storeLe64(ctr.data(), nonce);
    storeLe64(ctr.data() + 8, block);
}

} // namespace

void
CtrCipher::xcrypt(std::uint64_t nonce, std::span<const std::uint8_t> in,
                  std::span<std::uint8_t> out) const
{
    const CtrSegment seg{nonce, in, out};
    xcryptSegments({&seg, 1});
}

void
CtrCipher::xcryptSegments(std::span<const CtrSegment> segments) const
{
    std::size_t total_blocks = 0;
    for (const auto &seg : segments) {
        tcoram_assert(seg.in.size() == seg.out.size(),
                      "xcrypt spans must have equal length");
        total_blocks += divCeil(seg.in.size(), 16);
    }
    if (total_blocks == 0)
        return;

    // Lay every segment's counter blocks contiguously, then one
    // batched engine call turns them all into keystream.
    if (keystream_.size() < total_blocks)
        keystream_.resize(total_blocks);
    std::size_t b = 0;
    for (const auto &seg : segments) {
        const std::size_t nblocks = divCeil(seg.in.size(), 16);
        for (std::size_t j = 0; j < nblocks; ++j)
            fillCounter(keystream_[b++], seg.nonce, j);
    }
    engine_->encryptBlocks({keystream_.data(), total_blocks});

    b = 0;
    for (const auto &seg : segments) {
        const std::size_t len = seg.in.size();
        if (len == 0)
            continue; // keystream_[b] may be past-the-end here
        // The keystream blocks for this segment are contiguous, so one
        // lane-wise XOR covers all full blocks plus the tail.
        xorBytes(keystream_[b].data(), seg.in.data(), seg.out.data(), len);
        b += divCeil(len, 16);
    }
}

void
CtrCipher::encryptInto(std::span<const std::uint8_t> plain,
                       std::uint64_t nonce, Ciphertext &out) const
{
    out.nonce = nonce;
    out.data.resize(plain.size());
    xcrypt(nonce, plain, out.data);
}

void
CtrCipher::decryptInto(const Ciphertext &cipher,
                       std::span<std::uint8_t> out) const
{
    // CTR decryption is encryption with the same nonce.
    xcrypt(cipher.nonce, cipher.data, out);
}

Ciphertext
CtrCipher::encrypt(const std::vector<std::uint8_t> &plain,
                   std::uint64_t nonce) const
{
    Ciphertext out;
    encryptInto(plain, nonce, out);
    return out;
}

std::vector<std::uint8_t>
CtrCipher::decrypt(const Ciphertext &cipher) const
{
    std::vector<std::uint8_t> plain(cipher.data.size());
    decryptInto(cipher, plain);
    return plain;
}

std::uint64_t
CtrCipher::chunksFor(std::uint64_t nbytes)
{
    return divCeil(nbytes, 16);
}

} // namespace tcoram::crypto
