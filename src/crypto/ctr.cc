#include "crypto/ctr.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::crypto {

void
CtrCipher::xcrypt(std::uint64_t nonce, std::span<const std::uint8_t> in,
                  std::span<std::uint8_t> out) const
{
    tcoram_assert(in.size() == out.size(),
                  "xcrypt spans must have equal length");

    Block128 counter{};
    for (int i = 0; i < 8; ++i)
        counter[i] = static_cast<std::uint8_t>(nonce >> (8 * i));

    std::uint64_t block_index = 0;
    std::size_t off = 0;
    while (off < in.size()) {
        for (int i = 0; i < 8; ++i)
            counter[8 + i] = static_cast<std::uint8_t>(block_index >> (8 * i));
        const Block128 keystream = aes_.encryptBlock(counter);
        const std::size_t n = std::min<std::size_t>(16, in.size() - off);
        for (std::size_t i = 0; i < n; ++i)
            out[off + i] =
                static_cast<std::uint8_t>(in[off + i] ^ keystream[i]);
        off += n;
        ++block_index;
    }
}

void
CtrCipher::encryptInto(std::span<const std::uint8_t> plain,
                       std::uint64_t nonce, Ciphertext &out) const
{
    out.nonce = nonce;
    out.data.resize(plain.size());
    xcrypt(nonce, plain, out.data);
}

void
CtrCipher::decryptInto(const Ciphertext &cipher,
                       std::span<std::uint8_t> out) const
{
    // CTR decryption is encryption with the same nonce.
    xcrypt(cipher.nonce, cipher.data, out);
}

Ciphertext
CtrCipher::encrypt(const std::vector<std::uint8_t> &plain,
                   std::uint64_t nonce) const
{
    Ciphertext out;
    encryptInto(plain, nonce, out);
    return out;
}

std::vector<std::uint8_t>
CtrCipher::decrypt(const Ciphertext &cipher) const
{
    std::vector<std::uint8_t> plain(cipher.data.size());
    decryptInto(cipher, plain);
    return plain;
}

std::uint64_t
CtrCipher::chunksFor(std::uint64_t nbytes)
{
    return divCeil(nbytes, 16);
}

} // namespace tcoram::crypto
