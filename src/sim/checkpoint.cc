#include "sim/checkpoint.hh"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "crypto/sha256.hh"

namespace tcoram::sim {

namespace {

constexpr char kMagic[8] = {'T', 'C', 'O', 'R', 'C', 'K', 'P', 'T'};

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 32;

} // namespace

std::string
saveCheckpoint(const std::string &path,
               std::span<const std::uint8_t> payload)
{
    std::vector<std::uint8_t> frame;
    frame.reserve(kHeaderBytes + payload.size());
    frame.insert(frame.end(), kMagic, kMagic + sizeof(kMagic));
    putU32(frame, kCheckpointVersion);
    putU64(frame, payload.size());
    const crypto::Digest256 digest =
        crypto::Sha256::hash(payload.data(), payload.size());
    frame.insert(frame.end(), digest.begin(), digest.end());
    frame.insert(frame.end(), payload.begin(), payload.end());

    // Two-phase commit: a crash mid-write tears only the .tmp file;
    // the rename publishes the complete frame or nothing.
    const std::string tmp = path + ".tmp";
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return "checkpoint: cannot open " + tmp + " for writing";
    const std::size_t written =
        std::fwrite(frame.data(), 1, frame.size(), f);
    if (written != frame.size()) {
        std::fclose(f);
        std::remove(tmp.c_str());
        return "checkpoint: short write to " + tmp;
    }
    if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
        std::fclose(f);
        std::remove(tmp.c_str());
        return "checkpoint: flush/fsync of " + tmp + " failed";
    }
    if (std::fclose(f) != 0) {
        std::remove(tmp.c_str());
        return "checkpoint: close of " + tmp + " failed";
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return "checkpoint: rename to " + path + " failed";
    }
    return {};
}

std::string
loadCheckpoint(const std::string &path, std::vector<std::uint8_t> &payload)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return "checkpoint: cannot open " + path;
    std::vector<std::uint8_t> frame;
    std::uint8_t buf[1 << 16];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
        frame.insert(frame.end(), buf, buf + n);
        if (n < sizeof(buf))
            break;
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error)
        return "checkpoint: read of " + path + " failed";

    if (frame.size() < kHeaderBytes)
        return "checkpoint: " + path + " is truncated (header)";
    if (std::memcmp(frame.data(), kMagic, sizeof(kMagic)) != 0)
        return "checkpoint: " + path + " has bad magic";
    const std::uint32_t version = getU32(frame.data() + 8);
    if (version != kCheckpointVersion)
        return "checkpoint: " + path + " is version " +
               std::to_string(version) + ", expected " +
               std::to_string(kCheckpointVersion);
    const std::uint64_t len = getU64(frame.data() + 12);
    if (frame.size() != kHeaderBytes + len)
        return "checkpoint: " + path + " is truncated (payload: have " +
               std::to_string(frame.size() - kHeaderBytes) + ", header says " +
               std::to_string(len) + ")";
    crypto::Digest256 stored;
    std::memcpy(stored.data(), frame.data() + 20, stored.size());
    const crypto::Digest256 actual =
        crypto::Sha256::hash(frame.data() + kHeaderBytes, len);
    if (stored != actual)
        return "checkpoint: " + path + " digest mismatch (corrupted)";

    payload.assign(frame.begin() +
                       static_cast<std::ptrdiff_t>(kHeaderBytes),
                   frame.end());
    return {};
}

} // namespace tcoram::sim
