/**
 * @file
 * Parallel experiment engine: shards a (config x workload) grid across
 * a std::thread pool. Every cell gets its own deterministic seed
 * derived from (config seed, cell coordinates) — never from thread
 * identity or scheduling — so an N-thread run produces results
 * identical to a single-threaded run, and two runs of the same grid
 * are identical full stop. Cells share no mutable state: each one
 * builds its own SecureProcessor stack.
 */

#ifndef TCORAM_SIM_EXPERIMENT_ENGINE_HH
#define TCORAM_SIM_EXPERIMENT_ENGINE_HH

#include <cstdint>

#include "sim/experiment.hh"

namespace tcoram::sim {

class ExperimentEngine
{
  public:
    /**
     * @param threads worker count; 0 means the TCORAM_THREADS
     *        environment variable when set, else the hardware
     *        concurrency.
     */
    explicit ExperimentEngine(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Run every config over every workload. Results are indexed
     * [config][workload] exactly like the serial runGrid().
     */
    Grid run(const std::vector<SystemConfig> &configs,
             const std::vector<workload::Profile> &workloads,
             InstCount insts, InstCount warmup = 0) const;

    /**
     * The deterministic seed of every grid cell in workload column
     * @p w: mixSeed over the config's own seed and the workload index
     * only. Deliberately independent of the config's grid position —
     * all configs must replay the identical synthetic instruction
     * stream for a workload, or the overhead ratios the paper's
     * figures report (treatment vs base_dram on the same trace) would
     * absorb workload-realization noise.
     */
    static std::uint64_t cellSeed(const SystemConfig &cfg, std::size_t w);

    /** Thread count used when the constructor argument is 0. */
    static unsigned defaultThreads();

  private:
    unsigned threads_;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_EXPERIMENT_ENGINE_HH
