#include "sim/experiment_engine.hh"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/report.hh"

namespace tcoram::sim {

unsigned
ExperimentEngine::defaultThreads()
{
    if (const char *env = std::getenv("TCORAM_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
        warnImpl("ignoring invalid TCORAM_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ExperimentEngine::ExperimentEngine(unsigned threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
}

std::uint64_t
ExperimentEngine::cellSeed(const SystemConfig &cfg, std::size_t w)
{
    return mixSeed(cfg.seed, w + 1);
}

Grid
ExperimentEngine::run(const std::vector<SystemConfig> &configs,
                      const std::vector<workload::Profile> &workloads,
                      InstCount insts, InstCount warmup) const
{
    Grid g;
    g.configs = configs;
    g.workloads = workloads;
    g.results.assign(configs.size(),
                     std::vector<SimResult>(workloads.size()));

    const std::size_t cells = configs.size() * workloads.size();
    if (cells == 0)
        return g;

    const std::size_t n = threads_ < cells ? threads_ : cells;

    // Columnar stat plane: each worker records its cells' results as
    // raw typed values into its own chunk (lock-free by ownership);
    // the cell index is the order key, so serialization emits rows in
    // config-major order whatever the thread count or schedule.
    auto batch = std::make_shared<ColumnBatch>(resultSchema(), n);

    std::atomic<std::size_t> next{0};
    auto worker = [&](std::size_t t) {
        ColumnChunk &chunk = batch->chunk(t);
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= cells)
                return;
            const std::size_t c = i / workloads.size();
            const std::size_t w = i % workloads.size();
            g.results[c][w] =
                runOne(configs[c], workloads[w], insts, warmup,
                       cellSeed(configs[c], w));
            appendResult(chunk, i, g.results[c][w]);
        }
    };

    if (n <= 1) {
        worker(0);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(n);
        for (std::size_t t = 0; t < n; ++t)
            pool.emplace_back(worker, t);
        for (auto &t : pool)
            t.join();
    }
    g.columns = std::move(batch);
    return g;
}

} // namespace tcoram::sim
