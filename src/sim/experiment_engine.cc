#include "sim/experiment_engine.hh"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"

namespace tcoram::sim {

unsigned
ExperimentEngine::defaultThreads()
{
    if (const char *env = std::getenv("TCORAM_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<unsigned>(n);
        warnImpl("ignoring invalid TCORAM_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ExperimentEngine::ExperimentEngine(unsigned threads)
    : threads_(threads > 0 ? threads : defaultThreads())
{
}

std::uint64_t
ExperimentEngine::cellSeed(const SystemConfig &cfg, std::size_t w)
{
    return mixSeed(cfg.seed, w + 1);
}

Grid
ExperimentEngine::run(const std::vector<SystemConfig> &configs,
                      const std::vector<workload::Profile> &workloads,
                      InstCount insts, InstCount warmup) const
{
    Grid g;
    g.configs = configs;
    g.workloads = workloads;
    g.results.assign(configs.size(),
                     std::vector<SimResult>(workloads.size()));

    const std::size_t cells = configs.size() * workloads.size();
    if (cells == 0)
        return g;

    std::atomic<std::size_t> next{0};
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= cells)
                return;
            const std::size_t c = i / workloads.size();
            const std::size_t w = i % workloads.size();
            g.results[c][w] =
                runOne(configs[c], workloads[w], insts, warmup,
                       cellSeed(configs[c], w));
        }
    };

    std::size_t n = threads_ < cells ? threads_ : cells;
    if (n <= 1) {
        worker();
        return g;
    }
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (std::size_t t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return g;
}

} // namespace tcoram::sim
