#include "sim/experiment.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <locale>
#include <sstream>

#include "common/log.hh"
#include "sim/experiment_engine.hh"
#include "sim/secure_processor.hh"

namespace tcoram::sim {

SimResult
runOne(const SystemConfig &cfg, const workload::Profile &profile,
       InstCount insts, InstCount warmup)
{
    SecureProcessor proc(cfg, profile);
    return proc.run(insts, warmup);
}

SimResult
runOne(const SystemConfig &cfg, const workload::Profile &profile,
       InstCount insts, InstCount warmup, std::uint64_t seed)
{
    SystemConfig seeded = cfg;
    seeded.seed = seed;
    return runOne(seeded, profile, insts, warmup);
}

Grid
runGrid(const std::vector<SystemConfig> &configs,
        const std::vector<workload::Profile> &workloads, InstCount insts,
        InstCount warmup)
{
    return ExperimentEngine().run(configs, workloads, insts, warmup);
}

double
perfOverheadX(const SimResult &r, const SimResult &base)
{
    tcoram_assert(base.cycles > 0, "baseline ran zero cycles");
    tcoram_assert(r.instructions == base.instructions,
                  "overhead requires equal instruction counts");
    return static_cast<double>(r.cycles) /
           static_cast<double>(base.cycles);
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    tcoram_assert(cells.size() == headers_.size(),
                  "row width != header width");
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
        width[i] = headers_[i].size();
    for (const auto &row : rows_)
        for (std::size_t i = 0; i < row.size(); ++i)
            width[i] = std::max(width[i], row[i].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            std::printf("%-*s  ", static_cast<int>(width[i]),
                        row[i].c_str());
        std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::fmt(double v, int precision)
{
    // snprintf with the C locale's formatting is not enough: printf
    // honours the process's LC_NUMERIC. Use a classic-imbued stream so
    // bench output is byte-identical whatever locale the host set.
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

double
geoMean(const std::vector<double> &values)
{
    tcoram_assert(!values.empty(), "geoMean of empty set");
    double acc = 0.0;
    for (double v : values) {
        tcoram_assert(v > 0, "geoMean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace tcoram::sim
