#include "sim/kv_serving.hh"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "common/log.hh"
#include "oram/oram_config.hh"

namespace tcoram::sim {

namespace {

protocol::LeakageParams
runParams(const KvServingConfig &cfg)
{
    protocol::LeakageParams p;
    // Single-candidate rate set: rate decisions reveal lg(1) = 0 bits
    // and the slot grid is pinned, which is what makes the "exactly
    // periodic" gate exact rather than statistical.
    p.rateCount = 1;
    p.epoch0 = cfg.epoch0;
    return p;
}

oram::OramDeviceSpec
innerSpec(const KvServingConfig &cfg)
{
    oram::OramDeviceSpec spec;
    spec.kind = cfg.deviceKind;
    spec.keySeed = mixSeed(cfg.seed, 0x0de71ce5ull);
    spec.functionalBlockCap = cfg.functionalBlockCap;
    return spec;
}

} // namespace

KvServingRun::KvServingRun(const KvServingConfig &cfg)
    : cfg_(cfg), mem_(dram::DramConfig{}), rng_(cfg.seed),
      rates_(std::vector<Cycles>{cfg.rate}),
      schedule_(cfg.epoch0, 2, Cycles{1} << 40), learner_(rates_),
      backend_(cfg.kv)
{
    tcoram_assert(cfg_.shards >= 1, "kv serving needs a shard");
    tcoram_assert(cfg_.lanes >= 1, "kv serving needs a lane");
    const oram::OramConfig ocfg = oram::OramConfig::benchConfig();
    tcoram_assert(cfg_.kv.blockBytes == ocfg.blockBytes,
                  "kv serving: KV block size ", cfg_.kv.blockBytes,
                  " != device block size ", ocfg.blockBytes);
    if (cfg_.deviceKind == "functional") {
        // A capacity fold would alias distinct KV blocks (records
        // would overwrite each other); the KV table must fit uncapped.
        tcoram_assert(cfg_.functionalBlockCap == 0 ||
                          cfg_.functionalBlockCap >=
                              cfg_.kv.totalBlocks(),
                      "kv serving: functional block cap ",
                      cfg_.functionalBlockCap, " would fold the ",
                      cfg_.kv.totalBlocks(), "-block KV table");
        // First-touch id compaction is per shard; even the worst-case
        // routing (every KV block on one shard) must fit its subtree.
        const std::uint64_t per_shard =
            (ocfg.numBlocks + cfg_.shards - 1) / cfg_.shards;
        tcoram_assert(cfg_.kv.totalBlocks() <= per_shard,
                      "kv serving: ", cfg_.kv.totalBlocks(),
                      "-block KV table exceeds the ", per_shard,
                      "-block per-shard subtree");
    }
    device_ = std::make_unique<oram::ShardedOramDevice>(
        innerSpec(cfg_), ocfg, cfg_.shards,
        mixSeed(cfg_.seed, 0x0072a7e5ull), mem_, rng_, /*record=*/true);
    RingScheduler::Options opts;
    opts.lanes = cfg_.lanes;
    opts.ringCapacity = cfg_.ringCapacity;
    opts.threads = cfg_.threads;
    opts.recordLatencies = false; // whole-op latencies tracked here
    sched_ = std::make_unique<RingScheduler>(*device_, rates_, schedule_,
                                             learner_, cfg_.rate,
                                             runParams(cfg_), opts);
    source_ = workload::loadWorkload(cfg_.workload);
    const std::uint32_t ranks = source_->ranks();
    tcoram_assert(ranks >= 1, "kv serving: workload has no ranks");
    sessions_.reserve(ranks);
    laneSessions_.assign(cfg_.lanes, {});
    for (std::uint32_t rank = 0; rank < ranks; ++rank) {
        const auto lane = static_cast<std::uint16_t>(rank % cfg_.lanes);
        const std::uint32_t sid = sched_->openSession(
            mixSeed(cfg_.seed, 0x5e55'0000ull + rank), -1.0, lane);
        Session s(backend_);
        s.sid = sid;
        s.rank = rank;
        s.lane = lane;
        sessions_.push_back(std::move(s));
        laneSessions_[lane].push_back(sid);
    }
    slotBusy_ =
        std::make_unique<std::atomic<std::uint8_t>[]>(cfg_.kv.homeSlots);
    for (std::uint64_t i = 0; i < cfg_.kv.homeSlots; ++i)
        slotBusy_[i].store(0, std::memory_order_relaxed);
}

std::int64_t
KvServingRun::slotOfBlock(std::uint64_t block_id) const
{
    const std::uint64_t rel = block_id - cfg_.kv.baseBlockId;
    if (rel < cfg_.kv.homeSlots)
        return static_cast<std::int64_t>(rel);
    return static_cast<std::int64_t>((rel - cfg_.kv.homeSlots) /
                                     cfg_.kv.spillPerSlot);
}

bool
KvServingRun::reserveSlot(Session &s, std::int64_t slot)
{
    if (s.heldSlot == slot)
        return true;
    releaseSlot(s);
    std::uint8_t expected = 0;
    if (!slotBusy_[static_cast<std::uint64_t>(slot)]
             .compare_exchange_strong(expected, 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
        return false;
    s.heldSlot = slot;
    return true;
}

void
KvServingRun::releaseSlot(Session &s)
{
    if (s.heldSlot < 0)
        return;
    slotBusy_[static_cast<std::uint64_t>(s.heldSlot)].store(
        0, std::memory_order_release);
    s.heldSlot = -1;
}

KvServingRun::~KvServingRun() = default;

void
KvServingRun::buildValue(std::vector<std::uint8_t> &out, std::uint64_t key,
                         std::uint64_t seq, std::uint32_t len)
{
    tcoram_assert(len >= kMinValueBytes,
                  "self-verifying value needs >= ", kMinValueBytes,
                  " bytes");
    out.assign(len, 0);
    for (int i = 0; i < 8; ++i)
        out[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(key >> (8 * i));
    for (int i = 0; i < 8; ++i)
        out[static_cast<std::size_t>(8 + i)] =
            static_cast<std::uint8_t>(seq >> (8 * i));
    const std::uint64_t pattern_seed =
        key ^ (seq * 0x9e3779b97f4a7c15ull);
    for (std::uint32_t i = 16; i < len; ++i)
        out[i] = static_cast<std::uint8_t>(mixSeed(pattern_seed, i));
}

bool
KvServingRun::checkValue(std::span<const std::uint8_t> value,
                         std::uint64_t key)
{
    if (value.size() < kMinValueBytes)
        return false;
    std::uint64_t got_key = 0;
    std::uint64_t seq = 0;
    for (int i = 0; i < 8; ++i)
        got_key |= static_cast<std::uint64_t>(value[static_cast<std::size_t>(
                       i)])
                   << (8 * i);
    for (int i = 0; i < 8; ++i)
        seq |= static_cast<std::uint64_t>(
                   value[static_cast<std::size_t>(8 + i)])
               << (8 * i);
    if (got_key != key)
        return false;
    const std::uint64_t pattern_seed = key ^ (seq * 0x9e3779b97f4a7c15ull);
    for (std::size_t i = 16; i < value.size(); ++i)
        if (value[i] != static_cast<std::uint8_t>(
                            mixSeed(pattern_seed, i)))
            return false;
    return true;
}

bool
KvServingRun::advanceSession(Session &s)
{
    using workload::WorkloadOp;
    using workload::WorkloadOpKind;
    for (;;) {
        if (!s.cursor.done()) {
            const KvOpCursor::Step st = s.cursor.nextStep();
            if (!reserveSlot(s, slotOfBlock(st.blockId)))
                return false; // slot held by another op; retry later
            timing::OramTransaction txn = timing::OramTransaction::real(
                st.blockId, st.isWrite, s.sid);
            txn.data = st.data;
            txn.out = st.out;
            if (!sched_->trySubmit(s.sid, s.clock, txn).has_value())
                return false; // lane at backpressure bound; retry later
            s.awaiting = true;
            return true;
        }
        if (s.opKind == WorkloadOpKind::Scan && s.scanLeft > 0) {
            s.opKey = s.scanKey++;
            --s.scanLeft;
            s.cursor.beginGet(s.opKey);
            continue;
        }
        const WorkloadOp op = source_->getNext(s.rank);
        switch (op.kind) {
        case WorkloadOpKind::Think:
            s.clock += op.thinkCycles;
            continue;
        case WorkloadOpKind::End:
            s.ended = true;
            return true;
        case WorkloadOpKind::Get:
            s.opKind = WorkloadOpKind::Get;
            s.opKey = op.key;
            s.opStart = s.clock;
            s.cursor.beginGet(op.key);
            continue;
        case WorkloadOpKind::Put: {
            s.opKind = WorkloadOpKind::Put;
            s.opKey = op.key;
            s.opStart = s.clock;
            const auto max_len =
                static_cast<std::uint32_t>(cfg_.kv.maxValueBytes());
            const std::uint32_t min_len =
                cfg_.selfVerify ? kMinValueBytes : 1;
            const std::uint32_t len = std::clamp(
                op.valueBytes, min_len, max_len);
            if (cfg_.selfVerify)
                buildValue(s.payload, op.key, s.putSeq++, len);
            else
                s.payload.assign(len,
                                 static_cast<std::uint8_t>(op.key));
            s.cursor.beginPut(op.key, s.payload);
            continue;
        }
        case WorkloadOpKind::Scan:
            s.opKind = WorkloadOpKind::Scan;
            s.opStart = s.clock;
            s.scanKey = op.key;
            s.scanLeft = op.scanLen;
            ++s.cursor.stats().scans;
            continue;
        }
    }
}

void
KvServingRun::finishOp(Session &s)
{
    using workload::WorkloadOpKind;
    const bool is_read = s.opKind == WorkloadOpKind::Get ||
                         s.opKind == WorkloadOpKind::Scan;
    if (is_read && cfg_.selfVerify && s.cursor.hit() &&
        !checkValue(s.cursor.value(), s.opKey))
        ++s.mismatches;
    ++s.opsDone;
    if (s.opKind == WorkloadOpKind::Scan && s.scanLeft > 0)
        return; // latency is recorded once, at the last element
    const Cycles latency = s.clock - s.opStart;
    if (s.opKind == WorkloadOpKind::Put)
        s.putLatencies.push_back(latency);
    else
        s.getLatencies.push_back(latency);
}

void
KvServingRun::handleCompletion(const SessionRing::Completion &c)
{
    tcoram_assert(c.sessionId < sessions_.size(), "unknown session");
    Session &s = sessions_[c.sessionId];
    tcoram_assert(s.awaiting, "completion for a session with nothing "
                              "in flight");
    s.awaiting = false;
    s.clock = std::max(s.clock, c.completion.done);
    s.lastDone = std::max(s.lastDone, c.completion.done);
    s.cursor.onComplete();
    if (s.cursor.done()) {
        releaseSlot(s);
        finishOp(s);
    }
}

void
KvServingRun::run()
{
    tcoram_assert(!ran_, "kv serving run already driven");
    ran_ = true;
    for (;;) {
        // Submission pass in session-id order, then one pump, then a
        // completion pass in lane order: every step deterministic, so
        // the whole run is a pure function of the config.
        for (Session &s : sessions_)
            if (!s.ended && !s.awaiting)
                advanceSession(s);
        sched_->runUntilIdle();
        SessionRing::Completion c;
        for (std::size_t l = 0; l < cfg_.lanes; ++l)
            while (sched_->lane(l).popCompletion(c))
                handleCompletion(c);
        bool done = true;
        for (const Session &s : sessions_)
            if (!s.ended || s.awaiting) {
                done = false;
                break;
            }
        if (done)
            break;
    }
    drainTail();
}

void
KvServingRun::runMultiProducer()
{
    tcoram_assert(!ran_, "kv serving run already driven");
    ran_ = true;
    std::atomic<std::size_t> live{cfg_.lanes};
    auto client = [&](std::size_t l) {
        // This thread owns lane l's ring endpoints and every session
        // on the lane; the rings' acquire/release pairs are the only
        // synchronization with the scheduler.
        SessionRing &ring = sched_->lane(l);
        const std::vector<std::uint32_t> &mine = laneSessions_[l];
        for (;;) {
            bool progress = false;
            SessionRing::Completion c;
            while (ring.popCompletion(c)) {
                handleCompletion(c);
                progress = true;
            }
            bool lane_done = true;
            for (const std::uint32_t sid : mine) {
                Session &s = sessions_[sid];
                if (s.ended) {
                    lane_done = lane_done && !s.awaiting;
                    continue;
                }
                lane_done = false;
                if (!s.awaiting && advanceSession(s))
                    progress = true;
            }
            if (lane_done)
                break;
            if (!progress)
                std::this_thread::yield();
        }
        live.fetch_sub(1, std::memory_order_release);
    };
    std::vector<std::thread> clients;
    clients.reserve(cfg_.lanes);
    for (std::size_t l = 0; l < cfg_.lanes; ++l)
        clients.emplace_back(client, l);
    while (live.load(std::memory_order_acquire) > 0) {
        sched_->runUntilIdle();
        std::this_thread::yield();
    }
    for (std::thread &t : clients)
        t.join();
    sched_->runUntilIdle();
    drainTail();
}

void
KvServingRun::drainTail()
{
    Cycles last = 0;
    for (const Session &s : sessions_)
        last = std::max(last, s.lastDone);
    sched_->drainUntil(last + cfg_.drainSlackPeriods * period());
}

KVStats
KvServingRun::stats() const
{
    KVStats total;
    for (const Session &s : sessions_)
        total.merge(s.cursor.stats());
    return total;
}

std::uint64_t
KvServingRun::payloadMismatches() const
{
    std::uint64_t n = 0;
    for (const Session &s : sessions_)
        n += s.mismatches;
    return n;
}

std::uint64_t
KvServingRun::opsCompleted() const
{
    std::uint64_t n = 0;
    for (const Session &s : sessions_)
        n += s.opsDone;
    return n;
}

bool
KvServingRun::allTokensRetired() const
{
    for (std::size_t l = 0; l < cfg_.lanes; ++l) {
        const SessionRing &ring = sched_->lane(l);
        if (ring.drained() != ring.submitted() ||
            ring.retiredFence() != ring.submitted())
            return false;
    }
    return true;
}

Cycles
KvServingRun::period() const
{
    Cycles p = 0;
    for (std::uint32_t i = 0; i < device_->shardCount(); ++i)
        p = std::max(p, shardPeriod(i));
    return p;
}

Cycles
KvServingRun::shardPeriod(std::uint32_t i) const
{
    return cfg_.rate + device_->shard(i).accessLatency();
}

std::vector<KvServingRun::Event>
KvServingRun::shardStream(std::uint32_t i) const
{
    const timing::RecordingOramDevice *rec = device_->recorder(i);
    tcoram_assert(rec != nullptr, "kv serving always records");
    std::vector<Event> out;
    out.reserve(rec->records().size());
    for (const auto &r : rec->records())
        out.push_back({r.completion.start,
                       r.kind == timing::OramTransaction::Kind::Real});
    return out;
}

std::vector<Cycles>
KvServingRun::shardStarts(std::uint32_t i) const
{
    std::vector<Cycles> out;
    for (const Event &e : shardStream(i))
        out.push_back(e.start);
    return out;
}

std::string
KvServingRun::streamCsv() const
{
    std::ostringstream os;
    os << "shard,start,kind\n";
    for (std::uint32_t i = 0; i < device_->shardCount(); ++i)
        for (const Event &e : shardStream(i))
            os << i << ',' << e.start << ',' << (e.real ? 'r' : 'd')
               << '\n';
    return os.str();
}

Cycles
KvServingRun::percentile(std::vector<Cycles> &samples, double q) const
{
    if (samples.empty())
        return 0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size()));
    const std::size_t idx = std::min(rank, samples.size() - 1);
    std::nth_element(samples.begin(),
                     samples.begin() + static_cast<std::ptrdiff_t>(idx),
                     samples.end());
    return samples[idx];
}

Cycles
KvServingRun::getLatencyPercentile(double q) const
{
    std::vector<Cycles> all;
    for (const Session &s : sessions_)
        all.insert(all.end(), s.getLatencies.begin(),
                   s.getLatencies.end());
    return percentile(all, q);
}

Cycles
KvServingRun::putLatencyPercentile(double q) const
{
    std::vector<Cycles> all;
    for (const Session &s : sessions_)
        all.insert(all.end(), s.putLatencies.begin(),
                   s.putLatencies.end());
    return percentile(all, q);
}

} // namespace tcoram::sim
