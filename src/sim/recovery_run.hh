/**
 * @file
 * RecoveryRun: the crash-consistent run harness behind the fault-
 * recovery bench, the checkpoint tests and cli_sim's checkpoint mode.
 * It owns the whole deterministic stack — DRAM model, sharded device
 * array (recorded), rate configuration, shard-aware scheduler — and
 * drives one open-loop multi-session workload through it, with three
 * additions over driving the scheduler directly:
 *
 *  - checkpoint: saveTo() serializes the complete run state (device
 *    array including functional tree images and fault-injector draws,
 *    scheduler including queued backlog, stats and the leakage
 *    monitor's ledger) through sim/checkpoint.hh's crash-consistent
 *    file format;
 *  - restart: a freshly constructed RecoveryRun over the SAME config
 *    can restoreFrom() a snapshot instead of start()ing, after which
 *    serving continues bit-exactly where the saved run left off — the
 *    completed run's observable shard streams, stats and counters are
 *    indistinguishable from an uninterrupted run (golden-pinned);
 *  - fault accounting: the per-shard fault/recovery counters and the
 *    enforcer-charged recovery slots are summed for reporting.
 *
 * Determinism contract: everything is derived from the config (seeds
 * included), so two RecoveryRuns with equal configs produce identical
 * streams — the bit-identity gates in bench_fault_recovery and
 * tests/test_fault_recovery rest on this.
 */

#ifndef TCORAM_SIM_RECOVERY_RUN_HH
#define TCORAM_SIM_RECOVERY_RUN_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/dram_model.hh"
#include "dram/faulty_memory.hh"
#include "oram/oram_device.hh"
#include "oram/sharded_device.hh"
#include "sim/oram_scheduler.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"

namespace tcoram::sim {

struct RecoveryRunConfig
{
    /** Per-shard backend: "timing" or "functional". */
    std::string deviceKind = "timing";
    std::uint32_t shards = 1;
    std::uint32_t sessions = 2;
    /** Open-loop backlog per session (arrivals at cycle k). */
    std::uint64_t txnsPerSession = 64;
    /** Enforced inter-access gap (single-candidate rate set). */
    Cycles rate = 1000;
    /** Master seed: calibration, keys, routing, protocol identities. */
    std::uint64_t seed = 42;
    /** Fault model (data kinds arm the functional datapath). */
    dram::FaultSpec fault{};
    unsigned retryBudget = 4;
    /** Functional tree capacity cap (keeps host memory bounded). */
    std::uint64_t functionalBlockCap = 512;
    /** Path read/write-back scheduling of each shard's controller
     *  (the golden-pinned recovery streams run Sync). */
    oram::PathMode pathMode = oram::PathMode::Sync;
    /** Background eviction engine (requires Pipelined pathMode when
     *  non-off; oram/eviction_engine.hh). */
    oram::EvictionPolicy evictionPolicy = oram::EvictionPolicy::Off;
    std::uint32_t evictionBudget = 0;
    /** First epoch length; small enough that runs cross boundaries. */
    Cycles epoch0 = Cycles{1} << 18;
    /** Trailing-dummy drain horizon, in slot periods past the last
     *  real completion. */
    Cycles drainSlackPeriods = 8;
    /**
     * Workload-plane spec ("method:k=v,..."; workload/
     * workload_source.hh). Empty keeps the legacy synthetic backlog.
     * Non-empty switches the run to workload-driven mode: the op
     * stream is materialized into the backlog at construction (one
     * session per rank — `sessions` is overridden), and checkpoint
     * marks requested by the method (e.g. "daly"'s optimum interval)
     * become checkpointMarks() for the snapshot chain.
     */
    std::string workloadSpec{};
};

class RecoveryRun
{
  public:
    /** One observable stream event (per-shard, adversary's view). */
    struct Event
    {
        Cycles start = 0;
        bool real = false;

        bool
        operator==(const Event &o) const
        {
            return start == o.start && real == o.real;
        }
    };

    /** Construct the stack and open the sessions (no work queued). */
    explicit RecoveryRun(const RecoveryRunConfig &cfg);
    ~RecoveryRun();

    /** Queue the whole open-loop backlog (cold start). */
    void start();

    /**
     * Restore a snapshot instead of start()ing: the backlog, device
     * and stats resume exactly where the saved run stood.
     * @return empty string on success, else the load diagnostic.
     */
    std::string restoreFrom(const std::string &path);

    /** Serve one queued transaction. @return false when drained. */
    bool serveOne();

    /**
     * Serve everything left, then fire trailing dummies to the
     * deterministic horizon. @return the drain horizon cycle.
     */
    Cycles finish();

    /** Crash-consistent snapshot of the full run state. @return empty
     *  string on success, else the save diagnostic. */
    std::string saveTo(const std::string &path) const;

    std::uint64_t servedTotal() const { return served_; }
    std::uint64_t backlogTotal() const
    {
        if (workloadDriven())
            return plan_.size();
        return static_cast<std::uint64_t>(cfg_.sessions) *
               cfg_.txnsPerSession;
    }
    bool workloadDriven() const { return !cfg_.workloadSpec.empty(); }
    /**
     * Served-count marks at which the workload asked for a snapshot
     * (serve until servedTotal() == mark, then saveTo() — the Daly
     * snapshot chain). Empty for methods without checkpoint requests.
     */
    const std::vector<std::uint64_t> &checkpointMarks() const
    {
        return marks_;
    }
    /** The workload's computed checkpoint interval in ops (0 when the
     *  method has none — workload/workload_source.hh). */
    std::uint64_t checkpointIntervalOps() const
    {
        return checkpointIntervalOps_;
    }
    Cycles lastRealCompletion() const { return lastReal_; }

    std::uint32_t shardCount() const { return device_->shardCount(); }
    /** Shard @p i's full recorded stream (reals and dummies). */
    std::vector<Event> shardStream(std::uint32_t i) const;

    const OramScheduler &scheduler() const { return *sched_; }
    oram::ShardedOramDevice &device() { return *device_; }
    const RecoveryRunConfig &config() const { return cfg_; }

    /** Fault/recovery counters summed over functional shards (all
     *  zero for timing backends and fault-free runs). */
    std::uint64_t faultsInjected() const;
    std::uint64_t faultsDetected() const;
    std::uint64_t faultsRecovered() const;
    std::uint64_t retriesIssued() const;
    /** Enforcer-charged recovery slots summed over shards. */
    std::uint64_t recoverySlots() const;
    /** Background evictions issued, summed over shards (0 with the
     *  eviction engine off). */
    std::uint64_t evictionsIssued() const;

    /**
     * Functional payload round trip under the active fault model:
     * write @p probes seeded blocks through the scheduler, read each
     * back, count mismatches (0 on a correct datapath). No-op (0) for
     * timing backends. Run after finish()'s serves, before reusing
     * the run for stream comparisons.
     */
    std::uint64_t verifyPayloads(std::uint64_t probes);

    /** One CSV row: config echo + outcome + fault counters. */
    std::string csvRow() const;
    static std::string csvHeader();

  private:
    /** One materialized workload access (workload-driven mode). */
    struct PlannedOp
    {
        std::uint32_t session = 0;
        Cycles arrival = 0;
        std::uint64_t blockId = 0;
        bool isWrite = false;
    };

    void materializeWorkload();

    RecoveryRunConfig cfg_;
    dram::DramModel mem_;
    Rng rng_;
    timing::RateSet rates_;
    timing::EpochSchedule schedule_;
    timing::RateLearner learner_;
    std::unique_ptr<oram::ShardedOramDevice> device_;
    std::unique_ptr<OramScheduler> sched_;
    bool started_ = false;
    std::uint64_t served_ = 0;
    Cycles lastReal_ = 0;
    /** Next probe arrival per session (after the backlog's arrivals). */
    std::vector<Cycles> probeArrival_;
    /** Workload-driven backlog (empty in legacy mode). */
    std::vector<PlannedOp> plan_;
    /** Served-count checkpoint marks, ascending. */
    std::vector<std::uint64_t> marks_;
    std::uint64_t checkpointIntervalOps_ = 0;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_RECOVERY_RUN_HH
