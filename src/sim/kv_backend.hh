/**
 * @file
 * KVBackend: variable-size keys/values mapped onto fixed-size ORAM
 * blocks through the transactional device interface — the product
 * layer of the KV-serving scenario.
 *
 * Layout. The block space is a home-slot table plus a private spill
 * strip per slot, all at DETERMINISTIC block ids (no pointers stored,
 * so every access sequence is computable from key + header alone):
 *
 *   home slot h        -> blockId base + h
 *   spill j of slot h  -> blockId base + homeSlots + h*spillPerSlot + j
 *
 * A record lives in the home block of the slot its key PROBED to
 * (AES-PRF home slot + linear probing, one ORAM access per probe):
 *
 *   home block:  [state u8][key u64 LE][len u32 LE][inline payload]
 *   spill block: raw payload bytes (slice len beyond the inline cap)
 *
 * The value's first inlineCapacity() bytes ride the home block; the
 * remainder spills across ceil(rest / blockBytes) strip blocks. `len`
 * alone determines the spill count, so a get is: probe reads until
 * match/empty, then the spill reads — every step an ordinary
 * OramTransaction, timing-protected like any other traffic.
 *
 * Concurrency: KVBackend itself is immutable after construction
 * (config + stateless AES-PRF), safe to share across producer
 * threads. All per-operation state lives in KvOpCursor — one per
 * session — which exposes the op as a sequence of Steps so closed-
 * loop ring clients can interleave thousands of in-flight ops, one
 * outstanding ORAM transaction each. kvRunSync() drives a cursor to
 * completion against a bare device for tests and simple callers.
 */

#ifndef TCORAM_SIM_KV_BACKEND_HH
#define TCORAM_SIM_KV_BACKEND_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"
#include "crypto/prf.hh"
#include "timing/oram_device.hh"

namespace tcoram::sim {

/** KV-over-ORAM geometry. */
struct KvConfig
{
    /** ORAM block size (must match the device geometry). */
    std::uint64_t blockBytes = 64;
    /** Home-slot table size (one block each). */
    std::uint64_t homeSlots = 2048;
    /** Spill strip length per slot (blocks). */
    std::uint32_t spillPerSlot = 2;
    /** Max linear probes before a get misses / a put fails. */
    std::uint32_t probeLimit = 64;
    /** AES-PRF key seed for the key -> home-slot map. */
    std::uint64_t prfSeed = 1;
    /** First block id of the table (tables can be stacked). */
    std::uint64_t baseBlockId = 0;

    /** [state u8][key u64][len u32]. */
    static constexpr std::uint64_t kHeaderBytes = 13;

    std::uint64_t
    inlineCapacity() const
    {
        return blockBytes - kHeaderBytes;
    }

    std::uint64_t
    maxValueBytes() const
    {
        return inlineCapacity() + spillPerSlot * blockBytes;
    }

    /** Home table + every spill strip. */
    std::uint64_t
    totalBlocks() const
    {
        return homeSlots * (1 + spillPerSlot);
    }
};

/** Counters one cursor accumulates; harnesses merge per-session
 *  instances (keeps multi-producer recording race-free). */
struct KVStats
{
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t scans = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t updates = 0;
    std::uint64_t failedPuts = 0;
    std::uint64_t probes = 0;
    std::uint64_t spillBlocksRead = 0;
    std::uint64_t spillBlocksWritten = 0;
    std::uint64_t oramReads = 0;
    std::uint64_t oramWrites = 0;

    void merge(const KVStats &o);
};

/** Immutable mapping + codec core (shareable across threads). */
class KVBackend
{
  public:
    explicit KVBackend(const KvConfig &cfg);

    const KvConfig &config() const { return cfg_; }

    /** AES-PRF home slot of @p key (stateless, thread-safe). */
    std::uint64_t
    homeSlot(std::uint64_t key) const
    {
        return prf_.eval(key) % cfg_.homeSlots;
    }

    std::uint64_t
    homeBlockId(std::uint64_t slot) const
    {
        return cfg_.baseBlockId + slot;
    }

    std::uint64_t
    spillBlockId(std::uint64_t slot, std::uint32_t j) const
    {
        return cfg_.baseBlockId + cfg_.homeSlots + slot * cfg_.spillPerSlot +
               j;
    }

    /** Spill blocks a value of @p len bytes needs beyond the inline
     *  part. */
    std::uint32_t spillBlocksFor(std::uint64_t len) const;

    struct RecordHeader
    {
        bool used = false;
        std::uint64_t key = 0;
        std::uint32_t len = 0;
    };

    /** Encode state + key + len + the inline payload slice into
     *  @p block (blockBytes, zero-padded). */
    void encodeRecord(std::span<std::uint8_t> block, std::uint64_t key,
                      std::span<const std::uint8_t> value) const;
    RecordHeader decodeHeader(std::span<const std::uint8_t> block) const;

  private:
    KvConfig cfg_;
    crypto::Prf prf_;
};

/**
 * One in-flight KV operation as a sequence of ORAM steps. Protocol:
 *
 *   cursor.beginGet(key);            // or beginPut(key, value)
 *   while (!cursor.done()) {
 *       auto s = cursor.nextStep();  // idempotent until onComplete
 *       ... submit {s.blockId, s.isWrite, s.data, s.out} ...
 *       ... wait for THAT completion ...
 *       cursor.onComplete();
 *   }
 *   cursor.hit() / cursor.value() / cursor.failed()
 *
 * The spans a Step exposes point into cursor-owned buffers and stay
 * valid until onComplete(), so a closed-loop client never copies.
 */
class KvOpCursor
{
  public:
    struct Step
    {
        std::uint64_t blockId = 0;
        bool isWrite = false;
        std::span<const std::uint8_t> data{};
        std::span<std::uint8_t> out{};
    };

    explicit KvOpCursor(const KVBackend &backend);

    void beginGet(std::uint64_t key);
    /** Copies @p value (fatal beyond maxValueBytes()). */
    void beginPut(std::uint64_t key, std::span<const std::uint8_t> value);

    bool done() const { return phase_ == Phase::Done; }
    /** Idempotent until onComplete() (re-call after backpressure). */
    Step nextStep();
    void onComplete();

    /** Get outcome (valid once done). */
    bool hit() const { return hit_; }
    const std::vector<std::uint8_t> &value() const { return value_; }
    /** Put outcome: probe limit exhausted, nothing written. */
    bool failed() const { return failed_; }

    KVStats &stats() { return stats_; }
    const KVStats &stats() const { return stats_; }

  private:
    enum class Phase : std::uint8_t
    {
        Done,
        ProbeRead,
        HomeWrite,
        SpillRead,
        SpillWrite,
    };

    void finishProbe();

    const KVBackend *be_;
    Phase phase_ = Phase::Done;
    bool isPut_ = false;
    std::uint64_t key_ = 0;
    std::uint64_t slot_ = 0;
    std::uint32_t probe_ = 0;
    std::uint32_t spillIdx_ = 0;
    std::uint32_t spillCount_ = 0;
    std::uint32_t valueLen_ = 0;
    bool hit_ = false;
    bool failed_ = false;
    std::vector<std::uint8_t> io_;    ///< block-size transfer buffer
    std::vector<std::uint8_t> value_; ///< put payload / get result
    KVStats stats_;
};

/**
 * Drive @p cursor to completion against a bare device: submit each
 * step at @p now, advance @p now to its completion. Convenience for
 * tests and single-session callers; the serving harness interleaves
 * steps through the ring scheduler instead.
 */
void kvRunSync(KvOpCursor &cursor, timing::OramDeviceIf &dev,
               std::uint32_t session_id, Cycles &now);

} // namespace tcoram::sim

#endif // TCORAM_SIM_KV_BACKEND_HH
