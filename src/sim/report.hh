/**
 * @file
 * Machine-readable experiment output: CSV emission for result grids
 * and single runs, so the bench harness's numbers can be diffed,
 * plotted, or regression-tracked without scraping stdout.
 */

#ifndef TCORAM_SIM_REPORT_HH
#define TCORAM_SIM_REPORT_HH

#include <string>

#include "sim/column_batch.hh"
#include "sim/experiment.hh"

namespace tcoram::sim {

/** CSV header matching csvRow(). */
std::string csvHeader();

/** One result as a CSV row (no trailing newline). */
std::string csvRow(const SimResult &r);

/** Column layout of a result row (csvHeader()'s columns, typed). */
ColumnSchema resultSchema();

/**
 * Record @p r into @p chunk as raw typed values under @p order_key
 * (the grid cell index — config-major, matching toCsv()'s emission
 * order). The workers' half of the columnar plane: no formatting.
 */
void appendResult(ColumnChunk &chunk, std::uint64_t order_key,
                  const SimResult &r);

/**
 * Serialize a whole grid (header + one row per run). Uses the grid's
 * columnar plane when present, the per-row formatter otherwise; both
 * emit identical bytes (test-enforced).
 */
std::string toCsv(const Grid &grid);

/** Write a grid to @p path (fatal on I/O error). */
void writeCsv(const Grid &grid, const std::string &path);

} // namespace tcoram::sim

#endif // TCORAM_SIM_REPORT_HH
