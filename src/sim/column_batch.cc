#include "sim/column_batch.hh"

#include <algorithm>
#include <locale>
#include <sstream>

#include "common/log.hh"

namespace tcoram::sim {

std::string
ColumnSchema::headerCsv() const
{
    std::string out;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i != 0)
            out += ',';
        out += fields[i].name;
    }
    return out;
}

ColumnChunk::ColumnChunk(const ColumnSchema &schema) : schema_(&schema)
{
    cols_.resize(schema.fields.size());
    for (std::size_t i = 0; i < cols_.size(); ++i)
        cols_[i].type = schema.fields[i].type;
}

void
ColumnChunk::reserve(std::size_t rows)
{
    order_.reserve(rows);
    for (Column &c : cols_) {
        switch (c.type) {
          case ColumnType::Str: c.s.reserve(rows); break;
          case ColumnType::U64: c.u.reserve(rows); break;
          case ColumnType::F64: c.d.reserve(rows); break;
        }
    }
}

void
ColumnChunk::beginRow(std::uint64_t order_key)
{
    tcoram_dassert(!open_, "beginRow on an open row");
    order_.push_back(order_key);
    cursor_ = 0;
    open_ = true;
}

void
ColumnChunk::str(std::string v)
{
    tcoram_dassert(open_ && cursor_ < cols_.size() &&
                       cols_[cursor_].type == ColumnType::Str,
                   "schema mismatch: str cell");
    cols_[cursor_++].s.push_back(std::move(v));
}

void
ColumnChunk::u64(std::uint64_t v)
{
    tcoram_dassert(open_ && cursor_ < cols_.size() &&
                       cols_[cursor_].type == ColumnType::U64,
                   "schema mismatch: u64 cell");
    cols_[cursor_++].u.push_back(v);
}

void
ColumnChunk::f64(double v)
{
    tcoram_dassert(open_ && cursor_ < cols_.size() &&
                       cols_[cursor_].type == ColumnType::F64,
                   "schema mismatch: f64 cell");
    cols_[cursor_++].d.push_back(v);
}

void
ColumnChunk::endRow()
{
    tcoram_assert(open_ && cursor_ == cols_.size(),
                  "endRow before every schema column was written");
    open_ = false;
}

ColumnBatch::ColumnBatch(ColumnSchema schema, std::size_t workers)
    : schema_(std::move(schema))
{
    tcoram_assert(workers > 0, "a batch needs at least one chunk");
    chunks_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        chunks_.emplace_back(schema_);
}

ColumnChunk &
ColumnBatch::chunk(std::size_t worker)
{
    tcoram_assert(worker < chunks_.size(), "chunk index out of range");
    return chunks_[worker];
}

std::size_t
ColumnBatch::rows() const
{
    std::size_t n = 0;
    for (const ColumnChunk &c : chunks_)
        n += c.rows();
    return n;
}

std::string
ColumnBatch::csv() const
{
    // Global emission order: merge every chunk's rows by order key.
    // Keys are unique by contract, so the sort is a permutation and
    // the bytes cannot depend on chunk (worker) assignment.
    struct Ref
    {
        std::uint64_t key;
        std::uint32_t chunk;
        std::uint32_t row;
    };
    std::vector<Ref> refs;
    refs.reserve(rows());
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
        tcoram_assert(!chunks_[c].open_, "serializing with an open row");
        for (std::size_t r = 0; r < chunks_[c].rows(); ++r)
            refs.push_back({chunks_[c].order_[r],
                            static_cast<std::uint32_t>(c),
                            static_cast<std::uint32_t>(r)});
    }
    std::sort(refs.begin(), refs.end(),
              [](const Ref &a, const Ref &b) { return a.key < b.key; });
    for (std::size_t i = 1; i < refs.size(); ++i)
        tcoram_assert(refs[i - 1].key != refs[i].key,
                      "duplicate row order key ", refs[i].key);

    // The ONE formatting pass of the stat plane. Classic locale keeps
    // the numeric bytes host-independent, exactly like the historical
    // per-row ostringstream emission this replaces.
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << schema_.headerCsv() << '\n';
    for (const Ref &ref : refs) {
        const ColumnChunk &chunk = chunks_[ref.chunk];
        for (std::size_t i = 0; i < chunk.cols_.size(); ++i) {
            if (i != 0)
                os << ',';
            const ColumnChunk::Column &col = chunk.cols_[i];
            switch (col.type) {
              case ColumnType::Str: os << col.s[ref.row]; break;
              case ColumnType::U64: os << col.u[ref.row]; break;
              case ColumnType::F64: os << col.d[ref.row]; break;
            }
        }
        os << '\n';
    }
    return os.str();
}

} // namespace tcoram::sim
