#include "sim/pareto.hh"

#include "common/log.hh"

namespace tcoram::sim {

bool
OperatingPoint::dominates(const OperatingPoint &o) const
{
    const bool no_worse = perfOverheadX <= o.perfOverheadX &&
                          watts <= o.watts && leakageBits <= o.leakageBits;
    const bool better = perfOverheadX < o.perfOverheadX ||
                        watts < o.watts || leakageBits < o.leakageBits;
    return no_worse && better;
}

std::vector<OperatingPoint>
operatingPoints(const Grid &grid, std::size_t baseline_index)
{
    tcoram_assert(baseline_index < grid.configs.size(),
                  "baseline index out of range");
    std::vector<OperatingPoint> points;
    for (std::size_t c = 0; c < grid.configs.size(); ++c) {
        if (c == baseline_index)
            continue;
        OperatingPoint p;
        p.name = grid.configs[c].name;
        std::vector<double> xs;
        double watts = 0.0;
        for (std::size_t w = 0; w < grid.workloads.size(); ++w) {
            xs.push_back(
                perfOverheadX(grid.at(c, w), grid.at(baseline_index, w)));
            watts += grid.at(c, w).watts;
        }
        p.perfOverheadX = geoMean(xs);
        p.watts = watts / static_cast<double>(grid.workloads.size());
        p.leakageBits = grid.at(c, 0).paperLeakageBits;
        points.push_back(p);
    }
    return points;
}

std::vector<OperatingPoint>
paretoFrontier(const std::vector<OperatingPoint> &points)
{
    std::vector<OperatingPoint> frontier;
    for (const auto &candidate : points) {
        bool dominated = false;
        for (const auto &other : points)
            if (other.dominates(candidate))
                dominated = true;
        if (!dominated)
            frontier.push_back(candidate);
    }
    return frontier;
}

} // namespace tcoram::sim
