#include "sim/secure_processor.hh"

#include <algorithm>
#include <cmath>

#include "common/bitutils.hh"
#include "common/log.hh"
#include "crypto/crypto_engine.hh"
#include "dram/trace_memory.hh"
#include "oram/oram_device.hh"
#include "oram/sharded_device.hh"
#include "timing/leakage.hh"

namespace tcoram::sim {

/** Insecure flat-DRAM backend (base_dram). */
class SecureProcessor::DramBackend : public cpu::MemorySystemIf
{
  public:
    explicit DramBackend(dram::MemoryIf &mem) : mem_(mem) {}

    Cycles
    serveMiss(Cycles now, Addr line_addr) override
    {
        return mem_.access(now, {line_addr, 64, false});
    }

    Cycles
    serveAsync(Cycles now, Addr line_addr) override
    {
        return mem_.access(now, {line_addr, 64, true});
    }

  private:
    dram::MemoryIf &mem_;
};

namespace {

/** Line address -> logical ORAM block id (64 B cache lines). */
std::uint64_t
lineBlockId(Addr line_addr)
{
    return line_addr / 64;
}

} // namespace

/** Unprotected ORAM backend (base_oram): back-to-back accesses. */
class SecureProcessor::OramBackend : public cpu::MemorySystemIf
{
  public:
    explicit OramBackend(timing::OramDeviceIf &dev) : dev_(dev) {}

    Cycles
    serveMiss(Cycles now, Addr line_addr) override
    {
        return dev_
            .submit(now, timing::OramTransaction::real(
                             lineBlockId(line_addr), /*is_write=*/false))
            .done;
    }

    Cycles
    serveAsync(Cycles now, Addr line_addr) override
    {
        return dev_
            .submit(now, timing::OramTransaction::real(
                             lineBlockId(line_addr), /*is_write=*/true))
            .done;
    }

  private:
    timing::OramDeviceIf &dev_;
};

/**
 * Sharded rate-enforced backend: the PRF router assigns each miss to a
 * subtree shard, whose own enforcer times it. Each shard's observable
 * stream stays periodic independently; a miss only ever waits on its
 * own shard's slot.
 */
class SecureProcessor::ShardedEnforcedBackend : public cpu::MemorySystemIf
{
  public:
    ShardedEnforcedBackend(
        oram::ShardedOramDevice &dev,
        std::vector<std::unique_ptr<timing::RateEnforcer>> &enfs)
        : dev_(dev), enfs_(enfs)
    {
    }

    Cycles
    serveMiss(Cycles now, Addr line_addr) override
    {
        return serve(now, line_addr, /*is_write=*/false);
    }

    Cycles
    serveAsync(Cycles now, Addr line_addr) override
    {
        return serve(now, line_addr, /*is_write=*/true);
    }

  private:
    Cycles
    serve(Cycles now, Addr line_addr, bool is_write)
    {
        auto txn =
            timing::OramTransaction::real(lineBlockId(line_addr), is_write);
        const std::uint32_t s = dev_.route(txn);
        return enfs_[s]->serve(now, txn).done;
    }

    oram::ShardedOramDevice &dev_;
    std::vector<std::unique_ptr<timing::RateEnforcer>> &enfs_;
};

/** Rate-enforced ORAM backend (static_* and dynamic_* schemes). */
class SecureProcessor::EnforcedBackend : public cpu::MemorySystemIf
{
  public:
    explicit EnforcedBackend(timing::RateEnforcer &enf) : enf_(enf) {}

    Cycles
    serveMiss(Cycles now, Addr line_addr) override
    {
        return enf_
            .serve(now, timing::OramTransaction::real(
                            lineBlockId(line_addr), /*is_write=*/false))
            .done;
    }

    Cycles
    serveAsync(Cycles now, Addr line_addr) override
    {
        return enf_
            .serve(now, timing::OramTransaction::real(
                            lineBlockId(line_addr), /*is_write=*/true))
            .done;
    }

  private:
    timing::RateEnforcer &enf_;
};

namespace {

/**
 * Functional fast-forward backend: misses complete instantly. Used
 * only during warm-up so the caches reach steady state without the
 * ORAM timing machinery observing (the paper fast-forwards 1-20 G
 * instructions functionally before timing simulation, §9.1.1).
 */
class ZeroLatencyBackend : public cpu::MemorySystemIf
{
  public:
    Cycles serveMiss(Cycles now, Addr) override { return now; }
    Cycles serveAsync(Cycles now, Addr) override { return now; }
};

} // namespace

/**
 * §10's no-ORAM device: one cache-line transfer per (real or dummy)
 * access against closed-page DRAM. Closed pages put the row buffer in
 * a public state after every access, so a dummy to a fixed address is
 * indistinguishable from a real line fetch by DRAM-state probing.
 */
namespace {
class ProtectedDramDevice : public timing::OramDeviceIf
{
  public:
    explicit ProtectedDramDevice(dram::MemoryIf &mem) : mem_(mem)
    {
        // Calibrate the fixed access latency once (closed page makes
        // every access cost the same).
        const Cycles t0 = 1000;
        latency_ = mem_.access(t0, {0, 64, false}) - t0;
    }

    const char *kind() const override { return "protected_dram"; }

    timing::OramCompletion
    submit(Cycles now, const timing::OramTransaction &txn) override
    {
        if (txn.kind == timing::OramTransaction::Kind::Real)
            ++real_;
        else
            ++dummy_;
        const Cycles start = std::max(now, busyUntil_);
        busyUntil_ = start + latency_;
        timing::OramCompletion c;
        c.start = start;
        c.done = busyUntil_;
        c.bytesMoved = 64;
        return c;
    }

    Cycles accessLatency() const override { return latency_; }
    std::uint64_t bytesPerAccess() const override { return 64; }
    std::uint64_t realAccesses() const override { return real_; }
    std::uint64_t dummyAccesses() const override { return dummy_; }

  private:
    dram::MemoryIf &mem_;
    Cycles latency_ = 0;
    Cycles busyUntil_ = 0;
    std::uint64_t real_ = 0;
    std::uint64_t dummy_ = 0;
};
} // namespace

SecureProcessor::SecureProcessor(const SystemConfig &cfg,
                                 const workload::Profile &profile)
    : cfg_(cfg), rng_(cfg.seed)
{
    // The crypto-backend knob is applied by the driver once at startup
    // (single-threaded; see SystemConfig::cryptoBackend) — mutating
    // the process default from per-cell construction would race under
    // the parallel ExperimentEngine. Validate it here and make a
    // missing driver application non-silent.
    if (!cfg_.cryptoBackend.empty()) {
        const auto want = crypto::parseCryptoBackend(cfg_.cryptoBackend);
        if (want != crypto::CryptoBackend::Auto &&
            want != crypto::defaultCryptoBackend()) {
            warnImpl(detail::formatAll(
                "config '", cfg_.name, "' requests crypto backend '",
                cfg_.cryptoBackend, "' but the process default is '",
                crypto::backendName(crypto::defaultCryptoBackend()),
                "'; call crypto::setDefaultCryptoBackend at startup ",
                "(cli_sim --crypto-backend does this)"));
        }
    }

    // Validate dramMode and the shard count up front so an ill-formed
    // config dies naming itself even for the schemes (base_dram /
    // protected_dram) whose backends have no ORAM path and ignore the
    // resolved values.
    (void)cfg_.dramModeKind();
    (void)cfg_.shardCount();

    hierarchy_ = std::make_unique<cache::Hierarchy>(cfg_.llcBytes);
    trace_ = std::make_unique<workload::SyntheticTrace>(profile,
                                                        cfg_.seed ^ 0xabcd);

    // Main memory comes from the backend registry so configurations
    // (including "trace" wrapping) select it without new wiring here.
    mem_ = dram::makeMemory(cfg_.memorySpec());

    if (cfg_.scheme == Scheme::BaseDram) {
        backend_ = std::make_unique<DramBackend>(*mem_);
    } else if (cfg_.scheme == Scheme::ProtectedDram) {
        device_ = std::make_unique<ProtectedDramDevice>(*mem_);
        rates_ = std::make_unique<timing::RateSet>(
            cfg_.rateCount, cfg_.rateLo, cfg_.rateHi,
            cfg_.linearSpacing ? timing::RateSet::Spacing::Linear
                               : timing::RateSet::Spacing::Log);
        schedule_ = std::make_unique<timing::EpochSchedule>(
            cfg_.epoch0, cfg_.epochGrowth, cfg_.tmax);
        if (cfg_.learnerKind == SystemConfig::Learner::Threshold) {
            learner_ = std::make_unique<timing::ThresholdLearner>(
                *rates_, device_->accessLatency(),
                cfg_.thresholdSharpness);
        } else {
            learner_ = std::make_unique<timing::RateLearner>(
                *rates_, cfg_.divider);
        }
        enforcer_ = std::make_unique<timing::RateEnforcer>(
            *device_, *rates_, *schedule_, *learner_, cfg_.initialRate);
        backend_ = std::make_unique<EnforcedBackend>(*enforcer_);
    } else {
        // ORAM schemes run over the banked DDR3 model, behind the
        // configured transactional device backend (timing model or
        // real functional datapath — identical charging either way).
        oram::OramDeviceSpec dev_spec;
        dev_spec.kind = cfg_.oramDeviceKind();
        dev_spec.pathMode = cfg_.pathMode();
        dev_spec.keySeed = cfg_.seed ^ 0x0de71ce5ull;
        dev_spec.functionalBlockCap = cfg_.functionalBlockCap;
        dev_spec.datapath = cfg_.functionalDatapathKind();
        dev_spec.cryptoBackend =
            cfg_.cryptoBackend.empty()
                ? crypto::CryptoBackend::Auto
                : crypto::parseCryptoBackend(cfg_.cryptoBackend);
        dev_spec.shards = cfg_.shardCount();
        // Route assignment must be reproducible per seeded run but
        // independent of the datapath key stream.
        dev_spec.routeSeed = cfg_.seed ^ 0x0072a7e5ull;
        // Data-fault kinds arm the functional datapath's MAC-verified
        // retry recovery; timing kinds were already folded into the
        // memory spec by SystemConfig::memorySpec().
        dev_spec.fault = cfg_.faultSpecParsed();
        dev_spec.retryBudget = cfg_.faultRetryBudget;
        // Background eviction engine (validated: a non-off policy
        // requires the pipelined path mode and a nonzero budget).
        dev_spec.evictionPolicy = cfg_.evictionPolicyKind();
        dev_spec.evictionBudget = cfg_.evictionBudgetValue();
        device_ = oram::makeOramDevice(dev_spec, cfg_.oram, *mem_, rng_);
        auto *sharded = dynamic_cast<oram::ShardedOramDevice *>(
            device_.get());
        const std::uint32_t nshards =
            sharded != nullptr ? sharded->shardCount() : 1;

        if (cfg_.scheme == Scheme::BaseOram) {
            backend_ = std::make_unique<OramBackend>(*device_);
        } else {
            if (cfg_.scheme == Scheme::Static) {
                rates_ = std::make_unique<timing::RateSet>(
                    std::vector<Cycles>{cfg_.staticRate});
            } else {
                rates_ = std::make_unique<timing::RateSet>(
                    cfg_.rateCount, cfg_.rateLo, cfg_.rateHi,
                    cfg_.linearSpacing
                        ? timing::RateSet::Spacing::Linear
                        : timing::RateSet::Spacing::Log);
            }
            schedule_ = std::make_unique<timing::EpochSchedule>(
                cfg_.epoch0, cfg_.epochGrowth, cfg_.tmax);
            if (cfg_.learnerKind == SystemConfig::Learner::Threshold) {
                learner_ = std::make_unique<timing::ThresholdLearner>(
                    *rates_, device_->accessLatency(),
                    cfg_.thresholdSharpness);
            } else {
                learner_ = std::make_unique<timing::RateLearner>(
                    *rates_, cfg_.divider);
            }

            const Cycles initial_rate = cfg_.scheme == Scheme::Static
                                            ? cfg_.staticRate
                                            : cfg_.initialRate;
            if (nshards > 1) {
                // Rate enforcement is per shard: each subtree's stream
                // is timed by its own enforcer over its own device,
                // and a miss only waits on its own shard's slot.
                for (std::uint32_t i = 0; i < nshards; ++i)
                    shardEnforcers_.push_back(
                        std::make_unique<timing::RateEnforcer>(
                            sharded->shard(i), *rates_, *schedule_,
                            *learner_, initial_rate));
                backend_ = std::make_unique<ShardedEnforcedBackend>(
                    *sharded, shardEnforcers_);
            } else {
                enforcer_ = std::make_unique<timing::RateEnforcer>(
                    *device_, *rates_, *schedule_, *learner_,
                    initial_rate);
                backend_ = std::make_unique<EnforcedBackend>(*enforcer_);
            }
        }
    }

    // Optional session leakage budget (§2.1). A sharded run attaches
    // ONE monitor to every shard's enforcer: free decisions on any
    // shard draw from the composed budget, so the sum over the M
    // streams never exceeds L.
    if (cfg_.leakageLimitBits >= 0.0 && rates_ &&
        (enforcer_ || !shardEnforcers_.empty())) {
        monitor_ = std::make_unique<timing::LeakageMonitor>(
            cfg_.leakageLimitBits, rates_->size());
        if (enforcer_)
            enforcer_->attachMonitor(monitor_.get());
        for (auto &enf : shardEnforcers_)
            enf->attachMonitor(monitor_.get());
    }

    // Controller construction calibrates against main memory; drop
    // those transactions from a recording backend so its trace holds
    // only what an adversary would observe at runtime.
    if (auto *tm = dynamic_cast<dram::TraceMemory *>(mem_.get()))
        tm->clearRecords();

    core_ = std::make_unique<cpu::Core>(*hierarchy_, *backend_, *trace_,
                                        cfg_.ipcWindow);
}

SecureProcessor::~SecureProcessor() = default;

SimResult
SecureProcessor::run(InstCount insts, InstCount warmup)
{
    // Warm-up phase: functional fast-forward (§9.1.1). A throwaway
    // core over the same hierarchy and trace warms the caches with
    // zero-latency misses; the timed system (including the epoch timer
    // and rate learner) starts fresh afterwards. Event counters are
    // snapshotted so the measurement interval reports deltas only.
    cache::HierarchyEvents ev0;
    std::uint64_t llc0 = 0, mem_req0 = 0;
    if (warmup > 0) {
        ZeroLatencyBackend ff;
        cpu::Core warm_core(*hierarchy_, ff, *trace_, cfg_.ipcWindow);
        warm_core.run(warmup);
        ev0 = hierarchy_->events();
        llc0 = hierarchy_->llcMisses();
        mem_req0 = mem_->requestCount();
    }

    const cpu::CoreStats cs = core_->run(insts);

    // Fire the dummies the enforced schedule owes up to the final cycle
    // (they are observable and consume energy) — on every shard.
    if (enforcer_)
        enforcer_->drainUntil(core_->now());
    for (auto &enf : shardEnforcers_)
        enf->drainUntil(core_->now());

    SimResult r;
    r.configName = cfg_.name;
    r.workloadName = trace_->name();
    r.cycles = cs.cycles;
    r.instructions = cs.instructions;
    r.ipc = cs.ipc();
    r.llcMisses = hierarchy_->llcMisses() - llc0;
    r.ipcSeries = core_->ipcSeries();
    r.missSeries = core_->missSeries();
    r.ipcWindow = cfg_.ipcWindow;

    // Energy accounting (Table 2), deltas over the measured interval.
    const auto &hev = hierarchy_->events();
    power::EnergyEvents ev;
    ev.instructions = cs.instructions;
    ev.fpInstructions = 0; // SPEC-int suite
    ev.fetchBufferAccesses = cs.instructions;
    ev.l1iHits = hev.l1iHits - ev0.l1iHits;
    ev.l1iRefills = hev.l1iRefills - ev0.l1iRefills;
    ev.l1dHits = hev.l1dHits - ev0.l1dHits;
    ev.l1dRefills = hev.l1dRefills - ev0.l1dRefills;
    ev.l2HitsRefills = (hev.l2Hits + hev.l2Refills) -
                       (ev0.l2Hits + ev0.l2Refills);
    ev.cycles = cs.cycles;

    std::uint64_t oram_chunks = 0;
    Cycles oram_latency = 0;
    if (cfg_.scheme == Scheme::BaseDram) {
        ev.dramLineTransfers = mem_->requestCount() - mem_req0;
    } else if (cfg_.scheme == Scheme::ProtectedDram) {
        // Every (real or dummy) access is one line transfer through
        // the DRAM controller; no ORAM controller energy applies.
        r.oramReal = device_->realAccesses();
        r.oramDummy = device_->dummyAccesses();
        ev.dramLineTransfers = r.oramReal + r.oramDummy;
        r.oramLatency = device_->accessLatency();
        r.oramBytesPerAccess = device_->bytesPerAccess();
    } else {
        r.oramReal = device_->realAccesses();
        r.oramDummy = device_->dummyAccesses();
        ev.oramAccesses = r.oramReal + r.oramDummy;
        oram_chunks = divCeil(device_->bytesPerAccess(), 16);
        oram_latency = device_->accessLatency();
        r.oramLatency = oram_latency;
        r.oramBytesPerAccess = device_->bytesPerAccess();
        // Background-eviction telemetry (zero with the engine off; the
        // sharded wrapper sums over its shards).
        r.stashOccupancy = device_->stashOccupancy();
        r.stashHighWater = device_->stashHighWater();
        r.blocksEvicted = device_->blocksEvicted();
        r.evictionsIssued = device_->evictionsIssued();
        // Crypto attribution: every (real or dummy) access pays one
        // whole-path decrypt + encrypt per tree. The enforced schemes
        // read the run-cumulative enforcer counters (the single source
        // the per-transaction completions feed); base_oram has no
        // enforcer, so its constant-cost accesses are attributed
        // analytically.
        if (enforcer_) {
            r.cryptoBytes = enforcer_->counters().cryptoBytes();
            r.cryptoCalls = enforcer_->counters().cryptoCalls();
        } else if (!shardEnforcers_.empty()) {
            for (const auto &enf : shardEnforcers_) {
                r.cryptoBytes += enf->counters().cryptoBytes();
                r.cryptoCalls += enf->counters().cryptoCalls();
            }
        } else {
            r.cryptoBytes =
                ev.oramAccesses * device_->cryptoBytesPerAccess();
            r.cryptoCalls =
                ev.oramAccesses * device_->cryptoCallsPerAccess();
        }
    }
    r.watts = energy_.watts(ev, oram_chunks, oram_latency);
    r.onChipWatts = ev.cycles ? energy_.onChipNj(ev) /
                                    static_cast<double>(ev.cycles)
                              : 0.0;

    // Leakage accounting.
    if (enforcer_) {
        r.rateDecisions = enforcer_->decisions();
        // Leakage counts learner decisions = epoch transitions taken;
        // the initial epoch's rate is data-independent (§6.2).
        r.epochsUsed = enforcer_->currentEpoch();
        r.simLeakageBits = timing::LeakageAccountant::oramTimingBits(
            rates_->size(), r.epochsUsed);
        r.paperLeakageBits = timing::LeakageAccountant::paperConfigBits(
            rates_->size(), cfg_.epochGrowth);
    } else if (!shardEnforcers_.empty()) {
        // Sharded: the M streams compose additively (§10). Realized
        // bits sum each shard's own epoch count; the paper-constant
        // bound is M times the single-stream figure. Rate decisions
        // are reported for shard 0 (every shard shares R and E).
        r.rateDecisions = shardEnforcers_.front()->decisions();
        r.epochsUsed = shardEnforcers_.front()->currentEpoch();
        for (const auto &enf : shardEnforcers_)
            r.simLeakageBits += timing::LeakageAccountant::oramTimingBits(
                rates_->size(), enf->currentEpoch());
        r.paperLeakageBits =
            static_cast<double>(shardEnforcers_.size()) *
            timing::LeakageAccountant::paperConfigBits(rates_->size(),
                                                       cfg_.epochGrowth);
    } else if (cfg_.scheme == Scheme::BaseOram) {
        r.simLeakageBits = timing::LeakageAccountant::unprotectedBits(
            std::max<Cycles>(r.cycles, 2), std::max<Cycles>(oram_latency, 2));
        r.paperLeakageBits = r.simLeakageBits;
    }
    return r;
}

} // namespace tcoram::sim
