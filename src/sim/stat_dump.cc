#include "sim/stat_dump.hh"

#include "sim/column_batch.hh"

namespace tcoram::sim {

StatDump
toStatDump(const SimResult &r)
{
    StatDump d;
    d.set("sim.cycles", static_cast<double>(r.cycles));
    d.set("sim.instructions", static_cast<double>(r.instructions));
    d.set("sim.ipc", r.ipc);
    d.set("power.watts", r.watts);
    d.set("power.on_chip_watts", r.onChipWatts);
    d.set("cache.llc_misses", static_cast<double>(r.llcMisses));
    d.set("oram.real_accesses", static_cast<double>(r.oramReal));
    d.set("oram.dummy_accesses", static_cast<double>(r.oramDummy));
    d.set("oram.dummy_fraction", r.dummyFraction());
    d.set("oram.access_latency", static_cast<double>(r.oramLatency));
    d.set("oram.bytes_per_access",
          static_cast<double>(r.oramBytesPerAccess));
    d.set("oram.crypto_bytes", static_cast<double>(r.cryptoBytes));
    d.set("oram.crypto_calls", static_cast<double>(r.cryptoCalls));
    // Fused-datapath budget check: H+2 per access (H recursion stages)
    // when ORAM traffic exists; 0 for the no-ORAM baselines.
    const std::uint64_t oram_accesses = r.oramReal + r.oramDummy;
    d.set("oram.crypto_calls_per_access",
          oram_accesses == 0 ? 0.0
                             : static_cast<double>(r.cryptoCalls) /
                                   static_cast<double>(oram_accesses));
    d.set("oram.stash_occupancy", static_cast<double>(r.stashOccupancy));
    d.set("oram.stash_high_water", static_cast<double>(r.stashHighWater));
    d.set("oram.blocks_evicted", static_cast<double>(r.blocksEvicted));
    d.set("oram.evictions", static_cast<double>(r.evictionsIssued));
    d.set("timing.epochs_used", static_cast<double>(r.epochsUsed));
    d.set("timing.rate_decisions",
          static_cast<double>(r.rateDecisions.size()));
    d.set("leakage.sim_bits", r.simLeakageBits);
    d.set("leakage.paper_bits", r.paperLeakageBits);
    return d;
}

StatDump
toStatDump(const KVStats &s, Cycles get_p99, Cycles put_p99)
{
    StatDump d;
    d.set("kv.gets", static_cast<double>(s.gets));
    d.set("kv.puts", static_cast<double>(s.puts));
    d.set("kv.scans", static_cast<double>(s.scans));
    d.set("kv.hits", static_cast<double>(s.hits));
    d.set("kv.misses", static_cast<double>(s.misses));
    const std::uint64_t lookups = s.hits + s.misses;
    d.set("kv.hit_rate", lookups == 0
                             ? 0.0
                             : static_cast<double>(s.hits) /
                                   static_cast<double>(lookups));
    d.set("kv.inserts", static_cast<double>(s.inserts));
    d.set("kv.updates", static_cast<double>(s.updates));
    d.set("kv.failed_puts", static_cast<double>(s.failedPuts));
    d.set("kv.probes", static_cast<double>(s.probes));
    const std::uint64_t ops = s.gets + s.puts;
    d.set("kv.probes_per_op", ops == 0
                                  ? 0.0
                                  : static_cast<double>(s.probes) /
                                        static_cast<double>(ops));
    d.set("kv.spill_blocks_read",
          static_cast<double>(s.spillBlocksRead));
    d.set("kv.spill_blocks_written",
          static_cast<double>(s.spillBlocksWritten));
    d.set("kv.oram_reads", static_cast<double>(s.oramReads));
    d.set("kv.oram_writes", static_cast<double>(s.oramWrites));
    d.set("kv.get_p99_cycles", static_cast<double>(get_p99));
    d.set("kv.put_p99_cycles", static_cast<double>(put_p99));
    return d;
}

std::string
kvStatsCsv(const KVStats &s, Cycles get_p99, Cycles put_p99)
{
    const StatDump d = toStatDump(s, get_p99, put_p99);
    ColumnBatch batch(
        ColumnSchema{{{"stat", ColumnType::Str},
                      {"value", ColumnType::F64}}},
        /*workers=*/1);
    ColumnChunk &chunk = batch.chunk(0);
    std::uint64_t order = 0;
    for (const auto &[key, value] : d.all()) {
        chunk.beginRow(order++);
        chunk.str(key);
        chunk.f64(value);
        chunk.endRow();
    }
    return batch.csv();
}

} // namespace tcoram::sim
