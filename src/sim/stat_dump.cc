#include "sim/stat_dump.hh"

namespace tcoram::sim {

StatDump
toStatDump(const SimResult &r)
{
    StatDump d;
    d.set("sim.cycles", static_cast<double>(r.cycles));
    d.set("sim.instructions", static_cast<double>(r.instructions));
    d.set("sim.ipc", r.ipc);
    d.set("power.watts", r.watts);
    d.set("power.on_chip_watts", r.onChipWatts);
    d.set("cache.llc_misses", static_cast<double>(r.llcMisses));
    d.set("oram.real_accesses", static_cast<double>(r.oramReal));
    d.set("oram.dummy_accesses", static_cast<double>(r.oramDummy));
    d.set("oram.dummy_fraction", r.dummyFraction());
    d.set("oram.access_latency", static_cast<double>(r.oramLatency));
    d.set("oram.bytes_per_access",
          static_cast<double>(r.oramBytesPerAccess));
    d.set("oram.crypto_bytes", static_cast<double>(r.cryptoBytes));
    d.set("oram.crypto_calls", static_cast<double>(r.cryptoCalls));
    // Fused-datapath budget check: H+2 per access (H recursion stages)
    // when ORAM traffic exists; 0 for the no-ORAM baselines.
    const std::uint64_t oram_accesses = r.oramReal + r.oramDummy;
    d.set("oram.crypto_calls_per_access",
          oram_accesses == 0 ? 0.0
                             : static_cast<double>(r.cryptoCalls) /
                                   static_cast<double>(oram_accesses));
    d.set("oram.stash_occupancy", static_cast<double>(r.stashOccupancy));
    d.set("oram.stash_high_water", static_cast<double>(r.stashHighWater));
    d.set("oram.blocks_evicted", static_cast<double>(r.blocksEvicted));
    d.set("oram.evictions", static_cast<double>(r.evictionsIssued));
    d.set("timing.epochs_used", static_cast<double>(r.epochsUsed));
    d.set("timing.rate_decisions",
          static_cast<double>(r.rateDecisions.size()));
    d.set("leakage.sim_bits", r.simLeakageBits);
    d.set("leakage.paper_bits", r.paperLeakageBits);
    return d;
}

} // namespace tcoram::sim
