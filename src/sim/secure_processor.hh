/**
 * @file
 * SecureProcessor: the full system of Figure 3. Assembles the core,
 * cache hierarchy, DRAM, the transactional ORAM device (timing model
 * or functional datapath, per SystemConfig::oramDevice), and (for the
 * protected schemes) the epoch timer + rate learner + enforcer, then
 * runs a workload and reports a SimResult.
 */

#ifndef TCORAM_SIM_SECURE_PROCESSOR_HH
#define TCORAM_SIM_SECURE_PROCESSOR_HH

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "cpu/core.hh"
#include "dram/dram_model.hh"
#include "dram/flat_memory.hh"
#include "power/energy_model.hh"
#include "sim/sim_result.hh"
#include "sim/system_config.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_enforcer.hh"
#include "timing/threshold_learner.hh"
#include "workload/generators.hh"

namespace tcoram::sim {

class SecureProcessor
{
  public:
    SecureProcessor(const SystemConfig &cfg,
                    const workload::Profile &profile);
    ~SecureProcessor();

    /**
     * Run @p insts measured instructions and return the result record.
     * @param warmup instructions executed (and discarded) first to
     *        warm the caches, mirroring the paper's fast-forward
     *        methodology (§9.1.1).
     */
    SimResult run(InstCount insts, InstCount warmup = 0);

    /** The rate enforcer, if the scheme has a single-stream one (else
     *  nullptr; a sharded run has one enforcer per shard instead). */
    const timing::RateEnforcer *enforcer() const { return enforcer_.get(); }

    /** Per-shard enforcers of a sharded enforced run (empty when the
     *  scheme is unsharded or unenforced). */
    const std::vector<std::unique_ptr<timing::RateEnforcer>> &
    shardEnforcers() const
    {
        return shardEnforcers_;
    }

    /**
     * The transactional ORAM device behind the memory system
     * (timing/oram_device.hh), if the scheme has one (else nullptr).
     * Its concrete backend is SystemConfig::oramDevice.
     */
    const timing::OramDeviceIf *oramDevice() const { return device_.get(); }

    const cache::Hierarchy &hierarchy() const { return *hierarchy_; }

    /**
     * The main memory behind the processor. With memoryBackend =
     * "trace" this is the dram::TraceMemory whose records the attack
     * experiments read.
     */
    dram::MemoryIf &memory() { return *mem_; }
    const dram::MemoryIf &memory() const { return *mem_; }

  private:
    class DramBackend;
    class OramBackend;
    class EnforcedBackend;
    class ShardedEnforcedBackend;

    SystemConfig cfg_;
    Rng rng_;
    std::unique_ptr<dram::MemoryIf> mem_;
    std::unique_ptr<cache::Hierarchy> hierarchy_;
    std::unique_ptr<timing::RateSet> rates_;
    std::unique_ptr<timing::EpochSchedule> schedule_;
    std::unique_ptr<timing::LearnerIf> learner_;
    std::unique_ptr<timing::OramDeviceIf> device_;
    std::unique_ptr<timing::RateEnforcer> enforcer_;
    std::vector<std::unique_ptr<timing::RateEnforcer>> shardEnforcers_;
    std::unique_ptr<timing::LeakageMonitor> monitor_;
    std::unique_ptr<cpu::MemorySystemIf> backend_;
    std::unique_ptr<workload::SyntheticTrace> trace_;
    std::unique_ptr<cpu::Core> core_;
    power::EnergyModel energy_;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_SECURE_PROCESSOR_HH
