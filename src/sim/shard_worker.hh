/**
 * @file
 * RingScheduler: the million-session, M-threaded front of the sharded
 * ORAM device array. Clients talk to the scheduler exclusively through
 * per-lane lock-free SPSC rings (sim/session_ring.hh); sessions are
 * lightweight descriptors (HMAC-admitted budget + lane + QoS
 * attributes, ~130 bytes), so a million open sessions fit in a couple
 * hundred MB; dispatch runs on up to M worker threads, one shard's
 * ShardSlot (enforcer + calibrated device) per worker stripe.
 *
 * ## Determinism: N threads == 1 thread, bit-identical
 *
 * Work proceeds in phased ROUNDS separated by barriers:
 *
 *   phase L (partitioned by LANE):  fold the previous round's per-
 *     (shard, lane) completion buckets — shard-id order — into session
 *     stats and the lane's completion ring, then pop the lane's
 *     pending submissions and stage them per target shard (stateless
 *     PRF routing only).
 *   == barrier ==
 *   phase S (partitioned by SHARD): merge the staged transactions in
 *     lane order into the slot's session queues, then serve BOUNDED:
 *     a slot stops at its own next epoch boundary (ShardSlot::
 *     serveScaled) instead of processing the transition, because the
 *     transition is the one operation that touches cross-shard state
 *     (the shared LeakageMonitor).
 *   == barrier, completion step (one thread) ==
 *     apply the pending epoch transitions in SHARD-ID ORDER, then
 *     decide whether the round loop is quiescent.
 *
 * Every phase touches only state owned by its stripe (lane state by
 * the lane's worker, shard state by the shard's worker), the stripes
 * are fixed functions of lane/shard id, and the only cross-shard
 * mutation — the monitor's decision ledger — happens serially in
 * shard-id order. Hence the state evolution is a pure function of the
 * submission sequence, independent of the worker count: per-shard
 * observable streams, leakage counters, session stats and csvRow
 * output are bit-identical between 1 and N workers (test-enforced in
 * tests/test_scheduler_scale.cc). And since the bounded serve replays
 * exactly the unbounded enforcer sequence (timing/rate_enforcer.hh),
 * each shard's stream remains the same periodic, session-count-blind
 * sequence PR 3/4 pinned.
 */

#ifndef TCORAM_SIM_SHARD_WORKER_HH
#define TCORAM_SIM_SHARD_WORKER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "oram/sharded_device.hh"
#include "protocol/session.hh"
#include "sim/column_batch.hh"
#include "sim/oram_scheduler.hh"
#include "sim/session_ring.hh"
#include "timing/dispatch_policy.hh"
#include "timing/shard_slot.hh"

namespace tcoram::sim {

class RingScheduler
{
  public:
    struct Options
    {
        /** Producer lanes (one SPSC ring pair each). */
        std::size_t lanes = 1;
        /** Per-lane backpressure bound — max unretired tokens
         *  (rounded up to a power of two). */
        std::size_t ringCapacity = 1024;
        /** Worker threads (clamped to [1, max(lanes, shards)]). */
        unsigned threads = 1;
        /** Per-shard QoS dispatch policy. */
        timing::DispatchPolicyKind policy =
            timing::DispatchPolicyKind::RoundRobin;
        /** Keep per-completion latency samples (percentiles). Off for
         *  the million-session smoke, where samples would dominate. */
        bool recordLatencies = true;
        /**
         * Record one columnar telemetry row per (round, shard) that
         * served work (sim/column_batch.hh): appended lock-free by the
         * shard's owning worker as raw typed values — no formatting on
         * the dispatch path — and serialized by telemetryCsv() in
         * (round, shard) order, bit-identical across worker counts.
         * Off by default (rounds can vastly outnumber useful samples).
         */
        bool recordShardTelemetry = false;
    };

    /** Same contract as OramScheduler's sharded constructor; @p rates,
     *  @p schedule and @p learner must outlive the scheduler. */
    RingScheduler(oram::ShardedOramDevice &device,
                  const timing::RateSet &rates,
                  const timing::EpochSchedule &schedule,
                  const timing::LearnerIf &learner, Cycles initial_rate,
                  const protocol::LeakageParams &params, Options opts);
    /** Default options. */
    RingScheduler(oram::ShardedOramDevice &device,
                  const timing::RateSet &rates,
                  const timing::EpochSchedule &schedule,
                  const timing::LearnerIf &learner, Cycles initial_rate,
                  const protocol::LeakageParams &params)
        : RingScheduler(device, rates, schedule, learner, initial_rate,
                        params, Options{})
    {
    }
    ~RingScheduler();

    /**
     * Open a session as a lightweight descriptor bound to @p lane.
     * Finite budgets run the §5 HMAC handshake (transient protocol
     * objects — nothing per-session survives but the descriptor);
     * unlimited budgets are admitted outright, which is what keeps a
     * million opens cheap. The tightest finite admitted budget becomes
     * the run's shared LeakageMonitor, as in OramScheduler. Must
     * happen before the first transaction is served (asserted).
     */
    std::uint32_t openSession(std::uint64_t user_seed,
                              double leakage_limit_bits = -1.0,
                              std::uint16_t lane = 0,
                              std::uint16_t weight = 1,
                              Cycles deadline_offset = 0);

    /**
     * Push a transaction onto the session's lane ring. Returns the
     * lane token (poll lane(l).isRetired(token)), or nullopt when the
     * lane is at its backpressure bound — capacity() tokens not yet
     * retired — in which case pump and drain completions, then retry.
     * @p arrival stamps must be non-decreasing per session (the shard
     * queues assert monotonic per-session arrival order at enqueue);
     * different sessions may interleave arbitrarily. Fatal on
     * unadmitted sessions.
     */
    std::optional<std::uint64_t> trySubmit(std::uint32_t sid, Cycles arrival,
                                           timing::OramTransaction txn);

    /** Lane @p l's ring pair (completion popping, fence polling). */
    SessionRing &lane(std::size_t l);

    /**
     * Run phased rounds until every ring, staging buffer and shard
     * queue is empty. Producers should be quiescent (or tolerate the
     * loop exiting between their pushes). @return last completion
     * cycle across shards.
     */
    Cycles runUntilIdle();

    /** Fire the trailing dummies every shard owes up to @p t (same
     *  barrier discipline for the epoch transitions on the way). */
    void drainUntil(Cycles t);

    std::size_t sessionCount() const { return descriptors_.size(); }
    const SessionStats &stats(std::uint32_t sid) const;
    bool sessionAdmitted(std::uint32_t sid) const;

    std::size_t shardCount() const { return slots_.size(); }
    const timing::ShardSlot &shard(std::size_t i) const;
    const timing::LeakageMonitor *monitor() const { return monitor_.get(); }

    /** Total transactions served (quiesced value). */
    std::uint64_t servedTotal() const;
    /** Max completion cycle across shard enforcers. */
    Cycles lastCompletion() const;

    double fairnessRatio() const;
    /** Nearest-rank queue-latency quantile (requires recordLatencies). */
    Cycles latencyPercentile(std::uint32_t sid, double q) const;

    /** Per-shard summary CSV (header + one row per shard), pinned
     *  bit-identical across worker counts. */
    static std::string csvHeader();
    std::string csvRow(std::uint32_t shard) const;
    std::string csv() const;

    /** Column layout of the per-(round, shard) telemetry rows. */
    static ColumnSchema shardTelemetrySchema();
    /** Recorded rows (null unless Options::recordShardTelemetry). */
    const ColumnBatch *telemetry() const { return telemetry_.get(); }
    /** Serialized telemetry, (round, shard)-ordered (fatal when the
     *  option is off). */
    std::string telemetryCsv() const;

  private:
    struct SessionDescriptor
    {
        SessionStats stats;
        std::uint16_t lane = 0;
        std::uint16_t weight = 1;
        Cycles deadlineOffset = 0;
        std::vector<Cycles> latencies;
    };

    struct Staged
    {
        std::uint32_t sessionId = 0;
        Cycles arrival = 0;
        timing::OramTransaction txn;
    };

    void laneStep(unsigned worker);
    void shardStep(unsigned worker);
    void serialStep();
    void pump(bool draining, Cycles drain_t);
    void attachMonitor();

    oram::ShardedOramDevice *device_;
    protocol::LeakageParams params_;
    Options opts_;
    unsigned workers_ = 1;

    std::vector<std::unique_ptr<timing::ShardSlot>> slots_;
    std::vector<std::unique_ptr<SessionRing>> lanes_;
    std::vector<SessionDescriptor> descriptors_;
    std::unique_ptr<timing::LeakageMonitor> monitor_;
    double tightestLimit_ = -1.0;

    /** staging_[lane][shard]: routed submissions, written in phase L
     *  by the lane's worker, consumed in phase S by the shard's. */
    std::vector<std::vector<std::vector<Staged>>> staging_;
    /** buckets_[shard][lane]: completions, written in phase S, folded
     *  in the NEXT round's phase L. */
    std::vector<std::vector<std::vector<SessionRing::Completion>>> buckets_;
    std::vector<std::uint8_t> blocked_; ///< per shard, cleared serially
    std::vector<std::uint64_t> servedPerShard_;
    /** Columnar shard telemetry: one chunk per worker, appended only
     *  by the shard's owner in phase S (lock-free by ownership). */
    std::unique_ptr<ColumnBatch> telemetry_;
    /** Round counter (incremented in the serial step; read by phase S
     *  across the barrier) — the telemetry order key's major digit. */
    std::uint64_t round_ = 0;
    bool anyServed_ = false;
    mutable std::vector<Cycles> latencyScratch_; ///< percentile reuse

    // round-loop controls (written in the serial step, read after the
    // barrier unblocks — synchronized by std::barrier's phase
    // completion ordering)
    bool stop_ = false;
    bool draining_ = false;
    Cycles drainT_ = 0;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_SHARD_WORKER_HH
