#include "sim/oram_scheduler.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"

namespace tcoram::sim {

namespace {
/** Program hash stand-in bound into every session's leakage HMAC. */
const std::string kProgramHash = "tcoram-scheduler-run";
} // namespace

/** One client: protocol identity, budget, statistics, QoS samples.
 *  (The per-session FIFOs live in the ShardSlots the router feeds.) */
struct OramScheduler::Session
{
    Session(std::uint32_t id, std::uint64_t user_seed, double limit_bits)
        : user(user_seed), processor(user)
    {
        stats.sessionId = id;
        stats.leakageLimitBits = limit_bits;
    }

    protocol::UserSession user;
    protocol::ProcessorSession processor;
    SessionStats stats;
    std::vector<Cycles> latencies; ///< per-completion, for percentiles
};

OramScheduler::OramScheduler(timing::RateEnforcer &enforcer,
                             const protocol::LeakageParams &params)
    : params_(params)
{
    slots_.push_back(std::make_unique<timing::ShardSlot>(0, enforcer));
}

OramScheduler::OramScheduler(oram::ShardedOramDevice &device,
                             const timing::RateSet &rates,
                             const timing::EpochSchedule &schedule,
                             const timing::LearnerIf &learner,
                             Cycles initial_rate,
                             const protocol::LeakageParams &params)
    : params_(params), sharded_(&device)
{
    // Admission must clear the composed bound: M parallel streams
    // leak additively (§10).
    params_.shards = device.shardCount();
    for (std::uint32_t i = 0; i < device.shardCount(); ++i)
        slots_.push_back(std::make_unique<timing::ShardSlot>(
            i, device.shard(i), rates, schedule, learner, initial_rate));
}

OramScheduler::~OramScheduler() = default;

void
OramScheduler::attachTightestMonitor()
{
    // The shared device array must honour its most conservative
    // client: the tightest finite admitted budget becomes the run's
    // monitor, attached to EVERY shard's enforcer so free decisions on
    // any shard draw from the one composed budget.
    double min_limit = -1.0;
    for (const auto &sess : sessions_) {
        const double l = sess->stats.leakageLimitBits;
        if (!sess->stats.admitted || l < 0.0)
            continue;
        if (min_limit < 0.0 || l < min_limit)
            min_limit = l;
    }
    if (min_limit < 0.0)
        return;
    monitor_ = std::make_unique<timing::LeakageMonitor>(min_limit,
                                                        params_.rateCount);
    for (auto &slot : slots_)
        slot->enforcer().attachMonitor(monitor_.get());
}

std::uint32_t
OramScheduler::openSession(std::uint64_t user_seed, double leakage_limit_bits)
{
    // The shared monitor is rebuilt from the tightest finite budget on
    // every open; a rebuild after decisions were recorded would forget
    // bits already spent. Session admission therefore belongs strictly
    // before service begins.
    for (const auto &slot : slots_)
        tcoram_assert(served_ == 0 && slot->enforcer().currentEpoch() == 0,
                      "open every session before any transaction is served");
    const auto id = static_cast<std::uint32_t>(sessions_.size());
    auto s = std::make_unique<Session>(id, user_seed, leakage_limit_bits);

    // §5 handshake: the user HMAC-binds (program, L) to their key; the
    // processor verifies the binding, then admits the proposed leakage
    // parameters — composed over all shards — against L. Unlimited
    // budgets skip the comparison.
    if (leakage_limit_bits < 0.0) {
        s->stats.admitted = true;
    } else {
        const crypto::Digest256 mac =
            s->user.bindLeakageLimit(kProgramHash, leakage_limit_bits);
        s->stats.admitted =
            s->processor.verifyBinding(kProgramHash, leakage_limit_bits,
                                       mac, s->user) &&
            s->processor.admit(params_, leakage_limit_bits);
    }
    sessions_.push_back(std::move(s));

    attachTightestMonitor();

    for (auto &slot : slots_)
        slot->ensureSessions(sessions_.size());
    return id;
}

void
OramScheduler::submit(std::uint32_t sid, Cycles arrival,
                      timing::OramTransaction txn)
{
    tcoram_assert(sid < sessions_.size(), "unknown session ", sid);
    Session &s = *sessions_[sid];
    if (!s.stats.admitted)
        tcoram_fatal("session ", sid, " was not admitted (budget ",
                     s.stats.leakageLimitBits, " bits < configuration's ",
                     params_.oramTimingBits(), ")");
    tcoram_assert(txn.kind == timing::OramTransaction::Kind::Real,
                  "dummies are the enforcers' job, not the clients'");
    txn.sessionId = sid;
    const std::uint32_t shard = sharded_ != nullptr ? sharded_->route(txn)
                                                    : 0;
    if (s.stats.submitted == 0 || arrival < s.stats.firstArrival)
        s.stats.firstArrival = arrival;
    ++s.stats.submitted;
    slots_[shard]->enqueue(sid, arrival, txn);
    ++pending_;
}

std::optional<OramScheduler::Served>
OramScheduler::serveNext()
{
    if (pending_ == 0)
        return std::nullopt;

    // Shard round-robin among slots with pending work; each slot's
    // enforcer alone times that shard's stream, so this ordering is
    // pure dispatch policy.
    const std::size_t n = slots_.size();
    std::size_t pick = n;
    for (std::size_t k = 1; k <= n; ++k) {
        const std::size_t i = (shardCursor_ + k) % n;
        if (!slots_[i]->idle()) {
            pick = i;
            break;
        }
    }
    tcoram_assert(pick < n, "pending transaction with no backing shard");
    shardCursor_ = pick;

    const auto served = slots_[pick]->serveNext();
    tcoram_assert(served.has_value(), "non-idle slot refused to serve");
    --pending_;
    ++served_;

    Session &s = *sessions_[served->sessionId];
    const timing::OramCompletion &c = served->completion;
    ++s.stats.completed;
    s.stats.lastCompletion = c.done;
    const Cycles latency = c.done - served->arrival;
    s.stats.totalLatency += latency;
    s.stats.maxLatency = std::max(s.stats.maxLatency, latency);
    s.stats.totalSlotWait += c.start - served->arrival;
    s.latencies.push_back(latency);
    return Served{s.stats.sessionId,
                  static_cast<std::uint32_t>(pick), served->arrival, c};
}

Cycles
OramScheduler::run()
{
    Cycles last = 0;
    for (const auto &slot : slots_)
        last = std::max(last, slot->enforcer().lastCompletion());
    while (auto served = serveNext())
        last = std::max(last, served->completion.done);
    return last;
}

void
OramScheduler::drainUntil(Cycles t)
{
    tcoram_assert(pending_ == 0, "drain with transactions still queued");
    for (auto &slot : slots_)
        slot->drainUntil(t);
}

const SessionStats &
OramScheduler::stats(std::uint32_t sid) const
{
    tcoram_assert(sid < sessions_.size(), "unknown session ", sid);
    return sessions_[sid]->stats;
}

bool
OramScheduler::sessionAdmitted(std::uint32_t sid) const
{
    return stats(sid).admitted;
}

const timing::ShardSlot &
OramScheduler::shard(std::size_t i) const
{
    tcoram_assert(i < slots_.size(), "shard index out of range");
    return *slots_[i];
}

double
OramScheduler::fairnessRatio() const
{
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    bool any = false;
    for (const auto &s : sessions_) {
        if (s->stats.submitted == 0)
            continue;
        any = true;
        lo = std::min(lo, s->stats.completed);
        hi = std::max(hi, s->stats.completed);
    }
    if (!any || hi == 0)
        return 1.0;
    if (lo == 0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(hi) / static_cast<double>(lo);
}

void
OramScheduler::saveState(ByteWriter &w) const
{
    w.u64(pending_);
    w.u64(served_);
    w.u64(shardCursor_);
    w.b(monitor_ != nullptr);
    if (monitor_)
        monitor_->saveState(w);
    w.u64(sessions_.size());
    for (const auto &s : sessions_) {
        const SessionStats &st = s->stats;
        w.u32(st.sessionId);
        w.f64(st.leakageLimitBits);
        w.b(st.admitted);
        w.u64(st.submitted);
        w.u64(st.completed);
        w.u64(st.firstArrival);
        w.u64(st.lastCompletion);
        w.u64(st.totalLatency);
        w.u64(st.totalSlotWait);
        w.u64(st.maxLatency);
        w.u64(s->latencies.size());
        for (const Cycles c : s->latencies)
            w.u64(c);
    }
    w.u64(slots_.size());
    for (const auto &slot : slots_)
        slot->saveState(w);
}

void
OramScheduler::restoreState(ByteReader &r)
{
    pending_ = r.u64();
    served_ = r.u64();
    shardCursor_ = static_cast<std::size_t>(r.u64());
    const bool had_monitor = r.b();
    tcoram_assert(had_monitor == (monitor_ != nullptr),
                  "snapshot and scheduler disagree on the leakage "
                  "monitor (open the same sessions before restoring)");
    if (monitor_)
        monitor_->restoreState(r);
    const std::uint64_t n_sessions = r.u64();
    tcoram_assert(n_sessions == sessions_.size(),
                  "snapshot session count mismatch (", n_sessions, " vs ",
                  sessions_.size(), ")");
    for (auto &s : sessions_) {
        SessionStats &st = s->stats;
        st.sessionId = r.u32();
        st.leakageLimitBits = r.f64();
        st.admitted = r.b();
        st.submitted = r.u64();
        st.completed = r.u64();
        st.firstArrival = r.u64();
        st.lastCompletion = r.u64();
        st.totalLatency = r.u64();
        st.totalSlotWait = r.u64();
        st.maxLatency = r.u64();
        s->latencies.clear();
        const std::uint64_t m = r.u64();
        s->latencies.reserve(m);
        for (std::uint64_t i = 0; i < m; ++i)
            s->latencies.push_back(r.u64());
    }
    const std::uint64_t n_slots = r.u64();
    tcoram_assert(n_slots == slots_.size(),
                  "snapshot shard count mismatch (", n_slots, " vs ",
                  slots_.size(), ")");
    for (auto &slot : slots_)
        slot->restoreState(r);
}

Cycles
OramScheduler::latencyPercentile(std::uint32_t sid, double q) const
{
    tcoram_assert(sid < sessions_.size(), "unknown session ", sid);
    tcoram_assert(q >= 0.0 && q <= 1.0, "quantile out of [0, 1]");
    const std::vector<Cycles> &lat = sessions_[sid]->latencies;
    if (lat.empty())
        return 0;
    // Nearest-rank: smallest value with at least q of the mass below.
    // nth_element over a REUSED scratch keeps repeated quantile
    // queries linear and allocation-free once the scratch has grown —
    // the samples themselves stay untouched (and in arrival order).
    latencyScratch_.assign(lat.begin(), lat.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(lat.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    std::nth_element(latencyScratch_.begin(),
                     latencyScratch_.begin() +
                         static_cast<std::ptrdiff_t>(idx),
                     latencyScratch_.end());
    return latencyScratch_[idx];
}

} // namespace tcoram::sim
