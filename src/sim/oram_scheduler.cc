#include "sim/oram_scheduler.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace tcoram::sim {

namespace {
/** Program hash stand-in bound into every session's leakage HMAC. */
const std::string kProgramHash = "tcoram-scheduler-run";
} // namespace

/** One client: protocol identity, budget, FIFO queue, statistics. */
struct OramScheduler::Session
{
    Session(std::uint32_t id, std::uint64_t user_seed, double limit_bits)
        : user(user_seed), processor(user)
    {
        stats.sessionId = id;
        stats.leakageLimitBits = limit_bits;
    }

    struct Pending
    {
        Cycles arrival;
        timing::OramTransaction txn;
    };

    protocol::UserSession user;
    protocol::ProcessorSession processor;
    std::deque<Pending> queue;
    SessionStats stats;
};

OramScheduler::OramScheduler(timing::RateEnforcer &enforcer,
                             const protocol::LeakageParams &params)
    : enforcer_(enforcer), params_(params)
{
}

OramScheduler::~OramScheduler() = default;

std::uint32_t
OramScheduler::openSession(std::uint64_t user_seed, double leakage_limit_bits)
{
    // The shared monitor is rebuilt from the tightest finite budget on
    // every open; a rebuild after decisions were recorded would forget
    // bits already spent. Session admission therefore belongs strictly
    // before service begins.
    tcoram_assert(served_ == 0 && enforcer_.currentEpoch() == 0,
                  "open every session before any transaction is served");
    const auto id = static_cast<std::uint32_t>(sessions_.size());
    auto s = std::make_unique<Session>(id, user_seed, leakage_limit_bits);

    // §5 handshake: the user HMAC-binds (program, L) to their key; the
    // processor verifies the binding, then admits the proposed leakage
    // parameters against L. Unlimited budgets skip the comparison.
    if (leakage_limit_bits < 0.0) {
        s->stats.admitted = true;
    } else {
        const crypto::Digest256 mac =
            s->user.bindLeakageLimit(kProgramHash, leakage_limit_bits);
        s->stats.admitted =
            s->processor.verifyBinding(kProgramHash, leakage_limit_bits,
                                       mac, s->user) &&
            s->processor.admit(params_, leakage_limit_bits);
    }
    sessions_.push_back(std::move(s));

    // The shared device must honour its most conservative client: the
    // tightest finite admitted budget becomes the run's monitor.
    double min_limit = -1.0;
    for (const auto &sess : sessions_) {
        const double l = sess->stats.leakageLimitBits;
        if (!sess->stats.admitted || l < 0.0)
            continue;
        if (min_limit < 0.0 || l < min_limit)
            min_limit = l;
    }
    if (min_limit >= 0.0) {
        monitor_ = std::make_unique<timing::LeakageMonitor>(
            min_limit, params_.rateCount);
        enforcer_.attachMonitor(monitor_.get());
    }

    // Keep the round-robin scan starting at session 0: the cursor
    // names the last-served session and the scan begins after it.
    cursor_ = sessions_.size() - 1;
    return id;
}

void
OramScheduler::submit(std::uint32_t sid, Cycles arrival,
                      timing::OramTransaction txn)
{
    tcoram_assert(sid < sessions_.size(), "unknown session ", sid);
    Session &s = *sessions_[sid];
    if (!s.stats.admitted)
        tcoram_fatal("session ", sid, " was not admitted (budget ",
                     s.stats.leakageLimitBits, " bits < configuration's ",
                     params_.oramTimingBits(), ")");
    tcoram_assert(s.queue.empty() || s.queue.back().arrival <= arrival,
                  "per-session arrivals must be non-decreasing");
    tcoram_assert(txn.kind == timing::OramTransaction::Kind::Real,
                  "dummies are the enforcer's job, not the clients'");
    txn.sessionId = sid;
    if (s.stats.submitted == 0 || arrival < s.stats.firstArrival)
        s.stats.firstArrival = arrival;
    ++s.stats.submitted;
    s.queue.push_back({arrival, txn});
    ++pending_;
}

std::optional<OramScheduler::Served>
OramScheduler::serveNext()
{
    if (pending_ == 0)
        return std::nullopt;
    const std::size_t n = sessions_.size();

    // Earliest queued arrival: the latest the next service can begin.
    Cycles earliest = std::numeric_limits<Cycles>::max();
    for (const auto &s : sessions_)
        if (!s->queue.empty())
            earliest = std::min(earliest, s->queue.front().arrival);

    // Every transaction that has arrived by the next enforced slot
    // would start at that same slot — the choice among them is pure
    // policy (round-robin from the last served session) and cannot
    // shift the observable stream. lastCompletion() is a safe LOWER
    // bound on the next slot whatever the rate does at upcoming epoch
    // boundaries; heads arriving between it and the actual slot just
    // wait one round, which never costs a slot (earliest is eligible).
    const Cycles horizon = std::max(earliest, enforcer_.lastCompletion());

    std::size_t pick = n;
    for (std::size_t k = 1; k <= n; ++k) {
        const std::size_t s = (cursor_ + k) % n;
        if (!sessions_[s]->queue.empty() &&
            sessions_[s]->queue.front().arrival <= horizon) {
            pick = s;
            break;
        }
    }
    tcoram_assert(pick < n, "pending transaction with no eligible session");
    cursor_ = pick;

    Session &s = *sessions_[pick];
    const Session::Pending p = s.queue.front();
    s.queue.pop_front();
    --pending_;

    const timing::OramCompletion c = enforcer_.serve(p.arrival, p.txn);
    ++served_;
    ++s.stats.completed;
    s.stats.lastCompletion = c.done;
    const Cycles latency = c.done - p.arrival;
    s.stats.totalLatency += latency;
    s.stats.maxLatency = std::max(s.stats.maxLatency, latency);
    s.stats.totalSlotWait += c.start - p.arrival;
    return Served{s.stats.sessionId, p.arrival, c};
}

Cycles
OramScheduler::run()
{
    Cycles last = enforcer_.lastCompletion();
    while (auto served = serveNext())
        last = served->completion.done;
    return last;
}

void
OramScheduler::drainUntil(Cycles t)
{
    tcoram_assert(pending_ == 0, "drain with transactions still queued");
    enforcer_.drainUntil(t);
}

const SessionStats &
OramScheduler::stats(std::uint32_t sid) const
{
    tcoram_assert(sid < sessions_.size(), "unknown session ", sid);
    return sessions_[sid]->stats;
}

bool
OramScheduler::sessionAdmitted(std::uint32_t sid) const
{
    return stats(sid).admitted;
}

double
OramScheduler::fairnessRatio() const
{
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    bool any = false;
    for (const auto &s : sessions_) {
        if (s->stats.submitted == 0)
            continue;
        any = true;
        lo = std::min(lo, s->stats.completed);
        hi = std::max(hi, s->stats.completed);
    }
    if (!any || hi == 0)
        return 1.0;
    if (lo == 0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(hi) / static_cast<double>(lo);
}

} // namespace tcoram::sim
