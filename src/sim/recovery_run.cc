#include "sim/recovery_run.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "oram/oram_config.hh"
#include "sim/checkpoint.hh"
#include "workload/workload_source.hh"

namespace tcoram::sim {

namespace {

/** Deterministic per-(session, k) backlog block id, spread wide so the
 *  PRF router sees distinct blocks (same scheme as the benches). */
std::uint64_t
blockId(std::uint32_t session, std::uint64_t k)
{
    return session * 1'000'003ull + k * 7919ull;
}

/** Probe block ids live in their own sparse range so write-then-read
 *  probes land on blocks the backlog never touched. */
std::uint64_t
probeBlockId(std::uint64_t i)
{
    return 0xbe57'0000ull + i * 104'729ull;
}

oram::OramDeviceSpec
innerSpec(const RecoveryRunConfig &cfg)
{
    oram::OramDeviceSpec spec;
    spec.kind = cfg.deviceKind;
    spec.keySeed = mixSeed(cfg.seed, 0x0de71ce5ull);
    spec.functionalBlockCap = cfg.functionalBlockCap;
    spec.fault = cfg.fault;
    spec.retryBudget = cfg.retryBudget;
    spec.pathMode = cfg.pathMode;
    spec.evictionPolicy = cfg.evictionPolicy;
    spec.evictionBudget = cfg.evictionBudget;
    return spec;
}

protocol::LeakageParams
runParams(const RecoveryRunConfig &cfg)
{
    protocol::LeakageParams p;
    // Single-candidate rate set: each decision reveals lg(1) = 0 bits,
    // so every finite budget admits and the monitor ledger still runs
    // (its state is part of what the checkpoint must round-trip).
    p.rateCount = 1;
    p.epoch0 = cfg.epoch0;
    return p;
}

} // namespace

RecoveryRun::RecoveryRun(const RecoveryRunConfig &cfg)
    : cfg_(cfg), mem_(dram::DramConfig{}), rng_(cfg.seed),
      rates_(std::vector<Cycles>{cfg.rate}),
      schedule_(cfg.epoch0, 2, Cycles{1} << 40), learner_(rates_)
{
    tcoram_assert(cfg_.shards >= 1, "recovery run needs a shard");
    if (workloadDriven())
        materializeWorkload(); // overrides cfg_.sessions to the ranks
    tcoram_assert(cfg_.sessions >= 1, "recovery run needs a session");
    device_ = std::make_unique<oram::ShardedOramDevice>(
        innerSpec(cfg_), oram::OramConfig::benchConfig(), cfg_.shards,
        mixSeed(cfg_.seed, 0x0072a7e5ull), mem_, rng_, /*record=*/true);
    sched_ = std::make_unique<OramScheduler>(*device_, rates_, schedule_,
                                             learner_, cfg_.rate,
                                             runParams(cfg_));
    // Session 0 carries a finite budget so the shared LeakageMonitor
    // exists and its ledger is exercised (and checkpointed); with a
    // single-rate set the budget can never be exceeded.
    for (std::uint32_t s = 0; s < cfg_.sessions; ++s)
        sched_->openSession(mixSeed(cfg_.seed, 0x5e55ull + s),
                            s == 0 ? 64.0 : -1.0);
    probeArrival_.assign(cfg_.sessions, cfg_.txnsPerSession);
    // Probe arrivals must stay past every planned arrival (per-session
    // arrival order is asserted at enqueue).
    for (const PlannedOp &op : plan_)
        probeArrival_[op.session] =
            std::max(probeArrival_[op.session], op.arrival + 1);
}

void
RecoveryRun::materializeWorkload()
{
    using workload::WorkloadOp;
    using workload::WorkloadOpKind;
    const workload::WorkloadParams params =
        workload::parseWorkloadSpec(cfg_.workloadSpec);
    const auto source = workload::loadWorkload(params);
    checkpointIntervalOps_ = source->checkpointIntervalOps();
    cfg_.sessions = source->ranks();
    const std::uint64_t blocks = oram::OramConfig::benchConfig().numBlocks;
    // Walk each rank's stream to End, mapping access ops onto blocks
    // the way the replay driver does; think time stretches the rank's
    // arrival clock. A checkpointAfter request becomes a served-count
    // mark: serve until servedTotal() hits it, snapshot, continue.
    for (std::uint32_t rank = 0; rank < cfg_.sessions; ++rank) {
        Cycles arrival = 0;
        for (;;) {
            const WorkloadOp op = source->getNext(rank);
            if (op.kind == WorkloadOpKind::End)
                break;
            if (op.kind == WorkloadOpKind::Think) {
                arrival += op.thinkCycles;
                continue;
            }
            const std::uint32_t n =
                op.kind == WorkloadOpKind::Scan ? op.scanLen : 1;
            for (std::uint32_t j = 0; j < n; ++j) {
                plan_.push_back({rank, arrival++, (op.key + j) % blocks,
                                 op.kind == WorkloadOpKind::Put});
            }
            if (op.checkpointAfter)
                marks_.push_back(plan_.size());
            tcoram_assert(plan_.size() < (1u << 24),
                          "workload-driven recovery backlog too large");
        }
    }
    std::sort(marks_.begin(), marks_.end());
    marks_.erase(std::unique(marks_.begin(), marks_.end()), marks_.end());
}

RecoveryRun::~RecoveryRun() = default;

void
RecoveryRun::start()
{
    tcoram_assert(!started_, "run already started or restored");
    started_ = true;
    if (workloadDriven()) {
        for (const PlannedOp &op : plan_)
            sched_->submit(op.session, op.arrival,
                           timing::OramTransaction::real(
                               op.blockId, op.isWrite, op.session));
        return;
    }
    // Open-loop: the whole backlog arrives up front (session s's k-th
    // transaction at cycle k), the saturation regime where every shard
    // serves back-to-back and the slot grid never breaks.
    for (std::uint64_t k = 0; k < cfg_.txnsPerSession; ++k)
        for (std::uint32_t s = 0; s < cfg_.sessions; ++s)
            sched_->submit(s, k,
                           timing::OramTransaction::real(
                               blockId(s, k), k % 3 == 0, s));
}

bool
RecoveryRun::serveOne()
{
    tcoram_assert(started_, "start() or restoreFrom() first");
    const auto served = sched_->serveNext();
    if (!served)
        return false;
    ++served_;
    lastReal_ = std::max(lastReal_, served->completion.done);
    return true;
}

Cycles
RecoveryRun::finish()
{
    while (serveOne()) {
    }
    // The drain horizon is derived from lastReal_, which restoreFrom()
    // reloads — an interrupted-and-restored run and the uninterrupted
    // one compute the identical horizon and hence identical streams.
    const Cycles horizon =
        lastReal_ +
        cfg_.drainSlackPeriods * (cfg_.rate + device_->accessLatency());
    sched_->drainUntil(horizon);
    return horizon;
}

std::string
RecoveryRun::saveTo(const std::string &path) const
{
    ByteWriter w;
    w.b(started_);
    w.u64(served_);
    w.u64(lastReal_);
    w.u64(probeArrival_.size());
    for (const Cycles a : probeArrival_)
        w.u64(a);
    device_->saveState(w);
    sched_->saveState(w);
    return saveCheckpoint(path, w.data());
}

std::string
RecoveryRun::restoreFrom(const std::string &path)
{
    tcoram_assert(!started_,
                  "restore must target a freshly constructed run");
    std::vector<std::uint8_t> payload;
    if (std::string err = loadCheckpoint(path, payload); !err.empty())
        return err;
    ByteReader r(payload);
    started_ = r.b();
    served_ = r.u64();
    lastReal_ = r.u64();
    const std::uint64_t probes = r.u64();
    tcoram_assert(probes == probeArrival_.size(),
                  "snapshot session count mismatch");
    for (Cycles &a : probeArrival_)
        a = r.u64();
    device_->restoreState(r);
    sched_->restoreState(r);
    if (!r.atEnd())
        return std::string("checkpoint: payload does not match this "
                           "configuration (decode ") +
               (r.ok() ? "left trailing bytes)" : "overran)");
    return {};
}

std::vector<RecoveryRun::Event>
RecoveryRun::shardStream(std::uint32_t i) const
{
    const timing::RecordingOramDevice *rec = device_->recorder(i);
    tcoram_assert(rec != nullptr, "recovery runs always record");
    std::vector<Event> out;
    out.reserve(rec->records().size());
    for (const auto &r : rec->records())
        out.push_back(
            {r.completion.start,
             r.kind == timing::OramTransaction::Kind::Real});
    return out;
}

std::uint64_t
RecoveryRun::faultsInjected() const
{
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < device_->shardCount(); ++i)
        if (const auto *dev = dynamic_cast<const oram::FunctionalOramDevice *>(
                &device_->innerDevice(i)))
            n += dev->faultsInjected();
    return n;
}

std::uint64_t
RecoveryRun::faultsDetected() const
{
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < device_->shardCount(); ++i)
        if (const auto *dev = dynamic_cast<const oram::FunctionalOramDevice *>(
                &device_->innerDevice(i)))
            n += dev->faultsDetected();
    return n;
}

std::uint64_t
RecoveryRun::faultsRecovered() const
{
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < device_->shardCount(); ++i)
        if (const auto *dev = dynamic_cast<const oram::FunctionalOramDevice *>(
                &device_->innerDevice(i)))
            n += dev->faultsRecovered();
    return n;
}

std::uint64_t
RecoveryRun::retriesIssued() const
{
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < device_->shardCount(); ++i)
        if (const auto *dev = dynamic_cast<const oram::FunctionalOramDevice *>(
                &device_->innerDevice(i)))
            n += dev->retriesIssued();
    return n;
}

std::uint64_t
RecoveryRun::recoverySlots() const
{
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < sched_->shardCount(); ++i)
        n += sched_->shard(i).enforcer().counters().recoverySlots();
    return n;
}

std::uint64_t
RecoveryRun::evictionsIssued() const
{
    return device_->evictionsIssued();
}

std::uint64_t
RecoveryRun::verifyPayloads(std::uint64_t probes)
{
    if (cfg_.deviceKind != "functional")
        return 0; // timing backends move no payloads
    tcoram_assert(started_ && sched_->idle(),
                  "probe after the backlog is drained");
    const std::uint64_t bytes = device_->shardConfig().blockBytes;
    std::vector<std::uint8_t> wrote(bytes);
    std::vector<std::uint8_t> read(bytes);
    std::uint64_t mismatches = 0;
    for (std::uint64_t i = 0; i < probes; ++i) {
        const auto s = static_cast<std::uint32_t>(i % cfg_.sessions);
        const std::uint64_t id = probeBlockId(i);
        for (std::uint64_t j = 0; j < bytes; ++j)
            wrote[j] = static_cast<std::uint8_t>(
                mixSeed(cfg_.seed, i * bytes + j));
        std::fill(read.begin(), read.end(), 0);

        // Write then read back-to-back: the queue is empty, so each
        // submit is served immediately and the span views stay valid.
        timing::OramTransaction wt =
            timing::OramTransaction::real(id, /*is_write=*/true, s);
        wt.data = wrote;
        sched_->submit(s, probeArrival_[s]++, wt);
        serveOne();

        timing::OramTransaction rt =
            timing::OramTransaction::real(id, /*is_write=*/false, s);
        rt.out = read;
        sched_->submit(s, probeArrival_[s]++, rt);
        serveOne();

        if (read != wrote)
            ++mismatches;
    }
    return mismatches;
}

std::string
RecoveryRun::csvHeader()
{
    return "kind,shards,sessions,txns_per_session,rate,fault_spec,"
           "served,last_real,faults_injected,faults_detected,"
           "faults_recovered,retries,recovery_slots";
}

std::string
RecoveryRun::csvRow() const
{
    std::ostringstream os;
    os << cfg_.deviceKind << ',' << cfg_.shards << ',' << cfg_.sessions
       << ',' << cfg_.txnsPerSession << ',' << cfg_.rate << ','
       << (cfg_.fault.enabled() ? cfg_.fault.toString() : "none") << ','
       << served_ << ',' << lastReal_ << ',' << faultsInjected() << ','
       << faultsDetected() << ',' << faultsRecovered() << ','
       << retriesIssued() << ',' << recoverySlots();
    return os.str();
}

} // namespace tcoram::sim
