#include "sim/session_ring.hh"

namespace tcoram::sim {

SessionRing::SessionRing(std::size_t capacity)
    : sq_(capacity), cq_(capacity), window_(sq_.capacity(), 0)
{
}

std::optional<std::uint64_t>
SessionRing::trySubmit(std::uint32_t sid, Cycles arrival,
                       const timing::OramTransaction &txn)
{
    // The single backpressure bound gates on the retirement FENCE, not
    // the drain count: completions pop in shard-fold order, so a
    // producer that pops a few out-of-order completions and resubmits
    // can push drained well past the fence, and a drain-count bound
    // would then let token - fence exceed the retirement window (two
    // live tokens aliasing one window slot). Because fence <= drained,
    // this bound is strictly tighter than submitted - drained <
    // capacity, so it still implies a free submission slot (sq
    // occupancy <= in-flight) AND reserves a completion slot.
    if (submitted() - fence_.load(std::memory_order_relaxed) >=
        sq_.capacity())
        return std::nullopt;
    const std::uint64_t token = nextToken_;
    const bool ok = sq_.tryPush(Submission{token, sid, arrival, txn});
    tcoram_assert(ok, "submission ring full below the in-flight bound");
    ++nextToken_;
    return token;
}

bool
SessionRing::popCompletion(Completion &out)
{
    if (!cq_.tryPop(out))
        return false;
    ++drained_;
    // Tokens retire out of order across shards; mark the slot in the
    // capacity-sized window and advance the fence over every
    // consecutively-retired token. trySubmit's fence bound guarantees
    // token - fence <= capacity for every live token, so slots never
    // collide.
    const std::size_t mask = window_.size() - 1;
    std::uint64_t fence = fence_.load(std::memory_order_relaxed);
    tcoram_dassert(out.token > fence && out.token - fence <= window_.size(),
                   "completion token outside the retirement window");
    window_[out.token & mask] = 1;
    while (window_[(fence + 1) & mask]) {
        window_[(fence + 1) & mask] = 0;
        ++fence;
    }
    fence_.store(fence, std::memory_order_release);
    return true;
}

bool
SessionRing::popSubmission(Submission &out)
{
    return sq_.tryPop(out);
}

void
SessionRing::pushCompletion(const Completion &c)
{
    const bool ok = cq_.tryPush(c);
    tcoram_assert(ok, "completion ring full: in-flight bound violated");
}

} // namespace tcoram::sim
