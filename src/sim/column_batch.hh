/**
 * @file
 * Columnar stat plane. Hot paths (experiment-grid workers, ring-shard
 * workers) record telemetry as RAW TYPED VALUES into fixed-schema
 * column buffers — no per-access/per-row string formatting — and the
 * serial end-of-run pass renders the familiar CSV bytes once.
 *
 * Concurrency model: a ColumnBatch owns one ColumnChunk per worker;
 * each worker appends only to its own chunk, so recording is lock-free
 * by construction (no atomics on the data plane). Every row carries a
 * caller-chosen order key; serialization merge-sorts chunks by key, so
 * the emitted bytes are independent of worker count and interleaving —
 * byte-identical to the historical single-threaded emission
 * (test-enforced against sim/report.cc and sim/shard_worker.cc).
 */

#ifndef TCORAM_SIM_COLUMN_BATCH_HH
#define TCORAM_SIM_COLUMN_BATCH_HH

#include <cstdint>
#include <string>
#include <vector>

namespace tcoram::sim {

enum class ColumnType : std::uint8_t
{
    Str,
    U64,
    F64,
};

/** Fixed column layout: names become the CSV header, in order. */
struct ColumnSchema
{
    struct Field
    {
        std::string name;
        ColumnType type;
    };
    std::vector<Field> fields;

    /** Header line matching the historical hand-written CSV headers. */
    std::string headerCsv() const;
};

/**
 * One worker's append-only row storage, columnar layout. Rows are
 * written cell by cell in schema order between beginRow()/endRow();
 * the writer asserts schema conformance (type and arity) per row.
 */
class ColumnChunk
{
  public:
    explicit ColumnChunk(const ColumnSchema &schema);

    /** Pre-size for @p rows rows (hot loops reserve once up front). */
    void reserve(std::size_t rows);

    /** Open a row; @p order_key determines its global emission order
     *  (keys must be unique across all chunks of a batch). */
    void beginRow(std::uint64_t order_key);
    void str(std::string v);
    void u64(std::uint64_t v);
    void f64(double v);
    void endRow();

    std::size_t rows() const { return order_.size(); }

  private:
    friend class ColumnBatch;

    struct Column
    {
        ColumnType type;
        // Exactly one of these is populated, per `type`.
        std::vector<std::string> s;
        std::vector<std::uint64_t> u;
        std::vector<double> d;
    };

    const ColumnSchema *schema_;
    std::vector<Column> cols_;
    std::vector<std::uint64_t> order_;
    std::size_t cursor_ = 0; ///< next column of the open row
    bool open_ = false;
};

/**
 * A schema plus one chunk per worker. Construction is serial; workers
 * then append concurrently, each to chunk(worker); serialization is
 * serial again after the join. csv() renders header + rows sorted by
 * order key with classic-locale formatting (byte-stable across hosts,
 * worker counts and schedules).
 */
class ColumnBatch
{
  public:
    ColumnBatch(ColumnSchema schema, std::size_t workers);

    const ColumnSchema &schema() const { return schema_; }
    std::size_t workerCount() const { return chunks_.size(); }
    ColumnChunk &chunk(std::size_t worker);

    /** Total rows recorded across chunks (serial phases only). */
    std::size_t rows() const;

    /** Header + every row, merge-sorted by order key. */
    std::string csv() const;

  private:
    ColumnSchema schema_;
    std::vector<ColumnChunk> chunks_;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_COLUMN_BATCH_HH
