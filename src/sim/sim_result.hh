/**
 * @file
 * Per-run result record: everything the benchmark harness needs to
 * print the paper's tables and figures.
 */

#ifndef TCORAM_SIM_SIM_RESULT_HH
#define TCORAM_SIM_SIM_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "timing/rate_enforcer.hh"

namespace tcoram::sim {

struct SimResult
{
    std::string configName;
    std::string workloadName;

    Cycles cycles = 0;
    InstCount instructions = 0;
    double ipc = 0.0;
    double watts = 0.0;
    /** Power excluding the DRAM/ORAM controllers (white-dashed bars). */
    double onChipWatts = 0.0;

    std::uint64_t llcMisses = 0;
    std::uint64_t oramReal = 0;
    std::uint64_t oramDummy = 0;
    double dummyFraction() const
    {
        const std::uint64_t total = oramReal + oramDummy;
        return total ? static_cast<double>(oramDummy) /
                           static_cast<double>(total)
                     : 0.0;
    }

    Cycles oramLatency = 0;
    std::uint64_t oramBytesPerAccess = 0;

    /** Bytes through the bucket AES-CTR engine over the run (crypto
     *  attribution for Table-2-style energy/perf reports). */
    std::uint64_t cryptoBytes = 0;
    /** Batched crypto-engine invocations over the run. */
    std::uint64_t cryptoCalls = 0;

    // --- Background-eviction telemetry (oram/eviction_engine.hh) ---
    /** End-of-run stash occupancy in blocks: the path blocks whose
     *  write-back is still deferred (0 with the engine off). */
    std::uint64_t stashOccupancy = 0;
    /** High-water stash occupancy in blocks over the run. */
    std::uint64_t stashHighWater = 0;
    /** Blocks written back by background evictions. */
    std::uint64_t blocksEvicted = 0;
    /** Background eviction transactions issued in enforced-gap idle
     *  windows. */
    std::uint64_t evictionsIssued = 0;

    /** IPC per instruction window (Figure 7). */
    std::vector<double> ipcSeries;
    /** LLC misses per instruction window (Figure 2). */
    std::vector<std::uint64_t> missSeries;
    InstCount ipcWindow = 0;
    /** Epoch-boundary rate decisions (Dynamic/Static schemes). */
    std::vector<timing::RateDecision> rateDecisions;
    unsigned epochsUsed = 0;

    /** ORAM-timing leakage bits at simulated scale. */
    double simLeakageBits = 0.0;
    /** ORAM-timing leakage bits at paper constants (Tmax 2^62, 2^30). */
    double paperLeakageBits = 0.0;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_SIM_RESULT_HH
