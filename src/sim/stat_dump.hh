/**
 * @file
 * Named-scalar export of a SimResult (gem5-style stats dump), for
 * regression tracking and ad-hoc inspection.
 */

#ifndef TCORAM_SIM_STAT_DUMP_HH
#define TCORAM_SIM_STAT_DUMP_HH

#include "common/stats.hh"
#include "sim/sim_result.hh"

namespace tcoram::sim {

/** Flatten a result record into a named-scalar StatDump. */
StatDump toStatDump(const SimResult &r);

} // namespace tcoram::sim

#endif // TCORAM_SIM_STAT_DUMP_HH
