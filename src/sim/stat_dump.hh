/**
 * @file
 * Named-scalar export of a SimResult (gem5-style stats dump), for
 * regression tracking and ad-hoc inspection.
 */

#ifndef TCORAM_SIM_STAT_DUMP_HH
#define TCORAM_SIM_STAT_DUMP_HH

#include <string>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/kv_backend.hh"
#include "sim/sim_result.hh"

namespace tcoram::sim {

/** Flatten a result record into a named-scalar StatDump. */
StatDump toStatDump(const SimResult &r);

/**
 * Flatten KV-serving counters into kv.* keys (hit/miss, spill
 * counts, probe depth, p99 latencies). The latency arguments come
 * from the harness (KvServingRun::getLatencyPercentile) because the
 * samples live there, not in KVStats.
 */
StatDump toStatDump(const KVStats &s, Cycles get_p99 = 0,
                    Cycles put_p99 = 0);

/** The kv.* dump rendered through the columnar stat plane
 *  (sim/column_batch.hh): one (stat, value) row per key, emitted in
 *  key order with byte-stable classic-locale formatting. */
std::string kvStatsCsv(const KVStats &s, Cycles get_p99 = 0,
                       Cycles put_p99 = 0);

} // namespace tcoram::sim

#endif // TCORAM_SIM_STAT_DUMP_HH
