/**
 * @file
 * Multi-session ORAM transaction scheduler. N client sessions — each
 * with its own §5 protocol identity and leakage budget — feed one
 * rate-enforced ORAM device through a single FIFO. The scheduler only
 * decides WHICH pending transaction a slot serves (round-robin among
 * sessions whose head has arrived); WHEN accesses happen is decided
 * entirely by the rate enforcer, so the observable device stream
 * remains one periodic, indistinguishable access sequence whatever
 * the session count or per-session arrival pattern. That is the
 * security invariant the trace-level tests pin.
 *
 * Sessions must be opened before transactions are served. Each open
 * runs the user/processor admission handshake (HMAC-bound leakage
 * limit, §5/§10); the tightest finite session budget becomes the
 * run's LeakageMonitor, so a shared device never spends more bits
 * than its most conservative client allows.
 *
 * The scheduler serves both open-loop experiments (queue everything,
 * then run()) and closed-loop ones (serveNext() one transaction at a
 * time, submitting follow-ups as completions come back — how the
 * multi-session bench models think-time clients).
 */

#ifndef TCORAM_SIM_ORAM_SCHEDULER_HH
#define TCORAM_SIM_ORAM_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "protocol/session.hh"
#include "timing/oram_device.hh"
#include "timing/rate_enforcer.hh"

namespace tcoram::sim {

/** Per-session end-of-run statistics. */
struct SessionStats
{
    std::uint32_t sessionId = 0;
    /** The session's leakage budget L (negative = unlimited). */
    double leakageLimitBits = -1.0;
    /** Admission result of the §5 handshake. */
    bool admitted = false;

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    Cycles firstArrival = 0;
    Cycles lastCompletion = 0;
    /** Sum over completions of (done - arrival). */
    Cycles totalLatency = 0;
    /** Sum over completions of (start - arrival): rate-induced wait. */
    Cycles totalSlotWait = 0;
    Cycles maxLatency = 0;

    double
    avgLatency() const
    {
        return completed ? static_cast<double>(totalLatency) /
                               static_cast<double>(completed)
                         : 0.0;
    }

    /** Completions per million cycles over @p span_cycles. */
    double
    throughputPerMcycle(Cycles span_cycles) const
    {
        return span_cycles ? 1e6 * static_cast<double>(completed) /
                                 static_cast<double>(span_cycles)
                           : 0.0;
    }
};

class OramScheduler
{
  public:
    /** One served transaction (completion + attribution). */
    struct Served
    {
        std::uint32_t sessionId = 0;
        Cycles arrival = 0;
        timing::OramCompletion completion;
    };

    /**
     * @param enforcer the rate-enforced front of the shared device
     * @param params leakage parameters of the running configuration
     *        (admission checks compare session budgets against them)
     */
    OramScheduler(timing::RateEnforcer &enforcer,
                  const protocol::LeakageParams &params);
    ~OramScheduler();

    /**
     * Open a client session. Runs the §5 handshake: the user binds
     * @p leakage_limit_bits to their key via HMAC, the processor
     * verifies the binding and admits the run iff the configuration's
     * ORAM-timing bits fit the budget (negative = unlimited, always
     * admitted). The tightest finite budget across open sessions is
     * (re)attached to the enforcer as the run's LeakageMonitor; every
     * session must be opened before the first transaction is served
     * (asserted — a later rebuild would forget bits already spent).
     * @return the new session id.
     */
    std::uint32_t openSession(std::uint64_t user_seed,
                              double leakage_limit_bits = -1.0);

    /**
     * Queue a real transaction from session @p sid arriving at cycle
     * @p arrival. Per-session arrivals must be non-decreasing (FIFO);
     * submission to an unadmitted session is a fatal error. The
     * transaction is queued by value, but its data/out spans are
     * VIEWS: the buffers they reference must stay alive until the
     * transaction is served (serveNext()/run()).
     */
    void submit(std::uint32_t sid, Cycles arrival,
                timing::OramTransaction txn);

    /** True when no queued transaction remains. */
    bool idle() const { return pending_ == 0; }

    /**
     * Serve exactly one queued transaction: among sessions whose head
     * has arrived by the next enforced service opportunity, pick
     * round-robin (fairness policy — it cannot affect the observable
     * stream, which the enforcer alone times). nullopt when idle.
     */
    std::optional<Served> serveNext();

    /** serveNext() until idle. @return cycle of the last completion. */
    Cycles run();

    /** Fire the trailing dummies the enforced schedule owes up to @p t. */
    void drainUntil(Cycles t);

    std::size_t sessionCount() const { return sessions_.size(); }
    const SessionStats &stats(std::uint32_t sid) const;
    bool sessionAdmitted(std::uint32_t sid) const;

    /** The monitor guarding the tightest session budget (nullptr when
     *  every open session is unlimited). */
    const timing::LeakageMonitor *monitor() const { return monitor_.get(); }

    /**
     * Max/min ratio of per-session completion counts across sessions
     * that submitted work — the starvation metric the multi-session
     * bench bounds. Sessions with zero completions make it +inf.
     */
    double fairnessRatio() const;

  private:
    struct Session;

    timing::RateEnforcer &enforcer_;
    protocol::LeakageParams params_;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::unique_ptr<timing::LeakageMonitor> monitor_;
    std::uint64_t pending_ = 0;
    std::uint64_t served_ = 0;
    std::size_t cursor_ = 0; ///< round-robin position (last served)
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_ORAM_SCHEDULER_HH
