/**
 * @file
 * Multi-session, shard-aware ORAM transaction scheduler. N client
 * sessions — each with its own §5 protocol identity and leakage
 * budget — feed an array of M rate-enforced ORAM subtree devices.
 * Rate enforcement lives in per-shard ShardSlots (timing/shard_slot.hh):
 * each slot owns one shard's RateEnforcer and the per-session FIFOs of
 * the transactions a deterministic PRF routed to it. The scheduler
 * only decides WHICH pending transaction a shard's slot serves (shard
 * round-robin, then session round-robin within the shard); WHEN each
 * shard's accesses happen is decided entirely by that shard's
 * enforcer, so the observable channel is M periodic, mutually
 * indistinguishable access streams whatever the session count or
 * per-session arrival pattern. That is the security invariant the
 * trace-level tests pin — per shard, exactly as PR 3 pinned it for
 * the single stream (which is the M = 1 case of this scheduler, kept
 * bit-identical through the legacy single-enforcer constructor).
 *
 * Sessions must be opened before transactions are served. Each open
 * runs the user/processor admission handshake (HMAC-bound leakage
 * limit, §5/§10) against the COMPOSED configuration bits — M parallel
 * streams leak additively, so admission clears M * |E| * lg|R|
 * (protocol::LeakageParams::shards). The tightest finite session
 * budget becomes the run's LeakageMonitor, shared by every shard's
 * enforcer: free rate decisions on any shard draw from the one
 * budget, so the composed realized leakage never exceeds L.
 *
 * The scheduler serves both open-loop experiments (queue everything,
 * then run()) and closed-loop ones (serveNext() one transaction at a
 * time), and reports per-session QoS (p50/p99 queue latency) for the
 * multi-session bench.
 */

#ifndef TCORAM_SIM_ORAM_SCHEDULER_HH
#define TCORAM_SIM_ORAM_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "oram/sharded_device.hh"
#include "protocol/session.hh"
#include "timing/oram_device.hh"
#include "timing/rate_enforcer.hh"
#include "timing/shard_slot.hh"

namespace tcoram::sim {

/** Per-session end-of-run statistics. */
struct SessionStats
{
    std::uint32_t sessionId = 0;
    /** The session's leakage budget L (negative = unlimited). */
    double leakageLimitBits = -1.0;
    /** Admission result of the §5 handshake. */
    bool admitted = false;

    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    Cycles firstArrival = 0;
    Cycles lastCompletion = 0;
    /** Sum over completions of (done - arrival). */
    Cycles totalLatency = 0;
    /** Sum over completions of (start - arrival): rate-induced wait. */
    Cycles totalSlotWait = 0;
    Cycles maxLatency = 0;

    double
    avgLatency() const
    {
        return completed ? static_cast<double>(totalLatency) /
                               static_cast<double>(completed)
                         : 0.0;
    }

    /** Completions per million cycles over @p span_cycles. */
    double
    throughputPerMcycle(Cycles span_cycles) const
    {
        return span_cycles ? 1e6 * static_cast<double>(completed) /
                                 static_cast<double>(span_cycles)
                           : 0.0;
    }
};

class OramScheduler
{
  public:
    /** One served transaction (completion + attribution). */
    struct Served
    {
        std::uint32_t sessionId = 0;
        std::uint32_t shardId = 0;
        Cycles arrival = 0;
        timing::OramCompletion completion;
    };

    /**
     * Single-shard path over an externally-owned enforcer — the PR 3
     * API, bit-identical behaviour (one slot, every txn routed to it).
     * @param enforcer the rate-enforced front of the shared device
     * @param params leakage parameters of the running configuration
     */
    OramScheduler(timing::RateEnforcer &enforcer,
                  const protocol::LeakageParams &params);

    /**
     * Sharded path: one owned enforcer per shard of @p device, all
     * sharing @p rates / @p schedule / @p learner (public knobs) but
     * each timing its own stream. Admission uses @p params with its
     * shard count overridden to the device's (composed bound).
     * @p rates, @p schedule and @p learner must outlive the scheduler.
     */
    OramScheduler(oram::ShardedOramDevice &device,
                  const timing::RateSet &rates,
                  const timing::EpochSchedule &schedule,
                  const timing::LearnerIf &learner, Cycles initial_rate,
                  const protocol::LeakageParams &params);
    ~OramScheduler();

    /**
     * Open a client session. Runs the §5 handshake: the user binds
     * @p leakage_limit_bits to their key via HMAC, the processor
     * verifies the binding and admits the run iff the configuration's
     * composed ORAM-timing bits fit the budget (negative = unlimited,
     * always admitted). The tightest finite budget across open
     * sessions is (re)attached to every shard's enforcer as the run's
     * LeakageMonitor; every session must be opened before the first
     * transaction is served (asserted — a later rebuild would forget
     * bits already spent).
     * @return the new session id.
     */
    std::uint32_t openSession(std::uint64_t user_seed,
                              double leakage_limit_bits = -1.0);

    /**
     * Queue a real transaction from session @p sid arriving at cycle
     * @p arrival. The PRF router assigns its shard; per-(session,
     * shard) arrivals must be non-decreasing (FIFO). Submission to an
     * unadmitted session is a fatal error. The transaction is queued
     * by value, but its data/out spans are VIEWS: the buffers they
     * reference must stay alive until the transaction is served.
     */
    void submit(std::uint32_t sid, Cycles arrival,
                timing::OramTransaction txn);

    /** True when no queued transaction remains on any shard. */
    bool idle() const { return pending_ == 0; }

    /**
     * Serve exactly one queued transaction: pick the next non-idle
     * shard round-robin, then let its slot pick among its sessions
     * (fairness policy — it cannot affect any shard's observable
     * stream, which that shard's enforcer alone times). nullopt when
     * idle.
     */
    std::optional<Served> serveNext();

    /** serveNext() until idle. @return cycle of the last completion. */
    Cycles run();

    /** Fire the trailing dummies every shard's schedule owes up to @p t. */
    void drainUntil(Cycles t);

    std::size_t sessionCount() const { return sessions_.size(); }
    const SessionStats &stats(std::uint32_t sid) const;
    bool sessionAdmitted(std::uint32_t sid) const;

    std::size_t shardCount() const { return slots_.size(); }
    const timing::ShardSlot &shard(std::size_t i) const;

    /** The monitor guarding the tightest session budget (nullptr when
     *  every open session is unlimited). Shared by all shards. */
    const timing::LeakageMonitor *monitor() const { return monitor_.get(); }

    /**
     * Max/min ratio of per-session completion counts across sessions
     * that submitted work — the starvation metric the multi-session
     * bench bounds. Sessions with zero completions make it +inf.
     */
    double fairnessRatio() const;

    /**
     * Queue-latency quantile (nearest-rank over (done - arrival) of
     * the session's completions; 0 when none). q in [0, 1] — the
     * bench reports q = 0.5 and q = 0.99.
     */
    Cycles latencyPercentile(std::uint32_t sid, double q) const;

    /**
     * Checkpoint support: per-session stats and latency samples, the
     * served/pending totals, the shard cursor, the shared monitor's
     * ledger, and every slot (enforcer + queued backlog). The device
     * array is checkpointed separately by the run harness
     * (sim/recovery_run.hh). Restore requires a scheduler built with
     * the identical configuration and the same sessions already
     * opened (asserted).
     */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    struct Session;

    void attachTightestMonitor();

    protocol::LeakageParams params_;
    oram::ShardedOramDevice *sharded_ = nullptr; ///< router (sharded path)
    std::vector<std::unique_ptr<timing::ShardSlot>> slots_;
    std::vector<std::unique_ptr<Session>> sessions_;
    std::unique_ptr<timing::LeakageMonitor> monitor_;
    std::uint64_t pending_ = 0;
    std::uint64_t served_ = 0;
    std::size_t shardCursor_ = 0; ///< round-robin position (last served)
    /** Reused nth_element scratch: percentile queries must not copy
     *  (or sort) the sample vector afresh on every call. */
    mutable std::vector<Cycles> latencyScratch_;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_ORAM_SCHEDULER_HH
