/**
 * @file
 * Lock-free session ingress/egress: one fixed-capacity power-of-two
 * SPSC submission ring plus one completion ring per producer lane,
 * with monotonically increasing fence-style tokens (the doorbell/queue
 * discipline high-rate datacenter stacks use to sustain line rate).
 *
 * Ring layout (one lane):
 *
 *     producer thread                    scheduler ingress worker
 *     ---------------                    ------------------------
 *     trySubmit ──► [ sq: power-of-two SPSC ] ──► popSubmission
 *     popCompletion ◄── [ cq: same layout ]  ◄── pushCompletion
 *
 * Memory-ordering contract (the ONLY synchronization on the hot path —
 * no mutex, no CAS):
 *  - each ring has a producer-owned tail and a consumer-owned mono-
 *    tonically increasing head, both std::atomic<uint64_t>;
 *  - push: read the opposite index with acquire (space check), write
 *    the slot, then store your index with release — the release/
 *    acquire pair publishes the slot contents;
 *  - pop: read the opposite index with acquire (emptiness check), read
 *    the slot, then store your index with release — handing the slot
 *    back to the pusher.
 *
 * Tokens: trySubmit assigns lane-monotonic tokens 1, 2, 3, ... The
 * lane's FENCE is the highest token T such that every token <= T has
 * retired (its completion popped); clients poll isRetired(T) against
 * the fence without touching any scheduler state. Shards retire
 * tokens out of order, so the fence is advanced through a capacity-
 * sized retirement window on the producer side.
 *
 * Backpressure: at most capacity() tokens may be UNRETIRED (issued but
 * not yet behind the fence). Because the fence trails the drain count,
 * this single bound keeps BOTH rings from overflowing — pushCompletion
 * can assert it never finds the completion ring full — AND keeps every
 * live token inside the retirement window (token - fence <= capacity,
 * so window slots never alias). A full trySubmit failure means: drain
 * completions, then resubmit; the fence reopens the lane as soon as
 * the oldest outstanding token retires.
 */

#ifndef TCORAM_SIM_SESSION_RING_HH
#define TCORAM_SIM_SESSION_RING_HH

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/log.hh"
#include "timing/oram_device.hh"

namespace tcoram::sim {

/** Single-producer single-consumer ring over a power-of-two buffer. */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity)
        : buf_(roundUpPow2(capacity)), mask_(buf_.size() - 1)
    {
    }

    std::size_t capacity() const { return buf_.size(); }

    /** Producer side. False when full. */
    bool
    tryPush(const T &v)
    {
        const std::uint64_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) == buf_.size())
            return false;
        buf_[t & mask_] = v;
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /** Consumer side. False when empty. */
    bool
    tryPop(T &out)
    {
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        if (h == tail_.load(std::memory_order_acquire))
            return false;
        out = buf_[h & mask_];
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /** Approximate (exact on the owning side). */
    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t c = 1;
        while (c < n)
            c <<= 1;
        return c;
    }

    std::vector<T> buf_;
    std::size_t mask_;
    alignas(64) std::atomic<std::uint64_t> head_{0};
    alignas(64) std::atomic<std::uint64_t> tail_{0};
};

/** One producer lane: submission ring + completion ring + fence. */
class SessionRing
{
  public:
    struct Submission
    {
        std::uint64_t token = 0;
        std::uint32_t sessionId = 0;
        Cycles arrival = 0;
        timing::OramTransaction txn;
    };

    struct Completion
    {
        std::uint64_t token = 0;
        std::uint32_t sessionId = 0;
        Cycles arrival = 0;
        timing::OramCompletion completion;
    };

    /** @param capacity backpressure bound: max unretired tokens
     *  (rounded up to a power of 2). */
    explicit SessionRing(std::size_t capacity);

    std::size_t capacity() const { return sq_.capacity(); }

    // --- producer (client) side ---

    /**
     * Queue a transaction; returns its lane token, or nullopt when
     * capacity() tokens are not yet retired — i.e. the oldest
     * outstanding token is capacity() behind (drain completions, then
     * retry). @p arrival stamps must be non-decreasing per session:
     * the shard queues downstream require monotonic per-session
     * arrival order and assert it at enqueue.
     */
    std::optional<std::uint64_t> trySubmit(std::uint32_t sid, Cycles arrival,
                                           const timing::OramTransaction &txn);

    /** Pop one completion; advances the retirement fence. */
    bool popCompletion(Completion &out);

    /** Highest token T with every token <= T retired (0 = none). */
    std::uint64_t
    retiredFence() const
    {
        return fence_.load(std::memory_order_acquire);
    }

    bool isRetired(std::uint64_t token) const
    {
        return retiredFence() >= token;
    }

    /** Tokens issued so far (producer side). */
    std::uint64_t submitted() const { return nextToken_ - 1; }
    /** Completions drained so far (producer side). */
    std::uint64_t drained() const { return drained_; }
    /** In-flight transactions (producer side). */
    std::uint64_t inFlight() const { return submitted() - drained_; }

    /** Submissions not yet popped by the scheduler (approximate). */
    std::size_t submissionBacklog() const { return sq_.size(); }
    /** Completions not yet popped by the client (approximate). */
    std::size_t completionBacklog() const { return cq_.size(); }

    // --- consumer (scheduler) side ---

    /** Pop one submission. False when the lane is currently empty. */
    bool popSubmission(Submission &out);

    /** Push a completion; the backpressure bound (which caps in-flight
     *  transactions) means this cannot find the ring full (asserted). */
    void pushCompletion(const Completion &c);

  private:
    SpscRing<Submission> sq_;
    SpscRing<Completion> cq_;

    // producer-owned
    std::uint64_t nextToken_ = 1;
    std::uint64_t drained_ = 0;
    std::vector<std::uint8_t> window_; ///< retired-out-of-order marks
    std::atomic<std::uint64_t> fence_{0};
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_SESSION_RING_HH
