/**
 * @file
 * Crash-consistent checkpoint files. A checkpoint is an opaque
 * serialized payload (produced by the saveState() chain rooted at
 * sim/recovery_run.hh) framed with enough metadata to reject every
 * torn, truncated or corrupted snapshot at load time:
 *
 *   magic "TCORCKPT" | u32 version | u64 payload length |
 *   SHA-256(payload) | payload bytes
 *
 * Writing is two-phase: the frame goes to "<path>.tmp", is fsync'd,
 * and only then renamed over @p path — rename(2) is atomic within a
 * filesystem, so a crash at ANY point leaves either the previous
 * complete checkpoint or the new complete checkpoint, never a torn
 * one. Loading verifies magic, version, length and digest before
 * handing the payload back; any mismatch is reported (not fatal) so
 * callers can fall back to an older snapshot or a cold start.
 */

#ifndef TCORAM_SIM_CHECKPOINT_HH
#define TCORAM_SIM_CHECKPOINT_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tcoram::sim {

/** Current checkpoint format version. */
inline constexpr std::uint32_t kCheckpointVersion = 1;

/**
 * Atomically write @p payload as a checkpoint at @p path.
 * @return empty string on success, else a diagnostic (I/O failure).
 */
std::string saveCheckpoint(const std::string &path,
                           std::span<const std::uint8_t> payload);

/**
 * Load and verify the checkpoint at @p path into @p payload.
 * @return empty string on success, else a diagnostic naming what was
 *         wrong (missing file, bad magic, version skew, truncation,
 *         digest mismatch). @p payload is untouched on failure.
 */
std::string loadCheckpoint(const std::string &path,
                           std::vector<std::uint8_t> &payload);

} // namespace tcoram::sim

#endif // TCORAM_SIM_CHECKPOINT_HH
