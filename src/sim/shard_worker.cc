#include "sim/shard_worker.hh"

#include <algorithm>
#include <barrier>
#include <cmath>
#include <limits>
#include <locale>
#include <sstream>
#include <thread>

#include "common/log.hh"

namespace tcoram::sim {

namespace {
/** Program hash stand-in bound into every session's leakage HMAC —
 *  the same run identity OramScheduler binds. */
const std::string kProgramHash = "tcoram-scheduler-run";
} // namespace

RingScheduler::RingScheduler(oram::ShardedOramDevice &device,
                             const timing::RateSet &rates,
                             const timing::EpochSchedule &schedule,
                             const timing::LearnerIf &learner,
                             Cycles initial_rate,
                             const protocol::LeakageParams &params,
                             Options opts)
    : device_(&device), params_(params), opts_(opts)
{
    tcoram_assert(opts_.lanes >= 1, "ring scheduler needs at least one lane");
    tcoram_assert(opts_.ringCapacity >= 2, "ring capacity too small");
    params_.shards = device.shardCount();

    const std::uint32_t shards = device.shardCount();
    for (std::uint32_t i = 0; i < shards; ++i) {
        auto slot = std::make_unique<timing::ShardSlot>(
            i, device.shard(i), rates, schedule, learner, initial_rate);
        slot->setDispatchPolicy(timing::makeDispatchPolicy(opts_.policy));
        slots_.push_back(std::move(slot));
    }
    for (std::size_t l = 0; l < opts_.lanes; ++l)
        lanes_.push_back(std::make_unique<SessionRing>(opts_.ringCapacity));

    staging_.assign(opts_.lanes,
                    std::vector<std::vector<Staged>>(shards));
    buckets_.assign(shards,
                    std::vector<std::vector<SessionRing::Completion>>(
                        opts_.lanes));
    blocked_.assign(shards, 0);
    servedPerShard_.assign(shards, 0);

    const unsigned cap = static_cast<unsigned>(
        std::max<std::size_t>(opts_.lanes, shards));
    workers_ = std::clamp<unsigned>(opts_.threads, 1, cap);

    if (opts_.recordShardTelemetry)
        telemetry_ =
            std::make_unique<ColumnBatch>(shardTelemetrySchema(), workers_);
}

RingScheduler::~RingScheduler() = default;

void
RingScheduler::attachMonitor()
{
    if (tightestLimit_ < 0.0)
        return;
    monitor_ = std::make_unique<timing::LeakageMonitor>(tightestLimit_,
                                                        params_.rateCount);
    for (auto &slot : slots_)
        slot->enforcer().attachMonitor(monitor_.get());
}

std::uint32_t
RingScheduler::openSession(std::uint64_t user_seed, double leakage_limit_bits,
                           std::uint16_t lane, std::uint16_t weight,
                           Cycles deadline_offset)
{
    // Same rule as OramScheduler: the shared monitor is rebuilt from
    // the tightest finite budget at open, so admission belongs
    // strictly before service.
    tcoram_assert(!anyServed_,
                  "open every session before any transaction is served");
    tcoram_assert(lane < lanes_.size(), "unknown lane ", lane);

    const auto id = static_cast<std::uint32_t>(descriptors_.size());
    SessionDescriptor d;
    d.stats.sessionId = id;
    d.stats.leakageLimitBits = leakage_limit_bits;
    d.lane = lane;
    d.weight = std::max<std::uint16_t>(weight, 1);
    d.deadlineOffset = deadline_offset;

    if (leakage_limit_bits < 0.0) {
        // Unlimited budgets skip the handshake entirely — this is what
        // keeps a million session opens cheap: no HMAC, no key
        // derivation, just the descriptor.
        d.stats.admitted = true;
    } else {
        protocol::UserSession user(user_seed);
        protocol::ProcessorSession processor(user);
        const crypto::Digest256 mac =
            user.bindLeakageLimit(kProgramHash, leakage_limit_bits);
        d.stats.admitted =
            processor.verifyBinding(kProgramHash, leakage_limit_bits, mac,
                                    user) &&
            processor.admit(params_, leakage_limit_bits);
        if (d.stats.admitted &&
            (tightestLimit_ < 0.0 || leakage_limit_bits < tightestLimit_)) {
            tightestLimit_ = leakage_limit_bits;
            attachMonitor();
        }
    }
    descriptors_.push_back(std::move(d));
    return id;
}

std::optional<std::uint64_t>
RingScheduler::trySubmit(std::uint32_t sid, Cycles arrival,
                         timing::OramTransaction txn)
{
    tcoram_assert(sid < descriptors_.size(), "unknown session ", sid);
    const SessionDescriptor &d = descriptors_[sid];
    if (!d.stats.admitted)
        tcoram_fatal("session ", sid, " was not admitted (budget ",
                     d.stats.leakageLimitBits, " bits < configuration's ",
                     params_.oramTimingBits(), ")");
    tcoram_assert(txn.kind == timing::OramTransaction::Kind::Real,
                  "dummies are the enforcers' job, not the clients'");
    txn.sessionId = sid;
    SessionRing &ring = *lanes_[d.lane];
    const auto token = ring.trySubmit(sid, arrival, txn);
    return token;
}

SessionRing &
RingScheduler::lane(std::size_t l)
{
    tcoram_assert(l < lanes_.size(), "unknown lane ", l);
    return *lanes_[l];
}

void
RingScheduler::laneStep(unsigned worker)
{
    for (std::size_t l = worker; l < lanes_.size(); l += workers_) {
        SessionRing &ring = *lanes_[l];
        // Fold the previous round's completions, shard-id order: the
        // bucket contents are deterministic (phase S is), so this
        // fold — and hence stats and the lane's completion-ring
        // order — is too.
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            auto &bucket = buckets_[s][l];
            for (const auto &c : bucket) {
                SessionDescriptor &d = descriptors_[c.sessionId];
                ++d.stats.completed;
                d.stats.lastCompletion =
                    std::max(d.stats.lastCompletion, c.completion.done);
                const Cycles latency = c.completion.done - c.arrival;
                d.stats.totalLatency += latency;
                d.stats.maxLatency = std::max(d.stats.maxLatency, latency);
                d.stats.totalSlotWait += c.completion.start - c.arrival;
                if (opts_.recordLatencies)
                    d.latencies.push_back(latency);
                ring.pushCompletion(c);
            }
            bucket.clear();
        }
        // Ingress: stage this lane's submissions per target shard.
        // Routing here is the stateless PRF only; the id-localizing
        // rewrite happens under the owning shard in phase S.
        SessionRing::Submission sub;
        for (std::size_t n = 0;
             n < ring.capacity() && ring.popSubmission(sub); ++n) {
            SessionDescriptor &d = descriptors_[sub.sessionId];
            if (d.stats.submitted == 0 ||
                sub.arrival < d.stats.firstArrival)
                d.stats.firstArrival = sub.arrival;
            ++d.stats.submitted;
            sub.txn.tag = sub.token;
            const std::uint32_t s = device_->routeOf(sub.txn);
            staging_[l][s].push_back(
                Staged{sub.sessionId, sub.arrival, sub.txn});
        }
    }
}

void
RingScheduler::shardStep(unsigned worker)
{
    for (std::size_t s = worker; s < slots_.size(); s += workers_) {
        timing::ShardSlot &slot = *slots_[s];
        if (draining_) {
            if (!slot.drainScaled(drainT_))
                blocked_[s] = 1;
            continue;
        }
        // Merge the staged transactions in LANE order — a fixed,
        // worker-count-independent order.
        for (std::size_t l = 0; l < lanes_.size(); ++l) {
            auto &staged = staging_[l][s];
            for (auto &st : staged) {
                device_->localize(static_cast<std::uint32_t>(s), st.txn);
                const SessionDescriptor &d = descriptors_[st.sessionId];
                slot.enqueueScaled(st.sessionId, st.arrival, st.txn,
                                   d.weight, d.deadlineOffset);
            }
            staged.clear();
        }
        // Serve bounded: stop at this shard's next epoch boundary and
        // hand the transition to the serial step.
        const std::uint64_t before = servedPerShard_[s];
        timing::ShardSlot::Served out;
        for (;;) {
            const auto status = slot.serveScaled(out);
            if (status == timing::ShardSlot::ServeStatus::Done) {
                const SessionDescriptor &d = descriptors_[out.sessionId];
                buckets_[s][d.lane].push_back(SessionRing::Completion{
                    out.tag, out.sessionId, out.arrival, out.completion});
                ++servedPerShard_[s];
                continue;
            }
            if (status == timing::ShardSlot::ServeStatus::Blocked)
                blocked_[s] = 1;
            break;
        }
        // Telemetry: raw typed values into this worker's own chunk —
        // the shard's owner is fixed for the whole run, and the
        // (round, shard) order key makes serialization order (hence
        // bytes) independent of the ownership mapping.
        if (telemetry_ != nullptr && servedPerShard_[s] != before) {
            ColumnChunk &chunk = telemetry_->chunk(worker);
            chunk.beginRow(round_ * slots_.size() + s);
            chunk.u64(round_);
            chunk.u64(s);
            chunk.u64(servedPerShard_[s] - before);
            chunk.u64(servedPerShard_[s]);
            chunk.u64(slot.enforcer().lastCompletion());
            chunk.endRow();
        }
    }
}

void
RingScheduler::serialStep()
{
    // The ONLY cross-shard mutation of the run: epoch transitions
    // consult the shared LeakageMonitor, so they are applied here, one
    // thread, in shard-id order — the same ledger order whatever the
    // worker count.
    ++round_; // every phase-S pass before the NEXT serial step sees a
              // fresh telemetry order-key digit, draining included
    bool transitioned = false;
    for (std::size_t s = 0; s < slots_.size(); ++s) {
        if (blocked_[s]) {
            slots_[s]->applyTransition();
            blocked_[s] = 0;
            transitioned = true;
        }
    }
    if (draining_) {
        stop_ = !transitioned;
        return;
    }
    bool quiescent = !transitioned;
    if (quiescent)
        for (const auto &slot : slots_)
            if (!slot->idle()) {
                quiescent = false;
                break;
            }
    if (quiescent)
        for (const auto &ring : lanes_)
            if (ring->submissionBacklog() != 0) {
                quiescent = false;
                break;
            }
    if (quiescent)
        for (const auto &per_shard : buckets_)
            for (const auto &bucket : per_shard)
                if (!bucket.empty()) {
                    quiescent = false;
                    break;
                }
    for (const auto &per_shard : servedPerShard_)
        anyServed_ = anyServed_ || per_shard != 0;
    stop_ = quiescent;
}

void
RingScheduler::pump(bool draining, Cycles drain_t)
{
    draining_ = draining;
    drainT_ = drain_t;
    stop_ = false;

    if (workers_ == 1) {
        // Same phase functions, same order, no threads: the
        // single-worker run IS the reference the N-worker run must
        // reproduce bit-for-bit.
        while (!stop_) {
            laneStep(0);
            shardStep(0);
            serialStep();
        }
        return;
    }

    std::barrier<> staged_ready(static_cast<std::ptrdiff_t>(workers_));
    std::barrier round_done(static_cast<std::ptrdiff_t>(workers_),
                            [this]() noexcept { serialStep(); });
    auto body = [&](unsigned w) {
        for (;;) {
            laneStep(w);
            staged_ready.arrive_and_wait();
            shardStep(w);
            round_done.arrive_and_wait();
            // stop_ was written in the completion step, which
            // strongly-happens-before every arrive_and_wait return.
            if (stop_)
                return;
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers_ - 1);
    for (unsigned w = 1; w < workers_; ++w)
        pool.emplace_back(body, w);
    body(0);
    for (auto &t : pool)
        t.join();
}

Cycles
RingScheduler::runUntilIdle()
{
    pump(false, 0);
    return lastCompletion();
}

void
RingScheduler::drainUntil(Cycles t)
{
    for (const auto &slot : slots_)
        tcoram_assert(slot->pending() == 0,
                      "drain with transactions still queued");
    for (const auto &ring : lanes_)
        tcoram_assert(ring->submissionBacklog() == 0,
                      "drain with submissions still ringed");
    pump(true, t);
}

const SessionStats &
RingScheduler::stats(std::uint32_t sid) const
{
    tcoram_assert(sid < descriptors_.size(), "unknown session ", sid);
    return descriptors_[sid].stats;
}

bool
RingScheduler::sessionAdmitted(std::uint32_t sid) const
{
    return stats(sid).admitted;
}

const timing::ShardSlot &
RingScheduler::shard(std::size_t i) const
{
    tcoram_assert(i < slots_.size(), "shard index out of range");
    return *slots_[i];
}

std::uint64_t
RingScheduler::servedTotal() const
{
    std::uint64_t n = 0;
    for (const auto &per_shard : servedPerShard_)
        n += per_shard;
    return n;
}

Cycles
RingScheduler::lastCompletion() const
{
    Cycles last = 0;
    for (const auto &slot : slots_)
        last = std::max(last, slot->enforcer().lastCompletion());
    return last;
}

double
RingScheduler::fairnessRatio() const
{
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    bool any = false;
    for (const auto &d : descriptors_) {
        if (d.stats.submitted == 0)
            continue;
        any = true;
        lo = std::min(lo, d.stats.completed);
        hi = std::max(hi, d.stats.completed);
    }
    if (!any || hi == 0)
        return 1.0;
    if (lo == 0)
        return std::numeric_limits<double>::infinity();
    return static_cast<double>(hi) / static_cast<double>(lo);
}

Cycles
RingScheduler::latencyPercentile(std::uint32_t sid, double q) const
{
    tcoram_assert(sid < descriptors_.size(), "unknown session ", sid);
    tcoram_assert(q >= 0.0 && q <= 1.0, "quantile out of [0, 1]");
    const auto &lat = descriptors_[sid].latencies;
    if (lat.empty())
        return 0;
    // Same nearest-rank discipline as OramScheduler: nth_element over
    // a REUSED scratch keeps repeated quantile queries linear and
    // allocation-free once the scratch has grown.
    latencyScratch_.assign(lat.begin(), lat.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(lat.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    std::nth_element(latencyScratch_.begin(),
                     latencyScratch_.begin() +
                         static_cast<std::ptrdiff_t>(idx),
                     latencyScratch_.end());
    return latencyScratch_[idx];
}

std::string
RingScheduler::csvHeader()
{
    return "shard,served,real,dummy,epochs_used,pinned_decisions,"
           "last_completion,crypto_bytes";
}

std::string
RingScheduler::csvRow(std::uint32_t shard) const
{
    tcoram_assert(shard < slots_.size(), "shard index out of range");
    const timing::RateEnforcer &enf = slots_[shard]->enforcer();
    const timing::OramDeviceIf &dev = device_->shard(shard);
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << shard << ',' << servedPerShard_[shard] << ','
       << dev.realAccesses() << ',' << dev.dummyAccesses() << ','
       << enf.currentEpoch() << ',' << enf.pinnedDecisions() << ','
       << enf.lastCompletion() << ',' << enf.counters().cryptoBytes();
    return os.str();
}

std::string
RingScheduler::csv() const
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << csvHeader() << '\n';
    for (std::uint32_t s = 0; s < slots_.size(); ++s)
        os << csvRow(s) << '\n';
    return os.str();
}

ColumnSchema
RingScheduler::shardTelemetrySchema()
{
    using enum ColumnType;
    return {{{"round", U64},
             {"shard", U64},
             {"served", U64},
             {"served_total", U64},
             {"last_completion", U64}}};
}

std::string
RingScheduler::telemetryCsv() const
{
    tcoram_assert(telemetry_ != nullptr,
                  "telemetryCsv requires Options::recordShardTelemetry");
    return telemetry_->csv();
}

} // namespace tcoram::sim
