/**
 * @file
 * Whole-system configuration presets matching the paper's evaluated
 * designs (§9.1.6): base_dram, base_oram, static_<rate>, and
 * dynamic_R<r>_E<g>. Simulated runs use a scaled epoch0 (2^20 cycles
 * vs the paper's 2^30) so the harness finishes in minutes; leakage is
 * always additionally reported at paper constants (DESIGN.md §7).
 */

#ifndef TCORAM_SIM_SYSTEM_CONFIG_HH
#define TCORAM_SIM_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/backend_registry.hh"
#include "oram/oram_config.hh"
#include "oram/oram_controller.hh"
#include "timing/dispatch_policy.hh"
#include "timing/rate_learner.hh"

namespace tcoram::oram {
enum class Datapath : std::uint8_t; // oram/path_oram.hh
} // namespace tcoram::oram

namespace tcoram::workload {
struct WorkloadParams; // workload/workload_source.hh
} // namespace tcoram::workload

namespace tcoram::sim {

enum class Scheme
{
    BaseDram, ///< insecure DRAM, no ORAM (performance baseline)
    BaseOram, ///< Path ORAM, no timing protection (leaks freely)
    Static,   ///< single periodic rate (Ascend-style, zero ORAM leak)
    Dynamic,  ///< our scheme: epoch-based learned rates
    /**
     * §10's "can our scheme work without ORAM?": rate-enforced plain
     * DRAM whose dummies are made indistinguishable by closed-page
     * (public-state) row buffers and partitioned channels. Protects
     * the *timing* channel only — addresses still leak — but shows
     * the epoch/learner machinery generalizes beyond ORAM.
     */
    ProtectedDram,
};

struct SystemConfig
{
    std::string name = "base_dram";
    Scheme scheme = Scheme::BaseDram;

    /** LLC capacity (paper reports the 1 MB result). */
    std::uint64_t llcBytes = 1024 * 1024;
    /** ORAM geometry (ignored for BaseDram). */
    oram::OramConfig oram = oram::OramConfig::benchConfig();
    /** Flat latency of the insecure DRAM baseline (§9.1.2). */
    Cycles baseDramLatency = 40;

    // --- Rate control (Static / Dynamic) ---
    /** Static scheme's single rate. */
    Cycles staticRate = 300;
    /** Dynamic scheme: |R| candidates, lg-spaced in [rateLo, rateHi]. */
    std::size_t rateCount = 4;
    Cycles rateLo = 256;
    Cycles rateHi = 32768;
    /** Epoch growth factor g in dynamic_R<r>_E<g>. */
    unsigned epochGrowth = 4;
    /** First-epoch length (scaled; paper uses 2^30). */
    Cycles epoch0 = Cycles{1} << 20;
    /** Simulated Tmax (scaled; paper uses 2^62). */
    Cycles tmax = Cycles{1} << 40;
    /** Rate used during epoch 0 (paper: 10000). */
    Cycles initialRate = 10000;
    timing::RateLearner::Divider divider =
        timing::RateLearner::Divider::Shifter;
    /** Rate-candidate spacing (Log is the paper's choice). */
    bool linearSpacing = false;
    /** Which epoch-boundary predictor drives the enforcer. */
    enum class Learner
    {
        Simple,    ///< §7.1 averaging predictor (the paper's default)
        Threshold, ///< §7.3 sophisticated predictor
    };
    Learner learnerKind = Learner::Simple;
    /** §7.3 trade-off parameter for the Threshold learner. */
    double thresholdSharpness = 0.3;

    /**
     * Per-session ORAM-timing leakage budget L in bits (§2.1). When
     * finite, the enforcer pins the rate once the budget is spent.
     */
    double leakageLimitBits = -1.0; ///< negative = unlimited

    std::uint64_t seed = 1;
    /** Instructions per IPC sample (Figure 7 granularity). */
    InstCount ipcWindow = 1'000'000;

    /**
     * Main-memory backend kind (dram/backend_registry.hh). Empty
     * selects the scheme's natural backend: "flat" for BaseDram,
     * "banked" otherwise. Set to "trace" to record every transaction
     * for the attack experiments.
     */
    std::string memoryBackend;

    /** Registry spec for this configuration's main memory (fatal on
     *  an unknown memoryBackend string, naming the config). When the
     *  fault model carries timing kinds (delay/refuse), the resolved
     *  kind is wrapped as "faulty:<kind>" so the decorator perturbs
     *  the async core underneath the controller. */
    dram::BackendSpec memorySpec() const;

    /**
     * Fault-injection spec in FaultSpec text form ("flip@1e-4",
     * "all@0.001#7", ...; dram/faulty_memory.hh). Empty or "none"
     * disables injection. Data kinds (flip/stuck) arm the functional
     * datapath's MAC-verified bounded-retry recovery; timing kinds
     * (delay/refuse) wrap main memory in the FaultyMemory decorator.
     */
    std::string faultSpec;

    /** Parsed spec (fatal on a malformed string, naming the input). */
    dram::FaultSpec faultSpecParsed() const;

    /** Retry budget of the recovery engine when faults are armed. */
    unsigned faultRetryBudget = 4;

    /**
     * ORAM device backend serving the processor (oram/oram_device.hh).
     * Empty selects "timing" (the paper's calibrated constant-OLAT
     * model). "functional" runs the real PathOram datapath with
     * identical cycle charging, so a run's stats are bit-identical
     * across the two devices.
     */
    std::string oramDevice;

    /**
     * Functional datapath capacity cap in blocks (0 = uncapped).
     * Paper-scale trees are multi-GB; the cap bounds host memory while
     * timing/cost attribution stays on the modeled geometry. The
     * default fits the bench tree exactly (so bench geometry runs
     * uncapped) and keeps paper-scale functional runs ~20 MB.
     */
    std::uint64_t functionalBlockCap = std::uint64_t{1} << 16;

    /** Resolved device kind (fatal on an unknown oramDevice string). */
    std::string oramDeviceKind() const;

    /**
     * Recursion datapath structure of the functional device
     * (oram/path_oram.hh). Empty selects the fused engine (one path
     * access per recursion stage, one batched cross-stage write-back
     * encrypt); "unfused" is the draw-identical per-tree-encrypt
     * reference (FusedImmediate); "legacy" the pre-fusion get/set
     * recursion. Observable stats are datapath-independent — the
     * non-default modes exist for differential tests and benchmarks.
     */
    std::string functionalDatapath;

    /** Resolved datapath (fatal on an unknown functionalDatapath). */
    oram::Datapath functionalDatapathKind() const;

    /**
     * Path read/write-back scheduling of the ORAM controller against
     * DRAM (oram/oram_controller.hh):
     *
     *   "sync"  — whole-path read then whole-path write-back (the
     *             paper's blocking controller; the default, and the
     *             mode every golden CSV is pinned under)
     *   "async" — split-transaction controller: bucket write-backs are
     *             issued while deeper reads are still in flight, OLAT
     *             shrinks to the path-read phase, and the write-back
     *             tail drains inside the enforced inter-access gap
     *
     * Empty selects "sync". Ignored by base_dram / protected_dram,
     * which have no ORAM path.
     */
    std::string dramMode;

    /** Resolved mode string (fatal on an unknown dramMode, naming the
     *  config). */
    std::string dramModeKind() const;

    /** dramModeKind() as the oram-layer enum. */
    oram::PathMode pathMode() const;

    /**
     * Subtree shards of the ORAM device array (oram/sharded_device.hh).
     * 1 = the bare device (default). With M > 1 the ORAM-backed
     * schemes split the tree across M independent devices, each behind
     * its own rate enforcer: aggregate throughput scales with M and
     * the leakage bound composes additively (M parallel streams).
     * Ignored by base_dram / protected_dram, which have no ORAM tree.
     * oramDevice = "sharded" engages the array wrapper even at M = 1
     * (bit-identical to the bare device; golden-pinned).
     */
    std::uint32_t oramShards = 1;

    /** Validated shard count (fatal on 0 or on more shards than
     *  kMaxOramShards, naming the config). */
    std::uint32_t shardCount() const;
    static constexpr std::uint32_t kMaxOramShards = 64;

    /**
     * Background eviction engine (oram/eviction_engine.hh): "off"
     * (default; bit-identical to builds without the engine), "gap"
     * (evict whenever deferred write-back tails exist and one fits the
     * enforced-gap idle window) or "highwater" (evict only once the
     * deferred-tail debt reaches half the budget). Requires
     * dramMode = "async": the sync controller has no write-back tail
     * to defer. Empty selects "off".
     */
    std::string evictionPolicy;

    /** Resolved policy (fatal on an unknown evictionPolicy or on a
     *  non-off policy under the sync dramMode, naming the config). */
    oram::EvictionPolicy evictionPolicyKind() const;

    /**
     * Max deferred write-back tails outstanding per device (per shard
     * when sharded). Sizes how much burst backlog can drain at the
     * read-phase period before full-occupancy charging resumes.
     */
    std::uint32_t evictionBudget = 64;

    /** Validated budget (fatal on 0 with a non-off policy or above
     *  kMaxEvictionBudget, naming the config). */
    std::uint32_t evictionBudgetValue() const;
    static constexpr std::uint32_t kMaxEvictionBudget = 1u << 20;

    /**
     * QoS dispatch policy of the scaled scheduler's ShardSlots
     * (timing/dispatch_policy.hh): "rr" (round-robin, default), "wrr"
     * (weighted round-robin) or "edf" (earliest deadline first). A
     * policy only picks WHICH eligible session rides a shard's next
     * enforced slot — it cannot shift any shard's observable stream.
     * Empty selects "rr".
     */
    std::string dispatchPolicy;

    /** Resolved policy (fatal on an unknown dispatchPolicy, naming the
     *  config). */
    timing::DispatchPolicyKind dispatchPolicyKind() const;

    /**
     * Worker threads of the scaled scheduler (sim/shard_worker.hh).
     * 0 = one worker per shard; otherwise clamped to the shard count
     * at run time. Purely a wall-clock knob: the phased-round barrier
     * discipline keeps every thread count bit-identical.
     */
    std::uint32_t schedulerThreads = 1;

    /** Validated thread knob (fatal above kMaxSchedulerThreads,
     *  naming the config). */
    std::uint32_t schedulerThreadCount() const;
    static constexpr std::uint32_t kMaxSchedulerThreads = 256;

    /**
     * Bucket-crypto engine backend for functional ORAM components
     * ("auto" / "scalar" / "ttable" / "aesni"; see
     * crypto/crypto_engine.hh). Empty keeps the process default:
     * CPUID-detected AES-NI when available, else T-tables. Drivers
     * apply it once at startup (single-threaded) via
     * crypto::setDefaultCryptoBackend — e.g. cli_sim's
     * --crypto-backend flag — never from per-cell construction, which
     * would race under the parallel ExperimentEngine; code that needs
     * per-instance selection passes a CryptoBackend to
     * PathOram/CtrCipher/Prf directly. The TCORAM_NO_AESNI and
     * TCORAM_CRYPTO_BACKEND environment variables override the
     * detection too.
     */
    std::string cryptoBackend;

    /**
     * Workload-plane spec "method:k=v,..." (workload/
     * workload_source.hh; methods listed by the registry — synthetic,
     * trace, kv, daly). Empty = no workload-plane run; cli_sim's
     * --workload mode requires it. Parsed and validated by
     * workloadSpec().
     */
    std::string workload;

    /** Parsed workload spec (fatal on an empty or malformed string or
     *  an unknown method, naming the config key). */
    workload::WorkloadParams workloadSpec() const;

    /**
     * Auto-size the eviction budget from the workload's observed
     * burst depth (workload::observedBurstDepth) instead of the fixed
     * evictionBudget. Off by default; requires the "highwater"
     * eviction policy and a non-empty workload spec (validated by
     * evictionAutoBudget()).
     */
    bool evictionAutoTune = false;

    /** Resolved budget under auto-tuning (fatal when evictionAutoTune
     *  is set without a highwater policy + workload, naming the
     *  config); falls back to evictionBudgetValue() when off. */
    std::uint32_t evictionAutoBudget() const;

    // --- Named presets (§9.1.6, §10) ---
    static SystemConfig baseDram();
    static SystemConfig baseOram();
    static SystemConfig staticScheme(Cycles rate);
    static SystemConfig dynamicScheme(std::size_t rate_count,
                                      unsigned epoch_growth);
    static SystemConfig protectedDram(std::size_t rate_count,
                                      unsigned epoch_growth);
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_SYSTEM_CONFIG_HH
