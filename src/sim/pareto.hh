/**
 * @file
 * Pareto analysis over (performance overhead, power, leakage): the
 * paper's thesis is that dynamic schemes occupy the frontier between
 * the static extremes. This helper extracts non-dominated
 * configurations from an experiment grid.
 */

#ifndef TCORAM_SIM_PARETO_HH
#define TCORAM_SIM_PARETO_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace tcoram::sim {

/** One configuration's suite-aggregate operating point. */
struct OperatingPoint
{
    std::string name;
    double perfOverheadX = 0.0; ///< geomean vs the baseline config
    double watts = 0.0;         ///< suite-average power
    double leakageBits = 0.0;   ///< ORAM-timing bits at paper constants

    /** True iff this point is at least as good as @p o on every axis
     *  and strictly better on at least one. */
    bool dominates(const OperatingPoint &o) const;
};

/**
 * Aggregate each non-baseline config of @p grid into an
 * OperatingPoint. @p baseline_index names the config used as the
 * performance reference (typically base_dram at index 0).
 */
std::vector<OperatingPoint> operatingPoints(const Grid &grid,
                                            std::size_t baseline_index = 0);

/** The non-dominated subset of @p points (stable order). */
std::vector<OperatingPoint>
paretoFrontier(const std::vector<OperatingPoint> &points);

} // namespace tcoram::sim

#endif // TCORAM_SIM_PARETO_HH
