/**
 * @file
 * KvServingRun: the end-to-end KV-serving scenario. Thousands of
 * closed-loop client sessions drive a workload-plane op stream
 * (workload/workload_source.hh — any method) against a KVBackend
 * (sim/kv_backend.hh) over the sharded, rate-enforced ORAM device
 * array, through the RingScheduler's lock-free lanes. Each session
 * keeps ONE ORAM transaction in flight (the closed loop): a KV op
 * unrolls into its probe/spill steps, each step's arrival is the
 * previous step's completion, and the next op starts after the
 * client's think time.
 *
 * Two drive modes:
 *
 *  - run(): one producer, sessions advanced in id order between
 *    scheduler pumps. Fully deterministic — the observable shard
 *    streams, stats and stream CSV are bit-identical across scheduler
 *    worker counts (the PR 6 phased-round contract carries through
 *    the KV layer).
 *  - runMultiProducer(): one client thread per lane, each owning its
 *    lane's sessions and SPSC ring endpoints while the main thread
 *    pumps the scheduler — the true multi-producer ingress path. All
 *    client-side state (cursors, latency samples, mismatch counters)
 *    is lane-partitioned, so the only cross-thread traffic is the
 *    rings' acquire/release pairs (TSan-covered in CI).
 *
 * Payload integrity: puts write self-verifying values (embedded key +
 * sequence + PRF-mixed pattern), gets re-derive and compare — the
 * zero-payload-mismatch gate of bench_kv_serving needs no global
 * shadow state, so it holds under any session interleaving.
 */

#ifndef TCORAM_SIM_KV_SERVING_HH
#define TCORAM_SIM_KV_SERVING_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/dram_model.hh"
#include "oram/sharded_device.hh"
#include "sim/kv_backend.hh"
#include "sim/shard_worker.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"
#include "workload/workload_source.hh"

namespace tcoram::sim {

struct KvServingConfig
{
    std::uint32_t shards = 4;
    /** Producer lanes; sessions are assigned rank % lanes. */
    std::size_t lanes = 1;
    /** Scheduler worker threads (bit-identical across counts). */
    unsigned threads = 1;
    std::size_t ringCapacity = 1024;
    /** Enforced inter-access gap (single-candidate rate set). */
    Cycles rate = 300;
    std::uint64_t seed = 42;
    Cycles epoch0 = Cycles{1} << 18;
    Cycles drainSlackPeriods = 8;
    /** Per-shard backend: "functional" serves real payloads. */
    std::string deviceKind = "functional";
    /**
     * Functional capacity cap. MUST be 0 (uncapped) or at least
     * KvConfig::totalBlocks(): a fold would alias distinct KV blocks
     * and corrupt records (asserted at construction).
     */
    std::uint64_t functionalBlockCap = 0;
    /** Op stream; workload.ranks == session count. */
    workload::WorkloadParams workload;
    KvConfig kv{};
    /** Write self-verifying put payloads and check every get hit. */
    bool selfVerify = true;
};

class KvServingRun
{
  public:
    /** One observable stream event (adversary's view of a shard). */
    struct Event
    {
        Cycles start = 0;
        bool real = false;
    };

    explicit KvServingRun(const KvServingConfig &cfg);
    ~KvServingRun();

    /** Deterministic single-producer drive (then trailing drain). */
    void run();
    /** One client thread per lane (multi-producer ingress). */
    void runMultiProducer();

    /** Merged per-session counters, percentile fields filled. */
    KVStats stats() const;
    std::uint64_t payloadMismatches() const;
    /** Access ops completed (gets + puts + scan elements). */
    std::uint64_t opsCompleted() const;
    std::uint32_t sessionCount() const
    {
        return static_cast<std::uint32_t>(sessions_.size());
    }
    bool allTokensRetired() const;

    /** Enforced slot period: rate + calibrated access latency. Each
     *  shard calibrates independently — use shardPeriod(i) for the
     *  exact-grid checks; period() (the max over shards) sizes the
     *  drain horizon. */
    Cycles period() const;
    Cycles shardPeriod(std::uint32_t i) const;
    std::vector<Event> shardStream(std::uint32_t i) const;
    std::vector<Cycles> shardStarts(std::uint32_t i) const;
    /** Every shard's full stream (start + kind rows) — the worker-
     *  count bit-identity digest. */
    std::string streamCsv() const;

    /** Nearest-rank whole-op latency quantiles (completion - first
     *  arrival, think time excluded). */
    Cycles getLatencyPercentile(double q) const;
    Cycles putLatencyPercentile(double q) const;

    const RingScheduler &scheduler() const { return *sched_; }
    const KvServingConfig &config() const { return cfg_; }

    /** Self-verifying payload codec (exposed for tests). */
    static void buildValue(std::vector<std::uint8_t> &out,
                           std::uint64_t key, std::uint64_t seq,
                           std::uint32_t len);
    static bool checkValue(std::span<const std::uint8_t> value,
                           std::uint64_t key);
    /** Smallest self-verifying value (key + seq embedded). */
    static constexpr std::uint32_t kMinValueBytes = 17;

  private:
    struct Session
    {
        explicit Session(const KVBackend &backend) : cursor(backend) {}

        std::uint32_t sid = 0;
        std::uint32_t rank = 0;
        std::uint16_t lane = 0;
        KvOpCursor cursor;
        Cycles clock = 0;
        bool ended = false;
        bool awaiting = false;
        workload::WorkloadOpKind opKind = workload::WorkloadOpKind::End;
        std::uint64_t opKey = 0;
        Cycles opStart = 0;
        std::uint32_t scanLeft = 0;
        std::uint64_t scanKey = 0;
        std::uint64_t putSeq = 0;
        std::uint64_t mismatches = 0;
        std::uint64_t opsDone = 0;
        Cycles lastDone = 0;
        std::vector<std::uint8_t> payload;
        std::vector<Cycles> getLatencies;
        std::vector<Cycles> putLatencies;
        /** Home slot this session's in-flight op has reserved
         *  (slot-serialization below), -1 when none. */
        std::int64_t heldSlot = -1;
    };

    /** Pull ops / submit the next cursor step for one session.
     *  @return false when the lane ring is at its backpressure
     *  bound (retry after a pump). */
    bool advanceSession(Session &s);
    void handleCompletion(const SessionRing::Completion &c);
    void finishOp(Session &s);
    void drainTail();
    Cycles percentile(std::vector<Cycles> &samples, double q) const;

    // --- Slot serialization -------------------------------------------
    //
    // A KV op is several ORAM transactions (probe, home write, spill
    // strip); two sessions interleaving ops on the same home slot
    // could tear a record (new header over old spill bytes) or lose an
    // insert. Every step therefore holds a reservation on the slot it
    // touches, hand-over-hand: acquire before the step submits,
    // carry it while probing stays on the slot, release when the probe
    // moves on or the op completes. A session holds at most ONE slot
    // and acquires only after releasing (no deadlock); a contended
    // acquire just stalls the session until the holder's op drains.
    // Single-producer runs stall deterministically; multi-producer
    // runs use the same atomic flags across lane threads.
    std::int64_t slotOfBlock(std::uint64_t block_id) const;
    bool reserveSlot(Session &s, std::int64_t slot);
    void releaseSlot(Session &s);

    KvServingConfig cfg_;
    dram::DramModel mem_;
    Rng rng_;
    timing::RateSet rates_;
    timing::EpochSchedule schedule_;
    timing::RateLearner learner_;
    std::unique_ptr<oram::ShardedOramDevice> device_;
    std::unique_ptr<RingScheduler> sched_;
    KVBackend backend_;
    std::unique_ptr<workload::WorkloadSource> source_;
    std::vector<Session> sessions_;
    /** sessions of each lane, in session-id order. */
    std::vector<std::vector<std::uint32_t>> laneSessions_;
    /** One busy flag per home slot (slot serialization). */
    std::unique_ptr<std::atomic<std::uint8_t>[]> slotBusy_;
    bool ran_ = false;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_KV_SERVING_HH
