#include "sim/system_config.hh"

#include <sstream>

#include "common/log.hh"
#include "oram/oram_device.hh"
#include "workload/workload_source.hh"

namespace tcoram::sim {

dram::BackendSpec
SystemConfig::memorySpec() const
{
    dram::BackendSpec spec;
    spec.flatLatency = baseDramLatency;
    switch (scheme) {
      case Scheme::BaseDram:
        spec.kind = "flat";
        break;
      case Scheme::ProtectedDram:
        // §10 variant: public-state (closed-page) row buffers.
        spec.kind = "banked";
        spec.dram.closedPage = true;
        break;
      default:
        spec.kind = "banked";
        break;
    }
    if (!memoryBackend.empty() && memoryBackend != spec.kind) {
        // Validate here, where the config (not a later registry make()
        // deep in construction) can be named in the error.
        if (!dram::BackendRegistry::instance().contains(memoryBackend)) {
            tcoram_fatal(
                "config '", name, "': unknown memory backend \"",
                memoryBackend, "\" (registered: ",
                joinNames(dram::BackendRegistry::instance().kinds()), ")");
        }
        if (memoryBackend == "trace")
            spec.traceInner = spec.kind;
        spec.kind = memoryBackend;
    }
    // Timing-fault kinds (delay/refuse) live in the memory layer: wrap
    // whatever backend was resolved above in the FaultyMemory
    // decorator. Data kinds are the functional datapath's job and do
    // not touch the memory spec.
    const dram::FaultSpec fault = faultSpecParsed();
    if (fault.enabled() && fault.has(dram::kFaultTimingMask) &&
        spec.kind != "faulty") {
        spec.faultInner = spec.kind;
        spec.kind = "faulty";
        spec.fault = fault;
        // Keep only the kinds this layer injects; the datapath arms
        // flip/stuck from the same parsed spec independently.
        spec.fault.kinds &= dram::kFaultTimingMask;
    }
    return spec;
}

dram::FaultSpec
SystemConfig::faultSpecParsed() const
{
    if (faultSpec.empty())
        return {};
    return dram::FaultSpec::parse(faultSpec);
}

std::string
SystemConfig::oramDeviceKind() const
{
    if (oramDevice.empty())
        return "timing";
    if (!oram::oramDeviceKindKnown(oramDevice)) {
        tcoram_fatal("config '", name, "': unknown ORAM device \"",
                     oramDevice, "\" (registered: ",
                     joinNames(oram::oramDeviceKinds()), ")");
    }
    return oramDevice;
}

oram::Datapath
SystemConfig::functionalDatapathKind() const
{
    if (functionalDatapath.empty() || functionalDatapath == "fused")
        return oram::Datapath::Fused;
    if (functionalDatapath == "unfused")
        return oram::Datapath::FusedImmediate;
    if (functionalDatapath == "legacy")
        return oram::Datapath::Legacy;
    tcoram_fatal("config '", name, "': unknown functional datapath \"",
                 functionalDatapath,
                 "\" (known: fused, unfused, legacy)");
}

std::string
SystemConfig::dramModeKind() const
{
    if (dramMode.empty())
        return "sync";
    if (dramMode != "sync" && dramMode != "async") {
        tcoram_fatal("config '", name, "': unknown dramMode \"", dramMode,
                     "\" (known: async, sync)");
    }
    return dramMode;
}

oram::PathMode
SystemConfig::pathMode() const
{
    return dramModeKind() == "async" ? oram::PathMode::Pipelined
                                     : oram::PathMode::Sync;
}

std::uint32_t
SystemConfig::shardCount() const
{
    if (oramShards == 0 || oramShards > kMaxOramShards) {
        tcoram_fatal("config '", name, "': oramShards must be in [1, ",
                     kMaxOramShards, "], got ", oramShards);
    }
    return oramShards;
}

oram::EvictionPolicy
SystemConfig::evictionPolicyKind() const
{
    oram::EvictionPolicy p;
    if (evictionPolicy.empty() || evictionPolicy == "off") {
        p = oram::EvictionPolicy::Off;
    } else if (evictionPolicy == "gap") {
        p = oram::EvictionPolicy::Gap;
    } else if (evictionPolicy == "highwater") {
        p = oram::EvictionPolicy::HighWater;
    } else {
        tcoram_fatal("config '", name, "': unknown evictionPolicy \"",
                     evictionPolicy, "\" (known: ",
                     oram::evictionPolicyNames(), ")");
    }
    if (p != oram::EvictionPolicy::Off &&
        pathMode() != oram::PathMode::Pipelined) {
        tcoram_fatal("config '", name, "': evictionPolicy \"",
                     evictionPolicy, "\" requires dramMode = \"async\" "
                     "(the sync controller has no write-back tail to "
                     "defer)");
    }
    return p;
}

std::uint32_t
SystemConfig::evictionBudgetValue() const
{
    if (evictionBudget > kMaxEvictionBudget) {
        tcoram_fatal("config '", name, "': evictionBudget must be in [0, ",
                     kMaxEvictionBudget, "], got ", evictionBudget);
    }
    if (evictionBudget == 0 &&
        evictionPolicyKind() != oram::EvictionPolicy::Off) {
        tcoram_fatal("config '", name, "': evictionBudget must be nonzero "
                     "when evictionPolicy is \"", evictionPolicy, "\"");
    }
    return evictionBudget;
}

workload::WorkloadParams
SystemConfig::workloadSpec() const
{
    if (workload.empty()) {
        tcoram_fatal("config '", name, "': workload spec is empty "
                     "(expected \"method:k=v,...\", methods: ",
                     joinNames(workload::WorkloadRegistry::instance()
                                   .methods()),
                     ")");
    }
    // parseWorkloadSpec validates keys and the method name itself and
    // is fatal with the offending spec; prefix the config key so the
    // failure names where the string came from.
    workload::WorkloadParams params =
        workload::parseWorkloadSpec(workload);
    if (!workload::WorkloadRegistry::instance().contains(params.method)) {
        tcoram_fatal("config '", name, "': unknown workload method \"",
                     params.method, "\" (registered: ",
                     joinNames(workload::WorkloadRegistry::instance()
                                   .methods()),
                     ")");
    }
    return params;
}

std::uint32_t
SystemConfig::evictionAutoBudget() const
{
    if (!evictionAutoTune)
        return evictionBudgetValue();
    if (evictionPolicyKind() != oram::EvictionPolicy::HighWater) {
        tcoram_fatal("config '", name, "': evictionAutoTune requires "
                     "evictionPolicy = \"highwater\" (got \"",
                     evictionPolicy.empty() ? "off" : evictionPolicy,
                     "\")");
    }
    const workload::WorkloadParams params = workloadSpec();
    return workload::observedBurstDepth(params, kMaxEvictionBudget);
}

timing::DispatchPolicyKind
SystemConfig::dispatchPolicyKind() const
{
    if (dispatchPolicy.empty())
        return timing::DispatchPolicyKind::RoundRobin;
    const auto kind = timing::parseDispatchPolicy(dispatchPolicy);
    if (!kind) {
        tcoram_fatal("config '", name, "': unknown dispatchPolicy \"",
                     dispatchPolicy, "\" (known: ",
                     joinNames(timing::dispatchPolicyNames()), ")");
    }
    return *kind;
}

std::uint32_t
SystemConfig::schedulerThreadCount() const
{
    if (schedulerThreads > kMaxSchedulerThreads) {
        tcoram_fatal("config '", name, "': schedulerThreads must be in [0, ",
                     kMaxSchedulerThreads, "], got ", schedulerThreads);
    }
    return schedulerThreads == 0 ? shardCount() : schedulerThreads;
}

SystemConfig
SystemConfig::baseDram()
{
    SystemConfig c;
    c.name = "base_dram";
    c.scheme = Scheme::BaseDram;
    return c;
}

SystemConfig
SystemConfig::baseOram()
{
    SystemConfig c;
    c.name = "base_oram";
    c.scheme = Scheme::BaseOram;
    return c;
}

SystemConfig
SystemConfig::staticScheme(Cycles rate)
{
    SystemConfig c;
    c.scheme = Scheme::Static;
    c.staticRate = rate;
    c.initialRate = rate;
    std::ostringstream os;
    os << "static_" << rate;
    c.name = os.str();
    return c;
}

SystemConfig
SystemConfig::dynamicScheme(std::size_t rate_count, unsigned epoch_growth)
{
    SystemConfig c;
    c.scheme = Scheme::Dynamic;
    c.rateCount = rate_count;
    c.epochGrowth = epoch_growth;
    std::ostringstream os;
    os << "dynamic_R" << rate_count << "_E" << epoch_growth;
    c.name = os.str();
    return c;
}

SystemConfig
SystemConfig::protectedDram(std::size_t rate_count, unsigned epoch_growth)
{
    SystemConfig c = dynamicScheme(rate_count, epoch_growth);
    c.scheme = Scheme::ProtectedDram;
    // DRAM accesses are ~40 cycles, not ~1500: the useful rate band
    // sits proportionally lower (idle slot cost is one line transfer).
    c.rateLo = 32;
    c.rateHi = 4096;
    c.initialRate = 512;
    std::ostringstream os;
    os << "protected_dram_R" << rate_count << "_E" << epoch_growth;
    c.name = os.str();
    return c;
}

} // namespace tcoram::sim
