#include "sim/kv_backend.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace tcoram::sim {

void
KVStats::merge(const KVStats &o)
{
    gets += o.gets;
    puts += o.puts;
    scans += o.scans;
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    updates += o.updates;
    failedPuts += o.failedPuts;
    probes += o.probes;
    spillBlocksRead += o.spillBlocksRead;
    spillBlocksWritten += o.spillBlocksWritten;
    oramReads += o.oramReads;
    oramWrites += o.oramWrites;
}

KVBackend::KVBackend(const KvConfig &cfg)
    : cfg_(cfg), prf_(crypto::keyFromSeed(cfg.prfSeed))
{
    tcoram_assert(cfg_.blockBytes > KvConfig::kHeaderBytes,
                  "kv: block size ", cfg_.blockBytes,
                  " cannot hold the record header");
    tcoram_assert(cfg_.homeSlots >= 1, "kv: empty home table");
    tcoram_assert(cfg_.probeLimit >= 1, "kv: probe limit must be >= 1");
}

std::uint32_t
KVBackend::spillBlocksFor(std::uint64_t len) const
{
    const std::uint64_t inline_cap = cfg_.inlineCapacity();
    if (len <= inline_cap)
        return 0;
    const std::uint64_t rest = len - inline_cap;
    return static_cast<std::uint32_t>((rest + cfg_.blockBytes - 1) /
                                      cfg_.blockBytes);
}

void
KVBackend::encodeRecord(std::span<std::uint8_t> block, std::uint64_t key,
                        std::span<const std::uint8_t> value) const
{
    tcoram_assert(block.size() == cfg_.blockBytes,
                  "kv: encode buffer is not one block");
    tcoram_assert(value.size() <= cfg_.maxValueBytes(),
                  "kv: value of ", value.size(), " bytes exceeds the ",
                  cfg_.maxValueBytes(), "-byte record capacity");
    std::fill(block.begin(), block.end(), std::uint8_t{0});
    block[0] = 1;
    for (int i = 0; i < 8; ++i)
        block[1 + i] = static_cast<std::uint8_t>(key >> (8 * i));
    const auto len = static_cast<std::uint32_t>(value.size());
    for (int i = 0; i < 4; ++i)
        block[9 + i] = static_cast<std::uint8_t>(len >> (8 * i));
    const std::size_t inline_n = std::min<std::size_t>(
        value.size(), cfg_.inlineCapacity());
    if (inline_n > 0)
        std::memcpy(block.data() + KvConfig::kHeaderBytes, value.data(),
                    inline_n);
}

KVBackend::RecordHeader
KVBackend::decodeHeader(std::span<const std::uint8_t> block) const
{
    tcoram_assert(block.size() == cfg_.blockBytes,
                  "kv: decode buffer is not one block");
    RecordHeader h;
    h.used = block[0] != 0;
    for (int i = 0; i < 8; ++i)
        h.key |= static_cast<std::uint64_t>(block[1 + i]) << (8 * i);
    for (int i = 0; i < 4; ++i)
        h.len |= static_cast<std::uint32_t>(block[9 + i]) << (8 * i);
    return h;
}

KvOpCursor::KvOpCursor(const KVBackend &backend)
    : be_(&backend), io_(backend.config().blockBytes)
{
}

void
KvOpCursor::beginGet(std::uint64_t key)
{
    tcoram_assert(done(), "kv cursor: previous op still in flight");
    isPut_ = false;
    key_ = key;
    slot_ = be_->homeSlot(key);
    probe_ = 0;
    spillIdx_ = 0;
    spillCount_ = 0;
    valueLen_ = 0;
    hit_ = false;
    failed_ = false;
    value_.clear();
    phase_ = Phase::ProbeRead;
    ++stats_.gets;
}

void
KvOpCursor::beginPut(std::uint64_t key, std::span<const std::uint8_t> value)
{
    tcoram_assert(done(), "kv cursor: previous op still in flight");
    tcoram_assert(value.size() <= be_->config().maxValueBytes(),
                  "kv cursor: value of ", value.size(),
                  " bytes exceeds the record capacity");
    isPut_ = true;
    key_ = key;
    slot_ = be_->homeSlot(key);
    probe_ = 0;
    spillIdx_ = 0;
    spillCount_ = 0;
    valueLen_ = static_cast<std::uint32_t>(value.size());
    hit_ = false;
    failed_ = false;
    value_.assign(value.begin(), value.end());
    phase_ = Phase::ProbeRead;
    ++stats_.puts;
}

KvOpCursor::Step
KvOpCursor::nextStep()
{
    Step s;
    switch (phase_) {
    case Phase::ProbeRead:
        s.blockId = be_->homeBlockId(slot_);
        s.isWrite = false;
        s.out = io_;
        break;
    case Phase::SpillRead:
        s.blockId = be_->spillBlockId(slot_, spillIdx_);
        s.isWrite = false;
        s.out = io_;
        break;
    case Phase::HomeWrite:
        be_->encodeRecord(io_, key_, value_);
        s.blockId = be_->homeBlockId(slot_);
        s.isWrite = true;
        s.data = io_;
        break;
    case Phase::SpillWrite: {
        const std::uint64_t bytes = be_->config().blockBytes;
        const std::uint64_t off = be_->config().inlineCapacity() +
                                  static_cast<std::uint64_t>(spillIdx_) *
                                      bytes;
        const std::uint64_t n =
            std::min<std::uint64_t>(bytes, valueLen_ - off);
        std::fill(io_.begin(), io_.end(), std::uint8_t{0});
        std::memcpy(io_.data(), value_.data() + off, n);
        s.blockId = be_->spillBlockId(slot_, spillIdx_);
        s.isWrite = true;
        s.data = io_;
        break;
    }
    case Phase::Done:
        tcoram_fatal("kv cursor: nextStep() on a completed op");
    }
    return s;
}

void
KvOpCursor::finishProbe()
{
    const KVBackend::RecordHeader h = be_->decodeHeader(io_);
    if (isPut_) {
        if (!h.used || h.key == key_) {
            if (h.used)
                ++stats_.updates;
            else
                ++stats_.inserts;
            phase_ = Phase::HomeWrite;
            return;
        }
    } else {
        if (!h.used) {
            ++stats_.misses;
            phase_ = Phase::Done;
            return;
        }
        if (h.key == key_) {
            valueLen_ = h.len;
            value_.assign(valueLen_, 0);
            const std::size_t inline_n = std::min<std::size_t>(
                valueLen_, be_->config().inlineCapacity());
            std::memcpy(value_.data(), io_.data() + KvConfig::kHeaderBytes,
                        inline_n);
            spillCount_ = be_->spillBlocksFor(valueLen_);
            spillIdx_ = 0;
            if (spillCount_ == 0) {
                hit_ = true;
                ++stats_.hits;
                phase_ = Phase::Done;
            } else {
                phase_ = Phase::SpillRead;
            }
            return;
        }
    }
    // Occupied by another key: probe on.
    ++probe_;
    if (probe_ >= be_->config().probeLimit) {
        if (isPut_) {
            failed_ = true;
            ++stats_.failedPuts;
        } else {
            ++stats_.misses;
        }
        phase_ = Phase::Done;
        return;
    }
    slot_ = (slot_ + 1) % be_->config().homeSlots;
}

void
KvOpCursor::onComplete()
{
    switch (phase_) {
    case Phase::ProbeRead:
        ++stats_.probes;
        ++stats_.oramReads;
        finishProbe();
        break;
    case Phase::SpillRead: {
        ++stats_.spillBlocksRead;
        ++stats_.oramReads;
        const std::uint64_t bytes = be_->config().blockBytes;
        const std::uint64_t off = be_->config().inlineCapacity() +
                                  static_cast<std::uint64_t>(spillIdx_) *
                                      bytes;
        const std::uint64_t n =
            std::min<std::uint64_t>(bytes, valueLen_ - off);
        std::memcpy(value_.data() + off, io_.data(), n);
        ++spillIdx_;
        if (spillIdx_ == spillCount_) {
            hit_ = true;
            ++stats_.hits;
            phase_ = Phase::Done;
        }
        break;
    }
    case Phase::HomeWrite:
        ++stats_.oramWrites;
        spillCount_ = be_->spillBlocksFor(valueLen_);
        spillIdx_ = 0;
        phase_ = spillCount_ == 0 ? Phase::Done : Phase::SpillWrite;
        break;
    case Phase::SpillWrite:
        ++stats_.spillBlocksWritten;
        ++stats_.oramWrites;
        ++spillIdx_;
        if (spillIdx_ == spillCount_)
            phase_ = Phase::Done;
        break;
    case Phase::Done:
        tcoram_fatal("kv cursor: onComplete() on a completed op");
    }
}

void
kvRunSync(KvOpCursor &cursor, timing::OramDeviceIf &dev,
          std::uint32_t session_id, Cycles &now)
{
    while (!cursor.done()) {
        const KvOpCursor::Step s = cursor.nextStep();
        timing::OramTransaction txn =
            timing::OramTransaction::real(s.blockId, s.isWrite, session_id);
        txn.data = s.data;
        txn.out = s.out;
        const timing::OramCompletion c = dev.submit(now, txn);
        now = std::max(now, c.done);
        cursor.onComplete();
    }
}

} // namespace tcoram::sim
