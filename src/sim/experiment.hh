/**
 * @file
 * Experiment harness helpers: run (config x workload) grids, compute
 * overheads relative to base_dram, and print aligned tables — the
 * machinery shared by every bench binary.
 */

#ifndef TCORAM_SIM_EXPERIMENT_HH
#define TCORAM_SIM_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/column_batch.hh"
#include "sim/sim_result.hh"
#include "sim/system_config.hh"
#include "workload/profile.hh"

namespace tcoram::sim {

/**
 * Run one (config, workload) pair for @p insts measured instructions,
 * after @p warmup discarded warm-up instructions (fast-forward).
 * Seeded by cfg.seed.
 */
SimResult runOne(const SystemConfig &cfg, const workload::Profile &profile,
                 InstCount insts, InstCount warmup = 0);

/**
 * Same, but with an explicit @p seed overriding cfg.seed — the
 * reproducibility hook the parallel ExperimentEngine threads through
 * to common/rng for every grid cell.
 */
SimResult runOne(const SystemConfig &cfg, const workload::Profile &profile,
                 InstCount insts, InstCount warmup, std::uint64_t seed);

/** Results of a full grid, indexed [config][workload]. */
struct Grid
{
    std::vector<SystemConfig> configs;
    std::vector<workload::Profile> workloads;
    std::vector<std::vector<SimResult>> results;

    /**
     * Columnar stat plane (sim/column_batch.hh): grid workers record
     * each cell's result as raw typed values while running; toCsv()
     * serializes these instead of re-formatting per row. Null for
     * grids built without the engine (hand-assembled in tests) —
     * toCsv() then falls back to the per-row path, byte-identically.
     */
    std::shared_ptr<const ColumnBatch> columns;

    const SimResult &at(std::size_t c, std::size_t w) const
    {
        return results.at(c).at(w);
    }
};

/**
 * Run every config over every workload. Thin wrapper over the
 * thread-pool ExperimentEngine (sim/experiment_engine.hh) with the
 * default thread count; results are identical at any thread count.
 */
Grid runGrid(const std::vector<SystemConfig> &configs,
             const std::vector<workload::Profile> &workloads,
             InstCount insts, InstCount warmup = 0);

/**
 * Performance overhead of @p r relative to @p base, as the paper
 * reports it: cycles ratio at equal instruction count.
 */
double perfOverheadX(const SimResult &r, const SimResult &base);

/** Simple fixed-width table printer for bench output. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);
    void addRow(std::vector<std::string> cells);
    void print() const;

    /** Format helpers. */
    static std::string fmt(double v, int precision = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric-mean helper for "Avg" columns. */
double geoMean(const std::vector<double> &values);

} // namespace tcoram::sim

#endif // TCORAM_SIM_EXPERIMENT_HH
