#include "sim/workload_driver.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "oram/oram_config.hh"

namespace tcoram::sim {

namespace {

protocol::LeakageParams
runParams(const WorkloadReplayConfig &cfg)
{
    protocol::LeakageParams p;
    p.rateCount = 1;
    p.epoch0 = cfg.epoch0;
    return p;
}

} // namespace

WorkloadReplayRun::WorkloadReplayRun(const WorkloadReplayConfig &cfg)
    : cfg_(cfg), mem_(dram::DramConfig{}), rng_(cfg.seed),
      rates_(std::vector<Cycles>{cfg.rate}),
      schedule_(cfg.epoch0, 2, Cycles{1} << 40), learner_(rates_)
{
    tcoram_assert(cfg_.shards >= 1, "workload replay needs a shard");
    tcoram_assert(cfg_.lanes >= 1, "workload replay needs a lane");
    const oram::OramConfig ocfg = oram::OramConfig::benchConfig();
    numBlocks_ = ocfg.numBlocks;
    oram::OramDeviceSpec spec;
    spec.kind = cfg_.deviceKind;
    spec.keySeed = mixSeed(cfg_.seed, 0x0de71ce5ull);
    device_ = std::make_unique<oram::ShardedOramDevice>(
        spec, ocfg, cfg_.shards, mixSeed(cfg_.seed, 0x0072a7e5ull), mem_,
        rng_, /*record=*/true);
    RingScheduler::Options opts;
    opts.lanes = cfg_.lanes;
    opts.ringCapacity = cfg_.ringCapacity;
    opts.threads = cfg_.threads;
    opts.recordLatencies = false;
    sched_ = std::make_unique<RingScheduler>(*device_, rates_, schedule_,
                                             learner_, cfg_.rate,
                                             runParams(cfg_), opts);
    source_ = workload::loadWorkload(cfg_.workload);
    const std::uint32_t ranks = source_->ranks();
    tcoram_assert(ranks >= 1, "workload replay: workload has no ranks");
    sessions_.reserve(ranks);
    for (std::uint32_t rank = 0; rank < ranks; ++rank) {
        const auto lane = static_cast<std::uint16_t>(rank % cfg_.lanes);
        Session s;
        s.sid = sched_->openSession(
            mixSeed(cfg_.seed, 0x5e55'0000ull + rank), -1.0, lane);
        s.rank = rank;
        sessions_.push_back(s);
    }
}

WorkloadReplayRun::~WorkloadReplayRun() = default;

bool
WorkloadReplayRun::submitAccess(Session &s, std::uint64_t key,
                                bool is_write)
{
    const timing::OramTransaction txn = timing::OramTransaction::real(
        key % numBlocks_, is_write, s.sid);
    if (!sched_->trySubmit(s.sid, s.clock, txn).has_value())
        return false;
    s.awaiting = true;
    return true;
}

bool
WorkloadReplayRun::advanceSession(Session &s)
{
    using workload::WorkloadOp;
    using workload::WorkloadOpKind;
    for (;;) {
        if (s.scanLeft > 0) {
            const std::uint64_t key = s.scanKey++;
            --s.scanLeft;
            return submitAccess(s, key, false);
        }
        const WorkloadOp op = source_->getNext(s.rank);
        switch (op.kind) {
        case WorkloadOpKind::Think:
            s.clock += op.thinkCycles;
            continue;
        case WorkloadOpKind::End:
            s.ended = true;
            return true;
        case WorkloadOpKind::Get:
            return submitAccess(s, op.key, false);
        case WorkloadOpKind::Put:
            return submitAccess(s, op.key, true);
        case WorkloadOpKind::Scan:
            s.scanKey = op.key;
            s.scanLeft = op.scanLen;
            continue;
        }
    }
}

void
WorkloadReplayRun::run()
{
    tcoram_assert(!ran_, "workload replay already driven");
    ran_ = true;
    for (;;) {
        for (Session &s : sessions_)
            if (!s.ended && !s.awaiting)
                advanceSession(s);
        sched_->runUntilIdle();
        SessionRing::Completion c;
        for (std::size_t l = 0; l < cfg_.lanes; ++l)
            while (sched_->lane(l).popCompletion(c)) {
                Session &s = sessions_[c.sessionId];
                tcoram_assert(s.awaiting, "stray completion");
                s.awaiting = false;
                s.clock = std::max(s.clock, c.completion.done);
                s.lastDone = std::max(s.lastDone, c.completion.done);
                ++s.opsDone;
            }
        bool done = true;
        for (const Session &s : sessions_)
            if (!s.ended || s.awaiting) {
                done = false;
                break;
            }
        if (done)
            break;
    }
    Cycles last = 0;
    for (const Session &s : sessions_)
        last = std::max(last, s.lastDone);
    sched_->drainUntil(last + cfg_.drainSlackPeriods * period());
}

std::uint64_t
WorkloadReplayRun::opsCompleted() const
{
    std::uint64_t n = 0;
    for (const Session &s : sessions_)
        n += s.opsDone;
    return n;
}

bool
WorkloadReplayRun::allTokensRetired() const
{
    for (std::size_t l = 0; l < cfg_.lanes; ++l) {
        const SessionRing &ring = sched_->lane(l);
        if (ring.drained() != ring.submitted() ||
            ring.retiredFence() != ring.submitted())
            return false;
    }
    return true;
}

Cycles
WorkloadReplayRun::period() const
{
    return cfg_.rate + device_->accessLatency();
}

std::vector<Cycles>
WorkloadReplayRun::shardStarts(std::uint32_t i) const
{
    const timing::RecordingOramDevice *rec = device_->recorder(i);
    tcoram_assert(rec != nullptr, "workload replay always records");
    std::vector<Cycles> out;
    out.reserve(rec->records().size());
    for (const auto &r : rec->records())
        out.push_back(r.completion.start);
    return out;
}

std::string
WorkloadReplayRun::streamCsv() const
{
    std::ostringstream os;
    os << "shard,start,kind\n";
    for (std::uint32_t i = 0; i < device_->shardCount(); ++i) {
        const timing::RecordingOramDevice *rec = device_->recorder(i);
        tcoram_assert(rec != nullptr, "workload replay always records");
        for (const auto &r : rec->records())
            os << i << ',' << r.completion.start << ','
               << (r.kind == timing::OramTransaction::Kind::Real ? 'r'
                                                                 : 'd')
               << '\n';
    }
    return os.str();
}

} // namespace tcoram::sim
