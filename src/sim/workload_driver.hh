/**
 * @file
 * WorkloadReplayRun: drive ANY workload-plane method (synthetic
 * profile, recorded op trace, KV client, Daly checkpoint stream)
 * through the ring scheduler as raw ORAM traffic — the method-
 * agnostic half of the workload plane's acceptance contract: the same
 * scheduler run replays every WorkloadSource through one API, and a
 * recorded trace of a synthetic run replays bit-identically to the
 * original (tests/test_workload_plane.cc).
 *
 * Op mapping (one closed loop per rank, one transaction in flight):
 *
 *   Get k       -> real read  of block k mod numBlocks
 *   Put k       -> real write of block k mod numBlocks
 *   Scan k, n   -> n sequential real reads starting at k
 *   Think t     -> the rank's clock advances t cycles
 *   End         -> the rank retires
 *
 * Unlike KvServingRun this layer moves no payloads — it exists to
 * replay op streams against the timing plane, so the default backend
 * is the calibrated timing device.
 */

#ifndef TCORAM_SIM_WORKLOAD_DRIVER_HH
#define TCORAM_SIM_WORKLOAD_DRIVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "dram/dram_model.hh"
#include "oram/sharded_device.hh"
#include "sim/shard_worker.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"
#include "workload/workload_source.hh"

namespace tcoram::sim {

struct WorkloadReplayConfig
{
    std::uint32_t shards = 4;
    std::size_t lanes = 1;
    unsigned threads = 1;
    std::size_t ringCapacity = 1024;
    Cycles rate = 300;
    std::uint64_t seed = 42;
    Cycles epoch0 = Cycles{1} << 18;
    Cycles drainSlackPeriods = 8;
    /** Per-shard backend kind ("timing" replays op streams against
     *  the calibrated model without moving payload bytes). */
    std::string deviceKind = "timing";
    /** Op stream; workload.ranks == session count. */
    workload::WorkloadParams workload;
};

class WorkloadReplayRun
{
  public:
    explicit WorkloadReplayRun(const WorkloadReplayConfig &cfg);
    ~WorkloadReplayRun();

    /** Deterministic single-producer drive (then trailing drain). */
    void run();

    /** Access transactions completed (gets + puts + scan elements). */
    std::uint64_t opsCompleted() const;
    std::uint32_t sessionCount() const
    {
        return static_cast<std::uint32_t>(sessions_.size());
    }
    bool allTokensRetired() const;

    Cycles period() const;
    std::vector<Cycles> shardStarts(std::uint32_t i) const;
    /** Every shard's observable stream (start + kind rows) — the
     *  replay bit-identity digest. */
    std::string streamCsv() const;

    const RingScheduler &scheduler() const { return *sched_; }
    const WorkloadReplayConfig &config() const { return cfg_; }

  private:
    struct Session
    {
        std::uint32_t sid = 0;
        std::uint32_t rank = 0;
        Cycles clock = 0;
        bool ended = false;
        bool awaiting = false;
        std::uint32_t scanLeft = 0;
        std::uint64_t scanKey = 0;
        std::uint64_t opsDone = 0;
        Cycles lastDone = 0;
    };

    bool advanceSession(Session &s);
    bool submitAccess(Session &s, std::uint64_t key, bool is_write);

    WorkloadReplayConfig cfg_;
    dram::DramModel mem_;
    Rng rng_;
    timing::RateSet rates_;
    timing::EpochSchedule schedule_;
    timing::RateLearner learner_;
    std::uint64_t numBlocks_ = 0;
    std::unique_ptr<oram::ShardedOramDevice> device_;
    std::unique_ptr<RingScheduler> sched_;
    std::unique_ptr<workload::WorkloadSource> source_;
    std::vector<Session> sessions_;
    bool ran_ = false;
};

} // namespace tcoram::sim

#endif // TCORAM_SIM_WORKLOAD_DRIVER_HH
