#include "sim/report.hh"

#include <cstdio>
#include <locale>
#include <sstream>

#include "common/log.hh"

namespace tcoram::sim {

namespace {

/**
 * CSV must be byte-stable across host environments: a grouping or
 * comma-decimal global locale would corrupt the numeric columns.
 */
std::ostringstream
classicStream()
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    return os;
}

} // namespace

std::string
csvHeader()
{
    return "config,workload,instructions,cycles,ipc,watts,on_chip_watts,"
           "llc_misses,oram_real,oram_dummy,dummy_fraction,oram_latency,"
           "oram_bytes_per_access,epochs_used,sim_leakage_bits,"
           "paper_leakage_bits";
}

std::string
csvRow(const SimResult &r)
{
    std::ostringstream os = classicStream();
    os << r.configName << ',' << r.workloadName << ',' << r.instructions
       << ',' << r.cycles << ',' << r.ipc << ',' << r.watts << ','
       << r.onChipWatts << ',' << r.llcMisses << ',' << r.oramReal << ','
       << r.oramDummy << ',' << r.dummyFraction() << ',' << r.oramLatency
       << ',' << r.oramBytesPerAccess << ',' << r.epochsUsed << ','
       << r.simLeakageBits << ',' << r.paperLeakageBits;
    return os.str();
}

ColumnSchema
resultSchema()
{
    using enum ColumnType;
    return {{{"config", Str},
             {"workload", Str},
             {"instructions", U64},
             {"cycles", U64},
             {"ipc", F64},
             {"watts", F64},
             {"on_chip_watts", F64},
             {"llc_misses", U64},
             {"oram_real", U64},
             {"oram_dummy", U64},
             {"dummy_fraction", F64},
             {"oram_latency", U64},
             {"oram_bytes_per_access", U64},
             {"epochs_used", U64},
             {"sim_leakage_bits", F64},
             {"paper_leakage_bits", F64}}};
}

void
appendResult(ColumnChunk &chunk, std::uint64_t order_key, const SimResult &r)
{
    chunk.beginRow(order_key);
    chunk.str(r.configName);
    chunk.str(r.workloadName);
    chunk.u64(r.instructions);
    chunk.u64(r.cycles);
    chunk.f64(r.ipc);
    chunk.f64(r.watts);
    chunk.f64(r.onChipWatts);
    chunk.u64(r.llcMisses);
    chunk.u64(r.oramReal);
    chunk.u64(r.oramDummy);
    chunk.f64(r.dummyFraction());
    chunk.u64(r.oramLatency);
    chunk.u64(r.oramBytesPerAccess);
    chunk.u64(r.epochsUsed);
    chunk.f64(r.simLeakageBits);
    chunk.f64(r.paperLeakageBits);
    chunk.endRow();
}

std::string
toCsv(const Grid &grid)
{
    // The engine-built columnar plane serializes the same bytes the
    // per-row path would (sorted by cell order key); hand-assembled
    // grids take the per-row path.
    if (grid.columns != nullptr)
        return grid.columns->csv();
    std::ostringstream os = classicStream();
    os << csvHeader() << '\n';
    for (const auto &per_config : grid.results)
        for (const auto &r : per_config)
            os << csvRow(r) << '\n';
    return os.str();
}

void
writeCsv(const Grid &grid, const std::string &path)
{
    const std::string text = toCsv(grid);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        tcoram_fatal("cannot open CSV output: ", path);
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (written != text.size())
        tcoram_fatal("short write to CSV output: ", path);
}

} // namespace tcoram::sim
