#include "protocol/session.hh"

#include <cstring>

#include "common/log.hh"
#include "timing/leakage.hh"

namespace tcoram::protocol {

double
LeakageParams::oramTimingBits() const
{
    const timing::EpochSchedule sched(epoch0, epochGrowth, tmax);
    return timing::LeakageAccountant::composedOramTimingBits(
        rateCount, sched.epochsToTmax(), shards);
}

std::vector<std::uint8_t>
LeakageParams::serialize() const
{
    std::vector<std::uint8_t> out;
    auto put64 = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put64(rateCount);
    put64(epochGrowth);
    put64(epoch0);
    put64(tmax);
    put64(shards);
    return out;
}

UserSession::UserSession(std::uint64_t seed)
    : key_(crypto::keyFromSeed(seed)),
      nonceGen_(crypto::keyFromSeed(seed ^ 0x0cebeef1ULL))
{
}

crypto::Ciphertext
UserSession::encryptData(const std::vector<std::uint8_t> &data)
{
    const crypto::CtrCipher cipher(key_);
    return cipher.encrypt(data, nonceGen_.next64());
}

crypto::Digest256
UserSession::bindLeakageLimit(const std::string &program_hash,
                              double limit_bits) const
{
    std::vector<std::uint8_t> msg(program_hash.begin(), program_hash.end());
    std::uint64_t bits_fixed =
        static_cast<std::uint64_t>(limit_bits * 1024.0);
    for (int i = 0; i < 8; ++i)
        msg.push_back(static_cast<std::uint8_t>(bits_fixed >> (8 * i)));
    const std::vector<std::uint8_t> key_bytes(key_.begin(), key_.end());
    return crypto::hmacSha256(key_bytes, msg);
}

ProcessorSession::ProcessorSession(const UserSession &user)
    : key_(user.key())
{
}

bool
ProcessorSession::admit(const LeakageParams &params,
                        double limit_bits) const
{
    tcoram_assert(active_, "admission on a terminated session");
    return params.oramTimingBits() <= limit_bits + 1e-9;
}

bool
ProcessorSession::verifyBinding(const std::string &program_hash,
                                double limit_bits,
                                const crypto::Digest256 &mac,
                                const UserSession &user) const
{
    const crypto::Digest256 expect =
        user.bindLeakageLimit(program_hash, limit_bits);
    return crypto::digestEqual(expect, mac);
}

std::optional<std::vector<std::uint8_t>>
ProcessorSession::decryptData(const crypto::Ciphertext &ct) const
{
    if (!active_)
        return std::nullopt;
    const crypto::CtrCipher cipher(key_);
    return cipher.decrypt(ct);
}

void
ProcessorSession::terminate()
{
    // Zeroize the dedicated key register.
    std::memset(key_.data(), 0, key_.size());
    active_ = false;
}

} // namespace tcoram::protocol
