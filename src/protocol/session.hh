/**
 * @file
 * User-server protocol (paper §5, §8, §10). Models the key
 * negotiation, the run-once session-key lifecycle that defeats replay
 * attacks, the per-session leakage limit L bound to the user's data
 * via HMAC, and the processor-side admission check that compares the
 * server-supplied leakage parameters (R, E) against L before running.
 */

#ifndef TCORAM_PROTOCOL_SESSION_HH
#define TCORAM_PROTOCOL_SESSION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/ctr.hh"
#include "crypto/hmac.hh"
#include "crypto/prf.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_set.hh"

namespace tcoram::protocol {

/** Leakage parameters the server proposes for a run (§5 step 2). */
struct LeakageParams
{
    std::size_t rateCount = 4;
    unsigned epochGrowth = 4;
    Cycles epoch0 = timing::EpochSchedule::kPaperEpoch0;
    Cycles tmax = timing::EpochSchedule::kPaperTmax;
    /**
     * Parallel rate-enforced streams the device array exposes (the M
     * of oram/sharded_device.hh). Each stream independently leaks at
     * most |E| * lg|R| bits and the channels compose additively (§10),
     * so admission must clear M times the single-stream bound.
     */
    std::size_t shards = 1;

    /** Composed ORAM-timing bits this configuration can leak:
     *  shards * |E| * lg|R| (§6.1 + additive composition). */
    double oramTimingBits() const;
    /** Serialized form for HMAC binding. */
    std::vector<std::uint8_t> serialize() const;
};

/**
 * The user's side: generates K', encrypts the data, binds the leakage
 * limit L (and optionally a program hash) with an HMAC.
 */
class UserSession
{
  public:
    explicit UserSession(std::uint64_t seed);

    /** Encrypt data under the negotiated session key. */
    crypto::Ciphertext encryptData(const std::vector<std::uint8_t> &data);

    /** HMAC binding (hash(P) || L) to the data key (§10). */
    crypto::Digest256 bindLeakageLimit(const std::string &program_hash,
                                       double limit_bits) const;

    const crypto::Key128 &key() const { return key_; }

  private:
    crypto::Key128 key_;
    crypto::Prf nonceGen_;
};

/**
 * The processor's side: holds the session key in a dedicated register,
 * validates HMAC-bound leakage limits, admits or rejects proposed
 * leakage parameters, decrypts inputs, and *forgets the key* when the
 * session ends — after which decryption attempts fail and replays die.
 */
class ProcessorSession
{
  public:
    /** Establish a session with @p user (models §8's key exchange). */
    explicit ProcessorSession(const UserSession &user);

    /**
     * Admission check: can the proposed parameters run under the
     * user's limit? (ORAM timing bits <= L; termination-channel bits
     * are accounted separately by the caller.)
     */
    bool admit(const LeakageParams &params, double limit_bits) const;

    /** Verify a user-provided binding before honouring its L. */
    bool verifyBinding(const std::string &program_hash, double limit_bits,
                       const crypto::Digest256 &mac,
                       const UserSession &user) const;

    /**
     * Decrypt user input. Fails (returns nullopt) once the session is
     * terminated — this is exactly why replays stop working.
     */
    std::optional<std::vector<std::uint8_t>>
    decryptData(const crypto::Ciphertext &ct) const;

    /** End the session: zeroize the key register (§8). */
    void terminate();

    bool active() const { return active_; }

  private:
    crypto::Key128 key_;
    bool active_ = true;
};

} // namespace tcoram::protocol

#endif // TCORAM_PROTOCOL_SESSION_HH
