/**
 * @file
 * Cache geometry and latency parameters (paper Table 1 defaults).
 */

#ifndef TCORAM_CACHE_CACHE_CONFIG_HH
#define TCORAM_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace tcoram::cache {

/** Replacement policy for set-associative caches. */
enum class Replacement
{
    Lru,    ///< true LRU (Table 1 default)
    Fifo,   ///< evict oldest insertion
    Random, ///< seeded pseudo-random victim
};

struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 4;
    unsigned lineBytes = 64;
    /** Latency added on a hit. */
    Cycles hitLatency = 1;
    /** Latency added on a miss before the fill request goes out. */
    Cycles missLatency = 0;
    Replacement replacement = Replacement::Lru;
    /** Victim-selection seed (Random policy). */
    std::uint64_t seed = 0x5eed;

    std::uint64_t numSets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * lineBytes);
    }
};

/** Table 1 presets. */
CacheConfig l1IConfig();
CacheConfig l1DConfig();
CacheConfig l2Config(std::uint64_t size_bytes = 1024 * 1024);

} // namespace tcoram::cache

#endif // TCORAM_CACHE_CACHE_CONFIG_HH
