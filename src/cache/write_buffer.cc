#include "cache/write_buffer.hh"

#include "common/log.hh"

namespace tcoram::cache {

void
WriteBuffer::push(Addr addr)
{
    tcoram_assert(canAccept(), "write buffer overflow");
    queue_.push_back(addr);
    ++pushed_;
}

Addr
WriteBuffer::front() const
{
    tcoram_assert(!queue_.empty(), "front() on empty write buffer");
    return queue_.front();
}

void
WriteBuffer::pop()
{
    tcoram_assert(!queue_.empty(), "pop() on empty write buffer");
    queue_.pop_front();
}

} // namespace tcoram::cache
