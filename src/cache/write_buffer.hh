/**
 * @file
 * Non-blocking write buffer (8 entries in Table 1). Absorbs LLC
 * writebacks/stores so the core keeps retiring while misses are
 * outstanding; when full, the core stalls. This is the mechanism that
 * generates multiple concurrent outstanding LLC misses — the "Req 3"
 * case in the paper's Figure 4 Waste accounting.
 */

#ifndef TCORAM_CACHE_WRITE_BUFFER_HH
#define TCORAM_CACHE_WRITE_BUFFER_HH

#include <cstdint>
#include <deque>

#include "common/types.hh"

namespace tcoram::cache {

class WriteBuffer
{
  public:
    explicit WriteBuffer(std::size_t capacity = 8) : capacity_(capacity) {}

    /** True if another entry can be accepted. */
    bool canAccept() const { return queue_.size() < capacity_; }

    /** Enqueue a pending line-write to @p addr (must canAccept()). */
    void push(Addr addr);

    /** Oldest pending write, if any. */
    bool empty() const { return queue_.empty(); }
    std::size_t size() const { return queue_.size(); }
    Addr front() const;
    void pop();

    std::size_t capacity() const { return capacity_; }
    std::uint64_t totalPushed() const { return pushed_; }
    /** Number of push attempts rejected because the buffer was full. */
    std::uint64_t fullStalls() const { return fullStalls_; }
    void noteFullStall() { ++fullStalls_; }

  private:
    std::size_t capacity_;
    std::deque<Addr> queue_;
    std::uint64_t pushed_ = 0;
    std::uint64_t fullStalls_ = 0;
};

} // namespace tcoram::cache

#endif // TCORAM_CACHE_WRITE_BUFFER_HH
