#include "cache/hierarchy.hh"

#include "common/log.hh"

namespace tcoram::cache {

Hierarchy::Hierarchy(std::uint64_t llc_bytes)
    : l1i_(l1IConfig()), l1d_(l1DConfig()), l2_(l2Config(llc_bytes)), wb_(8)
{
}

HierarchyResult
Hierarchy::access(Addr addr, AccessKind kind)
{
    HierarchyResult res;
    Cache &l1 = (kind == AccessKind::InstFetch) ? l1i_ : l1d_;
    const bool is_store = kind == AccessKind::Store;

    const AccessResult r1 = l1.access(addr, is_store);
    res.latency += l1.config().hitLatency;
    if (kind == AccessKind::InstFetch) {
        r1.hit ? ++events_.l1iHits : ++events_.l1iRefills;
    } else {
        r1.hit ? ++events_.l1dHits : ++events_.l1dRefills;
    }
    if (r1.hit)
        return res;

    res.latency += l1.config().missLatency;

    // The L1 dirty victim drains into the inclusive L2. It is a full-line
    // write, so even if inclusion was broken and the line is absent we
    // write-allocate without fetching from memory.
    if (r1.writeback) {
        const AccessResult rwb = l2_.access(r1.victimAddr, true);
        ++events_.l2Hits;
        if (rwb.writeback)
            res.memWritebacks.push_back(rwb.victimAddr);
        if (!rwb.hit) {
            l1i_.invalidate(rwb.victimAddr);
            l1d_.invalidate(rwb.victimAddr);
        }
    }

    const AccessResult r2 = l2_.access(addr, false);
    res.latency += l2_.config().hitLatency;
    if (r2.hit) {
        ++events_.l2Hits;
        return res;
    }

    // LLC miss: the line must be fetched from main memory.
    ++events_.l2Refills;
    res.latency += l2_.config().missLatency;
    ++llcMisses_;
    res.llcMiss = true;
    res.missAddr = addr;
    if (r2.writeback)
        res.memWritebacks.push_back(r2.victimAddr);
    // Enforce inclusion: the evicted L2 victim must leave the L1s. A
    // clean victim is not reported by access(), so conservatively probe
    // both L1s via the victim address only when known.
    if (r2.writeback) {
        l1i_.invalidate(r2.victimAddr);
        l1d_.invalidate(r2.victimAddr);
    }
    return res;
}

} // namespace tcoram::cache
