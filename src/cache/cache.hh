/**
 * @file
 * Set-associative write-back cache with true-LRU replacement. Purely
 * a tag store: data values live in the ORAM/DRAM functional backing
 * store, so the cache only tracks presence and dirtiness, which is all
 * the timing model needs.
 */

#ifndef TCORAM_CACHE_CACHE_HH
#define TCORAM_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace tcoram::cache {

/** Result of a cache lookup-and-fill operation. */
struct AccessResult
{
    bool hit = false;
    /** A dirty line was evicted and must be written back. */
    bool writeback = false;
    /** Line address of the evicted victim (valid iff writeback). */
    Addr victimAddr = 0;
};

class Cache
{
  public:
    explicit Cache(const CacheConfig &cfg);

    /**
     * Look up @p addr; on miss, allocate it, evicting the LRU way.
     *
     * @param addr byte address
     * @param is_write marks the (new or existing) line dirty
     * @return hit/miss and any dirty victim that needs writeback
     */
    AccessResult access(Addr addr, bool is_write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /**
     * Invalidate a line if present (used for inclusion victims).
     * @return true if the line was present and dirty.
     */
    bool invalidate(Addr addr);

    const CacheConfig &config() const { return cfg_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double missRate() const;

  private:
    struct Line
    {
        Addr tag = kInvalidId;
        bool valid = false;
        bool dirty = false;
        /** LRU: touch stamp; FIFO: insertion stamp. */
        std::uint64_t stamp = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr tag, std::uint64_t set) const;
    /** Victim way for the set starting at @p base (policy-driven). */
    Line *selectVictim(Line *base);

    CacheConfig cfg_;
    std::uint64_t numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_; // numSets * ways, set-major
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    Rng victimRng_;
};

} // namespace tcoram::cache

#endif // TCORAM_CACHE_CACHE_HH
