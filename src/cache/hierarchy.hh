/**
 * @file
 * Two-level inclusive cache hierarchy (Table 1): 32 KB L1I + 32 KB
 * L1D over a unified, inclusive L2 (the LLC, 1 MB default). Produces
 * on-chip latency plus LLC-miss/writeback events that the processor
 * model forwards to main memory or the ORAM controller, and the event
 * counts the power model charges energy for.
 */

#ifndef TCORAM_CACHE_HIERARCHY_HH
#define TCORAM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "cache/write_buffer.hh"
#include "common/types.hh"

namespace tcoram::cache {

/** Kind of access entering the hierarchy. */
enum class AccessKind
{
    InstFetch,
    Load,
    Store,
};

/** Outcome of one access walked through L1 and L2. */
struct HierarchyResult
{
    /** On-chip latency, excluding any main-memory fill. */
    Cycles latency = 0;
    /** The LLC missed: a line must be fetched from main memory. */
    bool llcMiss = false;
    /** Missing line address (valid iff llcMiss). */
    Addr missAddr = 0;
    /** Dirty LLC victims that must be written back to main memory. */
    std::vector<Addr> memWritebacks;
};

/** Per-component access counters consumed by the power model. */
struct HierarchyEvents
{
    std::uint64_t l1iHits = 0;
    std::uint64_t l1iRefills = 0;
    std::uint64_t l1dHits = 0;
    std::uint64_t l1dRefills = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Refills = 0;
};

class Hierarchy
{
  public:
    /**
     * @param llc_bytes LLC capacity (paper sweeps 512 KB - 4 MB,
     *        reports 1 MB)
     */
    explicit Hierarchy(std::uint64_t llc_bytes = 1024 * 1024);

    /** Walk one access through the hierarchy. */
    HierarchyResult access(Addr addr, AccessKind kind);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    WriteBuffer &writeBuffer() { return wb_; }
    const HierarchyEvents &events() const { return events_; }

    /** LLC misses observed so far (equals ORAM request count). */
    std::uint64_t llcMisses() const { return llcMisses_; }

  private:
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    WriteBuffer wb_;
    HierarchyEvents events_;
    std::uint64_t llcMisses_ = 0;
};

} // namespace tcoram::cache

#endif // TCORAM_CACHE_HIERARCHY_HH
