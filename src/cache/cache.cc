#include "cache/cache.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::cache {

CacheConfig
l1IConfig()
{
    CacheConfig c;
    c.name = "L1I";
    c.sizeBytes = 32 * 1024;
    c.ways = 4;
    c.hitLatency = 1;
    c.missLatency = 0;
    return c;
}

CacheConfig
l1DConfig()
{
    CacheConfig c;
    c.name = "L1D";
    c.sizeBytes = 32 * 1024;
    c.ways = 4;
    c.hitLatency = 2;
    c.missLatency = 1;
    return c;
}

CacheConfig
l2Config(std::uint64_t size_bytes)
{
    CacheConfig c;
    c.name = "L2";
    c.sizeBytes = size_bytes;
    c.ways = 16;
    c.hitLatency = 10;
    c.missLatency = 4;
    return c;
}

Cache::Cache(const CacheConfig &cfg)
    : cfg_(cfg),
      numSets_(cfg.numSets()),
      lineShift_(floorLog2(cfg.lineBytes)),
      victimRng_(cfg.seed)
{
    tcoram_assert(isPow2(cfg.lineBytes), "line size must be a power of two");
    tcoram_assert(numSets_ > 0 && isPow2(numSets_),
                  "set count must be a nonzero power of two: ", cfg.name);
    lines_.resize(numSets_ * cfg_.ways);
}

Cache::Line *
Cache::selectVictim(Line *base)
{
    // Invalid ways are always preferred.
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (!base[w].valid)
            return &base[w];

    switch (cfg_.replacement) {
      case Replacement::Random:
        return &base[victimRng_.nextBounded(cfg_.ways)];
      case Replacement::Lru:
      case Replacement::Fifo: {
        // Both evict the smallest stamp; they differ in whether hits
        // refresh it (LRU) or not (FIFO).
        Line *victim = &base[0];
        for (unsigned w = 1; w < cfg_.ways; ++w)
            if (base[w].stamp < victim->stamp)
                victim = &base[w];
        return victim;
      }
    }
    tcoram_panic("unreachable replacement policy");
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_ >> floorLog2(numSets_);
}

Addr
Cache::lineAddr(Addr tag, std::uint64_t set) const
{
    return ((tag << floorLog2(numSets_)) | set) << lineShift_;
}

AccessResult
Cache::access(Addr addr, bool is_write)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.ways];

    AccessResult res;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            ++hits_;
            if (cfg_.replacement == Replacement::Lru)
                line.stamp = ++stamp_; // FIFO keeps insertion order
            line.dirty = line.dirty || is_write;
            res.hit = true;
            return res;
        }
    }

    ++misses_;
    Line *victim = selectVictim(base);
    if (victim->valid && victim->dirty) {
        res.writeback = true;
        res.victimAddr = lineAddr(victim->tag, set);
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->stamp = ++stamp_;
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            const bool was_dirty = line.dirty;
            line.valid = false;
            line.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

double
Cache::missRate() const
{
    const std::uint64_t total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / static_cast<double>(total)
                 : 0.0;
}

} // namespace tcoram::cache
