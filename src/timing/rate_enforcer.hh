/**
 * @file
 * Leakage-enforced ORAM access scheduler (paper Figure 3). Within an
 * epoch, ORAM accesses — real or indistinguishable dummies — start
 * exactly `rate` cycles after the previous access completes. At each
 * epoch transition the rate learner picks the next rate from R using
 * the epoch's performance counters, which are then reset.
 *
 * The enforcer is event-driven: time advances when the processor
 * presents an LLC miss or when the run drains. Dummy accesses that
 * fire inside compute gaps are simulated (they cost energy and shape
 * the observable trace).
 *
 * A static (zero ORAM-timing-leakage) scheme is expressed as a
 * single-candidate RateSet: the learner can then only ever re-select
 * the same rate, giving lg 1 = 0 bits.
 */

#ifndef TCORAM_TIMING_RATE_ENFORCER_HH
#define TCORAM_TIMING_RATE_ENFORCER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "timing/epoch_schedule.hh"
#include "timing/leakage.hh"
#include "timing/learner_if.hh"
#include "timing/oram_device.hh"
#include "timing/perf_counters.hh"
#include "timing/rate_learner.hh"
#include "timing/rate_set.hh"

namespace tcoram::timing {

/** One epoch-boundary rate decision (for Figure 7 annotations). */
struct RateDecision
{
    unsigned epoch;
    Cycles startCycle;
    Cycles rate;
};

class RateEnforcer
{
  public:
    /**
     * @param device ORAM controller to drive
     * @param rates  public candidate set R
     * @param schedule epoch schedule E
     * @param learner rate learner (bound to @p rates)
     * @param initial_rate rate used during epoch 0 (paper: 10000)
     */
    RateEnforcer(OramDeviceIf &device, const RateSet &rates,
                 const EpochSchedule &schedule, const LearnerIf &learner,
                 Cycles initial_rate);

    /**
     * Attach a session leakage budget (§2.1): once the monitor's
     * budget is exhausted, epoch transitions stop consulting the
     * learner and pin the current rate — a forced decision consumes
     * no bits, so the realized leakage never exceeds L.
     */
    void attachMonitor(LeakageMonitor *monitor) { monitor_ = monitor; }

    /**
     * Serve a real transaction that arrives at cycle @p arrival. Any
     * dummy slots that fire before the request can be scheduled are
     * simulated first; the transaction starts at the first enforced
     * slot at or after its arrival, so the observable stream stays
     * periodic whatever the request carries. Returns the completion
     * record (the line is available at .done).
     */
    OramCompletion serve(Cycles arrival, const OramTransaction &txn);

    /** Payload-free convenience over serve(). */
    Cycles
    serveReal(Cycles arrival)
    {
        return serve(arrival, OramTransaction::real()).done;
    }

    /**
     * Advance the enforced schedule to cycle @p t with no pending
     * work, firing the dummy accesses the rate demands. Called when
     * the program ends (and optionally at sync points).
     */
    void drainUntil(Cycles t);

    // --- Bounded-horizon variants (multi-threaded worker pool) ---
    //
    // serve()/drainUntil() process epoch transitions inline, which is
    // fine single-threaded but racy when M enforcers share one
    // LeakageMonitor across worker threads. The bounded variants stop
    // INSTEAD of processing a transition: the caller applies pending
    // transitions at a deterministic slot barrier (shard-id order, see
    // sim/shard_worker.hh) via applyTransition() and then retries.
    // Composing bounded ops with barrier-applied transitions replays
    // the identical micro-operation sequence — dummies, waste charges,
    // transitions, serves, all in the same order with the same
    // counters — as the unbounded calls, so per-shard observable
    // streams and decisions stay bit-identical to the single-threaded
    // path (test-enforced in tests/test_scheduler_scale.cc).

    /**
     * Bounded serve(): returns nullopt when the transaction cannot be
     * served before this enforcer's next epoch boundary. The caller
     * must applyTransition() (after the barrier) and retry with the
     * SAME transaction — the enforcer tracks the per-transaction
     * Req 3 waste charge across retries.
     */
    std::optional<OramCompletion> serveBounded(Cycles arrival,
                                               const OramTransaction &txn);

    /**
     * Bounded drainUntil(): fires dummy slots due before @p t, but
     * stops instead of processing an epoch transition. @return true
     * when the schedule reached @p t; false when a transition at
     * nextBoundary() must be applied first.
     */
    bool drainBounded(Cycles t);

    /** The epoch boundary the bounded calls refuse to cross. */
    Cycles nextBoundary() const { return schedule_.epochStart(epoch_ + 1); }

    /**
     * Apply the epoch transition at nextBoundary() — the serial
     * barrier step. Only meaningful right after a bounded call
     * reported it stopped at the boundary; transitions must be applied
     * in shard-id order so the shared monitor's ledger is
     * deterministic whatever the worker count.
     */
    void applyTransition() { transitionAt(nextBoundary()); }

    Cycles currentRate() const { return rate_; }
    unsigned currentEpoch() const { return epoch_; }
    const std::vector<RateDecision> &decisions() const { return decisions_; }
    const PerfCounters &counters() const { return counters_; }
    /** Transitions at which the leakage budget pinned the rate. */
    unsigned pinnedDecisions() const { return pinnedDecisions_; }

    /** Completion cycle of the most recent (real or dummy) access. */
    Cycles lastCompletion() const { return lastCompletion_; }

    /**
     * Checkpoint support: rate/epoch position, completion horizons,
     * counters and the decision log. The attached monitor is shared
     * across enforcers and checkpointed by its owner.
     */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    /**
     * Charge a recovered transaction's retry cost into the observable
     * stream: fire its exponential-backoff slots as dummy-equivalent
     * accesses at the enforced slot positions. The slots land exactly
     * where idle dummies would, so the stream stays periodic — an
     * observer cannot tell recovery from idleness, which is the
     * leak-free property the fault model requires.
     */
    void chargeRecovery(const OramCompletion &c);
    /**
     * Offer the device a background-eviction window (eviction engine,
     * oram/eviction_engine.hh) after a completed slot: from the
     * device's busy horizon up to the next slot's earliest possible
     * service start — bounded by the fastest candidate rate when an
     * epoch transition comes first, so an eviction in flight never
     * delays a post-transition slot. Eviction traffic is charged like
     * PR 7's recovery slots (dummy-equivalent crypto into the
     * counters), never into the slot grid. No-op on eviction-free
     * devices.
     */
    void evictInGap();
    /** Process epoch transitions and dummy slots up to cycle @p t. */
    void advanceTo(Cycles t);
    /**
     * advanceTo(), but stop (returning false) where advanceTo() would
     * process an epoch transition; true once the schedule reached @p t.
     */
    bool advanceBounded(Cycles t);
    /** Apply the epoch transition at @p boundary. */
    void transitionAt(Cycles boundary);
    /** Next cycle an access may start under the current rate. */
    Cycles nextSlot() const;

    OramDeviceIf &device_;
    const RateSet &rates_;
    EpochSchedule schedule_;
    const LearnerIf &learner_;
    PerfCounters counters_;
    Cycles rate_;
    /** Fastest rate any epoch decision could select (incl. epoch 0's
     *  initial rate): the eviction horizon's transition-safe bound. */
    Cycles rateFloor_;
    unsigned epoch_ = 0;
    Cycles lastCompletion_ = 0;
    /** Completion cycle of the last *real* access (Req 3 detection). */
    Cycles lastRealCompletion_ = 0;
    std::vector<RateDecision> decisions_;
    LeakageMonitor *monitor_ = nullptr;
    unsigned pinnedDecisions_ = 0;
    /**
     * Whether the in-flight bounded transaction already completed its
     * pre-arrival advance and took its Req 3 waste charge —
     * serveBounded() retries must skip both (serve()'s post-arrival
     * loop neither fires dummies nor re-charges).
     */
    bool serveWasteCharged_ = false;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_RATE_ENFORCER_HH
