/**
 * @file
 * Exact observable-trace counting (paper footnote 3). The headline
 * bound assumes every termination time contributes |R|^|E| traces; in
 * fact a program terminating during epoch i has only made i rate
 * decisions and contributes |R|^i traces. This module computes the
 * exact count (in log2 space) so the bound's slack can be quantified
 * — the exact count is never larger than the bound, and the tests
 * pin both directions.
 */

#ifndef TCORAM_TIMING_TRACE_COUNT_HH
#define TCORAM_TIMING_TRACE_COUNT_HH

#include "common/types.hh"
#include "timing/epoch_schedule.hh"

namespace tcoram::timing {

/**
 * log2 of the exact number of distinguishable (rate sequence,
 * termination time) pairs for programs that may stop at any cycle in
 * [1, t_max_run], under @p schedule with @p num_rates candidates:
 *
 *     sum over t' in [1, t_max_run] of |R|^decisions(t')
 *
 * computed by grouping termination times per epoch.
 */
double exactTraceBits(const EpochSchedule &schedule, std::size_t num_rates,
                      Cycles t_max_run);

/**
 * The paper's §6.1 upper bound for the same setting:
 * |E| * lg|R| + lg(t_max_run).
 */
double boundTraceBits(const EpochSchedule &schedule, std::size_t num_rates,
                      Cycles t_max_run);

} // namespace tcoram::timing

#endif // TCORAM_TIMING_TRACE_COUNT_HH
