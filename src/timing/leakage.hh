/**
 * @file
 * Information-theoretic leakage accounting (paper §2.1, §6). Worst-
 * case bit leakage is the log2 of the number of distinguishable
 * observable traces:
 *
 *  - ORAM timing channel with |E| epochs and |R| rates: |E| * lg|R|.
 *  - Early termination: lg Tmax, reducible by discretizing runtime.
 *  - Channels compose additively (§10).
 *  - With no protection, the trace count over t cycles is the number
 *    of binary strings where each 1 is followed by >= OLAT-1 zeros —
 *    astronomical; we compute its log2 for the comparison bench.
 *
 * A LeakageMonitor tracks the realized trace count while a program
 * runs and enforces the user's limit L (the "shut down the chip"
 * mechanism of §2.1).
 */

#ifndef TCORAM_TIMING_LEAKAGE_HH
#define TCORAM_TIMING_LEAKAGE_HH

#include <cstdint>

#include "common/serial.hh"
#include "common/types.hh"
#include "timing/epoch_schedule.hh"
#include "timing/rate_set.hh"

namespace tcoram::timing {

class LeakageAccountant
{
  public:
    /** ORAM timing bits: |E| * lg|R| (§6.1). */
    static double oramTimingBits(std::size_t num_rates,
                                 unsigned num_epochs);

    /**
     * Composed bound for @p streams parallel enforced streams (the
     * sharded device array): each stream independently leaks at most
     * |E| * lg|R| bits, and independent channels compose additively
     * (§10), giving streams * |E| * lg|R|.
     */
    static double composedOramTimingBits(std::size_t num_rates,
                                         unsigned num_epochs,
                                         std::size_t streams);

    /** Early-termination bits: lg Tmax (§6). */
    static double terminationBits(Cycles tmax);

    /**
     * Termination bits when runtime is rounded up to multiples of
     * @p quantum: lg(Tmax / quantum) (§6's discretization example:
     * quantum 2^30 under Tmax 2^62 leaves 32 bits).
     */
    static double terminationBitsDiscretized(Cycles tmax, Cycles quantum);

    /** Total for a configuration, ORAM timing + termination (§6.1). */
    static double totalBits(const RateSet &rates,
                            const EpochSchedule &schedule);

    /**
     * log2 of the unprotected ORAM-timing trace count after @p t
     * cycles with access latency @p olat (Example 6.1's summation),
     * computed in log space.
     */
    static double unprotectedBits(Cycles t, Cycles olat);

    /**
     * Paper-constant convenience: bits for a dynamic_R{r}_E{g} scheme
     * with epoch0 = 2^30 and Tmax = 2^62 (e.g. r=4, g=4 -> 32 bits).
     */
    static double paperConfigBits(std::size_t num_rates, unsigned growth);
};

/**
 * Runtime leakage monitor. The processor registers every epoch-
 * boundary rate decision; the monitor tracks the accumulated trace-
 * count exponent and reports when the next decision would exceed the
 * session's leakage limit L, at which point a compliant processor
 * must stop making data-dependent decisions (e.g. pin the rate).
 */
class LeakageMonitor
{
  public:
    /**
     * @param limit_bits the session's L
     * @param num_rates |R| for the running configuration
     */
    LeakageMonitor(double limit_bits, std::size_t num_rates);

    /** Bits that would be consumed after one more free rate choice. */
    double bitsAfterNextDecision() const;

    /** True if one more free decision stays within L. */
    bool canDecide() const;

    /**
     * Record an epoch-boundary decision. Free decisions consume
     * lg|R| bits; forced (pinned-rate) decisions consume none.
     * @return false if the decision was out of budget (callers should
     *         have consulted canDecide() and pinned the rate).
     */
    bool recordDecision(bool free_choice);

    double bitsConsumed() const { return bitsConsumed_; }
    double limit() const { return limit_; }
    unsigned decisions() const { return decisions_; }

    /** Checkpoint support: the spent-budget ledger (the limit and
     *  per-decision cost are configuration, re-derived by the owner). */
    void saveState(ByteWriter &w) const
    {
        w.f64(bitsConsumed_);
        w.u32(decisions_);
    }

    void restoreState(ByteReader &r)
    {
        bitsConsumed_ = r.f64();
        decisions_ = r.u32();
    }

  private:
    double limit_;
    double bitsPerDecision_;
    double bitsConsumed_ = 0.0;
    unsigned decisions_ = 0;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_LEAKAGE_HH
