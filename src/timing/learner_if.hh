/**
 * @file
 * Interface for epoch-boundary rate selection, so the enforcer can be
 * driven by either the paper's simple averaging predictor (§7.1) or
 * the sophisticated threshold predictor (§7.3).
 */

#ifndef TCORAM_TIMING_LEARNER_IF_HH
#define TCORAM_TIMING_LEARNER_IF_HH

#include "common/types.hh"
#include "timing/perf_counters.hh"
#include "timing/rate_set.hh"

namespace tcoram::timing {

class LearnerIf
{
  public:
    virtual ~LearnerIf() = default;

    /** Pick the next epoch's rate from the epoch's counters. */
    virtual Cycles nextRate(Cycles epoch_cycles,
                            const PerfCounters &pc) const = 0;

    /** The candidate set the learner selects from. */
    virtual const RateSet &rates() const = 0;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_LEARNER_IF_HH
