#include "timing/trace_count.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/log.hh"
#include "timing/leakage.hh"

namespace tcoram::timing {

double
exactTraceBits(const EpochSchedule &schedule, std::size_t num_rates,
               Cycles t_max_run)
{
    tcoram_assert(num_rates >= 1, "rate set cannot be empty");
    tcoram_assert(t_max_run >= 1, "need at least one cycle");
    const double lg_r = std::log2(static_cast<double>(num_rates));

    // Group termination times by the number of decisions made:
    // terminations in [epochStart(k), epochStart(k+1)) have made k
    // decisions and contribute |R|^k each. Work in log2 space with a
    // running log-sum-exp.
    std::vector<double> terms;
    unsigned k = 0;
    for (;;) {
        const Cycles begin = std::max<Cycles>(schedule.epochStart(k), 1);
        const Cycles end =
            std::min<Cycles>(schedule.epochStart(k + 1), t_max_run + 1);
        if (begin >= t_max_run + 1)
            break;
        const double count = static_cast<double>(end - begin);
        terms.push_back(std::log2(count) +
                        static_cast<double>(k) * lg_r);
        if (end == t_max_run + 1)
            break;
        ++k;
    }

    const double max_term = *std::max_element(terms.begin(), terms.end());
    double sum = 0.0;
    for (double t : terms)
        sum += std::exp2(t - max_term);
    return max_term + std::log2(sum);
}

double
boundTraceBits(const EpochSchedule &schedule, std::size_t num_rates,
               Cycles t_max_run)
{
    return LeakageAccountant::oramTimingBits(
               num_rates, schedule.epochsUsed(t_max_run)) +
           std::log2(static_cast<double>(t_max_run));
}

} // namespace tcoram::timing
