#include "timing/epoch_schedule.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"

namespace tcoram::timing {

EpochSchedule::EpochSchedule(Cycles epoch0, unsigned growth, Cycles tmax)
    : epoch0_(epoch0), growth_(growth), tmax_(tmax)
{
    tcoram_assert(epoch0_ > 0, "epoch0 must be positive");
    tcoram_assert(growth_ >= 2, "epoch growth must be >= 2 (paper §6.2)");
    tcoram_assert(tmax_ >= epoch0_, "Tmax shorter than the first epoch");
}

EpochSchedule::EpochSchedule(std::vector<Cycles> lengths,
                             unsigned tail_growth, Cycles tmax)
    : epoch0_(lengths.empty() ? 0 : lengths.front()),
      growth_(tail_growth),
      tmax_(tmax),
      explicit_(std::move(lengths))
{
    tcoram_assert(!explicit_.empty(), "explicit schedule needs epochs");
    tcoram_assert(growth_ >= 2, "epoch growth must be >= 2 (paper §6.2)");
    tcoram_assert(explicit_.front() > 0, "epoch0 must be positive");
    for (std::size_t i = 1; i < explicit_.size(); ++i) {
        tcoram_assert(explicit_[i] >= 2 * explicit_[i - 1],
                      "each epoch must be >= 2x the previous (§6.2), "
                      "violated at epoch ",
                      i);
    }
    tcoram_assert(tmax_ >= explicit_.front(),
                  "Tmax shorter than the first epoch");
}

Cycles
EpochSchedule::epochLength(unsigned i) const
{
    Cycles len;
    unsigned remaining;
    if (!explicit_.empty()) {
        if (i < explicit_.size())
            return std::min(explicit_[i], tmax_);
        len = explicit_.back();
        remaining = i - static_cast<unsigned>(explicit_.size() - 1);
    } else {
        len = epoch0_;
        remaining = i;
    }
    // Saturating multiply: once the length exceeds Tmax further growth
    // is irrelevant (and would overflow).
    for (unsigned k = 0; k < remaining; ++k) {
        if (len >= tmax_ / growth_)
            return tmax_;
        len *= growth_;
    }
    return len;
}

unsigned
EpochSchedule::epochAt(Cycles t) const
{
    unsigned i = 0;
    Cycles start = 0;
    for (;;) {
        const Cycles len = epochLength(i);
        if (t < start + len || len >= tmax_)
            return i;
        start += len;
        ++i;
    }
}

Cycles
EpochSchedule::epochStart(unsigned i) const
{
    Cycles start = 0;
    for (unsigned k = 0; k < i; ++k) {
        const Cycles len = epochLength(k);
        if (len >= tmax_ || start >= tmax_ - len)
            return tmax_;
        start += len;
    }
    return start;
}

unsigned
EpochSchedule::epochsToTmax() const
{
    // Transitions strictly inside [0, Tmax).
    unsigned k = 1;
    while (epochStart(k) < tmax_)
        ++k;
    return k - 1;
}

unsigned
EpochSchedule::epochsUsed(Cycles t) const
{
    unsigned k = 1;
    while (epochStart(k) <= t && epochStart(k) < tmax_)
        ++k;
    return k - 1;
}

std::string
EpochSchedule::toString() const
{
    std::ostringstream os;
    os << "E(epoch0=" << epoch0_ << ", growth=" << growth_
       << ", Tmax=2^" << [this] {
              unsigned b = 0;
              Cycles v = tmax_;
              while (v >>= 1)
                  ++b;
              return b;
          }()
       << ", |E|=" << epochsToTmax() << ")";
    return os.str();
}

} // namespace tcoram::timing
