#include "timing/leakage.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <vector>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::timing {

double
LeakageAccountant::oramTimingBits(std::size_t num_rates, unsigned num_epochs)
{
    tcoram_assert(num_rates >= 1, "rate set cannot be empty");
    return static_cast<double>(num_epochs) *
           std::log2(static_cast<double>(num_rates));
}

double
LeakageAccountant::composedOramTimingBits(std::size_t num_rates,
                                          unsigned num_epochs,
                                          std::size_t streams)
{
    tcoram_assert(streams >= 1, "composition needs at least one stream");
    return static_cast<double>(streams) *
           oramTimingBits(num_rates, num_epochs);
}

double
LeakageAccountant::terminationBits(Cycles tmax)
{
    tcoram_assert(tmax > 0, "Tmax must be positive");
    return std::log2(static_cast<double>(tmax));
}

double
LeakageAccountant::terminationBitsDiscretized(Cycles tmax, Cycles quantum)
{
    tcoram_assert(quantum > 0 && quantum <= tmax, "bad quantum");
    return std::log2(static_cast<double>(tmax) /
                     static_cast<double>(quantum));
}

double
LeakageAccountant::totalBits(const RateSet &rates,
                             const EpochSchedule &schedule)
{
    return oramTimingBits(rates.size(), schedule.epochsToTmax()) +
           terminationBits(schedule.tmax());
}

double
LeakageAccountant::unprotectedBits(Cycles t, Cycles olat)
{
    tcoram_assert(olat >= 1, "OLAT must be at least one cycle");
    // Trace count for a fixed termination time t is
    //   sum_{i=0}^{floor(t/olat)} C(t - i*(olat-1), i),
    // the number of t-bit strings where every 1 is followed by at
    // least olat-1 zeros. Work in log2 space with lgamma; combine with
    // log-sum-exp. The full Example 6.1 expression also sums over
    // termination times, which adds < lg(t) bits; we fold that in.
    const double ln2 = std::numbers::ln2_v<double>;
    auto lg_choose = [&](double n, double k) {
        if (k < 0 || k > n)
            return -std::numeric_limits<double>::infinity();
        return (std::lgamma(n + 1) - std::lgamma(k + 1) -
                std::lgamma(n - k + 1)) /
               ln2;
    };

    const auto t_d = static_cast<double>(t);
    const auto gap = static_cast<double>(olat - 1);
    const std::uint64_t imax = t / olat;

    double max_term = -std::numeric_limits<double>::infinity();
    std::vector<double> terms;
    terms.reserve(std::min<std::uint64_t>(imax + 1, 1u << 20));
    for (std::uint64_t i = 0; i <= imax; ++i) {
        const double term =
            lg_choose(t_d - static_cast<double>(i) * gap,
                      static_cast<double>(i));
        terms.push_back(term);
        max_term = std::max(max_term, term);
        // Terms decay once past the mode; stop when negligible.
        if (term < max_term - 64 && i > imax / 2)
            break;
    }

    double sum = 0.0;
    for (double term : terms)
        sum += std::exp2(term - max_term);
    const double per_termination = max_term + std::log2(sum);
    // Sum over termination times 1..t adds at most lg t bits.
    return per_termination + std::log2(t_d);
}

double
LeakageAccountant::paperConfigBits(std::size_t num_rates, unsigned growth)
{
    const EpochSchedule sched(EpochSchedule::kPaperEpoch0, growth,
                              EpochSchedule::kPaperTmax);
    return oramTimingBits(num_rates, sched.epochsToTmax());
}

LeakageMonitor::LeakageMonitor(double limit_bits, std::size_t num_rates)
    : limit_(limit_bits),
      bitsPerDecision_(std::log2(static_cast<double>(num_rates)))
{
    tcoram_assert(limit_bits >= 0, "leakage limit must be non-negative");
    tcoram_assert(num_rates >= 1, "rate set cannot be empty");
}

double
LeakageMonitor::bitsAfterNextDecision() const
{
    return bitsConsumed_ + bitsPerDecision_;
}

bool
LeakageMonitor::canDecide() const
{
    return bitsAfterNextDecision() <= limit_ + 1e-9;
}

bool
LeakageMonitor::recordDecision(bool free_choice)
{
    ++decisions_;
    if (!free_choice)
        return true;
    bitsConsumed_ += bitsPerDecision_;
    return bitsConsumed_ <= limit_ + 1e-9;
}

} // namespace tcoram::timing
