/**
 * @file
 * The rate learner (paper §7): at each epoch transition it computes
 * the offered-load estimate
 *
 *     NewIntRaw = (EpochCycles - Waste - ORAMCycles) / AccessCount
 *
 * and discretizes it to the nearest candidate in R. The hardware
 * implementation (Algorithm 1) replaces the divider with 1-bit shift
 * registers after rounding AccessCount up to the next power of two
 * (strictly — even exact powers are doubled), which may underset the
 * rate by up to 2x; §7.2-7.3 argue this compensates for burstiness.
 * Both the shifter and exact-divide variants are provided so the
 * ablation bench can compare them.
 */

#ifndef TCORAM_TIMING_RATE_LEARNER_HH
#define TCORAM_TIMING_RATE_LEARNER_HH

#include <cstdint>

#include "common/types.hh"
#include "timing/learner_if.hh"
#include "timing/perf_counters.hh"
#include "timing/rate_set.hh"

namespace tcoram::timing {

class RateLearner : public LearnerIf
{
  public:
    enum class Divider
    {
        Shifter, ///< Algorithm 1: power-of-two rounding + right shifts
        Exact,   ///< idealized divider (ablation)
    };

    RateLearner(const RateSet &rates, Divider divider = Divider::Shifter)
        : rates_(&rates), divider_(divider)
    {
    }

    /**
     * Raw prediction before discretization (Equation 1). Clamps the
     * numerator at zero (an epoch can be fully consumed by ORAM work).
     * With no accesses in the epoch, returns the slowest rate.
     */
    Cycles predictRaw(Cycles epoch_cycles, const PerfCounters &pc) const;

    /** predictRaw() then discretize to R (§7.1.3). */
    Cycles nextRate(Cycles epoch_cycles,
                    const PerfCounters &pc) const override;

    const RateSet &rates() const override { return *rates_; }
    Divider divider() const { return divider_; }

  private:
    const RateSet *rates_;
    Divider divider_;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_RATE_LEARNER_HH
