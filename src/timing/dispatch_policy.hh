/**
 * @file
 * Pluggable QoS dispatch policies for ShardSlot's scaled core. A
 * policy only chooses WHICH eligible session's head transaction rides
 * the shard's next enforced slot — the enforcer alone times the slot,
 * so no policy can shift the shard's observable stream (test-enforced
 * in tests/test_scheduler_scale.cc).
 *
 * Eligibility: a session's head is eligible iff
 *     headArrival <= max(min over heads of headArrival, lastCompletion)
 * i.e. every head that has arrived by the shard's last completion is
 * eligible immediately (it would start at the same upcoming slot), and
 * when all heads are in the future only the earliest can go first.
 * Policies MUST return an eligible entry; the choice among eligible
 * entries is pure fairness policy.
 *
 * The view iterates sessions in round-robin scan order: position 0 is
 * the session after the last-served one, position size()-1 is the
 * last-served session itself. entry() is O(1) for sequential scans and
 * for the last position, so round-robin stays O(1) per pick under
 * backlog while earliest-deadline pays its documented O(active) scan.
 */

#ifndef TCORAM_TIMING_DISPATCH_POLICY_HH
#define TCORAM_TIMING_DISPATCH_POLICY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace tcoram::timing {

enum class DispatchPolicyKind
{
    RoundRobin,         ///< "rr": cycle sessions in activation order
    WeightedRoundRobin, ///< "wrr": weight w => w consecutive serves
    EarliestDeadline,   ///< "edf": min (headArrival + deadline offset)
};

/** CLI name of a policy kind ("rr", "wrr", "edf"). */
const char *dispatchPolicyName(DispatchPolicyKind kind);

/** All CLI names, for --list-backends and error messages. */
std::vector<std::string> dispatchPolicyNames();

/** Parse a CLI name; nullopt when unknown. */
std::optional<DispatchPolicyKind> parseDispatchPolicy(std::string_view name);

/** Read-only view of one shard's pending sessions, in RR scan order. */
class DispatchView
{
  public:
    struct Entry
    {
        std::uint32_t sid;
        Cycles headArrival;
        std::uint16_t weight;   ///< wrr share (>= 1)
        Cycles deadline;        ///< headArrival + per-session offset
    };

    virtual ~DispatchView() = default;
    /** Sessions with queued work; >= 1 when a pick is requested. */
    virtual std::size_t size() const = 0;
    /** @p k-th entry in scan order (0 = after last served). */
    virtual Entry entry(std::size_t k) const = 0;
    /** Completion cycle of the shard's last enforced access. */
    virtual Cycles lastCompletion() const = 0;
};

class DispatchPolicy
{
  public:
    virtual ~DispatchPolicy() = default;
    virtual DispatchPolicyKind kind() const = 0;
    /** Scan position of the (eligible) session to serve next. */
    virtual std::size_t pick(const DispatchView &view) = 0;
};

std::unique_ptr<DispatchPolicy> makeDispatchPolicy(DispatchPolicyKind kind);

} // namespace tcoram::timing

#endif // TCORAM_TIMING_DISPATCH_POLICY_HH
