/**
 * @file
 * Transactional ORAM device interface. One submit() call covers every
 * kind of work the rate-enforced memory system sends to the ORAM: a
 * real access (optionally carrying a functional payload that a
 * data-moving backend serves) or an indistinguishable dummy. Each
 * submission returns an OramCompletion with its start/completion
 * cycles and per-transaction cost attribution (bytes over the pins,
 * bytes and calls through the bucket crypto engine), so the enforcer's
 * counters and the power model charge exactly what the device did.
 *
 * Backends:
 *  - oram::TimingOramDevice     calibrated constant-OLAT model (the
 *                               paper's methodology; no data moves)
 *  - oram::FunctionalOramDevice real PathOram datapath with identical
 *                               cycle charging (oram/oram_device.hh)
 *  - sim-internal devices (§10's ProtectedDramDevice) and test fakes
 *
 * The interface lives in the timing layer because the rate enforcer is
 * its primary consumer and must stay below the oram layer in the
 * dependency order.
 */

#ifndef TCORAM_TIMING_ORAM_DEVICE_HH
#define TCORAM_TIMING_ORAM_DEVICE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"

namespace tcoram::timing {

/** One request submitted to the ORAM device. */
struct OramTransaction
{
    enum class Kind : std::uint8_t
    {
        Real,  ///< demand access (carries the functional payload)
        Dummy, ///< indistinguishable filler access
    };

    Kind kind = Kind::Real;

    /** Issuing scheduler session (0 = the single implicit session). */
    std::uint32_t sessionId = 0;

    /** Logical block id (data-moving backends; ignored by timing). */
    std::uint64_t blockId = 0;

    /** True for a store/writeback, false for a load fill. */
    bool isWrite = false;

    /**
     * Functional write payload (exactly blockBytes when non-empty).
     * Timing-only backends ignore it; a data-moving backend with an
     * empty span writes a deterministic internal pattern instead.
     */
    std::span<const std::uint8_t> data{};

    /** Functional read destination (exactly blockBytes; empty = discard). */
    std::span<std::uint8_t> out{};

    /**
     * Driver-private attribution tag (the ring scheduler's lane token
     * rides here, sim/session_ring.hh). Devices never read it.
     */
    std::uint64_t tag = 0;

    static OramTransaction
    real(std::uint64_t block_id = 0, bool is_write = false,
         std::uint32_t session_id = 0)
    {
        OramTransaction t;
        t.kind = Kind::Real;
        t.blockId = block_id;
        t.isWrite = is_write;
        t.sessionId = session_id;
        return t;
    }

    static OramTransaction
    dummy(std::uint32_t session_id = 0)
    {
        OramTransaction t;
        t.kind = Kind::Dummy;
        t.sessionId = session_id;
        return t;
    }
};

/** Completion record and per-transaction cost attribution. */
struct OramCompletion
{
    /** Cycle the device began serving (>= submission cycle). */
    Cycles start = 0;
    /** Cycle the transaction (including path write-back) completed. */
    Cycles done = 0;
    /** Bytes moved over the pins by this transaction. */
    std::uint64_t bytesMoved = 0;
    /** Bytes through the bucket crypto engine. */
    std::uint64_t cryptoBytes = 0;
    /** Batched crypto-engine invocations. */
    std::uint64_t cryptoCalls = 0;

    /**
     * Fault recovery attribution (fault-tolerant datapath,
     * oram/integrity.hh): corrupted path decodes this transaction
     * detected and re-reads it issued to complete. Zero on timing-only
     * backends and fault-free runs. The enforcer charges
     * RecoveryEngine::backoffSlots(retries) dummy-equivalent slots
     * into the observable stream so recovery never modulates timing.
     */
    std::uint32_t faultsDetected = 0;
    std::uint32_t retries = 0;
};

/**
 * Cost attribution for background evictions issued inside one
 * enforced-gap idle window (oram/eviction_engine.hh). Evictions are
 * wire-indistinguishable from dummy accesses but never appear as
 * completions: they retire deferred write-back tails in the shadow of
 * the slot grid, so the enforcer charges their crypto/pin traffic into
 * the counters without perturbing the observable stream.
 */
struct OramEvictionCharge
{
    std::uint32_t evictions = 0;
    /** Reverse-lexicographic schedule index of the first eviction. */
    std::uint64_t firstSchedule = 0;
    std::uint64_t bytesMoved = 0;
    std::uint64_t cryptoBytes = 0;
    std::uint64_t cryptoCalls = 0;
};

/**
 * The transactional device every ORAM backend implements. Real and
 * dummy transactions must be served with identical observable timing —
 * the indistinguishability the leakage bound rests on.
 */
class OramDeviceIf
{
  public:
    virtual ~OramDeviceIf() = default;

    /** Backend kind name ("timing", "functional", ...). */
    virtual const char *kind() const { return "device"; }

    /**
     * Serve @p txn submitted at cycle @p now. The device serializes
     * internally: service starts at max(now, busy-until).
     */
    virtual OramCompletion submit(Cycles now,
                                  const OramTransaction &txn) = 0;

    /** Fixed per-access latency (the paper's OLAT): service start to
     *  requested-line availability. */
    virtual Cycles accessLatency() const = 0;

    /**
     * Cycles the device's path stays occupied per access, gating when
     * the next access may start (>= accessLatency()). A split-
     * transaction backend overlaps its write-back tail past the OLAT;
     * synchronous backends return accessLatency().
     */
    virtual Cycles occupancyPerAccess() const { return accessLatency(); }

    /** Bytes over the pins per access (0 = unmodeled). */
    virtual std::uint64_t bytesPerAccess() const { return 0; }

    /** Bytes through the bucket crypto engine per access (0 = none). */
    virtual std::uint64_t cryptoBytesPerAccess() const { return 0; }

    /** Batched crypto-engine calls per access (0 = none). */
    virtual std::uint64_t cryptoCallsPerAccess() const { return 0; }

    /** Real transactions served so far. */
    virtual std::uint64_t realAccesses() const { return 0; }

    /** Dummy transactions served so far. */
    virtual std::uint64_t dummyAccesses() const { return 0; }

    /**
     * Issue background evictions inside the idle window ending at
     * @p horizon — the enforcer guarantees no future slot can start
     * before it. Devices without an eviction engine (or with it off)
     * do nothing, keeping eviction-off runs bit-identical to
     * pre-eviction builds.
     */
    virtual OramEvictionCharge maybeEvict(Cycles horizon)
    {
        (void)horizon;
        return {};
    }

    /** Modeled stash occupancy in blocks (deferred write-back tails). */
    virtual std::uint64_t stashOccupancy() const { return 0; }

    /** High-water mark of the modeled stash occupancy. */
    virtual std::uint64_t stashHighWater() const { return 0; }

    /** Blocks written back by background evictions so far. */
    virtual std::uint64_t blocksEvicted() const { return 0; }

    /** Background evictions issued so far. */
    virtual std::uint64_t evictionsIssued() const { return 0; }

    std::uint64_t
    totalAccesses() const
    {
        return realAccesses() + dummyAccesses();
    }

    /**
     * Checkpoint support (sim/checkpoint.hh). Backends that carry
     * run state (served counters, functional tree image, fault-
     * injector draws) serialize it here; the default is fatal so a
     * non-checkpointable device fails loudly rather than restoring a
     * silently-incomplete snapshot.
     */
    virtual void saveState(ByteWriter &w) const;
    virtual void restoreState(ByteReader &r);
};

/**
 * Decorator recording every completion that passes through a device —
 * the adversary's view of the enforced stream. The trace-level
 * indistinguishability tests and the multi-session bench read the
 * recorded start cycles; kind/sessionId are carried for assertions the
 * adversary could NOT make (they are not observable).
 */
class RecordingOramDevice : public OramDeviceIf
{
  public:
    struct Record
    {
        OramTransaction::Kind kind;
        std::uint32_t sessionId;
        OramCompletion completion;
    };

    explicit RecordingOramDevice(OramDeviceIf &inner) : inner_(inner) {}

    const char *kind() const override { return inner_.kind(); }
    OramCompletion submit(Cycles now, const OramTransaction &txn) override;
    Cycles accessLatency() const override { return inner_.accessLatency(); }
    Cycles occupancyPerAccess() const override
    {
        return inner_.occupancyPerAccess();
    }
    std::uint64_t bytesPerAccess() const override
    {
        return inner_.bytesPerAccess();
    }
    std::uint64_t cryptoBytesPerAccess() const override
    {
        return inner_.cryptoBytesPerAccess();
    }
    std::uint64_t cryptoCallsPerAccess() const override
    {
        return inner_.cryptoCallsPerAccess();
    }
    std::uint64_t realAccesses() const override
    {
        return inner_.realAccesses();
    }
    std::uint64_t dummyAccesses() const override
    {
        return inner_.dummyAccesses();
    }

    /** Evictions pass through unrecorded: they are background work
     *  inside the gap, invisible in the adversary's completion view. */
    OramEvictionCharge maybeEvict(Cycles horizon) override
    {
        return inner_.maybeEvict(horizon);
    }
    std::uint64_t stashOccupancy() const override
    {
        return inner_.stashOccupancy();
    }
    std::uint64_t stashHighWater() const override
    {
        return inner_.stashHighWater();
    }
    std::uint64_t blocksEvicted() const override
    {
        return inner_.blocksEvicted();
    }
    std::uint64_t evictionsIssued() const override
    {
        return inner_.evictionsIssued();
    }

    const std::vector<Record> &records() const { return records_; }

    /** Observable start cycles, in service order. */
    std::vector<Cycles> startCycles() const;

    /** Checkpoints the recorded stream along with the inner device,
     *  so a restored run replays the adversary's full view. */
    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    OramDeviceIf &inner_;
    std::vector<Record> records_;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_ORAM_DEVICE_HH
