/**
 * @file
 * The public candidate-rate set R (paper §2.2, §9.2). A rate of r
 * cycles means the next ORAM access starts r cycles after the previous
 * one completes. R is public (its values don't affect leakage); the
 * paper spaces candidates evenly on a lg scale between 256 and 32768,
 * which gives memory-bound workloads more choices at the fast end.
 */

#ifndef TCORAM_TIMING_RATE_SET_HH
#define TCORAM_TIMING_RATE_SET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tcoram::timing {

class RateSet
{
  public:
    /** Spacing policy for intermediate candidates. */
    enum class Spacing
    {
        Log,    ///< paper default: even on a lg scale
        Linear, ///< ablation alternative
    };

    /**
     * Build a rate set of @p count candidates between @p lo and @p hi
     * inclusive (paper: count=4, lo=256, hi=32768).
     */
    RateSet(std::size_t count, Cycles lo = 256, Cycles hi = 32768,
            Spacing spacing = Spacing::Log);

    /** Explicit candidate list (sorted ascending internally). */
    explicit RateSet(std::vector<Cycles> rates);

    /** Candidate closest to @p raw: argmin_r |raw - r| (§7.1.3). */
    Cycles discretize(Cycles raw) const;

    /** Index of a candidate value; asserts membership. */
    std::size_t indexOf(Cycles rate) const;

    std::size_t size() const { return rates_.size(); }
    Cycles at(std::size_t i) const { return rates_.at(i); }
    const std::vector<Cycles> &values() const { return rates_; }
    Cycles slowest() const { return rates_.back(); }
    Cycles fastest() const { return rates_.front(); }

    std::string toString() const;

  private:
    std::vector<Cycles> rates_;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_RATE_SET_HH
