/**
 * @file
 * ShardSlot: the per-shard unit of rate enforcement and dispatch.
 * PR 3's scheduler owned ONE global RateEnforcer and one set of
 * per-session FIFOs; sharding the ORAM tree across M devices moves
 * both into this abstraction — each shard carries its own enforcer
 * (its own periodic observable stream, its own epoch clock and
 * counters) plus the per-session FIFOs of the transactions routed to
 * it. The scheduler (sim/oram_scheduler.hh) drains M slots round-robin;
 * WHEN a slot's accesses happen remains decided entirely by that
 * slot's enforcer, so the observable channel is M independent periodic
 * streams whatever the dispatch policy does.
 *
 * A slot either owns its enforcer (sharded construction) or adopts an
 * externally-owned one (the single-shard path, which keeps the PR 3
 * scheduler API — and its pinned observable traces — bit-identical).
 *
 * Two dispatch cores share the enforcer:
 *
 *  - The LEGACY core (ensureSessions/enqueue/serveNext/drainUntil)
 *    keeps PR 3/4 semantics exactly: a dense FIFO per session, scanned
 *    round-robin by session index. O(sessions) per serve — fine for
 *    tens of sessions, the wall at a million.
 *  - The SCALED core (enqueueScaled/serveScaled/drainScaled) backs the
 *    ring scheduler (sim/shard_worker.hh): sessions with queued work
 *    live on a circular activation list over pooled intrusive queues,
 *    so dispatch is O(active) worst case and O(1) under backlog, and
 *    steady-state allocation-free. Serving is BOUNDED — it stops at
 *    the shard's next epoch boundary instead of touching the shared
 *    LeakageMonitor, so M worker threads stay race-free and
 *    bit-identical to one thread (transitions are applied in shard-id
 *    order at a barrier via applyTransition()). WHICH session rides a
 *    slot is chosen by a pluggable DispatchPolicy (rr/wrr/edf).
 *
 * A slot must use one core or the other, never both (asserted).
 */

#ifndef TCORAM_TIMING_SHARD_SLOT_HH
#define TCORAM_TIMING_SHARD_SLOT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/ring_fifo.hh"
#include "timing/dispatch_policy.hh"
#include "timing/oram_device.hh"
#include "timing/rate_enforcer.hh"

namespace tcoram::timing {

class ShardSlot
{
  public:
    /** One transaction served from this shard's stream. */
    struct Served
    {
        std::uint32_t sessionId = 0;
        Cycles arrival = 0;
        OramCompletion completion;
        std::uint64_t tag = 0; ///< the served txn's attribution tag
    };

    /** Adopt an externally-owned enforcer (single-shard legacy path). */
    ShardSlot(std::uint32_t shard_id, RateEnforcer &enforcer);

    /** Own a fresh enforcer over @p device (sharded construction). */
    ShardSlot(std::uint32_t shard_id, OramDeviceIf &device,
              const RateSet &rates, const EpochSchedule &schedule,
              const LearnerIf &learner, Cycles initial_rate);

    std::uint32_t shardId() const { return shardId_; }
    RateEnforcer &enforcer() { return enf_; }
    const RateEnforcer &enforcer() const { return enf_; }

    // --- legacy core (PR 3/4 scheduler path) ---

    /** Grow the per-session FIFO array to @p n sessions. Resets the
     *  round-robin cursor so the scan restarts at session 0, matching
     *  the pre-shard scheduler's open-time behaviour. */
    void ensureSessions(std::size_t n);

    /**
     * Queue a transaction from session @p sid arriving at @p arrival.
     * Per-(session, shard) arrivals must be non-decreasing (FIFO).
     * The txn's data/out spans are views; their buffers must outlive
     * service.
     */
    void enqueue(std::uint32_t sid, Cycles arrival,
                 const OramTransaction &txn);

    std::uint64_t pending() const { return pending_ + pendingScaled_; }
    bool idle() const { return pending() == 0 && heldQueue_ == kNil; }

    /**
     * Serve one queued transaction through this shard's enforcer:
     * among sessions whose head has arrived by the next enforced
     * service opportunity, pick round-robin. The choice is pure
     * fairness policy — the enforcer alone times the shard's stream.
     * nullopt when idle.
     */
    std::optional<Served> serveNext();

    /** Fire the trailing dummies this shard's schedule owes up to @p t. */
    void drainUntil(Cycles t);

    // --- scaled core (million-session ring scheduler path) ---

    /** Install the QoS policy (default: round-robin). */
    void setDispatchPolicy(std::unique_ptr<DispatchPolicy> policy);
    DispatchPolicyKind
    dispatchPolicyKind() const
    {
        return policy_ ? policy_->kind() : DispatchPolicyKind::RoundRobin;
    }

    /**
     * Queue a transaction on the scaled core. @p weight (wrr) and
     * @p deadline_offset (edf) are per-session QoS attributes; they
     * are latched when the session joins the activation list.
     * Per-(session, shard) arrivals must be non-decreasing.
     */
    void enqueueScaled(std::uint32_t sid, Cycles arrival,
                       const OramTransaction &txn, std::uint16_t weight = 1,
                       Cycles deadline_offset = 0);

    enum class ServeStatus
    {
        Done,    ///< one transaction served
        Blocked, ///< epoch transition due: applyTransition() then retry
        Idle,    ///< nothing queued
    };

    /**
     * Bounded serve: dispatch one transaction, stopping (Blocked) when
     * the shard's next epoch boundary must be crossed first. The pick
     * is made once and held across Blocked retries — exactly the
     * unbounded order of operations.
     */
    ServeStatus serveScaled(Served &out);

    /**
     * Bounded drain to @p t; false when an epoch transition at
     * nextBoundary() must be applied (at the barrier) first.
     */
    bool drainScaled(Cycles t);

    /** Next epoch boundary of this shard's enforcer. */
    Cycles nextBoundary() const { return enf_.nextBoundary(); }

    /** Serial barrier step: apply the transition at nextBoundary(). */
    void applyTransition() { enf_.applyTransition(); }

    /**
     * Checkpoint support (legacy core + enforcer). Queued transactions
     * must carry no data/out spans (views cannot be serialized) and
     * the scaled core must be quiescent — both asserted. The owner
     * must have called ensureSessions() to the saved session count
     * before restoring.
     */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    struct Pending
    {
        Cycles arrival;
        OramTransaction txn;
    };

    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** Pooled FIFO node (scaled core). */
    struct Node
    {
        Cycles arrival;
        OramTransaction txn;
        std::uint32_t next = kNil;
    };

    /** A session on the activation list: an intrusive FIFO plus the
     *  circular doubly-linked list stitching (activation order). */
    struct ActiveQueue
    {
        std::uint32_t sid = 0;
        std::uint32_t head = kNil, tail = kNil; ///< Node indices
        std::uint32_t prev = kNil, next = kNil; ///< ActiveQueue indices
        std::uint16_t weight = 1;
        Cycles deadlineOffset = 0;
    };

    /** DispatchView over the activation list, RR scan order. */
    class View final : public DispatchView
    {
      public:
        explicit View(const ShardSlot &slot) : slot_(slot) {}
        std::size_t size() const override { return slot_.activeCount_; }
        Entry entry(std::size_t k) const override;
        Cycles
        lastCompletion() const override
        {
            return slot_.enf_.lastCompletion();
        }

      private:
        const ShardSlot &slot_;
        mutable std::size_t cachedPos_ = 0;     ///< sequential-scan cache
        mutable std::uint32_t cachedIdx_ = kNil;
    };

    std::uint32_t allocNode(Cycles arrival, const OramTransaction &txn);
    void freeNode(std::uint32_t idx);
    std::uint32_t pickScaled();
    void popServed(std::uint32_t q_idx);

    std::uint32_t shardId_;
    std::unique_ptr<RateEnforcer> owned_; ///< null when adopting
    RateEnforcer &enf_;

    // legacy core
    std::vector<RingFifo<Pending>> queues_; ///< one FIFO per session
    std::uint64_t pending_ = 0;
    std::size_t cursor_ = 0; ///< round-robin position (last served)

    // scaled core
    std::vector<Node> nodePool_;
    std::uint32_t nodeFree_ = kNil;
    std::vector<ActiveQueue> queuePool_;
    std::uint32_t queueFree_ = kNil;
    /** sid -> ActiveQueue index (kNil when inactive); dense, persists
     *  so steady-state reactivation is allocation-free. */
    std::vector<std::uint32_t> sessionQueue_;
    std::uint32_t listCursor_ = kNil; ///< last-served ActiveQueue
    std::size_t activeCount_ = 0;
    std::uint64_t pendingScaled_ = 0;
    std::uint32_t heldQueue_ = kNil; ///< pick held across Blocked
    std::unique_ptr<DispatchPolicy> policy_;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_SHARD_SLOT_HH
