/**
 * @file
 * ShardSlot: the per-shard unit of rate enforcement and dispatch.
 * PR 3's scheduler owned ONE global RateEnforcer and one set of
 * per-session FIFOs; sharding the ORAM tree across M devices moves
 * both into this abstraction — each shard carries its own enforcer
 * (its own periodic observable stream, its own epoch clock and
 * counters) plus the per-session FIFOs of the transactions routed to
 * it. The scheduler (sim/oram_scheduler.hh) drains M slots round-robin;
 * WHEN a slot's accesses happen remains decided entirely by that
 * slot's enforcer, so the observable channel is M independent periodic
 * streams whatever the dispatch policy does.
 *
 * A slot either owns its enforcer (sharded construction) or adopts an
 * externally-owned one (the single-shard path, which keeps the PR 3
 * scheduler API — and its pinned observable traces — bit-identical).
 */

#ifndef TCORAM_TIMING_SHARD_SLOT_HH
#define TCORAM_TIMING_SHARD_SLOT_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "timing/oram_device.hh"
#include "timing/rate_enforcer.hh"

namespace tcoram::timing {

class ShardSlot
{
  public:
    /** One transaction served from this shard's stream. */
    struct Served
    {
        std::uint32_t sessionId = 0;
        Cycles arrival = 0;
        OramCompletion completion;
    };

    /** Adopt an externally-owned enforcer (single-shard legacy path). */
    ShardSlot(std::uint32_t shard_id, RateEnforcer &enforcer);

    /** Own a fresh enforcer over @p device (sharded construction). */
    ShardSlot(std::uint32_t shard_id, OramDeviceIf &device,
              const RateSet &rates, const EpochSchedule &schedule,
              const LearnerIf &learner, Cycles initial_rate);

    std::uint32_t shardId() const { return shardId_; }
    RateEnforcer &enforcer() { return enf_; }
    const RateEnforcer &enforcer() const { return enf_; }

    /** Grow the per-session FIFO array to @p n sessions. Resets the
     *  round-robin cursor so the scan restarts at session 0, matching
     *  the pre-shard scheduler's open-time behaviour. */
    void ensureSessions(std::size_t n);

    /**
     * Queue a transaction from session @p sid arriving at @p arrival.
     * Per-(session, shard) arrivals must be non-decreasing (FIFO).
     * The txn's data/out spans are views; their buffers must outlive
     * service.
     */
    void enqueue(std::uint32_t sid, Cycles arrival,
                 const OramTransaction &txn);

    std::uint64_t pending() const { return pending_; }
    bool idle() const { return pending_ == 0; }

    /**
     * Serve one queued transaction through this shard's enforcer:
     * among sessions whose head has arrived by the next enforced
     * service opportunity, pick round-robin. The choice is pure
     * fairness policy — the enforcer alone times the shard's stream.
     * nullopt when idle.
     */
    std::optional<Served> serveNext();

    /** Fire the trailing dummies this shard's schedule owes up to @p t. */
    void drainUntil(Cycles t);

  private:
    struct Pending
    {
        Cycles arrival;
        OramTransaction txn;
    };

    std::uint32_t shardId_;
    std::unique_ptr<RateEnforcer> owned_; ///< null when adopting
    RateEnforcer &enf_;
    std::vector<std::deque<Pending>> queues_; ///< one FIFO per session
    std::uint64_t pending_ = 0;
    std::size_t cursor_ = 0; ///< round-robin position (last served)
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_SHARD_SLOT_HH
