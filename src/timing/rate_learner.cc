#include "timing/rate_learner.hh"

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::timing {

Cycles
RateLearner::predictRaw(Cycles epoch_cycles, const PerfCounters &pc) const
{
    if (pc.accessCount() == 0) {
        // No demand observed: the slowest candidate wastes the least
        // energy and the learner can correct at the next transition.
        return rates_->slowest();
    }

    const Cycles spent = pc.waste() + pc.oramCycles();
    Cycles numerator = epoch_cycles > spent ? epoch_cycles - spent : 0;

    if (divider_ == Divider::Exact)
        return numerator / pc.accessCount();

    // Algorithm 1: round AccessCount up to the next power of two
    // (strictly, per §7.2 "including the case when AccessCount is
    // already a power of 2"), then divide by right-shifting both
    // operands until the count is exhausted.
    std::uint64_t count = roundUpPow2(pc.accessCount(),
                                      /*strictly_greater=*/true);
    while (count > 1) {
        numerator >>= 1;
        count >>= 1;
    }
    return numerator;
}

Cycles
RateLearner::nextRate(Cycles epoch_cycles, const PerfCounters &pc) const
{
    return rates_->discretize(predictRaw(epoch_cycles, pc));
}

} // namespace tcoram::timing
