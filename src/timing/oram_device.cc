#include "timing/oram_device.hh"

namespace tcoram::timing {

OramCompletion
RecordingOramDevice::submit(Cycles now, const OramTransaction &txn)
{
    const OramCompletion c = inner_.submit(now, txn);
    records_.push_back({txn.kind, txn.sessionId, c});
    return c;
}

std::vector<Cycles>
RecordingOramDevice::startCycles() const
{
    std::vector<Cycles> out;
    out.reserve(records_.size());
    for (const auto &r : records_)
        out.push_back(r.completion.start);
    return out;
}

} // namespace tcoram::timing
