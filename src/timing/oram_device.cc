#include "timing/oram_device.hh"

#include "common/log.hh"

namespace tcoram::timing {

void
OramDeviceIf::saveState(ByteWriter &) const
{
    tcoram_fatal("ORAM device kind \"", kind(),
                 "\" is not checkpointable (no saveState override)");
}

void
OramDeviceIf::restoreState(ByteReader &)
{
    tcoram_fatal("ORAM device kind \"", kind(),
                 "\" is not checkpointable (no restoreState override)");
}

OramCompletion
RecordingOramDevice::submit(Cycles now, const OramTransaction &txn)
{
    const OramCompletion c = inner_.submit(now, txn);
    records_.push_back({txn.kind, txn.sessionId, c});
    return c;
}

std::vector<Cycles>
RecordingOramDevice::startCycles() const
{
    std::vector<Cycles> out;
    out.reserve(records_.size());
    for (const auto &r : records_)
        out.push_back(r.completion.start);
    return out;
}

void
RecordingOramDevice::saveState(ByteWriter &w) const
{
    inner_.saveState(w);
    w.u64(records_.size());
    for (const Record &rec : records_) {
        w.u8(static_cast<std::uint8_t>(rec.kind));
        w.u32(rec.sessionId);
        w.u64(rec.completion.start);
        w.u64(rec.completion.done);
        w.u64(rec.completion.bytesMoved);
        w.u64(rec.completion.cryptoBytes);
        w.u64(rec.completion.cryptoCalls);
        w.u32(rec.completion.faultsDetected);
        w.u32(rec.completion.retries);
    }
}

void
RecordingOramDevice::restoreState(ByteReader &r)
{
    inner_.restoreState(r);
    records_.clear();
    const std::uint64_t n = r.u64();
    records_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Record rec;
        rec.kind = static_cast<OramTransaction::Kind>(r.u8());
        rec.sessionId = r.u32();
        rec.completion.start = r.u64();
        rec.completion.done = r.u64();
        rec.completion.bytesMoved = r.u64();
        rec.completion.cryptoBytes = r.u64();
        rec.completion.cryptoCalls = r.u64();
        rec.completion.faultsDetected = r.u32();
        rec.completion.retries = r.u32();
        records_.push_back(rec);
    }
}

} // namespace tcoram::timing
