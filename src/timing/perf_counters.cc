#include "timing/perf_counters.hh"

namespace tcoram::timing {

void
PerfCounters::reset()
{
    // Epoch counters only; the crypto attribution counters are
    // run-cumulative and survive epoch transitions.
    accessCount_ = 0;
    oramCycles_ = 0;
    waste_ = 0;
}

void
PerfCounters::noteRealAccess(Cycles oram_latency)
{
    ++accessCount_;
    oramCycles_ += oram_latency;
}

void
PerfCounters::noteWaste(Cycles cycles)
{
    waste_ += cycles;
}

void
PerfCounters::noteCrypto(std::uint64_t bytes, std::uint64_t calls)
{
    cryptoBytes_ += bytes;
    cryptoCalls_ += calls;
}

} // namespace tcoram::timing
