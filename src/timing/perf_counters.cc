#include "timing/perf_counters.hh"

namespace tcoram::timing {

void
PerfCounters::reset()
{
    accessCount_ = 0;
    oramCycles_ = 0;
    waste_ = 0;
}

void
PerfCounters::noteRealAccess(Cycles oram_latency)
{
    ++accessCount_;
    oramCycles_ += oram_latency;
}

void
PerfCounters::noteWaste(Cycles cycles)
{
    waste_ += cycles;
}

} // namespace tcoram::timing
