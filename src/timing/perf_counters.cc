#include "timing/perf_counters.hh"

namespace tcoram::timing {

void
PerfCounters::reset()
{
    // Epoch counters only; the crypto attribution counters are
    // run-cumulative and survive epoch transitions.
    accessCount_ = 0;
    oramCycles_ = 0;
    waste_ = 0;
}

void
PerfCounters::noteRealAccess(Cycles oram_latency)
{
    ++accessCount_;
    oramCycles_ += oram_latency;
}

void
PerfCounters::noteWaste(Cycles cycles)
{
    waste_ += cycles;
}

void
PerfCounters::noteCrypto(std::uint64_t bytes, std::uint64_t calls)
{
    cryptoBytes_ += bytes;
    cryptoCalls_ += calls;
}

void
PerfCounters::noteFaultRecovery(std::uint64_t detected,
                                std::uint64_t retries, std::uint64_t slots)
{
    faultsDetected_ += detected;
    faultRetries_ += retries;
    recoverySlots_ += slots;
}

void
PerfCounters::noteEvictions(std::uint64_t evictions)
{
    evictionsIssued_ += evictions;
}

void
PerfCounters::saveState(ByteWriter &w) const
{
    w.u64(accessCount_);
    w.u64(oramCycles_);
    w.u64(waste_);
    w.u64(cryptoBytes_);
    w.u64(cryptoCalls_);
    w.u64(faultsDetected_);
    w.u64(faultRetries_);
    w.u64(recoverySlots_);
    w.u64(evictionsIssued_);
}

void
PerfCounters::restoreState(ByteReader &r)
{
    accessCount_ = r.u64();
    oramCycles_ = r.u64();
    waste_ = r.u64();
    cryptoBytes_ = r.u64();
    cryptoCalls_ = r.u64();
    faultsDetected_ = r.u64();
    faultRetries_ = r.u64();
    recoverySlots_ = r.u64();
    evictionsIssued_ = r.u64();
}

} // namespace tcoram::timing
