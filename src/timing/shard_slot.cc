#include "timing/shard_slot.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace tcoram::timing {

ShardSlot::ShardSlot(std::uint32_t shard_id, RateEnforcer &enforcer)
    : shardId_(shard_id), enf_(enforcer)
{
}

ShardSlot::ShardSlot(std::uint32_t shard_id, OramDeviceIf &device,
                     const RateSet &rates, const EpochSchedule &schedule,
                     const LearnerIf &learner, Cycles initial_rate)
    : shardId_(shard_id),
      owned_(std::make_unique<RateEnforcer>(device, rates, schedule,
                                            learner, initial_rate)),
      enf_(*owned_)
{
}

void
ShardSlot::ensureSessions(std::size_t n)
{
    if (queues_.size() < n)
        queues_.resize(n);
    // The cursor names the last-served session; starting the scan
    // after the final session keeps it beginning at session 0.
    cursor_ = queues_.size() - 1;
}

void
ShardSlot::enqueue(std::uint32_t sid, Cycles arrival,
                   const OramTransaction &txn)
{
    tcoram_dassert(pendingScaled_ == 0,
                   "legacy and scaled cores must not mix");
    tcoram_assert(sid < queues_.size(), "unknown session ", sid,
                  " on shard ", shardId_);
    auto &q = queues_[sid];
    tcoram_assert(q.empty() || q.back().arrival <= arrival,
                  "per-session arrivals must be non-decreasing");
    q.push_back({arrival, txn});
    ++pending_;
}

std::optional<ShardSlot::Served>
ShardSlot::serveNext()
{
    if (pending_ == 0)
        return std::nullopt;
    const std::size_t n = queues_.size();

    // Earliest queued arrival: the latest the next service can begin.
    Cycles earliest = std::numeric_limits<Cycles>::max();
    for (const auto &q : queues_)
        if (!q.empty())
            earliest = std::min(earliest, q.front().arrival);

    // Every transaction that has arrived by this shard's next enforced
    // slot would start at that same slot — the choice among them is
    // pure policy (round-robin from the last served session) and
    // cannot shift the shard's observable stream. lastCompletion() is
    // a safe LOWER bound on the next slot whatever the rate does at
    // upcoming epoch boundaries; heads arriving between it and the
    // actual slot just wait one round, which never costs a slot
    // (earliest is eligible).
    const Cycles horizon = std::max(earliest, enf_.lastCompletion());

    std::size_t pick = n;
    for (std::size_t k = 1; k <= n; ++k) {
        const std::size_t s = (cursor_ + k) % n;
        if (!queues_[s].empty() && queues_[s].front().arrival <= horizon) {
            pick = s;
            break;
        }
    }
    tcoram_assert(pick < n, "pending transaction with no eligible session");
    cursor_ = pick;

    const Pending p = queues_[pick].front();
    queues_[pick].pop_front();
    --pending_;

    const OramCompletion c = enf_.serve(p.arrival, p.txn);
    return Served{static_cast<std::uint32_t>(pick), p.arrival, c, p.txn.tag};
}

void
ShardSlot::drainUntil(Cycles t)
{
    tcoram_assert(pending() == 0,
                  "drain with transactions still queued on shard ",
                  shardId_);
    enf_.drainUntil(t);
}

// --- scaled core ---

void
ShardSlot::setDispatchPolicy(std::unique_ptr<DispatchPolicy> policy)
{
    policy_ = std::move(policy);
}

DispatchView::Entry
ShardSlot::View::entry(std::size_t k) const
{
    const std::size_t n = slot_.activeCount_;
    tcoram_dassert(k < n, "dispatch view position out of range");
    std::uint32_t idx;
    if (k == n - 1) {
        idx = slot_.listCursor_; // last served closes the scan
    } else if (cachedIdx_ != kNil && k == cachedPos_ + 1 &&
               cachedPos_ != n - 1) {
        idx = slot_.queuePool_[cachedIdx_].next;
    } else if (cachedIdx_ != kNil && k == cachedPos_) {
        idx = cachedIdx_;
    } else {
        idx = slot_.queuePool_[slot_.listCursor_].next;
        for (std::size_t i = 0; i < k; ++i)
            idx = slot_.queuePool_[idx].next;
    }
    cachedPos_ = k;
    cachedIdx_ = idx;
    const auto &q = slot_.queuePool_[idx];
    const Cycles head_arrival = slot_.nodePool_[q.head].arrival;
    return {q.sid, head_arrival, q.weight, head_arrival + q.deadlineOffset};
}

std::uint32_t
ShardSlot::allocNode(Cycles arrival, const OramTransaction &txn)
{
    std::uint32_t idx;
    if (nodeFree_ != kNil) {
        idx = nodeFree_;
        nodeFree_ = nodePool_[idx].next;
    } else {
        idx = static_cast<std::uint32_t>(nodePool_.size());
        nodePool_.emplace_back();
    }
    nodePool_[idx] = Node{arrival, txn, kNil};
    return idx;
}

void
ShardSlot::freeNode(std::uint32_t idx)
{
    nodePool_[idx].next = nodeFree_;
    nodeFree_ = idx;
}

void
ShardSlot::enqueueScaled(std::uint32_t sid, Cycles arrival,
                         const OramTransaction &txn, std::uint16_t weight,
                         Cycles deadline_offset)
{
    tcoram_dassert(pending_ == 0, "legacy and scaled cores must not mix");
    if (sessionQueue_.size() <= sid)
        sessionQueue_.resize(static_cast<std::size_t>(sid) + 1, kNil);
    const std::uint32_t node = allocNode(arrival, txn);
    std::uint32_t q_idx = sessionQueue_[sid];
    if (q_idx == kNil) {
        // (Re)activate at the back of the round: new sessions join the
        // scan just before the cursor, so everyone already waiting is
        // served first. Activation order is a pure function of the
        // enqueue sequence — worker-count independent.
        if (queueFree_ != kNil) {
            q_idx = queueFree_;
            queueFree_ = queuePool_[q_idx].next;
        } else {
            q_idx = static_cast<std::uint32_t>(queuePool_.size());
            queuePool_.emplace_back();
        }
        ActiveQueue &q = queuePool_[q_idx];
        q.sid = sid;
        q.head = q.tail = node;
        q.weight = std::max<std::uint16_t>(weight, 1);
        q.deadlineOffset = deadline_offset;
        if (activeCount_ == 0) {
            q.prev = q.next = q_idx;
            listCursor_ = q_idx;
        } else {
            const std::uint32_t cur = listCursor_;
            const std::uint32_t prev = queuePool_[cur].prev;
            q.prev = prev;
            q.next = cur;
            queuePool_[prev].next = q_idx;
            queuePool_[cur].prev = q_idx;
        }
        ++activeCount_;
        sessionQueue_[sid] = q_idx;
    } else {
        ActiveQueue &q = queuePool_[q_idx];
        tcoram_assert(nodePool_[q.tail].arrival <= arrival,
                      "per-session arrivals must be non-decreasing");
        nodePool_[q.tail].next = node;
        q.tail = node;
    }
    ++pendingScaled_;
}

std::uint32_t
ShardSlot::pickScaled()
{
    if (!policy_)
        policy_ = makeDispatchPolicy(DispatchPolicyKind::RoundRobin);
    View v(*this);
    const std::size_t k = policy_->pick(v);
    tcoram_assert(k < activeCount_, "dispatch policy picked position ", k,
                  " of ", activeCount_, " on shard ", shardId_);
    std::uint32_t idx = listCursor_;
    if (k != activeCount_ - 1) {
        idx = queuePool_[listCursor_].next;
        for (std::size_t i = 0; i < k; ++i)
            idx = queuePool_[idx].next;
    }
    listCursor_ = idx; // cursor moves at pick time, as the legacy core
    return idx;
}

void
ShardSlot::popServed(std::uint32_t q_idx)
{
    ActiveQueue &q = queuePool_[q_idx];
    const std::uint32_t node = q.head;
    q.head = nodePool_[node].next;
    if (q.head == kNil)
        q.tail = kNil;
    freeNode(node);
    --pendingScaled_;
    if (q.head == kNil) {
        // Deactivate: unlink; the cursor falls back to the previous
        // entry so the next scan continues from the same place.
        sessionQueue_[q.sid] = kNil;
        if (activeCount_ == 1) {
            listCursor_ = kNil;
        } else {
            queuePool_[q.prev].next = q.next;
            queuePool_[q.next].prev = q.prev;
            if (listCursor_ == q_idx)
                listCursor_ = q.prev;
        }
        --activeCount_;
        q.next = queueFree_; // reuse the link as the freelist chain
        queueFree_ = q_idx;
    }
}

ShardSlot::ServeStatus
ShardSlot::serveScaled(Served &out)
{
    tcoram_dassert(pending_ == 0, "legacy and scaled cores must not mix");
    if (heldQueue_ == kNil) {
        if (pendingScaled_ == 0)
            return ServeStatus::Idle;
        heldQueue_ = pickScaled();
    }
    const ActiveQueue &q = queuePool_[heldQueue_];
    const Node &head = nodePool_[q.head];
    const auto c = enf_.serveBounded(head.arrival, head.txn);
    if (!c)
        return ServeStatus::Blocked;
    out = Served{q.sid, head.arrival, *c, head.txn.tag};
    popServed(heldQueue_);
    heldQueue_ = kNil;
    return ServeStatus::Done;
}

bool
ShardSlot::drainScaled(Cycles t)
{
    tcoram_assert(pendingScaled_ == 0 && heldQueue_ == kNil,
                  "drain with transactions still queued on shard ",
                  shardId_);
    return enf_.drainBounded(t);
}

void
ShardSlot::saveState(ByteWriter &w) const
{
    tcoram_assert(pendingScaled_ == 0 && heldQueue_ == kNil,
                  "scaled-core backlog is not checkpointable on shard ",
                  shardId_);
    enf_.saveState(w);
    w.u64(pending_);
    w.u64(cursor_);
    w.u64(queues_.size());
    for (const auto &q : queues_) {
        w.u64(q.size());
        for (std::size_t i = 0; i < q.size(); ++i) {
            const Pending &p = q.at(i);
            tcoram_assert(p.txn.data.empty() && p.txn.out.empty(),
                          "span-carrying queued transactions are not "
                          "checkpointable on shard ", shardId_);
            w.u64(p.arrival);
            w.u8(static_cast<std::uint8_t>(p.txn.kind));
            w.u32(p.txn.sessionId);
            w.u64(p.txn.blockId);
            w.b(p.txn.isWrite);
            w.u64(p.txn.tag);
        }
    }
}

void
ShardSlot::restoreState(ByteReader &r)
{
    enf_.restoreState(r);
    pending_ = r.u64();
    cursor_ = static_cast<std::size_t>(r.u64());
    const std::uint64_t sessions = r.u64();
    tcoram_assert(sessions == queues_.size(),
                  "snapshot session count mismatch on shard ", shardId_,
                  " (", sessions, " vs ", queues_.size(), ")");
    std::uint64_t total = 0;
    for (auto &q : queues_) {
        q = RingFifo<Pending>();
        const std::uint64_t m = r.u64();
        for (std::uint64_t i = 0; i < m; ++i) {
            Pending p;
            p.arrival = r.u64();
            p.txn.kind = static_cast<OramTransaction::Kind>(r.u8());
            p.txn.sessionId = r.u32();
            p.txn.blockId = r.u64();
            p.txn.isWrite = r.b();
            p.txn.tag = r.u64();
            q.push_back(p);
        }
        total += m;
    }
    tcoram_assert(total == pending_,
                  "snapshot backlog mismatch on shard ", shardId_);
}

} // namespace tcoram::timing
