#include "timing/shard_slot.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace tcoram::timing {

ShardSlot::ShardSlot(std::uint32_t shard_id, RateEnforcer &enforcer)
    : shardId_(shard_id), enf_(enforcer)
{
}

ShardSlot::ShardSlot(std::uint32_t shard_id, OramDeviceIf &device,
                     const RateSet &rates, const EpochSchedule &schedule,
                     const LearnerIf &learner, Cycles initial_rate)
    : shardId_(shard_id),
      owned_(std::make_unique<RateEnforcer>(device, rates, schedule,
                                            learner, initial_rate)),
      enf_(*owned_)
{
}

void
ShardSlot::ensureSessions(std::size_t n)
{
    if (queues_.size() < n)
        queues_.resize(n);
    // The cursor names the last-served session; starting the scan
    // after the final session keeps it beginning at session 0.
    cursor_ = queues_.size() - 1;
}

void
ShardSlot::enqueue(std::uint32_t sid, Cycles arrival,
                   const OramTransaction &txn)
{
    tcoram_assert(sid < queues_.size(), "unknown session ", sid,
                  " on shard ", shardId_);
    auto &q = queues_[sid];
    tcoram_assert(q.empty() || q.back().arrival <= arrival,
                  "per-session arrivals must be non-decreasing");
    q.push_back({arrival, txn});
    ++pending_;
}

std::optional<ShardSlot::Served>
ShardSlot::serveNext()
{
    if (pending_ == 0)
        return std::nullopt;
    const std::size_t n = queues_.size();

    // Earliest queued arrival: the latest the next service can begin.
    Cycles earliest = std::numeric_limits<Cycles>::max();
    for (const auto &q : queues_)
        if (!q.empty())
            earliest = std::min(earliest, q.front().arrival);

    // Every transaction that has arrived by this shard's next enforced
    // slot would start at that same slot — the choice among them is
    // pure policy (round-robin from the last served session) and
    // cannot shift the shard's observable stream. lastCompletion() is
    // a safe LOWER bound on the next slot whatever the rate does at
    // upcoming epoch boundaries; heads arriving between it and the
    // actual slot just wait one round, which never costs a slot
    // (earliest is eligible).
    const Cycles horizon = std::max(earliest, enf_.lastCompletion());

    std::size_t pick = n;
    for (std::size_t k = 1; k <= n; ++k) {
        const std::size_t s = (cursor_ + k) % n;
        if (!queues_[s].empty() && queues_[s].front().arrival <= horizon) {
            pick = s;
            break;
        }
    }
    tcoram_assert(pick < n, "pending transaction with no eligible session");
    cursor_ = pick;

    const Pending p = queues_[pick].front();
    queues_[pick].pop_front();
    --pending_;

    const OramCompletion c = enf_.serve(p.arrival, p.txn);
    return Served{static_cast<std::uint32_t>(pick), p.arrival, c};
}

void
ShardSlot::drainUntil(Cycles t)
{
    tcoram_assert(pending_ == 0,
                  "drain with transactions still queued on shard ",
                  shardId_);
    enf_.drainUntil(t);
}

} // namespace tcoram::timing
