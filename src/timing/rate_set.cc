#include "timing/rate_set.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace tcoram::timing {

RateSet::RateSet(std::size_t count, Cycles lo, Cycles hi, Spacing spacing)
{
    tcoram_assert(count >= 1, "rate set needs at least one candidate");
    tcoram_assert(lo <= hi, "rate bounds inverted");

    if (count == 1) {
        rates_.push_back(lo);
        return;
    }
    rates_.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const double t =
            static_cast<double>(i) / static_cast<double>(count - 1);
        double v;
        if (spacing == Spacing::Log) {
            v = std::exp2(std::log2(static_cast<double>(lo)) +
                          t * (std::log2(static_cast<double>(hi)) -
                               std::log2(static_cast<double>(lo))));
        } else {
            v = static_cast<double>(lo) +
                t * static_cast<double>(hi - lo);
        }
        rates_.push_back(static_cast<Cycles>(std::llround(v)));
    }
    std::sort(rates_.begin(), rates_.end());
    rates_.erase(std::unique(rates_.begin(), rates_.end()), rates_.end());
}

RateSet::RateSet(std::vector<Cycles> rates) : rates_(std::move(rates))
{
    tcoram_assert(!rates_.empty(), "empty explicit rate set");
    std::sort(rates_.begin(), rates_.end());
    rates_.erase(std::unique(rates_.begin(), rates_.end()), rates_.end());
}

Cycles
RateSet::discretize(Cycles raw) const
{
    Cycles best = rates_.front();
    std::uint64_t best_dist = raw > best ? raw - best : best - raw;
    for (Cycles r : rates_) {
        const std::uint64_t d = raw > r ? raw - r : r - raw;
        if (d < best_dist) {
            best = r;
            best_dist = d;
        }
    }
    return best;
}

std::size_t
RateSet::indexOf(Cycles rate) const
{
    for (std::size_t i = 0; i < rates_.size(); ++i)
        if (rates_[i] == rate)
            return i;
    tcoram_panic("rate ", rate, " not in set ", toString());
}

std::string
RateSet::toString() const
{
    std::ostringstream os;
    os << "{";
    for (std::size_t i = 0; i < rates_.size(); ++i)
        os << (i ? ", " : "") << rates_[i];
    os << "}";
    return os.str();
}

} // namespace tcoram::timing
