/**
 * @file
 * The "more sophisticated predictor" the paper describes in §7.3 and
 * omits for space: for each candidate rate it predicts an upper bound
 * on performance overhead and selects the *slowest* rate whose
 * predicted overhead has not yet increased "sharply" — where sharply
 * is a tunable parameter that trades performance for power (choosing
 * a slower rate when the performance loss is small saves dummy
 * energy).
 *
 * The paper's stated conclusion — that with a small |R| this chooses
 * nearly the same rates as the simple averaging predictor — is
 * exercised by the ablation bench and the unit tests.
 */

#ifndef TCORAM_TIMING_THRESHOLD_LEARNER_HH
#define TCORAM_TIMING_THRESHOLD_LEARNER_HH

#include "common/types.hh"
#include "timing/learner_if.hh"
#include "timing/perf_counters.hh"
#include "timing/rate_set.hh"

namespace tcoram::timing {

class ThresholdLearner : public LearnerIf
{
  public:
    /**
     * @param rates candidate set R
     * @param olat the ORAM's fixed access latency
     * @param sharpness allowed relative slowdown over the best
     *        candidate before a rate is ruled out (the §7.3 trade-off
     *        parameter; 0 always picks the fastest-performing rate,
     *        larger values trade performance for power)
     */
    ThresholdLearner(const RateSet &rates, Cycles olat,
                     double sharpness = 0.3)
        : rates_(&rates), olat_(olat), sharpness_(sharpness)
    {
    }

    /**
     * Predicted cycles-per-access cost of running the *observed*
     * demand (from @p pc over @p epoch_cycles) under candidate rate
     * @p r: the service period when demand saturates the schedule,
     * plus expected rate-induced waiting when it doesn't.
     */
    double predictedCostPerAccess(Cycles epoch_cycles,
                                  const PerfCounters &pc, Cycles r) const;

    /** Pick the next epoch's rate (slowest within the threshold). */
    Cycles nextRate(Cycles epoch_cycles,
                    const PerfCounters &pc) const override;

    const RateSet &rates() const override { return *rates_; }
    double sharpness() const { return sharpness_; }

  private:
    const RateSet *rates_;
    Cycles olat_;
    double sharpness_;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_THRESHOLD_LEARNER_HH
