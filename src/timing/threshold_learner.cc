#include "timing/threshold_learner.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcoram::timing {

double
ThresholdLearner::predictedCostPerAccess(Cycles epoch_cycles,
                                         const PerfCounters &pc,
                                         Cycles r) const
{
    if (pc.accessCount() == 0)
        return 0.0;

    // Observed offered-load interval (Equation 1's numerator spread
    // over the epoch's accesses).
    const Cycles spent = pc.waste() + pc.oramCycles();
    const double d =
        static_cast<double>(epoch_cycles > spent ? epoch_cycles - spent
                                                 : 0) /
        static_cast<double>(pc.accessCount());

    const double olat = static_cast<double>(olat_);
    const double period = static_cast<double>(r) + olat;

    // Expected rate-induced wait for a request arriving at a uniform
    // point in a slot: behind an in-flight dummy with probability
    // olat/period (pay the dummy's remaining half plus a full rate),
    // otherwise mid-wait (pay half a rate on average).
    const double p_dummy = olat / period;
    const double expected_wait =
        p_dummy * (olat * 0.5 + static_cast<double>(r)) +
        (1.0 - p_dummy) * static_cast<double>(r) * 0.5;

    // Per-access cost under the enforced schedule: at least one full
    // period when demand saturates it, else demand + service + wait.
    return std::max(period, d + olat + expected_wait);
}

Cycles
ThresholdLearner::nextRate(Cycles epoch_cycles, const PerfCounters &pc) const
{
    if (pc.accessCount() == 0)
        return rates_->slowest();

    const Cycles spent = pc.waste() + pc.oramCycles();
    const double d =
        static_cast<double>(epoch_cycles > spent ? epoch_cycles - spent
                                                 : 0) /
        static_cast<double>(pc.accessCount());
    const double unprotected = d + static_cast<double>(olat_);
    const double count = static_cast<double>(pc.accessCount());
    const double epoch = static_cast<double>(epoch_cycles);

    // Predicted whole-epoch slowdown fraction for each candidate.
    auto slowdown = [&](Cycles r) {
        const double per_access =
            predictedCostPerAccess(epoch_cycles, pc, r);
        return std::max(0.0, per_access - unprotected) * count / epoch;
    };

    double best = slowdown(rates_->fastest());
    for (Cycles r : rates_->values())
        best = std::min(best, slowdown(r));

    // The slowest candidate whose overhead has not yet increased
    // "sharply": within `sharpness` (an absolute runtime fraction)
    // of the best candidate.
    Cycles chosen = rates_->fastest();
    for (Cycles r : rates_->values())
        if (slowdown(r) <= best + sharpness_)
            chosen = std::max(chosen, r);
    return chosen;
}

} // namespace tcoram::timing
