/**
 * @file
 * Epoch schedules E (paper §6). The schedule family is geometric:
 * epoch i+1 is `growth` times as long as epoch i ("epoch doubling"
 * when growth = 2; the main evaluated configuration uses growth = 4).
 * The number of epochs that fit below Tmax bounds timing-channel
 * leakage at |E| * lg|R| bits.
 */

#ifndef TCORAM_TIMING_EPOCH_SCHEDULE_HH
#define TCORAM_TIMING_EPOCH_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tcoram::timing {

class EpochSchedule
{
  public:
    /** Paper constants: Tmax = 2^62 cycles at 1 GHz, epoch0 = 2^30. */
    static constexpr Cycles kPaperTmax = Cycles{1} << 62;
    static constexpr Cycles kPaperEpoch0 = Cycles{1} << 30;

    /**
     * @param epoch0 length of the first epoch in cycles
     * @param growth geometric growth factor (>= 2 per §6.2)
     * @param tmax   maximum program runtime (for leakage accounting)
     */
    EpochSchedule(Cycles epoch0, unsigned growth, Cycles tmax = kPaperTmax);

    /**
     * Explicit schedule: the first epochs take the given lengths,
     * after which the last length keeps growing by @p tail_growth.
     * §6.2's family constraint (each epoch >= 2x the previous) is
     * enforced — it is what keeps |E| at O(lg Tmax).
     */
    EpochSchedule(std::vector<Cycles> lengths, unsigned tail_growth = 2,
                  Cycles tmax = kPaperTmax);

    /** Length in cycles of epoch @p i (saturates at Tmax). */
    Cycles epochLength(unsigned i) const;

    /** Epoch index that contains absolute cycle @p t. */
    unsigned epochAt(Cycles t) const;

    /** Absolute cycle at which epoch @p i begins. */
    Cycles epochStart(unsigned i) const;

    /**
     * The |E| in the leakage bound: the number of epoch *transitions*
     * (learner rate decisions) a program running to Tmax can make.
     * The initial epoch's rate is data-independent (§6.2), so only
     * transitions leak. For the paper constants this reproduces
     * Example 6.1's counts: 32 for doubling, 16 for x4 growth, 11 for
     * x8, 8 for x16.
     */
    unsigned epochsToTmax() const;

    /**
     * Rate decisions made by a program that terminates at cycle @p t
     * (transitions whose boundary is <= t).
     */
    unsigned epochsUsed(Cycles t) const;

    Cycles epoch0() const { return epoch0_; }
    unsigned growth() const { return growth_; }
    Cycles tmax() const { return tmax_; }

    std::string toString() const;

  private:
    Cycles epoch0_;
    unsigned growth_;
    Cycles tmax_;
    /** Explicit leading epoch lengths (may be empty). */
    std::vector<Cycles> explicit_;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_EPOCH_SCHEDULE_HH
