/**
 * @file
 * The rate learner's three performance counters (paper §7.1.1,
 * Figure 4), maintained at the ORAM controller by watching the
 * LLC-to-ORAM request queue:
 *
 *  - AccessCount: real (non-dummy) ORAM requests this epoch.
 *  - ORAMCycles:  cycles each real request was being serviced by the
 *                 ORAM, summed over requests.
 *  - Waste:       cycles lost to the current rate — waiting for the
 *                 next allowed slot with real work pending (overset
 *                 rate, Req 1), a real request arriving while a dummy
 *                 is in flight (underset rate, Req 2), and one rate-
 *                 value charge per additional concurrently outstanding
 *                 miss (Req 3).
 *
 * Plus crypto-work attribution counters (not part of the paper's
 * Figure 4): bytes pushed through the bucket AES-CTR engine and the
 * number of batched crypto calls, for Table-2-style energy/perf
 * reports. With the fused datapath (oram/path_oram.hh) every real AND
 * dummy access costs H+2 batched calls for H recursion stages — one
 * whole-path decrypt per tree plus ONE cross-stage write-back encrypt
 * — versus ~3·(H+1) for the legacy get/set recursion. Unlike the
 * learner's counters these are run-cumulative — reset() deliberately
 * keeps them, and the sim layer reads them off the enforcer at the end
 * of a run (SimResult cryptoBytes/cryptoCalls, dumped as
 * oram.crypto_bytes/crypto_calls/crypto_calls_per_access).
 */

#ifndef TCORAM_TIMING_PERF_COUNTERS_HH
#define TCORAM_TIMING_PERF_COUNTERS_HH

#include <cstdint>

#include "common/serial.hh"
#include "common/types.hh"

namespace tcoram::timing {

class PerfCounters
{
  public:
    /** Reset at each epoch transition (§7.1.1). */
    void reset();

    /** A real access was serviced with the given ORAM latency. */
    void noteRealAccess(Cycles oram_latency);

    /** Cycles a pending real request spent waiting on the rate. */
    void noteWaste(Cycles cycles);

    /** An access (real or dummy) moved @p bytes through the crypto
     *  engine in @p calls batched engine invocations. */
    void noteCrypto(std::uint64_t bytes, std::uint64_t calls);

    /**
     * A transaction recovered from corruption: @p detected failed
     * verify passes, @p retries re-reads, @p slots dummy-equivalent
     * backoff slots charged into the observable stream. Run-cumulative
     * like the crypto counters — recovery cost reporting must survive
     * epoch transitions.
     */
    void noteFaultRecovery(std::uint64_t detected, std::uint64_t retries,
                           std::uint64_t slots);

    /**
     * Background evictions issued in enforced-gap idle windows
     * (oram/eviction_engine.hh). Run-cumulative like the crypto and
     * recovery counters — never a learner input, so eviction never
     * shifts a rate decision.
     */
    void noteEvictions(std::uint64_t evictions);

    std::uint64_t accessCount() const { return accessCount_; }
    Cycles oramCycles() const { return oramCycles_; }
    Cycles waste() const { return waste_; }
    std::uint64_t cryptoBytes() const { return cryptoBytes_; }
    std::uint64_t cryptoCalls() const { return cryptoCalls_; }
    std::uint64_t faultsDetected() const { return faultsDetected_; }
    std::uint64_t faultRetries() const { return faultRetries_; }
    std::uint64_t recoverySlots() const { return recoverySlots_; }
    std::uint64_t evictionsIssued() const { return evictionsIssued_; }

    /** Checkpoint support. */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    std::uint64_t accessCount_ = 0;
    Cycles oramCycles_ = 0;
    Cycles waste_ = 0;
    std::uint64_t cryptoBytes_ = 0;
    std::uint64_t cryptoCalls_ = 0;
    std::uint64_t faultsDetected_ = 0;
    std::uint64_t faultRetries_ = 0;
    std::uint64_t recoverySlots_ = 0;
    std::uint64_t evictionsIssued_ = 0;
};

} // namespace tcoram::timing

#endif // TCORAM_TIMING_PERF_COUNTERS_HH
