#include "timing/rate_enforcer.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcoram::timing {

RateEnforcer::RateEnforcer(OramDeviceIf &device, const RateSet &rates,
                           const EpochSchedule &schedule,
                           const LearnerIf &learner, Cycles initial_rate)
    : device_(device),
      rates_(rates),
      schedule_(schedule),
      learner_(learner),
      rate_(initial_rate),
      rateFloor_(std::min(initial_rate, rates.fastest())),
      decisions_{{0, 0, initial_rate}}
{
    tcoram_assert(&learner.rates() == &rates,
                  "learner must be bound to the enforcer's rate set");
}

Cycles
RateEnforcer::nextSlot() const
{
    return lastCompletion_ + rate_;
}

void
RateEnforcer::evictInGap()
{
    // Background-eviction window after a completed slot: the device
    // may work until the next slot's earliest possible service start,
    // so an eviction in flight never delays a real access. When an
    // epoch transition comes first, the post-transition rate is
    // unknown here (the learner runs at the boundary, and under the
    // bounded protocol at the serial barrier) — bound the window by
    // the fastest rate any decision could pick, so the eviction
    // retires before even the earliest post-transition slot.
    //
    // Everything the horizon depends on — the slot grid, the epoch
    // schedule, calibrated constants — is public, so eviction timing
    // is data-independent, and this method runs at the same sequence
    // points on the bounded and unbounded paths (after every
    // completion), keeping N-worker runs bit-identical to 1-worker
    // runs.
    const Cycles boundary = schedule_.epochStart(epoch_ + 1);
    const Cycles slot = nextSlot();
    const Cycles horizon =
        boundary >= slot ? slot : lastCompletion_ + rateFloor_;
    const OramEvictionCharge e = device_.maybeEvict(horizon);
    if (e.evictions != 0) {
        // Charged like recovery slots: dummy-equivalent crypto/pin
        // traffic into the counters, never into the slot grid — the
        // learner's inputs (access count, ORAM cycles, waste) are
        // untouched, so rate decisions and start-cycle streams stay
        // bit-identical to an eviction-free run whenever occupancy
        // never binds.
        counters_.noteCrypto(e.cryptoBytes, e.cryptoCalls);
        counters_.noteEvictions(e.evictions);
    }
}

void
RateEnforcer::transitionAt(Cycles boundary)
{
    const Cycles epoch_cycles =
        boundary - schedule_.epochStart(epoch_);

    // A budget-limited session pins the rate once L is spent; forced
    // decisions are data-independent and leak nothing.
    Cycles new_rate;
    if (monitor_ != nullptr && !monitor_->canDecide()) {
        new_rate = rate_;
        monitor_->recordDecision(false);
        ++pinnedDecisions_;
    } else {
        new_rate = learner_.nextRate(epoch_cycles, counters_);
        if (monitor_ != nullptr)
            monitor_->recordDecision(true);
    }
    counters_.reset();
    ++epoch_;
    rate_ = new_rate;
    decisions_.push_back({epoch_, boundary, new_rate});
}

void
RateEnforcer::advanceTo(Cycles t)
{
    // Interleave epoch transitions and idle dummy slots in time order.
    for (;;) {
        const Cycles boundary = schedule_.epochStart(epoch_ + 1);
        const Cycles slot = nextSlot();

        if (boundary <= t && boundary <= slot) {
            transitionAt(boundary);
            continue;
        }
        if (slot < t) {
            // The slot fires with no pending work: dummy access.
            const OramCompletion c =
                device_.submit(slot, OramTransaction::dummy());
            lastCompletion_ = c.done;
            counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
            evictInGap();
            continue;
        }
        return;
    }
}

OramCompletion
RateEnforcer::serve(Cycles arrival, const OramTransaction &txn)
{
    tcoram_assert(txn.kind == OramTransaction::Kind::Real,
                  "dummies are scheduled by the enforcer, not submitted");

    // Fire any dummies/transitions due strictly before the arrival.
    advanceTo(arrival);

    // Req 3 (Figure 4): this request was outstanding concurrently with
    // the previous real access (back-to-back queue) — charge one rate
    // period to Waste on top of the physical wait.
    if (arrival < lastRealCompletion_)
        counters_.noteWaste(rate_);

    // The request starts at the first slot at or after its arrival;
    // epoch transitions between arrival and that slot must be applied
    // (they change the rate and hence the slot position).
    for (;;) {
        const Cycles boundary = schedule_.epochStart(epoch_ + 1);
        const Cycles slot = std::max(nextSlot(), arrival);
        if (boundary <= slot) {
            transitionAt(boundary);
            continue;
        }
        // Waiting from arrival to slot start is rate-induced loss: the
        // paper's Waste cases (a) overset rate and (b) dummy in flight
        // both show up as slot - arrival here.
        const Cycles start = slot;
        if (start > arrival)
            counters_.noteWaste(start - arrival);

        const OramCompletion c = device_.submit(start, txn);
        counters_.noteRealAccess(c.done - start);
        counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
        lastCompletion_ = c.done;
        lastRealCompletion_ = c.done;
        evictInGap();
        if (c.retries > 0)
            chargeRecovery(c);
        return c;
    }
}

void
RateEnforcer::chargeRecovery(const OramCompletion &c)
{
    // Backoff slots owed: sum over retry i of 2^(i-1) — mirrors
    // oram::RecoveryEngine::backoffSlots (the formula is duplicated
    // because the timing layer sits below oram in the dependency
    // order). Each slot fires at the enforced position the next idle
    // dummy would have used, with due epoch transitions applied first,
    // exactly as advanceTo() interleaves them.
    const std::uint64_t slots = (std::uint64_t{1} << c.retries) - 1;
    for (std::uint64_t i = 0; i < slots; ++i) {
        while (schedule_.epochStart(epoch_ + 1) <= nextSlot())
            transitionAt(schedule_.epochStart(epoch_ + 1));
        const OramCompletion d =
            device_.submit(nextSlot(), OramTransaction::dummy());
        lastCompletion_ = d.done;
        counters_.noteCrypto(d.cryptoBytes, d.cryptoCalls);
        evictInGap();
    }
    counters_.noteFaultRecovery(c.faultsDetected, c.retries, slots);
}

void
RateEnforcer::drainUntil(Cycles t)
{
    advanceTo(t);
}

bool
RateEnforcer::advanceBounded(Cycles t)
{
    // Same interleave as advanceTo(): when both a transition and a
    // dummy slot are due, the transition goes first — here that means
    // stopping, since the transition belongs to the serial barrier.
    for (;;) {
        const Cycles boundary = schedule_.epochStart(epoch_ + 1);
        const Cycles slot = nextSlot();

        if (boundary <= t && boundary <= slot)
            return false;
        if (slot < t) {
            const OramCompletion c =
                device_.submit(slot, OramTransaction::dummy());
            lastCompletion_ = c.done;
            counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
            evictInGap();
            continue;
        }
        return true;
    }
}

std::optional<OramCompletion>
RateEnforcer::serveBounded(Cycles arrival, const OramTransaction &txn)
{
    tcoram_assert(txn.kind == OramTransaction::Kind::Real,
                  "dummies are scheduled by the enforcer, not submitted");

    // The pre-arrival advance and the Req 3 charge run once per
    // transaction, at the same sequence point as serve(). Retries skip
    // both: serve()'s post-arrival loop never fires dummies, even when
    // a transition drops the rate so far that nextSlot() lands before
    // the arrival again, and re-entering the advance here would.
    if (!serveWasteCharged_) {
        if (!advanceBounded(arrival))
            return std::nullopt;
        if (arrival < lastRealCompletion_)
            counters_.noteWaste(rate_);
        serveWasteCharged_ = true;
    }

    const Cycles boundary = schedule_.epochStart(epoch_ + 1);
    const Cycles slot = std::max(nextSlot(), arrival);
    if (boundary <= slot)
        return std::nullopt;

    const Cycles start = slot;
    if (start > arrival)
        counters_.noteWaste(start - arrival);

    const OramCompletion c = device_.submit(start, txn);
    // Recovery charging fires extra slots that may cross epoch
    // boundaries — incompatible with the bounded protocol's barrier
    // discipline. The ring scheduler runs timing-only devices, which
    // never retry; a fault-modeled datapath belongs on the unbounded
    // path (sim/oram_scheduler.hh + serve()).
    tcoram_assert(c.retries == 0,
                  "ring scheduler is outside the fault domain (device "
                  "reported ", c.retries, " retries on a bounded serve)");
    counters_.noteRealAccess(c.done - start);
    counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
    lastCompletion_ = c.done;
    lastRealCompletion_ = c.done;
    evictInGap();
    serveWasteCharged_ = false;
    return c;
}

bool
RateEnforcer::drainBounded(Cycles t)
{
    return advanceBounded(t);
}

void
RateEnforcer::saveState(ByteWriter &w) const
{
    w.u64(rate_);
    w.u32(epoch_);
    w.u64(lastCompletion_);
    w.u64(lastRealCompletion_);
    w.u32(pinnedDecisions_);
    w.b(serveWasteCharged_);
    counters_.saveState(w);
    w.u64(decisions_.size());
    for (const RateDecision &d : decisions_) {
        w.u32(d.epoch);
        w.u64(d.startCycle);
        w.u64(d.rate);
    }
}

void
RateEnforcer::restoreState(ByteReader &r)
{
    rate_ = r.u64();
    epoch_ = r.u32();
    lastCompletion_ = r.u64();
    lastRealCompletion_ = r.u64();
    pinnedDecisions_ = r.u32();
    serveWasteCharged_ = r.b();
    counters_.restoreState(r);
    decisions_.clear();
    const std::uint64_t n = r.u64();
    decisions_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        RateDecision d;
        d.epoch = r.u32();
        d.startCycle = r.u64();
        d.rate = r.u64();
        decisions_.push_back(d);
    }
}

} // namespace tcoram::timing
