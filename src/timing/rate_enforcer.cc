#include "timing/rate_enforcer.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcoram::timing {

RateEnforcer::RateEnforcer(OramDeviceIf &device, const RateSet &rates,
                           const EpochSchedule &schedule,
                           const LearnerIf &learner, Cycles initial_rate)
    : device_(device),
      rates_(rates),
      schedule_(schedule),
      learner_(learner),
      rate_(initial_rate),
      decisions_{{0, 0, initial_rate}}
{
    tcoram_assert(&learner.rates() == &rates,
                  "learner must be bound to the enforcer's rate set");
}

Cycles
RateEnforcer::nextSlot() const
{
    return lastCompletion_ + rate_;
}

void
RateEnforcer::transitionAt(Cycles boundary)
{
    const Cycles epoch_cycles =
        boundary - schedule_.epochStart(epoch_);

    // A budget-limited session pins the rate once L is spent; forced
    // decisions are data-independent and leak nothing.
    Cycles new_rate;
    if (monitor_ != nullptr && !monitor_->canDecide()) {
        new_rate = rate_;
        monitor_->recordDecision(false);
        ++pinnedDecisions_;
    } else {
        new_rate = learner_.nextRate(epoch_cycles, counters_);
        if (monitor_ != nullptr)
            monitor_->recordDecision(true);
    }
    counters_.reset();
    ++epoch_;
    rate_ = new_rate;
    decisions_.push_back({epoch_, boundary, new_rate});
}

void
RateEnforcer::advanceTo(Cycles t)
{
    // Interleave epoch transitions and idle dummy slots in time order.
    for (;;) {
        const Cycles boundary = schedule_.epochStart(epoch_ + 1);
        const Cycles slot = nextSlot();

        if (boundary <= t && boundary <= slot) {
            transitionAt(boundary);
            continue;
        }
        if (slot < t) {
            // The slot fires with no pending work: dummy access.
            const OramCompletion c =
                device_.submit(slot, OramTransaction::dummy());
            lastCompletion_ = c.done;
            counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
            continue;
        }
        return;
    }
}

OramCompletion
RateEnforcer::serve(Cycles arrival, const OramTransaction &txn)
{
    tcoram_assert(txn.kind == OramTransaction::Kind::Real,
                  "dummies are scheduled by the enforcer, not submitted");

    // Fire any dummies/transitions due strictly before the arrival.
    advanceTo(arrival);

    // Req 3 (Figure 4): this request was outstanding concurrently with
    // the previous real access (back-to-back queue) — charge one rate
    // period to Waste on top of the physical wait.
    if (arrival < lastRealCompletion_)
        counters_.noteWaste(rate_);

    // The request starts at the first slot at or after its arrival;
    // epoch transitions between arrival and that slot must be applied
    // (they change the rate and hence the slot position).
    for (;;) {
        const Cycles boundary = schedule_.epochStart(epoch_ + 1);
        const Cycles slot = std::max(nextSlot(), arrival);
        if (boundary <= slot) {
            transitionAt(boundary);
            continue;
        }
        // Waiting from arrival to slot start is rate-induced loss: the
        // paper's Waste cases (a) overset rate and (b) dummy in flight
        // both show up as slot - arrival here.
        const Cycles start = slot;
        if (start > arrival)
            counters_.noteWaste(start - arrival);

        const OramCompletion c = device_.submit(start, txn);
        counters_.noteRealAccess(c.done - start);
        counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
        lastCompletion_ = c.done;
        lastRealCompletion_ = c.done;
        return c;
    }
}

void
RateEnforcer::drainUntil(Cycles t)
{
    advanceTo(t);
}

bool
RateEnforcer::advanceBounded(Cycles t)
{
    // Same interleave as advanceTo(): when both a transition and a
    // dummy slot are due, the transition goes first — here that means
    // stopping, since the transition belongs to the serial barrier.
    for (;;) {
        const Cycles boundary = schedule_.epochStart(epoch_ + 1);
        const Cycles slot = nextSlot();

        if (boundary <= t && boundary <= slot)
            return false;
        if (slot < t) {
            const OramCompletion c =
                device_.submit(slot, OramTransaction::dummy());
            lastCompletion_ = c.done;
            counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
            continue;
        }
        return true;
    }
}

std::optional<OramCompletion>
RateEnforcer::serveBounded(Cycles arrival, const OramTransaction &txn)
{
    tcoram_assert(txn.kind == OramTransaction::Kind::Real,
                  "dummies are scheduled by the enforcer, not submitted");

    // The pre-arrival advance and the Req 3 charge run once per
    // transaction, at the same sequence point as serve(). Retries skip
    // both: serve()'s post-arrival loop never fires dummies, even when
    // a transition drops the rate so far that nextSlot() lands before
    // the arrival again, and re-entering the advance here would.
    if (!serveWasteCharged_) {
        if (!advanceBounded(arrival))
            return std::nullopt;
        if (arrival < lastRealCompletion_)
            counters_.noteWaste(rate_);
        serveWasteCharged_ = true;
    }

    const Cycles boundary = schedule_.epochStart(epoch_ + 1);
    const Cycles slot = std::max(nextSlot(), arrival);
    if (boundary <= slot)
        return std::nullopt;

    const Cycles start = slot;
    if (start > arrival)
        counters_.noteWaste(start - arrival);

    const OramCompletion c = device_.submit(start, txn);
    counters_.noteRealAccess(c.done - start);
    counters_.noteCrypto(c.cryptoBytes, c.cryptoCalls);
    lastCompletion_ = c.done;
    lastRealCompletion_ = c.done;
    serveWasteCharged_ = false;
    return c;
}

bool
RateEnforcer::drainBounded(Cycles t)
{
    return advanceBounded(t);
}

} // namespace tcoram::timing
