#include "timing/dispatch_policy.hh"

#include <limits>

#include "common/log.hh"

namespace tcoram::timing {

namespace {

/**
 * Shared scan: first entry (in RR order) whose head has arrived by the
 * last completion — O(1) under backlog — else the first entry holding
 * the minimum head arrival, which is the only eligible one then.
 */
std::size_t
roundRobinScan(const DispatchView &v)
{
    const std::size_t n = v.size();
    const Cycles lc = v.lastCompletion();
    Cycles min_arrival = std::numeric_limits<Cycles>::max();
    std::size_t min_pos = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const auto e = v.entry(k);
        if (e.headArrival <= lc)
            return k;
        if (e.headArrival < min_arrival) {
            min_arrival = e.headArrival;
            min_pos = k;
        }
    }
    return min_pos;
}

class RoundRobinPolicy final : public DispatchPolicy
{
  public:
    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::RoundRobin;
    }

    std::size_t
    pick(const DispatchView &v) override
    {
        return roundRobinScan(v);
    }
};

/**
 * Weight-w sessions take w consecutive slots before the cursor moves
 * on. The last-served session sits at scan position size()-1, so the
 * burst continuation is an O(1) check; expired or ineligible bursts
 * fall back to the round-robin scan.
 */
class WeightedRoundRobinPolicy final : public DispatchPolicy
{
  public:
    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::WeightedRoundRobin;
    }

    std::size_t
    pick(const DispatchView &v) override
    {
        const std::size_t n = v.size();
        if (lastSid_ != kNoSid) {
            const auto tail = v.entry(n - 1);
            if (tail.sid == lastSid_ && burst_ < std::max<unsigned>(
                    tail.weight, 1) && tail.headArrival <= v.lastCompletion()) {
                ++burst_;
                return n - 1;
            }
        }
        const std::size_t k = roundRobinScan(v);
        const auto e = v.entry(k);
        burst_ = (e.sid == lastSid_) ? burst_ + 1 : 1;
        lastSid_ = e.sid;
        return k;
    }

  private:
    static constexpr std::uint32_t kNoSid = 0xffffffffu;
    std::uint32_t lastSid_ = kNoSid;
    unsigned burst_ = 0;
};

/**
 * Earliest deadline first over the eligible set; ties go to scan
 * order, so the choice is deterministic. O(active) per pick.
 */
class EarliestDeadlinePolicy final : public DispatchPolicy
{
  public:
    DispatchPolicyKind
    kind() const override
    {
        return DispatchPolicyKind::EarliestDeadline;
    }

    std::size_t
    pick(const DispatchView &v) override
    {
        const std::size_t n = v.size();
        const Cycles lc = v.lastCompletion();
        constexpr Cycles kMax = std::numeric_limits<Cycles>::max();

        std::size_t best = n;
        Cycles best_deadline = kMax;
        Cycles min_arrival = kMax;
        std::size_t min_pos = 0;
        Cycles min_pos_deadline = kMax;
        for (std::size_t k = 0; k < n; ++k) {
            const auto e = v.entry(k);
            if (e.headArrival <= lc && e.deadline < best_deadline) {
                best = k;
                best_deadline = e.deadline;
            }
            if (e.headArrival < min_arrival ||
                (e.headArrival == min_arrival &&
                 e.deadline < min_pos_deadline)) {
                min_arrival = e.headArrival;
                min_pos = k;
                min_pos_deadline = e.deadline;
            }
        }
        return best < n ? best : min_pos;
    }
};

} // namespace

const char *
dispatchPolicyName(DispatchPolicyKind kind)
{
    switch (kind) {
      case DispatchPolicyKind::RoundRobin: return "rr";
      case DispatchPolicyKind::WeightedRoundRobin: return "wrr";
      case DispatchPolicyKind::EarliestDeadline: return "edf";
    }
    tcoram_panic("unknown dispatch policy kind");
}

std::vector<std::string>
dispatchPolicyNames()
{
    return {"rr", "wrr", "edf"};
}

std::optional<DispatchPolicyKind>
parseDispatchPolicy(std::string_view name)
{
    if (name == "rr")
        return DispatchPolicyKind::RoundRobin;
    if (name == "wrr")
        return DispatchPolicyKind::WeightedRoundRobin;
    if (name == "edf")
        return DispatchPolicyKind::EarliestDeadline;
    return std::nullopt;
}

std::unique_ptr<DispatchPolicy>
makeDispatchPolicy(DispatchPolicyKind kind)
{
    switch (kind) {
      case DispatchPolicyKind::RoundRobin:
        return std::make_unique<RoundRobinPolicy>();
      case DispatchPolicyKind::WeightedRoundRobin:
        return std::make_unique<WeightedRoundRobinPolicy>();
      case DispatchPolicyKind::EarliestDeadline:
        return std::make_unique<EarliestDeadlinePolicy>();
    }
    tcoram_panic("unknown dispatch policy kind");
}

} // namespace tcoram::timing
