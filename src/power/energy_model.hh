/**
 * @file
 * Processor energy model (paper §9.1.3-9.1.4, Table 2; 45 nm).
 * Dynamic energy is charged per component event; parasitic leakage is
 * charged for the L1 caches per cycle and the L2 per hit/refill, as
 * in the paper. The ORAM access energy composes AES + stash work per
 * 16-byte chunk plus DRAM-controller energy over the access latency,
 * reproducing the paper's ~984 nJ/access for its 4 GB configuration.
 */

#ifndef TCORAM_POWER_ENERGY_MODEL_HH
#define TCORAM_POWER_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace tcoram::power {

/** Table 2 energy coefficients, in nanojoules per event. */
struct EnergyCoefficients
{
    // Dynamic energy.
    double aluPerInst = 0.0148;     ///< ALU/FPU per instruction
    double regFileInt = 0.0032;     ///< integer register file / inst
    double regFileFp = 0.0048;      ///< FP register file / inst
    double fetchBuffer = 0.0003;    ///< 256-bit fetch buffer access
    double l1iHit = 0.162;          ///< L1I hit/refill (1 line)
    double l1dHit = 0.041;          ///< L1D hit (64 bits)
    double l1dRefill = 0.320;       ///< L1D refill (1 line)
    double l2HitRefill = 0.810;     ///< L2 hit/refill (1 line)
    double dramCtrlLine = 0.303;    ///< DRAM controller (1 line)
    // Parasitic leakage.
    double l1iLeakPerCycle = 0.018;
    double l1dLeakPerCycle = 0.019;
    double l2LeakPerHit = 0.767;
    // ORAM controller.
    double aesPerChunk = 0.416;     ///< per 16 B chunk @ 170 Gbps
    double stashPerChunk = 0.134;   ///< 128 KB SRAM rd/wr per 16 B
    double dramCtrlPerDramCycle = 0.076; ///< PARDIS peak power / cycle

    /** DRAM cycles per processor cycle (Table 1 rate matching). */
    double dramCyclesPerCpuCycle = 1.334;

    /**
     * Energy of one full ORAM access (paper's 984 nJ derivation):
     * chunks * (AES + stash) + DRAM cycles * controller energy.
     *
     * @param chunks 16-byte chunks moved (both directions)
     * @param latency_cycles access latency in processor cycles
     */
    double oramAccessNj(std::uint64_t chunks, Cycles latency_cycles) const;

    /**
     * Energy to move one cache line through the (insecure) DRAM
     * controller — §9.1.3's .303 nJ figure reproduced from the peak-
     * power-per-cycle coefficient.
     */
    double dramLineNj(std::uint64_t line_bytes = 64,
                      std::uint64_t bytes_per_dram_cycle = 16) const;
};

/** Event counts accumulated over a run. */
struct EnergyEvents
{
    std::uint64_t instructions = 0;
    std::uint64_t fpInstructions = 0;
    std::uint64_t fetchBufferAccesses = 0;
    std::uint64_t l1iHits = 0;
    std::uint64_t l1iRefills = 0;
    std::uint64_t l1dHits = 0;
    std::uint64_t l1dRefills = 0;
    std::uint64_t l2HitsRefills = 0;
    std::uint64_t dramLineTransfers = 0; ///< insecure path only
    std::uint64_t oramAccesses = 0;      ///< real + dummy
    Cycles cycles = 0;
};

class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyCoefficients &c = {}) : c_(c) {}

    /**
     * Total energy in nJ for @p ev.
     * @param oram_chunks chunks per ORAM access
     * @param oram_latency per-access latency (processor cycles)
     */
    double totalNj(const EnergyEvents &ev, std::uint64_t oram_chunks,
                   Cycles oram_latency) const;

    /** Energy excluding main-memory controllers (white-dashed bars). */
    double onChipNj(const EnergyEvents &ev) const;

    /** Average power in Watts at a 1 GHz clock. */
    double watts(const EnergyEvents &ev, std::uint64_t oram_chunks,
                 Cycles oram_latency) const;

    const EnergyCoefficients &coefficients() const { return c_; }

  private:
    EnergyCoefficients c_;
};

} // namespace tcoram::power

#endif // TCORAM_POWER_ENERGY_MODEL_HH
