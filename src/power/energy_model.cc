#include "power/energy_model.hh"

namespace tcoram::power {

double
EnergyCoefficients::oramAccessNj(std::uint64_t chunks,
                                 Cycles latency_cycles) const
{
    const double dram_cycles =
        static_cast<double>(latency_cycles) * dramCyclesPerCpuCycle;
    return static_cast<double>(chunks) * (aesPerChunk + stashPerChunk) +
           dram_cycles * dramCtrlPerDramCycle;
}

double
EnergyCoefficients::dramLineNj(std::uint64_t line_bytes,
                               std::uint64_t bytes_per_dram_cycle) const
{
    const double cycles = static_cast<double>(
        (line_bytes + bytes_per_dram_cycle - 1) / bytes_per_dram_cycle);
    return cycles * dramCtrlPerDramCycle;
}

double
EnergyModel::onChipNj(const EnergyEvents &ev) const
{
    double nj = 0.0;
    const double int_insts = static_cast<double>(ev.instructions) -
                             static_cast<double>(ev.fpInstructions);
    nj += static_cast<double>(ev.instructions) * c_.aluPerInst;
    nj += int_insts * c_.regFileInt;
    nj += static_cast<double>(ev.fpInstructions) * c_.regFileFp;
    nj += static_cast<double>(ev.fetchBufferAccesses) * c_.fetchBuffer;
    nj += static_cast<double>(ev.l1iHits + ev.l1iRefills) * c_.l1iHit;
    nj += static_cast<double>(ev.l1dHits) * c_.l1dHit;
    nj += static_cast<double>(ev.l1dRefills) * c_.l1dRefill;
    nj += static_cast<double>(ev.l2HitsRefills) * c_.l2HitRefill;
    // Parasitic leakage.
    nj += static_cast<double>(ev.cycles) *
          (c_.l1iLeakPerCycle + c_.l1dLeakPerCycle);
    nj += static_cast<double>(ev.l2HitsRefills) * c_.l2LeakPerHit;
    return nj;
}

double
EnergyModel::totalNj(const EnergyEvents &ev, std::uint64_t oram_chunks,
                     Cycles oram_latency) const
{
    double nj = onChipNj(ev);
    nj += static_cast<double>(ev.dramLineTransfers) * c_.dramCtrlLine;
    nj += static_cast<double>(ev.oramAccesses) *
          c_.oramAccessNj(oram_chunks, oram_latency);
    return nj;
}

double
EnergyModel::watts(const EnergyEvents &ev, std::uint64_t oram_chunks,
                   Cycles oram_latency) const
{
    if (ev.cycles == 0)
        return 0.0;
    // nJ / cycles at 1 GHz: 1 cycle = 1 ns, so nJ/ns = W.
    return totalNj(ev, oram_chunks, oram_latency) /
           static_cast<double>(ev.cycles);
}

} // namespace tcoram::power
