#include "workload/op_trace.hh"

#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/serial.hh"

namespace tcoram::workload {

std::vector<std::uint8_t>
encodeOpTrace(const OpTrace &trace)
{
    ByteWriter w;
    w.u32(kOpTraceMagic);
    w.u32(kOpTraceVersion);
    w.u32(trace.rankCount());
    for (const auto &rank_ops : trace.ops) {
        w.u64(rank_ops.size());
        for (const WorkloadOp &op : rank_ops) {
            w.u8(static_cast<std::uint8_t>(op.kind));
            w.u64(op.key);
            w.u32(op.valueBytes);
            w.u32(op.scanLen);
            w.u64(op.thinkCycles);
            w.b(op.checkpointAfter);
        }
    }
    return w.data();
}

std::string
decodeOpTrace(std::span<const std::uint8_t> bytes, OpTrace &out)
{
    ByteReader r(bytes);
    const std::uint32_t magic = r.u32();
    if (!r.ok() || magic != kOpTraceMagic)
        return "op trace: bad magic (not an op-trace file)";
    const std::uint32_t version = r.u32();
    if (!r.ok())
        return "op trace: truncated header";
    if (version != kOpTraceVersion) {
        std::ostringstream os;
        os << "op trace: unsupported version " << version << " (want "
           << kOpTraceVersion << ")";
        return os.str();
    }
    const std::uint32_t ranks = r.u32();
    out.ops.assign(ranks, {});
    for (std::uint32_t rank = 0; rank < ranks; ++rank) {
        const std::uint64_t count = r.u64();
        // An op record is at least 26 bytes; reject a length that the
        // remaining bytes cannot possibly satisfy before reserving.
        if (!r.ok() || count > r.remaining() / 26 + 1)
            return "op trace: truncated (rank header overruns file)";
        auto &rank_ops = out.ops[rank];
        rank_ops.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            WorkloadOp op;
            const std::uint8_t kind = r.u8();
            if (kind > static_cast<std::uint8_t>(WorkloadOpKind::End))
                return "op trace: corrupt record (unknown op kind)";
            op.kind = static_cast<WorkloadOpKind>(kind);
            op.key = r.u64();
            op.valueBytes = r.u32();
            op.scanLen = r.u32();
            op.thinkCycles = r.u64();
            op.checkpointAfter = r.b();
            rank_ops.push_back(op);
        }
    }
    if (!r.ok())
        return "op trace: truncated (record decode overran file)";
    if (!r.atEnd())
        return "op trace: trailing bytes after the last record";
    return {};
}

std::string
writeOpTrace(const std::string &path, const OpTrace &trace)
{
    const std::vector<std::uint8_t> bytes = encodeOpTrace(trace);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return "op trace: cannot open '" + path + "' for writing";
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
        return "op trace: short write to '" + path + "'";
    return {};
}

std::string
readOpTrace(const std::string &path, OpTrace &out)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return "op trace: cannot open '" + path + "'";
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char *>(bytes.data()), size);
    if (!in)
        return "op trace: short read from '" + path + "'";
    return decodeOpTrace(bytes, out);
}

OpTrace
recordOpTrace(WorkloadSource &source, std::uint64_t maxOpsPerRank)
{
    OpTrace trace;
    trace.ops.assign(source.ranks(), {});
    for (std::uint32_t rank = 0; rank < source.ranks(); ++rank) {
        auto &rank_ops = trace.ops[rank];
        for (;;) {
            const WorkloadOp op = source.getNext(rank);
            if (op.kind == WorkloadOpKind::End)
                break;
            rank_ops.push_back(op);
            tcoram_assert(rank_ops.size() <= maxOpsPerRank,
                          "op trace: method '", source.method(),
                          "' exceeded ", maxOpsPerRank,
                          " ops on rank ", rank, " without ending");
        }
    }
    return trace;
}

} // namespace tcoram::workload
