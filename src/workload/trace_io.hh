/**
 * @file
 * Trace persistence: record a TraceSource's output to a compact
 * binary file and replay it later. Lets downstream users drive the
 * simulator with traces captured from real programs (e.g. Pin/
 * DynamoRIO tools) instead of the synthetic suite, and makes
 * experiment inputs exactly reproducible across machines.
 *
 * File layout: 16-byte header (magic, version, record count) followed
 * by fixed-width little-endian records.
 */

#ifndef TCORAM_WORKLOAD_TRACE_IO_HH
#define TCORAM_WORKLOAD_TRACE_IO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "workload/generators.hh"

namespace tcoram::workload {

/** Capture @p count records from @p source into @p path. */
void recordTrace(TraceSource &source, std::size_t count,
                 const std::string &path);

/** Write an explicit op list (for tooling/tests). */
void writeTrace(const std::vector<TraceOp> &ops, const std::string &path);

/** Load a whole trace file into memory (fatal on malformed input). */
std::vector<TraceOp> readTrace(const std::string &path);

/**
 * TraceSource over a recorded file. The ops are replayed in order
 * and the source loops back to the start when exhausted (sources are
 * infinite by contract).
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);

    TraceOp next() override;
    const std::string &name() const override { return name_; }

    std::size_t size() const { return ops_.size(); }
    /** Times the replay wrapped back to the first record. */
    std::uint64_t loops() const { return loops_; }

  private:
    std::vector<TraceOp> ops_;
    std::size_t idx_ = 0;
    std::uint64_t loops_ = 0;
    std::string name_;
};

} // namespace tcoram::workload

#endif // TCORAM_WORKLOAD_TRACE_IO_HH
