/**
 * @file
 * The pluggable workload plane: a codes-workload-style generator API.
 * A WorkloadSource is loaded from typed parameters and then streams
 * typed WorkloadOps per RANK (client) via getNext(rank) — get/put/
 * scan/think-time records closed by an explicit End op — so the same
 * scheduler harness replays synthetic profiles, recorded trace files
 * and product-shaped KV client traffic interchangeably.
 *
 * Contracts every method must honor:
 *  - per-rank determinism: rank r's op stream is a pure function of
 *    (params, r). Interleaving getNext() calls across ranks in any
 *    order never changes any single rank's stream (each rank owns its
 *    own mixSeed(seed, rank)-derived generator state);
 *  - End is terminal and idempotent: once a rank has returned End it
 *    returns End forever;
 *  - sources are cheap to re-load: observing a stream (recording it,
 *    measuring burst depth) consumes a throwaway instance, never the
 *    one driving a run.
 *
 * Methods are registered in the string-keyed WorkloadRegistry
 * (mirroring dram::BackendRegistry); built-ins:
 *
 *   "synthetic" adapter over the Profile/SyntheticTrace generators
 *   "trace"     versioned binary op-trace replayer (workload/op_trace.hh)
 *   "kv"        skewed-popularity (Zipf) closed-loop KV client
 *   "daly"      checkpoint workload on Daly's optimum interval
 */

#ifndef TCORAM_WORKLOAD_WORKLOAD_SOURCE_HH
#define TCORAM_WORKLOAD_WORKLOAD_SOURCE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace tcoram::workload {

/** Kind of record leaving a workload source. */
enum class WorkloadOpKind : std::uint8_t
{
    Get,   ///< read `key`
    Put,   ///< write `valueBytes` bytes under `key`
    Scan,  ///< read `scanLen` consecutive keys starting at `key`
    Think, ///< client-side delay of `thinkCycles` before the next op
    End,   ///< this rank's stream is over (terminal, repeats forever)
};

const char *toString(WorkloadOpKind kind);

/** One typed workload record. */
struct WorkloadOp
{
    WorkloadOpKind kind = WorkloadOpKind::End;
    std::uint64_t key = 0;
    std::uint32_t valueBytes = 0;
    std::uint32_t scanLen = 1;
    std::uint64_t thinkCycles = 0;
    /**
     * Snapshot marker: the harness should checkpoint after completing
     * this op (the "daly" method places these on its computed optimum
     * interval; every other method leaves them false).
     */
    bool checkpointAfter = false;

    bool
    operator==(const WorkloadOp &o) const
    {
        return kind == o.kind && key == o.key &&
               valueBytes == o.valueBytes && scanLen == o.scanLen &&
               thinkCycles == o.thinkCycles &&
               checkpointAfter == o.checkpointAfter;
    }

    static WorkloadOp
    get(std::uint64_t key)
    {
        WorkloadOp op;
        op.kind = WorkloadOpKind::Get;
        op.key = key;
        return op;
    }

    static WorkloadOp
    put(std::uint64_t key, std::uint32_t value_bytes)
    {
        WorkloadOp op;
        op.kind = WorkloadOpKind::Put;
        op.key = key;
        op.valueBytes = value_bytes;
        return op;
    }

    static WorkloadOp
    scan(std::uint64_t key, std::uint32_t len)
    {
        WorkloadOp op;
        op.kind = WorkloadOpKind::Scan;
        op.key = key;
        op.scanLen = len;
        return op;
    }

    static WorkloadOp
    think(std::uint64_t cycles)
    {
        WorkloadOp op;
        op.kind = WorkloadOpKind::Think;
        op.thinkCycles = cycles;
        return op;
    }

    static WorkloadOp
    end()
    {
        return WorkloadOp{};
    }
};

/**
 * Typed load() parameters. One flat struct shared by every method —
 * each method reads the fields it understands and ignores the rest,
 * and parseWorkloadSpec() rejects keys no method defines.
 */
struct WorkloadParams
{
    /** Registry key: "synthetic", "trace", "kv", "daly", ... */
    std::string method = "synthetic";
    std::uint64_t seed = 1;
    /** Independent client streams (sessions, in harness terms). */
    std::uint32_t ranks = 4;
    /** Access ops (get/put/scan) per rank before End. */
    std::uint64_t opsPerRank = 256;

    // --- "synthetic" ---
    /** Spec-suite profile name (workload/spec_suite.hh). */
    std::string profile = "astar";

    // --- "trace" ---
    /** Op-trace file recorded by workload/op_trace.hh. */
    std::string path;

    // --- "kv" ---
    std::uint64_t keySpace = 4096;
    /** Zipf skew in [0, 1): 0 = uniform popularity. */
    double zipfTheta = 0.99;
    /** Fraction of access ops that are gets. */
    double getFraction = 0.9;
    /** Fraction of access ops that are scans (rest are puts). */
    double scanFraction = 0.0;
    std::uint32_t scanLen = 4;
    /** Mean put value size; draws span [1, 2*valueBytes). */
    std::uint32_t valueBytes = 48;
    /** Mean think time between access ops (0 = no think ops). */
    std::uint64_t thinkCycles = 0;

    // --- "daly" ---
    /** Mean time to interrupt M, in cycles. */
    double mttiCycles = 1e8;
    /** Checkpoint write cost delta, in cycles. */
    std::uint64_t checkpointCycles = 200'000;
    /** Modeled cost of one work op, for interval conversion. */
    std::uint64_t opCycles = 1000;
};

/**
 * A loaded workload: per-rank deterministic op streams. See the file
 * comment for the contracts.
 */
class WorkloadSource
{
  public:
    explicit WorkloadSource(const WorkloadParams &params)
        : params_(params)
    {
    }
    virtual ~WorkloadSource() = default;

    virtual const char *method() const = 0;
    const WorkloadParams &params() const { return params_; }
    std::uint32_t ranks() const { return params_.ranks; }

    /** Next op of rank @p rank's stream (End forever once ended). */
    virtual WorkloadOp getNext(std::uint32_t rank) = 0;

    /**
     * Ops between the snapshot markers this source emits (0 = the
     * method places no checkpointAfter marks). The "daly" method
     * reports its computed optimum interval here.
     */
    virtual std::uint64_t checkpointIntervalOps() const { return 0; }

  protected:
    WorkloadParams params_;
};

/**
 * String-keyed method registry, mirroring dram::BackendRegistry:
 * built-ins register in the singleton's constructor, load() is fatal
 * on an unknown method (naming it), methods() lists sorted keys for
 * --list-backends.
 */
class WorkloadRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<WorkloadSource>(
        const WorkloadParams &)>;

    static WorkloadRegistry &instance();

    void registerMethod(const std::string &method, Factory factory);
    /** Instantiate params.method (fatal on an unknown method). */
    std::unique_ptr<WorkloadSource> load(const WorkloadParams &params) const;
    bool contains(const std::string &method) const;
    /** Sorted registered method names. */
    std::vector<std::string> methods() const;

  private:
    WorkloadRegistry(); ///< registers the built-in methods

    mutable std::mutex mutex_;
    std::unordered_map<std::string, Factory> entries_;
};

/** Registry-backed one-liner. */
std::unique_ptr<WorkloadSource> loadWorkload(const WorkloadParams &params);

/**
 * Parse "method:key=val,key=val,..." (params may be empty: "kv").
 * Fatal — naming the offending spec and key — on an unknown method,
 * an unknown key or a malformed value. Keys: seed, ranks, ops,
 * profile, path, keys, theta, get, scan, scanlen, value, think,
 * mtti, delta, opcycles.
 */
WorkloadParams parseWorkloadSpec(const std::string &spec);

/**
 * Observed open-loop burst depth of the op stream: the longest run of
 * access ops with no intervening think time on any single rank, times
 * the rank count (every rank can burst concurrently), clamped to
 * [1, cap]. Loads a throwaway source from @p params and scans up to
 * @p scanOps ops per rank. This is what the `highwater` eviction
 * auto-tuner sizes `--eviction-budget` from.
 */
std::uint32_t observedBurstDepth(const WorkloadParams &params,
                                 std::uint32_t cap,
                                 std::uint64_t scanOps = 2048);

} // namespace tcoram::workload

#endif // TCORAM_WORKLOAD_WORKLOAD_SOURCE_HH
