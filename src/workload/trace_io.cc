#include "workload/trace_io.hh"

#include <cstdio>
#include <cstring>

#include "common/log.hh"

namespace tcoram::workload {

namespace {

constexpr std::uint32_t kMagic = 0x54434f52; // "TCOR"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordBytes = 4 + 4 + 8 + 1;

void
put32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
put64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

void
writeTrace(const std::vector<TraceOp> &ops, const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(16 + ops.size() * kRecordBytes);
    put32(bytes, kMagic);
    put32(bytes, kVersion);
    put64(bytes, ops.size());
    for (const TraceOp &op : ops) {
        put32(bytes, op.gapInsts);
        put32(bytes, op.extraGapCycles);
        put64(bytes, op.addr);
        bytes.push_back(static_cast<std::uint8_t>(op.kind));
    }

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        tcoram_fatal("cannot open trace file for writing: ", path);
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size())
        tcoram_fatal("short write to trace file: ", path);
}

void
recordTrace(TraceSource &source, std::size_t count, const std::string &path)
{
    std::vector<TraceOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        ops.push_back(source.next());
    writeTrace(ops, path);
}

std::vector<TraceOp>
readTrace(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        tcoram_fatal("cannot open trace file: ", path);
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len));
    const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size())
        tcoram_fatal("short read from trace file: ", path);

    if (bytes.size() < 16 || get32(&bytes[0]) != kMagic)
        tcoram_fatal("not a tcoram trace file: ", path);
    if (get32(&bytes[4]) != kVersion)
        tcoram_fatal("unsupported trace version in ", path);
    const std::uint64_t count = get64(&bytes[8]);
    if (bytes.size() != 16 + count * kRecordBytes)
        tcoram_fatal("truncated trace file: ", path);

    std::vector<TraceOp> ops;
    ops.reserve(count);
    const std::uint8_t *p = bytes.data() + 16;
    for (std::uint64_t i = 0; i < count; ++i) {
        TraceOp op;
        op.gapInsts = get32(p);
        op.extraGapCycles = get32(p + 4);
        op.addr = get64(p + 8);
        const std::uint8_t kind = p[16];
        if (kind > static_cast<std::uint8_t>(OpKind::Store))
            tcoram_fatal("corrupt op kind in ", path);
        op.kind = static_cast<OpKind>(kind);
        ops.push_back(op);
        p += kRecordBytes;
    }
    return ops;
}

FileTrace::FileTrace(const std::string &path)
    : ops_(readTrace(path)), name_("file:" + path)
{
    tcoram_assert(!ops_.empty(), "empty trace file: ", path);
}

TraceOp
FileTrace::next()
{
    const TraceOp op = ops_[idx_];
    ++idx_;
    if (idx_ == ops_.size()) {
        idx_ = 0;
        ++loops_;
    }
    return op;
}

} // namespace tcoram::workload
