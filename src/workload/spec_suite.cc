#include "workload/spec_suite.hh"

#include "common/log.hh"

namespace tcoram::workload {

namespace {

/**
 * Helper: configure a phase around a target LLC-miss interval. A hot
 * region of @p hot_bytes (sized to stay LLC-resident) absorbs most
 * accesses; the remaining cold fraction touches the full working set,
 * which dwarfs the LLC, so each cold access is an LLC miss. The miss
 * interval in instructions is then roughly
 *     N  =  insts_per_mem_op / cold_fraction.
 */
void
tunePressure(Phase &ph, double insts_per_mem_op, double target_miss_interval,
             std::uint64_t hot_bytes = 512 * 1024)
{
    ph.instsPerMemOp = insts_per_mem_op;
    const double cold = insts_per_mem_op / target_miss_interval;
    tcoram_assert(cold < 1.0, "miss interval below one memop gap");
    ph.hotWeight = 1.0 - cold;
    ph.hotFraction =
        static_cast<double>(hot_bytes) /
        static_cast<double>(ph.workingSetBytes);
    if (ph.hotFraction > 1.0)
        ph.hotFraction = 1.0;
}

/** Memory-bound: pointer-chasing over a 64 MB graph (N ~ 70). */
Profile
mcf()
{
    Profile p;
    p.name = "mcf";
    Phase ph;
    ph.workingSetBytes = 64ull << 20;
    ph.mix = {0.1, 0.1, 0.3, 0.5};
    ph.storeFraction = 0.25;
    ph.burstProb = 0.05;
    ph.extraCyclesPerInst = 0.3;
    tunePressure(ph, 3.0, 70.0);
    p.phases = {ph};
    return p;
}

/** Moderate: discrete-event simulator, scattered heap (N ~ 200). */
Profile
omnetpp()
{
    Profile p;
    p.name = "omnetpp";
    Phase ph;
    ph.workingSetBytes = 24ull << 20;
    ph.mix = {0.2, 0.2, 0.4, 0.2};
    ph.storeFraction = 0.35;
    ph.burstProb = 0.03;
    ph.extraCyclesPerInst = 0.2;
    tunePressure(ph, 5.0, 200.0);
    p.phases = {ph};
    return p;
}

/** Memory-bound streaming over a large array (N ~ 100). */
Profile
libquantum()
{
    Profile p;
    p.name = "libquantum";
    Phase ph;
    ph.workingSetBytes = 32ull << 20;
    ph.mix = {0.9, 0.1, 0.0, 0.0};
    ph.storeFraction = 0.45;
    ph.extraCyclesPerInst = 0.1;
    ph.instsPerFetchJump = 2000.0;
    tunePressure(ph, 4.0, 100.0);
    p.phases = {ph};
    return p;
}

/** Compression: alternating scan and sort phases (N ~ 400). */
Profile
bzip2()
{
    Profile p;
    p.name = "bzip2";
    Phase scan;
    scan.instructions = 600'000;
    scan.workingSetBytes = 8ull << 20;
    scan.mix = {0.6, 0.2, 0.2, 0.0};
    scan.storeFraction = 0.4;
    scan.extraCyclesPerInst = 0.15;
    tunePressure(scan, 6.0, 350.0);
    Phase sort;
    sort.instructions = 400'000;
    sort.workingSetBytes = 4ull << 20;
    sort.mix = {0.1, 0.2, 0.7, 0.0};
    sort.storeFraction = 0.3;
    sort.extraCyclesPerInst = 0.25;
    tunePressure(sort, 9.0, 500.0);
    p.phases = {scan, sort};
    return p;
}

/** Compute-bound: the profile-HMM table fits the LLC (N huge). */
Profile
hmmer()
{
    Profile p;
    p.name = "hmmer";
    Phase ph;
    ph.workingSetBytes = 256ull << 10;
    ph.instsPerMemOp = 5.0;
    ph.mix = {0.7, 0.3, 0.0, 0.0};
    ph.storeFraction = 0.2;
    ph.extraCyclesPerInst = 0.25;
    p.phases = {ph};
    return p;
}

/** Pathfinding; input-dependent (rivers input is the default). */
Profile
astar()
{
    return astarRivers();
}

/** Compiler: parse then optimize, branchy code (N ~ 500). */
Profile
gcc()
{
    Profile p;
    p.name = "gcc";
    Phase parse;
    parse.instructions = 500'000;
    parse.workingSetBytes = 3ull << 20;
    parse.mix = {0.4, 0.1, 0.4, 0.1};
    parse.codeBytes = 512 * 1024;
    parse.instsPerFetchJump = 120.0;
    parse.extraCyclesPerInst = 0.15;
    tunePressure(parse, 6.0, 450.0);
    Phase optimize;
    optimize.instructions = 500'000;
    optimize.workingSetBytes = 12ull << 20;
    optimize.mix = {0.2, 0.2, 0.5, 0.1};
    optimize.codeBytes = 512 * 1024;
    optimize.instsPerFetchJump = 150.0;
    optimize.extraCyclesPerInst = 0.2;
    tunePressure(optimize, 8.0, 550.0);
    p.phases = {parse, optimize};
    return p;
}

/** Go engine: erratic, bursty, mostly cache-resident (N ~ 700). */
Profile
gobmk()
{
    Profile p;
    p.name = "gobmk";
    Phase think;
    think.instructions = 300'000;
    think.workingSetBytes = 4ull << 20;
    think.mix = {0.3, 0.2, 0.5, 0.0};
    think.burstProb = 0.08;
    think.burstLen = 6;
    think.codeBytes = 1024 * 1024;
    think.instsPerFetchJump = 100.0;
    think.extraCyclesPerInst = 0.25;
    tunePressure(think, 7.0, 800.0);
    Phase read;
    read.instructions = 160'000;
    read.workingSetBytes = 6ull << 20;
    read.mix = {0.3, 0.2, 0.5, 0.0};
    read.codeBytes = 1024 * 1024;
    read.instsPerFetchJump = 100.0;
    read.extraCyclesPerInst = 0.15;
    tunePressure(read, 10.0, 500.0);
    p.phases = {think, read};
    return p;
}

/** Chess: compute-bound with rare spills (N ~ 2500). */
Profile
sjeng()
{
    Profile p;
    p.name = "sjeng";
    Phase ph;
    ph.workingSetBytes = 8ull << 20;
    ph.mix = {0.2, 0.2, 0.6, 0.0};
    ph.storeFraction = 0.25;
    ph.extraCyclesPerInst = 0.3;
    ph.codeBytes = 256 * 1024;
    ph.instsPerFetchJump = 200.0;
    tunePressure(ph, 8.0, 2500.0);
    p.phases = {ph};
    return p;
}

/**
 * Video encoder: long compute-bound stretch on a cache-resident
 * frame, then a memory-bound stretch (reference-frame traffic,
 * N ~ 150). This is the phase change Figure 7 (e8) keys on.
 */
Profile
h264ref()
{
    Profile p;
    p.name = "h264";
    Phase encode;
    encode.instructions = 2'400'000;
    encode.workingSetBytes = 512ull << 10; // fits in the 1 MB LLC
    encode.instsPerMemOp = 5.0;
    encode.mix = {0.8, 0.2, 0.0, 0.0};
    encode.storeFraction = 0.3;
    encode.extraCyclesPerInst = 0.35;
    Phase reference;
    reference.instructions = 1'600'000;
    reference.workingSetBytes = 16ull << 20;
    reference.mix = {0.5, 0.3, 0.2, 0.0};
    reference.storeFraction = 0.3;
    reference.extraCyclesPerInst = 0.1;
    tunePressure(reference, 5.0, 150.0);
    p.phases = {encode, reference};
    return p;
}

/** Perl interpreter; input-dependent (diffmail default). */
Profile
perlbench()
{
    return perlbenchDiffmail();
}

} // namespace

Profile
perlbenchDiffmail()
{
    // Fig. 2 top, "diffmail": frequent ORAM traffic — string/hash
    // churn over a heap larger than the LLC (N ~ 600).
    Profile p;
    p.name = "perl";
    Phase ph;
    ph.workingSetBytes = 10ull << 20;
    ph.mix = {0.3, 0.1, 0.5, 0.1};
    ph.storeFraction = 0.35;
    ph.codeBytes = 768 * 1024;
    ph.instsPerFetchJump = 150.0;
    ph.extraCyclesPerInst = 0.2;
    tunePressure(ph, 5.0, 600.0);
    p.phases = {ph};
    return p;
}

Profile
perlbenchSplitmail()
{
    // Fig. 2 top, "splitmail": roughly 80x fewer ORAM accesses — the
    // heap mostly fits, with occasional cold spills (N ~ 50,000).
    Profile p = perlbenchDiffmail();
    p.name = "perl.splitmail";
    Phase &ph = p.phases[0];
    ph.workingSetBytes = 8ull << 20;
    // Smaller script: the interpreter loop fits the L1I and the hot
    // data fits the LLC with slack, so ORAM traffic is rare cold
    // spills only — giving the paper's ~80x rate gap vs diffmail.
    ph.codeBytes = 32 * 1024;
    ph.instsPerFetchJump = 400.0;
    tunePressure(ph, 7.0, 50'000.0, 256 * 1024);
    return p;
}

Profile
astarRivers()
{
    // Fig. 2 bottom, "rivers": a single steady rate suffices (N ~ 300).
    Profile p;
    p.name = "astar";
    Phase ph;
    ph.workingSetBytes = 6ull << 20;
    ph.mix = {0.2, 0.2, 0.3, 0.3};
    ph.storeFraction = 0.3;
    ph.extraCyclesPerInst = 0.12;
    tunePressure(ph, 5.0, 300.0);
    p.phases = {ph};
    return p;
}

Profile
astarBigLakes()
{
    // Fig. 2 bottom, "biglakes": the rate swings by an order of
    // magnitude as the search opens and closes large frontiers.
    Profile p;
    p.name = "astar.biglakes";
    Phase open;
    open.instructions = 240'000;
    open.workingSetBytes = 20ull << 20;
    open.mix = {0.1, 0.2, 0.4, 0.3};
    tunePressure(open, 4.0, 90.0);
    Phase refine;
    refine.instructions = 500'000;
    refine.workingSetBytes = 2ull << 20;
    refine.mix = {0.3, 0.3, 0.4, 0.0};
    refine.extraCyclesPerInst = 0.2;
    tunePressure(refine, 7.0, 3000.0);
    Phase flood;
    flood.instructions = 160'000;
    flood.workingSetBytes = 32ull << 20;
    flood.mix = {0.2, 0.1, 0.4, 0.3};
    tunePressure(flood, 3.5, 80.0);
    p.phases = {open, refine, flood};
    return p;
}

Profile
specProfile(const std::string &name)
{
    if (name == "mcf")
        return mcf();
    if (name == "omnet" || name == "omnetpp")
        return omnetpp();
    if (name == "libq" || name == "libquantum")
        return libquantum();
    if (name == "bzip2")
        return bzip2();
    if (name == "hmmer")
        return hmmer();
    if (name == "astar")
        return astar();
    if (name == "gcc")
        return gcc();
    if (name == "gobmk")
        return gobmk();
    if (name == "sjeng")
        return sjeng();
    if (name == "h264" || name == "h264ref")
        return h264ref();
    if (name == "perl" || name == "perlbench")
        return perlbench();
    tcoram_fatal("unknown benchmark: ", name);
}

std::vector<std::string>
specSuiteNames()
{
    return {"mcf",  "omnet", "libq",  "bzip2", "hmmer", "astar",
            "gcc",  "gobmk", "sjeng", "h264",  "perl"};
}

} // namespace tcoram::workload
