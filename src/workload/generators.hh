/**
 * @file
 * Trace generation: turns a Profile into an infinite stream of timed
 * memory operations that the trace-driven core consumes.
 */

#ifndef TCORAM_WORKLOAD_GENERATORS_HH
#define TCORAM_WORKLOAD_GENERATORS_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/profile.hh"

namespace tcoram::workload {

/** Kind of access leaving the generator. */
enum class OpKind
{
    InstFetch,
    Load,
    Store,
};

/** One trace record: an instruction gap followed by a memory access. */
struct TraceOp
{
    /** Instructions retired before this access (>= 0). */
    std::uint32_t gapInsts = 0;
    /** Extra stall cycles in the gap beyond 1 cycle/instruction. */
    std::uint32_t extraGapCycles = 0;
    Addr addr = 0;
    OpKind kind = OpKind::Load;
};

/** Abstract trace source. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    /** Produce the next record. Sources are infinite. */
    virtual TraceOp next() = 0;
    virtual const std::string &name() const = 0;
};

/** Profile-driven synthetic source. */
class SyntheticTrace : public TraceSource
{
  public:
    SyntheticTrace(const Profile &profile, std::uint64_t seed);

    TraceOp next() override;
    const std::string &name() const override { return profile_.name; }

    /** Current phase index (wraps when the schedule loops). */
    std::size_t phaseIndex() const { return phaseIdx_; }

  private:
    const Phase &phase() const { return profile_.phases[phaseIdx_]; }
    void advancePhase(InstCount insts);
    Addr dataAddr();

    Profile profile_;
    Rng rng_;
    std::size_t phaseIdx_ = 0;
    InstCount instsLeftInPhase_;
    InstCount instsSinceFetchJump_ = 0;

    // Pattern state.
    Addr streamPos_ = 0;
    Addr coldStreamPos_ = 0;
    Addr stridePos_ = 0;
    Addr chasePos_ = 0;
    Addr fetchPos_ = 0;
    unsigned burstLeft_ = 0;
};

} // namespace tcoram::workload

#endif // TCORAM_WORKLOAD_GENERATORS_HH
