/**
 * @file
 * The evaluation suite: synthetic stand-ins for the 11 SPEC-int
 * benchmarks the paper reports (Figure 6 x-axis), plus the alternate
 * inputs used in Figure 2 (perlbench diffmail/splitmail, astar
 * rivers/biglakes). Parameters are chosen to reproduce each
 * benchmark's ORAM pressure class against a 1 MB LLC — see the
 * substitution table in DESIGN.md §4.
 */

#ifndef TCORAM_WORKLOAD_SPEC_SUITE_HH
#define TCORAM_WORKLOAD_SPEC_SUITE_HH

#include <string>
#include <vector>

#include "workload/profile.hh"

namespace tcoram::workload {

/** Profile for one named benchmark (fatal on unknown name). */
Profile specProfile(const std::string &name);

/** The 11 Figure-6 benchmark names, in the paper's order. */
std::vector<std::string> specSuiteNames();

/** Alternate-input profiles for Figure 2. */
Profile perlbenchDiffmail();
Profile perlbenchSplitmail();
Profile astarRivers();
Profile astarBigLakes();

} // namespace tcoram::workload

#endif // TCORAM_WORKLOAD_SPEC_SUITE_HH
