#include "workload/workload_source.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "common/log.hh"
#include "common/rng.hh"
#include "workload/generators.hh"
#include "workload/op_trace.hh"
#include "workload/spec_suite.hh"

namespace tcoram::workload {

const char *
toString(WorkloadOpKind kind)
{
    switch (kind) {
    case WorkloadOpKind::Get:
        return "get";
    case WorkloadOpKind::Put:
        return "put";
    case WorkloadOpKind::Scan:
        return "scan";
    case WorkloadOpKind::Think:
        return "think";
    case WorkloadOpKind::End:
        return "end";
    }
    return "?";
}

namespace {

/**
 * Adapter over the Profile/SyntheticTrace generators: each TraceOp
 * becomes an optional Think (the instruction gap) followed by one
 * access op — loads and fetches read, stores write. Keys are 64-byte
 * line ids, the granularity the LLC-miss stream hits the ORAM at.
 */
class SyntheticWorkload : public WorkloadSource
{
  public:
    explicit SyntheticWorkload(const WorkloadParams &params)
        : WorkloadSource(params)
    {
        const Profile profile = specProfile(params_.profile);
        states_.reserve(params_.ranks);
        for (std::uint32_t rank = 0; rank < params_.ranks; ++rank)
            states_.emplace_back(profile, mixSeed(params_.seed, rank));
    }

    const char *method() const override { return "synthetic"; }

    WorkloadOp
    getNext(std::uint32_t rank) override
    {
        tcoram_assert(rank < states_.size(), "unknown rank ", rank);
        RankState &st = states_[rank];
        if (st.emitted >= params_.opsPerRank)
            return WorkloadOp::end();
        if (st.pending) {
            const WorkloadOp op = *st.pending;
            st.pending.reset();
            ++st.emitted;
            return op;
        }
        const TraceOp t = st.trace.next();
        WorkloadOp access =
            t.kind == OpKind::Store
                ? WorkloadOp::put(t.addr >> 6, params_.valueBytes)
                : WorkloadOp::get(t.addr >> 6);
        const std::uint64_t gap =
            static_cast<std::uint64_t>(t.gapInsts) + t.extraGapCycles;
        if (gap > 0) {
            st.pending = access;
            return WorkloadOp::think(gap);
        }
        ++st.emitted;
        return access;
    }

  private:
    struct RankState
    {
        RankState(const Profile &profile, std::uint64_t seed)
            : trace(profile, seed)
        {
        }

        SyntheticTrace trace;
        std::uint64_t emitted = 0;
        std::optional<WorkloadOp> pending;
    };

    std::vector<RankState> states_;
};

/** Replays a recorded op-trace file (workload/op_trace.hh). */
class TraceReplayWorkload : public WorkloadSource
{
  public:
    TraceReplayWorkload(const WorkloadParams &params, OpTrace trace)
        : WorkloadSource(params), trace_(std::move(trace)),
          cursors_(trace_.rankCount(), 0)
    {
        // The file's rank count IS the source's rank count.
        params_.ranks = trace_.rankCount();
    }

    const char *method() const override { return "trace"; }

    WorkloadOp
    getNext(std::uint32_t rank) override
    {
        tcoram_assert(rank < cursors_.size(), "unknown rank ", rank);
        const auto &ops = trace_.ops[rank];
        if (cursors_[rank] >= ops.size())
            return WorkloadOp::end();
        return ops[cursors_[rank]++];
    }

  private:
    OpTrace trace_;
    std::vector<std::size_t> cursors_;
};

/**
 * Skewed-popularity closed-loop KV client: Zipf(theta) keys over
 * [0, keySpace), a get/scan/put split, value sizes spanning
 * [1, 2*valueBytes) so both inline and spilled records are exercised,
 * and optional geometric think times between access ops.
 *
 * The Zipf draw is the standard Gray et al. inverse-CDF
 * approximation: one uniform draw per key, no per-key tables beyond
 * the zeta normalizer computed once at load.
 */
class KvClientWorkload : public WorkloadSource
{
  public:
    explicit KvClientWorkload(const WorkloadParams &params)
        : WorkloadSource(params)
    {
        tcoram_assert(params_.keySpace >= 1, "kv workload: empty key space");
        tcoram_assert(params_.zipfTheta >= 0.0 && params_.zipfTheta < 1.0,
                      "kv workload: zipf theta ", params_.zipfTheta,
                      " outside [0, 1)");
        tcoram_assert(params_.getFraction >= 0.0 &&
                          params_.getFraction + params_.scanFraction <= 1.0,
                      "kv workload: get + scan fractions exceed 1");
        const double theta = params_.zipfTheta;
        const auto n = static_cast<double>(params_.keySpace);
        if (theta > 0.0 && params_.keySpace > 1) {
            zetan_ = 0.0;
            for (std::uint64_t i = 1; i <= params_.keySpace; ++i)
                zetan_ += 1.0 / std::pow(static_cast<double>(i), theta);
            const double zeta2 = 1.0 + std::pow(0.5, theta);
            alpha_ = 1.0 / (1.0 - theta);
            eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) /
                   (1.0 - zeta2 / zetan_);
        }
        states_.reserve(params_.ranks);
        for (std::uint32_t rank = 0; rank < params_.ranks; ++rank)
            states_.push_back(
                RankState{Rng(mixSeed(params_.seed, 0x6b76'0000ull + rank))});
    }

    const char *method() const override { return "kv"; }

    WorkloadOp
    getNext(std::uint32_t rank) override
    {
        tcoram_assert(rank < states_.size(), "unknown rank ", rank);
        RankState &st = states_[rank];
        if (st.emitted >= params_.opsPerRank)
            return WorkloadOp::end();
        if (params_.thinkCycles > 0 && st.thinkNext) {
            st.thinkNext = false;
            return WorkloadOp::think(
                st.rng.nextGeometric(
                    static_cast<double>(params_.thinkCycles)));
        }
        st.thinkNext = true;
        ++st.emitted;
        // Fixed draw order (selector, key, size) keeps the stream a
        // pure function of (params, rank) whatever the op mix.
        const double sel = st.rng.nextDouble();
        const std::uint64_t key = zipfDraw(st.rng);
        if (sel < params_.getFraction)
            return WorkloadOp::get(key);
        if (sel < params_.getFraction + params_.scanFraction) {
            const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
                params_.scanLen, params_.keySpace - key));
            return WorkloadOp::scan(key, std::max<std::uint32_t>(len, 1));
        }
        const std::uint32_t bytes =
            1 + static_cast<std::uint32_t>(st.rng.nextBounded(
                    std::max<std::uint64_t>(
                        2ull * params_.valueBytes - 1, 1)));
        return WorkloadOp::put(key, bytes);
    }

  private:
    struct RankState
    {
        Rng rng;
        std::uint64_t emitted = 0;
        bool thinkNext = false;
    };

    std::uint64_t
    zipfDraw(Rng &rng) const
    {
        if (params_.zipfTheta == 0.0 || params_.keySpace == 1)
            return rng.nextBounded(params_.keySpace);
        const double u = rng.nextDouble();
        const double uz = u * zetan_;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, params_.zipfTheta))
            return 1;
        const auto n = static_cast<double>(params_.keySpace);
        const auto k = static_cast<std::uint64_t>(
            n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return std::min(k, params_.keySpace - 1);
    }

    double zetan_ = 1.0;
    double alpha_ = 1.0;
    double eta_ = 0.0;
    std::vector<RankState> states_;
};

/**
 * Daly-style checkpoint workload: steady per-rank write streams with
 * checkpointAfter markers on Daly's first-order optimum interval
 * t_opt = sqrt(2*delta*M) - delta (t_opt = M once delta >= M/2),
 * converted to ops via the modeled per-op cost. The harness snapshots
 * the PR 7 RecoveryRun chain at each marker.
 */
class DalyWorkload : public WorkloadSource
{
  public:
    explicit DalyWorkload(const WorkloadParams &params)
        : WorkloadSource(params)
    {
        tcoram_assert(params_.mttiCycles > 0.0,
                      "daly workload: MTTI must be positive");
        tcoram_assert(params_.opCycles > 0,
                      "daly workload: op cost must be positive");
        const auto delta = static_cast<double>(params_.checkpointCycles);
        const double m = params_.mttiCycles;
        const double topt =
            delta < m / 2.0 ? std::sqrt(2.0 * delta * m) - delta : m;
        intervalOps_ = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::llround(topt /
                                static_cast<double>(params_.opCycles))));
        emitted_.assign(params_.ranks, 0);
    }

    const char *method() const override { return "daly"; }

    WorkloadOp
    getNext(std::uint32_t rank) override
    {
        tcoram_assert(rank < emitted_.size(), "unknown rank ", rank);
        std::uint64_t &emitted = emitted_[rank];
        if (emitted >= params_.opsPerRank)
            return WorkloadOp::end();
        // Per-rank sequential keys: the checkpoint chain is about
        // state volume and cadence, not popularity skew.
        WorkloadOp op = WorkloadOp::put(
            (static_cast<std::uint64_t>(rank) << 32) | emitted,
            params_.valueBytes);
        ++emitted;
        if (emitted % intervalOps_ == 0)
            op.checkpointAfter = true;
        return op;
    }

    std::uint64_t checkpointIntervalOps() const override
    {
        return intervalOps_;
    }

  private:
    std::uint64_t intervalOps_ = 1;
    std::vector<std::uint64_t> emitted_;
};

std::uint64_t
parseU64(const std::string &spec, const std::string &key,
         const std::string &value)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        tcoram_fatal("workload spec '", spec, "': key '", key,
                     "' wants an unsigned integer, got '", value, "'");
    return v;
}

double
parseF64(const std::string &spec, const std::string &key,
         const std::string &value)
{
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        tcoram_fatal("workload spec '", spec, "': key '", key,
                     "' wants a number, got '", value, "'");
    return v;
}

} // namespace

WorkloadRegistry::WorkloadRegistry()
{
    registerMethod("synthetic", [](const WorkloadParams &p) {
        return std::make_unique<SyntheticWorkload>(p);
    });
    registerMethod("trace", [](const WorkloadParams &p)
                                -> std::unique_ptr<WorkloadSource> {
        if (p.path.empty())
            tcoram_fatal("workload method 'trace' needs path=<file>");
        OpTrace trace;
        if (const std::string err = readOpTrace(p.path, trace);
            !err.empty())
            tcoram_fatal("workload method 'trace': ", err);
        return std::make_unique<TraceReplayWorkload>(p, std::move(trace));
    });
    registerMethod("kv", [](const WorkloadParams &p) {
        return std::make_unique<KvClientWorkload>(p);
    });
    registerMethod("daly", [](const WorkloadParams &p) {
        return std::make_unique<DalyWorkload>(p);
    });
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::registerMethod(const std::string &method, Factory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[method] = std::move(factory);
}

std::unique_ptr<WorkloadSource>
WorkloadRegistry::load(const WorkloadParams &params) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(params.method);
        if (it == entries_.end()) {
            std::vector<std::string> names;
            names.reserve(entries_.size());
            for (const auto &[method, factory] : entries_)
                names.push_back(method);
            std::sort(names.begin(), names.end());
            std::string known;
            for (const std::string &m : names)
                known += (known.empty() ? "" : ", ") + m;
            tcoram_fatal("unknown workload method '", params.method,
                         "' (known: ", known, ")");
        }
        factory = it->second;
    }
    return factory(params);
}

bool
WorkloadRegistry::contains(const std::string &method) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(method) != entries_.end();
}

std::vector<std::string>
WorkloadRegistry::methods() const
{
    std::vector<std::string> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out.reserve(entries_.size());
        for (const auto &[method, factory] : entries_)
            out.push_back(method);
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::unique_ptr<WorkloadSource>
loadWorkload(const WorkloadParams &params)
{
    return WorkloadRegistry::instance().load(params);
}

WorkloadParams
parseWorkloadSpec(const std::string &spec)
{
    WorkloadParams params;
    const std::size_t colon = spec.find(':');
    params.method = spec.substr(0, colon);
    if (params.method.empty())
        tcoram_fatal("workload spec '", spec, "': empty method");
    if (!WorkloadRegistry::instance().contains(params.method)) {
        std::string known;
        for (const std::string &m : WorkloadRegistry::instance().methods())
            known += (known.empty() ? "" : ", ") + m;
        tcoram_fatal("workload spec '", spec, "': unknown method '",
                     params.method, "' (known: ", known, ")");
    }
    std::string rest =
        colon == std::string::npos ? "" : spec.substr(colon + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string item = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos)
            tcoram_fatal("workload spec '", spec, "': item '", item,
                         "' is not key=value");
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "seed")
            params.seed = parseU64(spec, key, value);
        else if (key == "ranks")
            params.ranks = static_cast<std::uint32_t>(
                parseU64(spec, key, value));
        else if (key == "ops")
            params.opsPerRank = parseU64(spec, key, value);
        else if (key == "profile")
            params.profile = value;
        else if (key == "path")
            params.path = value;
        else if (key == "keys")
            params.keySpace = parseU64(spec, key, value);
        else if (key == "theta")
            params.zipfTheta = parseF64(spec, key, value);
        else if (key == "get")
            params.getFraction = parseF64(spec, key, value);
        else if (key == "scan")
            params.scanFraction = parseF64(spec, key, value);
        else if (key == "scanlen")
            params.scanLen = static_cast<std::uint32_t>(
                parseU64(spec, key, value));
        else if (key == "value")
            params.valueBytes = static_cast<std::uint32_t>(
                parseU64(spec, key, value));
        else if (key == "think")
            params.thinkCycles = parseU64(spec, key, value);
        else if (key == "mtti")
            params.mttiCycles = parseF64(spec, key, value);
        else if (key == "delta")
            params.checkpointCycles = parseU64(spec, key, value);
        else if (key == "opcycles")
            params.opCycles = parseU64(spec, key, value);
        else
            tcoram_fatal("workload spec '", spec, "': unknown key '", key,
                         "'");
    }
    if (params.ranks == 0)
        tcoram_fatal("workload spec '", spec, "': ranks must be >= 1");
    return params;
}

std::uint32_t
observedBurstDepth(const WorkloadParams &params, std::uint32_t cap,
                   std::uint64_t scanOps)
{
    tcoram_assert(cap >= 1, "burst-depth cap must be >= 1");
    const std::unique_ptr<WorkloadSource> source = loadWorkload(params);
    std::uint64_t max_run = 1;
    for (std::uint32_t rank = 0; rank < source->ranks(); ++rank) {
        std::uint64_t run = 0;
        for (std::uint64_t i = 0; i < scanOps; ++i) {
            const WorkloadOp op = source->getNext(rank);
            if (op.kind == WorkloadOpKind::End)
                break;
            if (op.kind == WorkloadOpKind::Think) {
                run = 0;
                continue;
            }
            run += op.kind == WorkloadOpKind::Scan ? op.scanLen : 1;
            max_run = std::max(max_run, run);
        }
    }
    const std::uint64_t depth = max_run * source->ranks();
    return static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(depth, 1, cap));
}

} // namespace tcoram::workload
