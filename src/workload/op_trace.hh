/**
 * @file
 * Versioned binary op-trace format for the workload plane: record any
 * WorkloadSource's per-rank op streams to a file, replay them later
 * through the "trace" method bit-identically. Encoding rides
 * common/serial.hh (fixed-width little-endian; the checkpoint
 * substrate), wrapped in a magic + version header so truncated files
 * and version skew are rejected with a diagnostic instead of decoding
 * garbage.
 *
 * Layout (version 1):
 *
 *   u32 magic "TWOP"  u32 version  u32 rankCount
 *   per rank: u64 opCount, then opCount records of
 *     u8 kind  u64 key  u32 valueBytes  u32 scanLen  u64 thinkCycles
 *     u8 checkpointAfter
 *
 * Trailing bytes after the last record are rejected too (atEnd), so a
 * concatenated or padded file cannot silently half-replay.
 */

#ifndef TCORAM_WORKLOAD_OP_TRACE_HH
#define TCORAM_WORKLOAD_OP_TRACE_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "workload/workload_source.hh"

namespace tcoram::workload {

/** "TWOP" little-endian. */
inline constexpr std::uint32_t kOpTraceMagic = 0x504f5754;
inline constexpr std::uint32_t kOpTraceVersion = 1;

/** A fully materialized op trace: one finite stream per rank. */
struct OpTrace
{
    /** ops[rank] excludes the trailing End (implied by stream end). */
    std::vector<std::vector<WorkloadOp>> ops;

    std::uint32_t
    rankCount() const
    {
        return static_cast<std::uint32_t>(ops.size());
    }

    bool operator==(const OpTrace &o) const = default;
};

/** Serialize to the version-1 byte layout. */
std::vector<std::uint8_t> encodeOpTrace(const OpTrace &trace);

/** Decode; @return empty on success, else a diagnostic (bad magic,
 *  version skew, truncation, trailing bytes). */
std::string decodeOpTrace(std::span<const std::uint8_t> bytes,
                          OpTrace &out);

/** Write to @p path. @return empty on success, else a diagnostic. */
std::string writeOpTrace(const std::string &path, const OpTrace &trace);

/** Read from @p path. @return empty on success, else a diagnostic. */
std::string readOpTrace(const std::string &path, OpTrace &out);

/**
 * Materialize @p source by pulling every rank to End. Consumes the
 * source (record a throwaway instance, replay a fresh one). Fatal if
 * any rank exceeds @p maxOpsPerRank before ending (guards against
 * recording an infinite method).
 */
OpTrace recordOpTrace(WorkloadSource &source,
                      std::uint64_t maxOpsPerRank = std::uint64_t{1} << 22);

} // namespace tcoram::workload

#endif // TCORAM_WORKLOAD_OP_TRACE_HH
