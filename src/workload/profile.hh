/**
 * @file
 * Synthetic workload profiles. The paper evaluates SPEC-int reference
 * workloads; we cannot redistribute SPEC, so each benchmark is
 * replaced by a parameterized synthetic memory-reference generator
 * whose *ORAM pressure class* (LLC-miss arrival process against a
 * 1 MB LLC) matches the paper's characterization: mcf/libquantum
 * memory-bound, h264ref compute-bound with a late memory-bound phase,
 * perlbench/astar strongly input-dependent, and so on (DESIGN.md §4).
 *
 * A profile is a phase schedule; each phase draws accesses from a mix
 * of streaming, strided, random and pointer-chase reference patterns
 * over a configurable working set.
 */

#ifndef TCORAM_WORKLOAD_PROFILE_HH
#define TCORAM_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace tcoram::workload {

/** Reference-pattern mixture weights for one phase (sum need not be 1). */
struct PatternMix
{
    double stream = 0.0;       ///< sequential scan
    double strided = 0.0;      ///< fixed stride walk
    double random = 0.0;       ///< uniform over the working set
    double pointerChase = 0.0; ///< dependent chain through the set
};

/** One execution phase. */
struct Phase
{
    /** Instructions this phase lasts (kInvalidId = until the end). */
    InstCount instructions = kInvalidId;
    /** Data working-set size in bytes. */
    std::uint64_t workingSetBytes = 8ull << 20;
    /** Fraction of the set that is hot (gets hotWeight of accesses). */
    double hotFraction = 1.0;
    double hotWeight = 1.0;
    /** Mean instructions between memory operations. */
    double instsPerMemOp = 4.0;
    /** Burstiness: probability a mem op is followed immediately by a
     *  cluster of dependent ops (models miss clustering / Req 3). */
    double burstProb = 0.0;
    unsigned burstLen = 4;
    /** Fraction of memory ops that are stores. */
    double storeFraction = 0.3;
    /** Stride in bytes for the strided component. */
    std::uint64_t strideBytes = 256;
    /** Reference mixture. */
    PatternMix mix{1.0, 0.0, 0.0, 0.0};
    /**
     * L1-resident "stack/locals" region: a slice of hot accesses goes
     * to this small window, which keeps L1 hit rates realistic (real
     * programs touch the same words repeatedly; a synthetic stream
     * that visits a fresh line per operation would overstate L1/L2
     * traffic and hence power).
     */
    std::uint64_t stackBytes = 16 * 1024;
    double stackWeight = 0.6;
    /** Word steps per cache line for hot walks (64 B / 8 B words). */
    unsigned wordsPerLine = 8;
    /** Mean extra (non-1-cycle) latency per instruction gap, modelling
     *  mult/div/FP instructions (Table 1 pipeline depths). */
    double extraCyclesPerInst = 0.1;
    /** Instruction-fetch working set (code footprint). */
    std::uint64_t codeBytes = 64 * 1024;
    /** Mean instructions between instruction-fetch discontinuities. */
    double instsPerFetchJump = 400.0;
};

/** A named workload: an ordered list of phases, looped if exhausted. */
struct Profile
{
    std::string name;
    std::vector<Phase> phases;
    /** Base address of the data segment (code lives below it). */
    Addr dataBase = 1ull << 30;
};

} // namespace tcoram::workload

#endif // TCORAM_WORKLOAD_PROFILE_HH
