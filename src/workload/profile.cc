// Profile is a plain aggregate; this translation unit exists so the
// module has a stable archive even if helpers migrate here later.
#include "workload/profile.hh"

namespace tcoram::workload {
} // namespace tcoram::workload
