#include "workload/generators.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace tcoram::workload {

SyntheticTrace::SyntheticTrace(const Profile &profile, std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    tcoram_assert(!profile_.phases.empty(), "profile has no phases: ",
                  profile_.name);
    instsLeftInPhase_ = profile_.phases[0].instructions;
}

void
SyntheticTrace::advancePhase(InstCount insts)
{
    if (instsLeftInPhase_ == kInvalidId)
        return;
    if (insts >= instsLeftInPhase_) {
        phaseIdx_ = (phaseIdx_ + 1) % profile_.phases.size();
        instsLeftInPhase_ = phase().instructions;
        // Reset walk positions so each phase starts at its own region.
        streamPos_ = 0;
        coldStreamPos_ = 0;
        stridePos_ = 0;
        chasePos_ = 0;
    } else {
        instsLeftInPhase_ -= insts;
    }
}

Addr
SyntheticTrace::dataAddr()
{
    const Phase &p = phase();
    const std::uint64_t lines =
        std::max<std::uint64_t>(p.workingSetBytes / 64, 1);

    // Hot/cold selection: cold accesses (probability 1 - hotWeight)
    // touch a fresh line somewhere in the full working set — these are
    // the LLC-miss producers. Hot accesses walk a cache-resident
    // region at word granularity, with a slice going to the small
    // stack window, keeping L1 behaviour realistic.
    const bool cold = p.hotFraction < 1.0 && !rng_.nextBool(p.hotWeight);

    if (cold) {
        const double total =
            p.mix.stream + p.mix.strided + p.mix.random + p.mix.pointerChase;
        tcoram_assert(total > 0, "empty pattern mix in ", profile_.name);
        double pick = rng_.nextDouble() * total;
        Addr line;
        if ((pick -= p.mix.stream) < 0) {
            line = coldStreamPos_++ % lines;
        } else if ((pick -= p.mix.strided) < 0) {
            coldStreamPos_ += p.strideBytes / 64 ? p.strideBytes / 64 : 1;
            line = coldStreamPos_ % lines;
        } else if ((pick -= p.mix.random) < 0) {
            line = rng_.nextBounded(lines);
        } else {
            // Pointer chase: the next element depends on the current
            // one, a dependent-miss chain.
            chasePos_ = chasePos_ * 6364136223846793005ull +
                        1442695040888963407ull;
            line = chasePos_ % lines;
        }
        return profile_.dataBase + line * 64;
    }

    const std::uint64_t hot_lines = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(p.hotFraction *
                                   static_cast<double>(lines)),
        1);

    // Stack/locals slice: revisits a tiny window (L1-resident).
    if (rng_.nextBool(p.stackWeight)) {
        const std::uint64_t stack_words = std::max<std::uint64_t>(
            p.stackBytes / 8, p.wordsPerLine);
        const std::uint64_t word = rng_.nextBounded(stack_words);
        return profile_.dataBase + word * 8;
    }

    // Hot walk at word granularity over the hot region.
    const double total =
        p.mix.stream + p.mix.strided + p.mix.random + p.mix.pointerChase;
    tcoram_assert(total > 0, "empty pattern mix in ", profile_.name);
    double pick = rng_.nextDouble() * total;
    std::uint64_t word_offset;
    const std::uint64_t hot_words = hot_lines * p.wordsPerLine;
    if ((pick -= p.mix.stream) < 0) {
        word_offset = streamPos_++ % hot_words;
    } else if ((pick -= p.mix.strided) < 0) {
        stridePos_ += std::max<std::uint64_t>(p.strideBytes / 8, 1);
        word_offset = stridePos_ % hot_words;
    } else if ((pick -= p.mix.random) < 0) {
        // Random hot references show spatial reuse too: pick a line,
        // then a word within it.
        word_offset = rng_.nextBounded(hot_lines) * p.wordsPerLine +
                      rng_.nextBounded(p.wordsPerLine);
    } else {
        chasePos_ =
            chasePos_ * 6364136223846793005ull + 1442695040888963407ull;
        word_offset = chasePos_ % hot_words;
    }
    return profile_.dataBase + word_offset * 8;
}

TraceOp
SyntheticTrace::next()
{
    const Phase &p = phase();
    TraceOp op;

    // Instruction-fetch discontinuity? Modeled as its own trace record
    // so the L1I sees non-sequential lines at the profile's jump rate.
    ++instsSinceFetchJump_;
    if (static_cast<double>(instsSinceFetchJump_) >= p.instsPerFetchJump &&
        rng_.nextBool(0.5)) {
        instsSinceFetchJump_ = 0;
        const std::uint64_t code_lines =
            std::max<std::uint64_t>(p.codeBytes / 64, 1);
        fetchPos_ = rng_.nextBounded(code_lines);
        op.gapInsts = 1;
        op.extraGapCycles = 0;
        op.addr = fetchPos_ * 64; // code segment at address 0
        op.kind = OpKind::InstFetch;
        advancePhase(op.gapInsts);
        return op;
    }

    // Gap until the next data access.
    std::uint64_t gap;
    if (burstLeft_ > 0) {
        --burstLeft_;
        gap = 1;
    } else {
        gap = rng_.nextGeometric(std::max(p.instsPerMemOp, 1.0));
        if (rng_.nextBool(p.burstProb))
            burstLeft_ = p.burstLen;
    }
    op.gapInsts = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        gap, std::numeric_limits<std::uint32_t>::max()));

    // Extra gap cycles: long-latency instructions inside the gap.
    const double extra =
        p.extraCyclesPerInst * static_cast<double>(op.gapInsts);
    const auto whole = static_cast<std::uint32_t>(extra);
    op.extraGapCycles =
        whole + (rng_.nextBool(extra - whole) ? 1u : 0u);

    op.addr = dataAddr();
    op.kind = rng_.nextBool(p.storeFraction) ? OpKind::Store : OpKind::Load;
    advancePhase(op.gapInsts);
    return op;
}

} // namespace tcoram::workload
