/**
 * @file
 * Adversary observation models (paper §3.2, §4.2). The server can
 * watch the processor's I/O pins — or, even without direct probing,
 * detect ORAM accesses by re-reading the ORAM tree's root bucket:
 * every access rewrites the whole path (root included) under
 * probabilistic encryption, so the root's ciphertext changes iff at
 * least one access happened between two reads.
 */

#ifndef TCORAM_ATTACK_OBSERVER_HH
#define TCORAM_ATTACK_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "crypto/ctr.hh"
#include "oram/path_oram.hh"

namespace tcoram::attack {

/**
 * Records the exact start time of every ORAM access — the strongest
 * ("perfect monitoring") adversary the leakage definition assumes.
 */
class TimingTraceRecorder
{
  public:
    void noteAccess(Cycles start) { trace_.push_back(start); }
    const std::vector<Cycles> &trace() const { return trace_; }

    /**
     * Inter-access gaps, the feature the rate-learning attack of
     * Figure 1 consumes.
     */
    std::vector<Cycles> gaps() const;

  private:
    std::vector<Cycles> trace_;
};

/**
 * Root-bucket probe (§3.2): the adversary repeatedly reads the root
 * bucket of a PathOram's DRAM image and reports whether >= 1 access
 * occurred since the previous probe.
 */
class RootBucketProbe
{
  public:
    explicit RootBucketProbe(const oram::PathOram &oram);

    /**
     * Probe now. @return true iff the root ciphertext differs from
     * the previous probe (i.e. >= 1 ORAM access happened in between).
     */
    bool probe();

    std::uint64_t probeCount() const { return probes_; }

  private:
    const oram::PathOram &oram_;
    crypto::Ciphertext lastSeen_;
    std::uint64_t probes_ = 0;
};

} // namespace tcoram::attack

#endif // TCORAM_ATTACK_OBSERVER_HH
