/**
 * @file
 * The adversary's optimal decoder for a rate-enforced system: given
 * the observed ORAM access start times, recover the rate sequence —
 * which, by construction, is *all* a leakage-aware processor reveals
 * through the timing channel. Together with the enforcer's
 * periodicity property this closes the loop on the security argument:
 * the estimator recovers the epoch rates exactly (the |E| * lg|R|
 * bits that were budgeted) and nothing else.
 */

#ifndef TCORAM_ATTACK_RATE_ESTIMATOR_HH
#define TCORAM_ATTACK_RATE_ESTIMATOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "timing/rate_set.hh"

namespace tcoram::attack {

/** One recovered constant-rate segment of the observed schedule. */
struct RateSegment
{
    /** First access index of the segment. */
    std::size_t firstAccess = 0;
    /** Start cycle of the first access in the segment. */
    Cycles startCycle = 0;
    /** Recovered inter-access gap (rate + OLAT). */
    Cycles period = 0;
    /** Recovered rate, if the adversary knows OLAT (period - olat). */
    Cycles rate = 0;
};

class RateEstimator
{
  public:
    /**
     * @param olat the (public) per-access latency, which an adversary
     *        learns from any single isolated access
     */
    explicit RateEstimator(Cycles olat) : olat_(olat) {}

    /**
     * Decode access start times into constant-period segments. A new
     * segment opens whenever the gap changes (the schedule within an
     * epoch is exactly periodic, so any change marks an epoch
     * transition).
     */
    std::vector<RateSegment> segment(
        const std::vector<Cycles> &access_starts) const;

    /**
     * Map recovered rates onto a known public candidate set R; this
     * is the literal bit extraction: lg|R| bits per segment.
     */
    std::vector<std::size_t> decodeRateIndices(
        const std::vector<RateSegment> &segments,
        const timing::RateSet &rates) const;

  private:
    Cycles olat_;
};

} // namespace tcoram::attack

#endif // TCORAM_ATTACK_RATE_ESTIMATOR_HH
