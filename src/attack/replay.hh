/**
 * @file
 * Replay-attack model (paper §8): if the server can re-run the user's
 * data under varied conditions, each run's timing trace is a fresh
 * experiment and the distinguishable-trace sets multiply —
 * log2(prod |T_i|) can exceed the per-run limit L. The driver below
 * quantifies that growth and shows the run-once session-key defence
 * capping it at one run's worth.
 */

#ifndef TCORAM_ATTACK_REPLAY_HH
#define TCORAM_ATTACK_REPLAY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace tcoram::attack {

/** Outcome of a replay campaign. */
struct ReplayResult
{
    /** Bits extractable per individual run. */
    double bitsPerRun = 0.0;
    /** Number of runs the adversary managed to execute. */
    unsigned runsExecuted = 0;
    /** Total extractable bits across the campaign. */
    double totalBits = 0.0;
};

/**
 * Campaign without protection: every replay is accepted, leakage
 * accumulates linearly (L * N).
 *
 * @param bits_per_run the configuration's per-run leakage L
 * @param attempts replays the server tries
 */
ReplayResult replayWithoutProtection(double bits_per_run,
                                     unsigned attempts);

/**
 * Campaign against a run-once session (§8): the processor forgets the
 * session key K after the first run, so ciphertexts from the session
 * cannot be re-decrypted and replays are rejected.
 *
 * @param bits_per_run the configuration's per-run leakage L
 * @param attempts replays the server tries
 */
ReplayResult replayWithRunOnceKeys(double bits_per_run, unsigned attempts);

} // namespace tcoram::attack

#endif // TCORAM_ATTACK_REPLAY_HH
