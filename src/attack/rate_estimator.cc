#include "attack/rate_estimator.hh"

#include "common/log.hh"

namespace tcoram::attack {

std::vector<RateSegment>
RateEstimator::segment(const std::vector<Cycles> &access_starts) const
{
    std::vector<RateSegment> segments;
    if (access_starts.size() < 2)
        return segments;

    RateSegment current;
    current.firstAccess = 0;
    current.startCycle = access_starts[0];
    current.period = access_starts[1] - access_starts[0];

    for (std::size_t i = 2; i < access_starts.size(); ++i) {
        const Cycles gap = access_starts[i] - access_starts[i - 1];
        if (gap != current.period) {
            current.rate =
                current.period > olat_ ? current.period - olat_ : 0;
            segments.push_back(current);
            current.firstAccess = i - 1;
            current.startCycle = access_starts[i - 1];
            current.period = gap;
        }
    }
    current.rate = current.period > olat_ ? current.period - olat_ : 0;
    segments.push_back(current);
    return segments;
}

std::vector<std::size_t>
RateEstimator::decodeRateIndices(const std::vector<RateSegment> &segments,
                                 const timing::RateSet &rates) const
{
    std::vector<std::size_t> indices;
    indices.reserve(segments.size());
    for (const RateSegment &s : segments)
        indices.push_back(rates.indexOf(rates.discretize(s.rate)));
    return indices;
}

} // namespace tcoram::attack
