#include "attack/malicious.hh"

#include "attack/observer.hh"
#include "common/log.hh"

namespace tcoram::attack {

std::size_t
LeakExperimentResult::correctBits() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < secret.size() && i < recovered.size(); ++i)
        if (secret[i] == recovered[i])
            ++n;
    return n;
}

bool
LeakExperimentResult::fullyLeaked() const
{
    return recovered.size() >= secret.size() &&
           correctBits() == secret.size();
}

LeakExperimentResult
runUnprotectedLeak(oram::PathOram &oram, const std::vector<bool> &secret)
{
    LeakExperimentResult res;
    res.secret = secret;
    RootBucketProbe probe(oram);

    for (bool bit : secret) {
        // P1: "if (D[i]) Mem[4*i]++ else wait" — one time step each.
        if (bit)
            oram.access(0, oram::Op::Read);
        res.recovered.push_back(probe.probe());
    }
    return res;
}

LeakExperimentResult
runProtectedLeak(oram::PathOram &oram, const std::vector<bool> &secret,
                 Cycles rate, Cycles olat)
{
    tcoram_assert(rate > 0 && olat > 0, "bad schedule parameters");
    LeakExperimentResult res;
    res.secret = secret;
    RootBucketProbe probe(oram);

    // Under enforcement the schedule fires every `rate + olat` cycles
    // whether or not P1 wants an access; a slot with no demand issues
    // an indistinguishable dummy. The adversary probes once per slot —
    // the most favourable cadence for the attack.
    for (bool bit : secret) {
        if (bit) {
            oram.access(0, oram::Op::Read); // demand becomes the slot's job
        } else {
            oram.dummyAccess(); // enforcer fills the slot
        }
        res.recovered.push_back(probe.probe());
    }
    return res;
}

} // namespace tcoram::attack
