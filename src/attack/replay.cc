#include "attack/replay.hh"

namespace tcoram::attack {

ReplayResult
replayWithoutProtection(double bits_per_run, unsigned attempts)
{
    ReplayResult r;
    r.bitsPerRun = bits_per_run;
    r.runsExecuted = attempts;
    r.totalBits = bits_per_run * static_cast<double>(attempts);
    return r;
}

ReplayResult
replayWithRunOnceKeys(double bits_per_run, unsigned attempts)
{
    ReplayResult r;
    r.bitsPerRun = bits_per_run;
    // Only the first run decrypts; subsequent replays are rejected
    // because the session key has been forgotten.
    r.runsExecuted = attempts > 0 ? 1 : 0;
    r.totalBits = attempts > 0 ? bits_per_run : 0.0;
    return r;
}

} // namespace tcoram::attack
