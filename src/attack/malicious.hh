/**
 * @file
 * The malicious program P1 of Figure 1(a): at each time step it
 * coerces an LLC miss iff the next secret bit is 1, leaking T bits in
 * T steps through ORAM access timing when no protection is present.
 * The decoder reconstructs the secret from the observable trace. The
 * same encoder run under a rate-enforced schedule demonstrates the
 * channel collapsing to the leakage bound.
 */

#ifndef TCORAM_ATTACK_MALICIOUS_HH
#define TCORAM_ATTACK_MALICIOUS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "oram/path_oram.hh"
#include "timing/rate_enforcer.hh"

namespace tcoram::attack {

/** Result of one encode/observe/decode experiment. */
struct LeakExperimentResult
{
    std::vector<bool> secret;
    std::vector<bool> recovered;
    /** Bits the adversary decoded correctly. */
    std::size_t correctBits() const;
    /** True if every bit was recovered. */
    bool fullyLeaked() const;
};

/**
 * Runs P1 directly against an unprotected PathOram: each step either
 * performs an access (bit = 1) or waits (bit = 0). The adversary
 * observes via the root-bucket probe once per step.
 */
LeakExperimentResult runUnprotectedLeak(oram::PathOram &oram,
                                        const std::vector<bool> &secret);

/**
 * Runs P1 against a rate-enforced schedule: the program's demand
 * pattern still depends on the secret, but the observable trace is
 * the enforced periodic schedule, so the probe sees an access in
 * every window regardless of the secret. The decoder applies the same
 * rule as the unprotected case; the recovered bits are all 1s —
 * statistically independent of the secret.
 */
LeakExperimentResult runProtectedLeak(oram::PathOram &oram,
                                      const std::vector<bool> &secret,
                                      Cycles rate, Cycles olat);

} // namespace tcoram::attack

#endif // TCORAM_ATTACK_MALICIOUS_HH
