#include "attack/observer.hh"

namespace tcoram::attack {

std::vector<Cycles>
TimingTraceRecorder::gaps() const
{
    std::vector<Cycles> g;
    for (std::size_t i = 1; i < trace_.size(); ++i)
        g.push_back(trace_[i] - trace_[i - 1]);
    return g;
}

RootBucketProbe::RootBucketProbe(const oram::PathOram &oram) : oram_(oram)
{
    lastSeen_ = oram_.bucketCiphertext(0);
}

bool
RootBucketProbe::probe()
{
    ++probes_;
    const crypto::Ciphertext &current = oram_.bucketCiphertext(0);
    const bool changed = !(current == lastSeen_);
    lastSeen_ = current;
    return changed;
}

} // namespace tcoram::attack
