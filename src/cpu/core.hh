/**
 * @file
 * Trace-driven in-order, single-issue core (paper Table 1). Consumes
 * a workload TraceSource, walks each access through the cache
 * hierarchy, and hands LLC misses to a MemorySystemIf (flat DRAM, raw
 * ORAM, or the rate-enforced ORAM). Loads block the core; stores and
 * dirty writebacks drain through the 8-entry non-blocking write
 * buffer, which is what creates multiple concurrently outstanding
 * ORAM requests (the paper's Req 3 case).
 */

#ifndef TCORAM_CPU_CORE_HH
#define TCORAM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "workload/generators.hh"

namespace tcoram::cpu {

/** What the core needs from the memory side. */
class MemorySystemIf
{
  public:
    virtual ~MemorySystemIf() = default;

    /**
     * Serve a demand (load/fetch) LLC miss arriving at @p now.
     * @return cycle the line is available.
     */
    virtual Cycles serveMiss(Cycles now, Addr line_addr) = 0;

    /**
     * Serve a non-blocking request (store miss fill or dirty
     * writeback) arriving at @p now. The core does not stall on the
     * returned completion unless the write buffer is full.
     */
    virtual Cycles serveAsync(Cycles now, Addr line_addr) = 0;
};

/** End-of-run statistics. */
struct CoreStats
{
    Cycles cycles = 0;
    InstCount instructions = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t fetches = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t asyncMisses = 0;
    std::uint64_t writeBufferStalls = 0;
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

class Core
{
  public:
    /**
     * @param hierarchy cache hierarchy (owned by the caller)
     * @param mem memory system handling LLC misses
     * @param source workload trace
     * @param ipc_window instructions per IPC sample (Figure 7 series)
     */
    Core(cache::Hierarchy &hierarchy, MemorySystemIf &mem,
         workload::TraceSource &source, InstCount ipc_window = 1'000'000);

    /**
     * Run for @p max_insts further instructions (relative to the last
     * reset); returns the stats accumulated since then.
     */
    CoreStats run(InstCount max_insts);

    /**
     * Zero the statistics while keeping all microarchitectural state
     * (cache contents, buffered writes, current cycle). Models the
     * paper's fast-forward methodology (§9.1.1): warm up, reset, then
     * measure.
     */
    void resetStats();

    const CoreStats &stats() const { return stats_; }
    /** IPC per closed instruction window (Figure 7 series). */
    const std::vector<double> &ipcSeries() const { return ipcValues_; }
    /** LLC misses per closed instruction window (Figure 2 series). */
    const std::vector<std::uint64_t> &missSeries() const
    {
        return missValues_;
    }
    InstCount ipcWindow() const { return ipcWindow_; }
    Cycles now() const { return cycle_; }

  private:
    /** Retire the outstanding writes whose completions have passed. */
    void drainWriteBuffer(Cycles upto);
    /** Issue an async (store/writeback) line request. */
    void issueAsync(Addr line_addr);
    /** Account retired instructions and close IPC windows. */
    void noteRetired(InstCount insts);

    cache::Hierarchy &hierarchy_;
    MemorySystemIf &mem_;
    workload::TraceSource &source_;
    Cycles cycle_ = 0;
    /** Cycle at which the current measurement interval began. */
    Cycles statsStartCycle_ = 0;
    CoreStats stats_;
    InstCount ipcWindow_;
    std::vector<double> ipcValues_;
    std::vector<std::uint64_t> missValues_;
    InstCount instsInWindow_ = 0;
    Cycles windowStartCycle_ = 0;
    std::uint64_t missesAtWindowStart_ = 0;
    /** Completion cycles of in-flight buffered writes. */
    std::deque<Cycles> pendingWrites_;
};

} // namespace tcoram::cpu

#endif // TCORAM_CPU_CORE_HH
