#include "cpu/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace tcoram::cpu {

Core::Core(cache::Hierarchy &hierarchy, MemorySystemIf &mem,
           workload::TraceSource &source, InstCount ipc_window)
    : hierarchy_(hierarchy),
      mem_(mem),
      source_(source),
      ipcWindow_(ipc_window)
{
    tcoram_assert(ipc_window > 0, "ipc window must be positive");
}

void
Core::drainWriteBuffer(Cycles upto)
{
    auto &wb = hierarchy_.writeBuffer();
    while (!pendingWrites_.empty() && pendingWrites_.front() <= upto) {
        pendingWrites_.pop_front();
        wb.pop();
    }
}

void
Core::issueAsync(Addr line_addr)
{
    auto &wb = hierarchy_.writeBuffer();
    if (!wb.canAccept()) {
        // Structural stall: wait for the oldest write to complete.
        wb.noteFullStall();
        ++stats_.writeBufferStalls;
        tcoram_assert(!pendingWrites_.empty(), "full buffer with no writes");
        cycle_ = std::max(cycle_, pendingWrites_.front());
        drainWriteBuffer(cycle_);
    }
    const Cycles done = mem_.serveAsync(cycle_, line_addr);
    wb.push(line_addr);
    pendingWrites_.push_back(done);
    ++stats_.asyncMisses;
}

void
Core::noteRetired(InstCount insts)
{
    stats_.instructions += insts;
    instsInWindow_ += insts;
    while (instsInWindow_ >= ipcWindow_) {
        // Close a window at the current cycle; attribute all cycles
        // since the window opened (coarse but faithful at 10^6 grain).
        const Cycles span = cycle_ > windowStartCycle_
                                ? cycle_ - windowStartCycle_
                                : 1;
        ipcValues_.push_back(static_cast<double>(ipcWindow_) /
                             static_cast<double>(span));
        const std::uint64_t misses = stats_.demandMisses + stats_.asyncMisses;
        missValues_.push_back(misses - missesAtWindowStart_);
        missesAtWindowStart_ = misses;
        instsInWindow_ -= ipcWindow_;
        windowStartCycle_ = cycle_;
    }
}

CoreStats
Core::run(InstCount max_insts)
{
    while (stats_.instructions < max_insts) {
        const workload::TraceOp op = source_.next();

        // Retire the gap instructions (1 cycle each + extra stalls),
        // clamped so the run ends at exactly max_insts.
        const InstCount remaining = max_insts - stats_.instructions;
        if (op.gapInsts >= remaining) {
            cycle_ += remaining;
            noteRetired(remaining);
            break;
        }
        cycle_ += op.gapInsts + op.extraGapCycles;
        noteRetired(op.gapInsts);
        drainWriteBuffer(cycle_);

        // The memory operation itself retires one instruction.
        using cache::AccessKind;
        AccessKind kind;
        switch (op.kind) {
          case workload::OpKind::InstFetch:
            kind = AccessKind::InstFetch;
            ++stats_.fetches;
            break;
          case workload::OpKind::Load:
            kind = AccessKind::Load;
            ++stats_.loads;
            break;
          default:
            kind = AccessKind::Store;
            ++stats_.stores;
            break;
        }

        const cache::HierarchyResult res = hierarchy_.access(op.addr, kind);
        cycle_ += res.latency;

        // Dirty LLC victims drain asynchronously through the buffer.
        for (Addr wb_addr : res.memWritebacks)
            issueAsync(wb_addr);

        if (res.llcMiss) {
            if (kind == AccessKind::Store) {
                // Store miss: write-allocate through the write buffer;
                // the core does not wait for the fill.
                issueAsync(res.missAddr);
            } else {
                // Demand miss: the core blocks until the line returns.
                ++stats_.demandMisses;
                const Cycles done = mem_.serveMiss(cycle_, res.missAddr);
                cycle_ = std::max(cycle_, done);
            }
        }

        noteRetired(1);
        drainWriteBuffer(cycle_);
    }

    // Let outstanding writes land.
    if (!pendingWrites_.empty()) {
        cycle_ = std::max(cycle_, pendingWrites_.back());
        drainWriteBuffer(cycle_);
    }

    stats_.cycles = cycle_ - statsStartCycle_;
    return stats_;
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
    statsStartCycle_ = cycle_;
    ipcValues_.clear();
    missValues_.clear();
    instsInWindow_ = 0;
    windowStartCycle_ = cycle_;
    missesAtWindowStart_ = 0;
}

} // namespace tcoram::cpu
