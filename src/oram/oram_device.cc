#include "oram/oram_device.hh"

#include <algorithm>

#include "common/log.hh"
#include "oram/sharded_device.hh"

namespace tcoram::oram {

namespace {

/** Charge one access on @p ctrl and fill the model-cost completion. */
timing::OramCompletion
chargedCompletion(OramController &ctrl, Cycles now,
                  const timing::OramTransaction &txn)
{
    const bool real = txn.kind == timing::OramTransaction::Kind::Real;
    const Cycles done = real ? ctrl.access(now) : ctrl.dummyAccess(now);
    timing::OramCompletion c;
    c.start = done - ctrl.accessLatency();
    c.done = done;
    c.bytesMoved = ctrl.bytesPerAccess();
    c.cryptoBytes = ctrl.cryptoBytesPerAccess();
    c.cryptoCalls = ctrl.cryptoCallsPerAccess();
    return c;
}

} // namespace

timing::OramCompletion
TimingOramDevice::submit(Cycles now, const timing::OramTransaction &txn)
{
    return chargedCompletion(ctrl_, now, txn);
}

timing::OramEvictionCharge
TimingOramDevice::maybeEvict(Cycles horizon)
{
    const OramController::EvictionCharge e = ctrl_.maybeEvict(horizon);
    return {e.evictions, e.firstSchedule, e.bytesMoved, e.cryptoBytes,
            e.cryptoCalls};
}

void
TimingOramDevice::saveState(ByteWriter &w) const
{
    ctrl_.saveState(w);
}

void
TimingOramDevice::restoreState(ByteReader &r)
{
    ctrl_.restoreState(r);
}

FunctionalOramDevice::FunctionalOramDevice(const OramConfig &cfg,
                                           dram::MemoryIf &mem, Rng &rng,
                                           std::uint64_t key_seed,
                                           std::uint64_t datapath_block_cap,
                                           crypto::CryptoBackend backend,
                                           PathMode mode,
                                           const EvictionConfig &evict,
                                           Datapath dp)
    : ctrl_(cfg, mem, rng, mode, evict), funcCfg_(cfg), keySeed_(key_seed)
{
    if (datapath_block_cap != 0)
        funcCfg_.numBlocks =
            std::min<std::uint64_t>(funcCfg_.numBlocks, datapath_block_cap);
    // The stash is a datapath-only resource (never charged in the
    // modeled stats); size it for long fully-loaded runs — id folding
    // under a cap touches every block, the worst case for occupancy.
    funcCfg_.stashCapacity =
        std::max<std::size_t>(funcCfg_.stashCapacity, 1024);
    func_ = std::make_unique<RecursivePathOram>(funcCfg_, key_seed, backend,
                                                dp);
    scratchOut_.assign(funcCfg_.blockBytes, 0);
    scratchData_.assign(funcCfg_.blockBytes, 0);
}

void
FunctionalOramDevice::enableFaultModel(const dram::FaultSpec &spec,
                                       unsigned retry_budget)
{
    // Integrity (the detector) always comes with the fault model; the
    // injector only when the spec actually carries data-fault kinds —
    // a timing-only spec still wants MAC verification so the datapath
    // notices corruption from any other source.
    func_->enableIntegrity(mixSeed(keySeed_, 0xfa171ull), retry_budget);
    if (spec.enabled() && spec.has(dram::kFaultDataMask)) {
        injector_ = std::make_unique<dram::FaultInjector>(
            spec, mixSeed(keySeed_, 0x0da7aull));
        func_->attachFaultInjector(injector_.get());
    }
}

timing::OramCompletion
FunctionalOramDevice::submit(Cycles now, const timing::OramTransaction &txn)
{
    // Cumulative-counter deltas around the access attribute recovery
    // work to THIS transaction (per-access last* counters undercount
    // when a recursion stage is touched twice in one access).
    const std::uint64_t detected0 = func_->faultsDetected();
    const std::uint64_t retries0 = func_->retriesIssued();

    if (txn.kind == timing::OramTransaction::Kind::Real) {
        const BlockId id = txn.blockId % funcCfg_.numBlocks;
        std::span<std::uint8_t> out =
            txn.out.empty() ? std::span<std::uint8_t>(scratchOut_) : txn.out;
        tcoram_assert(out.size() == funcCfg_.blockBytes,
                      "functional out span must be one block");
        if (txn.isWrite) {
            std::span<const std::uint8_t> data =
                txn.data.empty() ? std::span<const std::uint8_t>(scratchData_)
                                 : txn.data;
            tcoram_assert(data.size() == funcCfg_.blockBytes,
                          "functional write payload must be one block");
            // Empty payloads write a deterministic id-derived pattern so
            // trace-driven runs still churn real bytes through the tree.
            if (txn.data.empty()) {
                for (std::size_t i = 0; i < scratchData_.size(); ++i)
                    scratchData_[i] = static_cast<std::uint8_t>(
                        (id + i) * 0x9e3779b9ull >> 24);
            }
            func_->accessInto(id, Op::Write, data, out);
        } else {
            func_->accessInto(id, Op::Read, {}, out);
        }
    } else {
        func_->dummyAccess();
    }
    dataBytesMoved_ += func_->lastAccessBytes();

    // Timing, byte and crypto attribution come from the calibrated
    // controller over the MODELED geometry — identical to the timing
    // device, whatever the (possibly capped) datapath moved.
    timing::OramCompletion c = chargedCompletion(ctrl_, now, txn);
    c.faultsDetected =
        static_cast<std::uint32_t>(func_->faultsDetected() - detected0);
    c.retries =
        static_cast<std::uint32_t>(func_->retriesIssued() - retries0);
    return c;
}

timing::OramEvictionCharge
FunctionalOramDevice::maybeEvict(Cycles horizon)
{
    const OramController::EvictionCharge e = ctrl_.maybeEvict(horizon);
    // Realize each issued eviction against the functional stash on its
    // schedule counter; costs stay controller-attributed so stats are
    // bit-identical to the timing device.
    for (std::uint32_t i = 0; i < e.evictions; ++i) {
        func_->backgroundEvict(e.firstSchedule + i);
        dataBytesMoved_ += func_->lastAccessBytes();
    }
    return {e.evictions, e.firstSchedule, e.bytesMoved, e.cryptoBytes,
            e.cryptoCalls};
}

void
FunctionalOramDevice::saveState(ByteWriter &w) const
{
    ctrl_.saveState(w);
    w.u64(dataBytesMoved_);
    func_->saveState(w);
    w.b(injector_ != nullptr);
    if (injector_)
        injector_->saveState(w);
}

void
FunctionalOramDevice::restoreState(ByteReader &r)
{
    ctrl_.restoreState(r);
    dataBytesMoved_ = r.u64();
    func_->restoreState(r);
    const bool had_injector = r.b();
    tcoram_assert(had_injector == (injector_ != nullptr),
                  "snapshot and device disagree on the fault injector "
                  "(enableFaultModel must be applied before restore)");
    if (injector_)
        injector_->restoreState(r);
}

std::vector<std::string>
oramDeviceKinds()
{
    return {"functional", "sharded", "timing"};
}

bool
oramDeviceKindKnown(const std::string &kind)
{
    const auto kinds = oramDeviceKinds();
    return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

std::unique_ptr<timing::OramDeviceIf>
makeOramDevice(const OramDeviceSpec &spec, const OramConfig &cfg,
               dram::MemoryIf &mem, Rng &rng)
{
    // The sharded array wraps M inner devices of a non-sharded kind:
    // either explicitly (kind "sharded", even at M = 1 — the wrapper
    // transparency the golden tests pin) or implicitly whenever a
    // plain kind asks for more than one shard.
    if (spec.kind == "sharded" || spec.shards > 1) {
        OramDeviceSpec inner = spec;
        inner.kind = spec.kind == "sharded" ? spec.innerKind : spec.kind;
        inner.shards = 1;
        tcoram_assert(inner.kind != "sharded", "sharded inners cannot nest");
        return std::make_unique<ShardedOramDevice>(
            inner, cfg, std::max<std::uint32_t>(1, spec.shards),
            spec.routeSeed, mem, rng);
    }
    if (spec.kind == "timing")
        return std::make_unique<TimingOramDevice>(cfg, mem, rng,
                                                  spec.pathMode,
                                                  spec.evictionConfig());
    if (spec.kind == "functional") {
        auto dev = std::make_unique<FunctionalOramDevice>(
            cfg, mem, rng, spec.keySeed, spec.functionalBlockCap,
            spec.cryptoBackend, spec.pathMode, spec.evictionConfig(),
            spec.datapath);
        // Data-fault kinds arm the fault-tolerant datapath; timing
        // kinds belong to the DRAM decorator and are ignored here.
        if (spec.fault.enabled() && spec.fault.has(dram::kFaultDataMask))
            dev->enableFaultModel(spec.fault, spec.retryBudget);
        return dev;
    }
    tcoram_fatal("unknown ORAM device kind \"", spec.kind,
                 "\" (registered: ", joinNames(oramDeviceKinds()), ")");
}

} // namespace tcoram::oram
