/**
 * @file
 * Path ORAM stash: the small on-chip memory that transiently holds
 * blocks between path read and path write-back ([26] sizes it around
 * 128 KB / ~200 blocks). Overflow is a fatal condition that the
 * property tests probe for.
 *
 * Storage is a fixed slot pool allocated once at construction (part of
 * the ORAM's PathBuffer arena discipline): put/find/erase and the
 * eviction sweep perform zero heap allocations in steady state. With a
 * few hundred resident blocks a linear index scan is faster than any
 * node-based map and keeps the structure allocation-free.
 */

#ifndef TCORAM_ORAM_STASH_HH
#define TCORAM_ORAM_STASH_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"
#include "oram/bucket.hh"

namespace tcoram::oram {

class Stash
{
  public:
    /**
     * @param capacity maximum resident blocks (overflow is fatal)
     * @param block_bytes_hint when nonzero, every pooled slot's payload
     *        buffer is pre-reserved to this size so first-touch puts
     *        don't allocate either
     */
    explicit Stash(std::size_t capacity,
                   std::uint64_t block_bytes_hint = 0);

    /** Add a block (replacing any prior copy with the same id). */
    void put(const BlockSlot &slot);

    /**
     * Insert a zero-filled block for @p id (must be absent) and return
     * the pooled slot for in-place initialization. Allocation-free in
     * steady state.
     */
    BlockSlot *emplaceFresh(BlockId id, Leaf leaf,
                            std::uint64_t block_bytes);

    /** Look up a block; nullptr if absent. */
    const BlockSlot *find(BlockId id) const;
    BlockSlot *find(BlockId id);

    /** Remove and return a block; caller asserts presence. */
    BlockSlot take(BlockId id);

    bool contains(BlockId id) const { return findIndex(id) != kNone; }
    std::size_t size() const { return active_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Largest occupancy ever observed (for the property tests). */
    std::size_t highWater() const { return highWater_; }

    /** Snapshot of all resident block ids. */
    std::vector<BlockId> residentIds() const;

    /**
     * Pool indices of every resident block, in the stash's
     * deterministic visit order. Together with poolSlot() and
     * releaseMany() this is the eviction sweep's zero-copy view: the
     * ORAM computes each resident's deepest legal level once, buckets
     * the sweep by level, and releases the placed slots in bulk —
     * instead of rescanning the stash once per tree level.
     */
    std::span<const std::uint32_t>
    activeIndices() const
    {
        return active_;
    }

    /** The pooled slot at @p pool_index (from activeIndices()). */
    const BlockSlot &
    poolSlot(std::uint32_t pool_index) const
    {
        return pool_[pool_index];
    }

    /**
     * Release every slot in @p pool_indices back to the pool (they
     * must be resident and distinct). One stable compaction pass over
     * the active list; allocation-free.
     */
    void releaseMany(std::span<const std::uint32_t> pool_indices);

    /**
     * Checkpoint support: serialize the resident blocks in visit
     * order. restoreState() rebuilds residence in that order, so the
     * eviction sweep's deterministic visit order survives the round
     * trip (pool slot numbers need not — they are invisible handles).
     */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    static constexpr std::size_t kNone = ~std::size_t{0};

    /** Index into active_ for @p id, or kNone. */
    std::size_t findIndex(BlockId id) const;

    /** Claim a free pooled slot (fatal on overflow). */
    BlockSlot &allocSlot(BlockId id);

    std::size_t capacity_;
    std::size_t highWater_ = 0;
    std::vector<BlockSlot> pool_;       ///< capacity_ slots, fixed
    std::vector<std::uint32_t> active_; ///< pool indices in residence
    std::vector<std::uint32_t> free_;   ///< pool indices available
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_STASH_HH
