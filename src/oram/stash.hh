/**
 * @file
 * Path ORAM stash: the small on-chip memory that transiently holds
 * blocks between path read and path write-back ([26] sizes it around
 * 128 KB / ~200 blocks). Overflow is a fatal condition that the
 * property tests probe for.
 *
 * Storage is a fixed slot pool allocated once at construction (part of
 * the ORAM's PathBuffer arena discipline): put/find/erase and the
 * eviction sweep perform zero heap allocations in steady state. With a
 * few hundred resident blocks a linear index scan is faster than any
 * node-based map and keeps the structure allocation-free.
 */

#ifndef TCORAM_ORAM_STASH_HH
#define TCORAM_ORAM_STASH_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "oram/bucket.hh"

namespace tcoram::oram {

class Stash
{
  public:
    /**
     * @param capacity maximum resident blocks (overflow is fatal)
     * @param block_bytes_hint when nonzero, every pooled slot's payload
     *        buffer is pre-reserved to this size so first-touch puts
     *        don't allocate either
     */
    explicit Stash(std::size_t capacity,
                   std::uint64_t block_bytes_hint = 0);

    /** Add a block (replacing any prior copy with the same id). */
    void put(const BlockSlot &slot);

    /**
     * Insert a zero-filled block for @p id (must be absent) and return
     * the pooled slot for in-place initialization. Allocation-free in
     * steady state.
     */
    BlockSlot *emplaceFresh(BlockId id, Leaf leaf,
                            std::uint64_t block_bytes);

    /** Look up a block; nullptr if absent. */
    const BlockSlot *find(BlockId id) const;
    BlockSlot *find(BlockId id);

    /** Remove and return a block; caller asserts presence. */
    BlockSlot take(BlockId id);

    bool contains(BlockId id) const { return findIndex(id) != kNone; }
    std::size_t size() const { return active_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Largest occupancy ever observed (for the property tests). */
    std::size_t highWater() const { return highWater_; }

    /** Snapshot of all resident block ids. */
    std::vector<BlockId> residentIds() const;

    /**
     * Eviction sweep: visit every resident slot; when @p consume
     * returns true the slot is released back to the pool. The visit
     * order is deterministic for a deterministic access sequence.
     * Allocation-free; @p consume must not touch the stash.
     */
    template <typename Consume>
    void
    removeIf(Consume &&consume)
    {
        std::size_t i = 0;
        while (i < active_.size()) {
            if (consume(pool_[active_[i]])) {
                free_.push_back(active_[i]);
                active_[i] = active_.back();
                active_.pop_back();
            } else {
                ++i;
            }
        }
    }

  private:
    static constexpr std::size_t kNone = ~std::size_t{0};

    /** Index into active_ for @p id, or kNone. */
    std::size_t findIndex(BlockId id) const;

    /** Claim a free pooled slot (fatal on overflow). */
    BlockSlot &allocSlot(BlockId id);

    std::size_t capacity_;
    std::size_t highWater_ = 0;
    std::vector<BlockSlot> pool_;       ///< capacity_ slots, fixed
    std::vector<std::uint32_t> active_; ///< pool indices in residence
    std::vector<std::uint32_t> free_;   ///< pool indices available
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_STASH_HH
