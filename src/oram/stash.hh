/**
 * @file
 * Path ORAM stash: the small on-chip memory that transiently holds
 * blocks between path read and path write-back ([26] sizes it around
 * 128 KB / ~200 blocks). Overflow is a fatal condition that the
 * property tests probe for.
 */

#ifndef TCORAM_ORAM_STASH_HH
#define TCORAM_ORAM_STASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "oram/bucket.hh"

namespace tcoram::oram {

class Stash
{
  public:
    explicit Stash(std::size_t capacity) : capacity_(capacity) {}

    /** Add a block (replacing any prior copy with the same id). */
    void put(const BlockSlot &slot);

    /** Look up a block; nullptr if absent. */
    const BlockSlot *find(BlockId id) const;
    BlockSlot *find(BlockId id);

    /** Remove and return a block; caller asserts presence. */
    BlockSlot take(BlockId id);

    bool contains(BlockId id) const { return map_.count(id) != 0; }
    std::size_t size() const { return map_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Largest occupancy ever observed (for the property tests). */
    std::size_t highWater() const { return highWater_; }

    /** Snapshot of all resident block ids. */
    std::vector<BlockId> residentIds() const;

  private:
    std::size_t capacity_;
    std::size_t highWater_ = 0;
    std::unordered_map<BlockId, BlockSlot> map_;
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_STASH_HH
