#include "oram/bucket.hh"

#include "common/log.hh"
#include "oram/bucket_codec.hh"

namespace tcoram::oram {

Bucket::Bucket(unsigned z, std::uint64_t block_bytes)
    : blockBytes_(block_bytes)
{
    tcoram_assert(z > 0, "bucket needs at least one slot");
    slots_.resize(z);
    for (auto &s : slots_)
        s.payload.assign(blockBytes_, 0);
}

unsigned
Bucket::occupancy() const
{
    unsigned n = 0;
    for (const auto &s : slots_)
        if (!s.isDummy())
            ++n;
    return n;
}

bool
Bucket::insert(const BlockSlot &slot)
{
    tcoram_assert(!slot.isDummy(), "inserting a dummy");
    tcoram_assert(slot.payload.size() == blockBytes_, "payload size mismatch");
    for (auto &s : slots_) {
        if (s.isDummy()) {
            s = slot;
            return true;
        }
    }
    return false;
}

void
Bucket::clear()
{
    for (auto &s : slots_) {
        s.id = kInvalidId;
        s.leaf = 0;
        s.payload.assign(blockBytes_, 0);
    }
}

std::uint64_t
Bucket::serializedBytes() const
{
    return slots_.size() * (BucketCodec::kHeaderBytes + blockBytes_);
}

std::vector<std::uint8_t>
Bucket::serialize() const
{
    const BucketCodec codec(static_cast<unsigned>(slots_.size()),
                            blockBytes_);
    std::vector<std::uint8_t> out(codec.serializedBytes());
    codec.encode(*this, out);
    return out;
}

Bucket
Bucket::deserialize(const std::vector<std::uint8_t> &bytes, unsigned z,
                    std::uint64_t block_bytes)
{
    Bucket b(z, block_bytes);
    const BucketCodec codec(z, block_bytes);
    codec.decode(bytes, b);
    return b;
}

crypto::Ciphertext
Bucket::seal(const crypto::CtrCipher &cipher, std::uint64_t nonce) const
{
    return cipher.encrypt(serialize(), nonce);
}

Bucket
Bucket::unseal(const crypto::Ciphertext &ct, const crypto::CtrCipher &cipher,
               unsigned z, std::uint64_t block_bytes)
{
    return deserialize(cipher.decrypt(ct), z, block_bytes);
}

} // namespace tcoram::oram
