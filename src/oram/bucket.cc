#include "oram/bucket.hh"

#include <cstring>

#include "common/log.hh"

namespace tcoram::oram {

Bucket::Bucket(unsigned z, std::uint64_t block_bytes)
    : blockBytes_(block_bytes)
{
    tcoram_assert(z > 0, "bucket needs at least one slot");
    slots_.resize(z);
    for (auto &s : slots_)
        s.payload.assign(blockBytes_, 0);
}

unsigned
Bucket::occupancy() const
{
    unsigned n = 0;
    for (const auto &s : slots_)
        if (!s.isDummy())
            ++n;
    return n;
}

bool
Bucket::insert(const BlockSlot &slot)
{
    tcoram_assert(!slot.isDummy(), "inserting a dummy");
    tcoram_assert(slot.payload.size() == blockBytes_, "payload size mismatch");
    for (auto &s : slots_) {
        if (s.isDummy()) {
            s = slot;
            return true;
        }
    }
    return false;
}

void
Bucket::clear()
{
    for (auto &s : slots_) {
        s.id = kInvalidId;
        s.leaf = 0;
        s.payload.assign(blockBytes_, 0);
    }
}

std::uint64_t
Bucket::serializedBytes() const
{
    return slots_.size() * (16 + blockBytes_);
}

std::vector<std::uint8_t>
Bucket::serialize() const
{
    std::vector<std::uint8_t> out;
    out.reserve(serializedBytes());
    for (const auto &s : slots_) {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<std::uint8_t>(s.id >> (8 * i)));
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<std::uint8_t>(s.leaf >> (8 * i)));
        out.insert(out.end(), s.payload.begin(), s.payload.end());
    }
    return out;
}

Bucket
Bucket::deserialize(const std::vector<std::uint8_t> &bytes, unsigned z,
                    std::uint64_t block_bytes)
{
    Bucket b(z, block_bytes);
    tcoram_assert(bytes.size() == b.serializedBytes(),
                  "bucket byte size mismatch");
    std::size_t off = 0;
    for (auto &s : b.slots_) {
        s.id = 0;
        s.leaf = 0;
        for (int i = 0; i < 8; ++i)
            s.id |= static_cast<std::uint64_t>(bytes[off++]) << (8 * i);
        for (int i = 0; i < 8; ++i)
            s.leaf |= static_cast<std::uint64_t>(bytes[off++]) << (8 * i);
        std::memcpy(s.payload.data(), bytes.data() + off, block_bytes);
        off += block_bytes;
    }
    return b;
}

crypto::Ciphertext
Bucket::seal(const crypto::CtrCipher &cipher, std::uint64_t nonce) const
{
    return cipher.encrypt(serialize(), nonce);
}

Bucket
Bucket::unseal(const crypto::Ciphertext &ct, const crypto::CtrCipher &cipher,
               unsigned z, std::uint64_t block_bytes)
{
    return deserialize(cipher.decrypt(ct), z, block_bytes);
}

} // namespace tcoram::oram
