/**
 * @file
 * Path ORAM geometry (paper §3, §9.1.2). Defaults mirror the paper:
 * Z = 3 blocks per bucket, 64 B data blocks, 3 levels of recursion
 * with 32 B recursive blocks. Capacity is configurable: benches use a
 * scaled-down tree, while paperConfig() reproduces the 4 GB ORAM whose
 * path moves 24.2 KB per access.
 */

#ifndef TCORAM_ORAM_ORAM_CONFIG_HH
#define TCORAM_ORAM_ORAM_CONFIG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace tcoram::oram {

struct OramConfig
{
    /** Number of logical data blocks stored. */
    std::uint64_t numBlocks = 1ull << 16;
    /** Data block (cache line) size in bytes. */
    std::uint64_t blockBytes = 64;
    /** Blocks per bucket. */
    unsigned z = 3;
    /** Per-block header stored in a bucket (id + leaf). */
    std::uint64_t headerBytes = 16;
    /** Levels of position-map recursion. */
    unsigned recursionLevels = 3;
    /** Block size of the recursive (position map) ORAMs. */
    std::uint64_t recursiveBlockBytes = 32;
    /** Stash capacity in blocks (excluding the transient path). */
    std::size_t stashCapacity = 200;

    /** Tree depth: number of levels is depth+1, leaves = 2^depth. */
    unsigned treeDepth() const;
    /** Total buckets in the tree. */
    std::uint64_t numBuckets() const;
    /** Leaves in the tree. */
    std::uint64_t numLeaves() const;
    /** Serialized bucket size in bytes (plaintext payload). */
    std::uint64_t bucketBytes() const;
    /** Bytes read (or written) for one path access of this tree. */
    std::uint64_t pathBytes() const;

    /**
     * Geometry of each recursive position-map ORAM, outermost first.
     * Level i stores the position map of level i-1 packed into
     * recursiveBlockBytes blocks (8 B per leaf label).
     */
    std::vector<OramConfig> recursionChain() const;

    /**
     * Total bytes moved on/off chip per full access (path read + path
     * write, data ORAM plus every recursive ORAM). The paper reports
     * 24.2 KB for its 4 GB configuration.
     */
    std::uint64_t totalBytesPerAccess() const;

    /** Paper-scale configuration (§9.1.2): 4 GB capacity, 1 GB working set. */
    static OramConfig paperConfig();
    /** Scaled-down default used by the benchmark harness. */
    static OramConfig benchConfig();
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_ORAM_CONFIG_HH
