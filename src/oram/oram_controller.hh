/**
 * @file
 * ORAM controller timing front-end. Sits where a DRAM controller
 * would (paper §3): the processor requests a cache line, the
 * controller charges the cost of reading + writing a full tree path in
 * the data ORAM and every recursive ORAM.
 *
 * Path ORAM's access cost is address-independent by construction
 * (every access touches one root-to-leaf path per tree), so the
 * controller derives a single per-access latency by replaying one
 * path's DRAM transactions against the banked DRAM model once at
 * construction — reproducing the paper's methodology, which quotes a
 * constant 1488-cycle / 24.2 KB access for the 4 GB configuration.
 */

#ifndef TCORAM_ORAM_ORAM_CONTROLLER_HH
#define TCORAM_ORAM_ORAM_CONTROLLER_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "dram/memory_if.hh"
#include "oram/oram_config.hh"

namespace tcoram::oram {

/** Summary of one (real or dummy) ORAM access for the power model. */
struct OramAccessCost
{
    Cycles latency = 0;
    std::uint64_t bytes = 0;
    /** 16-byte AES chunks processed (2x bytes moved: decrypt + encrypt
     *  are counted per direction separately by the caller). */
    std::uint64_t aesChunks = 0;
};

class OramController
{
  public:
    /**
     * @param cfg tree geometry
     * @param mem DRAM backing the tree (used once, for calibration)
     * @param rng randomness for the calibration path choice
     */
    OramController(const OramConfig &cfg, dram::MemoryIf &mem, Rng &rng);

    /**
     * Start an access at processor cycle @p now.
     * @return cycle at which the requested line is available (and the
     *         controller is free again; path write-back is included).
     */
    Cycles access(Cycles now);

    /** Same cost as access(); semantic distinction kept for stats. */
    Cycles dummyAccess(Cycles now);

    /** Calibrated per-access latency (the paper's OLAT). */
    Cycles accessLatency() const { return latency_; }

    /** Bytes moved over the pins per access (paper: 24.2 KB). */
    std::uint64_t bytesPerAccess() const { return bytesPerAccess_; }

    /** AES chunks per access (16 B each; paper: 2 * 758 per direction). */
    std::uint64_t chunksPerAccess() const { return chunksPerAccess_; }

    /**
     * Bytes through the bucket crypto engine per access: every byte
     * moved on/off chip is decrypted (path read) or encrypted (path
     * write-back) exactly once, so this equals bytesPerAccess().
     */
    std::uint64_t cryptoBytesPerAccess() const { return bytesPerAccess_; }

    /**
     * Batched crypto-engine invocations per access with the path-level
     * engine: one whole-path decrypt plus one whole-path encrypt per
     * tree (data + each recursive position-map ORAM).
     */
    std::uint64_t cryptoCallsPerAccess() const
    {
        return cryptoCallsPerAccess_;
    }

    std::uint64_t realAccesses() const { return realAccesses_; }
    std::uint64_t dummyAccesses() const { return dummyAccesses_; }
    std::uint64_t totalAccesses() const
    {
        return realAccesses_ + dummyAccesses_;
    }

    /** Cycle at which the controller finishes its current access. */
    Cycles busyUntil() const { return busyUntil_; }

    const OramConfig &config() const { return cfg_; }

  private:
    Cycles calibrate(dram::MemoryIf &mem, Rng &rng);
    Cycles serve(Cycles now);

    OramConfig cfg_;
    Cycles latency_ = 0;
    std::uint64_t bytesPerAccess_ = 0;
    std::uint64_t chunksPerAccess_ = 0;
    std::uint64_t cryptoCallsPerAccess_ = 0;
    Cycles busyUntil_ = 0;
    std::uint64_t realAccesses_ = 0;
    std::uint64_t dummyAccesses_ = 0;
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_ORAM_CONTROLLER_HH
