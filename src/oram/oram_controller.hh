/**
 * @file
 * ORAM controller timing front-end. Sits where a DRAM controller
 * would (paper §3): the processor requests a cache line, the
 * controller charges the cost of reading + writing a full tree path in
 * the data ORAM and every recursive ORAM.
 *
 * Path ORAM's access cost is address-independent by construction
 * (every access touches one root-to-leaf path per tree), so the
 * controller derives its per-access costs by replaying one path's DRAM
 * transactions against the banked DRAM model once at construction —
 * reproducing the paper's methodology, which quotes a constant
 * 1488-cycle / 24.2 KB access for the 4 GB configuration.
 *
 * Two path modes select what that replay models:
 *
 *  - PathMode::Sync (the paper's controller): read the whole path,
 *    then write the whole path back; the requested line is available —
 *    and the controller free — only when the last write-back bucket
 *    lands. OLAT covers both phases.
 *
 *  - PathMode::Pipelined (split-transaction controller): bucket
 *    write-backs are issued through the async dram::MemoryIf the
 *    moment their read retires (re-encryption is not cycle-charged,
 *    matching the sync model), so write-back of level k is in flight
 *    while deeper reads still stream. The requested line is available
 *    once the path read completes — OLAT shrinks to the read phase —
 *    while the write-back tail drains in the shadow of the enforced
 *    inter-access gap. occupancyPerAccess() is the full drain time;
 *    the controller does not start the next access before the previous
 *    one's write-back has retired, so the DRAM-level stream stays
 *    address- and data-independent.
 */

#ifndef TCORAM_ORAM_ORAM_CONTROLLER_HH
#define TCORAM_ORAM_ORAM_CONTROLLER_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/serial.hh"
#include "common/types.hh"
#include "dram/memory_if.hh"
#include "oram/eviction_engine.hh"
#include "oram/oram_config.hh"

namespace tcoram::oram {

/** Path read/write-back scheduling policy (SystemConfig::dramMode). */
enum class PathMode
{
    Sync,      ///< whole-path read, then whole-path write-back
    Pipelined, ///< write-backs overlap in-flight deeper reads
};

/** Summary of one (real or dummy) ORAM access for the power model. */
struct OramAccessCost
{
    Cycles latency = 0;
    std::uint64_t bytes = 0;
    /** 16-byte AES chunks processed (2x bytes moved: decrypt + encrypt
     *  are counted per direction separately by the caller). */
    std::uint64_t aesChunks = 0;
};

class OramController
{
  public:
    /**
     * @param cfg tree geometry
     * @param mem DRAM backing the tree (used once, for calibration)
     * @param rng randomness for the calibration path choice (the same
     *        draws whichever mode, so modes never shift a seeded run)
     * @param mode path scheduling policy to calibrate under
     */
    OramController(const OramConfig &cfg, dram::MemoryIf &mem, Rng &rng,
                   PathMode mode = PathMode::Sync,
                   const EvictionConfig &evict = {});

    /**
     * Start an access at processor cycle @p now.
     * @return cycle at which the requested line is available. In sync
     *         mode the controller is also free again then; in
     *         pipelined mode its write-back tail keeps the path busy
     *         until start + occupancyPerAccess().
     */
    Cycles access(Cycles now);

    /** Same cost as access(); semantic distinction kept for stats. */
    Cycles dummyAccess(Cycles now);

    /** Calibrated per-access latency (the paper's OLAT): cycles from
     *  service start until the requested line is available. */
    Cycles accessLatency() const { return latency_; }

    /**
     * Cycles from service start until the controller's DRAM traffic
     * for the access has fully drained and the next access may start.
     * Equals accessLatency() in sync mode; in pipelined mode it covers
     * the overlapped write-back tail (occupancy >= latency).
     */
    Cycles occupancyPerAccess() const { return occupancy_; }

    /** The calibrated path mode. */
    PathMode pathMode() const { return mode_; }

    /** Bytes moved over the pins per access (paper: 24.2 KB). */
    std::uint64_t bytesPerAccess() const { return bytesPerAccess_; }

    /** AES chunks per access (16 B each; paper: 2 * 758 per direction). */
    std::uint64_t chunksPerAccess() const { return chunksPerAccess_; }

    /**
     * Bytes through the bucket crypto engine per access: every byte
     * moved on/off chip is decrypted (path read) or encrypted (path
     * write-back) exactly once, so this equals bytesPerAccess().
     */
    std::uint64_t cryptoBytesPerAccess() const { return bytesPerAccess_; }

    /**
     * Batched crypto-engine invocations per access with the fused
     * path-level engine: one whole-path decrypt per tree (data + each
     * recursive position-map ORAM) plus ONE cross-stage batched
     * write-back encrypt for the whole access — H+2 for H recursion
     * stages.
     */
    std::uint64_t cryptoCallsPerAccess() const
    {
        return cryptoCallsPerAccess_;
    }

    std::uint64_t realAccesses() const { return realAccesses_; }
    std::uint64_t dummyAccesses() const { return dummyAccesses_; }
    std::uint64_t totalAccesses() const
    {
        return realAccesses_ + dummyAccesses_;
    }

    /** Cycle at which the controller's current access (including any
     *  overlapped write-back tail) stops occupying the path. */
    Cycles busyUntil() const { return busyUntil_; }

    const OramConfig &config() const { return cfg_; }

    /**
     * Background-eviction accounting for evictions issued in one idle
     * window. firstSchedule is the reverse-lexicographic schedule
     * index of the first eviction (functional devices realize
     * evictions [firstSchedule, firstSchedule + evictions) against
     * their stash).
     */
    struct EvictionCharge
    {
        std::uint32_t evictions = 0;
        std::uint64_t firstSchedule = 0;
        std::uint64_t bytesMoved = 0;
        std::uint64_t cryptoBytes = 0;
        std::uint64_t cryptoCalls = 0;
    };

    /**
     * Issue background evictions inside the idle window between
     * busyUntil() and @p horizon. The enforcer guarantees no future
     * slot can start before @p horizon, and every eviction issued here
     * fully retires by then — an eviction in flight never delays a
     * real access's slot. No-op (and zero-cost) when the engine is
     * off, so eviction-off runs stay bit-identical to pre-eviction.
     */
    EvictionCharge maybeEvict(Cycles horizon);

    const EvictionEngine &evictionEngine() const { return evict_; }

    /**
     * Modeled stash pressure, identical for timing-only and functional
     * devices: each deferred write-back tail parks one path's worth of
     * blocks in the stash until a background eviction retires it.
     */
    std::uint64_t stashOccupancy() const
    {
        return evict_.debt() * pathBlocksPerAccess_;
    }
    std::uint64_t stashHighWater() const
    {
        return evict_.highWaterDebt() * pathBlocksPerAccess_;
    }
    std::uint64_t blocksEvicted() const
    {
        return evict_.evictionsIssued() * pathBlocksPerAccess_;
    }
    std::uint64_t evictionsIssued() const
    {
        return evict_.evictionsIssued();
    }

    /**
     * Checkpoint support: the run state (busy horizon, served
     * counters). Calibration results are derived at construction and
     * asserted — not restored — so a snapshot can never smuggle in a
     * mismatched geometry.
     */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    /** One representative access's path-read transactions (all trees). */
    std::vector<dram::MemRequest> buildPathReads(Rng &rng) const;
    Cycles calibrateSync(dram::MemoryIf &mem,
                         std::span<const dram::MemRequest> reads);
    /** Sets latency_ (read done) AND occupancy_ (full drain). */
    void calibratePipelined(dram::MemoryIf &mem,
                            std::span<const dram::MemRequest> reads);
    Cycles serve(Cycles now);

    OramConfig cfg_;
    PathMode mode_;
    EvictionEngine evict_;
    Cycles latency_ = 0;
    Cycles occupancy_ = 0;
    std::uint64_t bytesPerAccess_ = 0;
    std::uint64_t chunksPerAccess_ = 0;
    std::uint64_t cryptoCallsPerAccess_ = 0;
    std::uint64_t pathBlocksPerAccess_ = 0;
    Cycles busyUntil_ = 0;
    std::uint64_t realAccesses_ = 0;
    std::uint64_t dummyAccesses_ = 0;
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_ORAM_CONTROLLER_HH
