/**
 * @file
 * Integrity verification for Path ORAM, after Ren et al. (HPEC 2013),
 * which the paper relies on for DRAM-tamper detection (§4.3) and for
 * the certified-program mitigation of §10. Two mechanisms:
 *
 * IntegrityVerifier — the Merkle tree mirroring the ORAM tree: each
 * node's digest covers its bucket ciphertext and its children's
 * digests, so verifying one root-to-leaf path costs O(path) hashes —
 * the same buckets the ORAM access already touches — and the on-chip
 * trusted state is one digest. This is the adversarial-tamper
 * detector the attack experiments drive.
 *
 * BucketAuthenticator + RecoveryEngine — the fault-tolerant datapath's
 * per-bucket HMAC tags, verified inline on every path decode
 * (oram/path_oram.cc). Per-bucket tags (rather than one Merkle root)
 * localize a corruption to the exact bucket so a bounded-retry
 * re-read can recover from TRANSIENT faults (bit flips in transit,
 * stuck bytes that heal); the trusted tag store is O(N) on-chip state,
 * the price of localization. The RecoveryEngine owns the retry budget
 * and the exponential-backoff slot schedule whose cost the
 * RateEnforcer charges into the observable stream as dummy-equivalent
 * occupancy (timing/rate_enforcer.cc) — recovery must not modulate
 * the timing channel.
 */

#ifndef TCORAM_ORAM_INTEGRITY_HH
#define TCORAM_ORAM_INTEGRITY_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "crypto/hmac.hh"
#include "crypto/sha256.hh"
#include "oram/path_oram.hh"

namespace tcoram::oram {

class IntegrityVerifier
{
  public:
    /**
     * Build the full hash tree over @p oram's current DRAM image and
     * latch the root digest on chip.
     */
    explicit IntegrityVerifier(const PathOram &oram);

    /**
     * Verify the path to @p leaf against the trusted root: recompute
     * the digests of on-path nodes from the *actual* stored
     * ciphertexts (using stored digests for off-path siblings) and
     * compare to the latched root.
     *
     * @return true iff every on-path bucket is authentic.
     */
    bool verifyPath(Leaf leaf) const;

    /**
     * Re-hash the path to @p leaf after a legitimate ORAM write-back
     * and update the trusted root. Call after every access.
     */
    void commitPath(Leaf leaf);

    /** The on-chip trusted root digest. */
    const crypto::Digest256 &root() const { return root_; }

    /** Digests recomputed since construction (cost accounting). */
    std::uint64_t hashesComputed() const { return hashes_; }

  private:
    crypto::Digest256 hashNode(std::uint64_t index) const;
    std::vector<std::uint64_t> pathIndices(Leaf leaf) const;

    const PathOram &oram_;
    std::vector<crypto::Digest256> nodeDigests_;
    crypto::Digest256 root_{};
    mutable std::uint64_t hashes_ = 0;
};

/**
 * Per-bucket HMAC-SHA256 tags over (bucket index, nonce, ciphertext).
 * Including the index prevents bucket-swap splices; including the
 * nonce binds the tag to the exact stored version.
 */
class BucketAuthenticator
{
  public:
    /**
     * @param mac_seed seed of the tag HMAC key (derived per tree)
     * @param buckets  tree size; one latched tag per bucket
     */
    BucketAuthenticator(std::uint64_t mac_seed, std::uint64_t buckets);

    /** Recompute and latch the tag of bucket @p index over @p ct. */
    void commit(std::uint64_t index, const crypto::Ciphertext &ct);

    /** Verify @p ct against bucket @p index's latched tag. */
    bool verify(std::uint64_t index, const crypto::Ciphertext &ct) const;

    std::uint64_t bucketCount() const { return tags_.size(); }

    /** Tags computed since construction (cost accounting). */
    std::uint64_t tagsComputed() const { return computed_; }

  private:
    crypto::Digest256 tagFor(std::uint64_t index,
                             const crypto::Ciphertext &ct) const;

    std::vector<std::uint8_t> key_;
    std::vector<crypto::Digest256> tags_;
    /** Reused message buffer: tagging must not allocate per bucket. */
    mutable std::vector<std::uint8_t> msgScratch_;
    mutable std::uint64_t computed_ = 0;
};

/**
 * Bounded-retry recovery policy and its counters. A detected
 * corruption triggers a re-read of the pristine DRAM ciphertext;
 * retry i costs 2^(i-1) backoff slots (exponential backoff), every
 * one of which the enforcer fires as an observable dummy-equivalent
 * slot. Budget exhaustion means the corruption is persistent — not a
 * transient fault — and recovery degrades to fatal-with-context.
 */
class RecoveryEngine
{
  public:
    static constexpr unsigned kDefaultRetryBudget = 4;

    explicit RecoveryEngine(unsigned retry_budget = kDefaultRetryBudget);

    unsigned retryBudget() const { return budget_; }

    /** Backoff slots owed for an access that needed @p retries
     *  retries: sum over i in [1, retries] of 2^(i-1). */
    static std::uint64_t
    backoffSlots(std::uint64_t retries)
    {
        return (std::uint64_t{1} << retries) - 1;
    }

    void recordDetection() { ++detected_; }
    void recordRetry() { ++retries_; }
    void recordRecovery() { ++recovered_; }

    /** Corrupted path decodes detected (one per failed verify pass). */
    std::uint64_t faultsDetected() const { return detected_; }
    /** Re-reads issued. */
    std::uint64_t retriesIssued() const { return retries_; }
    /** Accesses that saw a corruption and still completed. */
    std::uint64_t faultsRecovered() const { return recovered_; }

    /** Checkpoint support. */
    void saveState(ByteWriter &w) const;
    void restoreState(ByteReader &r);

  private:
    unsigned budget_;
    std::uint64_t detected_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t recovered_ = 0;
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_INTEGRITY_HH
