/**
 * @file
 * Merkle integrity verification for Path ORAM, after Ren et al.
 * (HPEC 2013), which the paper relies on for DRAM-tamper detection
 * (§4.3) and for the certified-program mitigation of §10. The hash
 * tree mirrors the ORAM tree: each node's digest covers its bucket
 * ciphertext and its children's digests, so verifying one root-to-
 * leaf path costs O(path) hashes — the same buckets the ORAM access
 * already touches — and the on-chip trusted state is one digest.
 */

#ifndef TCORAM_ORAM_INTEGRITY_HH
#define TCORAM_ORAM_INTEGRITY_HH

#include <cstdint>
#include <vector>

#include "crypto/sha256.hh"
#include "oram/path_oram.hh"

namespace tcoram::oram {

class IntegrityVerifier
{
  public:
    /**
     * Build the full hash tree over @p oram's current DRAM image and
     * latch the root digest on chip.
     */
    explicit IntegrityVerifier(const PathOram &oram);

    /**
     * Verify the path to @p leaf against the trusted root: recompute
     * the digests of on-path nodes from the *actual* stored
     * ciphertexts (using stored digests for off-path siblings) and
     * compare to the latched root.
     *
     * @return true iff every on-path bucket is authentic.
     */
    bool verifyPath(Leaf leaf) const;

    /**
     * Re-hash the path to @p leaf after a legitimate ORAM write-back
     * and update the trusted root. Call after every access.
     */
    void commitPath(Leaf leaf);

    /** The on-chip trusted root digest. */
    const crypto::Digest256 &root() const { return root_; }

    /** Digests recomputed since construction (cost accounting). */
    std::uint64_t hashesComputed() const { return hashes_; }

  private:
    crypto::Digest256 hashNode(std::uint64_t index) const;
    std::vector<std::uint64_t> pathIndices(Leaf leaf) const;

    const PathOram &oram_;
    std::vector<crypto::Digest256> nodeDigests_;
    crypto::Digest256 root_{};
    mutable std::uint64_t hashes_ = 0;
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_INTEGRITY_HH
