/**
 * @file
 * Sharded ORAM device array: the logical block space is split across M
 * independent subtree devices (each a factory-made timing or
 * functional backend over 1/M of the blocks), so aggregate throughput
 * scales past one device's slot rate while the observable channel
 * stays M indistinguishable periodic streams — one per shard, each
 * driven by its own RateEnforcer (timing/shard_slot.hh).
 *
 * Routing is a dedicated AES-based PRF over the block id — NOT
 * std::hash, whose result is implementation-defined — so shard
 * assignment is reproducible across platforms, runs and compilers
 * (pinned by tests/test_sharded.cc). The router itself is
 * allocation-free; only functional inners pay a shard-local id
 * compaction map, keeping RDCA's "cost lives in the devices, not the
 * dispatch path" property for the default timing backend.
 *
 * Leakage composition: each shard's enforced stream leaks at most
 * |E| * lg|R| bits (§6.1) and the M streams are mutually independent
 * given the public rate schedule, so the channels compose additively
 * (§10): the array leaks at most M * |E| * lg|R| bits. Admission and
 * the shared LeakageMonitor account for the composed bound
 * (protocol::LeakageParams::shards, sim/oram_scheduler.hh).
 *
 * With M = 1 the wrapper is transparent: the single inner device is
 * built from the identical factory spec with the identical calibration
 * RNG draws, so a 1-shard array is bit-identical to the bare device
 * (golden-stats pinned).
 */

#ifndef TCORAM_ORAM_SHARDED_DEVICE_HH
#define TCORAM_ORAM_SHARDED_DEVICE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "crypto/prf.hh"
#include "oram/oram_device.hh"

namespace tcoram::oram {

/**
 * Deterministic PRF router: blockId -> shard. Stateless, allocation-
 * free, and platform-independent (AES under a seed-derived key).
 */
class ShardRouter
{
  public:
    ShardRouter(std::uint64_t route_seed, std::uint32_t shard_count);

    std::uint32_t shardOf(std::uint64_t block_id) const;
    std::uint32_t shardCount() const { return shards_; }

  private:
    crypto::Prf prf_;
    std::uint32_t shards_;
};

class ShardedOramDevice : public timing::OramDeviceIf
{
  public:
    /**
     * @param inner_spec backend spec of each subtree device (kind must
     *        be a non-sharded kind; shards in the spec are ignored)
     * @param cfg modeled geometry of the WHOLE tree; each shard gets
     *        ceil(numBlocks / M) blocks of it (a shallower subtree)
     * @param shards M >= 1
     * @param route_seed PRF key seed for the block router
     * @param mem DRAM model shard calibrations replay against
     * @param rng calibration randomness (per-shard streams drawn in
     *        shard order; M = 1 consumes the bare device's draws)
     * @param record wrap every shard in a RecordingOramDevice so tests
     *        and benches can pin the per-shard observable streams
     */
    ShardedOramDevice(const OramDeviceSpec &inner_spec,
                      const OramConfig &cfg, std::uint32_t shards,
                      std::uint64_t route_seed, dram::MemoryIf &mem,
                      Rng &rng, bool record = false);

    const char *kind() const override { return "sharded"; }

    /**
     * Route a real transaction: returns its shard and, for functional
     * inners, rewrites txn.blockId to the shard-local (first-touch
     * dense) id. Per-shard drivers (ShardSlot enforcers, the sharded
     * processor backend) call this and then serve txn on shard(i);
     * submit() does the same internally for unsharded drivers.
     */
    std::uint32_t route(timing::OramTransaction &txn);

    /** Router decision alone (no id rewrite) — histograms, tests. */
    std::uint32_t shardOf(std::uint64_t block_id) const
    {
        return router_.shardOf(block_id);
    }

    /**
     * Split routing for concurrent drivers (sim/shard_worker.hh): the
     * PRF decision is stateless and safe from any thread, while the
     * functional-inner id compaction mutates per-shard state —
     * localize() must be called from whatever context owns the shard.
     * routeOf(txn) then localize(s, txn) == route(txn).
     */
    std::uint32_t routeOf(const timing::OramTransaction &txn) const;
    void localize(std::uint32_t shard, timing::OramTransaction &txn);

    std::uint32_t shardCount() const { return router_.shardCount(); }

    /**
     * Shard @p i's device endpoint (the recorder when recording).
     * Per-shard enforcers drive this directly so each shard's stream
     * is timed — and observed — independently.
     */
    timing::OramDeviceIf &shard(std::uint32_t i);
    const timing::OramDeviceIf &shard(std::uint32_t i) const;

    /** Shard @p i's recorded stream (nullptr unless record = true). */
    const timing::RecordingOramDevice *recorder(std::uint32_t i) const;

    /** Shard @p i's bare backend, bypassing any recorder (fault-
     *  counter probes; submissions belong on shard()). */
    timing::OramDeviceIf &innerDevice(std::uint32_t i);
    const timing::OramDeviceIf &innerDevice(std::uint32_t i) const;

    /**
     * Unsharded-driver path (base_oram, single global enforcer): reals
     * route by PRF, dummies round-robin so every shard's stream stays
     * fed. Shards serialize independently, so back-to-back submissions
     * to distinct shards overlap.
     */
    timing::OramCompletion submit(Cycles now,
                                  const timing::OramTransaction &txn)
        override;

    /** Max per-shard calibrated latency (shards calibrate their own
     *  streams; subtree OLATs can differ by a few cycles). */
    Cycles accessLatency() const override;
    /** Max per-shard path occupancy (== accessLatency() in sync mode). */
    Cycles occupancyPerAccess() const override;
    std::uint64_t bytesPerAccess() const override;
    std::uint64_t cryptoBytesPerAccess() const override;
    std::uint64_t cryptoCallsPerAccess() const override;
    /** Sums over shards. */
    std::uint64_t realAccesses() const override;
    std::uint64_t dummyAccesses() const override;

    /**
     * Unsharded-driver path: forward the eviction window to every
     * shard (per-shard enforcers instead call maybeEvict on their own
     * shard() endpoint). Charges are summed.
     */
    timing::OramEvictionCharge maybeEvict(Cycles horizon) override;
    /** Stash/eviction telemetry, summed over shards. */
    std::uint64_t stashOccupancy() const override;
    std::uint64_t stashHighWater() const override;
    std::uint64_t blocksEvicted() const override;
    std::uint64_t evictionsIssued() const override;

    /** Geometry each shard models (numBlocks = ceil(whole / M)). */
    const OramConfig &shardConfig() const { return shardCfg_; }

    /**
     * Checkpoint support: the dummy round-robin cursor, the functional
     * id-compaction maps, and every shard endpoint (the recorder when
     * recording, so restored runs replay the full observable streams).
     */
    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    ShardRouter router_;
    OramConfig shardCfg_;
    std::vector<std::unique_ptr<timing::OramDeviceIf>> inner_;
    std::vector<std::unique_ptr<timing::RecordingOramDevice>> recorders_;
    /** Functional inners only: global id -> dense shard-local id. */
    bool compactIds_ = false;
    std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> localIds_;
    std::uint32_t nextDummyShard_ = 0;
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_SHARDED_DEVICE_HH
