#include "oram/bucket_codec.hh"

#include <cstring>

#include "common/log.hh"
#include "oram/bucket.hh"

namespace tcoram::oram {

BucketCodec::BucketCodec(unsigned z, std::uint64_t block_bytes)
    : z_(z), blockBytes_(block_bytes)
{
    tcoram_assert(z_ > 0, "bucket codec needs at least one slot");
}

void
BucketCodec::encode(const Bucket &bucket, std::span<std::uint8_t> out) const
{
    tcoram_assert(bucket.slots().size() == z_, "bucket Z mismatch");
    tcoram_assert(out.size() == serializedBytes(),
                  "encode buffer size mismatch");
    std::size_t off = 0;
    for (const auto &s : bucket.slots()) {
        tcoram_assert(s.payload.size() == blockBytes_,
                      "slot payload size mismatch");
        for (int i = 0; i < 8; ++i)
            out[off++] = static_cast<std::uint8_t>(s.id >> (8 * i));
        for (int i = 0; i < 8; ++i)
            out[off++] = static_cast<std::uint8_t>(s.leaf >> (8 * i));
        std::memcpy(out.data() + off, s.payload.data(), blockBytes_);
        off += blockBytes_;
    }
}

void
BucketCodec::decode(std::span<const std::uint8_t> in, Bucket &bucket) const
{
    tcoram_assert(bucket.slots().size() == z_, "bucket Z mismatch");
    tcoram_assert(in.size() == serializedBytes(),
                  "decode buffer size mismatch");
    std::size_t off = 0;
    for (auto &s : bucket.slots()) {
        s.id = 0;
        s.leaf = 0;
        for (int i = 0; i < 8; ++i)
            s.id |= static_cast<std::uint64_t>(in[off++]) << (8 * i);
        for (int i = 0; i < 8; ++i)
            s.leaf |= static_cast<std::uint64_t>(in[off++]) << (8 * i);
        s.payload.resize(blockBytes_);
        std::memcpy(s.payload.data(), in.data() + off, blockBytes_);
        off += blockBytes_;
    }
}

void
BucketCodec::encodePath(std::span<const Bucket> buckets,
                        std::span<std::uint8_t> out) const
{
    tcoram_assert(out.size() == pathBytes(
                                    static_cast<unsigned>(buckets.size())),
                  "encodePath buffer size mismatch");
    const std::uint64_t sb = serializedBytes();
    for (std::size_t i = 0; i < buckets.size(); ++i)
        encode(buckets[i], out.subspan(i * sb, sb));
}

void
BucketCodec::decodePath(std::span<const std::uint8_t> in,
                        std::span<Bucket> buckets) const
{
    tcoram_assert(in.size() == pathBytes(
                                   static_cast<unsigned>(buckets.size())),
                  "decodePath buffer size mismatch");
    const std::uint64_t sb = serializedBytes();
    for (std::size_t i = 0; i < buckets.size(); ++i)
        decode(in.subspan(i * sb, sb), buckets[i]);
}

} // namespace tcoram::oram
