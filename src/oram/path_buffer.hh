/**
 * @file
 * Per-ORAM-instance scratch arena. Every buffer a path access needs —
 * the plaintext bucket being (de)coded, the serialized bucket bytes,
 * and the physical-transaction trace — is allocated once here and
 * reused, so steady-state PathOram::access()/dummyAccess() perform
 * zero heap allocations. The stash's slot pool (oram/stash.hh) is the
 * remaining piece of the arena discipline.
 */

#ifndef TCORAM_ORAM_PATH_BUFFER_HH
#define TCORAM_ORAM_PATH_BUFFER_HH

#include <cstdint>
#include <vector>

#include "dram/memory_if.hh"
#include "oram/bucket.hh"
#include "oram/bucket_codec.hh"

namespace tcoram::oram {

/**
 * Record of the physical transactions one access generated. The
 * request vectors are reserved once (one read + one write per tree
 * level) and reset with clear(), which keeps their capacity.
 */
struct AccessTrace
{
    std::vector<dram::MemRequest> reads;
    std::vector<dram::MemRequest> writes;

    void reserve(std::size_t per_direction)
    {
        reads.reserve(per_direction);
        writes.reserve(per_direction);
    }

    /** Reset for the next access; keeps capacity. */
    void clear()
    {
        reads.clear();
        writes.clear();
    }

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &r : reads)
            total += r.bytes;
        for (const auto &w : writes)
            total += w.bytes;
        return total;
    }
};

/** Reusable buffers for one PathOram instance. */
struct PathBuffer
{
    /**
     * @param z bucket slots
     * @param block_bytes payload bytes per slot
     * @param levels tree levels (depth + 1), sizing the trace
     */
    PathBuffer(unsigned z, std::uint64_t block_bytes, unsigned levels)
        : scratch(z, block_bytes),
          plain(BucketCodec(z, block_bytes).serializedBytes())
    {
        trace.reserve(levels);
    }

    Bucket scratch;                   ///< plaintext bucket being processed
    std::vector<std::uint8_t> plain;  ///< serialized-bucket scratch bytes
    AccessTrace trace;                ///< transactions of the last access
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_PATH_BUFFER_HH
