/**
 * @file
 * Per-ORAM-instance scratch arena. Every buffer a path access needs —
 * the per-level plaintext buckets, the contiguous serialized-path
 * arena the batched CTR engine reads/writes, the CTR segment and
 * nonce scratch, the eviction sweep's level buckets, and the
 * physical-transaction trace — is allocated once here and reused, so
 * steady-state PathOram::access()/dummyAccess() perform zero heap
 * allocations. The stash's slot pool (oram/stash.hh) is the remaining
 * piece of the arena discipline.
 */

#ifndef TCORAM_ORAM_PATH_BUFFER_HH
#define TCORAM_ORAM_PATH_BUFFER_HH

#include <cstdint>
#include <vector>

#include "crypto/ctr.hh"
#include "dram/memory_if.hh"
#include "oram/bucket.hh"
#include "oram/bucket_codec.hh"

namespace tcoram::oram {

/**
 * Record of the physical transactions one access generated. The
 * request vectors are reserved once (one read + one write per tree
 * level) and reset with clear(), which keeps their capacity.
 */
struct AccessTrace
{
    std::vector<dram::MemRequest> reads;
    std::vector<dram::MemRequest> writes;

    void reserve(std::size_t per_direction)
    {
        reads.reserve(per_direction);
        writes.reserve(per_direction);
    }

    /** Reset for the next access; keeps capacity. */
    void clear()
    {
        reads.clear();
        writes.clear();
    }

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &r : reads)
            total += r.bytes;
        for (const auto &w : writes)
            total += w.bytes;
        return total;
    }
};

/** Reusable buffers for one PathOram instance. */
struct PathBuffer
{
    /**
     * @param z bucket slots
     * @param block_bytes payload bytes per slot
     * @param levels tree levels (depth + 1), sizing the path arena
     * @param stash_capacity stash slot-pool size, sizing the eviction
     *        sweep scratch
     */
    PathBuffer(unsigned z, std::uint64_t block_bytes, unsigned levels,
               std::size_t stash_capacity)
        : scratch(z, block_bytes),
          plain(BucketCodec(z, block_bytes).serializedBytes()),
          pathPlain(BucketCodec(z, block_bytes).pathBytes(levels))
    {
        levelBuckets.reserve(levels);
        for (unsigned l = 0; l < levels; ++l)
            levelBuckets.emplace_back(z, block_bytes);
        segments.reserve(levels);
        nonces.resize(levels);
        levelCount.resize(levels);
        levelCursor.resize(levels);
        slotLevel.reserve(stash_capacity);
        sortedSlots.reserve(stash_capacity);
        pending.reserve(stash_capacity);
        placed.reserve(stash_capacity);
        trace.reserve(levels);
    }

    Bucket scratch;                   ///< one-bucket scratch (init path)
    std::vector<std::uint8_t> plain;  ///< serialized one-bucket scratch
    std::vector<std::uint8_t> pathPlain; ///< whole-path plaintext arena
    std::vector<Bucket> levelBuckets; ///< plaintext bucket per level

    /** CTR segment list for the whole-path batched crypto call. */
    std::vector<crypto::CtrSegment> segments;
    /** Write-back nonces, drawn in one batched PRF call. */
    std::vector<std::uint64_t> nonces;

    // --- Eviction sweep scratch (bucketed by deepest legal level) ---
    std::vector<std::uint32_t> slotLevel;   ///< dl per resident slot
    std::vector<std::uint32_t> levelCount;  ///< residents per dl
    std::vector<std::uint32_t> levelCursor; ///< counting-sort cursors
    std::vector<std::uint32_t> sortedSlots; ///< pool indices, dl-desc
    std::vector<std::uint32_t> pending;     ///< overflow carry list
    std::vector<std::uint32_t> placed;      ///< slots to bulk-release

    AccessTrace trace;                ///< transactions of the last access
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_PATH_BUFFER_HH
