/**
 * @file
 * Position map interfaces. Path ORAM's invariant needs a map from
 * block id to leaf label. A FlatPositionMap models an on-chip map; the
 * ORAM-backed map (in path_oram.hh, since it composes a PathOram)
 * implements the paper's 3-level recursion where the map itself lives
 * in smaller ORAMs of 32 B blocks.
 */

#ifndef TCORAM_ORAM_POSITION_MAP_HH
#define TCORAM_ORAM_POSITION_MAP_HH

#include <cstdint>
#include <vector>

#include "common/serial.hh"
#include "common/types.hh"

namespace tcoram::oram {

class PositionMapIf
{
  public:
    virtual ~PositionMapIf() = default;

    /** Current leaf of @p id. */
    virtual Leaf get(BlockId id) = 0;

    /** Remap @p id to @p leaf. */
    virtual void set(BlockId id, Leaf leaf) = 0;

    /**
     * Fused remap: store @p leaf for @p id and return the label it
     * replaces — the one operation a Path ORAM access actually needs.
     * For an ORAM-backed map this is the whole point: one fused
     * read-patch-write path access per recursion stage instead of
     * get's read/write followed by set's read/write. The default
     * composes get+set for maps where the distinction doesn't matter.
     */
    virtual Leaf
    update(BlockId id, Leaf leaf)
    {
        const Leaf old = get(id);
        set(id, leaf);
        return old;
    }

    /** Number of mapped blocks. */
    virtual std::uint64_t size() const = 0;
};

/** Dense in-memory (on-chip) position map. */
class FlatPositionMap : public PositionMapIf
{
  public:
    /**
     * @param num_blocks number of block ids
     * @param init_leaf  initial leaf for every block (caller usually
     *                   re-randomizes at ORAM initialization)
     */
    explicit FlatPositionMap(std::uint64_t num_blocks, Leaf init_leaf = 0);

    Leaf get(BlockId id) override;
    void set(BlockId id, Leaf leaf) override;
    Leaf update(BlockId id, Leaf leaf) override;
    std::uint64_t size() const override { return map_.size(); }

    /** Checkpoint support. */
    void
    saveState(ByteWriter &w) const
    {
        w.u64(map_.size());
        for (const Leaf leaf : map_)
            w.u64(leaf);
    }

    void
    restoreState(ByteReader &r)
    {
        map_.resize(r.u64());
        for (Leaf &leaf : map_)
            leaf = r.u64();
    }

  private:
    std::vector<Leaf> map_;
};

} // namespace tcoram::oram

#endif // TCORAM_ORAM_POSITION_MAP_HH
