/**
 * @file
 * ORAM backends of the transactional device interface
 * (timing/oram_device.hh), plus the factory the sim layer selects
 * them through:
 *
 *  - TimingOramDevice:     the calibrated constant-OLAT controller
 *                          (oram/oram_controller.hh) behind submit().
 *                          No data moves; this is the paper's
 *                          methodology and the default.
 *  - FunctionalOramDevice: a real RecursivePathOram datapath — every
 *                          real access reads, re-encrypts and writes
 *                          back full paths through the bucket codec
 *                          and AES-CTR engine; every dummy touches
 *                          every tree — with cycle charging from the
 *                          SAME calibrated controller, so a run's
 *                          timing/power/leakage stats are
 *                          bit-identical to the timing device.
 *
 * The functional datapath capacity can be capped below the modeled
 * geometry (paper-scale trees are multi-GB): timing, bytes and crypto
 * attribution always reflect the modeled geometry, while block ids
 * fold into the capped functional tree. The cap only bounds host
 * memory; with an uncapped tree the datapath and the model coincide.
 */

#ifndef TCORAM_ORAM_ORAM_DEVICE_HH
#define TCORAM_ORAM_ORAM_DEVICE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "crypto/crypto_engine.hh"
#include "dram/faulty_memory.hh"
#include "dram/memory_if.hh"
#include "oram/oram_controller.hh"
#include "oram/path_oram.hh"
#include "timing/oram_device.hh"

namespace tcoram::oram {

/** Timing-model backend: OramController behind the transaction API. */
class TimingOramDevice : public timing::OramDeviceIf
{
  public:
    TimingOramDevice(const OramConfig &cfg, dram::MemoryIf &mem, Rng &rng,
                     PathMode mode = PathMode::Sync,
                     const EvictionConfig &evict = {})
        : ctrl_(cfg, mem, rng, mode, evict)
    {
    }

    const char *kind() const override { return "timing"; }

    timing::OramCompletion submit(Cycles now,
                                  const timing::OramTransaction &txn) override;

    Cycles accessLatency() const override { return ctrl_.accessLatency(); }
    Cycles occupancyPerAccess() const override
    {
        return ctrl_.occupancyPerAccess();
    }
    std::uint64_t bytesPerAccess() const override
    {
        return ctrl_.bytesPerAccess();
    }
    std::uint64_t cryptoBytesPerAccess() const override
    {
        return ctrl_.cryptoBytesPerAccess();
    }
    std::uint64_t cryptoCallsPerAccess() const override
    {
        return ctrl_.cryptoCallsPerAccess();
    }
    std::uint64_t realAccesses() const override
    {
        return ctrl_.realAccesses();
    }
    std::uint64_t dummyAccesses() const override
    {
        return ctrl_.dummyAccesses();
    }

    timing::OramEvictionCharge maybeEvict(Cycles horizon) override;
    std::uint64_t stashOccupancy() const override
    {
        return ctrl_.stashOccupancy();
    }
    std::uint64_t stashHighWater() const override
    {
        return ctrl_.stashHighWater();
    }
    std::uint64_t blocksEvicted() const override
    {
        return ctrl_.blocksEvicted();
    }
    std::uint64_t evictionsIssued() const override
    {
        return ctrl_.evictionsIssued();
    }

    const OramController &controller() const { return ctrl_; }

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    OramController ctrl_;
};

/**
 * Functional backend: real data movement with timing-device charging.
 * Construction consumes the identical calibration RNG draws as
 * TimingOramDevice, so swapping devices never shifts a seeded run.
 */
class FunctionalOramDevice : public timing::OramDeviceIf
{
  public:
    /**
     * @param cfg modeled geometry (calibration and cost attribution)
     * @param mem DRAM model the latency calibration replays against
     * @param rng calibration path randomness (same draws as timing)
     * @param key_seed bucket-encryption/PRF key seed for the datapath
     * @param datapath_block_cap functional tree capacity cap in blocks
     *        (0 = uncapped); ids fold modulo the realized capacity
     * @param backend bucket-crypto engine (Auto = process default)
     * @param mode path scheduling policy the charging is calibrated
     *        under (the datapath itself is mode-independent)
     * @param evict background eviction engine configuration
     * @param dp recursion datapath structure (oram/path_oram.hh);
     *        observable stats are datapath-independent
     */
    FunctionalOramDevice(
        const OramConfig &cfg, dram::MemoryIf &mem, Rng &rng,
        std::uint64_t key_seed, std::uint64_t datapath_block_cap = 0,
        crypto::CryptoBackend backend = crypto::CryptoBackend::Auto,
        PathMode mode = PathMode::Sync, const EvictionConfig &evict = {},
        Datapath dp = Datapath::Fused);

    const char *kind() const override { return "functional"; }

    timing::OramCompletion submit(Cycles now,
                                  const timing::OramTransaction &txn) override;

    Cycles accessLatency() const override { return ctrl_.accessLatency(); }
    Cycles occupancyPerAccess() const override
    {
        return ctrl_.occupancyPerAccess();
    }
    std::uint64_t bytesPerAccess() const override
    {
        return ctrl_.bytesPerAccess();
    }
    std::uint64_t cryptoBytesPerAccess() const override
    {
        return ctrl_.cryptoBytesPerAccess();
    }
    std::uint64_t cryptoCallsPerAccess() const override
    {
        return ctrl_.cryptoCallsPerAccess();
    }
    std::uint64_t realAccesses() const override
    {
        return ctrl_.realAccesses();
    }
    std::uint64_t dummyAccesses() const override
    {
        return ctrl_.dummyAccesses();
    }

    /**
     * Background evictions: the controller's engine decides how many
     * fit the window and charges modeled costs; each one is then
     * realized against the functional stash via
     * RecursivePathOram::backgroundEvict, so the drained blocks really
     * land back in the tree. Telemetry accessors report the modeled
     * (controller-derived) values, identical to the timing device.
     */
    timing::OramEvictionCharge maybeEvict(Cycles horizon) override;
    std::uint64_t stashOccupancy() const override
    {
        return ctrl_.stashOccupancy();
    }
    std::uint64_t stashHighWater() const override
    {
        return ctrl_.stashHighWater();
    }
    std::uint64_t blocksEvicted() const override
    {
        return ctrl_.blocksEvicted();
    }
    std::uint64_t evictionsIssued() const override
    {
        return ctrl_.evictionsIssued();
    }

    /** The functional tree stack (attack probes, tests). */
    RecursivePathOram &functionalOram() { return *func_; }
    const RecursivePathOram &functionalOram() const { return *func_; }

    /** Realized functional capacity (after the cap). */
    std::uint64_t functionalBlocks() const
    {
        return funcCfg_.numBlocks;
    }

    /** Cumulative bytes the functional datapath actually moved. */
    std::uint64_t dataBytesMoved() const { return dataBytesMoved_; }

    /**
     * Arm the fault-tolerant datapath: enable per-bucket HMAC
     * verification on every tree (tag key derived from the device's
     * key seed) and, when @p spec carries data-fault kinds, attach a
     * seeded injector corrupting path-read copies. Completions then
     * report the faults detected / re-reads issued per transaction so
     * the enforcer can charge recovery into the observable stream.
     */
    void enableFaultModel(const dram::FaultSpec &spec,
                          unsigned retry_budget = 4);
    bool faultModelEnabled() const { return func_->dataOram()
                                                .integrityEnabled(); }

    /** Cumulative recovery counters (zero until enableFaultModel). */
    std::uint64_t faultsDetected() const { return func_->faultsDetected(); }
    std::uint64_t faultsRecovered() const
    {
        return func_->faultsRecovered();
    }
    std::uint64_t retriesIssued() const { return func_->retriesIssued(); }
    std::uint64_t faultsInjected() const
    {
        return injector_ ? injector_->faultsInjected() : 0;
    }

    void saveState(ByteWriter &w) const override;
    void restoreState(ByteReader &r) override;

  private:
    OramController ctrl_;    ///< timing calibration + busy/served counters
    OramConfig funcCfg_;     ///< capped functional geometry
    std::uint64_t keySeed_;  ///< datapath key seed (tag key derivation)
    std::unique_ptr<RecursivePathOram> func_;
    std::unique_ptr<dram::FaultInjector> injector_;
    std::vector<std::uint8_t> scratchOut_;
    std::vector<std::uint8_t> scratchData_;
    std::uint64_t dataBytesMoved_ = 0;
};

/** Selection spec the sim layer derives from its SystemConfig. */
struct OramDeviceSpec
{
    /** "timing", "functional" or "sharded" (M-subtree array). */
    std::string kind = "timing";
    /** Functional datapath key seed. */
    std::uint64_t keySeed = 1;
    /** Functional capacity cap in blocks (0 = uncapped; per shard). */
    std::uint64_t functionalBlockCap = 0;
    /** Bucket-crypto engine for the functional datapath. */
    crypto::CryptoBackend cryptoBackend = crypto::CryptoBackend::Auto;
    /** Recursion datapath structure for the functional backend (fused
     *  map updates + batched cross-stage crypto by default; the
     *  FusedImmediate/Legacy references exist for differential tests
     *  and benchmarking). */
    Datapath datapath = Datapath::Fused;

    /**
     * Path read/write-back scheduling the per-access charging is
     * calibrated under (SystemConfig::dramMode). Pipelined shrinks
     * OLAT to the path-read phase and reports the full-drain time as
     * occupancyPerAccess(); Sync is the paper's blocking controller.
     */
    PathMode pathMode = PathMode::Sync;

    /**
     * Subtree count for the sharded array (oram/sharded_device.hh).
     * Any kind with shards > 1 is wrapped; kind "sharded" wraps even
     * at shards = 1 (the transparency the golden-stats tests pin).
     */
    std::uint32_t shards = 1;
    /** PRF key seed for the deterministic block -> shard router. */
    std::uint64_t routeSeed = 1;
    /** Backend of each subtree when kind = "sharded". */
    std::string innerKind = "timing";

    /**
     * Fault model for the datapath (dram/faulty_memory.hh). Data-fault
     * kinds (flip/stuck) arm the functional backend's fault-tolerant
     * datapath via enableFaultModel(); timing kinds (delay/refuse) are
     * the DRAM decorator's job (SystemConfig wraps the memory spec in
     * "faulty:<kind>") and are ignored here. Disabled by default.
     */
    dram::FaultSpec fault{};
    /** Retry budget of the recovery engine when the fault model is on. */
    unsigned retryBudget = 4;

    /**
     * Background eviction engine (oram/eviction_engine.hh). Off by
     * default; enabling it requires pathMode = Pipelined (validated by
     * SystemConfig, asserted by the controller). Per shard when the
     * device is sharded.
     */
    EvictionPolicy evictionPolicy = EvictionPolicy::Off;
    /** Max deferred write-back tails outstanding per device. */
    std::uint32_t evictionBudget = 0;

    EvictionConfig
    evictionConfig() const
    {
        return {evictionPolicy, evictionBudget};
    }
};

/** Registered device kinds, sorted (for --list-backends). */
std::vector<std::string> oramDeviceKinds();

/** True if @p kind names a known device backend. */
bool oramDeviceKindKnown(const std::string &kind);

/** Instantiate spec.kind over @p cfg (fatal on unknown kind). */
std::unique_ptr<timing::OramDeviceIf>
makeOramDevice(const OramDeviceSpec &spec, const OramConfig &cfg,
               dram::MemoryIf &mem, Rng &rng);

} // namespace tcoram::oram

#endif // TCORAM_ORAM_ORAM_DEVICE_HH
