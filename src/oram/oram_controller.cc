#include "oram/oram_controller.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::oram {

OramController::OramController(const OramConfig &cfg, dram::MemoryIf &mem,
                               Rng &rng, PathMode mode,
                               const EvictionConfig &evict)
    : cfg_(cfg), mode_(mode), evict_(evict)
{
    // The calibration path choice consumes identical RNG draws in both
    // modes, so switching modes never shifts any later seeded draw.
    const std::vector<dram::MemRequest> reads = buildPathReads(rng);
    if (mode_ == PathMode::Sync) {
        latency_ = calibrateSync(mem, reads);
        occupancy_ = latency_;
    } else {
        calibratePipelined(mem, reads);
    }
    tcoram_assert(occupancy_ >= latency_,
                  "write-back tail cannot retire before the read phase");
    bytesPerAccess_ = cfg_.totalBytesPerAccess();
    chunksPerAccess_ = divCeil(bytesPerAccess_, 16);
    // Fused datapath: one batched whole-path decrypt per tree plus ONE
    // cross-stage batched write-back encrypt for the whole access —
    // H+2 engine calls for H recursion stages (path_oram.hh).
    cryptoCallsPerAccess_ = cfg_.recursionChain().size() + 2;
    std::vector<OramConfig> trees = cfg_.recursionChain();
    trees.insert(trees.begin(), cfg_);
    for (const auto &tree : trees)
        pathBlocksPerAccess_ += tree.z * (tree.treeDepth() + 1);
    if (evict_.enabled()) {
        tcoram_assert(mode_ == PathMode::Pipelined,
                      "background eviction requires the pipelined path "
                      "mode (the sync controller has no write-back tail "
                      "to defer)");
        // Calibrate the eviction's path occupancy by replaying the
        // SAME read set (no extra RNG draws, so enabling the engine
        // never shifts any later seeded draw) against freshly-reset
        // bank timing, mirroring the controller's own calibration.
        mem.resetTiming();
        evict_.calibrate(mem, reads);
    }
}

std::vector<dram::MemRequest>
OramController::buildPathReads(Rng &rng) const
{
    // One representative access: for the data tree and each recursive
    // tree, every bucket on a random root-to-leaf path.
    std::vector<OramConfig> trees = cfg_.recursionChain();
    trees.insert(trees.begin(), cfg_);

    std::vector<dram::MemRequest> reads;
    Addr base = 0;
    for (const auto &tree : trees) {
        const unsigned depth = tree.treeDepth();
        const Leaf leaf = rng.nextBounded(tree.numLeaves());
        std::uint64_t idx = 0;
        reads.push_back({base, tree.bucketBytes(), false});
        for (unsigned l = 0; l < depth; ++l) {
            const std::uint64_t bit = (leaf >> (depth - 1 - l)) & 1;
            idx = 2 * idx + 1 + bit;
            reads.push_back(
                {base + idx * tree.bucketBytes(), tree.bucketBytes(),
                 false});
        }
        base += tree.numBuckets() * tree.bucketBytes();
    }
    return reads;
}

Cycles
OramController::calibrateSync(dram::MemoryIf &mem,
                              std::span<const dram::MemRequest> reads)
{
    // Replay the DRAM transactions of one representative access: read
    // every bucket on the path, then write the path back. Reads are
    // issued as fast as the controller can stream them (channel buses
    // serialize transfers); the write-back phase begins once the read
    // phase completes, matching a read-path-then-write-path controller.
    const Cycles start = 1000; // arbitrary warm start

    const Cycles read_done = mem.accessBatch(start, reads);

    std::vector<dram::MemRequest> writes(reads.begin(), reads.end());
    for (auto &req : writes)
        req.isWrite = true;
    const Cycles done = mem.accessBatch(read_done, writes);
    tcoram_assert(done > start, "calibration produced zero latency");
    return done - start;
}

void
OramController::calibratePipelined(dram::MemoryIf &mem,
                                   std::span<const dram::MemRequest> reads)
{
    // The retire-event loop lives in the eviction engine now (it
    // calibrates evictions through the same replay); OLAT is the read
    // phase, occupancy runs until the last write-back retires.
    const PipelinedPathTiming t = replayPipelinedPath(mem, reads);
    latency_ = t.readDone;
    occupancy_ = t.allDone;
}

Cycles
OramController::serve(Cycles now)
{
    // The path (banks, buses, and in pipelined mode the write-back
    // tail) is occupied for occupancy_ cycles; the requested line is
    // available latency_ cycles after service start. In sync mode the
    // two coincide and this is the pre-split behaviour exactly.
    //
    // With the eviction engine enabled and budget headroom, the
    // write-back tail is deferred: the access occupies the path only
    // for its read phase, the evicted blocks notionally stay in the
    // stash, and a later background eviction (maybeEvict) retires the
    // tail inside an enforced-gap idle window. Real and dummy accesses
    // take this branch identically, so deferral depends only on the
    // public slot count, never on data.
    const Cycles start = std::max(now, busyUntil_);
    if (evict_.canDefer()) {
        busyUntil_ = start + latency_;
        evict_.deferWriteback();
    } else {
        busyUntil_ = start + occupancy_;
    }
    return start + latency_;
}

OramController::EvictionCharge
OramController::maybeEvict(Cycles horizon)
{
    EvictionCharge c;
    if (!evict_.wantsEviction())
        return c;
    c.firstSchedule = evict_.evictionsIssued();
    const Cycles d = evict_.evictionDuration();
    while (evict_.debt() > 0 && busyUntil_ + d <= horizon) {
        busyUntil_ += d;
        evict_.issueEviction();
        ++c.evictions;
        // On the wire an eviction is a dummy access: same bytes over
        // the pins, same per-tree path decrypts and single batched
        // write-back flush.
        c.bytesMoved += bytesPerAccess_;
        c.cryptoBytes += bytesPerAccess_;
        c.cryptoCalls += cryptoCallsPerAccess_;
    }
    return c;
}

Cycles
OramController::access(Cycles now)
{
    ++realAccesses_;
    return serve(now);
}

Cycles
OramController::dummyAccess(Cycles now)
{
    ++dummyAccesses_;
    return serve(now);
}

void
OramController::saveState(ByteWriter &w) const
{
    w.u64(latency_);
    w.u64(occupancy_);
    w.u64(bytesPerAccess_);
    w.u64(chunksPerAccess_);
    w.u64(cryptoCallsPerAccess_);
    w.u64(busyUntil_);
    w.u64(realAccesses_);
    w.u64(dummyAccesses_);
    evict_.saveState(w);
}

void
OramController::restoreState(ByteReader &r)
{
    const Cycles latency = r.u64();
    const Cycles occupancy = r.u64();
    tcoram_assert(latency == latency_ && occupancy == occupancy_,
                  "controller snapshot calibrated for a different "
                  "geometry (latency ", latency, " vs ", latency_, ")");
    // Same cycle costs do not imply the same bucket geometry: a
    // different recursion split can calibrate to identical latencies
    // while moving different bytes per access. Reject those too.
    const std::uint64_t bytes = r.u64();
    const std::uint64_t chunks = r.u64();
    const std::uint64_t crypto_calls = r.u64();
    tcoram_assert(bytes == bytesPerAccess_ && chunks == chunksPerAccess_ &&
                      crypto_calls == cryptoCallsPerAccess_,
                  "controller snapshot taken under a different bucket "
                  "geometry (bytes/access ", bytes, " vs ", bytesPerAccess_,
                  ", crypto calls ", crypto_calls, " vs ",
                  cryptoCallsPerAccess_, ")");
    busyUntil_ = r.u64();
    realAccesses_ = r.u64();
    dummyAccesses_ = r.u64();
    evict_.restoreState(r);
}

} // namespace tcoram::oram
