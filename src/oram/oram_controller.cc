#include "oram/oram_controller.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::oram {

OramController::OramController(const OramConfig &cfg, dram::MemoryIf &mem,
                               Rng &rng)
    : cfg_(cfg)
{
    latency_ = calibrate(mem, rng);
    bytesPerAccess_ = cfg_.totalBytesPerAccess();
    chunksPerAccess_ = divCeil(bytesPerAccess_, 16);
    // One batched whole-path decrypt + one encrypt per tree.
    cryptoCallsPerAccess_ = 2 * (1 + cfg_.recursionChain().size());
}

Cycles
OramController::calibrate(dram::MemoryIf &mem, Rng &rng)
{
    // Replay the DRAM transactions of one representative access: for
    // the data tree and each recursive tree, read every bucket on a
    // random path, then write the path back. Reads are issued as fast
    // as the controller can stream them (channel buses serialize
    // transfers); the write-back phase begins once the read phase
    // completes, matching a read-path-then-write-path controller.
    const Cycles start = 1000; // arbitrary warm start

    std::vector<OramConfig> trees = cfg_.recursionChain();
    trees.insert(trees.begin(), cfg_);

    // Gather every bucket transaction across all trees.
    std::vector<dram::MemRequest> reads;
    Addr base = 0;
    for (const auto &tree : trees) {
        const unsigned depth = tree.treeDepth();
        const Leaf leaf = rng.nextBounded(tree.numLeaves());
        std::uint64_t idx = 0;
        reads.push_back({base, tree.bucketBytes(), false});
        for (unsigned l = 0; l < depth; ++l) {
            const std::uint64_t bit = (leaf >> (depth - 1 - l)) & 1;
            idx = 2 * idx + 1 + bit;
            reads.push_back(
                {base + idx * tree.bucketBytes(), tree.bucketBytes(),
                 false});
        }
        base += tree.numBuckets() * tree.bucketBytes();
    }

    const Cycles read_done = mem.accessBatch(start, reads);

    std::vector<dram::MemRequest> writes = reads;
    for (auto &req : writes)
        req.isWrite = true;
    const Cycles done = mem.accessBatch(read_done, writes);
    tcoram_assert(done > start, "calibration produced zero latency");
    return done - start;
}

Cycles
OramController::serve(Cycles now)
{
    const Cycles start = std::max(now, busyUntil_);
    busyUntil_ = start + latency_;
    return busyUntil_;
}

Cycles
OramController::access(Cycles now)
{
    ++realAccesses_;
    return serve(now);
}

Cycles
OramController::dummyAccess(Cycles now)
{
    ++dummyAccesses_;
    return serve(now);
}

} // namespace tcoram::oram
