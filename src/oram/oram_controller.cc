#include "oram/oram_controller.hh"

#include <algorithm>

#include "common/bitutils.hh"
#include "common/log.hh"

namespace tcoram::oram {

OramController::OramController(const OramConfig &cfg, dram::MemoryIf &mem,
                               Rng &rng, PathMode mode)
    : cfg_(cfg), mode_(mode)
{
    // The calibration path choice consumes identical RNG draws in both
    // modes, so switching modes never shifts any later seeded draw.
    const std::vector<dram::MemRequest> reads = buildPathReads(rng);
    if (mode_ == PathMode::Sync) {
        latency_ = calibrateSync(mem, reads);
        occupancy_ = latency_;
    } else {
        calibratePipelined(mem, reads);
    }
    tcoram_assert(occupancy_ >= latency_,
                  "write-back tail cannot retire before the read phase");
    bytesPerAccess_ = cfg_.totalBytesPerAccess();
    chunksPerAccess_ = divCeil(bytesPerAccess_, 16);
    // One batched whole-path decrypt + one encrypt per tree.
    cryptoCallsPerAccess_ = 2 * (1 + cfg_.recursionChain().size());
}

std::vector<dram::MemRequest>
OramController::buildPathReads(Rng &rng) const
{
    // One representative access: for the data tree and each recursive
    // tree, every bucket on a random root-to-leaf path.
    std::vector<OramConfig> trees = cfg_.recursionChain();
    trees.insert(trees.begin(), cfg_);

    std::vector<dram::MemRequest> reads;
    Addr base = 0;
    for (const auto &tree : trees) {
        const unsigned depth = tree.treeDepth();
        const Leaf leaf = rng.nextBounded(tree.numLeaves());
        std::uint64_t idx = 0;
        reads.push_back({base, tree.bucketBytes(), false});
        for (unsigned l = 0; l < depth; ++l) {
            const std::uint64_t bit = (leaf >> (depth - 1 - l)) & 1;
            idx = 2 * idx + 1 + bit;
            reads.push_back(
                {base + idx * tree.bucketBytes(), tree.bucketBytes(),
                 false});
        }
        base += tree.numBuckets() * tree.bucketBytes();
    }
    return reads;
}

Cycles
OramController::calibrateSync(dram::MemoryIf &mem,
                              std::span<const dram::MemRequest> reads)
{
    // Replay the DRAM transactions of one representative access: read
    // every bucket on the path, then write the path back. Reads are
    // issued as fast as the controller can stream them (channel buses
    // serialize transfers); the write-back phase begins once the read
    // phase completes, matching a read-path-then-write-path controller.
    const Cycles start = 1000; // arbitrary warm start

    const Cycles read_done = mem.accessBatch(start, reads);

    std::vector<dram::MemRequest> writes(reads.begin(), reads.end());
    for (auto &req : writes)
        req.isWrite = true;
    const Cycles done = mem.accessBatch(read_done, writes);
    tcoram_assert(done > start, "calibration produced zero latency");
    return done - start;
}

void
OramController::calibratePipelined(dram::MemoryIf &mem,
                                   std::span<const dram::MemRequest> reads)
{
    // Split-transaction replay: stream the whole path read through the
    // async core, and issue each bucket's write-back the moment its
    // read retires — the re-encrypted bucket is ready then (bucket
    // crypto is charged through the counters, not in cycles, exactly
    // as in the sync model), so level k writes back while deeper reads
    // are still in flight. OLAT is the read phase (the requested line
    // cannot be returned before the deepest bucket lands); occupancy
    // runs until the last write-back retires.
    const Cycles start = 1000; // same warm start as sync

    for (const auto &req : reads)
        mem.issue(start, req);

    Cycles read_done = start;
    Cycles all_done = start;
    for (;;) {
        const Cycles at = mem.nextEventAt();
        if (at == dram::kNoPendingEvent)
            break;
        for (const dram::Retired &r : mem.drainRetired(at)) {
            all_done = std::max(all_done, r.completed);
            if (!r.req.isWrite) {
                read_done = std::max(read_done, r.completed);
                dram::MemRequest wb = r.req;
                wb.isWrite = true;
                mem.issue(r.completed, wb);
            }
        }
    }
    tcoram_assert(read_done > start, "calibration produced zero latency");
    latency_ = read_done - start;
    occupancy_ = all_done - start;
}

Cycles
OramController::serve(Cycles now)
{
    // The path (banks, buses, and in pipelined mode the write-back
    // tail) is occupied for occupancy_ cycles; the requested line is
    // available latency_ cycles after service start. In sync mode the
    // two coincide and this is the pre-split behaviour exactly.
    const Cycles start = std::max(now, busyUntil_);
    busyUntil_ = start + occupancy_;
    return start + latency_;
}

Cycles
OramController::access(Cycles now)
{
    ++realAccesses_;
    return serve(now);
}

Cycles
OramController::dummyAccess(Cycles now)
{
    ++dummyAccesses_;
    return serve(now);
}

void
OramController::saveState(ByteWriter &w) const
{
    w.u64(latency_);
    w.u64(occupancy_);
    w.u64(busyUntil_);
    w.u64(realAccesses_);
    w.u64(dummyAccesses_);
}

void
OramController::restoreState(ByteReader &r)
{
    const Cycles latency = r.u64();
    const Cycles occupancy = r.u64();
    tcoram_assert(latency == latency_ && occupancy == occupancy_,
                  "controller snapshot calibrated for a different "
                  "geometry (latency ", latency, " vs ", latency_, ")");
    busyUntil_ = r.u64();
    realAccesses_ = r.u64();
    dummyAccesses_ = r.u64();
}

} // namespace tcoram::oram
