#include "oram/path_oram.hh"

#include <algorithm>
#include <bit>

#include "common/bitutils.hh"
#include "common/log.hh"
#include "dram/faulty_memory.hh"
#include "oram/eviction_engine.hh"
#include "oram/integrity.hh"

namespace tcoram::oram {

namespace {
/** Batch size for bulk bucket initialization in the constructor. */
constexpr std::size_t kInitBatch = 256;
/** Leaf labels drawn per batched PRF call (position-map remapping). */
constexpr std::size_t kLeafBatch = 32;
} // namespace

PathOram::PathOram(const OramConfig &cfg, PositionMapIf &pos_map,
                   std::uint64_t key_seed, Addr base_addr,
                   crypto::CryptoBackend backend,
                   std::optional<std::uint64_t> cipher_seed)
    : cfg_(cfg),
      posMap_(pos_map),
      cipher_(crypto::keyFromSeed(cipher_seed.value_or(key_seed)), backend),
      prf_(crypto::keyFromSeed(key_seed ^ 0x5eedf00dull), backend),
      leafPrf_(crypto::keyFromSeed(key_seed ^ 0x1eaf5eedull), backend),
      initLeafPrf_(crypto::keyFromSeed(key_seed ^ 0xf1657ace5ull), backend),
      touched_(cfg.numBlocks, false),
      stash_(cfg.stashCapacity, cfg.blockBytes),
      codec_(cfg.z, cfg.blockBytes),
      baseAddr_(base_addr),
      buf_(cfg.z, cfg.blockBytes, cfg.treeDepth() + 1, cfg.stashCapacity)
{
    tcoram_assert(pos_map.size() >= cfg_.numBlocks,
                  "position map smaller than block count");

    leafCache_.resize(kLeafBatch);
    leafPos_ = leafCache_.size(); // force a refill on first use

    // Initialize every bucket to an all-dummy encrypted state. Blocks
    // are lazily materialized (zero-filled) on first access; until then
    // their position-map entry (leaf 0 by convention) is irrelevant
    // because readPath() simply won't find them and the first access
    // remaps them to a fresh uniform leaf.
    //
    // The whole tree shares one all-dummy plaintext; nonces are drawn
    // in bulk and buckets encrypted kInitBatch at a time through the
    // batched CTR engine.
    const std::uint64_t buckets = cfg_.numBuckets();
    const std::uint64_t sb = codec_.serializedBytes();
    dram_.resize(buckets);
    codec_.encode(buf_.scratch, buf_.plain); // scratch starts all-dummy

    std::vector<std::uint64_t> nonces(
        std::min<std::uint64_t>(kInitBatch, buckets));
    std::vector<crypto::CtrSegment> segs;
    segs.reserve(nonces.size());
    for (std::uint64_t base = 0; base < buckets; base += kInitBatch) {
        const std::uint64_t n =
            std::min<std::uint64_t>(kInitBatch, buckets - base);
        prf_.nextMany({nonces.data(), n});
        nonceDraws_ += n;
        segs.clear();
        for (std::uint64_t j = 0; j < n; ++j) {
            crypto::Ciphertext &ct = dram_[base + j];
            ct.nonce = nonces[j];
            ct.data.resize(sb);
            segs.push_back({ct.nonce, buf_.plain, ct.data});
        }
        cipher_.xcryptSegments(segs);
        ++cryptoCalls_;
    }
}

PathOram::~PathOram() = default;

std::uint64_t
PathOram::bucketIndexOnPath(Leaf leaf, unsigned level) const
{
    tcoram_assert(level <= cfg_.treeDepth(), "level beyond tree depth");
    tcoram_assert(leaf < cfg_.numLeaves(), "leaf out of range");
    // Heap numbering: root = 0; the path to `leaf` follows the leaf's
    // bits from the most significant (below the root) downward.
    std::uint64_t idx = 0;
    for (unsigned l = 0; l < level; ++l) {
        const std::uint64_t bit =
            (leaf >> (cfg_.treeDepth() - 1 - l)) & 1;
        idx = 2 * idx + 1 + bit;
    }
    return idx;
}

Addr
PathOram::bucketAddr(std::uint64_t index) const
{
    return baseAddr_ + index * cfg_.bucketBytes();
}

const crypto::Ciphertext &
PathOram::bucketCiphertext(std::uint64_t index) const
{
    tcoram_assert(index < dram_.size(), "bucket index out of range");
    return dram_[index];
}

void
PathOram::tamperCiphertext(std::uint64_t bucket_index,
                           std::size_t byte_index)
{
    tcoram_assert(bucket_index < dram_.size(), "bucket index out of range");
    auto &data = dram_[bucket_index].data;
    tcoram_assert(!data.empty(), "empty ciphertext");
    data[byte_index % data.size()] ^= 0x01;
}

Leaf
PathOram::nextLeaf()
{
    // Batched position-map remapping: leaves are drawn kLeafBatch at a
    // time through Prf::evalMany (one engine call), then consumed with
    // rejection sampling (a no-op for power-of-two leaf counts).
    const std::uint64_t bound = cfg_.numLeaves();
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        if (leafPos_ == leafCache_.size()) {
            leafPrf_.nextMany(leafCache_);
            leafPos_ = 0;
        }
        ++leafDraws_;
        const std::uint64_t r = leafCache_[leafPos_++];
        if (r >= threshold)
            return r % bound;
    }
}

void
PathOram::readPath(Leaf leaf)
{
    // Self-heal an out-of-band read-after-defer: if this tree's last
    // write-back is still pending in the batch, its DRAM ciphertexts
    // are stale while the bucket nonces were already bumped at defer
    // time — decrypting now would fill the stash with garbage. The
    // fused access cascade flushes at end-of-access before any tree is
    // touched again, so this never fires on the hot path; it exists
    // for out-of-band consultations (position-map reads from
    // checkInvariant, direct per-tree access in tests).
    if (batch_ != nullptr && deferEpoch_ == batch_->epoch())
        batch_->flush();
    if (auth_ != nullptr) {
        verifiedReadPath(leaf);
        return;
    }
    // Gather every bucket ciphertext on the path, decrypt them all
    // with ONE batched CTR call into the contiguous path arena, then
    // decode level by level into the stash.
    const unsigned levels = cfg_.treeDepth() + 1;
    const std::uint64_t sb = codec_.serializedBytes();
    buf_.segments.clear();
    for (unsigned level = 0; level < levels; ++level) {
        const std::uint64_t idx = bucketIndexOnPath(leaf, level);
        buf_.trace.reads.push_back(
            {bucketAddr(idx), cfg_.bucketBytes(), false});
        const crypto::Ciphertext &ct = dram_[idx];
        buf_.segments.push_back(
            {ct.nonce, ct.data,
             std::span<std::uint8_t>(buf_.pathPlain)
                 .subspan(level * sb, sb)});
    }
    cipher_.xcryptSegments(buf_.segments);
    ++cryptoCalls_;
    codec_.decodePath(buf_.pathPlain, buf_.levelBuckets);

    for (const Bucket &b : buf_.levelBuckets)
        for (const auto &slot : b.slots())
            if (!slot.isDummy())
                stash_.put(slot);
}

void
PathOram::verifiedReadPath(Leaf leaf)
{
    // Verified variant of readPath: each on-path ciphertext is COPIED
    // into the read scratch arena, the attached injector corrupts the
    // copy (transient-fault model: DRAM itself stays pristine, except
    // for stuck bytes the injector re-applies), and every bucket is
    // authenticated against its latched HMAC tag before the batched
    // decrypt. A mismatch discards the whole copy and re-reads; the
    // retry loop is bounded by the recovery budget, and each re-read
    // appears in the access trace (it moves real DRAM bytes).
    const unsigned levels = cfg_.treeDepth() + 1;
    const std::uint64_t sb = codec_.serializedBytes();
    const unsigned budget = recovery_->retryBudget();
    bool detected_any = false;
    for (unsigned attempt = 0;; ++attempt) {
        buf_.segments.clear();
        bool all_ok = true;
        std::uint64_t bad_idx = 0;
        for (unsigned level = 0; level < levels; ++level) {
            const std::uint64_t idx = bucketIndexOnPath(leaf, level);
            buf_.trace.reads.push_back(
                {bucketAddr(idx), cfg_.bucketBytes(), false});
            crypto::Ciphertext &copy = readScratch_[level];
            copy.nonce = dram_[idx].nonce;
            tcoram_assert(copy.data.size() == dram_[idx].data.size(),
                          "read scratch size drift");
            std::copy(dram_[idx].data.begin(), dram_[idx].data.end(),
                      copy.data.begin());
            // Corrupt every level's copy before verifying any, so the
            // injector's draw stream does not depend on which bucket
            // fails first.
            if (injector_ != nullptr)
                injector_->maybeCorrupt(idx, copy.data);
            if (all_ok && !auth_->verify(idx, copy)) {
                all_ok = false;
                bad_idx = idx;
            }
            buf_.segments.push_back(
                {copy.nonce, copy.data,
                 std::span<std::uint8_t>(buf_.pathPlain)
                     .subspan(level * sb, sb)});
        }
        if (all_ok)
            break;
        detected_any = true;
        ++lastDetected_;
        recovery_->recordDetection();
        if (attempt == budget) {
            tcoram_fatal("integrity violation on bucket ", bad_idx,
                         " (path to leaf ", leaf, ") persists after ",
                         budget,
                         " retries — corruption is not transient, retry "
                         "budget exhausted");
        }
        ++lastRetries_;
        recovery_->recordRetry();
    }
    if (detected_any)
        recovery_->recordRecovery();

    cipher_.xcryptSegments(buf_.segments);
    ++cryptoCalls_;
    codec_.decodePath(buf_.pathPlain, buf_.levelBuckets);

    for (const Bucket &b : buf_.levelBuckets)
        for (const auto &slot : b.slots())
            if (!slot.isDummy())
                stash_.put(slot);
}

int
PathOram::deepestLegalLevel(Leaf leaf, Leaf block_leaf) const
{
    // The deepest common level of path(leaf) and path(block_leaf) is
    // the length of the common prefix of their leaf bits: depth minus
    // the bit width of the XOR of the two labels.
    const unsigned depth = cfg_.treeDepth();
    const std::uint64_t x = leaf ^ block_leaf;
    if (x == 0)
        return static_cast<int>(depth);
    return static_cast<int>(depth) - static_cast<int>(std::bit_width(x));
}

void
PathOram::evictIntoLevelBuckets(Leaf leaf)
{
    // Greedy write-back, deepest level first (standard Path ORAM
    // eviction): place each stash block in the deepest bucket on the
    // accessed path that is also on the block's own path.
    //
    // Each resident's deepest legal level is computed once (XOR of
    // leaf labels), then a stable counting sort buckets the sweep by
    // level — O(stash + levels) instead of a full stash rescan with a
    // per-slot bit walk at every level.
    const unsigned depth = cfg_.treeDepth();
    const unsigned levels = depth + 1;
    const auto active = stash_.activeIndices();
    const std::size_t n = active.size();

    buf_.slotLevel.resize(n);
    std::fill(buf_.levelCount.begin(), buf_.levelCount.end(), 0u);
    for (std::size_t i = 0; i < n; ++i) {
        const int dl =
            deepestLegalLevel(leaf, stash_.poolSlot(active[i]).leaf);
        tcoram_assert(dl >= 0 && dl <= static_cast<int>(depth),
                      "deepest legal level out of range");
        buf_.slotLevel[i] = static_cast<std::uint32_t>(dl);
        ++buf_.levelCount[static_cast<std::uint32_t>(dl)];
    }

    // Counting-sort offsets, deepest level first; ties keep the
    // stash's deterministic visit order (stable).
    std::uint32_t acc = 0;
    for (unsigned l = levels; l-- > 0;) {
        buf_.levelCursor[l] = acc;
        acc += buf_.levelCount[l];
    }
    buf_.sortedSlots.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        buf_.sortedSlots[buf_.levelCursor[buf_.slotLevel[i]]++] = active[i];

    // Deepest-first fill with an overflow carry: a block whose level-L
    // bucket is full stays eligible for every shallower level on the
    // path (its legality constraint is dl >= level).
    buf_.pending.clear();
    buf_.placed.clear();
    std::size_t next = 0; // cursor into sortedSlots
    for (unsigned l = levels; l-- > 0;) {
        Bucket &b = buf_.levelBuckets[l];
        b.clear();
        std::size_t keep = 0;
        for (const std::uint32_t idx : buf_.pending) {
            if (b.insert(stash_.poolSlot(idx)))
                buf_.placed.push_back(idx);
            else
                buf_.pending[keep++] = idx;
        }
        buf_.pending.resize(keep);
        const std::size_t end = next + buf_.levelCount[l];
        for (; next < end; ++next) {
            const std::uint32_t idx = buf_.sortedSlots[next];
            if (b.insert(stash_.poolSlot(idx)))
                buf_.placed.push_back(idx);
            else
                buf_.pending.push_back(idx);
        }
    }
    stash_.releaseMany(buf_.placed);
}

void
PathOram::writePath(Leaf leaf)
{
    const unsigned depth = cfg_.treeDepth();
    const unsigned levels = depth + 1;
    const std::uint64_t sb = codec_.serializedBytes();

    evictIntoLevelBuckets(leaf);
    codec_.encodePath(buf_.levelBuckets, buf_.pathPlain);

    // Fresh nonces for the whole path in one batched PRF call (drawn
    // deepest level first, preserving the historical stream order),
    // then ONE batched CTR call re-encrypts every bucket into the
    // stored DRAM image — or, with a crypto batch attached, the
    // segments are deferred and the owner's end-of-access flush
    // retires every tree's write-back in a single call. The keystream
    // is a pure function of (key, nonce), so deferred and immediate
    // write-backs produce bit-identical ciphertexts.
    prf_.nextMany(buf_.nonces);
    nonceDraws_ += levels;
    buf_.segments.clear();
    for (unsigned l = levels, k = 0; l-- > 0; ++k) {
        const std::uint64_t idx = bucketIndexOnPath(leaf, l);
        buf_.trace.writes.push_back(
            {bucketAddr(idx), cfg_.bucketBytes(), true});
        crypto::Ciphertext &ct = dram_[idx];
        ct.nonce = buf_.nonces[k];
        tcoram_assert(ct.data.size() == sb, "bucket ciphertext size drift");
        buf_.segments.push_back(
            {ct.nonce,
             std::span<const std::uint8_t>(buf_.pathPlain)
                 .subspan(l * sb, sb),
             ct.data});
    }
    if (batch_ != nullptr && auth_ == nullptr) {
        batch_->defer(buf_.segments);
        deferEpoch_ = batch_->epoch();
        return;
    }
    // Immediate write-back: no batch attached, or integrity enabled —
    // the tag commit below needs the ciphertext bytes now.
    cipher_.xcryptSegments(buf_.segments);
    ++cryptoCalls_;

    // Written buckets carry fresh nonces and ciphertexts: re-latch
    // their tags (the verified read authenticates against these).
    if (auth_ != nullptr) {
        for (unsigned l = 0; l < levels; ++l) {
            const std::uint64_t idx = bucketIndexOnPath(leaf, l);
            auth_->commit(idx, dram_[idx]);
        }
    }
}

std::span<std::uint8_t>
PathOram::beginAccess(BlockId id)
{
    tcoram_assert(!inAccess_, "beginAccess while an access is open");
    tcoram_assert(id < cfg_.numBlocks, "block id out of range: ", id);
    buf_.trace.clear();
    lastRetries_ = 0;
    lastDetected_ = 0;
    ++accesses_;

    // The position map is always consulted (the recursive ORAM traffic
    // must be identical for touched and untouched blocks), but a
    // never-touched block's stored label is a lazily-materialized 0 —
    // reading path(0) for every first touch would starve eviction
    // under first-touch-heavy workloads (all write-backs on one path).
    // Substitute a uniform leaf instead, modeling an ORAM whose
    // position map was randomized at initialization (§5's session
    // load); the dedicated PRF keeps the remap/nonce streams intact.
    // Draw order per access is unchanged from the unfused datapath:
    // first-touch substitute, then the remap leaf, then (in
    // writePath) the path nonces — drawStats() pins this.
    const bool first = !touched_[id];
    const Leaf subst =
        first ? static_cast<Leaf>(initLeafPrf_.next64() &
                                  (cfg_.numLeaves() - 1))
              : 0;
    if (first)
        ++initDraws_;
    touched_[id] = true;
    const Leaf new_leaf = nextLeaf();
    // Fused remap: ONE recursive access per stage retrieves the old
    // label and stores the new one.
    const Leaf mapped = posMap_.update(id, new_leaf);
    const Leaf old_leaf = first ? subst : mapped;
    lastLeaf_ = old_leaf;

    readPath(old_leaf);

    BlockSlot *slot = stash_.find(id);
    if (slot == nullptr) {
        // First touch: materialize a zero block.
        slot = stash_.emplaceFresh(id, new_leaf, cfg_.blockBytes);
    }
    slot->leaf = new_leaf;

    inAccess_ = true;
    openLeaf_ = old_leaf;
    return slot->payload;
}

void
PathOram::finishAccess()
{
    tcoram_assert(inAccess_, "finishAccess without an open beginAccess");
    inAccess_ = false;
    writePath(openLeaf_);
}

void
PathOram::accessInto(BlockId id, Op op, std::span<const std::uint8_t> data,
                     std::span<std::uint8_t> out)
{
    tcoram_assert(out.size() == cfg_.blockBytes,
                  "output buffer must be exactly one block");
    if (op == Op::Write) {
        tcoram_assert(data.size() == cfg_.blockBytes,
                      "write payload must be exactly one block");
    } else {
        tcoram_assert(data.empty(), "read access takes no payload");
    }

    std::span<std::uint8_t> payload = beginAccess(id);

    if (op == Op::Write)
        std::copy(data.begin(), data.end(), payload.begin());
    // data may alias out, so the result copy comes after the write.
    std::copy(payload.begin(), payload.end(), out.begin());

    finishAccess();
}

std::vector<std::uint8_t>
PathOram::access(BlockId id, Op op, const std::vector<std::uint8_t> &data)
{
    std::vector<std::uint8_t> out(cfg_.blockBytes);
    accessInto(id, op, data, out);
    return out;
}

void
PathOram::dummyAccess()
{
    buf_.trace.clear();
    lastRetries_ = 0;
    lastDetected_ = 0;
    ++accesses_;
    const Leaf leaf = nextLeaf();
    lastLeaf_ = leaf;
    readPath(leaf);
    writePath(leaf);
}

void
PathOram::evictPath(Leaf leaf)
{
    // A dummy access minus the leaf draw: read the caller-chosen path
    // into the stash and write it back through the ordinary eviction
    // sweep. No position-map touch, no remap, no PRF leaf draw — so a
    // run with background evictions consumes exactly the same seeded
    // leaf stream as one without, and the wire traffic per eviction is
    // identical to a dummy access on this leaf.
    tcoram_assert(leaf < cfg_.numLeaves(), "eviction leaf out of range");
    buf_.trace.clear();
    lastRetries_ = 0;
    lastDetected_ = 0;
    ++evictions_;
    lastLeaf_ = leaf;
    const std::size_t before = stash_.size();
    readPath(leaf);
    writePath(leaf);
    const std::size_t after = stash_.size();
    if (before > after)
        blocksEvicted_ += before - after;
}

bool
PathOram::checkInvariant(const std::vector<BlockId> &ids)
{
    // Unseals dram_ directly, so any pending deferred write-back of
    // this tree must land first (see the readPath() self-heal).
    if (batch_ != nullptr && deferEpoch_ == batch_->epoch())
        batch_->flush();
    for (BlockId id : ids) {
        if (stash_.contains(id))
            continue;
        const Leaf leaf = posMap_.get(id);
        bool found = false;
        for (unsigned level = 0; level <= cfg_.treeDepth() && !found;
             ++level) {
            const std::uint64_t idx = bucketIndexOnPath(leaf, level);
            Bucket b = Bucket::unseal(dram_[idx], cipher_, cfg_.z,
                                      cfg_.blockBytes);
            for (const auto &slot : b.slots())
                if (slot.id == id)
                    found = true;
        }
        if (!found)
            return false;
    }
    return true;
}

void
PathOram::enableIntegrity(std::uint64_t mac_seed, unsigned retry_budget)
{
    auth_ = std::make_unique<BucketAuthenticator>(mac_seed, dram_.size());
    recovery_ = std::make_unique<RecoveryEngine>(retry_budget);
    for (std::uint64_t i = 0; i < dram_.size(); ++i)
        auth_->commit(i, dram_[i]);
    const std::uint64_t sb = codec_.serializedBytes();
    readScratch_.resize(cfg_.treeDepth() + 1);
    for (crypto::Ciphertext &ct : readScratch_)
        ct.data.resize(sb);
}

void
PathOram::attachFaultInjector(dram::FaultInjector *injector)
{
    tcoram_assert(injector == nullptr || auth_ != nullptr,
                  "attach the fault injector after enableIntegrity — "
                  "injected corruption must be detectable");
    injector_ = injector;
}

std::uint64_t
PathOram::faultsDetected() const
{
    return recovery_ != nullptr ? recovery_->faultsDetected() : 0;
}

std::uint64_t
PathOram::faultsRecovered() const
{
    return recovery_ != nullptr ? recovery_->faultsRecovered() : 0;
}

std::uint64_t
PathOram::retriesIssued() const
{
    return recovery_ != nullptr ? recovery_->retriesIssued() : 0;
}

void
PathOram::saveState(ByteWriter &w) const
{
    // A pending deferred write-back means dram_ holds old ciphertext
    // under an already-bumped nonce — land it before serializing, or
    // the restored instance (which has no pending batch) would decode
    // garbage. Mutates only through the non-const batch pointer; the
    // logical (plaintext) state is unchanged.
    if (batch_ != nullptr && deferEpoch_ == batch_->epoch())
        batch_->flush();
    w.u64(accesses_);
    w.u64(evictions_);
    w.u64(blocksEvicted_);
    w.u64(lastLeaf_);
    w.u64(prf_.counter());
    w.u64(leafPrf_.counter());
    w.u64(initLeafPrf_.counter());

    w.u64(touched_.size());
    for (const bool t : touched_)
        w.u8(t ? 1 : 0);

    w.u64(leafCache_.size());
    for (const std::uint64_t v : leafCache_)
        w.u64(v);
    w.u64(leafPos_);

    const std::uint64_t sb = codec_.serializedBytes();
    w.u64(dram_.size());
    w.u64(sb);
    for (const crypto::Ciphertext &ct : dram_) {
        w.u64(ct.nonce);
        w.bytes(ct.data);
    }

    stash_.saveState(w);
    if (recovery_ != nullptr)
        recovery_->saveState(w);
}

void
PathOram::restoreState(ByteReader &r)
{
    accesses_ = r.u64();
    evictions_ = r.u64();
    blocksEvicted_ = r.u64();
    lastLeaf_ = r.u64();
    prf_.setCounter(r.u64());
    leafPrf_.setCounter(r.u64());
    initLeafPrf_.setCounter(r.u64());

    tcoram_assert(r.u64() == touched_.size(),
                  "snapshot block count mismatch");
    for (std::size_t i = 0; i < touched_.size(); ++i)
        touched_[i] = r.u8() != 0;

    tcoram_assert(r.u64() == leafCache_.size(),
                  "snapshot leaf cache size mismatch");
    for (std::uint64_t &v : leafCache_)
        v = r.u64();
    leafPos_ = r.u64();

    tcoram_assert(r.u64() == dram_.size(), "snapshot tree size mismatch");
    const std::uint64_t sb = r.u64();
    tcoram_assert(sb == codec_.serializedBytes(),
                  "snapshot bucket size mismatch");
    for (crypto::Ciphertext &ct : dram_) {
        ct.nonce = r.u64();
        tcoram_assert(ct.data.size() == sb, "bucket ciphertext size drift");
        r.bytes(ct.data);
    }

    stash_.restoreState(r);
    if (recovery_ != nullptr)
        recovery_->restoreState(r);

    // Tags are derived state: re-latch over the restored image instead
    // of trusting serialized tags.
    if (auth_ != nullptr)
        for (std::uint64_t i = 0; i < dram_.size(); ++i)
            auth_->commit(i, dram_[i]);
}

// ---------------------------------------------------------------------------
// RecursivePathOram
// ---------------------------------------------------------------------------

/**
 * One recursion stage: a PathOram whose blocks pack leaf labels of the
 * next-outer ORAM (8 bytes per label), plus the PositionMapIf adapter
 * the outer ORAM reads/writes through. The stage owns one reusable
 * block buffer so label reads/updates stay allocation-free.
 */
struct RecursivePathOram::Stage : public PositionMapIf
{
    Stage(const OramConfig &cfg, PositionMapIf &inner_map,
          std::uint64_t key_seed, std::uint64_t outer_entries,
          crypto::CryptoBackend backend, std::uint64_t cipher_seed,
          bool fused_)
        : oram(cfg, inner_map, key_seed, 0, backend, cipher_seed),
          entriesPerBlock(cfg.blockBytes / 8),
          entries(outer_entries),
          blockBuf(cfg.blockBytes, 0),
          fused(fused_)
    {
    }

    Leaf
    get(BlockId id) override
    {
        tcoram_assert(id < entries, "recursive get out of range");
        oram.accessInto(id / entriesPerBlock, Op::Read, {}, blockBuf);
        const std::uint64_t off = (id % entriesPerBlock) * 8;
        return load64le(blockBuf.data() + off);
    }

    void
    set(BlockId id, Leaf leaf) override
    {
        tcoram_assert(id < entries, "recursive set out of range");
        oram.accessInto(id / entriesPerBlock, Op::Read, {}, blockBuf);
        const std::uint64_t off = (id % entriesPerBlock) * 8;
        store64le(blockBuf.data() + off, leaf);
        oram.accessInto(id / entriesPerBlock, Op::Write, blockBuf, blockBuf);
    }

    Leaf
    update(BlockId id, Leaf leaf) override
    {
        // Legacy datapath: fall back to the composed get+set, i.e.
        // three path accesses per stage (get's one, set's two).
        if (!fused)
            return PositionMapIf::update(id, leaf);

        // Fused datapath: ONE path access patches the label in the
        // stash-resident copy between the read and write phases.
        tcoram_assert(id < entries, "recursive update out of range");
        const std::span<std::uint8_t> payload =
            oram.beginAccess(id / entriesPerBlock);
        const std::uint64_t off = (id % entriesPerBlock) * 8;
        const Leaf old = load64le(payload.data() + off);
        store64le(payload.data() + off, leaf);
        oram.finishAccess();
        return old;
    }

    std::uint64_t size() const override { return entries; }

    PathOram oram;
    std::uint64_t entriesPerBlock;
    std::uint64_t entries;
    std::vector<std::uint8_t> blockBuf;
    bool fused;
};

RecursivePathOram::RecursivePathOram(const OramConfig &cfg,
                                     std::uint64_t key_seed,
                                     crypto::CryptoBackend backend,
                                     Datapath dp)
    : cfg_(cfg), datapath_(dp)
{
    const auto chain = cfg_.recursionChain();
    const bool fused = datapath_ != Datapath::Legacy;

    // Every tree shares ONE bucket-encryption key (the paper's single
    // AES key κ) so the cross-stage crypto batch can retire all
    // write-backs under it; per-tree PRF seeds stay distinct. The
    // shared key is used in every mode — Legacy differs only in access
    // structure, so fused-vs-legacy DRAM images stay comparable.
    const std::uint64_t cipher_seed = key_seed;

    // Build from the innermost (smallest) ORAM outward. The innermost
    // stage's own position map is flat (on-chip).
    PositionMapIf *next_map = nullptr;
    if (chain.empty()) {
        flatMap_ = std::make_unique<FlatPositionMap>(cfg_.numBlocks);
        next_map = flatMap_.get();
    } else {
        flatMap_ =
            std::make_unique<FlatPositionMap>(chain.back().numBlocks);
        next_map = flatMap_.get();
        for (std::size_t i = chain.size(); i-- > 0;) {
            const std::uint64_t outer_entries =
                (i == 0) ? cfg_.numBlocks : chain[i - 1].numBlocks;
            auto stage = std::make_unique<Stage>(
                chain[i], *next_map, key_seed + 17 * (i + 1), outer_entries,
                backend, cipher_seed, fused);
            next_map = stage.get();
            recursion_.push_back(std::move(stage));
        }
    }

    data_ = std::make_unique<PathOram>(cfg_, *next_map, key_seed, 0,
                                       backend, cipher_seed);

    if (datapath_ == Datapath::Fused) {
        batch_ = std::make_unique<PathCryptoBatch>(
            crypto::keyFromSeed(cipher_seed), backend);
        std::size_t levels = data_->config().treeDepth() + 1;
        for (auto &stage : recursion_)
            levels += stage->oram.config().treeDepth() + 1;
        batch_->reserve(levels);
        data_->attachCryptoBatch(batch_.get());
        for (auto &stage : recursion_)
            stage->oram.attachCryptoBatch(batch_.get());
    }

    drawSnap_.resize(treeCount());
}

RecursivePathOram::~RecursivePathOram() = default;

const PathOram &
RecursivePathOram::tree(std::size_t i) const
{
    tcoram_assert(i < treeCount(), "tree index out of range");
    return i == 0 ? *data_ : recursion_[i - 1]->oram;
}

std::uint64_t
RecursivePathOram::cryptoCalls() const
{
    std::uint64_t total = data_->cryptoCalls();
    for (const auto &stage : recursion_)
        total += stage->oram.cryptoCalls();
    if (batch_ != nullptr)
        total += batch_->flushes();
    return total;
}

void
RecursivePathOram::snapshotDraws()
{
#ifndef NDEBUG
    for (std::size_t i = 0; i < treeCount(); ++i)
        drawSnap_[i] = tree(i).drawStats();
#endif
}

void
RecursivePathOram::finishLogicalAccess([[maybe_unused]] bool remapping)
{
    // ONE batched engine call retires every tree's deferred write-back:
    // the logical access costs H+1 path-read decrypts plus this flush.
    if (batch_ != nullptr)
        batch_->flush();

#ifndef NDEBUG
    // Stream invariant (fused modes only; Legacy's get+set cascade
    // legitimately draws more): relative to snapshotDraws(), each tree
    // consumed exactly `levels` write-back nonces, one remap leaf
    // (none for an eviction pass) and at most one first-touch
    // substitute (none for dummies/evictions, where remapping=false).
    if (datapath_ == Datapath::Legacy)
        return;
    for (std::size_t i = 0; i < treeCount(); ++i) {
        const PathOram &t = tree(i);
        const PathOram::DrawStats d = t.drawStats();
        const std::uint64_t levels = t.config().treeDepth() + 1;
        tcoram_dassert(d.nonces - drawSnap_[i].nonces == levels,
                       "tree ", i, " nonce draw quota violated");
        tcoram_dassert(d.leaves - drawSnap_[i].leaves == 1,
                       "tree ", i, " leaf draw quota violated");
        const std::uint64_t init = d.initLeaves - drawSnap_[i].initLeaves;
        tcoram_dassert(init <= (remapping ? 1u : 0u),
                       "tree ", i, " init-leaf draw quota violated");
    }
#endif
}

void
RecursivePathOram::accessInto(BlockId id, Op op,
                              std::span<const std::uint8_t> data,
                              std::span<std::uint8_t> out)
{
    snapshotDraws();
    // The data tree's beginAccess drives the recursion through its
    // ORAM-backed position map (Stage::update), so each stage's path
    // is read, patched and written exactly once before the data path.
    data_->accessInto(id, op, data, out);
    finishLogicalAccess(true);
}

std::vector<std::uint8_t>
RecursivePathOram::access(BlockId id, Op op,
                          const std::vector<std::uint8_t> &data)
{
    std::vector<std::uint8_t> out(cfg_.blockBytes);
    accessInto(id, op, data, out);
    return out;
}

void
RecursivePathOram::dummyAccess()
{
    // A dummy must touch every tree the same way a real access does:
    // innermost stage outward, data tree last — the completion order
    // of a real fused access.
    snapshotDraws();
    for (auto &stage : recursion_)
        stage->oram.dummyAccess();
    data_->dummyAccess();
    finishLogicalAccess(false);
}

void
RecursivePathOram::backgroundEvict(std::uint64_t g)
{
    // One eviction pass touches every tree, like a dummy access, on
    // each tree's reverse-lexicographic schedule leaf for counter g.
    for (auto &stage : recursion_) {
        const OramConfig &c = stage->oram.config();
        stage->oram.evictPath(EvictionEngine::scheduleLeaf(
            g, c.treeDepth(), c.numLeaves()));
    }
    const OramConfig &c = data_->config();
    data_->evictPath(
        EvictionEngine::scheduleLeaf(g, c.treeDepth(), c.numLeaves()));
    if (batch_ != nullptr)
        batch_->flush();
}

std::uint64_t
RecursivePathOram::evictionCount() const
{
    std::uint64_t total = data_->evictionCount();
    for (const auto &stage : recursion_)
        total += stage->oram.evictionCount();
    return total;
}

std::uint64_t
RecursivePathOram::blocksEvicted() const
{
    std::uint64_t total = data_->blocksEvicted();
    for (const auto &stage : recursion_)
        total += stage->oram.blocksEvicted();
    return total;
}

std::uint64_t
RecursivePathOram::lastAccessBytes() const
{
    std::uint64_t total = data_->lastTrace().totalBytes();
    for (const auto &stage : recursion_)
        total += stage->oram.lastTrace().totalBytes();
    return total;
}

void
RecursivePathOram::enableIntegrity(std::uint64_t mac_seed,
                                   unsigned retry_budget)
{
    data_->enableIntegrity(mac_seed, retry_budget);
    for (std::size_t i = 0; i < recursion_.size(); ++i)
        recursion_[i]->oram.enableIntegrity(mac_seed + 31 * (i + 1),
                                            retry_budget);
}

void
RecursivePathOram::attachFaultInjector(dram::FaultInjector *injector)
{
    data_->attachFaultInjector(injector);
    for (auto &stage : recursion_)
        stage->oram.attachFaultInjector(injector);
}

std::uint32_t
RecursivePathOram::lastFaultsDetected() const
{
    std::uint32_t total = data_->lastFaultsDetected();
    for (const auto &stage : recursion_)
        total += stage->oram.lastFaultsDetected();
    return total;
}

std::uint32_t
RecursivePathOram::lastRetries() const
{
    std::uint32_t total = data_->lastRetries();
    for (const auto &stage : recursion_)
        total += stage->oram.lastRetries();
    return total;
}

std::uint64_t
RecursivePathOram::faultsDetected() const
{
    std::uint64_t total = data_->faultsDetected();
    for (const auto &stage : recursion_)
        total += stage->oram.faultsDetected();
    return total;
}

std::uint64_t
RecursivePathOram::faultsRecovered() const
{
    std::uint64_t total = data_->faultsRecovered();
    for (const auto &stage : recursion_)
        total += stage->oram.faultsRecovered();
    return total;
}

std::uint64_t
RecursivePathOram::retriesIssued() const
{
    std::uint64_t total = data_->retriesIssued();
    for (const auto &stage : recursion_)
        total += stage->oram.retriesIssued();
    return total;
}

void
RecursivePathOram::saveState(ByteWriter &w) const
{
    // Stage maps are blocks inside the next tree's image, so saving
    // every tree plus the one flat innermost map captures the whole
    // recursive position-map chain.
    static_cast<const FlatPositionMap *>(flatMap_.get())->saveState(w);
    for (const auto &stage : recursion_)
        stage->oram.saveState(w);
    data_->saveState(w);
}

void
RecursivePathOram::restoreState(ByteReader &r)
{
    static_cast<FlatPositionMap *>(flatMap_.get())->restoreState(r);
    for (auto &stage : recursion_)
        stage->oram.restoreState(r);
    data_->restoreState(r);
}

} // namespace tcoram::oram
